// Latency SLA via priority scheduling: an interactive, latency-sensitive
// service (small batches, high priority) shares the GPU with bulk offline
// scoring jobs (large batches, low priority) — the paper's motivating
// service-differentiation use case (§1, Figure 18).
//
// The example compares the interactive job's completion latency under stock
// TF-Serving (where the bulk jobs' kernels interleave arbitrarily with it)
// against Olympian priority scheduling (where it preempts the bulk work at
// quantum granularity).
//
//   $ ./examples/latency_sla

#include <cstdio>
#include <memory>
#include <vector>

#include "core/profiler.h"
#include "core/scheduler.h"
#include "serving/server.h"

using namespace olympian;

namespace {

std::vector<serving::ClientSpec> Workload() {
  std::vector<serving::ClientSpec> clients;
  // The interactive service: 20 small requests, latency-critical.
  clients.push_back({.model = "resnet-50",
                     .batch = 16,
                     .num_batches = 20,
                     .priority = 10});
  // Three bulk scoring jobs: big batches, throughput-oriented.
  for (int i = 0; i < 3; ++i) {
    clients.push_back({.model = "vgg16",
                       .batch = 120,
                       .num_batches = 6,
                       .priority = 1});
  }
  return clients;
}

}  // namespace

int main() {
  core::Profiler profiler;
  const auto p_interactive = profiler.ProfileModel("resnet-50", 16);
  const auto p_bulk = profiler.ProfileModel("vgg16", 120);
  const auto q = sim::Duration::Micros(1200);

  const auto workload = Workload();

  // --- stock TF-Serving ---------------------------------------------------
  serving::Experiment base(serving::ServerOptions{.seed = 29});
  const auto base_results = base.Run(workload);

  // --- Olympian priority scheduling ---------------------------------------
  serving::Experiment oly(serving::ServerOptions{.seed = 29});
  core::Scheduler scheduler(oly.env(), oly.gpu(),
                            std::make_unique<core::PriorityPolicy>());
  scheduler.SetProfile(p_interactive.key, &p_interactive.cost,
                       core::Profiler::ThresholdFor(p_interactive, q));
  scheduler.SetProfile(p_bulk.key, &p_bulk.cost,
                       core::Profiler::ThresholdFor(p_bulk, q));
  oly.SetHooks(&scheduler);
  const auto oly_results = oly.Run(workload);

  std::printf("%-28s %-18s %s\n", "client", "TF-Serving finish",
              "Olympian-priority finish");
  for (std::size_t i = 0; i < workload.size(); ++i) {
    std::printf("%-28s %8.2f s %19.2f s\n", base_results[i].name.c_str(),
                base_results[i].finish_time.seconds(),
                oly_results[i].finish_time.seconds());
  }

  const double speedup = base_results[0].finish_time.seconds() /
                         oly_results[0].finish_time.seconds();
  std::printf("\nInteractive job completes %.1fx sooner under priority\n"
              "scheduling; bulk jobs absorb the delay. (Overflow kernels\n"
              "mean the bulk jobs still finish each in-flight node, so the\n"
              "interactive job's gain is quantum-granular, not instant.)\n",
              speedup);
  return 0;
}
