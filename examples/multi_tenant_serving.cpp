// Multi-tenant serving: the scenario from the paper's introduction. A cloud
// operator hosts several tenants' DNNs on one GPU and needs both fairness
// and service differentiation:
//
//   * "gold"   tenants — weight 4 (paying for 4x GPU share)
//   * "silver" tenants — weight 2
//   * "bronze" tenants — weight 1
//
// The example profiles every (model, batch) pair in the mix, picks a single
// quantum from the operator's overhead tolerance, runs the workload under
// weighted fair sharing, and prints per-tenant GPU consumption so the
// operator can verify tenants got what they paid for.
//
//   $ ./examples/multi_tenant_serving

#include <cstdio>
#include <memory>
#include <vector>

#include "core/profiler.h"
#include "core/scheduler.h"
#include "serving/server.h"

using namespace olympian;

namespace {

struct Tenant {
  const char* tier;
  const char* model;
  int batch;
  int weight;
};

}  // namespace

int main() {
  const std::vector<Tenant> tenants = {
      {"gold", "inception-v4", 100, 4},
      {"gold", "resnet-152", 100, 4},
      {"silver", "resnet-50", 100, 2},
      {"silver", "googlenet", 100, 2},
      {"bronze", "vgg16", 64, 1},
      {"bronze", "alexnet", 128, 1},
  };

  // Profile every distinct (model, batch) once, offline.
  core::Profiler profiler;
  std::vector<core::ModelProfile> profiles;
  profiles.reserve(tenants.size());
  for (const Tenant& t : tenants) {
    profiles.push_back(profiler.ProfileModel(t.model, t.batch));
    std::printf("profiled %-18s rate C/D = %.2f\n",
                profiles.back().key.c_str(),
                profiles.back().CostAccumulationRate());
  }

  // One quantum for the whole server. (An operator with time to spare would
  // measure Overhead-Q curves and call Profiler::SelectQ; 1.6 ms is the
  // 2.5%-tolerance choice for this mix.)
  const auto q = sim::Duration::Micros(1600);

  serving::Experiment exp(serving::ServerOptions{.seed = 17});
  core::Scheduler scheduler(exp.env(), exp.gpu(),
                            std::make_unique<core::WeightedFairPolicy>());
  for (const auto& p : profiles) {
    scheduler.SetProfile(p.key, &p.cost, core::Profiler::ThresholdFor(p, q));
  }
  exp.SetHooks(&scheduler);

  std::vector<serving::ClientSpec> clients;
  for (const Tenant& t : tenants) {
    clients.push_back({.model = t.model,
                       .batch = t.batch,
                       .num_batches = 8,
                       .weight = t.weight});
  }
  const auto results = exp.Run(clients);

  std::printf("\n%-8s %-14s %-7s %-10s %-12s %s\n", "tier", "model", "weight",
              "finish(s)", "GPU dur(s)", "GPU share");
  sim::Duration total_gpu;
  for (const auto& r : results) total_gpu += r.gpu_duration;
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("%-8s %-14s %-7d %-10.2f %-12.2f %4.1f%%\n", tenants[i].tier,
                tenants[i].model, tenants[i].weight,
                results[i].finish_time.seconds(),
                results[i].gpu_duration.seconds(),
                100.0 * results[i].gpu_duration.Ratio(total_gpu));
  }
  std::printf("\nWhile all tenants are active, GPU shares track weights\n"
              "(4:4:2:2:1:1); lighter tenants catch up once heavier ones\n"
              "finish. Utilization: %.1f%%\n",
              exp.utilization() * 100);
  return 0;
}
