// Capacity planner: answers the operator question "how many concurrent
// clients of model M at batch B can this server sustain, and what limits
// it?" — the §4.3 scaling analysis as a reusable tool.
//
// For each candidate client count the planner runs a short workload and
// reports whether it completed, ran out of device memory, or stalled on the
// thread pool (Olympian's suspended gangs hold pool threads).
//
//   $ ./examples/capacity_planner [model] [batch]

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "core/scheduler.h"
#include "serving/server.h"

using namespace olympian;

namespace {

const char* Probe(const std::string& model, int batch, int clients,
                  bool olympian, const core::ModelProfile& profile) {
  serving::ServerOptions opts;
  opts.seed = 71;
  serving::Experiment exp(opts);
  std::unique_ptr<core::Scheduler> sched;
  if (olympian) {
    sched = std::make_unique<core::Scheduler>(
        exp.env(), exp.gpu(), std::make_unique<core::FairPolicy>());
    sched->SetProfile(
        profile.key, &profile.cost,
        core::Profiler::ThresholdFor(profile, sim::Duration::Micros(1600)));
    exp.SetHooks(sched.get());
  }
  try {
    exp.Run(std::vector<serving::ClientSpec>(
        static_cast<std::size_t>(clients),
        {.model = model, .batch = batch, .num_batches = 1}));
    return "ok";
  } catch (const gpusim::OutOfDeviceMemory&) {
    return "OUT OF MEMORY";
  } catch (const serving::ServerStalled&) {
    return "THREAD POOL EXHAUSTED";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model = argc > 1 ? argv[1] : "inception-v4";
  const int batch = argc > 2 ? std::atoi(argv[2]) : 100;

  core::Profiler profiler;
  const auto profile = profiler.ProfileModel(model, batch);
  const auto& spec = models::GetModel(model);
  std::printf("capacity plan for %s @ batch %d\n", model.c_str(), batch);
  std::printf("  device: %s, %lld MB; model params %lld MB; "
              "activations %lld MB/client\n\n",
              gpusim::GpuSpec::Gtx1080Ti().name.c_str(),
              static_cast<long long>(gpusim::GpuSpec::Gtx1080Ti().memory_mb),
              static_cast<long long>(spec.params_mb),
              static_cast<long long>(spec.ClientMemoryMb(batch)));

  std::printf("%-10s %-22s %s\n", "clients", "TF-Serving", "Olympian (fair)");
  int last_ok_tfs = 0, last_ok_oly = 0;
  for (int n = 10; n <= 120; n += 10) {
    const char* tfs = Probe(model, batch, n, false, profile);
    const char* oly = Probe(model, batch, n, true, profile);
    std::printf("%-10d %-22s %s\n", n, tfs, oly);
    if (std::string(tfs) == "ok") last_ok_tfs = n;
    if (std::string(oly) == "ok") last_ok_oly = n;
  }
  std::printf("\nmax sustained clients: TF-Serving %d, Olympian %d\n",
              last_ok_tfs, last_ok_oly);
  std::printf("(paper §4.3: TF-Serving ~100 Inception clients, memory-"
              "limited;\n Olympian 40-60, thread-pool-limited.)\n");
  return 0;
}
