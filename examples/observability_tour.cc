// Observability tour: every layer of the metrics subsystem exercised in one
// fault-injected run, with artifacts written for offline inspection.
//
// A two-GPU server under Olympian fair scheduling takes a staged outage on
// GPU 0: a kernel failure forces a retry, a hang window degrades the device
// (so the retry hedges on the healthy peer), and a device reset then kills
// the wedged attempt mid-kernel — the hedge's result is adopted. The full
// observability stack watches:
//
//   * the Tracer records node/attempt/token spans and chains the request's
//     retry -> failover -> hedge-win admissions into one flow across both
//     device tracks;
//   * the MetricRegistry collects labeled counters, request-latency
//     histograms, and the virtual-clock sampler's windowed series
//     (utilization, queue depth, health, breaker and pool state);
//   * the SLO layer folds per-request outcomes into availability, latency
//     quantiles, error-budget burn, and goodput.
//
// Artifacts (written to the working directory):
//   observability_trace.json     Chrome trace — load into https://ui.perfetto.dev
//   observability_metrics.prom   Prometheus text exposition
//   observability_timeline.json  sampled series as a JSON timeline
//
//   $ ./examples/observability_tour
//
// Deterministic: run it twice and every byte of every artifact is identical.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "core/profiler.h"
#include "core/scheduler.h"
#include "fault/fault.h"
#include "metrics/registry.h"
#include "metrics/slo.h"
#include "metrics/trace.h"
#include "serving/server.h"

using namespace olympian;

int main() {
  const sim::TimePoint t0;
  // Sized for the full run plus the post-run counter export: the staged
  // outage produces ~335k node/attempt spans, and truncation here would eat
  // the counter events appended after the run.
  metrics::Tracer tracer(400000);
  metrics::MetricRegistry registry;

  serving::ServerOptions opts;
  opts.seed = 23;
  opts.num_gpus = 2;
  opts.failover.enabled = true;
  opts.failover.hedge_when_degraded = true;
  opts.failover.hedge_delay = sim::Duration::Millis(1);
  opts.failover.health.hang_down_after = sim::Duration::Seconds(10);
  opts.degradation.retry.base_backoff = sim::Duration::Millis(10);
  opts.executor.tracer = &tracer;
  opts.observability.registry = &registry;
  opts.observability.sample_interval = sim::Duration::Millis(10);
  // The staged outage: retry -> degraded routing + hedge -> device death.
  opts.faults.KernelFailure(t0 + sim::Duration::Millis(595), /*stream=*/1,
                            /*gpu_index=*/0);
  opts.faults.DeviceHang(t0 + sim::Duration::Millis(600),
                         sim::Duration::Millis(300), /*gpu_index=*/0);
  opts.faults.DeviceReset(t0 + sim::Duration::Millis(650),
                          sim::Duration::Seconds(100), /*gpu_index=*/0);

  serving::Experiment exp(opts);

  // Olympian fair scheduling on both devices, with token tenures traced.
  core::Profiler profiler;
  auto p_resnet = profiler.ProfileModel("resnet-152", 20);
  auto p_google = profiler.ProfileModel("googlenet", 20);
  core::Scheduler::Options sopts;
  sopts.tracer = &tracer;
  std::vector<std::unique_ptr<core::Scheduler>> scheds;
  for (std::size_t i = 0; i < exp.num_gpus(); ++i) {
    auto s = std::make_unique<core::Scheduler>(
        exp.env(), exp.gpu(i), std::make_unique<core::FairPolicy>(), sopts);
    // Either model may land on either device after a failover.
    s->SetProfile(p_resnet.key, &p_resnet.cost,
                  core::Profiler::ThresholdFor(p_resnet,
                                               sim::Duration::Micros(500)));
    s->SetProfile(p_google.key, &p_google.cost,
                  core::Profiler::ThresholdFor(p_google,
                                               sim::Duration::Micros(500)));
    exp.SetGpuHooks(i, s.get());
    scheds.push_back(std::move(s));
  }

  const auto results = exp.Run(
      {serving::ClientSpec{.model = "resnet-152", .batch = 20, .num_batches = 10},
       serving::ClientSpec{.model = "googlenet", .batch = 20, .num_batches = 10}});

  // Fold per-request outcomes into the SLO view.
  metrics::SloAccumulator slo;
  double window_s = 0.0;
  for (const auto& r : results) {
    window_s = std::max(window_s, r.finish_time.seconds());
    for (std::size_t i = 0; i < r.request_status.size(); ++i) {
      metrics::RequestOutcome outcome;
      switch (r.request_status[i]) {
        case serving::RequestStatus::kOk:
          outcome = metrics::RequestOutcome::kSuccess;
          break;
        case serving::RequestStatus::kFailedRetried:
          outcome = metrics::RequestOutcome::kRetriedSuccess;
          break;
        case serving::RequestStatus::kTimedOut:
          outcome = metrics::RequestOutcome::kTimedOut;
          break;
        case serving::RequestStatus::kRejected:
          outcome = metrics::RequestOutcome::kRejected;
          break;
        default:
          outcome = metrics::RequestOutcome::kFailed;
      }
      slo.Add(r.model, r.request_latency_ms[i], outcome);
    }
  }

  std::printf("%-14s %-6s %-9s %s\n", "client", "home", "batches",
              "request statuses");
  for (const auto& r : results) {
    std::printf("%-14s gpu%-3zu %d/%-7d ", r.name.c_str(), r.gpu_index,
                r.batches_completed,
                static_cast<int>(r.request_status.size()));
    for (const auto s : r.request_status) {
      std::printf("%s ", serving::ToString(s));
    }
    std::printf("\n");
  }

  std::printf("\nSLO report (window %.3f s):\n", window_s);
  slo.Report(window_s).Print(std::cout);

  std::printf("\ncounters:\n");
  exp.counters().Print(std::cout);

  {
    // Fold the sampler's series into the trace as 'C' counter events, so
    // utilization / queue depth / health render as charts on the same
    // Perfetto timeline as the span flows.
    metrics::ExportCountersToTrace(registry, tracer);
    std::ofstream os("observability_trace.json");
    tracer.WriteChromeTrace(os);
  }
  {
    std::ofstream os("observability_metrics.prom");
    registry.WritePrometheus(os);
  }
  {
    std::ofstream os("observability_timeline.json");
    registry.WriteJsonTimeline(os);
  }
  std::printf(
      "\nwrote observability_trace.json (%zu events, %llu dropped), "
      "observability_metrics.prom, observability_timeline.json\n",
      tracer.size(), static_cast<unsigned long long>(tracer.dropped()));
  std::printf(
      "open the trace in https://ui.perfetto.dev — the req-N flow arrows "
      "chain one request across both device tracks\n");
  return 0;
}
