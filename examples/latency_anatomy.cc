// Latency anatomy: where did the time actually go, and who is to blame for
// the tail?
//
// A three-server cluster takes a staged gray-failure drill — a fractional
// capacity loss (the gray fault: the server is up but slow), a full process
// crash, and an inbound network partition — while every request carries a
// PhaseAccount that charges each virtual-time interval of its life to
// exactly one phase (router queue, network hops, admission, reload, batcher
// wait, GPU queue vs compute, backoff, failover re-admission, ...). The
// phase sum equals the end-to-end latency bit-exactly in virtual time; this
// binary exits nonzero if even one request violates the identity.
//
// On top of the per-request accounts:
//   * the PhaseCollector folds SLO-violating requests into a per-(server,
//     model) tail-blame table — which phase dominated each violation;
//   * the IncidentLog correlates each injected fault with the router's
//     detection, the mitigation that shifted traffic (failover/brownout),
//     and recovery, with per-incident request impact and goodput dip;
//   * the engine introspection registry shows, for sharded runs, where the
//     physical threads spent their wall time (busy vs barrier wait).
//
// Artifacts (written to the working directory):
//   <prefix>_blame.json      tail-blame table (integer-ns, byte-stable)
//   <prefix>_incidents.json  incident timelines (integer-ns, byte-stable)
//   <prefix>_trace.json      Chrome trace: request flows + incident spans
//                            + sampled series as counter charts
//
//   $ ./examples/latency_anatomy [shards] [prefix]
//
// The blame and incident exports are fed hub-side in virtual-time order, so
// they are byte-identical at any shard count — run with shards=1 and
// shards=4 and diff the files. Only the engine introspection (stderr)
// differs: it reports physical wall time, which IS shard-count-dependent.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "metrics/incident.h"
#include "metrics/phase_account.h"
#include "metrics/registry.h"
#include "metrics/trace.h"
#include "serving/cluster.h"

using namespace olympian;

int main(int argc, char** argv) {
  const std::size_t shards =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 1;
  const std::string prefix = argc > 2 ? argv[2] : "latency_anatomy";
  const sim::TimePoint t0;

  metrics::Tracer tracer(300000);
  metrics::MetricRegistry registry;
  metrics::MetricRegistry engine_registry;  // wall-clock; kept separate
  metrics::PhaseCollector phases(
      metrics::PhaseCollector::Options{.slo_ms = 250.0, .registry = &registry});
  metrics::IncidentLog incidents;

  serving::ClusterOptions opts;
  opts.num_servers = 3;
  opts.server.num_gpus = 1;
  opts.server.pool_threads = 100;
  opts.server.executor.tracer = &tracer;
  // Request-level trace only: per-node spans would be ~20k events per
  // request and drown the flows/incidents/counters this drill is about.
  opts.server.executor.trace_node_spans = false;
  opts.seed = 29;
  opts.shards = shards == 0 ? 1 : shards;
  opts.registry = &registry;
  opts.phases = &phases;
  opts.incidents = &incidents;
  opts.engine_registry = &engine_registry;

  // The staged drill. Server 2 goes gray first — still up, answering
  // probes, but at 40% speed — then server 0 crashes outright, and server 1
  // is partitioned inbound while 0 is still recovering.
  opts.faults.CapacityLoss(t0 + sim::Duration::Millis(300),
                           sim::Duration::Millis(800), /*server=*/2,
                           /*capacity=*/0.4);
  opts.faults.Crash(t0 + sim::Duration::Millis(400),
                    sim::Duration::Millis(600), /*server=*/0);
  opts.faults.Partition(t0 + sim::Duration::Millis(1200),
                        sim::Duration::Millis(500), /*server=*/1,
                        fault::PartitionDirection::kToServer);

  serving::Cluster cluster(opts);

  serving::ClusterClientSpec spec;
  spec.request.model = "googlenet";
  spec.request.batch = 10;
  spec.request.num_batches = 12;
  spec.arrivals.kind = serving::ArrivalSpec::Kind::kPoisson;
  spec.arrivals.rate_rps = 100.0;
  const auto results =
      cluster.Run(std::vector<serving::ClusterClientSpec>(6, spec));

  int total = 0, served = 0;
  for (const auto& r : results) {
    total += static_cast<int>(r.request_status.size());
    served += r.requests_completed;
  }
  std::printf("served %d/%d requests, makespan %.3f s\n", served, total,
              cluster.makespan().seconds());

  // The tail-blame table: per server, where violating requests spent their
  // time and which phase dominated.
  std::printf("\ntail blame (SLO %.0f ms): %llu requests, %llu violations, "
              "%llu identity mismatches\n",
              phases.slo_ms(),
              static_cast<unsigned long long>(phases.requests()),
              static_cast<unsigned long long>(phases.violations()),
              static_cast<unsigned long long>(phases.mismatches()));
  for (const auto& [key, row] : phases.rows()) {
    std::printf("  server %d %-10s %3llu req %3llu viol", key.first,
                key.second.c_str(),
                static_cast<unsigned long long>(row.requests),
                static_cast<unsigned long long>(row.violations));
    if (row.violations > 0) {
      int best = 0;
      for (int i = 1; i < metrics::kPhaseCount; ++i) {
        if (row.dominant[static_cast<std::size_t>(i)] >
            row.dominant[static_cast<std::size_t>(best)])
          best = i;
      }
      std::printf("  dominant: %s",
                  metrics::PhaseName(static_cast<metrics::Phase>(best)));
    }
    std::printf("\n");
  }

  // Incident timelines: injection -> detection -> mitigation -> recovery.
  std::printf("\nincidents:\n");
  for (const auto& inc : incidents.incidents()) {
    std::printf("  srv%d %-9s injected %7.3fs", inc.server, inc.kind.c_str(),
                inc.injected_ns / 1e9);
    if (inc.detected_ns >= 0) {
      std::printf("  detected +%.3fs",
                  (inc.detected_ns - inc.injected_ns) / 1e9);
    } else {
      std::printf("  tolerated (never detected)");
    }
    if (inc.mitigated_ns >= 0) {
      std::printf("  mitigated +%.3fs (%s)",
                  (inc.mitigated_ns - inc.injected_ns) / 1e9,
                  inc.mitigation.c_str());
    }
    if (inc.recovered_ns >= 0) {
      std::printf("  recovered +%.3fs",
                  (inc.recovered_ns - inc.injected_ns) / 1e9);
    }
    std::printf("  [%llu req, %llu failed, goodput dip %.3f]\n",
                static_cast<unsigned long long>(inc.requests_impacted),
                static_cast<unsigned long long>(inc.failures_impacted),
                inc.goodput_dip);
  }

  {
    std::ofstream os(prefix + "_blame.json");
    phases.WriteBlameJson(os);
  }
  {
    std::ofstream os(prefix + "_incidents.json");
    incidents.WriteJson(os);
  }
  {
    // One Perfetto timeline with everything on it: request flows, incident
    // spans on the incident track, sampled series as counter charts.
    incidents.Annotate(tracer);
    metrics::ExportCountersToTrace(registry, tracer);
    std::ofstream os(prefix + "_trace.json");
    tracer.WriteChromeTrace(os);
  }
  std::printf("\nwrote %s_blame.json, %s_incidents.json, %s_trace.json "
              "(%zu events, %llu dropped)\n",
              prefix.c_str(), prefix.c_str(), prefix.c_str(), tracer.size(),
              static_cast<unsigned long long>(tracer.dropped()));

  // Engine introspection is wall-clock — shard-count-dependent by nature —
  // so it goes to stderr, keeping stdout byte-identical at any shard count.
  std::fprintf(stderr, "\nengine introspection (%zu shard%s):\n",
               cluster.shards(), cluster.shards() == 1 ? "" : "s");
  const auto& eng = cluster.engine();
  for (std::size_t k = 0; k < eng.shards(); ++k) {
    std::fprintf(stderr,
                 "  shard %zu: %llu events, %llu windows, busy %.3f ms, "
                 "barrier wait %.3f ms\n",
                 k, static_cast<unsigned long long>(eng.shard_events(k)),
                 static_cast<unsigned long long>(eng.shard_windows_run(k)),
                 eng.shard_busy_wall_ns(k) / 1e6,
                 eng.shard_barrier_wait_wall_ns(k) / 1e6);
  }

  // The accounting identity is the contract: phase sum == latency for every
  // single request, bit-exact in virtual time, faults and failovers
  // included. CI runs this binary at shards=1 and shards=4 and byte-diffs
  // the blame/incident exports.
  if (phases.mismatches() != 0) {
    std::fprintf(stderr, "FAIL: %llu phase-sum mismatches\n",
                 static_cast<unsigned long long>(phases.mismatches()));
    return 1;
  }
  return 0;
}
