// Quickstart: serve two concurrent DNN inference jobs on one simulated GPU,
// first on stock TF-Serving, then under Olympian fair sharing.
//
//   $ ./examples/quickstart
//
// This walks the whole public API surface in ~60 lines: profile a model
// offline, pick a quantum, install the scheduler, run a workload.

#include <cstdio>
#include <memory>

#include "core/profiler.h"
#include "core/scheduler.h"
#include "serving/server.h"

using namespace olympian;

int main() {
  // --- 1. Offline profiling (once per model+batch, reused forever) -------
  core::Profiler profiler;
  core::ModelProfile profile = profiler.ProfileModel("resnet-152", 64);
  std::printf("profiled %s: C=%.3f s of cost, D=%.3f s GPU duration, "
              "rate C/D=%.2f\n",
              profile.key.c_str(), profile.TotalCost() / 1e9,
              profile.GpuDuration().seconds(), profile.CostAccumulationRate());

  // --- 2. The workload: two clients, five batches each --------------------
  const std::vector<serving::ClientSpec> clients(
      2, {.model = "resnet-152", .batch = 64, .num_batches = 5});

  // --- 3. Stock TF-Serving: the driver decides, unpredictably ------------
  {
    serving::Experiment exp(serving::ServerOptions{.seed = 7});
    auto results = exp.Run(clients);
    std::printf("\nTF-Serving:\n");
    for (const auto& r : results) {
      std::printf("  %-14s finished at %.2f s (GPU duration %.2f s)\n",
                  r.name.c_str(), r.finish_time.seconds(),
                  r.gpu_duration.seconds());
    }
    std::printf("  GPU utilization %.1f%%\n", exp.utilization() * 100);
  }

  // --- 4. Olympian: fair sharing at a 1.2 ms quantum ----------------------
  {
    serving::Experiment exp(serving::ServerOptions{.seed = 7});
    core::Scheduler scheduler(exp.env(), exp.gpu(),
                              std::make_unique<core::FairPolicy>());
    const auto q = sim::Duration::Micros(1200);
    scheduler.SetProfile(profile.key, &profile.cost,
                         core::Profiler::ThresholdFor(profile, q));
    exp.SetHooks(&scheduler);
    auto results = exp.Run(clients);
    std::printf("\nOlympian (fair, Q=%.1f ms):\n", q.millis());
    for (const auto& r : results) {
      std::printf("  %-14s finished at %.2f s (GPU duration %.2f s)\n",
                  r.name.c_str(), r.finish_time.seconds(),
                  r.gpu_duration.seconds());
    }
    std::printf("  GPU utilization %.1f%%, %llu token switches\n",
                exp.utilization() * 100,
                static_cast<unsigned long long>(scheduler.switches()));
  }
  return 0;
}
