// Failover drill: a two-GPU server loses a device mid-run, fails the
// victims over to the surviving replica, and readmits the device after a
// full recovery pipeline (driver re-init, parameter reload over PCIe,
// warm-up probes).
//
// Watch the health transition log: GPU 0 goes kDown at the reset, its
// in-flight requests are cancelled with a failover reason (no retry budget
// spent) and re-admitted on GPU 1 — the first arrival pays replica
// instantiation for its model there — and after the outage GPU 0 walks
// kDown -> kRecovering -> kHealthy and takes traffic again.
//
//   $ ./examples/failover_drill
//
// Run it twice — the output is bit-identical: the health monitor, placer,
// and recovery pipeline all live on the virtual clock.

#include <cstdio>
#include <iostream>
#include <vector>

#include "fault/fault.h"
#include "serving/health.h"
#include "serving/server.h"

using namespace olympian;

int main() {
  const sim::TimePoint t0;

  serving::ServerOptions opts;
  opts.seed = 23;
  opts.num_gpus = 2;
  opts.failover.enabled = true;
  // GPU 0 resets at t=600ms and stays down for 500ms. Recovery then
  // re-initializes the driver, reloads the parameters resident on the
  // device, and runs warm-up probes before readmission.
  opts.faults.DeviceReset(t0 + sim::Duration::Millis(600),
                          sim::Duration::Millis(500), /*gpu_index=*/0);

  serving::Experiment exp(opts);

  // Two tenants per device; distinct models, so the failover has to
  // instantiate the victim's model on the survivor.
  std::vector<serving::ClientSpec> tenants;
  for (int i = 0; i < 4; ++i) {
    tenants.push_back(serving::ClientSpec{
        .model = i % 2 == 0 ? "resnet-152" : "googlenet",
        .batch = 20,
        .num_batches = 8});
  }
  const auto results = exp.Run(tenants);

  std::printf("%-14s %-6s %-9s %s\n", "client", "home", "batches",
              "request statuses");
  for (const auto& r : results) {
    std::printf("%-14s gpu%-3zu %d/%-7d ", r.name.c_str(), r.gpu_index,
                r.batches_completed,
                static_cast<int>(r.request_status.size()));
    for (const auto s : r.request_status) {
      std::printf("%s ", serving::ToString(s));
    }
    std::printf("\n");
  }

  std::printf("\nhealth transitions:\n");
  for (const auto& t : exp.health()->transitions()) {
    std::printf("  %8.3f s  gpu%zu  %-10s -> %s\n",
                (t.at - t0).seconds(), t.gpu, serving::ToString(t.from),
                serving::ToString(t.to));
  }
  std::printf("\nmakespan %.3f s, MTTR(gpu0) %.3f s, replicas loaded %llu\n",
              exp.makespan().seconds(), exp.health()->Mttr(0).seconds(),
              static_cast<unsigned long long>(exp.placer()->replicas_loaded()));
  std::printf("\ncounters:\n");
  exp.counters().Print(std::cout);
  return 0;
}
