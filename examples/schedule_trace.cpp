// Schedule tracing: run three concurrent jobs under Olympian fair sharing
// with execution tracing enabled, and export a Chrome trace-event JSON you
// can load into chrome://tracing or https://ui.perfetto.dev.
//
//   $ ./examples/schedule_trace [output.json]
//
// Tracks: tid -1 shows the scheduler's token tenures; tids 0..2 show each
// job's node executions. The timeline makes the paper's mechanism visible:
// during job k's tenure only job k's nodes run, except for short "overflow"
// node completions right after each token switch (Figures 10/15).

#include <cstdio>
#include <fstream>
#include <memory>

#include "core/profiler.h"
#include "core/scheduler.h"
#include "metrics/trace.h"
#include "serving/server.h"

using namespace olympian;

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "/tmp/olympian_trace.json";

  core::Profiler profiler;
  const auto profile = profiler.ProfileModel("resnet-152", 32);

  metrics::Tracer tracer(/*max_events=*/150000);
  serving::ServerOptions opts;
  opts.seed = 97;
  opts.executor.tracer = &tracer;

  serving::Experiment exp(opts);
  core::Scheduler::Options sopts;
  sopts.tracer = &tracer;
  core::Scheduler scheduler(exp.env(), exp.gpu(),
                            std::make_unique<core::FairPolicy>(), sopts);
  scheduler.SetProfile(
      profile.key, &profile.cost,
      core::Profiler::ThresholdFor(profile, sim::Duration::Micros(1200)));
  exp.SetHooks(&scheduler);

  const auto results = exp.Run(std::vector<serving::ClientSpec>(
      3, {.model = "resnet-152", .batch = 32, .num_batches = 2}));

  std::ofstream os(path);
  tracer.WriteChromeTrace(os);

  std::printf("ran %zu clients; %llu token switches; %zu trace events%s\n",
              results.size(),
              static_cast<unsigned long long>(scheduler.switches()),
              tracer.size(), tracer.full() ? " (cap reached)" : "");
  std::printf("wrote %s — open it in chrome://tracing or ui.perfetto.dev\n",
              path);
  std::printf("tid -1 = scheduler token tenures, tid 0..2 = per-job nodes\n");
  return 0;
}
