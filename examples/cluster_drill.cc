// Cluster drill: three single-GPU servers behind the front-end router, an
// open-loop Poisson client population, and a server-level fault schedule —
// a full process crash plus an inbound network partition.
//
// Watch the router's transition log: the crashed server stops answering
// probe heartbeats, walks kHealthy -> kDegraded -> kDown, and its in-flight
// victims fail over to the survivors WITHOUT spending their retry budget
// (the first arrival on a non-home server pays parameter streaming +
// warm-up). After the outage the server must string together consecutive
// probe successes (kRecovering) before the router routes to it again.
// The partitioned server looks identical from the router's seat — it only
// sees silence — which is exactly the point: the router's failure model is
// inferred, not confessed.
//
//   $ ./examples/cluster_drill
//
// Run it twice — the output is bit-identical: servers, router, probes, and
// faults all share one virtual clock.

#include <cstdio>
#include <iostream>
#include <vector>

#include "fault/fault.h"
#include "serving/cluster.h"

using namespace olympian;

int main() {
  const sim::TimePoint t0;

  serving::ClusterOptions opts;
  opts.num_servers = 3;
  opts.server.num_gpus = 1;
  opts.server.pool_threads = 100;
  opts.seed = 29;
  // Server 0 crashes at t=400ms for 600ms (process gone: probes and
  // requests time out). Server 2 is partitioned router->server at t=900ms
  // for 700ms (requests vanish in flight; the router sees probe timeouts).
  opts.faults.Crash(t0 + sim::Duration::Millis(400),
                    sim::Duration::Millis(600), /*server=*/0);
  opts.faults.Partition(t0 + sim::Duration::Millis(900),
                        sim::Duration::Millis(700), /*server=*/2,
                        fault::PartitionDirection::kToServer);

  serving::Cluster cluster(opts);

  // Six clients, two homed per server, each an open-loop Poisson source.
  serving::ClusterClientSpec spec;
  spec.request.model = "googlenet";
  spec.request.batch = 10;
  spec.request.num_batches = 12;
  spec.arrivals.kind = serving::ArrivalSpec::Kind::kPoisson;
  spec.arrivals.rate_rps = 100.0;
  const auto results =
      cluster.Run(std::vector<serving::ClusterClientSpec>(6, spec));

  std::printf("%-10s %-6s %-8s %s\n", "client", "home", "served",
              "request statuses");
  for (const auto& r : results) {
    std::printf("%-10s srv%-3zu %d/%-6d ", r.name.c_str(), r.home_server,
                r.requests_completed,
                static_cast<int>(r.request_status.size()));
    for (const auto s : r.request_status) {
      std::printf("%s ", serving::ToString(s));
    }
    std::printf("\n");
  }

  std::printf("\nrouter health transitions:\n");
  for (const auto& t : cluster.router().transitions()) {
    std::printf("  %8.3f s  srv%zu  %-10s -> %s\n", (t.at - t0).seconds(),
                t.server, serving::ToString(t.from), serving::ToString(t.to));
  }

  std::printf("\nrouter MTTR incidents (down-mark to readmission):\n");
  for (const sim::Duration d : cluster.router().mttr_incidents()) {
    std::printf("  %.3f s\n", d.seconds());
  }

  std::printf("\nmakespan %.3f s\n", cluster.makespan().seconds());
  std::printf("\nrouter counters:\n");
  cluster.counters().Print(std::cout);
  return 0;
}
