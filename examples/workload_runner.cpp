// Workload runner: execute a declarative workload spec and report per-client
// outcomes — operators compare policies by editing a text file, not code.
//
//   $ ./examples/workload_runner my_workload.spec
//   $ ./examples/workload_runner            # runs a built-in demo spec
//
// Spec format: see serving/workload_spec.h. The runner profiles every
// (model, batch) pair it needs, derives thresholds from the spec's quantum,
// and prints finish times, GPU durations, and utilization.

#include <cstdio>
#include <iostream>
#include <map>
#include <memory>

#include "core/profiler.h"
#include "core/scheduler.h"
#include "metrics/stats.h"
#include "metrics/table.h"
#include "serving/workload_spec.h"

using namespace olympian;

namespace {

constexpr const char* kDemoSpec = R"(
# Demo: a gold tenant with double weight vs three standard tenants.
seed 11
policy weighted-fair
quantum-us 1600
client inception-v4 batch=100 n=6 weight=2
client resnet-152  batch=100 n=6
client resnet-50   batch=100 n=6
client googlenet   batch=100 n=6
)";

}  // namespace

int main(int argc, char** argv) {
  serving::WorkloadSpec spec;
  try {
    spec = argc > 1 ? serving::WorkloadSpec::LoadFile(argv[1])
                    : serving::WorkloadSpec::ParseString(kDemoSpec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  serving::Experiment exp(spec.ToServerOptions());

  // Profile every distinct (model, batch) pair; install per-device
  // schedulers if a policy is requested.
  std::vector<std::unique_ptr<core::Scheduler>> schedulers;
  std::vector<core::ModelProfile> profiles;
  if (spec.policy != "none") {
    core::Profiler profiler;
    std::map<std::string, bool> seen;
    for (const auto& c : spec.clients) {
      const auto key = models::ModelKey(c.model, c.batch);
      if (!seen.emplace(key, true).second) continue;
      profiles.push_back(profiler.ProfileModel(c.model, c.batch));
      std::printf("profiled %-20s C/D=%.2f\n", key.c_str(),
                  profiles.back().CostAccumulationRate());
    }
    for (std::size_t g = 0; g < exp.num_gpus(); ++g) {
      schedulers.push_back(std::make_unique<core::Scheduler>(
          exp.env(), exp.gpu(g), core::MakePolicy(spec.policy)));
      for (const auto& p : profiles) {
        schedulers.back()->SetProfile(
            p.key, &p.cost, core::Profiler::ThresholdFor(p, spec.quantum));
      }
      exp.SetGpuHooks(g, schedulers.back().get());
    }
  }

  const auto results = exp.Run(spec.clients);

  metrics::Table t({"Client", "GPU", "Weight", "Prio", "Finish (s)",
                    "GPU dur (s)", "p95 latency (ms)"});
  for (const auto& r : results) {
    metrics::Series lat;
    for (double v : r.request_latency_ms) lat.Add(v);
    const auto& c = spec.clients[static_cast<std::size_t>(&r - &results[0])];
    t.AddRow({r.name, std::to_string(r.gpu_index), std::to_string(c.weight),
              std::to_string(c.priority),
              metrics::Table::Num(r.finish_time.seconds(), 2),
              metrics::Table::Num(r.gpu_duration.seconds(), 2),
              lat.empty() ? "-" : metrics::Table::Num(lat.Percentile(95), 0)});
  }
  t.Print(std::cout);
  std::printf("\npolicy=%s quantum=%lldus utilization=%.1f%%\n",
              spec.policy.c_str(),
              static_cast<long long>(spec.quantum.micros()),
              exp.utilization() * 100);
  return 0;
}
