// Fault drill: a deadline-bound serving workload rides out a mid-run device
// hang, a burst of kernel failures, and a transient allocation-fault window.
//
// Without the degradation machinery a wedged device would leave every client
// blocked indefinitely; with request deadlines, retries, and fault-aware
// accounting the drill completes deterministically and every request ends in
// a definite state: ok, failed_retried, timed_out, rejected, or failed.
//
//   $ ./examples/fault_drill
//
// Run it twice — the output is bit-identical: faults live on the virtual
// clock, so injecting them never breaks the simulator's reproducibility.

#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "core/profiler.h"
#include "core/scheduler.h"
#include "fault/fault.h"
#include "serving/server.h"

using namespace olympian;

int main() {
  const sim::TimePoint t0;

  serving::ServerOptions opts;
  opts.seed = 17;
  // The fault schedule for the drill:
  //   t=100ms   one kernel on stream 0 fails (retried transparently)
  //   t=400ms   the driver wedges for 1.5s (deadlines fire, requests drain)
  //   t=2.5s    allocations fail for 30ms (backoff rides the window out)
  opts.faults.KernelFailure(t0 + sim::Duration::Millis(100), /*stream=*/0)
      .DeviceHang(t0 + sim::Duration::Millis(400), sim::Duration::Millis(1500))
      .AllocFault(t0 + sim::Duration::Millis(2500), sim::Duration::Millis(30));
  opts.degradation.retry.max_retries = 3;

  serving::Experiment exp(opts);

  core::Profiler profiler;
  const auto profile = profiler.ProfileModel("resnet-152", 20);
  core::Scheduler scheduler(exp.env(), exp.gpu(),
                            std::make_unique<core::FairPolicy>());
  scheduler.SetProfile(
      profile.key, &profile.cost,
      core::Profiler::ThresholdFor(profile, sim::Duration::Micros(800)));
  exp.SetHooks(&scheduler);

  // Two tenants, each bounded by a 1.2s request deadline. Healthy requests
  // take ~0.5s; anything caught behind the 1.5s hang blows its budget, is
  // cancelled cooperatively, and the client moves on.
  serving::ClientSpec tenant{.model = "resnet-152", .batch = 20,
                             .num_batches = 8};
  tenant.deadline = sim::Duration::Millis(1200);
  const auto results = exp.Run({tenant, tenant});

  std::printf("%-14s %-9s %s\n", "client", "batches", "request statuses");
  for (const auto& r : results) {
    std::printf("%-14s %d/%-7d ", r.name.c_str(), r.batches_completed,
                static_cast<int>(r.request_status.size()));
    for (const auto s : r.request_status) {
      std::printf("%s ", serving::ToString(s));
    }
    std::printf("\n");
  }

  std::printf("\nmakespan %.3f s, %llu faults applied\n",
              exp.makespan().seconds(),
              static_cast<unsigned long long>(exp.injector()->events_applied()));
  std::printf("\ncounters:\n");
  exp.counters().Print(std::cout);
  return 0;
}
