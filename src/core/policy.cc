#include "core/policy.h"

#include <algorithm>
#include <stdexcept>

namespace olympian::core {

namespace {

// Index of `id` in registration order, or -1.
int IndexOf(const std::vector<JobEntry>& jobs, gpusim::JobId id) {
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].id == id) return static_cast<int>(i);
  }
  return -1;
}

// Next index after `from` (circular); `from` may be -1 (start at 0).
std::size_t NextIndex(std::size_t size, int from) {
  return static_cast<std::size_t>(from + 1) % size;
}

}  // namespace

gpusim::JobId FairPolicy::NextJob(std::vector<JobEntry>& jobs,
                                  gpusim::JobId current) {
  if (jobs.empty()) return gpusim::kNoJob;
  const int cur = IndexOf(jobs, current);
  return jobs[NextIndex(jobs.size(), cur)].id;
}

gpusim::JobId WeightedFairPolicy::NextJob(std::vector<JobEntry>& jobs,
                                          gpusim::JobId current) {
  if (jobs.empty()) return gpusim::kNoJob;
  const int cur = IndexOf(jobs, current);
  if (cur >= 0) {
    JobEntry& e = jobs[static_cast<std::size_t>(cur)];
    if (--e.turn_remaining > 0) return e.id;  // continue this job's turn
  }
  JobEntry& next = jobs[NextIndex(jobs.size(), cur)];
  next.turn_remaining = std::max(1, next.ctx->weight);
  return next.id;
}

gpusim::JobId PriorityPolicy::NextJob(std::vector<JobEntry>& jobs,
                                      gpusim::JobId current) {
  if (jobs.empty()) return gpusim::kNoJob;
  int best = jobs[0].ctx->priority;
  for (const JobEntry& e : jobs) best = std::max(best, e.ctx->priority);
  // Round-robin among the highest-priority jobs, starting after `current`.
  const int cur = IndexOf(jobs, current);
  const int n = static_cast<int>(jobs.size());
  for (int step = 1; step <= n; ++step) {
    const JobEntry& e = jobs[static_cast<std::size_t>((cur + step) % n)];
    if (e.ctx->priority == best) return e.id;
  }
  return gpusim::kNoJob;  // unreachable
}

gpusim::JobId LotteryPolicy::NextJob(std::vector<JobEntry>& jobs,
                                     gpusim::JobId current) {
  (void)current;  // memoryless by design
  if (jobs.empty()) return gpusim::kNoJob;
  std::int64_t total = 0;
  for (const JobEntry& e : jobs) total += std::max(1, e.ctx->weight);
  std::int64_t ticket = rng_.UniformInt(0, total - 1);
  for (const JobEntry& e : jobs) {
    ticket -= std::max(1, e.ctx->weight);
    if (ticket < 0) return e.id;
  }
  return jobs.back().id;  // unreachable
}

gpusim::JobId ReservationPolicy::NextJob(std::vector<JobEntry>& jobs,
                                         gpusim::JobId current) {
  if (jobs.empty()) return gpusim::kNoJob;
  ++total_granted_;
  // Largest reservation deficit first.
  JobEntry* best = nullptr;
  double best_deficit = 0.0;
  for (JobEntry& e : jobs) {
    const double deficit = e.ctx->min_share * static_cast<double>(total_granted_) -
                           static_cast<double>(e.served_quanta);
    if (deficit > best_deficit + 1e-12) {
      best_deficit = deficit;
      best = &e;
    }
  }
  if (best == nullptr) {
    // All reservations met: round-robin the surplus with an own cursor
    // (reservation grants would otherwise reset the rotation position).
    (void)current;
    best = &jobs[static_cast<std::size_t>(rr_cursor_++) % jobs.size()];
  }
  ++best->served_quanta;
  return best->id;
}

std::unique_ptr<SchedulingPolicy> MakePolicy(const std::string& name) {
  if (name == "fair") return std::make_unique<FairPolicy>();
  if (name == "weighted-fair") return std::make_unique<WeightedFairPolicy>();
  if (name == "priority") return std::make_unique<PriorityPolicy>();
  if (name == "lottery") return std::make_unique<LotteryPolicy>();
  if (name == "reservation") return std::make_unique<ReservationPolicy>();
  throw std::invalid_argument("unknown policy: " + name);
}

}  // namespace olympian::core
