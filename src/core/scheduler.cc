#include "core/scheduler.h"

#include <stdexcept>

#include "metrics/registry.h"

namespace olympian::core {

Scheduler::Scheduler(sim::Environment& env, gpusim::Gpu& gpu,
                     std::unique_ptr<SchedulingPolicy> policy, Options options)
    : env_(env),
      gpu_(gpu),
      policy_(std::move(policy)),
      options_(options),
      rng_(options.seed) {
  if (!policy_) throw std::invalid_argument("Scheduler needs a policy");
}

sim::CondVar& Scheduler::JobCv(gpusim::JobId job) {
  auto& cv = job_cvs_[job];
  if (!cv) cv = std::make_unique<sim::CondVar>(env_);
  return *cv;
}

Scheduler::Scheduler(sim::Environment& env, gpusim::Gpu& gpu,
                     std::unique_ptr<SchedulingPolicy> policy)
    : Scheduler(env, gpu, std::move(policy), Options{}) {}

void Scheduler::SetProfile(const std::string& model_key,
                           const graph::CostProfile* profile,
                           double threshold) {
  if (!options_.use_wall_clock) {
    if (profile == nullptr) {
      throw std::invalid_argument("null profile for " + model_key);
    }
    if (threshold <= 0.0) {
      throw std::invalid_argument("threshold must be positive for " +
                                  model_key);
    }
  }
  profiles_[model_key] = ProfileInfo{profile, threshold};
}

void Scheduler::RegisterRun(graph::JobContext& ctx) {
  // Algorithm 2, line 4.
  double threshold = 0.0;
  if (!options_.use_wall_clock) {
    const auto it = profiles_.find(ctx.model_key);
    if (it == profiles_.end()) {
      throw std::logic_error("no offline profile installed for model key '" +
                             ctx.model_key + "'");
    }
    threshold = it->second.threshold;
  }
  jobs_.push_back(JobEntry{ctx.job, &ctx, threshold, 0});
  if (token_ == gpusim::kNoJob) Rotate(gpusim::kNoJob);
}

void Scheduler::DeregisterRun(graph::JobContext& ctx) {
  // Algorithm 2, line 7.
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (jobs_[i].id == ctx.job) {
      jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  if (token_ == ctx.job) Rotate(ctx.job);
}

sim::Task Scheduler::Yield(graph::JobContext& ctx) {
  // Algorithm 2, line 12: suspend while another job holds the token. The
  // loop guards against wakeups that race with a further rotation. A thread
  // woken after suspension pays the OS resume latency before it can launch
  // work — the per-switch cost that shapes the Overhead-Q curve.
  //
  // A cancelled run returns immediately instead of re-waiting: CancelRun
  // wakes the gang precisely so these threads fall through here, observe
  // the cancellation at the node boundary, and release their pool workers.
  sim::CondVar& cv = JobCv(ctx.job);
  for (;;) {
    bool suspended = false;
    while (token_ != ctx.job) {
      if (ctx.cancel != nullptr && ctx.cancel->cancelled) co_return;
      suspended = true;
      co_await cv.Wait();
    }
    if (!suspended) co_return;
    if (options_.resume_latency > sim::Duration::Zero()) {
      co_await env_.Delay(
          rng_.Jitter(options_.resume_latency, options_.resume_jitter));
    }
    if (ctx.cancel != nullptr && ctx.cancel->cancelled) co_return;
    if (token_ == ctx.job) co_return;  // else: lost the token while waking
  }
}

void Scheduler::CancelRun(graph::JobContext& ctx) {
  ++cancellations_;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (jobs_[i].id == ctx.job) {
      jobs_.erase(jobs_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  // Rotating away from a cancelled token holder must land on a live job (or
  // kNoJob), never leak the grant back to the departed gang.
  if (token_ == ctx.job) Rotate(ctx.job);
  const auto it = job_cvs_.find(ctx.job);
  if (it != job_cvs_.end()) it->second->NotifyAll();
}

void Scheduler::OnDeviceDown() {
  ++detaches_;
  // Every in-flight run was already cancelled via CancelRun, which erases
  // its entry — but a run registered between the cancellations and this
  // call (or a cancellation that raced past) must not keep the grant alive
  // on a dead device. Park the token and wake every suspended gang so its
  // threads observe their cancelled tokens and drain.
  jobs_.clear();
  GrantTo(gpusim::kNoJob);
  for (auto& [job, cv] : job_cvs_) cv->NotifyAll();
}

void Scheduler::OnDeviceUp() {
  ++attaches_;
  // Nothing to rebuild eagerly: re-admitted runs re-register through
  // RegisterRun, and the first registration grants the token as usual.
}

void Scheduler::OnSample(metrics::MetricRegistry& registry, sim::TimePoint now,
                         std::size_t device) {
  // Strictly read-only: the golden determinism suite runs with the sampler
  // enabled and expects bit-identical trajectories. Series carry a gpu
  // label — two per-device schedulers sampled at the same instant into one
  // registry must not interleave into a single series.
  if (sample_.registry != &registry || sample_.device != device ||
      sample_.token == nullptr) {
    const metrics::Labels labels{{"gpu", std::to_string(device)}};
    sample_.registry = &registry;
    sample_.device = device;
    sample_.token = &registry.GetSeries("olympian_scheduler_token", labels);
    sample_.active_jobs =
        &registry.GetSeries("olympian_scheduler_active_jobs", labels);
    sample_.token_held =
        &registry.GetSeries("olympian_scheduler_token_held", labels);
    sample_.switches =
        &registry.GetCounter("olympian_scheduler_switches_total", labels);
    sample_.quanta =
        &registry.GetCounter("olympian_scheduler_quanta_total", labels);
  }
  sample_.token->Sample(now, token_ == gpusim::kNoJob
                                 ? -1.0
                                 : static_cast<double>(token_));
  sample_.active_jobs->Sample(now, static_cast<double>(jobs_.size()));
  sample_.token_held->Sample(now, token_ == gpusim::kNoJob ? 0.0 : 1.0);
  sample_.switches->Set(switches_);
  sample_.quanta->Set(quanta_completed_);
}

void Scheduler::OnNodeComputed(graph::JobContext& ctx,
                               const graph::Node& node) {
  if (options_.use_wall_clock) return;  // Figure 19 ablation: timer-driven
  if (!node.is_gpu()) return;           // Algorithm 2, line 14
  if (!options_.charge_overflow && token_ != ctx.job) return;  // ablation
  const ProfileInfo& info = profiles_.at(ctx.model_key);
  ctx.cumulated_cost += info.profile->NodeCost(node.id);
  // Note: this runs on the job's own thread even when the node "overflowed"
  // past a token rotation — the overflow cost is charged to this job
  // (paper Figure 15).
  if (ctx.cumulated_cost >= info.threshold) {
    ctx.cumulated_cost -= info.threshold;  // Algorithm 2, line 17
    ++quanta_completed_;
    // scheduler.updateTokenInfo (line 18): rotates only if this job holds
    // the token; overflow past a rotation merely consumes future budget.
    if (token_ == ctx.job) Rotate(ctx.job);
  }
}

void Scheduler::Rotate(gpusim::JobId leaving) {
  if (token_ != gpusim::kNoJob && options_.record_quanta) {
    quantum_log_.push_back(QuantumRecord{
        .job = token_,
        .start = tenure_start_,
        .end = env_.Now(),
        .gpu_duration = gpu_.JobGpuDuration(token_) - tenure_gpu_start_,
        .active_jobs = jobs_.size()});
  }
  if (options_.tracer != nullptr && token_ != gpusim::kNoJob) {
    options_.tracer->AddSpanNumbered("token", "job-", token_,
                                     metrics::Tracer::kSchedulerTrack,
                                     tenure_start_, env_.Now());
  }
  const gpusim::JobId next = policy_->NextJob(jobs_, leaving);
  GrantTo(next);
}

void Scheduler::GrantTo(gpusim::JobId next) {
  if (token_ != next) ++switches_;
  token_ = next;
  ++token_epoch_;
  tenure_start_ = env_.Now();
  tenure_gpu_start_ =
      next == gpusim::kNoJob ? sim::Duration::Zero() : gpu_.JobGpuDuration(next);
  if (next != gpusim::kNoJob) JobCv(next).NotifyAll();
  if (options_.use_wall_clock && token_ != gpusim::kNoJob) ArmWallTimer();
}

void Scheduler::ArmWallTimer() {
  env_.ScheduleCallbackAt(env_.Now() + options_.wall_quantum,
                          &Scheduler::WallTimerTrampoline, this, token_epoch_);
}

void Scheduler::WallTimerTrampoline(void* ctx, std::uint64_t epoch) {
  auto* self = static_cast<Scheduler*>(ctx);
  if (epoch != self->token_epoch_) return;  // stale: token already moved
  if (self->token_ == gpusim::kNoJob) return;
  ++self->quanta_completed_;
  self->Rotate(self->token_);
}

}  // namespace olympian::core
