#pragma once

#include <iosfwd>
#include <string>

#include "core/profiler.h"

namespace olympian::core {

// Persistence for offline profiles (paper Figure 7: the profiler writes
// model profiles once; the serving path only reads them).
//
// The format is a self-describing text format, one profile per file:
//
//   olympian-profile v1
//   model <name>
//   batch <n>
//   gpu_duration_ns <n>
//   solo_runtime_ns <n>
//   nodes <count>
//   <cost_ns_node_0>
//   ...
//
// Costs are written with full double precision; loading a stored profile
// reproduces thresholds bit-for-bit.
class ProfileStore {
 public:
  // Serialize to/from streams (unit-testable without touching disk).
  static void Write(const ModelProfile& profile, std::ostream& os);
  static ModelProfile Read(std::istream& is);

  // File convenience wrappers. Throws std::runtime_error on I/O failure and
  // std::invalid_argument on malformed content.
  static void Save(const ModelProfile& profile, const std::string& path);
  static ModelProfile Load(const std::string& path);
};

}  // namespace olympian::core
