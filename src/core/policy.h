#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gpusim/kernel.h"
#include "graph/hooks.h"
#include "sim/random.h"

namespace olympian::core {

// Scheduler-side state for one registered job.
struct JobEntry {
  gpusim::JobId id = gpusim::kNoJob;
  graph::JobContext* ctx = nullptr;
  // Cost-accumulation threshold T_j = Q * C_j / D_j (paper §3.2).
  double threshold = 0.0;
  // Quanta left in the job's current turn (weighted fair sharing).
  int turn_remaining = 0;
  // Quanta granted to this job since registration (reservation policy).
  std::int64_t served_quanta = 0;
};

// A pluggable scheduling policy (paper §3.4). Called by the scheduler with
// the registered jobs in registration order whenever the token must move:
// on quantum expiry, job arrival to an idle GPU, or token-holder departure.
//
// `current` is the job releasing the token (kNoJob if it just deregistered
// or the GPU was idle). Returns the next token holder, or kNoJob.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;
  virtual std::string name() const = 0;
  virtual gpusim::JobId NextJob(std::vector<JobEntry>& jobs,
                                gpusim::JobId current) = 0;
};

// Round-robin, one quantum per turn: equal GPU shares (paper Figure 11).
class FairPolicy : public SchedulingPolicy {
 public:
  std::string name() const override { return "fair"; }
  gpusim::JobId NextJob(std::vector<JobEntry>& jobs,
                        gpusim::JobId current) override;
};

// Round-robin where a job with weight w receives w consecutive quanta per
// turn (paper Figure 17).
class WeightedFairPolicy : public SchedulingPolicy {
 public:
  std::string name() const override { return "weighted-fair"; }
  gpusim::JobId NextJob(std::vector<JobEntry>& jobs,
                        gpusim::JobId current) override;
};

// Highest-priority job first; equal-priority jobs round-robin among
// themselves (paper Figure 18).
class PriorityPolicy : public SchedulingPolicy {
 public:
  std::string name() const override { return "priority"; }
  gpusim::JobId NextJob(std::vector<JobEntry>& jobs,
                        gpusim::JobId current) override;
};

// Lottery scheduling (an "expanded policy" beyond the paper, from its
// future-work list): each quantum goes to a job drawn with probability
// proportional to its weight. Same expected shares as weighted fair
// sharing, but with stochastic interleaving — no job can be starved for
// long, and shares hold even as jobs churn.
class LotteryPolicy : public SchedulingPolicy {
 public:
  explicit LotteryPolicy(std::uint64_t seed = 7) : rng_(seed) {}
  std::string name() const override { return "lottery"; }
  gpusim::JobId NextJob(std::vector<JobEntry>& jobs,
                        gpusim::JobId current) override;

 private:
  sim::Rng rng_;
};

// Reservation scheduling (extension): each job may declare a guaranteed
// minimum GPU share (`JobContext::min_share`); the policy grants the next
// quantum to the job with the largest reservation deficit, falling back to
// round-robin when every reservation is met. Total declared reservations
// should stay below 1.
class ReservationPolicy : public SchedulingPolicy {
 public:
  std::string name() const override { return "reservation"; }
  gpusim::JobId NextJob(std::vector<JobEntry>& jobs,
                        gpusim::JobId current) override;

 private:
  std::int64_t total_granted_ = 0;
  std::int64_t rr_cursor_ = 0;
};

std::unique_ptr<SchedulingPolicy> MakePolicy(const std::string& name);

}  // namespace olympian::core
