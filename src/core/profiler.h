#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/cost_model.h"
#include "serving/server.h"
#include "sim/time.h"

namespace olympian::core {

// The offline profile of one (model, batch) pair, plus its Overhead-Q curve
// (paper Figure 8) once computed.
struct ModelProfile {
  std::string model;
  int batch = 0;
  std::string key;  // models::ModelKey(model, batch)
  graph::CostProfile cost;

  // (quantum Q, measured overhead) points, ascending in Q.
  std::vector<std::pair<sim::Duration, double>> overhead_q;

  double TotalCost() const { return cost.TotalCost(); }
  sim::Duration GpuDuration() const { return cost.gpu_duration; }
  double CostAccumulationRate() const { return cost.CostAccumulationRate(); }
};

struct ProfilerOptions {
  // Solo runs averaged into one profile (DNN execution is predictable, so a
  // few suffice — paper §4.4 measures ~2% run-to-run stddev).
  int profile_runs = 3;
  // Quantum sweep for the Overhead-Q curves.
  std::vector<sim::Duration> q_sweep = {
      sim::Duration::Micros(300),  sim::Duration::Micros(500),
      sim::Duration::Micros(800),  sim::Duration::Micros(1200),
      sim::Duration::Micros(1600), sim::Duration::Micros(2400),
      sim::Duration::Micros(3600), sim::Duration::Micros(5000)};
  // Batches per client in the two-instance overhead measurements.
  int curve_num_batches = 3;
  std::uint64_t seed = 7;
  // Server configuration profiles are taken under. Profiling runs offline —
  // in their own private simulation with an idle GPU — mirroring the paper.
  serving::ServerOptions server;
};

// Olympian's offline profiler (paper §3.2, Figure 7).
//
// For each model it measures, with exclusive GPU access:
//   * per-node costs (Tensorflow cost-model equivalent), summing to C_j,
//   * the GPU duration D_j (Figure 5 union),
// and derives the cost-accumulation rate C_j / D_j. Given a desired quantum
// Q, the scheduler threshold is T_j = Q * C_j / D_j. The Overhead-Q curve
// is measured by running two instances of the model under Olympian's fair
// scheduler vs. stock TF-Serving and comparing finish times.
class Profiler {
 public:
  explicit Profiler(ProfilerOptions options = {});

  // Solo profiling of (model, batch). Deterministic given options.seed.
  ModelProfile ProfileModel(const std::string& model, int batch) const;

  // Fills `profile.overhead_q` by measurement (one pair of experiments per
  // sweep point).
  void ComputeOverheadQCurve(ModelProfile& profile) const;

  // The operator-facing knob (paper §3.2 "Determining Q"): smallest Q whose
  // measured overhead is within `tolerance` for *every* profile (i.e. the
  // max over models of each model's smallest acceptable Q). Curves must
  // have been computed. Falls back to the largest swept Q.
  static sim::Duration SelectQ(const std::vector<const ModelProfile*>& profiles,
                               double tolerance);

  // Scheduler threshold T_j for a chosen quantum.
  static double ThresholdFor(const ModelProfile& profile, sim::Duration q);

  // Cross-batch linear regression (paper Figure 20): synthesize a profile
  // for `target_batch` from two measured profiles of the same model.
  static ModelProfile Interpolate(const ModelProfile& a, const ModelProfile& b,
                                  int target_batch);

  const ProfilerOptions& options() const { return options_; }

 private:
  double MeasureOverheadAt(const ModelProfile& profile, sim::Duration q) const;

  ProfilerOptions options_;
};

}  // namespace olympian::core
