#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/policy.h"
#include "gpusim/gpu.h"
#include "graph/cost_model.h"
#include "graph/hooks.h"
#include "metrics/registry.h"
#include "metrics/trace.h"
#include "sim/environment.h"
#include "sim/random.h"
#include "sim/sync.h"

namespace olympian::core {

// Olympian's scheduler — the implementation of the paper's Algorithm 2.
//
// The scheduler maintains a single *token*: the job currently granted
// exclusive (temporal) GPU access. Every thread of every job passes through
// `Yield` before computing a node and suspends on a condition variable
// while its job does not hold the token — cooperative gang scheduling.
// After each GPU node completes, `OnNodeComputed` accrues the node's
// *profiled* cost into the job's gang-shared `cumulated_cost`; when it
// crosses the job's threshold T_j = Q * C_j / D_j, one quantum has elapsed
// and the token rotates per the active policy.
//
// Threads that already launched a kernel are not interrupted: they finish
// their node after the token moves (the paper's "overflow", Figures 10/15),
// and the overflow cost is still charged to the original job because
// OnNodeComputed runs on the job's own thread.
//
// `Options::use_wall_clock` replaces cost-based accounting with a plain CPU
// timer — the failed strawman of the paper's Figure 19 — kept for ablation.
class Scheduler : public graph::SchedulingHooks {
 public:
  struct Options {
    bool use_wall_clock = false;
    sim::Duration wall_quantum = sim::Duration::Millis(2);
    // Keep a full per-quantum log (Figures 12/14/16). Cheap; on by default.
    bool record_quanta = true;
    // OS wake-up latency paid by a gang's threads when their job regains
    // the token (futex wake + run-queue delay). This is the dominant
    // per-switch cost and gives the Overhead-Q curve its shape (Figure 8):
    // smaller quanta amortize it over less GPU time.
    sim::Duration resume_latency = sim::Duration::Micros(40);
    double resume_jitter = 0.3;
    // Charge the cost of nodes that finish after their job lost the token
    // to that job (the paper's Figure 15 design). Disabling this is an
    // ablation (bench_ablation_overflow): uncharged overflow systematically
    // inflates the GPU share of overflow-heavy jobs.
    bool charge_overflow = true;
    std::uint64_t seed = 99;
    // Optional: record token tenures as spans on Tracer::kSchedulerTrack.
    metrics::Tracer* tracer = nullptr;
  };

  // One observed scheduling interval (token tenure) of a job.
  struct QuantumRecord {
    gpusim::JobId job = gpusim::kNoJob;
    sim::TimePoint start;
    sim::TimePoint end;
    // GPU duration the job accumulated during this tenure (Figure 14).
    sim::Duration gpu_duration;
    // Number of registered jobs when the quantum ended.
    std::size_t active_jobs = 0;
  };

  Scheduler(sim::Environment& env, gpusim::Gpu& gpu,
            std::unique_ptr<SchedulingPolicy> policy, Options options);
  // Default options.
  Scheduler(sim::Environment& env, gpusim::Gpu& gpu,
            std::unique_ptr<SchedulingPolicy> policy);

  // Install the offline profile for a model key ("inception-v4@100"):
  // per-node costs plus the quantum threshold T_j. Every job registered
  // with that key uses them. `profile` must outlive the scheduler.
  void SetProfile(const std::string& model_key,
                  const graph::CostProfile* profile, double threshold);

  // --- graph::SchedulingHooks (Algorithm 2) -----------------------------
  void RegisterRun(graph::JobContext& ctx) override;
  void DeregisterRun(graph::JobContext& ctx) override;
  bool NeedsYield(const graph::JobContext& ctx) const override {
    return token_ != ctx.job;
  }
  sim::Task Yield(graph::JobContext& ctx) override;
  void OnNodeComputed(graph::JobContext& ctx, const graph::Node& node) override;
  // Cancellation path (deadline / fault): deregisters the job, rotates the
  // token to a live job if the cancelled gang held it, and wakes the gang's
  // suspended threads so they observe the cancellation and drain rather
  // than holding pool threads forever. Idempotent.
  void CancelRun(graph::JobContext& ctx) override;
  // Failover path: the device went down (every in-flight run already went
  // through CancelRun). Clears leftover registrations, parks the token, and
  // wakes every suspended gang so nothing waits on a grant that will never
  // come. OnDeviceUp re-arms the wall timer; registration state rebuilds
  // itself as re-admitted runs arrive.
  void OnDeviceDown() override;
  void OnDeviceUp() override;
  // Observability tick: publishes token occupancy (holder, active jobs) and
  // cumulative switch/quantum counters into `registry`, labeled with the
  // sampled device so per-GPU schedulers feeding one registry stay
  // distinct. Handles are cached per (registry, device), so steady-state
  // ticks do no map lookups. Read-only.
  void OnSample(metrics::MetricRegistry& registry, sim::TimePoint now,
                std::size_t device) override;

  // --- introspection -----------------------------------------------------
  gpusim::JobId token() const { return token_; }
  std::uint64_t switches() const { return switches_; }
  std::uint64_t cancellations() const { return cancellations_; }
  std::uint64_t detaches() const { return detaches_; }
  std::uint64_t attaches() const { return attaches_; }
  std::uint64_t quanta_completed() const { return quanta_completed_; }
  const std::vector<QuantumRecord>& quantum_log() const { return quantum_log_; }
  const SchedulingPolicy& policy() const { return *policy_; }

 private:
  struct ProfileInfo {
    const graph::CostProfile* profile = nullptr;
    double threshold = 0.0;
  };

  void Rotate(gpusim::JobId leaving);
  void GrantTo(gpusim::JobId next);
  void ArmWallTimer();
  static void WallTimerTrampoline(void* ctx, std::uint64_t epoch);

  sim::Environment& env_;
  gpusim::Gpu& gpu_;
  std::unique_ptr<SchedulingPolicy> policy_;
  Options options_;
  sim::Rng rng_{1};

  sim::CondVar& JobCv(gpusim::JobId job);

  // Labeled metric handles resolved on the first OnSample tick (and again
  // only if the registry or device changes), so the sampler's steady state
  // never touches the registry's map.
  struct SampleHandles {
    metrics::MetricRegistry* registry = nullptr;
    std::size_t device = 0;
    metrics::MetricRegistry::TimeSeries* token = nullptr;
    metrics::MetricRegistry::TimeSeries* active_jobs = nullptr;
    metrics::MetricRegistry::TimeSeries* token_held = nullptr;
    metrics::MetricRegistry::Counter* switches = nullptr;
    metrics::MetricRegistry::Counter* quanta = nullptr;
  };
  SampleHandles sample_;

  std::unordered_map<std::string, ProfileInfo> profiles_;
  std::vector<JobEntry> jobs_;  // registration order
  gpusim::JobId token_ = gpusim::kNoJob;
  // One condition variable per job: a token grant wakes only the granted
  // job's gang, not every suspended thread in the server.
  std::unordered_map<gpusim::JobId, std::unique_ptr<sim::CondVar>> job_cvs_;
  std::uint64_t token_epoch_ = 0;  // guards stale wall-clock timers

  sim::TimePoint tenure_start_;
  sim::Duration tenure_gpu_start_;

  std::uint64_t switches_ = 0;
  std::uint64_t cancellations_ = 0;
  std::uint64_t detaches_ = 0;
  std::uint64_t attaches_ = 0;
  std::uint64_t quanta_completed_ = 0;
  std::vector<QuantumRecord> quantum_log_;
};

}  // namespace olympian::core
