#include "core/profiler.h"

#include <algorithm>
#include <stdexcept>

#include "core/scheduler.h"
#include "graph/executor.h"
#include "graph/thread_pool.h"
#include "models/model_zoo.h"

namespace olympian::core {

Profiler::Profiler(ProfilerOptions options) : options_(std::move(options)) {
  if (options_.profile_runs < 1) {
    throw std::invalid_argument("profile_runs must be >= 1");
  }
  if (options_.q_sweep.empty()) {
    throw std::invalid_argument("q_sweep must not be empty");
  }
}

ModelProfile Profiler::ProfileModel(const std::string& model,
                                    int batch) const {
  const models::ModelSpec& spec = models::GetModel(model);
  const graph::Graph g = models::BuildModel(spec);

  // A private offline simulation: one job, idle GPU (paper §3.2 — profiles
  // are computed "when the GPU is idle" and reused, adding no serving-time
  // overhead).
  sim::Environment env;
  gpusim::Gpu::Options gpu_opts = options_.server.gpu;
  gpu_opts.seed = options_.seed;
  gpusim::Gpu gpu(env, gpu_opts);
  graph::ThreadPool pool(env, options_.server.pool_threads);
  graph::Executor exec(env, gpu, pool, options_.server.executor,
                       options_.seed + 1, nullptr);

  graph::JobContext ctx;
  ctx.job = 0;
  ctx.model_key = models::ModelKey(model, batch);
  ctx.batch = batch;
  for (int s = 0; s < options_.server.streams_per_job; ++s) {
    ctx.streams.push_back(gpu.CreateStream());
  }

  std::vector<graph::CostProfile> runs(
      static_cast<std::size_t>(options_.profile_runs));
  env.Spawn(
      [](graph::Executor& ex, gpusim::Gpu& dev, graph::ThreadPool& pl,
         graph::JobContext& c, const graph::Graph& graph,
         std::vector<graph::CostProfile>& out) -> sim::Task {
        for (auto& profile : out) {
          const sim::Duration d0 = dev.JobGpuDuration(c.job);
          const sim::TimePoint t0 = ex.env().Now();
          co_await ex.RunOnce(c, graph, &profile);
          profile.gpu_duration = dev.JobGpuDuration(c.job) - d0;
          profile.solo_runtime = ex.env().Now() - t0;
        }
        pl.Shutdown();
      }(exec, gpu, pool, ctx, g, runs),
      "profiler");
  env.Run();

  // Average the runs element-wise.
  ModelProfile result;
  result.model = model;
  result.batch = batch;
  result.key = ctx.model_key;
  result.cost.Resize(g.size());
  const double n = static_cast<double>(runs.size());
  sim::Duration d_sum, rt_sum;
  for (const graph::CostProfile& r : runs) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      result.cost.mutable_costs()[i] += r.costs()[i] / n;
    }
    d_sum += r.gpu_duration;
    rt_sum += r.solo_runtime;
  }
  result.cost.gpu_duration = d_sum / options_.profile_runs;
  result.cost.solo_runtime = rt_sum / options_.profile_runs;
  return result;
}

double Profiler::MeasureOverheadAt(const ModelProfile& profile,
                                   sim::Duration q) const {
  const serving::ClientSpec client{.model = profile.model,
                                   .batch = profile.batch,
                                   .num_batches = options_.curve_num_batches};
  const std::vector<serving::ClientSpec> clients(2, client);

  serving::ServerOptions opts = options_.server;
  opts.seed = options_.seed + 17;

  // Case (a): stock TF-Serving.
  serving::Experiment base(opts);
  const auto base_results = base.Run(clients);

  // Case (b): Olympian, fair sharing at quantum q.
  serving::Experiment oly(opts);
  Scheduler sched(oly.env(), oly.gpu(), std::make_unique<FairPolicy>());
  sched.SetProfile(profile.key, &profile.cost, ThresholdFor(profile, q));
  oly.SetHooks(&sched);
  const auto oly_results = oly.Run(clients);

  auto finish = [](const std::vector<serving::ClientResult>& rs) {
    sim::Duration m;
    for (const auto& r : rs) m = std::max(m, r.finish_time);
    return m;
  };
  const double fb = finish(base_results).seconds();
  const double fo = finish(oly_results).seconds();
  return fb <= 0 ? 0.0 : (fo - fb) / fb;
}

void Profiler::ComputeOverheadQCurve(ModelProfile& profile) const {
  profile.overhead_q.clear();
  for (const sim::Duration q : options_.q_sweep) {
    profile.overhead_q.emplace_back(q, MeasureOverheadAt(profile, q));
  }
}

sim::Duration Profiler::SelectQ(
    const std::vector<const ModelProfile*>& profiles, double tolerance) {
  if (profiles.empty()) {
    throw std::invalid_argument("SelectQ needs at least one profile");
  }
  sim::Duration q_max;
  for (const ModelProfile* p : profiles) {
    if (p->overhead_q.empty()) {
      throw std::logic_error("Overhead-Q curve missing for " + p->key);
    }
    // Smallest swept Q meeting the tolerance, linearly interpolated against
    // the previous point when it brackets the tolerance.
    sim::Duration q_model = p->overhead_q.back().first;  // fallback: largest
    for (std::size_t i = 0; i < p->overhead_q.size(); ++i) {
      const auto [q, o] = p->overhead_q[i];
      if (o <= tolerance) {
        if (i > 0 && p->overhead_q[i - 1].second > tolerance) {
          const auto [q0, o0] = p->overhead_q[i - 1];
          const double frac = (o0 - tolerance) / (o0 - o);
          q_model = q0 + (q - q0) * frac;
        } else {
          q_model = q;
        }
        break;
      }
    }
    q_max = std::max(q_max, q_model);
  }
  return q_max;
}

double Profiler::ThresholdFor(const ModelProfile& profile, sim::Duration q) {
  const double rate = profile.CostAccumulationRate();
  if (rate <= 0) {
    throw std::logic_error("profile for " + profile.key +
                           " has no GPU duration");
  }
  return static_cast<double>(q.nanos()) * rate;
}

ModelProfile Profiler::Interpolate(const ModelProfile& a,
                                   const ModelProfile& b, int target_batch) {
  if (a.model != b.model) {
    throw std::invalid_argument("Interpolate needs profiles of one model");
  }
  if (a.batch == b.batch) {
    throw std::invalid_argument("Interpolate needs two distinct batch sizes");
  }
  if (a.cost.size() != b.cost.size()) {
    throw std::logic_error("profile size mismatch");
  }
  ModelProfile out;
  out.model = a.model;
  out.batch = target_batch;
  out.key = models::ModelKey(a.model, target_batch);
  out.cost.Resize(a.cost.size());

  const double xa = a.batch, xb = b.batch, xt = target_batch;
  const double t = (xt - xa) / (xb - xa);
  auto lerp = [t](double va, double vb) { return va + (vb - va) * t; };

  for (std::size_t i = 0; i < a.cost.size(); ++i) {
    out.cost.mutable_costs()[i] =
        std::max(0.0, lerp(a.cost.costs()[i], b.cost.costs()[i]));
  }
  out.cost.gpu_duration = sim::Duration::Nanos(static_cast<std::int64_t>(
      lerp(static_cast<double>(a.cost.gpu_duration.nanos()),
           static_cast<double>(b.cost.gpu_duration.nanos()))));
  out.cost.solo_runtime = sim::Duration::Nanos(static_cast<std::int64_t>(
      lerp(static_cast<double>(a.cost.solo_runtime.nanos()),
           static_cast<double>(b.cost.solo_runtime.nanos()))));
  return out;
}

}  // namespace olympian::core
