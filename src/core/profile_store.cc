#include "core/profile_store.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "models/model_zoo.h"

namespace olympian::core {

namespace {

constexpr const char* kMagic = "olympian-profile";
constexpr const char* kVersion = "v1";

std::string ExpectKey(std::istream& is, const std::string& key) {
  std::string k, v;
  if (!(is >> k >> v) || k != key) {
    throw std::invalid_argument("profile parse error: expected '" + key +
                                "', got '" + k + "'");
  }
  return v;
}

}  // namespace

void ProfileStore::Write(const ModelProfile& profile, std::ostream& os) {
  os << kMagic << ' ' << kVersion << '\n';
  os << "model " << profile.model << '\n';
  os << "batch " << profile.batch << '\n';
  os << "gpu_duration_ns " << profile.cost.gpu_duration.nanos() << '\n';
  os << "solo_runtime_ns " << profile.cost.solo_runtime.nanos() << '\n';
  os << "nodes " << profile.cost.size() << '\n';
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (double c : profile.cost.costs()) os << c << '\n';
}

ModelProfile ProfileStore::Read(std::istream& is) {
  std::string magic, version;
  if (!(is >> magic >> version) || magic != kMagic) {
    throw std::invalid_argument("not an olympian profile");
  }
  if (version != kVersion) {
    throw std::invalid_argument("unsupported profile version " + version);
  }
  ModelProfile p;
  p.model = ExpectKey(is, "model");
  p.batch = std::stoi(ExpectKey(is, "batch"));
  p.key = models::ModelKey(p.model, p.batch);
  p.cost.gpu_duration =
      sim::Duration::Nanos(std::stoll(ExpectKey(is, "gpu_duration_ns")));
  p.cost.solo_runtime =
      sim::Duration::Nanos(std::stoll(ExpectKey(is, "solo_runtime_ns")));
  const std::size_t n = std::stoul(ExpectKey(is, "nodes"));
  p.cost.Resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double c;
    if (!(is >> c)) {
      throw std::invalid_argument("profile truncated at node " +
                                  std::to_string(i));
    }
    if (c < 0) {
      throw std::invalid_argument("negative node cost at node " +
                                  std::to_string(i));
    }
    p.cost.RecordNodeCost(static_cast<graph::NodeId>(i), c);
  }
  return p;
}

void ProfileStore::Save(const ModelProfile& profile, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path + " for writing");
  Write(profile, os);
  if (!os) throw std::runtime_error("write to " + path + " failed");
}

ModelProfile ProfileStore::Load(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open " + path);
  return Read(is);
}

}  // namespace olympian::core
