#pragma once

#include <cstdint>
#include <string>

namespace olympian::gpusim {

// Static description of a simulated GPU.
//
// The execution model is deliberately coarse: the device exposes
// `num_sms * max_blocks_per_sm` concurrent thread-block slots; a kernel's
// blocks are placed onto free slots in waves, each wave taking the kernel's
// per-block work time (scaled by `clock_scale`). This captures the two
// behaviours the paper depends on — large-batch kernels saturate the device
// (no spatial multiplexing across requests, §2.3) while small kernels can
// overlap — without simulating warps or memory hierarchies.
struct GpuSpec {
  std::string name;
  int num_sms = 28;
  int max_blocks_per_sm = 8;
  // Relative compute speed; block work durations are divided by this.
  double clock_scale = 1.0;
  // Device memory, for capacity/scalability accounting (§4.3).
  std::int64_t memory_mb = 11264;

  // Power model (the paper lists power as future work): board power while
  // kernels are resident vs idle, plus a component proportional to slot
  // occupancy. Energy = idle_watts*T + busy_extra_watts*T_busy
  //                     + occupancy_watts * integral(occupied/total dt).
  double idle_watts = 55.0;
  double busy_extra_watts = 90.0;
  double occupancy_watts = 105.0;

  std::int64_t total_block_slots() const {
    return static_cast<std::int64_t>(num_sms) * max_blocks_per_sm;
  }

  // The paper's primary testbed: GeForce GTX 1080 Ti (28 SMs, 11 GB).
  static GpuSpec Gtx1080Ti() {
    return GpuSpec{.name = "GTX-1080Ti",
                   .num_sms = 28,
                   .max_blocks_per_sm = 8,
                   .clock_scale = 1.0,
                   .memory_mb = 11264};
  }

  // The paper's portability testbed (Figure 21): NVIDIA Titan X (Pascal),
  // same SM count, slightly lower sustained clock, 12 GB.
  static GpuSpec TitanXPascal() {
    return GpuSpec{.name = "TitanX-Pascal",
                   .num_sms = 28,
                   .max_blocks_per_sm = 8,
                   .clock_scale = 0.82,
                   .memory_mb = 12288};
  }
};

}  // namespace olympian::gpusim
