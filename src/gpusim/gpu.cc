#include "gpusim/gpu.h"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace olympian::gpusim {
namespace {
constexpr std::size_t kKernelChunk = 64;

std::uint64_t WaveArg(std::uint64_t slot, std::uint32_t gen) {
  return slot | (static_cast<std::uint64_t>(gen) << 32);
}
}  // namespace

Gpu::Gpu(sim::Environment& env, Options options)
    : env_(env),
      options_(std::move(options)),
      rng_(options_.seed),
      free_slots_(options_.spec.total_block_slots()) {
  if (options_.spec.total_block_slots() <= 0) {
    throw std::invalid_argument("GpuSpec must expose at least one block slot");
  }
  if (options_.mean_burst < 1.0) {
    throw std::invalid_argument("mean_burst must be >= 1");
  }
  if (options_.clock_noise_sigma > 0.0) {
    options_.spec.clock_scale *=
        std::max(0.5, rng_.Normal(1.0, options_.clock_noise_sigma));
  }
}

Gpu::~Gpu() = default;

StreamId Gpu::CreateStream() {
  streams_.push_back(std::make_unique<Stream>());
  Stream& s = *streams_.back();
  s.id = static_cast<StreamId>(streams_.size()) - 1;
  s.arb_weight = options_.arbitration_bias_sigma > 0
                     ? rng_.LogNormal(0.0, options_.arbitration_bias_sigma)
                     : 1.0;
  return s.id;
}

Gpu::Kernel* Gpu::AllocKernel() {
  if (kernel_free_ == nullptr) {
    kernel_chunks_.push_back(std::make_unique<Kernel[]>(kKernelChunk));
    Kernel* base = kernel_chunks_.back().get();
    for (std::size_t i = 0; i < kKernelChunk; ++i) {
      base[i].next = kernel_free_;
      kernel_free_ = &base[i];
    }
  }
  Kernel* k = kernel_free_;
  kernel_free_ = k->next;
  k->next = nullptr;
  ++pending_kernels_;
  return k;
}

void Gpu::FreeKernel(Kernel* k) {
  --pending_kernels_;
  k->waiter = nullptr;
  k->failed_out = nullptr;
  k->next = kernel_free_;
  kernel_free_ = k;
}

void Gpu::Enqueue(StreamId stream, const KernelDesc& desc,
                  std::coroutine_handle<> waiter, bool* failed_out) {
  if (stream < 0 || static_cast<std::size_t>(stream) >= streams_.size()) {
    throw std::out_of_range("Submit to unknown stream");
  }
  if (desc.thread_blocks < 1) {
    throw std::invalid_argument("kernel needs >= 1 thread block");
  }
  if (desc.block_work < sim::Duration::Zero()) {
    throw std::invalid_argument("kernel block work must be non-negative");
  }
  if (down_) {
    // The driver is gone for the rest of the outage: the launch returns an
    // error immediately instead of queueing (a cudaErrorDeviceUnavailable).
    // Without a failed_out flag there is no channel to report through, so
    // the rejection surfaces as a synchronous throw (see the contract on
    // the declaration) — never as a silent success.
    ++kernels_failed_;
    if (failed_out == nullptr) {
      throw KernelFailed("launch rejected: device " + options_.spec.name +
                         " is down (reset outage)");
    }
    *failed_out = true;
    if (waiter) env_.ScheduleNow(waiter);
    return;
  }
  Kernel* k = AllocKernel();
  k->desc = desc;
  k->blocks_left = desc.thread_blocks;
  k->in_flight = 0;
  k->exclusive = desc.thread_blocks >= options_.spec.total_block_slots();
  k->failed = false;
  k->enqueued = env_.Now();
  k->waiter = waiter;
  k->failed_out = failed_out;
  Stream& s = *streams_[static_cast<std::size_t>(stream)];
  s.queue.push(k);
  if (StreamReady(s)) MarkReady(stream);
  Dispatch();
}

bool Gpu::StreamReady(const Stream& s) const {
  if (s.active != nullptr) return s.active->blocks_left > 0;
  return !s.queue.empty();
}

void Gpu::MarkReady(StreamId id) {
  Stream& s = *streams_[static_cast<std::size_t>(id)];
  if (s.in_ready_list) return;
  s.in_ready_list = true;
  ready_.push_back(id);
}

std::uint64_t Gpu::AcquireWaveSlot() {
  if (!free_wave_slots_.empty()) {
    const std::uint64_t slot = free_wave_slots_.back();
    free_wave_slots_.pop_back();
    return slot;
  }
  waves_.push_back(Wave{});
  return waves_.size() - 1;
}

void Gpu::ReleaseWaveSlot(std::uint64_t slot) {
  waves_[slot].active = false;
  ++waves_[slot].gen;  // orphan any timer event still pointing here
  free_wave_slots_.push_back(slot);
}

std::int64_t Gpu::CoalescibleWaves(const Kernel* k, sim::Duration d,
                                   std::int64_t max_waves) const {
  if (!options_.coalesce_wave_trains || max_waves < 2) return 1;
  const std::int64_t dn = d.nanos();
  if (dn <= 0) return 1;  // zero-length waves: nothing to save
  // The train refills the whole free pool at every boundary, so no ready
  // stream can interleave; the only thing that can change the wave size is
  // another in-flight occupancy ending (or a wave of this kernel itself,
  // whose boundaries are staggered against ours). Cap the train strictly
  // before the earliest such event; the remainder re-dispatches there with
  // the exact uncoalesced semantics.
  std::int64_t m = max_waves;
  const sim::TimePoint now = env_.Now();
  if (now < capacity_until_) {
    // Every train wave must *start* while the capacity window is still
    // open: wave j begins at now + (j-1)*d, and a wave starting at or
    // after the window close would dispatch at full speed on the
    // uncoalesced path. (Trains never start *before* a window opens:
    // ThrottleCapacity splits active trains at the open edge.)
    const std::int64_t avail = (capacity_until_ - now).nanos();
    const std::int64_t limit = (avail - 1) / dn + 1;
    if (limit < m) m = limit;
    if (m < 2) return 1;
  }
  for (const Wave& w : waves_) {
    if (!w.active) continue;
    if (w.kernel == k) return 1;
    const std::int64_t avail = (w.end - now).nanos();
    if (avail <= dn) return 1;
    const std::int64_t limit = (avail - 1) / dn;  // largest m: m*dn < avail
    if (limit < m) m = limit;
    if (m < 2) return 1;
  }
  return m;
}

void Gpu::Dispatch() {
  if (dispatching_) return;  // re-entrancy guard (Enqueue during callbacks)
  if (hung_) return;         // wedged driver: issue nothing until the hang ends
  if (down_) return;         // reset outage: the driver is gone entirely
  dispatching_ = true;
  while (free_slots_ > 0) {
    Stream* cur =
        current_ >= 0 ? streams_[static_cast<std::size_t>(current_)].get()
                      : nullptr;
    // Finish issuing the in-flight kernel of the current stream first.
    if (cur != nullptr && cur->active != nullptr &&
        cur->active->blocks_left > 0) {
      // fallthrough to wave issue below
    } else {
      // Need to start (or switch to) a kernel.
      const bool current_usable =
          cur != nullptr && burst_left_ > 0 && StreamReady(*cur);
      if (!current_usable) {
        if (cur != nullptr && StreamReady(*cur)) MarkReady(current_);
        current_ = -1;
        // Job-blind arbitration: pick a ready stream at random, weighted by
        // its persistent channel bias. Stale entries (a stream re-listed at
        // kernel retirement that went straight back to being current, or
        // work failed by a fault) are dropped lazily in the same pass that
        // sums the weights. The drop order, the index-order floating-point
        // sum, and the always-taken RNG draw are all part of the pinned
        // deterministic trajectory (golden_determinism_test) — an
        // incrementally-maintained total rounds differently and silently
        // changes which stream a given draw lands on. Keep this one
        // sum-and-clean pass plus the early-exit prefix scan below; do not
        // "optimize" it into running state.
        while (!ready_.empty()) {
          double total_w = 0.0;
          for (std::size_t i = 0; i < ready_.size();) {
            Stream& rs = *streams_[static_cast<std::size_t>(ready_[i])];
            if (!StreamReady(rs)) {
              rs.in_ready_list = false;
              ready_[i] = ready_.back();
              ready_.pop_back();
              continue;
            }
            total_w += rs.arb_weight;
            ++i;
          }
          if (ready_.empty()) break;
          double pick = rng_.NextDouble() * total_w;
          std::size_t idx = 0;
          for (; idx + 1 < ready_.size(); ++idx) {
            pick -= streams_[static_cast<std::size_t>(ready_[idx])]->arb_weight;
            if (pick <= 0) break;
          }
          const StreamId id = ready_[idx];
          ready_[idx] = ready_.back();
          ready_.pop_back();
          streams_[static_cast<std::size_t>(id)]->in_ready_list = false;
          current_ = id;
          break;
        }
        if (current_ < 0) break;  // nothing issuable anywhere
        // Geometric-ish burst length: how many kernels this stream may start
        // before the driver re-arbitrates.
        const double u = rng_.NextDouble();
        burst_left_ = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(
                   std::llround(-std::log(1.0 - u) * options_.mean_burst)));
        cur = streams_[static_cast<std::size_t>(current_)].get();
      }
      if (cur->active == nullptr) {
        if (cur->queue.empty()) {
          current_ = -1;
          continue;
        }
        cur->active = cur->queue.pop();
        // Compute-start stamp: the kernel leaves the queue here (kernels
        // failed while still queued never start and are not counted).
        queue_wait_ns_ += (env_.Now() - cur->active->enqueued).nanos();
        ++kernels_dequeued_;
        --burst_left_;
      } else if (cur->active->blocks_left == 0) {
        // Active kernel fully issued but still draining; in-stream FIFO means
        // this stream cannot start another kernel yet.
        current_ = -1;
        continue;
      }
    }

    // Issue one wave (or a coalesced train) of the current stream's active
    // kernel.
    Stream& s = *streams_[static_cast<std::size_t>(current_)];
    Kernel* k = s.active;
    if (k->exclusive) {
      // A saturating kernel needs the whole device; head-of-line wait until
      // in-flight waves drain, then run all its waves as one occupancy.
      if (occupied_slots_ > 0) break;  // re-dispatched on wave completion
      const std::int64_t total = options_.spec.total_block_slots();
      const std::int64_t n_ex = k->blocks_left;
      const std::int64_t waves = (n_ex + total - 1) / total;
      k->blocks_left = 0;
      k->in_flight = n_ex;
      free_slots_ = 0;
      NoteOccupancyChange(total);
      const sim::TimePoint now = env_.Now();
      JobMeter(k->desc.job).OnBegin(now);
      busy_.OnBegin(now);
      ++waves_dispatched_;
      const std::uint64_t slot = AcquireWaveSlot();
      Wave& w = waves_[slot];
      const sim::Duration d = k->desc.block_work *
                              (static_cast<double>(waves) /
                               (options_.spec.clock_scale * CapacityAt(now)));
      w.kernel = k;
      w.stream = &s;
      w.blocks = n_ex;
      w.slots_held = total;
      w.waves = 1;  // one occupancy; exclusive trains are never split
      w.start = now;
      w.end = now + d;
      w.wave_d = d;
      w.active = true;
      env_.ScheduleCallbackAt(w.end, &Gpu::WaveTrampoline, this,
                              WaveArg(slot, w.gen));
      continue;
    }
    const std::int64_t n = std::min(k->blocks_left, free_slots_);
    const sim::Duration d =
        k->desc.block_work *
        (1.0 / (options_.spec.clock_scale * CapacityAt(env_.Now())));
    // Wave-train coalescing: if this wave takes every free slot and the
    // kernel has at least one more identical wave behind it, fold as many
    // back-to-back waves as provably run undisturbed into one completion
    // event. Finish times are unchanged — only event count drops.
    std::int64_t m = 1;
    if (n == free_slots_ && k->blocks_left >= 2 * n) {
      m = CoalescibleWaves(k, d, k->blocks_left / n);
    }
    const std::int64_t issued = n * m;
    k->blocks_left -= issued;
    k->in_flight += issued;
    free_slots_ -= n;
    NoteOccupancyChange(n);
    const sim::TimePoint now = env_.Now();
    JobMeter(k->desc.job).OnBegin(now);
    busy_.OnBegin(now);
    waves_dispatched_ += static_cast<std::uint64_t>(m);
    if (m > 1) waves_coalesced_ += static_cast<std::uint64_t>(m - 1);

    const std::uint64_t slot = AcquireWaveSlot();
    Wave& w = waves_[slot];
    w.kernel = k;
    w.stream = &s;
    w.blocks = issued;
    w.slots_held = n;
    w.waves = m;
    w.start = now;
    w.end = now + sim::Duration::Nanos(d.nanos() * m);
    w.wave_d = d;
    w.active = true;
    env_.ScheduleCallbackAt(w.end, &Gpu::WaveTrampoline, this,
                            WaveArg(slot, w.gen));
  }
  dispatching_ = false;
}

void Gpu::WaveTrampoline(void* ctx, std::uint64_t arg) {
  static_cast<Gpu*>(ctx)->OnWaveDone(arg);
}

void Gpu::OnWaveDone(std::uint64_t slot_and_gen) {
  const std::uint64_t slot = slot_and_gen & 0xffffffffULL;
  const std::uint32_t gen = static_cast<std::uint32_t>(slot_and_gen >> 32);
  if (!waves_[slot].active || waves_[slot].gen != gen) return;  // orphaned
  const Wave w = waves_[slot];
  ReleaseWaveSlot(slot);
  Kernel* k = w.kernel;
  k->in_flight -= w.blocks;
  free_slots_ += w.slots_held;
  NoteOccupancyChange(-w.slots_held);
  const sim::TimePoint now = env_.Now();
  JobMeter(k->desc.job).OnEnd(now);
  busy_.OnEnd(now);

  if (k->blocks_left == 0 && k->in_flight == 0) {
    RetireKernel(*w.stream);
  }
  Dispatch();
}

void Gpu::SplitTrain(std::uint64_t slot) {
  Wave& w = waves_[slot];
  const std::int64_t dn = w.wave_d.nanos();
  const std::int64_t elapsed = (env_.Now() - w.start).nanos();
  // Waves that already ran plus, unless we sit exactly on a boundary, the
  // one executing now. At an exact boundary the next wave has NOT issued
  // yet in the uncoalesced model (the fault event preempts the refill), so
  // only the completed waves stand; at the train start (elapsed == 0) the
  // first wave is in flight and must complete, as pre-split dispatch
  // already issued it.
  const std::int64_t done = elapsed / dn;
  const std::int64_t j = (done == 0 || elapsed % dn != 0) ? done + 1 : done;
  if (j >= w.waves) return;  // already in the final wave
  const std::int64_t trimmed = (w.waves - j) * w.slots_held;
  w.kernel->blocks_left += trimmed;
  w.kernel->in_flight -= trimmed;
  waves_coalesced_ -= static_cast<std::uint64_t>(w.waves - j);
  w.blocks -= trimmed;
  w.waves = j;
  w.end = w.start + sim::Duration::Nanos(dn * j);
  ++w.gen;  // orphan the old end-of-train event
  env_.ScheduleCallbackAt(w.end, &Gpu::WaveTrampoline, this,
                          WaveArg(slot, w.gen));
}

void Gpu::SplitActiveTrains() {
  for (std::uint64_t i = 0; i < waves_.size(); ++i) {
    if (waves_[i].active && waves_[i].waves > 1) SplitTrain(i);
  }
}

void Gpu::SplitTrainsOfStream(const Stream& s) {
  for (std::uint64_t i = 0; i < waves_.size(); ++i) {
    if (waves_[i].active && waves_[i].waves > 1 && waves_[i].stream == &s) {
      SplitTrain(i);
    }
  }
}

void Gpu::RetireKernel(Stream& s) {
  // Retire s.active: wake the submitting CPU thread, unblock the stream.
  Kernel* k = s.active;
  if (s.fail_next) {
    k->failed = true;
    s.fail_next = false;
  }
  if (k->failed) {
    ++kernels_failed_;
    if (k->failed_out != nullptr) *k->failed_out = true;
  } else {
    ++kernels_completed_;
  }
  const std::coroutine_handle<> waiter = k->waiter;
  s.active = nullptr;
  FreeKernel(k);
  if (!s.queue.empty()) MarkReady(s.id);
  if (waiter) env_.ScheduleNow(waiter);
}

void Gpu::InjectKernelFailure(StreamId stream) {
  if (stream < 0 || static_cast<std::size_t>(stream) >= streams_.size()) {
    throw std::out_of_range("InjectKernelFailure on unknown stream");
  }
  streams_[static_cast<std::size_t>(stream)]->fail_next = true;
}

void Gpu::Hang(sim::Duration d) {
  // In-flight waves complete, but a coalesced train must stop refilling at
  // its next wave boundary — split it back to the wave executing now so
  // per-wave hang semantics are preserved exactly.
  SplitActiveTrains();
  const sim::TimePoint until = env_.Now() + d;
  if (until > hang_until_) hang_until_ = until;
  hung_ = true;
  if (listener_ != nullptr) listener_->OnHangBegin(hang_until_);
  env_.ScheduleCallbackAt(hang_until_, &Gpu::HangTrampoline, this, 0);
}

void Gpu::HangTrampoline(void* ctx, std::uint64_t arg) {
  (void)arg;
  auto* self = static_cast<Gpu*>(ctx);
  if (!self->hung_) return;
  if (self->env_.Now() < self->hang_until_) return;  // extended meanwhile
  self->hung_ = false;
  if (self->listener_ != nullptr) self->listener_->OnHangEnd();
  self->Dispatch();
}

void Gpu::FailQueued(Stream& s) {
  // Queued (never started) kernels fail immediately.
  while (!s.queue.empty()) {
    Kernel* k = s.queue.pop();
    ++kernels_failed_;
    if (k->failed_out != nullptr) *k->failed_out = true;
    if (k->waiter) env_.ScheduleNow(k->waiter);
    FreeKernel(k);
  }
}

void Gpu::Reset(sim::Duration outage) {
  ++resets_;
  hung_ = false;
  hang_until_ = env_.Now();
  // Trains stop refilling at the wave boundary the reset lands in.
  SplitActiveTrains();
  if (outage > sim::Duration::Zero()) {
    const sim::TimePoint until = env_.Now() + outage;
    if (until > down_until_) down_until_ = until;
    down_ = true;  // set before the listener runs: suppresses nested dispatch
    env_.ScheduleCallbackAt(down_until_, &Gpu::DownTrampoline, this, 0);
  }
  // Notify the listener before any failed kernel's waiter is scheduled: a
  // failover controller reacting here marks the device down (and cancels
  // in-flight runs with a failover reason) before the submitters observe
  // their KernelFailed.
  if (listener_ != nullptr) listener_->OnResetBegin(outage);
  for (auto& sp : streams_) {
    Stream& s = *sp;
    FailQueued(s);
    if (s.active != nullptr) {
      // An executing kernel issues no further waves and retires failed once
      // the waves already on the SMs drain (the reset does not rewind time
      // for work in flight).
      Kernel* k = s.active;
      k->failed = true;
      k->blocks_left = 0;
      if (k->in_flight == 0) RetireKernel(s);
    }
  }
  if (down_) return;  // dispatch resumes when the outage ends
  if (listener_ != nullptr) listener_->OnResetComplete();
  Dispatch();
}

void Gpu::DownTrampoline(void* ctx, std::uint64_t arg) {
  (void)arg;
  auto* self = static_cast<Gpu*>(ctx);
  if (!self->down_) return;
  if (self->env_.Now() < self->down_until_) return;  // extended meanwhile
  self->down_ = false;
  if (self->listener_ != nullptr) self->listener_->OnResetComplete();
  self->Dispatch();
}

void Gpu::AbortStream(StreamId stream) {
  if (stream < 0 || static_cast<std::size_t>(stream) >= streams_.size()) {
    throw std::out_of_range("AbortStream on unknown stream");
  }
  Stream& s = *streams_[static_cast<std::size_t>(stream)];
  SplitTrainsOfStream(s);
  FailQueued(s);
  if (s.active != nullptr) {
    Kernel* k = s.active;
    k->failed = true;
    k->blocks_left = 0;
    if (k->in_flight == 0) RetireKernel(s);
  }
  Dispatch();
}

void Gpu::ThrottleCapacity(double capacity, sim::Duration window) {
  if (!(capacity > 0.0) || capacity > 1.0) {
    throw std::invalid_argument("capacity multiplier must be in (0, 1]");
  }
  // Trains issued at full speed must stop refilling at the wave boundary
  // the throttle lands in; waves already on the SMs keep their
  // dispatch-time duration (work in flight is not rewound).
  SplitActiveTrains();
  const sim::TimePoint now = env_.Now();
  capacity_ =
      (now < capacity_until_) ? std::min(capacity_, capacity) : capacity;
  const sim::TimePoint until = now + window;
  if (until > capacity_until_) capacity_until_ = until;
}

void Gpu::InjectAllocFault(sim::Duration d) {
  const sim::TimePoint until = env_.Now() + d;
  if (until > alloc_fault_until_) alloc_fault_until_ = until;
  if (listener_ != nullptr) listener_->OnAllocFaultWindow(alloc_fault_until_);
}

bool Gpu::alloc_fault_active() const {
  return env_.Now() < alloc_fault_until_;
}

void Gpu::NoteOccupancyChange(std::int64_t delta) {
  const sim::TimePoint now = env_.Now();
  occupancy_integral_ += static_cast<double>(occupied_slots_) *
                         static_cast<double>((now - occupancy_last_).nanos());
  occupied_slots_ += delta;
  occupancy_last_ = now;
}

metrics::BusyMeter& Gpu::JobMeter(JobId job) {
  if (job < 0) return nojob_meter_;  // probes and other unattributed work
  if (static_cast<std::size_t>(job) >= job_slot_.size()) {
    job_slot_.resize(static_cast<std::size_t>(job) + 1, -1);
  }
  std::int32_t slot = job_slot_[static_cast<std::size_t>(job)];
  if (slot < 0) {
    if (!meter_free_.empty()) {
      slot = meter_free_.back();
      meter_free_.pop_back();
    } else {
      slot = static_cast<std::int32_t>(meter_slots_.size());
      meter_slots_.emplace_back();
    }
    meter_slots_[static_cast<std::size_t>(slot)].job = job;
    meter_slots_[static_cast<std::size_t>(slot)].meter = metrics::BusyMeter{};
    job_slot_[static_cast<std::size_t>(job)] = slot;
  }
  return meter_slots_[static_cast<std::size_t>(slot)].meter;
}

sim::Duration Gpu::JobGpuDuration(JobId job) const {
  if (job < 0) return nojob_meter_.Total(env_.Now());
  if (static_cast<std::size_t>(job) < job_slot_.size()) {
    const std::int32_t slot = job_slot_[static_cast<std::size_t>(job)];
    if (slot >= 0) {
      return meter_slots_[static_cast<std::size_t>(slot)].meter.Total(
          env_.Now());
    }
  }
  const auto it = job_retired_.find(job);
  if (it != job_retired_.end()) return it->second;
  return sim::Duration::Zero();
}

void Gpu::RetireJob(JobId job) {
  if (job < 0 || static_cast<std::size_t>(job) >= job_slot_.size()) return;
  const std::int32_t slot = job_slot_[static_cast<std::size_t>(job)];
  if (slot < 0) return;
  JobMeterSlot& ms = meter_slots_[static_cast<std::size_t>(slot)];
  if (ms.meter.busy()) return;  // kernels still resident; retire after drain
  job_retired_[job] += ms.meter.Total(env_.Now());
  ms.job = kNoJob;
  job_slot_[static_cast<std::size_t>(job)] = -1;
  meter_free_.push_back(slot);
}

sim::Duration Gpu::TotalBusy() const { return busy_.Total(env_.Now()); }

double Gpu::MeanSlotOccupancy() const {
  const sim::TimePoint now = env_.Now();
  const double integral =
      occupancy_integral_ + static_cast<double>(occupied_slots_) *
                                static_cast<double>((now - occupancy_last_).nanos());
  const double denom = static_cast<double>(options_.spec.total_block_slots()) *
                       static_cast<double>(now.nanos());
  return denom <= 0 ? 0.0 : integral / denom;
}

double Gpu::EnergyJoules() const {
  const sim::TimePoint now = env_.Now();
  const double elapsed_s = (now - sim::TimePoint()).seconds();
  const double busy_s = TotalBusy().seconds();
  const double occ_slot_s =
      MeanSlotOccupancy() * elapsed_s;  // occupancy-weighted seconds
  return options_.spec.idle_watts * elapsed_s +
         options_.spec.busy_extra_watts * busy_s +
         options_.spec.occupancy_watts * occ_slot_s;
}

double Gpu::MeanPowerWatts() const {
  const double elapsed_s = (env_.Now() - sim::TimePoint()).seconds();
  return elapsed_s <= 0 ? options_.spec.idle_watts
                        : EnergyJoules() / elapsed_s;
}

void Gpu::AllocateMemory(JobId job, std::int64_t mb) {
  if (alloc_fault_active()) {
    throw TransientAllocFailure("transient allocation failure: job " +
                                std::to_string(job) + " requested " +
                                std::to_string(mb) + " MB during a fault "
                                "window on " + options_.spec.name);
  }
  if (memory_used_mb_ + mb > options_.spec.memory_mb) {
    throw OutOfDeviceMemory("GPU out of memory: job " + std::to_string(job) +
                            " requested " + std::to_string(mb) + " MB, " +
                            std::to_string(options_.spec.memory_mb -
                                           memory_used_mb_) +
                            " MB free on " + options_.spec.name);
  }
  memory_used_mb_ += mb;
}

void Gpu::ReleaseMemory(JobId job, std::int64_t mb) {
  (void)job;
  memory_used_mb_ -= mb;
  if (memory_used_mb_ < 0) {
    throw std::logic_error("GPU memory release underflow");
  }
}

}  // namespace olympian::gpusim
