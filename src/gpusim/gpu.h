#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "gpusim/gpu_spec.h"
#include "gpusim/kernel.h"
#include "metrics/busy_meter.h"
#include "sim/environment.h"
#include "sim/random.h"

namespace olympian::gpusim {

// Thrown when a memory reservation exceeds device capacity (§4.3 scaling).
struct OutOfDeviceMemory : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Thrown at the Submit await site when a kernel retires with an error — an
// injected launch failure or a device reset that killed it. Recoverable:
// the serving layer converts it into a per-request failure and may retry.
// Also thrown synchronously from Enqueue when a launch fails fast on a
// down device and the caller gave no `failed_out` to report through.
struct KernelFailed : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Thrown by AllocateMemory while an injected transient-allocation-fault
// window is active. Distinct from OutOfDeviceMemory: the device has room,
// the driver just failed the call (cudaMalloc flaking under fragmentation
// or ECC scrub); callers should retry after a backoff.
struct TransientAllocFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Receives device-level fault/recovery signals from the Gpu as they happen
// on the virtual clock. Implemented by the serving layer's HealthMonitor;
// all callbacks run synchronously inside the Gpu call that caused them, so
// a listener reacting to OnResetBegin observes the device *before* the
// failed kernels' waiters run (their resumes are scheduled, not inline).
class GpuHealthListener {
 public:
  virtual ~GpuHealthListener() = default;
  // Driver hang began (or was extended); the device stops issuing waves
  // until `until`.
  virtual void OnHangBegin(sim::TimePoint until) { (void)until; }
  // The hang cleared and dispatch resumed.
  virtual void OnHangEnd() {}
  // A reset started; the device is down (submissions fail fast) until
  // `outage` elapses. An `outage` of zero means the legacy instant reset:
  // OnResetComplete fires in the same call.
  virtual void OnResetBegin(sim::Duration outage) { (void)outage; }
  // The reset outage elapsed: the driver dispatches again. Recovery above
  // this layer (re-init, parameter reload, warm-up) has NOT happened yet.
  virtual void OnResetComplete() {}
  // A transient-allocation-fault window opened (or was extended) to `until`.
  virtual void OnAllocFaultWindow(sim::TimePoint until) { (void)until; }
};

// A simulated GPU plus its driver.
//
// Submission: CPU-side code (the dataflow executor) calls `Submit` on a
// stream and `co_await`s the returned awaitable; the awaiting coroutine is
// resumed when the kernel's last block retires — exactly how a TF GPU node's
// managing thread blocks on kernel completion in the real stack.
//
// Driver model: streams are serviced by *burst arbitration*. The driver
// drains a geometrically-distributed burst of kernels from one ready stream
// before re-arbitrating uniformly at random among ready streams. It is
// job-blind: nothing in the issue path looks at KernelDesc::job. Bursty,
// arbitrary channel arbitration is what makes concurrent TF-Serving jobs
// finish at unpredictable times (paper Figure 3); the burst length knob is
// calibrated in models/calibration.h.
//
// Accounting: per-job busy meters implement the paper's "GPU duration" (the
// union of intervals during which >= 1 kernel of the job is resident,
// Figure 5), and a global meter provides nvidia-smi-style utilization.
//
// Hot path: kernel records are pooled on a per-device freelist and stream
// queues are intrusive FIFOs, so steady-state submission is allocation-free.
// Per-job meters live in a dense slot table with O(1) JobId lookup; the
// serving layer retires a finished job's meter with RetireJob so live-meter
// memory stays bounded in long runs. Full-device wave trains are coalesced
// into a single completion event (see Options::coalesce_wave_trains).
class Gpu {
 public:
  struct Options {
    GpuSpec spec = GpuSpec::Gtx1080Ti();
    // Mean kernels issued from one stream before re-arbitration.
    double mean_burst = 4.0;
    // Sigma of the per-stream log-normal arbitration weight, modelling the
    // persistent service bias of hardware channel assignment. This is what
    // makes identical concurrent jobs finish at different times under the
    // job-blind driver (paper Figure 3); 0 disables the bias.
    double arbitration_bias_sigma = 0.35;
    // Run-level clock noise (boost clocks, thermal state): the effective
    // clock is drawn once per device instance. Gives profiled totals their
    // few-percent run-to-run spread (paper §4.4).
    double clock_noise_sigma = 0.015;
    // Coalesce trains of identical full-device waves of one kernel into a
    // single completion event. Finish times are bit-identical with this on
    // or off (the train is split back into per-wave granularity if a fault
    // interrupts it); only the number of simulator events differs.
    bool coalesce_wave_trains = true;
    std::uint64_t seed = 1;
  };

  Gpu(sim::Environment& env, Options options);
  ~Gpu();

  Gpu(const Gpu&) = delete;
  Gpu& operator=(const Gpu&) = delete;

  // --- streams ---------------------------------------------------------

  StreamId CreateStream();

  // Awaitable kernel submission: suspends the caller until completion.
  // Throws KernelFailed at the await site if the kernel retires with an
  // error (injected failure or device reset).
  auto Submit(StreamId stream, KernelDesc desc) {
    struct Awaiter {
      Gpu* gpu;
      StreamId stream;
      KernelDesc desc;
      bool failed = false;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        gpu->Enqueue(stream, desc, h, &failed);
      }
      void await_resume() const {
        if (failed) {
          throw KernelFailed("kernel failed on stream " +
                             std::to_string(stream) + " (job " +
                             std::to_string(desc.job) + ")");
        }
      }
    };
    return Awaiter{this, stream, desc};
  }

  // Manual-driver submission entry (Submit is sugar over this). The kernel
  // is queued on `stream`; `waiter` (may be null for fire-and-forget) is
  // resumed via the event queue when the kernel retires.
  //
  // Failure-reporting contract: a kernel that retires with an error sets
  // `*failed_out` before the waiter resumes. With `failed_out == nullptr`
  // retirement errors are NOT reported back (they only show in
  // kernels_failed()); the one exception is a launch on a *down* device,
  // which cannot be queued at all — that fails fast by throwing
  // KernelFailed at the call site, so a manual driver without a flag can
  // never mistake a rejected launch for a queued one.
  void Enqueue(StreamId stream, const KernelDesc& desc,
               std::coroutine_handle<> waiter, bool* failed_out);

  // --- fault injection --------------------------------------------------
  //
  // Driven by fault::FaultInjector on the virtual clock; all effects are
  // deterministic functions of the call sequence.

  // Arm a one-shot failure on `stream`: the next kernel to retire on it
  // (including one already executing) retires with an error.
  void InjectKernelFailure(StreamId stream);

  // Driver hang: stop issuing new waves for `d`. In-flight waves complete
  // (the SMs are fine; the channel feeding them is wedged). Overlapping
  // hangs extend to the furthest end point.
  void Hang(sim::Duration d);

  // Full device reset: every queued kernel fails immediately and every
  // executing kernel fails as its in-flight waves drain. Clears any hang.
  // Memory reservations survive (the serving layer owns that lifecycle).
  //
  // With a positive `outage` the device then stays *down* until it elapses:
  // every kernel submitted in the window fails fast at Enqueue (the driver
  // is gone; launches return an error immediately) and dispatch is stopped.
  // When the outage ends the listener's OnResetComplete fires and dispatch
  // resumes — higher layers model re-init/reload/warm-up on top of that
  // signal. Overlapping outages extend to the furthest end point. An outage
  // of zero preserves the legacy instantaneous-reset semantics.
  void Reset(sim::Duration outage);
  void Reset() { Reset(sim::Duration::Zero()); }

  // Abort one stream: queued kernels fail immediately; the active kernel
  // issues no further waves and retires failed once in-flight waves drain.
  // This is how a failover controller releases submitters stuck behind a
  // wedged device without resetting it (per-stream, not device-wide).
  void AbortStream(StreamId stream);

  // Open a transient-allocation-fault window: AllocateMemory throws
  // TransientAllocFailure until `d` elapses. Overlapping windows extend.
  void InjectAllocFault(sim::Duration d);

  // Open a fractional-capacity fault window (thermal throttle, ECC remap,
  // partial SM loss): kernels dispatched while the window is open run with
  // their wave durations stretched by 1/capacity. `capacity` must be in
  // (0, 1]. Semantics are dispatch-time: a wave (or an exclusive kernel's
  // whole residency) keeps the duration computed when it was issued, even
  // if the window closes mid-flight; coalesced trains are split at the
  // window-open edge and capped at the window-close edge so finish times
  // are bit-identical with coalescing on or off. Overlapping windows
  // extend to the furthest end point and keep the *most severe* (lowest)
  // multiplier. Deliberately NO listener callback: gray degradation must
  // be *measured* (probe RTT) by higher layers, never push-announced.
  void ThrottleCapacity(double capacity, sim::Duration window);

  // Effective capacity multiplier at `t` (1.0 outside any window).
  double CapacityAt(sim::TimePoint t) const {
    return t < capacity_until_ ? capacity_ : 1.0;
  }

  // Install the health listener (at most one; nullptr detaches). Must
  // outlive the device or be detached first.
  void SetHealthListener(GpuHealthListener* listener) { listener_ = listener; }

  // Point-in-time device health, for pollers (the listener callbacks are
  // the push-style equivalent).
  struct HealthSnapshot {
    bool hung = false;
    bool down = false;  // inside a reset outage window
    bool alloc_fault = false;
    std::uint64_t resets = 0;
    std::uint64_t kernels_failed = 0;
    double capacity = 1.0;  // < 1 inside a fractional-capacity window
  };
  HealthSnapshot Health() const {
    return HealthSnapshot{hung_, down_, alloc_fault_active(), resets_,
                          kernels_failed_, CapacityAt(env_.Now())};
  }

  bool hung() const { return hung_; }
  bool down() const { return down_; }
  bool alloc_fault_active() const;

  // --- memory accounting ----------------------------------------------

  // Reserve device memory; throws OutOfDeviceMemory when the device is full.
  void AllocateMemory(JobId job, std::int64_t mb);
  void ReleaseMemory(JobId job, std::int64_t mb);
  std::int64_t memory_used_mb() const { return memory_used_mb_; }

  // --- accounting / introspection --------------------------------------

  const GpuSpec& spec() const { return options_.spec; }

  // Total "GPU duration" accumulated by `job` up to now (Figure 5).
  // Retired jobs report the total frozen at retirement.
  sim::Duration JobGpuDuration(JobId job) const;

  // Retire `job`'s live meter: its accumulated duration moves to the
  // retired table (still visible through JobGpuDuration) and the meter
  // slot is recycled. Call when the serving layer knows the job will
  // submit no more kernels; a no-op if the job is unknown, already
  // retired, or still has kernels resident (retire again after drain).
  void RetireJob(JobId job);

  // Number of live (non-retired) per-job meters — bounded by the number of
  // in-service jobs, not by the total jobs ever served.
  std::size_t live_job_meters() const {
    return meter_slots_.size() - meter_free_.size();
  }

  // Time during which >= 1 kernel was resident (nvidia-smi utilization
  // numerator).
  sim::Duration TotalBusy() const;

  // Integral of (occupied slots / total slots) dt — a finer utilization.
  double MeanSlotOccupancy() const;

  // Energy consumed so far under the GpuSpec power model, in joules
  // (extension: the paper lists power as future work).
  double EnergyJoules() const;
  // Mean board power over the elapsed simulation, in watts.
  double MeanPowerWatts() const;

  std::uint64_t kernels_completed() const { return kernels_completed_; }
  std::uint64_t kernels_failed() const { return kernels_failed_; }
  std::uint64_t resets() const { return resets_; }
  std::uint64_t waves_dispatched() const { return waves_dispatched_; }
  // Wave-completion timer events elided by train coalescing so far.
  std::uint64_t waves_coalesced() const { return waves_coalesced_; }
  // Kernels submitted but not yet retired (queued + resident across all
  // streams) — the device-wide queue depth the sampler snapshots.
  std::int64_t pending_kernels() const { return pending_kernels_; }
  // Total time kernels spent between Enqueue and compute start, summed
  // over every kernel that started executing (queue-entry/compute-start
  // stamps). With kernels_dequeued() this gives the device's mean queue
  // wait, which the sampler publishes as a time series.
  sim::Duration TotalQueueWait() const {
    return sim::Duration::Nanos(queue_wait_ns_);
  }
  // Kernels that left the stream queue and started executing.
  std::uint64_t kernels_dequeued() const { return kernels_dequeued_; }
  std::int64_t free_slots() const { return free_slots_; }
  bool idle() const { return busy_.depth() == 0; }

 private:
  struct Kernel {
    KernelDesc desc;
    std::int64_t blocks_left;  // not yet issued
    std::int64_t in_flight = 0;
    // Kernels with thread_blocks >= total slots saturate the device: they
    // execute exclusively, as one multi-wave occupancy of the whole GPU.
    // This is the paper's §2.3 regime — no spatial multiplexing across
    // requests at production batch sizes.
    bool exclusive = false;
    // Set by fault injection; reported to the submitter at retirement.
    bool failed = false;
    // Queue-entry stamp: when Enqueue accepted the kernel. The delta to
    // compute start (the stream making it active) is the device-level
    // queue wait the latency-anatomy accounting publishes.
    sim::TimePoint enqueued;
    std::coroutine_handle<> waiter;
    bool* failed_out = nullptr;  // points into the submitter's awaiter frame
    Kernel* next = nullptr;      // intrusive link: stream FIFO / freelist
  };

  // Intrusive FIFO of pooled Kernel records (no per-node allocation).
  struct KernelQueue {
    Kernel* head = nullptr;
    Kernel* tail = nullptr;
    bool empty() const { return head == nullptr; }
    void push(Kernel* k) {
      k->next = nullptr;
      if (tail != nullptr) {
        tail->next = k;
      } else {
        head = k;
      }
      tail = k;
    }
    Kernel* pop() {
      Kernel* k = head;
      head = k->next;
      if (head == nullptr) tail = nullptr;
      k->next = nullptr;
      return k;
    }
    void clear() { head = tail = nullptr; }
  };

  struct Stream {
    StreamId id = -1;
    KernelQueue queue;
    Kernel* active = nullptr;  // at most one kernel executing per stream
    bool in_ready_list = false;
    // One-shot injected fault: fail the next kernel retiring on this stream.
    bool fail_next = false;
    // Persistent arbitration weight (channel-assignment luck).
    double arb_weight = 1.0;
  };

  // One scheduled occupancy: a single wave, an exclusive kernel's whole
  // residency, or a coalesced train of `waves` identical full-device waves.
  struct Wave {
    Kernel* kernel = nullptr;
    Stream* stream = nullptr;
    std::int64_t blocks = 0;      // kernel blocks retired when this ends
    std::int64_t slots_held = 0;  // device slots occupied while it runs
    std::int64_t waves = 1;       // >1 only for a coalesced train
    sim::TimePoint start;
    sim::TimePoint end;
    sim::Duration wave_d;  // one wave's duration (train granularity)
    bool active = false;
    // Bumped on release and on train split so a stale timer event for a
    // recycled or truncated slot is ignored.
    std::uint32_t gen = 0;
  };

  void Dispatch();
  bool StreamReady(const Stream& s) const;
  void MarkReady(StreamId id);
  std::uint64_t AcquireWaveSlot();
  void ReleaseWaveSlot(std::uint64_t slot);
  // Largest number of identical `d`-long full-device waves of `k` that can
  // run back to back from now without crossing any other occupancy's end
  // (1 if coalescing is off or unsafe).
  std::int64_t CoalescibleWaves(const Kernel* k, sim::Duration d,
                                std::int64_t max_waves) const;
  // Truncate an in-flight coalesced train to the wave executing now,
  // returning the not-yet-run blocks to the kernel. Restores per-wave
  // fault semantics (a hang/reset/abort interrupts trains at the next
  // wave boundary, exactly as the uncoalesced path would).
  void SplitTrain(std::uint64_t slot);
  void SplitActiveTrains();
  void SplitTrainsOfStream(const Stream& s);
  void OnWaveDone(std::uint64_t slot_and_gen);
  void RetireKernel(Stream& s);  // s.active retired (ok or failed)
  void FailQueued(Stream& s);    // fail every queued kernel immediately
  static void WaveTrampoline(void* ctx, std::uint64_t arg);
  static void HangTrampoline(void* ctx, std::uint64_t arg);
  static void DownTrampoline(void* ctx, std::uint64_t arg);
  void NoteOccupancyChange(std::int64_t delta);
  Kernel* AllocKernel();
  void FreeKernel(Kernel* k);
  metrics::BusyMeter& JobMeter(JobId job);

  sim::Environment& env_;
  Options options_;
  sim::Rng rng_;

  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<StreamId> ready_;  // streams with issuable work
  StreamId current_ = -1;        // stream owning the current burst
  std::int64_t burst_left_ = 0;

  std::int64_t free_slots_;
  std::vector<Wave> waves_;  // slot-indexed, reused
  std::vector<std::uint64_t> free_wave_slots_;

  // Pooled kernel records: chunked storage + freelist.
  std::vector<std::unique_ptr<Kernel[]>> kernel_chunks_;
  Kernel* kernel_free_ = nullptr;

  // Dense per-job meters: job_slot_[job] indexes meter_slots_; retired
  // jobs keep only their total duration in job_retired_.
  struct JobMeterSlot {
    JobId job = kNoJob;
    metrics::BusyMeter meter;
  };
  std::vector<JobMeterSlot> meter_slots_;
  std::vector<std::int32_t> meter_free_;
  std::vector<std::int32_t> job_slot_;  // JobId-indexed; -1 = absent
  std::unordered_map<JobId, sim::Duration> job_retired_;
  metrics::BusyMeter nojob_meter_;  // job < 0 (health probes etc.)

  metrics::BusyMeter busy_;
  double occupancy_integral_ = 0.0;  // slot-seconds
  std::int64_t occupied_slots_ = 0;
  sim::TimePoint occupancy_last_;

  std::int64_t memory_used_mb_ = 0;
  std::uint64_t kernels_completed_ = 0;
  std::uint64_t kernels_failed_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t waves_dispatched_ = 0;
  std::uint64_t waves_coalesced_ = 0;
  std::int64_t queue_wait_ns_ = 0;
  std::uint64_t kernels_dequeued_ = 0;
  std::int64_t pending_kernels_ = 0;  // alloc'd kernel records in flight
  bool dispatching_ = false;

  // Fault-injection state.
  bool hung_ = false;
  sim::TimePoint hang_until_;
  sim::TimePoint alloc_fault_until_;
  double capacity_ = 1.0;  // meaningful only while Now() < capacity_until_
  sim::TimePoint capacity_until_;
  bool down_ = false;  // inside a reset outage window
  sim::TimePoint down_until_;
  GpuHealthListener* listener_ = nullptr;
};

}  // namespace olympian::gpusim
