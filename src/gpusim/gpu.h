#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "gpusim/gpu_spec.h"
#include "gpusim/kernel.h"
#include "metrics/busy_meter.h"
#include "sim/environment.h"
#include "sim/random.h"

namespace olympian::gpusim {

// Thrown when a memory reservation exceeds device capacity (§4.3 scaling).
struct OutOfDeviceMemory : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Thrown at the Submit await site when a kernel retires with an error — an
// injected launch failure or a device reset that killed it. Recoverable:
// the serving layer converts it into a per-request failure and may retry.
struct KernelFailed : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Thrown by AllocateMemory while an injected transient-allocation-fault
// window is active. Distinct from OutOfDeviceMemory: the device has room,
// the driver just failed the call (cudaMalloc flaking under fragmentation
// or ECC scrub); callers should retry after a backoff.
struct TransientAllocFailure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Receives device-level fault/recovery signals from the Gpu as they happen
// on the virtual clock. Implemented by the serving layer's HealthMonitor;
// all callbacks run synchronously inside the Gpu call that caused them, so
// a listener reacting to OnResetBegin observes the device *before* the
// failed kernels' waiters run (their resumes are scheduled, not inline).
class GpuHealthListener {
 public:
  virtual ~GpuHealthListener() = default;
  // Driver hang began (or was extended); the device stops issuing waves
  // until `until`.
  virtual void OnHangBegin(sim::TimePoint until) { (void)until; }
  // The hang cleared and dispatch resumed.
  virtual void OnHangEnd() {}
  // A reset started; the device is down (submissions fail fast) until
  // `outage` elapses. An `outage` of zero means the legacy instant reset:
  // OnResetComplete fires in the same call.
  virtual void OnResetBegin(sim::Duration outage) { (void)outage; }
  // The reset outage elapsed: the driver dispatches again. Recovery above
  // this layer (re-init, parameter reload, warm-up) has NOT happened yet.
  virtual void OnResetComplete() {}
  // A transient-allocation-fault window opened (or was extended) to `until`.
  virtual void OnAllocFaultWindow(sim::TimePoint until) { (void)until; }
};

// A simulated GPU plus its driver.
//
// Submission: CPU-side code (the dataflow executor) calls `Submit` on a
// stream and `co_await`s the returned awaitable; the awaiting coroutine is
// resumed when the kernel's last block retires — exactly how a TF GPU node's
// managing thread blocks on kernel completion in the real stack.
//
// Driver model: streams are serviced by *burst arbitration*. The driver
// drains a geometrically-distributed burst of kernels from one ready stream
// before re-arbitrating uniformly at random among ready streams. It is
// job-blind: nothing in the issue path looks at KernelDesc::job. Bursty,
// arbitrary channel arbitration is what makes concurrent TF-Serving jobs
// finish at unpredictable times (paper Figure 3); the burst length knob is
// calibrated in models/calibration.h.
//
// Accounting: per-job busy meters implement the paper's "GPU duration" (the
// union of intervals during which >= 1 kernel of the job is resident,
// Figure 5), and a global meter provides nvidia-smi-style utilization.
class Gpu {
 public:
  struct Options {
    GpuSpec spec = GpuSpec::Gtx1080Ti();
    // Mean kernels issued from one stream before re-arbitration.
    double mean_burst = 4.0;
    // Sigma of the per-stream log-normal arbitration weight, modelling the
    // persistent service bias of hardware channel assignment. This is what
    // makes identical concurrent jobs finish at different times under the
    // job-blind driver (paper Figure 3); 0 disables the bias.
    double arbitration_bias_sigma = 0.35;
    // Run-level clock noise (boost clocks, thermal state): the effective
    // clock is drawn once per device instance. Gives profiled totals their
    // few-percent run-to-run spread (paper §4.4).
    double clock_noise_sigma = 0.015;
    std::uint64_t seed = 1;
  };

  Gpu(sim::Environment& env, Options options);
  ~Gpu();

  Gpu(const Gpu&) = delete;
  Gpu& operator=(const Gpu&) = delete;

  // --- streams ---------------------------------------------------------

  StreamId CreateStream();

  // Awaitable kernel submission: suspends the caller until completion.
  // Throws KernelFailed at the await site if the kernel retires with an
  // error (injected failure or device reset).
  auto Submit(StreamId stream, KernelDesc desc) {
    struct Awaiter {
      Gpu* gpu;
      StreamId stream;
      KernelDesc desc;
      bool failed = false;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        gpu->Enqueue(stream, desc, h, &failed);
      }
      void await_resume() const {
        if (failed) {
          throw KernelFailed("kernel failed on stream " +
                             std::to_string(stream) + " (job " +
                             std::to_string(desc.job) + ")");
        }
      }
    };
    return Awaiter{this, stream, desc};
  }

  // --- fault injection --------------------------------------------------
  //
  // Driven by fault::FaultInjector on the virtual clock; all effects are
  // deterministic functions of the call sequence.

  // Arm a one-shot failure on `stream`: the next kernel to retire on it
  // (including one already executing) retires with an error.
  void InjectKernelFailure(StreamId stream);

  // Driver hang: stop issuing new waves for `d`. In-flight waves complete
  // (the SMs are fine; the channel feeding them is wedged). Overlapping
  // hangs extend to the furthest end point.
  void Hang(sim::Duration d);

  // Full device reset: every queued kernel fails immediately and every
  // executing kernel fails as its in-flight waves drain. Clears any hang.
  // Memory reservations survive (the serving layer owns that lifecycle).
  //
  // With a positive `outage` the device then stays *down* until it elapses:
  // every kernel submitted in the window fails fast at Enqueue (the driver
  // is gone; launches return an error immediately) and dispatch is stopped.
  // When the outage ends the listener's OnResetComplete fires and dispatch
  // resumes — higher layers model re-init/reload/warm-up on top of that
  // signal. Overlapping outages extend to the furthest end point. An outage
  // of zero preserves the legacy instantaneous-reset semantics.
  void Reset(sim::Duration outage);
  void Reset() { Reset(sim::Duration::Zero()); }

  // Abort one stream: queued kernels fail immediately; the active kernel
  // issues no further waves and retires failed once in-flight waves drain.
  // This is how a failover controller releases submitters stuck behind a
  // wedged device without resetting it (per-stream, not device-wide).
  void AbortStream(StreamId stream);

  // Open a transient-allocation-fault window: AllocateMemory throws
  // TransientAllocFailure until `d` elapses. Overlapping windows extend.
  void InjectAllocFault(sim::Duration d);

  // Install the health listener (at most one; nullptr detaches). Must
  // outlive the device or be detached first.
  void SetHealthListener(GpuHealthListener* listener) { listener_ = listener; }

  // Point-in-time device health, for pollers (the listener callbacks are
  // the push-style equivalent).
  struct HealthSnapshot {
    bool hung = false;
    bool down = false;  // inside a reset outage window
    bool alloc_fault = false;
    std::uint64_t resets = 0;
    std::uint64_t kernels_failed = 0;
  };
  HealthSnapshot Health() const {
    return HealthSnapshot{hung_, down_, alloc_fault_active(), resets_,
                          kernels_failed_};
  }

  bool hung() const { return hung_; }
  bool down() const { return down_; }
  bool alloc_fault_active() const;

  // --- memory accounting ----------------------------------------------

  // Reserve device memory; throws OutOfDeviceMemory when the device is full.
  void AllocateMemory(JobId job, std::int64_t mb);
  void ReleaseMemory(JobId job, std::int64_t mb);
  std::int64_t memory_used_mb() const { return memory_used_mb_; }

  // --- accounting / introspection --------------------------------------

  const GpuSpec& spec() const { return options_.spec; }

  // Total "GPU duration" accumulated by `job` up to now (Figure 5).
  sim::Duration JobGpuDuration(JobId job) const;

  // Time during which >= 1 kernel was resident (nvidia-smi utilization
  // numerator).
  sim::Duration TotalBusy() const;

  // Integral of (occupied slots / total slots) dt — a finer utilization.
  double MeanSlotOccupancy() const;

  // Energy consumed so far under the GpuSpec power model, in joules
  // (extension: the paper lists power as future work).
  double EnergyJoules() const;
  // Mean board power over the elapsed simulation, in watts.
  double MeanPowerWatts() const;

  std::uint64_t kernels_completed() const { return kernels_completed_; }
  std::uint64_t kernels_failed() const { return kernels_failed_; }
  std::uint64_t resets() const { return resets_; }
  std::uint64_t waves_dispatched() const { return waves_dispatched_; }
  std::int64_t free_slots() const { return free_slots_; }
  bool idle() const { return busy_.depth() == 0; }

 private:
  struct Kernel {
    KernelDesc desc;
    std::int64_t blocks_left;  // not yet issued
    std::int64_t in_flight = 0;
    // Kernels with thread_blocks >= total slots saturate the device: they
    // execute exclusively, as one multi-wave occupancy of the whole GPU.
    // This is the paper's §2.3 regime — no spatial multiplexing across
    // requests at production batch sizes.
    bool exclusive = false;
    // Set by fault injection; reported to the submitter at retirement.
    bool failed = false;
    std::coroutine_handle<> waiter;
    bool* failed_out = nullptr;  // points into the submitter's awaiter frame
  };

  struct Stream {
    StreamId id = -1;
    std::deque<std::unique_ptr<Kernel>> queue;
    std::unique_ptr<Kernel> active;  // at most one kernel executing per stream
    bool in_ready_list = false;
    // One-shot injected fault: fail the next kernel retiring on this stream.
    bool fail_next = false;
    // Persistent arbitration weight (channel-assignment luck).
    double arb_weight = 1.0;
  };

  struct Wave {
    Kernel* kernel;
    Stream* stream;
    std::int64_t blocks;      // kernel blocks retired when this wave ends
    std::int64_t slots_held;  // device slots occupied while it runs
  };

  void Enqueue(StreamId stream, const KernelDesc& desc,
               std::coroutine_handle<> waiter, bool* failed_out);
  void Dispatch();
  bool StreamReady(const Stream& s) const;
  void MarkReady(StreamId id);
  void OnWaveDone(std::uint64_t wave_slot);
  void RetireKernel(Stream& s);  // s.active retired (ok or failed)
  void FailQueued(Stream& s);    // fail every queued kernel immediately
  static void WaveTrampoline(void* ctx, std::uint64_t arg);
  static void HangTrampoline(void* ctx, std::uint64_t arg);
  static void DownTrampoline(void* ctx, std::uint64_t arg);
  void NoteOccupancyChange(std::int64_t delta);
  metrics::BusyMeter& JobMeter(JobId job);

  sim::Environment& env_;
  Options options_;
  sim::Rng rng_;

  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<StreamId> ready_;  // streams with issuable work
  StreamId current_ = -1;        // stream owning the current burst
  std::int64_t burst_left_ = 0;

  std::int64_t free_slots_;
  std::vector<Wave> waves_;            // slot-indexed, reused
  std::vector<std::uint64_t> free_wave_slots_;

  std::unordered_map<JobId, metrics::BusyMeter> job_meters_;
  std::unordered_map<JobId, sim::Duration> job_retired_;  // finished jobs
  metrics::BusyMeter busy_;
  double occupancy_integral_ = 0.0;  // slot-seconds
  std::int64_t occupied_slots_ = 0;
  sim::TimePoint occupancy_last_;

  std::int64_t memory_used_mb_ = 0;
  std::uint64_t kernels_completed_ = 0;
  std::uint64_t kernels_failed_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t waves_dispatched_ = 0;
  bool dispatching_ = false;

  // Fault-injection state.
  bool hung_ = false;
  sim::TimePoint hang_until_;
  sim::TimePoint alloc_fault_until_;
  bool down_ = false;  // inside a reset outage window
  sim::TimePoint down_until_;
  GpuHealthListener* listener_ = nullptr;
};

}  // namespace olympian::gpusim
