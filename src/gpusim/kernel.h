#pragma once

#include <cstdint>

#include "sim/time.h"

namespace olympian::gpusim {

// Identifies the serving-system job (one client request stream) a kernel
// belongs to. The *driver never uses this for scheduling* — mirroring the
// paper's core problem statement — it exists purely for usage accounting
// (per-job GPU duration, Figure 5) and post-hoc analysis.
using JobId = std::int64_t;
inline constexpr JobId kNoJob = -1;

// A driver-visible submission queue. Kernels within one stream execute in
// FIFO order, one at a time; kernels in different streams may overlap.
using StreamId = std::int64_t;

// An elemental data-parallel GPU computation, as launched by one dataflow
// node. `thread_blocks` blocks each run for `block_work` (at clock_scale 1);
// the device executes them in waves bounded by free block slots.
struct KernelDesc {
  JobId job = kNoJob;
  std::int64_t node_id = -1;
  std::int64_t thread_blocks = 1;
  sim::Duration block_work;
};

}  // namespace olympian::gpusim
