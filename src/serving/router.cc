#include "serving/router.h"

#include <stdexcept>
#include <string>
#include <utility>

namespace olympian::serving {

const char* ToString(ServerHealth h) {
  switch (h) {
    case ServerHealth::kHealthy:
      return "healthy";
    case ServerHealth::kDegraded:
      return "degraded";
    case ServerHealth::kDown:
      return "down";
    case ServerHealth::kRecovering:
      return "recovering";
  }
  return "unknown";
}

Router::Router(sim::Environment& env, RouterTransport& transport,
               std::size_t num_servers, RouterOptions options,
               metrics::RouterCounters* counters,
               metrics::MetricRegistry* registry)
    : env_(env),
      transport_(transport),
      options_(options),
      counters_(counters),
      registry_(registry) {
  if (num_servers < 1) throw std::invalid_argument("Router needs >= 1 server");
  if (options_.down_after_errors < 1 || options_.recovery_successes < 1) {
    throw std::invalid_argument(
        "down_after_errors and recovery_successes must be >= 1");
  }
  servers_.resize(num_servers);
}

void Router::Start() {
  if (started_) throw std::logic_error("Router::Start called twice");
  started_ = true;
  if (options_.probe_interval <= sim::Duration::Zero()) return;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    env_.Spawn(ProbeLoop(s), "router/probe-server" + std::to_string(s));
  }
}

void Router::Stop() { stopped_ = true; }

std::size_t Router::Route(std::size_t home) {
  if (!options_.failover) return home;  // static pin baseline
  if (Routable(home)) return home;
  // Least-loaded over routable servers: healthy beats degraded, then fewest
  // outstanding, then lowest index — a deterministic total order.
  std::size_t best = kNoServer;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (!Routable(s)) continue;
    if (best == kNoServer) {
      best = s;
      continue;
    }
    const ServerState& a = servers_[s];
    const ServerState& b = servers_[best];
    const int rank_a = a.health == ServerHealth::kHealthy ? 0 : 1;
    const int rank_b = b.health == ServerHealth::kHealthy ? 0 : 1;
    if (rank_a != rank_b ? rank_a < rank_b : a.outstanding < b.outstanding) {
      best = s;
    }
  }
  return best;
}

void Router::OnRequestStart(std::size_t server) {
  ++servers_.at(server).outstanding;
  if (counters_ != nullptr) ++counters_->requests_routed;
}

void Router::OnRequestEnd(std::size_t server) {
  --servers_.at(server).outstanding;
}

void Router::OnRequestSuccess(std::size_t server) {
  // A served request proves liveness but says nothing about warm-up, so it
  // clears the error streak without advancing the recovering hand-shake.
  servers_.at(server).errors = 0;
  if (servers_[server].health == ServerHealth::kDegraded) {
    Transition(server, ServerHealth::kHealthy);
  }
}

void Router::OnRequestError(std::size_t server) { OnResult(server, false); }

bool Router::Routable(std::size_t server) const {
  const ServerHealth h = servers_.at(server).health;
  return (h == ServerHealth::kHealthy || h == ServerHealth::kDegraded) &&
         transport_.HasUsableDevice(server);
}

ServerHealth Router::health(std::size_t server) const {
  return servers_.at(server).health;
}

std::uint64_t Router::outstanding(std::size_t server) const {
  return servers_.at(server).outstanding;
}

sim::Task Router::ProbeLoop(std::size_t server) {
  for (;;) {
    co_await env_.Delay(options_.probe_interval);
    if (stopped_) co_return;
    if (counters_ != nullptr) ++counters_->probes_sent;
    bool ok = false;
    co_await transport_.Probe(server, ok);
    if (stopped_) co_return;
    if (!ok && counters_ != nullptr) ++counters_->probe_failures;
    OnResult(server, ok);
  }
}

void Router::OnResult(std::size_t server, bool ok) {
  ServerState& st = servers_.at(server);
  if (ok) {
    st.errors = 0;
    switch (st.health) {
      case ServerHealth::kHealthy:
        break;
      case ServerHealth::kDegraded:
        Transition(server, ServerHealth::kHealthy);
        break;
      case ServerHealth::kDown:
        st.successes = 1;
        Transition(server, ServerHealth::kRecovering);
        break;
      case ServerHealth::kRecovering:
        // Not routed until the warm-up hand-shake completes: the server must
        // answer `recovery_successes` consecutive probes before traffic.
        if (++st.successes >= options_.recovery_successes) {
          mttr_incidents_.push_back(env_.Now() - st.down_since);
          if (counters_ != nullptr) ++counters_->server_readmissions;
          Transition(server, ServerHealth::kHealthy);
        }
        break;
    }
    return;
  }
  st.successes = 0;
  ++st.errors;
  switch (st.health) {
    case ServerHealth::kDown:
      break;
    case ServerHealth::kRecovering:
      // Relapse: same outage episode, so down_since is preserved and the
      // eventual MTTR covers the whole incident.
      Transition(server, ServerHealth::kDown);
      break;
    case ServerHealth::kHealthy:
    case ServerHealth::kDegraded:
      if (st.errors >= options_.down_after_errors) {
        st.down_since = env_.Now();
        if (counters_ != nullptr) ++counters_->server_down_events;
        Transition(server, ServerHealth::kDown);
      } else if (st.health == ServerHealth::kHealthy) {
        Transition(server, ServerHealth::kDegraded);
      }
      break;
  }
}

void Router::Transition(std::size_t server, ServerHealth to) {
  ServerState& st = servers_[server];
  if (st.health == to) return;
  transitions_.push_back(ServerTransition{server, st.health, to, env_.Now()});
  st.health = to;
  if (counters_ != nullptr) ++counters_->server_transitions;
  if (registry_ != nullptr) {
    registry_
        ->GetSeries("olympian_server_health",
                    {{"server", std::to_string(server)}})
        .Sample(env_.Now(), static_cast<double>(static_cast<int>(to)));
  }
}

}  // namespace olympian::serving
