#include "serving/router.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace olympian::serving {

const char* ToString(ServerHealth h) {
  switch (h) {
    case ServerHealth::kHealthy:
      return "healthy";
    case ServerHealth::kDegraded:
      return "degraded";
    case ServerHealth::kDown:
      return "down";
    case ServerHealth::kRecovering:
      return "recovering";
  }
  return "unknown";
}

Router::Router(sim::Environment& env, RouterTransport& transport,
               std::size_t num_servers, RouterOptions options,
               metrics::RouterCounters* counters,
               metrics::MetricRegistry* registry)
    : env_(env),
      transport_(transport),
      options_(options),
      counters_(counters),
      registry_(registry) {
  if (num_servers < 1) throw std::invalid_argument("Router needs >= 1 server");
  if (options_.down_after_errors < 1 || options_.recovery_successes < 1) {
    throw std::invalid_argument(
        "down_after_errors and recovery_successes must be >= 1");
  }
  Validate(options_.score);
  if (options_.brownout.enabled) {
    if (!options_.score.enabled) {
      throw std::invalid_argument("brownout requires health scoring");
    }
    if (!(options_.brownout.enter_below > 0.0) ||
        options_.brownout.enter_below >= options_.brownout.exit_above ||
        options_.brownout.exit_above > 1.0) {
      throw std::invalid_argument(
          "brownout needs 0 < enter_below < exit_above <= 1");
    }
  }
  servers_.resize(num_servers);
  if (options_.score.enabled) {
    scores_.assign(num_servers, HealthScore(options_.score));
    fault_onset_.resize(num_servers);
    onset_armed_.assign(num_servers, false);
  }
}

void Router::Start() {
  if (started_) throw std::logic_error("Router::Start called twice");
  started_ = true;
  if (options_.probe_interval <= sim::Duration::Zero()) return;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    env_.Spawn(ProbeLoop(s), "router/probe-server" + std::to_string(s));
  }
}

void Router::Stop() { stopped_ = true; }

std::size_t Router::Route(std::size_t home) {
  if (!options_.failover) return home;  // static pin baseline
  if (scoring()) return RouteScored(home);
  if (Routable(home)) return home;
  // Least-loaded over routable servers: healthy beats degraded, then fewest
  // outstanding, then lowest index — a deterministic total order.
  std::size_t best = kNoServer;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (!Routable(s)) continue;
    if (best == kNoServer) {
      best = s;
      continue;
    }
    const ServerState& a = servers_[s];
    const ServerState& b = servers_[best];
    const int rank_a = a.health == ServerHealth::kHealthy ? 0 : 1;
    const int rank_b = b.health == ServerHealth::kHealthy ? 0 : 1;
    if (rank_a != rank_b ? rank_a < rank_b : a.outstanding < b.outstanding) {
      best = s;
    }
  }
  return best;
}

std::size_t Router::RouteScored(std::size_t home) const {
  // Sticky home while it is routable AND score-healthy (the hysteresis
  // state, not the raw score, so routing inherits the anti-flap margin).
  // Otherwise weighted selection: maximize score / (1 + outstanding) over
  // routable servers. Strict > keeps ties on the lowest index — the same
  // deterministic total order the binary rank used.
  if (home < servers_.size() && Routable(home) &&
      servers_[home].health == ServerHealth::kHealthy) {
    return home;
  }
  std::size_t best = kNoServer;
  double best_w = -1.0;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (!Routable(s)) continue;
    const double w = scores_[s].score() /
                     (1.0 + static_cast<double>(servers_[s].outstanding));
    if (w > best_w) {
      best_w = w;
      best = s;
    }
  }
  return best;
}

void Router::OnRequestStart(std::size_t server) {
  ++servers_.at(server).outstanding;
  if (counters_ != nullptr) ++counters_->requests_routed;
}

void Router::OnRequestEnd(std::size_t server) {
  --servers_.at(server).outstanding;
}

void Router::OnRequestSuccess(std::size_t server) {
  // A served request proves liveness but says nothing about warm-up, so it
  // clears the error streak without advancing the recovering hand-shake.
  // With scoring on, the hysteresis thresholds own the degraded->healthy
  // edge — one fast request must not clear a measured slowdown.
  servers_.at(server).errors = 0;
  if (!scoring() && servers_[server].health == ServerHealth::kDegraded) {
    Transition(server, ServerHealth::kHealthy);
  }
}

void Router::OnRequestError(std::size_t server) { OnResult(server, false); }

bool Router::Routable(std::size_t server) const {
  const ServerHealth h = servers_.at(server).health;
  return (h == ServerHealth::kHealthy || h == ServerHealth::kDegraded) &&
         transport_.HasUsableDevice(server);
}

ServerHealth Router::health(std::size_t server) const {
  return servers_.at(server).health;
}

std::uint64_t Router::outstanding(std::size_t server) const {
  return servers_.at(server).outstanding;
}

sim::Task Router::ProbeLoop(std::size_t server) {
  for (;;) {
    co_await env_.Delay(options_.probe_interval);
    if (stopped_) co_return;
    if (counters_ != nullptr) ++counters_->probes_sent;
    bool ok = false;
    const sim::TimePoint sent = env_.Now();
    co_await transport_.Probe(server, ok);
    if (stopped_) co_return;
    const sim::Duration rtt = env_.Now() - sent;
    if (!ok && counters_ != nullptr) ++counters_->probe_failures;
    if (registry_ != nullptr && ok) {
      // The gray-degradation signal as the router saw it, per server.
      registry_
          ->GetSeries("olympian_router_probe_rtt_ms",
                      {{"server", std::to_string(server)}})
          .Sample(env_.Now(), rtt.millis());
    }
    if (scoring()) scores_[server].OnProbe(ok, rtt);
    OnResult(server, ok);
    if (scoring()) {
      UpdateScoreHealth(server);
      UpdateBrownout();
    }
  }
}

void Router::OnResult(std::size_t server, bool ok) {
  ServerState& st = servers_.at(server);
  if (ok) {
    st.errors = 0;
    switch (st.health) {
      case ServerHealth::kHealthy:
        break;
      case ServerHealth::kDegraded:
        // Under scoring the hysteresis owns this edge: one fast probe must
        // not clear a measured slowdown (UpdateScoreHealth recovers it).
        if (!scoring()) Transition(server, ServerHealth::kHealthy);
        break;
      case ServerHealth::kDown:
        st.successes = 1;
        Transition(server, ServerHealth::kRecovering);
        break;
      case ServerHealth::kRecovering:
        // Not routed until the warm-up hand-shake completes: the server must
        // answer `recovery_successes` consecutive probes before traffic.
        if (++st.successes >= options_.recovery_successes) {
          mttr_incidents_.push_back(env_.Now() - st.down_since);
          if (counters_ != nullptr) ++counters_->server_readmissions;
          // Re-learn the baseline: post-recovery "normal" may differ, and
          // the error EWMA accumulated through the outage must not
          // instantly re-degrade the readmitted server.
          if (scoring()) scores_[server].Reset();
          Transition(server, ServerHealth::kHealthy);
        }
        break;
    }
    return;
  }
  st.successes = 0;
  ++st.errors;
  switch (st.health) {
    case ServerHealth::kDown:
      break;
    case ServerHealth::kRecovering:
      // Relapse: same outage episode, so down_since is preserved and the
      // eventual MTTR covers the whole incident.
      Transition(server, ServerHealth::kDown);
      break;
    case ServerHealth::kHealthy:
    case ServerHealth::kDegraded:
      if (st.errors >= options_.down_after_errors) {
        st.down_since = env_.Now();
        if (counters_ != nullptr) ++counters_->server_down_events;
        Transition(server, ServerHealth::kDown);
      } else if (!scoring() && st.health == ServerHealth::kHealthy) {
        // With scoring on, a single error only feeds the error EWMA; the
        // hysteresis check owns the healthy->degraded edge.
        Transition(server, ServerHealth::kDegraded);
      }
      break;
  }
}

void Router::Transition(std::size_t server, ServerHealth to) {
  ServerState& st = servers_[server];
  if (st.health == to) return;
  // Detection latency: an armed gray-fault onset is consumed by the first
  // away-from-healthy edge; going back to healthy discards a stale onset
  // (the window closed before the router ever noticed).
  if (scoring() && !onset_armed_.empty() && onset_armed_[server]) {
    if (to == ServerHealth::kDegraded || to == ServerHealth::kDown) {
      const sim::Duration lat = env_.Now() - fault_onset_[server];
      detection_latencies_.push_back(lat);
      onset_armed_[server] = false;
      if (registry_ != nullptr) {
        registry_->GetHistogram("olympian_router_detection_latency_ms")
            .Observe(lat.millis());
      }
    } else if (to == ServerHealth::kHealthy) {
      onset_armed_[server] = false;
    }
  }
  if (incident_log_ != nullptr) {
    // The incident log's notion of "healthy" is the router's top state; any
    // away-edge is a detection, the return edge is the recovery.
    incident_log_->HealthTransition(static_cast<int>(server),
                                    st.health == ServerHealth::kHealthy,
                                    to == ServerHealth::kHealthy, env_.Now());
  }
  transitions_.push_back(ServerTransition{server, st.health, to, env_.Now()});
  st.health = to;
  if (counters_ != nullptr) ++counters_->server_transitions;
  if (registry_ != nullptr) {
    registry_
        ->GetSeries("olympian_server_health",
                    {{"server", std::to_string(server)}})
        .Sample(env_.Now(), static_cast<double>(static_cast<int>(to)));
  }
}

double Router::score(std::size_t server) const {
  if (!scoring()) return 1.0;
  return scores_.at(server).score();
}

void Router::NoteFaultOnset(std::size_t server) {
  if (!scoring()) return;
  // Only arm from the healthy state: a fault landing on an already
  // degraded/down server has no healthy->degraded edge to measure.
  if (servers_.at(server).health != ServerHealth::kHealthy) return;
  if (onset_armed_[server]) return;  // overlapping windows: first onset wins
  onset_armed_[server] = true;
  fault_onset_[server] = env_.Now();
}

void Router::SetPriorityClasses(std::vector<int> priorities) {
  std::sort(priorities.begin(), priorities.end());
  priorities.erase(std::unique(priorities.begin(), priorities.end()),
                   priorities.end());
  priority_classes_ = std::move(priorities);
}

bool Router::BrownoutSheds(int priority) const {
  if (brownout_level_ <= 0) return false;
  // Classes are sorted ascending; the lowest `brownout_level_` of them are
  // shed. A priority below every known class sheds with the lowest one.
  std::size_t rank = 0;
  while (rank < priority_classes_.size() &&
         priority_classes_[rank] < priority) {
    ++rank;
  }
  return rank < static_cast<std::size_t>(brownout_level_);
}

void Router::UpdateScoreHealth(std::size_t server) {
  ServerState& st = servers_[server];
  const double sc = scores_[server].score();
  if (st.health == ServerHealth::kHealthy &&
      sc < options_.score.degrade_below) {
    if (counters_ != nullptr) ++counters_->score_degrade_events;
    Transition(server, ServerHealth::kDegraded);
  } else if (st.health == ServerHealth::kDegraded &&
             sc >= options_.score.recover_above) {
    if (counters_ != nullptr) ++counters_->score_recover_events;
    Transition(server, ServerHealth::kHealthy);
  }
}

void Router::UpdateBrownout() {
  if (!options_.brownout.enabled || priority_classes_.empty()) return;
  const sim::TimePoint now = env_.Now();
  if (brownout_level_ != 0 || last_brownout_move_ > sim::TimePoint()) {
    if (now - last_brownout_move_ < options_.brownout.min_dwell) return;
  }
  // Aggregate capacity: mean score over routable servers, with unroutable
  // servers contributing zero — a down server is lost capacity too.
  double total = 0.0;
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (Routable(s)) total += scores_[s].score();
  }
  const double cap = total / static_cast<double>(servers_.size());
  // The highest class is never shed: brownout degrades, it never blacks out.
  const int max_level = static_cast<int>(priority_classes_.size()) - 1;
  const int before = brownout_level_;
  if (cap < options_.brownout.enter_below && brownout_level_ < max_level) {
    if (brownout_level_ == 0 && counters_ != nullptr) {
      ++counters_->brownout_entries;
    }
    ++brownout_level_;
    last_brownout_move_ = now;
  } else if (cap >= options_.brownout.exit_above && brownout_level_ > 0) {
    --brownout_level_;
    if (brownout_level_ == 0 && counters_ != nullptr) {
      ++counters_->brownout_exits;
    }
    last_brownout_move_ = now;
  }
  if (brownout_level_ != before && registry_ != nullptr) {
    registry_->GetSeries("olympian_brownout_level", {})
        .Sample(now, static_cast<double>(brownout_level_));
  }
  if (brownout_level_ > before && incident_log_ != nullptr) {
    // Shedding a class is a global load-shifting action: it mitigates every
    // open, detected incident that nothing else has addressed yet.
    incident_log_->Mitigation(-1, "brownout", now);
  }
}

}  // namespace olympian::serving
