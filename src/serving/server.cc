#include "serving/server.h"

#include <cmath>
#include <utility>

namespace olympian::serving {

Experiment::Experiment(ServerOptions options) : options_(std::move(options)) {
  if (options_.num_gpus < 1) {
    throw std::invalid_argument("num_gpus must be >= 1");
  }
  // Derive decorrelated seeds for each device and executor.
  sim::Rng master(options_.seed);
  for (int i = 0; i < options_.num_gpus; ++i) {
    gpusim::Gpu::Options gpu_opts = options_.gpu;
    gpu_opts.seed = master.NextU64();
    gpus_.push_back(std::make_unique<gpusim::Gpu>(env_, gpu_opts));
    executor_seeds_.push_back(master.NextU64());
  }
  executors_.resize(gpus_.size());
  hooks_.resize(gpus_.size(), nullptr);
  pool_ = std::make_unique<graph::ThreadPool>(env_, options_.pool_threads);
}

Experiment::~Experiment() = default;

void Experiment::SetGpuHooks(std::size_t gpu_index,
                             graph::SchedulingHooks* hooks) {
  if (executors_.at(gpu_index) != nullptr) {
    throw std::logic_error("SetGpuHooks must precede executor construction");
  }
  hooks_.at(gpu_index) = hooks;
}

graph::Executor& Experiment::executor(std::size_t gpu_index) {
  auto& exec = executors_.at(gpu_index);
  if (!exec) {
    exec = std::make_unique<graph::Executor>(
        env_, *gpus_[gpu_index], *pool_, options_.executor,
        executor_seeds_[gpu_index], hooks_[gpu_index]);
  }
  return *exec;
}

const graph::Graph& Experiment::LoadModel(const std::string& name,
                                          std::size_t gpu_index) {
  auto it = loaded_.find(name);
  if (it == loaded_.end()) {
    const models::ModelSpec& spec = models::GetModel(name);
    it = loaded_
             .emplace(name, std::make_unique<graph::Graph>(
                                models::BuildModel(spec)))
             .first;
  }
  // Model parameters are loaded once per device and shared by its clients.
  if (params_resident_.emplace(gpu_index, name).second) {
    gpus_.at(gpu_index)->AllocateMemory(gpusim::kNoJob,
                                        models::GetModel(name).params_mb);
  }
  return *it->second;
}

graph::JobContext& Experiment::CreateJob(const std::string& model,
                                         int max_batch,
                                         std::size_t gpu_index) {
  LoadModel(model, gpu_index);
  const models::ModelSpec& mspec = models::GetModel(model);
  auto ctx = std::make_unique<graph::JobContext>();
  ctx->job = next_job_id_++;
  ctx->client_name = model + "#" + std::to_string(ctx->job);
  ctx->model_key = models::ModelKey(model, max_batch);
  ctx->batch = max_batch;
  for (int s = 0; s < options_.streams_per_job; ++s) {
    ctx->streams.push_back(gpus_.at(gpu_index)->CreateStream());
  }
  gpus_.at(gpu_index)->AllocateMemory(ctx->job, mspec.ClientMemoryMb(max_batch));
  contexts_.push_back(std::move(ctx));
  return *contexts_.back();
}

void Experiment::FinishManualRun() {
  env_.Run();
  makespan_ = env_.Now() - sim::TimePoint();
  pool_->Shutdown();
  env_.Run();
}

sim::Task Experiment::ClientProc(graph::JobContext& ctx, const graph::Graph& g,
                                 ClientSpec spec, std::uint64_t seed,
                                 ClientResult& out) {
  sim::Rng rng(seed);
  graph::Executor& exec = executor(out.gpu_index);
  const bool open_loop = spec.mean_interarrival > sim::Duration::Zero();
  sim::TimePoint arrival;  // request b's arrival instant (t=0 for b=0)
  for (int b = 0; b < spec.num_batches; ++b) {
    if (open_loop) {
      if (b > 0) {
        // Poisson arrivals: exponential interarrival gaps. A request that
        // arrives while the previous one is in flight queues at the client,
        // and its latency includes that wait.
        arrival = arrival + spec.mean_interarrival *
                                (-std::log(1.0 - rng.NextDouble()));
      }
      if (arrival > env_.Now()) co_await env_.Delay(arrival - env_.Now());
    } else {
      arrival = env_.Now();
    }
    co_await exec.RunOnce(ctx, g);
    out.request_latency_ms.push_back((env_.Now() - arrival).millis());
    ++out.batches_completed;
  }
  out.finish_time = env_.Now() - sim::TimePoint();
  out.gpu_duration = gpus_[out.gpu_index]->JobGpuDuration(ctx.job);
}

std::vector<ClientResult> Experiment::Run(
    const std::vector<ClientSpec>& clients) {
  if (ran_) throw std::logic_error("Experiment::Run may only be called once");
  ran_ = true;
  for (std::size_t i = 0; i < gpus_.size(); ++i) executor(i);  // bind hooks

  std::vector<ClientResult> results(clients.size());
  std::vector<sim::Process> procs;
  procs.reserve(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const ClientSpec& spec = clients[i];
    const std::size_t gpu_index = i % gpus_.size();  // round-robin placement
    const graph::Graph& g = LoadModel(spec.model, gpu_index);
    const models::ModelSpec& mspec = models::GetModel(spec.model);

    auto ctx = std::make_unique<graph::JobContext>();
    ctx->job = next_job_id_++;
    ctx->client_name = spec.model + "#" + std::to_string(i);
    ctx->model_key = models::ModelKey(spec.model, spec.batch);
    ctx->batch = spec.batch;
    ctx->weight = spec.weight;
    ctx->priority = spec.priority;
    ctx->min_share = spec.min_share;
    for (int s = 0; s < options_.streams_per_job; ++s) {
      ctx->streams.push_back(gpus_[gpu_index]->CreateStream());
    }
    // Per-client activation memory for in-flight batches (§4.3).
    gpus_[gpu_index]->AllocateMemory(ctx->job, mspec.ClientMemoryMb(spec.batch));

    ClientResult& out = results[i];
    out.name = ctx->client_name;
    out.job = ctx->job;
    out.model = spec.model;
    out.batch = spec.batch;
    out.gpu_index = gpu_index;

    procs.push_back(env_.Spawn(
        ClientProc(*ctx, g, spec, options_.seed * 7919 + i, out),
        ctx->client_name));
    contexts_.push_back(std::move(ctx));
  }

  env_.Run();

  sim::Duration makespan;
  bool stalled = false;
  for (std::size_t i = 0; i < results.size(); ++i) {
    makespan = std::max(makespan, results[i].finish_time);
    if (results[i].batches_completed < clients[i].num_batches) stalled = true;
  }
  makespan_ = makespan;
  if (stalled) {
    throw ServerStalled(
        "workload stalled: thread pool exhausted by suspended gangs (" +
        std::to_string(pool_->num_threads()) + " threads, " +
        std::to_string(clients.size()) + " clients)");
  }
  pool_->Shutdown();
  env_.Run();  // drain exiting workers
  return results;
}

double Experiment::utilization() const {
  if (makespan_ <= sim::Duration::Zero()) return 0.0;
  sim::Duration busy;
  for (const auto& g : gpus_) busy += g->TotalBusy();
  return busy.Ratio(makespan_) / static_cast<double>(gpus_.size());
}

}  // namespace olympian::serving
