#include "serving/server.h"

#include <cmath>
#include <utility>

namespace olympian::serving {

int ClientResult::CountStatus(RequestStatus s) const {
  int n = 0;
  for (const RequestStatus st : request_status) n += (st == s) ? 1 : 0;
  return n;
}

Experiment::Experiment(ServerOptions options)
    : Experiment(std::move(options), static_cast<sim::Environment*>(nullptr)) {}

Experiment::Experiment(ServerOptions options, sim::Environment& env)
    : Experiment(std::move(options), &env) {}

Experiment::Experiment(ServerOptions options, sim::Environment* env)
    : options_(std::move(options)),
      owned_env_(env == nullptr ? std::make_unique<sim::Environment>()
                                : nullptr),
      env_(env == nullptr ? *owned_env_ : *env) {
  if (options_.num_gpus < 1) {
    throw std::invalid_argument("num_gpus must be >= 1");
  }
  // Derive decorrelated seeds for each device and executor.
  sim::Rng master(options_.seed);
  for (int i = 0; i < options_.num_gpus; ++i) {
    gpusim::Gpu::Options gpu_opts = options_.gpu;
    gpu_opts.seed = master.NextU64();
    gpus_.push_back(std::make_unique<gpusim::Gpu>(env_, gpu_opts));
    executor_seeds_.push_back(master.NextU64());
  }
  executors_.resize(gpus_.size());
  hooks_.resize(gpus_.size(), nullptr);
  pool_ = std::make_unique<graph::ThreadPool>(env_, options_.pool_threads);
}

Experiment::~Experiment() = default;

void Experiment::SetGpuHooks(std::size_t gpu_index,
                             graph::SchedulingHooks* hooks) {
  if (executors_.at(gpu_index) != nullptr) {
    throw std::logic_error("SetGpuHooks must precede executor construction");
  }
  hooks_.at(gpu_index) = hooks;
}

graph::Executor& Experiment::executor(std::size_t gpu_index) {
  auto& exec = executors_.at(gpu_index);
  if (!exec) {
    exec = std::make_unique<graph::Executor>(
        env_, *gpus_[gpu_index], *pool_, options_.executor,
        executor_seeds_[gpu_index], hooks_[gpu_index]);
  }
  return *exec;
}

const graph::Graph& Experiment::LoadModel(const std::string& name,
                                          std::size_t gpu_index) {
  auto it = loaded_.find(name);
  if (it == loaded_.end()) {
    const models::ModelSpec& spec = models::GetModel(name);
    it = loaded_
             .emplace(name, std::make_unique<graph::Graph>(
                                models::BuildModel(spec)))
             .first;
  }
  // Model parameters are loaded once per device and shared by its clients.
  if (params_resident_.emplace(gpu_index, name).second) {
    gpus_.at(gpu_index)->AllocateMemory(gpusim::kNoJob,
                                        models::GetModel(name).params_mb);
  }
  return *it->second;
}

graph::JobContext& Experiment::CreateJob(const std::string& model,
                                         int max_batch,
                                         std::size_t gpu_index) {
  LoadModel(model, gpu_index);
  const models::ModelSpec& mspec = models::GetModel(model);
  auto ctx = std::make_unique<graph::JobContext>();
  ctx->job = next_job_id_++;
  ctx->client_name = model + "#" + std::to_string(ctx->job);
  ctx->model_key = models::ModelKey(model, max_batch);
  ctx->batch = max_batch;
  ctx->gpu_index = static_cast<int>(gpu_index);
  for (int s = 0; s < options_.streams_per_job; ++s) {
    ctx->streams.push_back(gpus_.at(gpu_index)->CreateStream());
  }
  gpus_.at(gpu_index)->AllocateMemory(ctx->job, mspec.ClientMemoryMb(max_batch));
  contexts_.push_back(std::move(ctx));
  return *contexts_.back();
}

void Experiment::FinishManualRun() {
  env_.Run();
  makespan_ = env_.Now() - sim::TimePoint();
  pool_->Shutdown();
  env_.Run();
}

sim::Task Experiment::ClientProc(std::size_t client_index,
                                 graph::JobContext& ctx, const graph::Graph& g,
                                 ClientSpec spec, std::uint64_t seed,
                                 ClientResult& out) {
  sim::Rng rng(seed);
  const bool open_loop = spec.mean_interarrival > sim::Duration::Zero();
  // Handle resolved once per client; Observe on the request path is then
  // allocation-free.
  metrics::MetricRegistry* const registry = options_.observability.registry;
  metrics::MetricRegistry::Histogram* const latency_hist =
      registry == nullptr
          ? nullptr
          : &registry->GetHistogram("olympian_request_latency_ms",
                                    {{"model", spec.model}});
  metrics::PhaseCollector* const phases = options_.observability.phases;
  metrics::PhaseAccount account;
  sim::TimePoint arrival;  // request b's arrival instant (t=0 for b=0)
  for (int b = 0; b < spec.num_batches; ++b) {
    if (open_loop) {
      if (b > 0) {
        // Poisson arrivals: exponential interarrival gaps. A request that
        // arrives while the previous one is in flight queues at the client,
        // and its latency includes that wait.
        arrival = arrival + spec.mean_interarrival *
                                (-std::log(1.0 - rng.NextDouble()));
      }
      if (arrival > env_.Now()) co_await env_.Delay(arrival - env_.Now());
    } else {
      arrival = env_.Now();
    }
    RequestStatus status = RequestStatus::kOk;
    metrics::PhaseAccount* pa = nullptr;
    if (phases != nullptr) {
      pa = &account;
      pa->Start(arrival);
      // An open-loop request that arrived while its predecessor was in
      // flight queued at the client; that wait is pre-admission time.
      pa->Charge(metrics::Phase::kAdmission, env_.Now());
    }
    co_await RunRequest(client_index, ctx, g, spec, rng, arrival,
                        out.gpu_index, status, pa);
    out.request_latency_ms.push_back((env_.Now() - arrival).millis());
    out.request_status.push_back(status);
    if (phases != nullptr) {
      const bool ok = status == RequestStatus::kOk ||
                      status == RequestStatus::kFailedRetried;
      phases->Record(-1, spec.model, account, ok, env_.Now() - arrival);
    }
    if (latency_hist != nullptr) {
      latency_hist->Observe(out.request_latency_ms.back());
    }
    if (status == RequestStatus::kOk ||
        status == RequestStatus::kFailedRetried) {
      ++out.batches_completed;
    }
  }
  out.finish_time = env_.Now() - sim::TimePoint();
  if (health_ != nullptr) {
    // Under failover the client's work may have spanned devices: sum the
    // GPU duration of every context it ran on.
    out.gpu_duration = sim::Duration::Zero();
    for (const auto& [key, c] : client_gpu_ctx_) {
      if (key.first == client_index) {
        out.gpu_duration += gpus_[key.second]->JobGpuDuration(c->job);
        // The client is done: fold its meter into the retired table so live
        // meter count stays bounded no matter how many jobs a run admits.
        gpus_[key.second]->RetireJob(c->job);
      }
    }
    if (--remaining_clients_ == 0) health_->Stop();
  } else {
    out.gpu_duration = gpus_[out.gpu_index]->JobGpuDuration(ctx.job);
    gpus_[out.gpu_index]->RetireJob(ctx.job);
  }
  if (clients_running_ > 0) --clients_running_;  // sampler stop condition
}

CircuitBreaker* Experiment::BreakerFor(const std::string& model) {
  if (options_.degradation.breaker.failure_threshold <= 0) return nullptr;
  auto& slot = breakers_[model];
  if (!slot) {
    slot = std::make_unique<CircuitBreaker>(options_.degradation.breaker);
  }
  return slot.get();
}

sim::Task Experiment::RunRequest(std::size_t client_index,
                                 graph::JobContext& primary_ctx,
                                 const graph::Graph& g, const ClientSpec& spec,
                                 sim::Rng& rng, sim::TimePoint arrival,
                                 std::size_t primary_gpu,
                                 RequestStatus& status,
                                 metrics::PhaseAccount* pa) {
  const DegradationOptions& deg = options_.degradation;
  const bool has_deadline = spec.deadline > sim::Duration::Zero();
  const sim::TimePoint deadline = arrival + spec.deadline;
  CircuitBreaker* breaker = BreakerFor(spec.model);
  const bool failover = health_ != nullptr;

  // Causal tracing: one flow id (= request id) chains every admission of
  // this request — retries, failover re-admissions, hedges — across device
  // tracks. The id is assigned unconditionally so traced and untraced runs
  // walk identical state.
  metrics::Tracer* const tracer = options_.executor.tracer;
  const std::uint64_t rid = ++next_request_id_;
  int flow_hops = 0;                              // executed admissions so far
  std::int64_t flow_track = primary_ctx.job;      // track of the winning leg
  // Why the *next* admission hop happens (failover / retry / reroute);
  // rendered as the kStep's args.reason so a trace shows why a leg ended
  // and another began instead of a bare arrow.
  const char* hop_detail = nullptr;
  const auto end_flow = [&](const char* why) {
    if (tracer != nullptr && flow_hops > 0) {
      tracer->AddFlow(metrics::Tracer::FlowPhase::kEnd, "request", "req-", rid,
                      flow_track, env_.Now(), why);
    }
  };

  // Latency anatomy: when `pa` is set, every interval between awaits below
  // is charged to exactly one phase, so the account's cursor equals the
  // current instant at every co_return — the phase sum matches end-to-end
  // latency bit-exactly by construction. All charges are `if (pa)`-guarded;
  // a null account costs one predictable branch per site.
  bool failing_over = false;  // last attempt ended in failover re-admission
  for (int attempt = 1;;) {
    if (has_deadline && env_.Now() >= deadline) {
      status = RequestStatus::kTimedOut;
      ++counters_.requests_timed_out;
      end_flow("deadline");
      if (pa != nullptr) pa->Charge(metrics::Phase::kAdmission, env_.Now());
      co_return;
    }
    // Admission control: shed instead of stalling when the pool is already
    // saturated (the paper's §4.3 failure mode becomes a 503, not a hang).
    if (deg.admission_watermark > 0.0) {
      const double occupancy =
          static_cast<double>(pool_->busy_workers() + pool_->queued()) /
          static_cast<double>(pool_->num_threads());
      if (occupancy >= deg.admission_watermark) {
        ++counters_.requests_shed;
        ++counters_.requests_rejected;
        status = RequestStatus::kRejected;
        end_flow("rejected");
        if (pa != nullptr) pa->Charge(metrics::Phase::kAdmission, env_.Now());
        co_await env_.Delay(deg.reject_backoff);
        if (pa != nullptr) pa->Charge(metrics::Phase::kBackoff, env_.Now());
        co_return;
      }
    }
    if (breaker != nullptr && !breaker->AllowRequest(env_.Now())) {
      ++counters_.breaker_rejections;
      ++counters_.requests_rejected;
      status = RequestStatus::kRejected;
      end_flow("rejected");
      if (pa != nullptr) pa->Charge(metrics::Phase::kAdmission, env_.Now());
      co_await env_.Delay(deg.reject_backoff);
      if (pa != nullptr) pa->Charge(metrics::Phase::kBackoff, env_.Now());
      co_return;
    }

    // Route this attempt. Legacy: the static round-robin pin. Failover:
    // per-request placement over usable replicas.
    std::size_t gpu_index = primary_gpu;
    graph::JobContext* ctx = &primary_ctx;
    if (failover) {
      gpu_index = placer_->Route(spec.model, primary_gpu);
      if (gpu_index == Placer::kNoDevice) {
        // Every device is down: terminate promptly as a rejection instead
        // of stalling until deadlines (or ServerStalled) fire.
        ++counters_.requests_rejected_no_device;
        ++counters_.requests_rejected;
        status = RequestStatus::kRejected;
        end_flow("rejected");
        if (pa != nullptr) pa->Charge(metrics::Phase::kAdmission, env_.Now());
        co_await env_.Delay(deg.reject_backoff);
        if (pa != nullptr) pa->Charge(metrics::Phase::kBackoff, env_.Now());
        co_return;
      }
      bool replica_ok = true;
      if (pa != nullptr) {
        pa->Charge(metrics::Phase::kPlacerDecision, env_.Now());
      }
      co_await EnsureReplica(client_index, spec, gpu_index, replica_ok);
      if (pa != nullptr) {
        // Reload/warm-up wait, unless this admission is a failover re-entry
        // — then the whole leg is blamed on the failover.
        pa->Charge(failing_over ? metrics::Phase::kFailoverReadmit
                                : metrics::Phase::kReload,
                   env_.Now());
        failing_over = false;
      }
      if (!replica_ok) {
        ++counters_.transient_alloc_failures;
        // Fall through to the failure path below as a retryable transient.
        if (breaker != nullptr && breaker->OnFailure(env_.Now())) {
          ++counters_.breaker_opens;
        }
        if (attempt > deg.retry.max_retries) {
          status = RequestStatus::kFailed;
          ++counters_.requests_failed;
          end_flow("failed");
          co_return;
        }
        ++counters_.retries;
        ++attempt;
        hop_detail = "retry";
        co_await env_.Delay(deg.reject_backoff);
        if (pa != nullptr) pa->Charge(metrics::Phase::kBackoff, env_.Now());
        continue;
      }
      ctx = ClientContext(client_index, gpu_index);
      if (!health_->Usable(gpu_index)) {
        hop_detail = "reroute";
        continue;  // went down while loading
      }
      if (ctx->cancel != nullptr) {
        // A draining hedge of a previous request still owns this context;
        // let it finish (it was cancelled, so it drains fast).
        hop_detail = "reroute";
        co_await env_.Delay(deg.reject_backoff);
        if (pa != nullptr) pa->Charge(metrics::Phase::kBackoff, env_.Now());
        continue;
      }
    }

    bool failed = false;
    bool hedge_won = false;
    graph::CancelReason reason = graph::CancelReason::kNone;
    if (gpus_[gpu_index]->alloc_fault_active()) {
      // Workspace allocation fails up front during an alloc-fault window — a
      // retryable transient, like a failed cudaMalloc before launch.
      ++counters_.transient_alloc_failures;
      failed = true;
    } else {
      // Hedge: the routed device is impaired but not down — race a
      // duplicate on another usable replica for tail tolerance.
      std::shared_ptr<HedgeState> hedge;
      const bool hedge_on_bit = options_.failover.hedge_when_degraded &&
                                health_->health(gpu_index) ==
                                    DeviceHealth::kDegraded;
      const bool hedge_on_score =
          options_.failover.hedge_below_score > 0.0 && health_->scoring() &&
          health_->score(static_cast<std::size_t>(gpu_index)) <
              options_.failover.hedge_below_score;
      if (failover && (hedge_on_bit || hedge_on_score)) {
        const std::size_t alt =
            placer_->Route(spec.model, primary_gpu, gpu_index);
        if (alt != Placer::kNoDevice && alt != gpu_index) {
          hedge = std::make_shared<HedgeState>(env_);
          hedge->request_id = rid;
          hedge->attempt = attempt;
          ++counters_.hedges_launched;
          env_.Spawn(HedgeProc(client_index, spec, g, alt, hedge),
                     ctx->client_name + "/hedge");
        }
      }
      // Stamp the causal identity for this admission; the executor renders
      // it as an attempt span, and the flow hop below (same instant as the
      // span start) binds to it in Perfetto.
      ctx->trace = metrics::TraceContext{rid, attempt, false};
      ctx->gpu_index = static_cast<int>(gpu_index);
      if (tracer != nullptr) {
        tracer->AddInstantNumbered("placer", "route-gpu-",
                                   static_cast<std::int64_t>(gpu_index),
                                   ctx->job, env_.Now());
        tracer->AddFlow(flow_hops == 0 ? metrics::Tracer::FlowPhase::kBegin
                                       : metrics::Tracer::FlowPhase::kStep,
                        "request", "req-", rid, ctx->job, env_.Now(),
                        flow_hops == 0 ? nullptr : hop_detail);
      }
      ++flow_hops;
      hop_detail = nullptr;
      flow_track = ctx->job;
      auto token = std::make_shared<graph::CancelToken>();
      ctx->cancel = token.get();
      if (has_deadline) {
        env_.Spawn(DeadlineWatchdog(token, ctx, gpu_index, deadline),
                   ctx->client_name + "/watchdog");
      }
      if (failover) {
        placer_->OnRequestStart(gpu_index);
        RegisterInFlight(gpu_index, token.get(), ctx);
      }
      const sim::Duration gpu_before =
          pa != nullptr ? gpus_[gpu_index]->JobGpuDuration(ctx->job)
                        : sim::Duration::Zero();
      co_await executor(gpu_index).RunOnce(*ctx, g);
      if (pa != nullptr) {
        // Split the run interval into measured GPU residency (compute) and
        // everything else — pool queueing, scheduler token waits (queue).
        pa->SplitCharge(metrics::Phase::kGpuCompute,
                        gpus_[gpu_index]->JobGpuDuration(ctx->job) - gpu_before,
                        metrics::Phase::kGpuQueue, env_.Now());
      }
      token->finished = true;
      ctx->cancel = nullptr;
      if (failover) {
        placer_->OnRequestEnd(gpu_index);
        DeregisterInFlight(gpu_index, token.get());
      }
      if (token->cancelled) {
        failed = true;
        reason = token->reason;
      }
      if (hedge) {
        hedge->primary_done = true;
        if (!failed) {
          // Primary won; reel the hedge in (it drains as a no-op).
          if (!hedge->done && hedge->token != nullptr) {
            hedge->token->Cancel(graph::CancelReason::kFailover);
            if (!hedge->token->hooks_notified) {
              hedge->token->hooks_notified = true;
              if (hooks_[hedge->gpu] != nullptr) {
                hooks_[hedge->gpu]->CancelRun(*hedge->ctx);
              }
            }
          }
        } else {
          // Primary failed: the hedge verdict decides the request.
          while (!hedge->done) co_await hedge->cv.Wait();
          if (pa != nullptr) {
            pa->Charge(metrics::Phase::kHedgeOverhead, env_.Now());
          }
          if (hedge->won) {
            ++counters_.hedge_wins;
            failed = false;
            hedge_won = true;
            reason = graph::CancelReason::kNone;
            // The hedge's leg is the one that produced the response; the
            // flow terminates on its track.
            if (hedge->ctx != nullptr) flow_track = hedge->ctx->job;
          }
        }
      }
    }

    if (!failed) {
      if (breaker != nullptr) breaker->OnSuccess();
      if (attempt == 1) {
        status = RequestStatus::kOk;
        ++counters_.requests_ok;
      } else {
        status = RequestStatus::kFailedRetried;
        ++counters_.requests_retried_ok;
      }
      end_flow(hedge_won ? "hedge-win" : attempt == 1 ? "ok" : "ok-retried");
      co_return;
    }
    if (reason == graph::CancelReason::kDeadline) {
      // The deadline already elapsed mid-run; no retry can meet it.
      status = RequestStatus::kTimedOut;
      ++counters_.requests_timed_out;
      ++counters_.deadline_cancellations;
      end_flow("deadline");
      co_return;
    }
    if (failover && (reason == graph::CancelReason::kFailover ||
                     !health_->Usable(gpu_index))) {
      // The device died under this attempt. Re-admit on a surviving
      // replica WITHOUT consuming the retry budget — the failure belongs
      // to the device, not the request. (The Usable check also catches a
      // kernel failure that raced ahead of the down transition.)
      failing_over = true;
      ++counters_.requests_failed_over;
      hop_detail = graph::ToString(graph::CancelReason::kFailover);
      continue;
    }
    if (reason == graph::CancelReason::kKernelFailed) {
      ++counters_.kernel_failures_observed;
    }
    if (breaker != nullptr && breaker->OnFailure(env_.Now())) {
      ++counters_.breaker_opens;
    }
    if (attempt > deg.retry.max_retries) {
      status = RequestStatus::kFailed;
      ++counters_.requests_failed;
      end_flow("failed");
      co_return;
    }
    ++counters_.retries;
    sim::Duration backoff = deg.retry.BackoffFor(attempt);
    if (deg.retry.jitter > 0.0) {
      backoff = rng.Jitter(backoff, deg.retry.jitter);
    }
    if (has_deadline && env_.Now() + backoff >= deadline) {
      // The backoff alone would blow the deadline; give up now.
      status = RequestStatus::kTimedOut;
      ++counters_.requests_timed_out;
      end_flow("deadline");
      co_return;
    }
    ++attempt;
    hop_detail = reason == graph::CancelReason::kKernelFailed
                     ? graph::ToString(reason)
                     : "retry";
    co_await env_.Delay(backoff);
    if (pa != nullptr) pa->Charge(metrics::Phase::kBackoff, env_.Now());
  }
}

sim::Task Experiment::DeadlineWatchdog(
    std::shared_ptr<graph::CancelToken> token, graph::JobContext* ctx,
    std::size_t gpu_index, sim::TimePoint deadline) {
  if (deadline > env_.Now()) co_await env_.Delay(deadline - env_.Now());
  // `finished` is set by the issuer the moment RunOnce returns, so a stale
  // watchdog (its request long done, the context reused) is a no-op.
  if (token->finished || token->cancelled) co_return;
  token->Cancel(graph::CancelReason::kDeadline);
  // The run may be suspended waiting for the scheduler token with no node
  // boundary coming up; notify the hooks directly so the gang is woken,
  // deregistered, and its pool threads released.
  if (!token->hooks_notified) {
    token->hooks_notified = true;
    graph::SchedulingHooks* hooks = hooks_.at(gpu_index);
    if (hooks != nullptr) hooks->CancelRun(*ctx);
  }
}

void Experiment::OnDeviceDown(std::size_t gpu) {
  // Runs synchronously inside the device signal (reset begin / hang
  // escalation), before any failed kernel's waiter resumes. Cancelling with
  // kFailover here wins the sticky-token race against kKernelFailed, so
  // each victim re-admits to a surviving replica without touching its
  // retry budget.
  for (const InFlight& f : inflight_[gpu]) {
    f.token->Cancel(graph::CancelReason::kFailover);
    if (!f.token->hooks_notified) {
      f.token->hooks_notified = true;
      if (hooks_[gpu] != nullptr) hooks_[gpu]->CancelRun(*f.ctx);
    }
    ++counters_.failover_cancellations;
    // Release gang threads stuck in uninterruptible kernel awaits (queued
    // behind a wedged channel): abort the job's streams so the waits
    // resolve and the run drains now, not when the hang clears.
    for (const gpusim::StreamId s : f.ctx->streams) {
      gpus_[gpu]->AbortStream(s);
    }
  }
  if (hooks_[gpu] != nullptr) hooks_[gpu]->OnDeviceDown();
}

void Experiment::OnDeviceReadmitted(std::size_t gpu) {
  if (hooks_[gpu] != nullptr) hooks_[gpu]->OnDeviceUp();
}

sim::Duration Experiment::ParamsReloadCost(std::size_t gpu) const {
  double mb = 0.0;
  for (const auto& [dev, model] : params_resident_) {
    if (dev == gpu) mb += static_cast<double>(models::GetModel(model).params_mb);
  }
  const double gbps = options_.failover.recovery.pcie_gbps;
  if (mb <= 0.0 || gbps <= 0.0) return sim::Duration::Zero();
  return sim::Duration::Seconds(mb / 1024.0 / gbps);
}

sim::Task Experiment::EnsureReplica(std::size_t client_index,
                                    const ClientSpec& spec, std::size_t gpu,
                                    bool& ok) {
  ok = true;
  while (placer_->replica_state(gpu, spec.model) !=
         Placer::ReplicaState::kReady) {
    if (placer_->BeginLoad(gpu, spec.model)) {
      // First arrival instantiates the replica: parameters stream over
      // PCIe and the fresh replica warms up before taking traffic.
      const models::ModelSpec& mspec = models::GetModel(spec.model);
      const fault::RecoveryOptions& rec = options_.failover.recovery;
      sim::Duration cost = rec.warmup;
      if (rec.pcie_gbps > 0.0) {
        cost += sim::Duration::Seconds(
            static_cast<double>(mspec.params_mb) / 1024.0 / rec.pcie_gbps);
      }
      if (cost > sim::Duration::Zero()) co_await env_.Delay(cost);
      try {
        LoadModel(spec.model, gpu);
      } catch (const gpusim::TransientAllocFailure&) {
        ok = false;
      }
      if (!ok) {
        // Roll the slot back so a later attempt retries the load.
        placer_->AbortLoad(gpu, spec.model);
        co_return;
      }
      ++counters_.replica_instantiations;
      placer_->FinishLoad(gpu, spec.model);
    } else {
      // Someone else is loading: wait for it to settle, then re-check (an
      // aborted load makes this waiter take over).
      co_await placer_->AwaitReady(gpu, spec.model);
    }
  }
  if (ClientContext(client_index, gpu) == nullptr) {
    const models::ModelSpec& mspec = models::GetModel(spec.model);
    auto ctx = std::make_unique<graph::JobContext>();
    ctx->job = next_job_id_++;
    ctx->client_name = spec.model + "#" + std::to_string(client_index) +
                       "@gpu" + std::to_string(gpu);
    ctx->model_key = models::ModelKey(spec.model, spec.batch);
    ctx->batch = spec.batch;
    ctx->weight = spec.weight;
    ctx->priority = spec.priority;
    ctx->min_share = spec.min_share;
    ctx->gpu_index = static_cast<int>(gpu);
    for (int s = 0; s < options_.streams_per_job; ++s) {
      ctx->streams.push_back(gpus_[gpu]->CreateStream());
    }
    try {
      gpus_[gpu]->AllocateMemory(ctx->job, mspec.ClientMemoryMb(spec.batch));
    } catch (const gpusim::TransientAllocFailure&) {
      // Streams are cheap to leave behind; report a retryable transient.
      ok = false;
      contexts_.push_back(std::move(ctx));
      co_return;
    }
    client_gpu_ctx_[{client_index, gpu}] = ctx.get();
    contexts_.push_back(std::move(ctx));
  }
}

sim::Task Experiment::HedgeProc(std::size_t client_index,
                                const ClientSpec& spec, const graph::Graph& g,
                                std::size_t gpu,
                                std::shared_ptr<HedgeState> st) {
  auto skip = [&] {
    st->skipped = true;
    st->done = true;
    st->cv.NotifyAll();
  };
  if (options_.failover.hedge_delay > sim::Duration::Zero()) {
    co_await env_.Delay(options_.failover.hedge_delay);
  }
  if (st->primary_done || !health_->Usable(gpu)) {
    skip();
    co_return;
  }
  bool replica_ok = true;
  co_await EnsureReplica(client_index, spec, gpu, replica_ok);
  graph::JobContext* ctx = ClientContext(client_index, gpu);
  if (!replica_ok || ctx == nullptr || ctx->cancel != nullptr ||
      st->primary_done || !health_->Usable(gpu)) {
    skip();
    co_return;
  }
  // The hedge is one more admission of the same request: same flow id,
  // `hedge` flagged so the attempt span is labeled as the speculative leg.
  ctx->trace = metrics::TraceContext{st->request_id, st->attempt, true};
  ctx->gpu_index = static_cast<int>(gpu);
  if (metrics::Tracer* const tracer = options_.executor.tracer;
      tracer != nullptr && st->request_id != 0) {
    tracer->AddFlow(metrics::Tracer::FlowPhase::kStep, "request", "req-",
                    st->request_id, ctx->job, env_.Now(), "hedge");
  }
  auto token = std::make_shared<graph::CancelToken>();
  ctx->cancel = token.get();
  st->token = token.get();
  st->ctx = ctx;
  st->gpu = gpu;
  placer_->OnRequestStart(gpu);
  RegisterInFlight(gpu, token.get(), ctx);
  co_await executor(gpu).RunOnce(*ctx, g);
  token->finished = true;
  ctx->cancel = nullptr;
  placer_->OnRequestEnd(gpu);
  DeregisterInFlight(gpu, token.get());
  st->token = nullptr;
  st->won = !token->cancelled;
  st->done = true;
  st->cv.NotifyAll();
}

graph::JobContext* Experiment::ClientContext(std::size_t client_index,
                                             std::size_t gpu) {
  const auto it = client_gpu_ctx_.find({client_index, gpu});
  return it == client_gpu_ctx_.end() ? nullptr : it->second;
}

void Experiment::RegisterInFlight(std::size_t gpu, graph::CancelToken* token,
                                  graph::JobContext* ctx) {
  inflight_[gpu].push_back(InFlight{token, ctx});
}

void Experiment::DeregisterInFlight(std::size_t gpu,
                                    const graph::CancelToken* token) {
  auto& v = inflight_[gpu];
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i].token == token) {
      v.erase(v.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

void Experiment::BindExecutors() {
  for (std::size_t i = 0; i < gpus_.size(); ++i) executor(i);  // bind hooks
}

void Experiment::SetupFailover(std::size_t expected_clients) {
  // Stand up the failover subsystem before traffic or faults: listeners
  // must be attached when the first device signal fires.
  std::vector<gpusim::Gpu*> gpu_ptrs;
  gpu_ptrs.reserve(gpus_.size());
  for (const auto& g : gpus_) gpu_ptrs.push_back(g.get());
  HealthObserver* observer = this;  // private base: convert in-class
  health_ = std::make_unique<HealthMonitor>(
      env_, std::move(gpu_ptrs), options_.failover.health,
      options_.failover.recovery, observer, &counters_,
      options_.executor.tracer);
  placer_ = std::make_unique<Placer>(env_, *health_, gpus_.size());
  inflight_.resize(gpus_.size());
  health_->Start();
  remaining_clients_ = expected_clients;
}

void Experiment::ArmFaults() {
  // Arm the fault schedule before any client starts, so an event at t=0
  // still lands. All faults fire on the virtual clock: a run with the same
  // seed and plan is bit-for-bit reproducible.
  if (options_.faults.events().empty()) return;
  std::vector<gpusim::Gpu*> gpu_ptrs;
  gpu_ptrs.reserve(gpus_.size());
  for (const auto& g : gpus_) gpu_ptrs.push_back(g.get());
  injector_ = std::make_unique<fault::FaultInjector>(
      env_, std::move(gpu_ptrs), options_.faults, &counters_,
      options_.executor.tracer);
  injector_->Arm();
}

void Experiment::StartServing() {
  if (ran_) {
    throw std::logic_error(
        "StartServing: experiment already ran (Run and StartServing are "
        "exclusive)");
  }
  ran_ = true;
  serving_ = true;
  BindExecutors();
  // Tenants arrive one at a time, so the last-client-out bookkeeping that
  // stops the probe loops does not apply; the cluster calls StopServing.
  if (options_.failover.enabled) SetupFailover(0);
  ArmFaults();
}

std::size_t Experiment::AddTenant(const ClientSpec& spec) {
  if (!serving_) throw std::logic_error("AddTenant before StartServing");
  const std::size_t index = tenants_.size();
  const std::size_t gpu_index = index % gpus_.size();  // round-robin placement
  const graph::Graph& g = LoadModel(spec.model, gpu_index);
  const models::ModelSpec& mspec = models::GetModel(spec.model);

  auto ctx = std::make_unique<graph::JobContext>();
  ctx->job = next_job_id_++;
  ctx->client_name = spec.model + "#" + std::to_string(index);
  ctx->model_key = models::ModelKey(spec.model, spec.batch);
  ctx->batch = spec.batch;
  ctx->weight = spec.weight;
  ctx->priority = spec.priority;
  ctx->min_share = spec.min_share;
  ctx->gpu_index = static_cast<int>(gpu_index);
  for (int s = 0; s < options_.streams_per_job; ++s) {
    ctx->streams.push_back(gpus_[gpu_index]->CreateStream());
  }
  gpus_[gpu_index]->AllocateMemory(ctx->job, mspec.ClientMemoryMb(spec.batch));

  if (placer_ != nullptr) {
    placer_->MarkReady(gpu_index, spec.model);
    client_gpu_ctx_[{index, gpu_index}] = ctx.get();
  }
  tenants_.push_back(Tenant{spec, ctx.get(), &g, gpu_index});
  contexts_.push_back(std::move(ctx));
  return index;
}

sim::Task Experiment::ServeTenantRequest(std::size_t tenant, sim::Rng& rng,
                                         sim::TimePoint arrival,
                                         RequestStatus& status,
                                         metrics::PhaseAccount* phases) {
  Tenant& t = tenants_.at(tenant);
  // The tenant index doubles as the client index for client_gpu_ctx_ keys,
  // so failover replicas are shared across all of the tenant's requests.
  co_await RunRequest(tenant, *t.ctx, *t.graph, t.spec, rng, arrival,
                      t.primary_gpu, status, phases);
}

void Experiment::RetireTenant(std::size_t tenant) {
  Tenant& t = tenants_.at(tenant);
  if (health_ != nullptr) {
    for (const auto& [key, c] : client_gpu_ctx_) {
      if (key.first == tenant) gpus_[key.second]->RetireJob(c->job);
    }
  } else {
    gpus_[t.primary_gpu]->RetireJob(t.ctx->job);
  }
}

void Experiment::StopServing() {
  if (health_ != nullptr) health_->Stop();
}

void Experiment::ShutdownPool() { pool_->Shutdown(); }

bool Experiment::AnyUsableDevice() const {
  for (std::size_t g = 0; g < gpus_.size(); ++g) {
    if (health_ != nullptr ? health_->Usable(g) : !gpus_[g]->down()) {
      return true;
    }
  }
  return false;
}

std::vector<ClientResult> Experiment::Run(
    const std::vector<ClientSpec>& clients) {
  if (ran_) throw std::logic_error("Experiment::Run may only be called once");
  ran_ = true;
  BindExecutors();
  if (options_.failover.enabled) SetupFailover(clients.size());
  ArmFaults();

  std::vector<ClientResult> results(clients.size());
  std::vector<sim::Process> procs;
  procs.reserve(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const ClientSpec& spec = clients[i];
    const std::size_t gpu_index = i % gpus_.size();  // round-robin placement
    const graph::Graph& g = LoadModel(spec.model, gpu_index);
    const models::ModelSpec& mspec = models::GetModel(spec.model);

    auto ctx = std::make_unique<graph::JobContext>();
    ctx->job = next_job_id_++;
    ctx->client_name = spec.model + "#" + std::to_string(i);
    ctx->model_key = models::ModelKey(spec.model, spec.batch);
    ctx->batch = spec.batch;
    ctx->weight = spec.weight;
    ctx->priority = spec.priority;
    ctx->min_share = spec.min_share;
    ctx->gpu_index = static_cast<int>(gpu_index);
    for (int s = 0; s < options_.streams_per_job; ++s) {
      ctx->streams.push_back(gpus_[gpu_index]->CreateStream());
    }
    // Per-client activation memory for in-flight batches (§4.3).
    gpus_[gpu_index]->AllocateMemory(ctx->job, mspec.ClientMemoryMb(spec.batch));

    ClientResult& out = results[i];
    out.name = ctx->client_name;
    out.job = ctx->job;
    out.model = spec.model;
    out.batch = spec.batch;
    out.gpu_index = gpu_index;

    if (options_.failover.enabled) {
      // The home replica exists from setup: record it so Route prefers
      // devices that already hold the model, and index the context for
      // per-device cancellation and failover routing.
      placer_->MarkReady(gpu_index, spec.model);
      client_gpu_ctx_[{i, gpu_index}] = ctx.get();
    }

    procs.push_back(env_.Spawn(
        ClientProc(i, *ctx, g, spec, options_.seed * 7919 + i, out),
        ctx->client_name));
    contexts_.push_back(std::move(ctx));
  }

  clients_running_ = clients.size();
  if (options_.observability.registry != nullptr &&
      options_.observability.sample_interval > sim::Duration::Zero() &&
      !clients.empty()) {
    env_.Spawn(SamplerProc(), "metrics-sampler");
  }

  env_.Run();

  sim::Duration makespan;
  bool stalled = false;
  for (std::size_t i = 0; i < results.size(); ++i) {
    makespan = std::max(makespan, results[i].finish_time);
    // A client whose process never finished is stalled. (Completed batches
    // alone no longer prove liveness: rejected or timed-out requests finish
    // their iteration without completing a batch.)
    if (!procs[i].done()) stalled = true;
  }
  makespan_ = makespan;
  if (stalled) {
    throw ServerStalled(
        "workload stalled: thread pool exhausted by suspended gangs (" +
        std::to_string(pool_->num_threads()) + " threads, " +
        std::to_string(clients.size()) + " clients)");
  }
  pool_->Shutdown();
  env_.Run();  // drain exiting workers
  if (options_.observability.registry != nullptr) {
    // Final bridge: every ServingCounters field lands in the registry even
    // when the sampler is off (or between its last tick and the finish).
    counters_.ExportTo(*options_.observability.registry);
  }
  return results;
}

sim::Task Experiment::SamplerProc() {
  metrics::MetricRegistry& reg = *options_.observability.registry;
  const sim::Duration interval = options_.observability.sample_interval;

  // Resolve series handles up front; the tick loop below is then lookup-
  // free. Breakers appear lazily (a model's first replica creates one), so
  // their handle cache is rebuilt only when the breaker count changes.
  struct DeviceSeries {
    metrics::MetricRegistry::TimeSeries* utilization;
    metrics::MetricRegistry::TimeSeries* pending;
    metrics::MetricRegistry::TimeSeries* health;
    metrics::MetricRegistry::TimeSeries* outstanding;
    sim::Duration busy_prev;
  };
  std::vector<DeviceSeries> dev(gpus_.size());
  for (std::size_t i = 0; i < gpus_.size(); ++i) {
    const metrics::Labels labels{{"gpu", std::to_string(i)}};
    dev[i].utilization = &reg.GetSeries("olympian_gpu_utilization", labels);
    dev[i].pending = &reg.GetSeries("olympian_gpu_pending_kernels", labels);
    dev[i].health = &reg.GetSeries("olympian_device_health", labels);
    dev[i].outstanding = &reg.GetSeries("olympian_placer_outstanding", labels);
    dev[i].busy_prev = gpus_[i]->TotalBusy();
  }
  metrics::MetricRegistry::TimeSeries& pool_occupancy =
      reg.GetSeries("olympian_pool_occupancy");
  std::vector<std::pair<const CircuitBreaker*,
                        metrics::MetricRegistry::TimeSeries*>>
      breaker_series;

  sim::TimePoint window_start = env_.Now();
  while (clients_running_ > 0) {
    co_await env_.Delay(interval);
    const sim::TimePoint now = env_.Now();
    const sim::Duration window = now - window_start;
    for (std::size_t i = 0; i < gpus_.size(); ++i) {
      const sim::Duration busy = gpus_[i]->TotalBusy();
      dev[i].utilization->Sample(
          now, window > sim::Duration::Zero()
                   ? (busy - dev[i].busy_prev).Ratio(window)
                   : 0.0);
      dev[i].busy_prev = busy;
      dev[i].pending->Sample(now,
                             static_cast<double>(gpus_[i]->pending_kernels()));
      dev[i].health->Sample(
          now, health_ == nullptr
                   ? 0.0
                   : static_cast<double>(
                         static_cast<int>(health_->health(i))));
      dev[i].outstanding->Sample(
          now, placer_ == nullptr
                   ? 0.0
                   : static_cast<double>(placer_->outstanding(i)));
      if (hooks_[i] != nullptr) hooks_[i]->OnSample(reg, now, i);
    }
    pool_occupancy.Sample(
        now, static_cast<double>(pool_->busy_workers() + pool_->queued()) /
                 static_cast<double>(pool_->num_threads()));
    if (breaker_series.size() != breakers_.size()) {
      breaker_series.clear();
      breaker_series.reserve(breakers_.size());
      for (const auto& [model, breaker] : breakers_) {
        breaker_series.emplace_back(
            breaker.get(),
            &reg.GetSeries("olympian_breaker_state", {{"model", model}}));
      }
    }
    for (const auto& [breaker, series] : breaker_series) {
      series->Sample(
          now, static_cast<double>(static_cast<int>(breaker->state())));
    }
    window_start = now;
  }
}

double Experiment::utilization() const {
  if (makespan_ <= sim::Duration::Zero()) return 0.0;
  sim::Duration busy;
  for (const auto& g : gpus_) busy += g->TotalBusy();
  return busy.Ratio(makespan_) / static_cast<double>(gpus_.size());
}

}  // namespace olympian::serving
