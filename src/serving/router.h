#pragma once

#include <cstdint>
#include <vector>

#include "metrics/counters.h"
#include "metrics/incident.h"
#include "metrics/registry.h"
#include "serving/health_score.h"
#include "sim/environment.h"
#include "sim/task.h"
#include "sim/time.h"

namespace olympian::serving {

// The router's view of one server. Mirrors DeviceHealth one level up: the
// router cannot see inside a server, so its states are inferred from probe
// heartbeats and per-request outcomes rather than device signals.
enum class ServerHealth : std::uint8_t {
  kHealthy = 0,
  kDegraded,    // >= 1 consecutive error, below the down threshold
  kDown,        // consecutive errors reached the threshold
  kRecovering,  // probes succeeding again after kDown; not yet routed
};

const char* ToString(ServerHealth h);

struct RouterOptions {
  // Health-aware routing with cross-server failover. Off = static pin: every
  // request of a client goes to its home server no matter what (the
  // no-failover baseline the cluster bench compares against).
  bool failover = true;
  // Heartbeat cadence per server (zero disables probing; the health view
  // then moves only on request outcomes).
  sim::Duration probe_interval = sim::Duration::Millis(20);
  // Consecutive errors (probe or request) before a server is marked down.
  int down_after_errors = 3;
  // Consecutive probe successes a down server must string together before
  // it is routed again (the recovering warm-up window).
  int recovery_successes = 2;
  // One-way router <-> server network latency.
  sim::Duration net_delay = sim::Duration::Micros(200);
  // How long the router waits on an unanswered probe or a request lost to a
  // partition before declaring the attempt failed.
  sim::Duration probe_timeout = sim::Duration::Millis(10);
  // Client retry budget for genuine failures (failover re-admissions are
  // free, mirroring the device-failover contract).
  int max_retries = 2;
  sim::Duration retry_backoff = sim::Duration::Millis(5);
  // Gray-failure detection: continuous health scoring from probe RTTs.
  // When enabled, hysteresis thresholds own the healthy <-> degraded
  // transitions (the legacy one-error degrade and success-clears edges are
  // skipped; down/recovering semantics are unchanged) and Route() switches
  // to score-weighted selection. Off by default: zero behavior change.
  HealthScoreOptions score;
  // Service time of one probe on a fully-healthy server. Charged by the
  // cluster transport ONLY when scoring is enabled, divided by the
  // server's current capacity — this is what makes a fractional-capacity
  // fault visible in the probe RTT the score is learned from.
  sim::Duration probe_service = sim::Duration::Millis(1);
  // Brownout admission control: when the mean routable-server score drops
  // below `enter_below`, the router sheds the lowest remaining priority
  // class (one level per move, hysteresis + dwell between moves) and
  // restores classes in reverse order once capacity is back above
  // `exit_above`. The top class is never shed. Requires scoring.
  struct BrownoutOptions {
    bool enabled = false;
    double enter_below = 0.60;
    double exit_above = 0.80;
    // Minimum virtual time between shed-level moves (anti-flap dwell).
    sim::Duration min_dwell = sim::Duration::Millis(50);
  };
  BrownoutOptions brownout;
};

// One edge of the router's per-server health state machine.
struct ServerTransition {
  std::size_t server = 0;
  ServerHealth from = ServerHealth::kHealthy;
  ServerHealth to = ServerHealth::kHealthy;
  sim::TimePoint at;
};

// How the router reaches servers. Implemented by the Cluster, which knows
// about partitions, crashes, and hangs; the Router only sees outcomes.
class RouterTransport {
 public:
  virtual ~RouterTransport() = default;
  // One heartbeat round-trip to `server`. Sets `ok` and returns after the
  // RTT (success) or the probe timeout (failure).
  virtual sim::Task Probe(std::size_t server, bool& ok) = 0;
  // Does the server currently have any device accepting traffic? (The
  // router-side fast path mirroring requests_rejected_no_device.)
  virtual bool HasUsableDevice(std::size_t server) const = 0;
};

// Front-end request router: sticky-then-least-loaded placement over N
// servers with a probe-driven health view. Single-writer state on the
// deterministic event loop — no locking, fully reproducible.
class Router {
 public:
  static constexpr std::size_t kNoServer = static_cast<std::size_t>(-1);

  Router(sim::Environment& env, RouterTransport& transport,
         std::size_t num_servers, RouterOptions options,
         metrics::RouterCounters* counters,
         metrics::MetricRegistry* registry = nullptr);

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // Spawn the per-server probe loops (no-op when probing is disabled).
  void Start();
  // Stop the probe loops so the shared event queue can drain.
  void Stop();

  // Pick a server for one request whose home is `home`. Sticky: the home
  // wins while routable. Otherwise least-loaded among routable servers
  // (healthy before degraded, then fewest outstanding, then lowest index).
  // With scoring enabled the binary rank becomes weighted selection: the
  // home stays sticky only while score-healthy, and fallback maximizes
  // score / (1 + outstanding) over routable servers (ties -> lower index).
  // With failover off, always the home. kNoServer when nothing is routable.
  std::size_t Route(std::size_t home);

  // Outstanding accounting + health feedback from the request path.
  void OnRequestStart(std::size_t server);
  void OnRequestEnd(std::size_t server);
  void OnRequestSuccess(std::size_t server);
  void OnRequestError(std::size_t server);

  bool Routable(std::size_t server) const;
  ServerHealth health(std::size_t server) const;
  std::uint64_t outstanding(std::size_t server) const;
  std::size_t num_servers() const { return servers_.size(); }

  // --- gray-failure detection & response --------------------------------

  bool scoring() const { return options_.score.enabled; }
  // Continuous health score of `server` (1.0 when scoring is disabled).
  double score(std::size_t server) const;

  // Called by the fault applier when a gray fault opens on `server`; the
  // virtual time from here to the next healthy->degraded/down edge is the
  // detection latency. No-op when scoring is disabled.
  void NoteFaultOnset(std::size_t server);
  const std::vector<sim::Duration>& detection_latencies() const {
    return detection_latencies_;
  }

  // Brownout admission control. `priorities` is the set of client priority
  // classes in the run; shedding drops the *lowest* class first, restores
  // in reverse order. Higher priority value = more important.
  void SetPriorityClasses(std::vector<int> priorities);
  // Should a request of `priority` be rejected at admission right now?
  bool BrownoutSheds(int priority) const;
  int brownout_level() const { return brownout_level_; }

  // Incident-timeline feed: health edges become detection/recovery marks,
  // brownout level increases become global mitigations. May be null.
  void set_incident_log(metrics::IncidentLog* log) { incident_log_ = log; }

  // Every health edge, in order. The recovering->healthy edge count is the
  // number of completed router-visible recoveries.
  const std::vector<ServerTransition>& transitions() const {
    return transitions_;
  }
  // One entry per completed recovery: down-mark to readmission (the
  // router-side MTTR, which includes detection latency).
  const std::vector<sim::Duration>& mttr_incidents() const {
    return mttr_incidents_;
  }

 private:
  struct ServerState {
    ServerHealth health = ServerHealth::kHealthy;
    int errors = 0;     // consecutive
    int successes = 0;  // consecutive probe successes while recovering
    std::uint64_t outstanding = 0;
    sim::TimePoint down_since;
  };

  sim::Task ProbeLoop(std::size_t server);
  void OnResult(std::size_t server, bool ok);
  void Transition(std::size_t server, ServerHealth to);
  std::size_t RouteScored(std::size_t home) const;
  void UpdateScoreHealth(std::size_t server);
  void UpdateBrownout();

  sim::Environment& env_;
  RouterTransport& transport_;
  RouterOptions options_;
  metrics::RouterCounters* counters_;
  metrics::MetricRegistry* registry_;
  metrics::IncidentLog* incident_log_ = nullptr;
  std::vector<ServerState> servers_;
  std::vector<ServerTransition> transitions_;
  std::vector<sim::Duration> mttr_incidents_;
  // Gray-failure state (all empty/zero when scoring is disabled).
  std::vector<HealthScore> scores_;           // per server
  std::vector<sim::TimePoint> fault_onset_;   // valid iff onset_armed_[s]
  std::vector<bool> onset_armed_;
  std::vector<sim::Duration> detection_latencies_;
  std::vector<int> priority_classes_;         // ascending, unique
  int brownout_level_ = 0;  // classes currently shed (0 = none)
  sim::TimePoint last_brownout_move_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace olympian::serving
