#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "metrics/stats.h"
#include "serving/server.h"
#include "sim/sync.h"

namespace olympian::serving {

// TF-Serving's request batcher (paper §2.1): individual inference requests
// for one model are coalesced into batches before graph execution, because
// GPUs process one batch of N inputs far faster than N separate inputs.
//
// A batch closes when either `max allowed size` items are waiting or the
// oldest item has waited `batch_timeout`. Batches are padded up to the next
// size in `allowed_batch_sizes` (as in TF-Serving), so the Olympian
// scheduler only needs offline profiles for those sizes — and profiles for
// intermediate sizes can come from the paper's Figure-20 linear regression.
//
// All requests of a batch complete together when its graph run finishes.
// The batcher is one job (one gang, one token) from the scheduler's view.
//
// Usage (manual-workload mode):
//   Batcher batcher(exp, "resnet-152", {});
//   exp.env().Spawn([&]() -> sim::Task {      // any number of producers
//     co_await batcher.Infer();               // one item
//   }());
//   ... spawn producers ...
//   batcher.Close();                          // after producers finish
//   exp.FinishManualRun();
class Batcher {
 public:
  struct Options {
    std::vector<int> allowed_batch_sizes = {8, 16, 32, 64};  // ascending
    sim::Duration batch_timeout = sim::Duration::Millis(10);
    std::size_t gpu_index = 0;
  };

  Batcher(Experiment& experiment, std::string model, Options options);

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  // Awaitable: submit one item and resume when its batch's run completes.
  // Returns (via out-param) the request latency. Must not be called after
  // Close(). When `pa` is set, the time from submission to batch execution
  // is charged to kBatcherWait and the run itself is split into
  // kGpuCompute / kGpuQueue, preserving the phase-sum identity.
  sim::Task Infer(sim::Duration* latency = nullptr,
                  metrics::PhaseAccount* pa = nullptr);

  // No further Infer calls will come; the dispatcher drains pending
  // requests (flushing a final partial batch) and exits.
  void Close();

  // --- statistics ---------------------------------------------------------
  std::uint64_t batches_executed() const { return batches_executed_; }
  std::uint64_t items_served() const { return items_served_; }
  double MeanBatchOccupancy() const;  // items / padded size, averaged
  const metrics::Series& batch_sizes() const { return batch_sizes_; }

 private:
  struct Request {
    sim::TimePoint arrival;
    bool done = false;
    metrics::PhaseAccount* pa = nullptr;
  };

  sim::Task Dispatcher();
  static void AlarmTrampoline(void* ctx, std::uint64_t epoch);
  int PadToAllowed(int items) const;

  Experiment& exp_;
  sim::Environment& env_;
  std::string model_;
  Options options_;
  graph::JobContext& ctx_;
  const graph::Graph& graph_;

  std::deque<Request*> pending_;
  sim::CondVar wake_;      // arrivals, alarms, close
  sim::CondVar done_cv_;   // batch completions
  std::uint64_t alarm_epoch_ = 0;
  bool closed_ = false;

  std::uint64_t batches_executed_ = 0;
  std::uint64_t items_served_ = 0;
  double occupancy_sum_ = 0.0;
  metrics::Series batch_sizes_;
};

}  // namespace olympian::serving
