#include "serving/cluster.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

namespace olympian::serving {

int ClusterClientResult::CountStatus(RequestStatus s) const {
  int n = 0;
  for (const RequestStatus st : request_status) n += (st == s) ? 1 : 0;
  return n;
}

namespace {

// Validates a sharded configuration and returns the effective shard count
// (clamped to the server count; 0 means 1). Throws std::invalid_argument
// for the two remaining unpartitionable options; every other cluster
// configuration — alloc faults, server-side tracer, server-side registry —
// now shards (per-server private accumulators, merged hub-side).
std::size_t ValidatedShards(const ClusterOptions& o) {
  std::size_t shards = o.shards == 0 ? 1 : o.shards;
  shards = std::min(shards, o.num_servers);
  if (shards <= 1) return 1;
  if (o.router.net_delay <= sim::Duration::Zero()) {
    throw std::invalid_argument(
        "ClusterOptions::shards > 1 requires RouterOptions::net_delay > 0: "
        "the network delay is the engine lookahead that makes conservative "
        "windows non-empty; set router.net_delay to the modeled "
        "router<->server hop latency, or run with shards = 1");
  }
  for (const fault::FaultEvent& e : o.server.faults.events()) {
    if (e.kind == fault::FaultKind::kCapacityFault) {
      throw std::invalid_argument(
          "ClusterOptions::shards > 1 cannot run device-level "
          "FaultKind::kCapacityFault events: the router probe reads device "
          "capacity hub-side, which is only exact for capacity written "
          "during hub instants; schedule the equivalent server-wide window "
          "with ServerFaultPlan::CapacityLoss (hub-applied), or run with "
          "shards = 1");
    }
  }
  return shards;
}

// Server -> shard lane map (one lane per server). kStatic is s % shards;
// kAdaptive runs deterministic greedy bin-packing on the measured weights:
// heaviest server first (ties by index), each onto the least-loaded shard
// (ties to the lowest shard index). Uniform weights reproduce kStatic
// exactly — round k of the greedy pass sees all shard loads equal and fills
// shards 0..S-1 in index order — so switching the policy on never perturbs
// a trajectory, only the packing of lanes onto threads.
std::vector<std::size_t> LaneMap(const ClusterOptions& o, std::size_t shards) {
  const std::size_t n = o.num_servers;
  std::vector<std::size_t> lanes(n);
  if (o.assignment == ShardAssignment::kAdaptive &&
      !o.server_weights.empty() && o.server_weights.size() != n) {
    throw std::invalid_argument(
        "ClusterOptions::server_weights holds " +
        std::to_string(o.server_weights.size()) + " weights for " +
        std::to_string(n) +
        " servers; give one measured weight per server (e.g. "
        "engine().shard_events() from a profile pass), or leave it empty "
        "for uniform weights");
  }
  if (o.assignment == ShardAssignment::kStatic || shards <= 1 ||
      o.server_weights.empty()) {
    for (std::size_t s = 0; s < n; ++s) lanes[s] = s % shards;
    return lanes;
  }
  std::vector<std::size_t> order(n);
  for (std::size_t s = 0; s < n; ++s) order[s] = s;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return o.server_weights[a] > o.server_weights[b];
                   });
  std::vector<double> load(shards, 0.0);
  for (const std::size_t s : order) {
    std::size_t best = 0;
    for (std::size_t k = 1; k < shards; ++k) {
      if (load[k] < load[best]) best = k;
    }
    lanes[s] = best;
    load[best] += o.server_weights[s];
  }
  return lanes;
}

}  // namespace

Cluster::Cluster(ClusterOptions options)
    : options_(std::move(options)),
      engine_(ValidatedShards(options_), options_.router.net_delay,
              LaneMap(options_, ValidatedShards(options_))),
      env_(engine_.hub()),
      tracer_(options_.server.executor.tracer) {
  if (options_.num_servers < 1) {
    throw std::invalid_argument("num_servers must be >= 1");
  }
  // Per-server private observability accumulators. Each server records into
  // its own buffer on its own shard (no cross-thread writes); FinishRun
  // merges them into the user-provided destinations in canonical order at
  // every shard count, so exports are byte-identical across shard counts.
  if (tracer_ != nullptr) {
    hub_tracer_ = std::make_unique<metrics::Tracer>(tracer_->max_events());
    server_tracers_.reserve(options_.num_servers);
    for (std::size_t s = 0; s < options_.num_servers; ++s) {
      server_tracers_.push_back(
          std::make_unique<metrics::Tracer>(tracer_->max_events()));
    }
  }
  if (options_.server.observability.registry != nullptr) {
    server_registries_.reserve(options_.num_servers);
    for (std::size_t s = 0; s < options_.num_servers; ++s) {
      server_registries_.push_back(
          std::make_unique<metrics::MetricRegistry>());
    }
  }
  // Derive decorrelated per-server seeds from the master seed; the
  // per-client request streams use a separate derivation (see Run), so
  // adding servers does not perturb client randomness ordering.
  sim::Rng master(options_.seed);
  servers_.reserve(options_.num_servers);
  for (std::size_t s = 0; s < options_.num_servers; ++s) {
    ServerOptions so = options_.server;
    so.seed = master.NextU64();
    // The cross-server contract needs the in-server placer: a server whose
    // devices are all down must reject promptly (kRejected + no usable
    // device), which is the signal the router converts into failover.
    so.failover.enabled = true;
    if (tracer_ != nullptr) so.executor.tracer = server_tracers_[s].get();
    if (!server_registries_.empty()) {
      so.observability.registry = server_registries_[s].get();
    }
    servers_.push_back(std::make_unique<Experiment>(
        std::move(so), engine_.lane_env(s)));
  }
  RouterTransport& transport = *this;  // private base: convert in-class
  router_ = std::make_unique<Router>(env_, transport, servers_.size(),
                                     options_.router, &counters_,
                                     options_.registry);
  router_->set_incident_log(options_.incidents);
  // Handing the cluster an incident log is the opt-in; feeding calls are
  // no-ops on a disabled log, so this keeps call sites unconditional.
  if (options_.incidents != nullptr) options_.incidents->Enable();
  crashed_until_.resize(servers_.size());
  hung_until_.resize(servers_.size());
  part_to_until_.resize(servers_.size());
  part_from_until_.resize(servers_.size());
  jitter_until_.resize(servers_.size());
  jitter_factor_.assign(servers_.size(), 1.0);
  tenant_of_.resize(servers_.size());
  tenant_instantiations_.resize(servers_.size());
}

Cluster::~Cluster() = default;

sim::Task Cluster::Probe(std::size_t server, bool& ok) {
  // Partitions drop the probe (or its reply); a crashed or hung process
  // never answers. All evaluated at send time: deterministic and cheap.
  const sim::TimePoint sent = env_.Now();
  const bool dropped =
      sent < part_to_until_[server] || sent < part_from_until_[server];
  const bool unresponsive =
      sent < crashed_until_[server] || sent < hung_until_[server];
  if (dropped || unresponsive) {
    co_await env_.Delay(options_.router.probe_timeout);
    ok = false;
  } else {
    if (options_.router.net_delay > sim::Duration::Zero()) {
      // Jitter stretches the round trip (factor 1.0 outside any window —
      // an exact multiply, so jitter-free plans are bit-identical).
      co_await env_.Delay(options_.router.net_delay * 2.0 *
                          JitterFactor(server));
    }
    if (options_.router.score.enabled) {
      // The probe exercises the serving path, so its service time runs at
      // the device's current speed: a fractional-capacity fault inflates
      // the measured RTT, which is the only way the router can see it.
      // Only charged under scoring — legacy probes are network-only.
      co_await env_.Delay(options_.router.probe_service *
                          (1.0 / ServerCapacity(server)));
    }
    ok = true;
  }
}

double Cluster::ServerCapacity(std::size_t server) {
  double cap = 1.0;
  Experiment& srv = *servers_[server];
  for (std::size_t g = 0; g < srv.num_gpus(); ++g) {
    cap = std::min(cap, srv.gpu(g).CapacityAt(env_.Now()));
  }
  return cap;
}

bool Cluster::HasUsableDevice(std::size_t server) const {
  return env_.Now() >= crashed_until_[server] &&
         servers_[server]->AnyUsableDevice();
}

void Cluster::ArmServerFaults() {
  const auto& events = options_.faults.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].server >= servers_.size()) {
      throw std::out_of_range("ServerFaultPlan targets server " +
                              std::to_string(events[i].server) + " but only " +
                              std::to_string(servers_.size()) + " exist");
    }
    if (events[i].at < env_.Now()) continue;  // already in the past
    env_.ScheduleCallbackAt(events[i].at, &Cluster::FaultTrampoline, this, i);
  }
}

void Cluster::FaultTrampoline(void* ctx, std::uint64_t index) {
  auto* self = static_cast<Cluster*>(ctx);
  self->ApplyServerFault(self->options_.faults.events()[index]);
}

void Cluster::ApplyServerFault(const fault::ServerFaultEvent& e) {
  const sim::TimePoint now = env_.Now();
  const sim::TimePoint until = now + e.duration;
  Experiment& srv = *servers_.at(e.server);
  if (options_.incidents != nullptr) {
    options_.incidents->Inject(static_cast<int>(e.server),
                               fault::ToString(e.kind), now, e.duration);
  }
  switch (e.kind) {
    case fault::ServerFaultKind::kCrash:
      // Process crash: every device resets at once and submissions fail
      // fast for the outage; restart hands each device to the server's own
      // recovery pipeline (re-init, reload, warm-up).
      crashed_until_[e.server] = std::max(crashed_until_[e.server], until);
      for (std::size_t g = 0; g < srv.num_gpus(); ++g) {
        srv.gpu(g).Reset(e.duration);
      }
      ++counters_.server_crashes;
      break;
    case fault::ServerFaultKind::kHang:
      // Stop-the-world: the process stays up but stops answering; every
      // device wedges and router probes time out until it clears.
      hung_until_[e.server] = std::max(hung_until_[e.server], until);
      for (std::size_t g = 0; g < srv.num_gpus(); ++g) {
        srv.gpu(g).Hang(e.duration);
      }
      ++counters_.server_hangs;
      break;
    case fault::ServerFaultKind::kPartition:
      if (e.direction != fault::PartitionDirection::kFromServer) {
        part_to_until_[e.server] = std::max(part_to_until_[e.server], until);
      }
      if (e.direction != fault::PartitionDirection::kToServer) {
        part_from_until_[e.server] =
            std::max(part_from_until_[e.server], until);
      }
      ++counters_.partitions;
      break;
    case fault::ServerFaultKind::kCapacityLoss:
      // Gray failure: every device throttles but the server stays up and
      // keeps answering probes. Nothing is push-announced — the router can
      // only detect this through measured probe RTT (scoring).
      for (std::size_t g = 0; g < srv.num_gpus(); ++g) {
        srv.gpu(g).ThrottleCapacity(e.capacity, e.duration);
      }
      ++counters_.capacity_losses;
      router_->NoteFaultOnset(e.server);
      break;
    case fault::ServerFaultKind::kJitter:
      // Overlapping jitter windows keep the worst factor and the furthest
      // end point.
      jitter_factor_[e.server] = now < jitter_until_[e.server]
                                     ? std::max(jitter_factor_[e.server],
                                                e.factor)
                                     : e.factor;
      jitter_until_[e.server] = std::max(jitter_until_[e.server], until);
      ++counters_.jitter_windows;
      router_->NoteFaultOnset(e.server);
      break;
  }
  if (hub_tracer_ != nullptr && !hub_tracer_->full()) {
    // Hub-side spans go into the hub's private buffer; FinishRun merges it
    // ahead of the per-server buffers so the export order is canonical.
    const char* name =
        hub_tracer_->Intern(std::string(fault::ToString(e.kind)) + "@server" +
                            std::to_string(e.server));
    hub_tracer_->AddSpan("fault", name, metrics::Tracer::kFaultTrack, now,
                         until);
  }
}

void Cluster::StopAll() {
  for (auto& s : servers_) s->StopServing();
  router_->Stop();
}

sim::Task Cluster::EnsureTenant(std::size_t server, std::size_t client,
                                const ClientSpec& spec, std::size_t& tenant,
                                bool& ok) {
  // Runs on the server's environment — in sharded mode that is the server's
  // shard (only its worker thread touches this server's tenant map during
  // windows); unsharded it is the hub itself, so timing and behaviour are
  // byte-identical to the pre-sharding implementation.
  sim::Environment& senv = servers_[server]->env();
  std::map<std::size_t, std::size_t>& tenants = tenant_of_[server];
  ok = true;
  if (const auto it = tenants.find(client); it != tenants.end()) {
    tenant = it->second;
    co_return;
  }
  // First arrival of this client on a non-home server: parameters stream
  // over PCIe and the tenant warms up before taking traffic — the same
  // pricing as in-server lazy replica instantiation.
  const models::ModelSpec& mspec = models::GetModel(spec.model);
  const fault::RecoveryOptions& rec = options_.server.failover.recovery;
  sim::Duration cost = rec.warmup;
  if (rec.pcie_gbps > 0.0) {
    cost += sim::Duration::Seconds(static_cast<double>(mspec.params_mb) /
                                   1024.0 / rec.pcie_gbps);
  }
  if (cost > sim::Duration::Zero()) co_await senv.Delay(cost);
  // A concurrent leg of the same client may have finished the setup while
  // we streamed; re-check before instantiating.
  if (const auto it = tenants.find(client); it != tenants.end()) {
    tenant = it->second;
    co_return;
  }
  try {
    tenant = servers_[server]->AddTenant(spec);
  } catch (const gpusim::TransientAllocFailure&) {
    ok = false;
    co_return;
  }
  tenants[client] = tenant;
  ++tenant_instantiations_[server];
}

sim::Task Cluster::DispatchRequest(std::size_t client, const ClientSpec& spec,
                                   std::size_t home, sim::Rng& rng,
                                   sim::TimePoint arrival,
                                   RequestStatus& status,
                                   metrics::PhaseAccount* pa,
                                   std::size_t* served) {
  const RouterOptions& ro = options_.router;
  metrics::IncidentLog* const ilog = options_.incidents;
  // Brownout admission control: a shed class is rejected at the front door
  // before any routing or network cost (load it cannot carry is exactly
  // what the cluster is shedding).
  if (router_->BrownoutSheds(spec.priority)) {
    ++counters_.requests_shed_brownout;
    status = RequestStatus::kRejected;
    if (pa != nullptr) pa->Charge(metrics::Phase::kAdmission, env_.Now());
    co_await env_.Delay(ro.retry_backoff);
    if (pa != nullptr) pa->Charge(metrics::Phase::kBackoff, env_.Now());
    co_return;
  }
  // Tracks whether the leg about to start is a free failover re-admission;
  // its forward hop is then blamed on the failover, not on routine routing.
  bool failing_over = false;
  for (int attempt = 1;;) {
    const std::size_t s = router_->Route(home);
    if (s == Router::kNoServer) {
      // Nothing routable anywhere: terminate promptly as a rejection
      // instead of spinning (mirrors requests_rejected_no_device).
      ++counters_.requests_rejected_no_server;
      status = RequestStatus::kRejected;
      if (pa != nullptr) pa->Charge(metrics::Phase::kAdmission, env_.Now());
      co_await env_.Delay(ro.retry_backoff);
      if (pa != nullptr) pa->Charge(metrics::Phase::kBackoff, env_.Now());
      co_return;
    }
    if (served != nullptr) *served = s;
    router_->OnRequestStart(s);

    // Forward leg. A partition active at send time drops the request; the
    // router only learns from the missing ack after the probe timeout.
    // Jitter stretches the hop (factor 1.0 outside any window — an exact
    // multiply, so jitter-free plans are bit-identical).
    const bool lost_to = env_.Now() < part_to_until_[s];
    if (ro.net_delay > sim::Duration::Zero()) {
      co_await env_.Delay(ro.net_delay * JitterFactor(s));
    }
    if (pa != nullptr) {
      pa->Charge(failing_over ? metrics::Phase::kFailoverReadmit
                              : metrics::Phase::kRouterHop,
                 env_.Now());
    }
    failing_over = false;
    if (lost_to) {
      ++counters_.requests_lost_to_server;
      co_await env_.Delay(ro.probe_timeout);
      // Waiting out the missing ack is network blame, like the hop itself.
      if (pa != nullptr) pa->Charge(metrics::Phase::kRouterHop, env_.Now());
      router_->OnRequestEnd(s);
      router_->OnRequestError(s);
      if (ro.failover) {
        // Loss is the network's fault, not the request's: re-admit without
        // spending the retry budget (the cross-server failover contract).
        ++counters_.requests_failed_over;
        failing_over = true;
        if (ilog != nullptr) {
          ilog->Mitigation(static_cast<int>(s), "failover", env_.Now());
        }
        continue;
      }
      if (attempt > ro.max_retries) {
        status = RequestStatus::kFailed;
        ++counters_.requests_failed;
        co_return;
      }
      ++counters_.retries;
      ++attempt;
      co_await env_.Delay(ro.retry_backoff);
      if (pa != nullptr) pa->Charge(metrics::Phase::kBackoff, env_.Now());
      continue;
    }

    // Admission: make sure this client has a tenant slot on the server.
    std::size_t tenant = 0;
    bool tenant_ok = true;
    co_await EnsureTenant(s, client, spec, tenant, tenant_ok);
    // First arrival on a non-home server streams parameters and warms up.
    if (pa != nullptr) pa->Charge(metrics::Phase::kReload, env_.Now());
    if (!tenant_ok) {
      // The failure reply still crosses the network back to the router —
      // the same response leg a served request pays. (Also what makes the
      // sharded path's return hop cost-symmetric: there the coroutine is
      // physically on the server's shard and must hop home regardless.)
      if (ro.net_delay > sim::Duration::Zero()) {
        co_await env_.Delay(ro.net_delay * JitterFactor(s));
      }
      if (pa != nullptr) pa->Charge(metrics::Phase::kResponseHop, env_.Now());
      router_->OnRequestEnd(s);
      router_->OnRequestError(s);
      if (attempt > ro.max_retries) {
        status = RequestStatus::kFailed;
        ++counters_.requests_failed;
        co_return;
      }
      ++counters_.retries;
      ++attempt;
      co_await env_.Delay(ro.retry_backoff);
      if (pa != nullptr) pa->Charge(metrics::Phase::kBackoff, env_.Now());
      continue;
    }

    // Serve through the full in-server pipeline (admission control, breaker,
    // device placement, retries, device failover). The original arrival
    // anchors the deadline end-to-end across server hops.
    RequestStatus leg = RequestStatus::kOk;
    co_await servers_[s]->ServeTenantRequest(tenant, rng, arrival, leg, pa);

    // Response leg (jitter evaluated at the send instant, like lost_from).
    const bool lost_from = env_.Now() < part_from_until_[s];
    if (ro.net_delay > sim::Duration::Zero()) {
      co_await env_.Delay(ro.net_delay * JitterFactor(s));
    }
    if (pa != nullptr) pa->Charge(metrics::Phase::kResponseHop, env_.Now());
    router_->OnRequestEnd(s);
    if (lost_from) {
      ++counters_.responses_lost_from_server;
      router_->OnRequestError(s);
      if (ro.failover) {
        // At-least-once: the work happened but the answer is gone, so the
        // request re-executes on a routable server, budget untouched.
        ++counters_.requests_failed_over;
        failing_over = true;
        if (ilog != nullptr) {
          ilog->Mitigation(static_cast<int>(s), "failover", env_.Now());
        }
        continue;
      }
      if (attempt > ro.max_retries) {
        status = RequestStatus::kFailed;
        ++counters_.requests_failed;
        co_return;
      }
      ++counters_.retries;
      ++attempt;
      co_await env_.Delay(ro.retry_backoff);
      if (pa != nullptr) pa->Charge(metrics::Phase::kBackoff, env_.Now());
      continue;
    }

    if (leg == RequestStatus::kOk || leg == RequestStatus::kFailedRetried) {
      router_->OnRequestSuccess(s);
      ++counters_.requests_ok;
      status = (attempt == 1 && leg == RequestStatus::kOk)
                   ? RequestStatus::kOk
                   : RequestStatus::kFailedRetried;
      co_return;
    }
    if (leg == RequestStatus::kTimedOut) {
      status = RequestStatus::kTimedOut;
      ++counters_.requests_timed_out;
      co_return;
    }
    // leg is kRejected or kFailed.
    if (leg == RequestStatus::kRejected && !HasUsableDevice(s)) {
      // The server lost every device (crash): that is a server failure,
      // not a request failure — fail over for free.
      router_->OnRequestError(s);
      if (ro.failover) {
        ++counters_.requests_failed_over;
        failing_over = true;
        if (ilog != nullptr) {
          ilog->Mitigation(static_cast<int>(s), "failover", env_.Now());
        }
        continue;
      }
    } else if (leg == RequestStatus::kFailed) {
      router_->OnRequestError(s);
    }
    if (attempt > ro.max_retries) {
      status = leg;
      ++counters_.requests_failed;
      co_return;
    }
    ++counters_.retries;
    ++attempt;
    co_await env_.Delay(ro.retry_backoff);
    if (pa != nullptr) pa->Charge(metrics::Phase::kBackoff, env_.Now());
  }
}

sim::Task Cluster::ShardedDispatch(std::size_t client, const ClientSpec& spec,
                                   std::size_t home, sim::Rng& rng,
                                   sim::TimePoint arrival,
                                   RequestStatus& status,
                                   metrics::PhaseAccount* pa,
                                   std::size_t* served) {
  // Mirrors DispatchRequest decision-for-decision and delay-for-delay; the
  // only difference is WHERE the serve section executes: the forward and
  // response network legs become cross-shard hops, so the in-server
  // pipeline runs on the server's shard inside parallel windows while the
  // hub bookkeeping stays on the hub. Route, counters, and router state are
  // only ever touched hub-side. Phase charges land at the same virtual
  // instants as the unsharded path's (the account itself is frame-local, so
  // charging from the server's shard is race-free), keeping the blame table
  // byte-identical across shard counts.
  const RouterOptions& ro = options_.router;
  metrics::IncidentLog* const ilog = options_.incidents;
  if (router_->BrownoutSheds(spec.priority)) {
    ++counters_.requests_shed_brownout;
    status = RequestStatus::kRejected;
    if (pa != nullptr) pa->Charge(metrics::Phase::kAdmission, env_.Now());
    co_await env_.Delay(ro.retry_backoff);
    if (pa != nullptr) pa->Charge(metrics::Phase::kBackoff, env_.Now());
    co_return;
  }
  bool failing_over = false;
  for (int attempt = 1;;) {
    const std::size_t s = router_->Route(home);
    if (s == Router::kNoServer) {
      ++counters_.requests_rejected_no_server;
      status = RequestStatus::kRejected;
      if (pa != nullptr) pa->Charge(metrics::Phase::kAdmission, env_.Now());
      co_await env_.Delay(ro.retry_backoff);
      if (pa != nullptr) pa->Charge(metrics::Phase::kBackoff, env_.Now());
      co_return;
    }
    if (served != nullptr) *served = s;
    router_->OnRequestStart(s);

    // A partition active at send time drops the request on the wire: it
    // never reaches the server's shard, so the whole round — forward leg,
    // probe timeout, error bookkeeping — stays on the hub, with the same
    // virtual-time cost as the unsharded path. The jitter factor is
    // evaluated at the same send instant as the unsharded path; it is
    // >= 1, so a jittered hop never undercuts the engine lookahead.
    const bool lost_to = env_.Now() < part_to_until_[s];
    const double jitter_fwd = JitterFactor(s);
    if (lost_to) {
      co_await env_.Delay(ro.net_delay * jitter_fwd);
      if (pa != nullptr) {
        pa->Charge(failing_over ? metrics::Phase::kFailoverReadmit
                                : metrics::Phase::kRouterHop,
                   env_.Now());
      }
      failing_over = false;
      ++counters_.requests_lost_to_server;
      co_await env_.Delay(ro.probe_timeout);
      if (pa != nullptr) pa->Charge(metrics::Phase::kRouterHop, env_.Now());
      router_->OnRequestEnd(s);
      router_->OnRequestError(s);
      if (ro.failover) {
        ++counters_.requests_failed_over;
        failing_over = true;
        if (ilog != nullptr) {
          ilog->Mitigation(static_cast<int>(s), "failover", env_.Now());
        }
        continue;
      }
      if (attempt > ro.max_retries) {
        status = RequestStatus::kFailed;
        ++counters_.requests_failed;
        co_return;
      }
      ++counters_.retries;
      ++attempt;
      co_await env_.Delay(ro.retry_backoff);
      if (pa != nullptr) pa->Charge(metrics::Phase::kBackoff, env_.Now());
      continue;
    }

    // Forward leg: the request physically moves onto the server's shard
    // (lane s is server s, wherever the assignment packed it).
    co_await engine_.HopToShard(s, ro.net_delay * jitter_fwd);
    if (pa != nullptr) {
      pa->Charge(failing_over ? metrics::Phase::kFailoverReadmit
                              : metrics::Phase::kRouterHop,
                 servers_[s]->env().Now());
    }
    failing_over = false;

    std::size_t tenant = 0;
    bool tenant_ok = true;
    RequestStatus leg = RequestStatus::kOk;
    bool lost_from = false;
    double jitter_back = 1.0;
    std::exception_ptr err;
    try {
      co_await EnsureTenant(s, client, spec, tenant, tenant_ok);
      if (pa != nullptr) {
        pa->Charge(metrics::Phase::kReload, servers_[s]->env().Now());
      }
      if (tenant_ok) {
        co_await servers_[s]->ServeTenantRequest(tenant, rng, arrival, leg,
                                                 pa);
        // Read at the serve-completion instant on the server's clock,
        // exactly where the unsharded path evaluates it (before the
        // response leg). The window arrays are written only during hub
        // instants, so the read is race-free and temporally exact.
        lost_from = servers_[s]->env().Now() < part_from_until_[s];
      }
      // The response leg's jitter is evaluated at its send instant — after
      // a successful serve, or at the instant the tenant instantiation
      // failed (where the unsharded path charges the same factor).
      jitter_back = servers_[s]->env().Now() < jitter_until_[s]
                        ? jitter_factor_[s]
                        : 1.0;
    } catch (...) {
      // Carry server-side errors across the hop: rethrowing on the worker
      // would resume the client's continuation on the wrong thread.
      err = std::current_exception();
    }

    // Response leg: back onto the hub.
    co_await engine_.HopToHub(s, ro.net_delay * jitter_back);
    if (err != nullptr) std::rethrow_exception(err);
    if (pa != nullptr) pa->Charge(metrics::Phase::kResponseHop, env_.Now());

    if (!tenant_ok) {
      // Tenant instantiation failed (an alloc-fault window on the server):
      // the failure reply already paid the return hop above, so the hub
      // bookkeeping lands at the same instant as the unsharded path's.
      router_->OnRequestEnd(s);
      router_->OnRequestError(s);
      if (attempt > ro.max_retries) {
        status = RequestStatus::kFailed;
        ++counters_.requests_failed;
        co_return;
      }
      ++counters_.retries;
      ++attempt;
      co_await env_.Delay(ro.retry_backoff);
      if (pa != nullptr) pa->Charge(metrics::Phase::kBackoff, env_.Now());
      continue;
    }

    router_->OnRequestEnd(s);
    if (lost_from) {
      ++counters_.responses_lost_from_server;
      router_->OnRequestError(s);
      if (ro.failover) {
        ++counters_.requests_failed_over;
        failing_over = true;
        if (ilog != nullptr) {
          ilog->Mitigation(static_cast<int>(s), "failover", env_.Now());
        }
        continue;
      }
      if (attempt > ro.max_retries) {
        status = RequestStatus::kFailed;
        ++counters_.requests_failed;
        co_return;
      }
      ++counters_.retries;
      ++attempt;
      co_await env_.Delay(ro.retry_backoff);
      if (pa != nullptr) pa->Charge(metrics::Phase::kBackoff, env_.Now());
      continue;
    }

    if (leg == RequestStatus::kOk || leg == RequestStatus::kFailedRetried) {
      router_->OnRequestSuccess(s);
      ++counters_.requests_ok;
      status = (attempt == 1 && leg == RequestStatus::kOk)
                   ? RequestStatus::kOk
                   : RequestStatus::kFailedRetried;
      co_return;
    }
    if (leg == RequestStatus::kTimedOut) {
      status = RequestStatus::kTimedOut;
      ++counters_.requests_timed_out;
      co_return;
    }
    if (leg == RequestStatus::kRejected && !HasUsableDevice(s)) {
      router_->OnRequestError(s);
      if (ro.failover) {
        ++counters_.requests_failed_over;
        failing_over = true;
        if (ilog != nullptr) {
          ilog->Mitigation(static_cast<int>(s), "failover", env_.Now());
        }
        continue;
      }
    } else if (leg == RequestStatus::kFailed) {
      router_->OnRequestError(s);
    }
    if (attempt > ro.max_retries) {
      status = leg;
      ++counters_.requests_failed;
      co_return;
    }
    ++counters_.retries;
    ++attempt;
    co_await env_.Delay(ro.retry_backoff);
    if (pa != nullptr) pa->Charge(metrics::Phase::kBackoff, env_.Now());
  }
}

sim::Task Cluster::ClientProc(std::size_t client,
                              const ClusterClientSpec& spec,
                              std::uint64_t seed, ClusterClientResult& out) {
  sim::Rng rng(seed);
  ArrivalProcess arrivals(spec.arrivals);
  const bool legacy_open =
      spec.request.mean_interarrival > sim::Duration::Zero();
  metrics::MetricRegistry* const registry = options_.registry;
  metrics::MetricRegistry::Histogram* const latency_hist =
      registry == nullptr
          ? nullptr
          : &registry->GetHistogram("olympian_cluster_request_latency_ms",
                                    {{"model", spec.request.model}});
  sim::TimePoint arrival;  // request b's arrival instant (t=0 for b=0)
  for (int b = 0; b < spec.request.num_batches; ++b) {
    if (arrivals.open_loop()) {
      if (b > 0) arrival = arrivals.Next(rng);
      if (arrival > env_.Now()) co_await env_.Delay(arrival - env_.Now());
    } else if (legacy_open) {
      if (b > 0) {
        arrival = arrival + spec.request.mean_interarrival *
                                (-std::log(1.0 - rng.NextDouble()));
      }
      if (arrival > env_.Now()) co_await env_.Delay(arrival - env_.Now());
    } else {
      arrival = env_.Now();
    }
    RequestStatus status = RequestStatus::kOk;
    metrics::PhaseAccount account;
    metrics::PhaseAccount* pa = nullptr;
    std::size_t served = out.home_server;
    if (options_.phases != nullptr) {
      pa = &account;
      pa->Start(arrival);
      // An arrival that found its predecessor still in flight queued at the
      // front end; that wait is pre-routing time.
      pa->Charge(metrics::Phase::kRouterQueue, env_.Now());
    }
    if (engine_.sharded()) {
      co_await ShardedDispatch(client, spec.request, out.home_server, rng,
                               arrival, status, pa, &served);
    } else {
      co_await DispatchRequest(client, spec.request, out.home_server, rng,
                               arrival, status, pa, &served);
    }
    out.request_latency_ms.push_back((env_.Now() - arrival).millis());
    out.request_status.push_back(status);
    if (latency_hist != nullptr) {
      latency_hist->Observe(out.request_latency_ms.back());
    }
    const bool ok = status == RequestStatus::kOk ||
                    status == RequestStatus::kFailedRetried;
    if (pa != nullptr) {
      options_.phases->Record(static_cast<int>(served), spec.request.model,
                              account, ok, env_.Now() - arrival);
    }
    if (options_.incidents != nullptr) {
      options_.incidents->RequestOutcome(static_cast<int>(served), env_.Now(),
                                         ok);
    }
    if (ok) ++out.requests_completed;
  }
  out.finish_time = env_.Now() - sim::TimePoint();
  // Fold this client's meters into each server it ever ran on. Runs during
  // a hub instant (workers parked), so touching shard-resident servers is
  // safe; ascending server order matches the old flat-map iteration.
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    if (const auto it = tenant_of_[s].find(client); it != tenant_of_[s].end()) {
      servers_[s]->RetireTenant(it->second);
    }
  }
  if (--clients_running_ == 0) StopAll();
}

std::vector<ClusterClientResult> Cluster::Run(
    const std::vector<ClusterClientSpec>& clients) {
  if (ran_) throw std::logic_error("Cluster::Run may only be called once");
  ran_ = true;
  {
    std::vector<int> priorities;
    priorities.reserve(clients.size());
    for (const ClusterClientSpec& c : clients) {
      priorities.push_back(c.request.priority);
    }
    router_->SetPriorityClasses(std::move(priorities));
  }
  for (auto& s : servers_) s->StartServing();
  router_->Start();
  ArmServerFaults();

  std::vector<ClusterClientResult> results(clients.size());
  std::vector<sim::Process> procs;
  procs.reserve(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const std::size_t home = i % servers_.size();
    // Home tenants are provisioned before traffic, like Run()'s per-client
    // setup loop (no PCIe charge: the cluster was racked with them loaded).
    const std::size_t tenant = servers_[home]->AddTenant(clients[i].request);
    tenant_of_[home][i] = tenant;

    ClusterClientResult& out = results[i];
    out.name = clients[i].request.model + "#" + std::to_string(i);
    out.model = clients[i].request.model;
    out.home_server = home;
    procs.push_back(env_.Spawn(
        ClientProc(i, clients[i], options_.seed * 104729 + i, out),
        "cluster/" + out.name));
  }
  clients_running_ = clients.size();

  engine_.Run();

  sim::Duration makespan;
  bool stalled = false;
  for (std::size_t i = 0; i < results.size(); ++i) {
    makespan = std::max(makespan, results[i].finish_time);
    if (!procs[i].done()) stalled = true;
  }
  makespan_ = makespan;
  if (stalled) {
    throw ServerStalled("cluster workload stalled: unfinished clients with a "
                        "drained event queue");
  }
  for (auto& s : servers_) s->ShutdownPool();
  engine_.Run();  // drain exiting workers
  FinishRun();
  return results;
}

sim::Task Cluster::StreamProc(std::size_t stream,
                              const ClusterStreamSpec& spec,
                              std::uint64_t seed, ClusterStreamResult& out) {
  sim::Rng rng(seed);
  AggregateArrivalProcess arrivals(spec.arrivals, spec.modeled_clients);
  for (int r = 0; r < spec.num_requests; ++r) {
    const sim::TimePoint arrival = arrivals.Next(rng);
    if (arrival > env_.Now()) co_await env_.Delay(arrival - env_.Now());
    // Each arrival belongs to one of the stream's modeled clients; the
    // drawn id picks the home server, then the request runs as its own
    // process with a forked rng — open loop, so generation never blocks on
    // serving and in-flight memory tracks concurrency, not population.
    const std::uint64_t cid = arrivals.NextClient(rng);
    const std::size_t home = static_cast<std::size_t>(cid % servers_.size());
    ++outstanding_requests_;
    env_.Spawn(StreamRequestProc(stream, spec, home, rng.Fork(), arrival, r,
                                 out));
  }
  if (--streams_running_ == 0 && outstanding_requests_ == 0) StopAll();
}

sim::Task Cluster::StreamRequestProc(std::size_t stream,
                                     const ClusterStreamSpec& spec,
                                     std::size_t home, sim::Rng rng,
                                     sim::TimePoint arrival, int index,
                                     ClusterStreamResult& out) {
  RequestStatus status = RequestStatus::kOk;
  metrics::PhaseAccount account;
  metrics::PhaseAccount* pa = nullptr;
  std::size_t served = home;
  if (options_.phases != nullptr) {
    pa = &account;
    pa->Start(arrival);
    pa->Charge(metrics::Phase::kRouterQueue, env_.Now());
  }
  if (engine_.sharded()) {
    co_await ShardedDispatch(stream, spec.request, home, rng, arrival, status,
                             pa, &served);
  } else {
    co_await DispatchRequest(stream, spec.request, home, rng, arrival, status,
                             pa, &served);
  }
  // Slots are indexed by arrival order, so the result layout is identical
  // no matter which order responses land in.
  out.request_latency_ms[static_cast<std::size_t>(index)] =
      (env_.Now() - arrival).millis();
  out.request_status[static_cast<std::size_t>(index)] = status;
  const bool ok = status == RequestStatus::kOk ||
                  status == RequestStatus::kFailedRetried;
  if (pa != nullptr) {
    options_.phases->Record(static_cast<int>(served), spec.request.model,
                            account, ok, env_.Now() - arrival);
  }
  if (options_.incidents != nullptr) {
    options_.incidents->RequestOutcome(static_cast<int>(served), env_.Now(),
                                       ok);
  }
  if (ok) ++out.requests_completed;
  const sim::Duration finished = env_.Now() - sim::TimePoint();
  out.finish_time = std::max(out.finish_time, finished);
  if (--outstanding_requests_ == 0 && streams_running_ == 0) StopAll();
}

std::vector<ClusterStreamResult> Cluster::RunStreams(
    const std::vector<ClusterStreamSpec>& streams) {
  if (ran_) throw std::logic_error("Cluster::RunStreams may only be called once");
  ran_ = true;
  for (const ClusterStreamSpec& st : streams) {
    if (st.arrivals.kind == ArrivalSpec::Kind::kClosedLoop) {
      throw std::invalid_argument(
          "aggregate streams are open-loop: give each stream an arrival "
          "generator");
    }
  }
  {
    std::vector<int> priorities;
    priorities.reserve(streams.size());
    for (const ClusterStreamSpec& st : streams) {
      priorities.push_back(st.request.priority);
    }
    router_->SetPriorityClasses(std::move(priorities));
  }
  for (auto& s : servers_) s->StartServing();
  router_->Start();
  ArmServerFaults();

  std::vector<ClusterStreamResult> results(streams.size());
  std::vector<sim::Process> procs;
  procs.reserve(streams.size());
  for (std::size_t i = 0; i < streams.size(); ++i) {
    // The model is racked on every server up front: any drawn client id can
    // dispatch anywhere without a first-arrival PCIe charge, and EnsureTenant
    // degenerates to a map hit on every path.
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      tenant_of_[s][i] = servers_[s]->AddTenant(streams[i].request);
    }
    ClusterStreamResult& out = results[i];
    out.name = streams[i].request.model + "/stream" + std::to_string(i);
    out.model = streams[i].request.model;
    out.request_latency_ms.assign(
        static_cast<std::size_t>(streams[i].num_requests), 0.0);
    out.request_status.assign(
        static_cast<std::size_t>(streams[i].num_requests), RequestStatus::kOk);
    procs.push_back(env_.Spawn(
        StreamProc(i, streams[i], options_.seed * 15485863 + i, out),
        "cluster/" + out.name));
  }
  streams_running_ = streams.size();
  outstanding_requests_ = 0;

  engine_.Run();

  sim::Duration makespan;
  bool stalled = outstanding_requests_ != 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    makespan = std::max(makespan, results[i].finish_time);
    if (!procs[i].done()) stalled = true;
  }
  makespan_ = makespan;
  if (stalled) {
    throw ServerStalled("cluster stream workload stalled: in-flight requests "
                        "with a drained event queue");
  }
  // Fold stream meters into their servers (every stream is racked on every
  // server), then drain the pools.
  for (std::size_t s = 0; s < servers_.size(); ++s) {
    for (const auto& [stream, tenant] : tenant_of_[s]) {
      (void)stream;
      servers_[s]->RetireTenant(tenant);
    }
  }
  for (auto& s : servers_) s->ShutdownPool();
  engine_.Run();  // drain exiting workers
  FinishRun();
  return results;
}

void Cluster::FinishRun() {
  for (const std::uint64_t n : tenant_instantiations_) {
    counters_.tenant_instantiations += n;
  }
  if (options_.incidents != nullptr) options_.incidents->Finalize();
  if (options_.engine_registry != nullptr) {
    ExportEngineIntrospection(*options_.engine_registry);
  }
  if (options_.registry != nullptr) {
    counters_.ExportTo(*options_.registry);
  }
  // Fold the private per-server accumulators into the user destinations in
  // canonical order — hub first, then servers 0..N-1. The same merge runs
  // at every shard count (including 1), so the exported bytes are a
  // function of the trajectory alone, never of the partitioning.
  if (tracer_ != nullptr) {
    tracer_->MergeFrom(*hub_tracer_);
    for (const auto& t : server_tracers_) tracer_->MergeFrom(*t);
  }
  if (metrics::MetricRegistry* const user_registry =
          options_.server.observability.registry;
      user_registry != nullptr) {
    for (std::size_t s = 0; s < servers_.size(); ++s) {
      // The server's ServingCounters struct is its shard-private metrics
      // delta; bridge it into the private registry, then label every
      // instrument with its server before it lands in the shared export.
      servers_[s]->counters().ExportTo(*server_registries_[s]);
      user_registry->MergeFrom(*server_registries_[s],
                               {{"server", std::to_string(s)}});
    }
  }
}

void Cluster::ExportEngineIntrospection(metrics::MetricRegistry& reg) const {
  reg.GetCounter("olympian_engine_sync_windows").Set(engine_.sync_windows());
  reg.GetCounter("olympian_engine_hub_instants").Set(engine_.hub_instants());
  reg.GetCounter("olympian_engine_boundary_events")
      .Set(engine_.boundary_events());
  reg.GetCounter("olympian_engine_worker_wakeups")
      .Set(engine_.worker_wakeups());
  reg.GetCounter("olympian_engine_introspection_samples_dropped")
      .Set(engine_.introspection_samples_dropped());
  for (std::size_t k = 0; k < engine_.shards(); ++k) {
    const metrics::Labels labels = {{"shard", std::to_string(k)}};
    reg.GetCounter("olympian_engine_shard_events", labels)
        .Set(engine_.shard_events(k));
    reg.GetCounter("olympian_engine_shard_busy_wall_ns", labels)
        .Set(static_cast<std::uint64_t>(engine_.shard_busy_wall_ns(k)));
    reg.GetCounter("olympian_engine_shard_barrier_wait_wall_ns", labels)
        .Set(static_cast<std::uint64_t>(
            engine_.shard_barrier_wait_wall_ns(k)));
    reg.GetCounter("olympian_engine_shard_windows_run", labels)
        .Set(engine_.shard_windows_run(k));
  }
  for (std::size_t l = 0; l < engine_.lane_boundary_events().size(); ++l) {
    reg.GetCounter("olympian_engine_lane_boundary_events",
                   {{"lane", std::to_string(l)}})
        .Set(engine_.lane_boundary_events()[l]);
  }
  // Window-length and boundary-traffic time series, indexed by virtual
  // time. An unbounded lone-worker window exports as -1.
  metrics::MetricRegistry::TimeSeries& window_len =
      reg.GetSeries("olympian_engine_window_len_ns");
  metrics::MetricRegistry::TimeSeries& window_width =
      reg.GetSeries("olympian_engine_window_participants");
  for (const sim::ShardedEngine::WindowSample& w : engine_.window_samples()) {
    const sim::TimePoint at =
        sim::TimePoint() + sim::Duration::Nanos(w.at_ns);
    window_len.Sample(at, static_cast<double>(w.len_ns));
    window_width.Sample(at, static_cast<double>(w.participants));
  }
  metrics::MetricRegistry::TimeSeries& boundary_batch =
      reg.GetSeries("olympian_engine_boundary_batch_events");
  for (const sim::ShardedEngine::BoundarySample& b :
       engine_.boundary_samples()) {
    boundary_batch.Sample(sim::TimePoint() + sim::Duration::Nanos(b.at_ns),
                          static_cast<double>(b.events));
  }
}

}  // namespace olympian::serving
