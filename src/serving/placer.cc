#include "serving/placer.h"

#include <stdexcept>

namespace olympian::serving {

Placer::Placer(sim::Environment& env, const HealthMonitor& health,
               std::size_t num_gpus)
    : env_(env), health_(health), outstanding_(num_gpus, 0) {
  if (num_gpus == 0) throw std::invalid_argument("Placer needs >= 1 gpu");
  if (health.num_devices() != num_gpus) {
    throw std::invalid_argument("Placer/HealthMonitor device count mismatch");
  }
}

std::size_t Placer::Route(const std::string& model, std::size_t primary,
                          std::size_t exclude) const {
  if (health_.scoring()) return RouteScored(model, primary, exclude);
  // Sticky primary: while the home device serves, nothing moves.
  if (primary != exclude && primary < outstanding_.size() &&
      health_.Usable(primary)) {
    return primary;
  }
  std::size_t best = kNoDevice;
  bool best_healthy = false;
  bool best_ready = false;
  std::uint64_t best_load = 0;
  for (std::size_t i = 0; i < outstanding_.size(); ++i) {
    if (i == exclude || !health_.Usable(i)) continue;
    const bool healthy = health_.health(i) == DeviceHealth::kHealthy;
    const bool ready = replica_state(i, model) == ReplicaState::kReady;
    const std::uint64_t load = outstanding_[i];
    // Lexicographic preference: healthy > degraded, replica already present
    // > must instantiate, fewer outstanding, lower index (iteration order).
    bool better;
    if (best == kNoDevice) {
      better = true;
    } else if (healthy != best_healthy) {
      better = healthy;
    } else if (ready != best_ready) {
      better = ready;
    } else {
      better = load < best_load;
    }
    if (better) {
      best = i;
      best_healthy = healthy;
      best_ready = ready;
      best_load = load;
    }
  }
  return best;
}

std::size_t Placer::RouteScored(const std::string& model, std::size_t primary,
                                std::size_t exclude) const {
  // The primary stays sticky only while score-healthy: a measurably slow
  // home no longer pins its clients (this is the score-weighted analogue of
  // the binary healthy-before-degraded rank).
  if (primary != exclude && primary < outstanding_.size() &&
      health_.Usable(primary) &&
      health_.health(primary) == DeviceHealth::kHealthy) {
    return primary;
  }
  std::size_t best = kNoDevice;
  double best_weight = -1.0;
  bool best_ready = false;
  for (std::size_t i = 0; i < outstanding_.size(); ++i) {
    if (i == exclude || !health_.Usable(i)) continue;
    const double weight = health_.score(i) /
                          (1.0 + static_cast<double>(outstanding_[i]));
    const bool ready = replica_state(i, model) == ReplicaState::kReady;
    // Strict > keeps ties on the lowest index; at equal weight a device
    // that already holds the replica beats one that must instantiate.
    const bool better =
        weight > best_weight || (weight == best_weight && ready && !best_ready);
    if (better) {
      best = i;
      best_weight = weight;
      best_ready = ready;
    }
  }
  return best;
}

Placer::Replica& Placer::Slot(std::size_t gpu, const std::string& model) {
  return replicas_[{gpu, model}];
}

const Placer::Replica* Placer::FindSlot(std::size_t gpu,
                                        const std::string& model) const {
  const auto it = replicas_.find({gpu, model});
  return it == replicas_.end() ? nullptr : &it->second;
}

Placer::ReplicaState Placer::replica_state(std::size_t gpu,
                                           const std::string& model) const {
  const Replica* r = FindSlot(gpu, model);
  return r == nullptr ? ReplicaState::kAbsent : r->state;
}

void Placer::MarkReady(std::size_t gpu, const std::string& model) {
  Slot(gpu, model).state = ReplicaState::kReady;
}

bool Placer::BeginLoad(std::size_t gpu, const std::string& model) {
  Replica& r = Slot(gpu, model);
  if (r.state != ReplicaState::kAbsent) return false;
  r.state = ReplicaState::kLoading;
  return true;
}

void Placer::FinishLoad(std::size_t gpu, const std::string& model) {
  Replica& r = Slot(gpu, model);
  if (r.state != ReplicaState::kLoading) {
    throw std::logic_error("FinishLoad without BeginLoad");
  }
  r.state = ReplicaState::kReady;
  ++replicas_loaded_;
  if (r.cv) r.cv->NotifyAll();
}

void Placer::AbortLoad(std::size_t gpu, const std::string& model) {
  Replica& r = Slot(gpu, model);
  if (r.state != ReplicaState::kLoading) {
    throw std::logic_error("AbortLoad without BeginLoad");
  }
  r.state = ReplicaState::kAbsent;
  if (r.cv) r.cv->NotifyAll();
}

sim::Task Placer::AwaitReady(std::size_t gpu, const std::string& model) {
  Replica& r = Slot(gpu, model);
  while (r.state == ReplicaState::kLoading) {
    if (!r.cv) r.cv = std::make_unique<sim::CondVar>(env_);
    co_await r.cv->Wait();
  }
}

}  // namespace olympian::serving
