#include "serving/workload_spec.h"

#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

namespace olympian::serving {

namespace {

[[noreturn]] void Fail(int line, const std::string& what) {
  throw std::invalid_argument("workload spec line " + std::to_string(line) +
                              ": " + what);
}

// Parses "key=value" into the matching ClientSpec field.
void ApplyClientAttr(ClientSpec& c, const std::string& attr, int line) {
  const auto eq = attr.find('=');
  if (eq == std::string::npos) Fail(line, "expected key=value, got " + attr);
  const std::string key = attr.substr(0, eq);
  const std::string value = attr.substr(eq + 1);
  try {
    if (key == "batch") {
      c.batch = std::stoi(value);
    } else if (key == "n") {
      c.num_batches = std::stoi(value);
    } else if (key == "weight") {
      c.weight = std::stoi(value);
    } else if (key == "priority") {
      c.priority = std::stoi(value);
    } else if (key == "min-share") {
      c.min_share = std::stod(value);
    } else if (key == "interarrival-ms") {
      c.mean_interarrival = sim::Duration::Millis(std::stoll(value));
    } else {
      Fail(line, "unknown client attribute '" + key + "'");
    }
  } catch (const std::invalid_argument&) {
    Fail(line, "bad value for '" + key + "': " + value);
  }
}

}  // namespace

ServerOptions WorkloadSpec::ToServerOptions() const {
  ServerOptions opts;
  opts.seed = seed;
  opts.num_gpus = num_gpus;
  opts.pool_threads = pool_threads;
  return opts;
}

WorkloadSpec WorkloadSpec::Parse(std::istream& is) {
  WorkloadSpec spec;
  std::string raw;
  int line = 0;
  while (std::getline(is, raw)) {
    ++line;
    const auto hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    std::istringstream ls(raw);
    std::string key;
    if (!(ls >> key)) continue;  // blank/comment line
    if (key == "seed") {
      if (!(ls >> spec.seed)) Fail(line, "seed needs an integer");
    } else if (key == "gpus") {
      if (!(ls >> spec.num_gpus) || spec.num_gpus < 1) {
        Fail(line, "gpus needs a positive integer");
      }
    } else if (key == "pool-threads") {
      if (!(ls >> spec.pool_threads)) Fail(line, "pool-threads needs an int");
    } else if (key == "policy") {
      if (!(ls >> spec.policy)) Fail(line, "policy needs a name");
    } else if (key == "quantum-us") {
      std::int64_t us;
      if (!(ls >> us) || us <= 0) Fail(line, "quantum-us needs a positive int");
      spec.quantum = sim::Duration::Micros(us);
    } else if (key == "client") {
      ClientSpec c;
      if (!(ls >> c.model)) Fail(line, "client needs a model name");
      std::string attr;
      while (ls >> attr) ApplyClientAttr(c, attr, line);
      spec.clients.push_back(std::move(c));
    } else {
      Fail(line, "unknown directive '" + key + "'");
    }
  }
  if (spec.clients.empty()) {
    throw std::invalid_argument("workload spec has no clients");
  }
  return spec;
}

WorkloadSpec WorkloadSpec::ParseString(const std::string& text) {
  std::istringstream is(text);
  return Parse(is);
}

WorkloadSpec WorkloadSpec::LoadFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open workload spec " + path);
  return Parse(is);
}

}  // namespace olympian::serving
