#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.h"
#include "sim/time.h"

namespace olympian::serving {

// Open-loop arrival generators on the virtual clock.
//
// The paper's workload is closed-loop (each request issued when the previous
// response lands); availability numbers under faults are only meaningful
// open-loop, where demand keeps arriving while a server is down. These
// generators produce deterministic arrival sequences from an Rng stream:
// homogeneous Poisson, piecewise-constant rate traces (diurnal curves), and
// a two-state Markov-modulated Poisson process for bursty traffic.
struct ArrivalSpec {
  enum class Kind : std::uint8_t {
    // No generator: the client is closed-loop (legacy behaviour).
    kClosedLoop,
    // Homogeneous Poisson arrivals at `rate_rps`.
    kPoisson,
    // Non-homogeneous Poisson: `rate_rps` scaled by `rate_trace`, each
    // multiplier holding for `phase` and the trace cycling (so a 24-entry
    // trace with phase = 1h is a diurnal curve).
    kTrace,
    // Two-state MMPP: Poisson at `mmpp_rate_low` / `mmpp_rate_high` rps,
    // with exponentially distributed dwell times in each state.
    kMmpp,
  };

  Kind kind = Kind::kClosedLoop;
  double rate_rps = 0.0;
  std::vector<double> rate_trace;
  sim::Duration phase = sim::Duration::Seconds(1.0);
  double mmpp_rate_low = 0.0;
  double mmpp_rate_high = 0.0;
  sim::Duration mmpp_dwell_low = sim::Duration::Seconds(1.0);
  sim::Duration mmpp_dwell_high = sim::Duration::Seconds(1.0);
};

const char* ToString(ArrivalSpec::Kind k);

// Stateful generator: each Next() advances an internal clock and returns
// the next arrival instant (monotonically non-decreasing). Deterministic
// given the Rng stream — draws exactly one exponential variate per arrival
// for the rate-varying kinds, plus dwell draws when MMPP states flip, so
// identical seeds give identical arrival sequences.
class ArrivalProcess {
 public:
  explicit ArrivalProcess(ArrivalSpec spec);

  bool open_loop() const { return spec_.kind != ArrivalSpec::Kind::kClosedLoop; }

  // Next arrival instant after the previous one (first call: after t=0).
  sim::TimePoint Next(sim::Rng& rng);

 private:
  // Rate in effect at `t` for the piecewise-constant kinds.
  double TraceRateAt(sim::TimePoint t) const;

  ArrivalSpec spec_;
  sim::TimePoint now_;  // last returned arrival
  // MMPP state machine.
  bool mmpp_high_ = false;
  sim::TimePoint mmpp_switch_at_;  // next state flip (lazily drawn)
  bool mmpp_armed_ = false;
};

// One arrival process standing in for a whole population of clients.
//
// Per-client generators cost one process and one generator per client — at
// a million modeled clients that is the binding memory/startup cost of a
// cluster experiment. A superposition of independent Poisson processes is
// itself Poisson at the summed rate, so an aggregate stream replaces the
// population with ONE generator at the population rate plus one uniform
// client-id draw per arrival (which client this arrival belongs to). Memory
// is O(1) in the population; determinism is preserved: exactly two Rng
// draws per arrival (interarrival + id) in a fixed order.
class AggregateArrivalProcess {
 public:
  AggregateArrivalProcess(ArrivalSpec spec, std::uint64_t modeled_clients);

  std::uint64_t modeled_clients() const { return modeled_clients_; }

  // Next arrival instant of the aggregate stream (monotone non-decreasing).
  sim::TimePoint Next(sim::Rng& rng) { return base_.Next(rng); }

  // The modeled client this arrival belongs to: uniform in
  // [0, modeled_clients). Call exactly once per Next() for reproducibility.
  std::uint64_t NextClient(sim::Rng& rng);

 private:
  ArrivalProcess base_;
  std::uint64_t modeled_clients_;
};

}  // namespace olympian::serving
