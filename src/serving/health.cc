#include "serving/health.h"

#include <stdexcept>
#include <string>
#include <utility>

namespace olympian::serving {

namespace {

// Timer args carry (device, generation): the generation low bits are enough
// to disambiguate episodes (a device does not go down 2^32 times per run).
std::uint64_t Pack(std::size_t gpu, std::uint64_t generation) {
  return (static_cast<std::uint64_t>(gpu) << 32) | (generation & 0xffffffffu);
}
std::size_t UnpackGpu(std::uint64_t arg) {
  return static_cast<std::size_t>(arg >> 32);
}
std::uint64_t UnpackGeneration(std::uint64_t arg) { return arg & 0xffffffffu; }

}  // namespace

const char* ToString(DeviceHealth h) {
  switch (h) {
    case DeviceHealth::kHealthy:
      return "healthy";
    case DeviceHealth::kDegraded:
      return "degraded";
    case DeviceHealth::kDown:
      return "down";
    case DeviceHealth::kRecovering:
      return "recovering";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(sim::Environment& env,
                             std::vector<gpusim::Gpu*> gpus,
                             HealthMonitorOptions options,
                             fault::RecoveryOptions recovery,
                             HealthObserver* observer,
                             metrics::ServingCounters* counters,
                             metrics::Tracer* tracer)
    : env_(env),
      options_(options),
      recovery_(recovery),
      observer_(observer != nullptr ? observer : this),
      counters_(counters),
      tracer_(tracer) {
  if (gpus.empty()) throw std::invalid_argument("HealthMonitor needs >= 1 gpu");
  Validate(options_.score);
  devices_.reserve(gpus.size());
  for (std::size_t i = 0; i < gpus.size(); ++i) {
    auto d = std::make_unique<Device>();
    d->gpu = gpus[i];
    d->listener.monitor = this;
    d->listener.index = i;
    if (options_.score.enabled) d->score = HealthScore(options_.score);
    devices_.push_back(std::move(d));
  }
}

HealthMonitor::~HealthMonitor() {
  if (!started_) return;
  for (auto& d : devices_) d->gpu->SetHealthListener(nullptr);
}

void HealthMonitor::Start() {
  if (started_) throw std::logic_error("HealthMonitor::Start called twice");
  started_ = true;
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    Device& d = *devices_[i];
    d.probe_stream = d.gpu->CreateStream();
    d.gpu->SetHealthListener(&d.listener);
    d.state_since = env_.Now();
    if (options_.probe_interval > sim::Duration::Zero()) {
      env_.Spawn(ProbeLoop(i), "health/probe-gpu" + std::to_string(i));
    }
  }
}

void HealthMonitor::Stop() { stopped_ = true; }

DeviceHealth HealthMonitor::health(std::size_t gpu) const {
  return devices_.at(gpu)->health;
}

bool HealthMonitor::Usable(std::size_t gpu) const {
  const DeviceHealth h = devices_.at(gpu)->health;
  return h == DeviceHealth::kHealthy || h == DeviceHealth::kDegraded;
}

const HealthMonitor::DeviceStats& HealthMonitor::stats(std::size_t gpu) const {
  return devices_.at(gpu)->stats;
}

sim::Duration HealthMonitor::Mttr(std::size_t gpu) const {
  const DeviceStats& s = devices_.at(gpu)->stats;
  if (s.readmissions == 0) return sim::Duration::Zero();
  return s.mttr_total / static_cast<std::int64_t>(s.readmissions);
}

double HealthMonitor::score(std::size_t gpu) const {
  return scoring() ? devices_.at(gpu)->score.score() : 1.0;
}

double HealthMonitor::slowdown(std::size_t gpu) const {
  return scoring() ? devices_.at(gpu)->score.slowdown() : 1.0;
}

void HealthMonitor::UpdateScoreHealth(std::size_t gpu) {
  Device& d = *devices_[gpu];
  const double sc = d.score.score();
  if (!d.score_degraded) {
    if (sc < options_.score.degrade_below) {
      d.score_degraded = true;
      if (d.health == DeviceHealth::kHealthy) {
        Transition(gpu, DeviceHealth::kDegraded);
      }
    }
    return;
  }
  if (sc >= options_.score.recover_above) {
    d.score_degraded = false;
    // Only clear if nothing else holds the device impaired (a concurrent
    // hang or alloc-fault window keeps its own degraded claim).
    if (d.health == DeviceHealth::kDegraded && !d.gpu->hung() &&
        !d.gpu->alloc_fault_active()) {
      Transition(gpu, DeviceHealth::kHealthy);
    }
  }
}

void HealthMonitor::Transition(std::size_t gpu, DeviceHealth to) {
  Device& d = *devices_[gpu];
  if (d.health == to) return;
  const sim::TimePoint now = env_.Now();
  const sim::Duration in_state = now - d.state_since;
  if (d.health == DeviceHealth::kDegraded) {
    d.stats.time_degraded += in_state;
  } else if (d.health == DeviceHealth::kDown ||
             d.health == DeviceHealth::kRecovering) {
    d.stats.time_down += in_state;
  }
  transitions_.push_back(
      HealthTransition{.gpu = gpu, .from = d.health, .to = to, .at = now});
  d.health = to;
  d.state_since = now;
  if (counters_ != nullptr) ++counters_->health_transitions;
  if (tracer_ != nullptr && !tracer_->full()) {
    tracer_->AddInstant(
        "health",
        tracer_->Intern("gpu" + std::to_string(gpu) + ": " + ToString(to)),
        metrics::Tracer::kHealthTrack, now);
  }
}

void HealthMonitor::GoDown(std::size_t gpu, bool from_hang) {
  Device& d = *devices_[gpu];
  if (d.health == DeviceHealth::kDown ||
      d.health == DeviceHealth::kRecovering) {
    // Failed again before readmission: same outage episode, but a reset
    // forces the full recovery pipeline even if the episode began as a hang.
    ++d.generation;
    d.down_from_hang = d.down_from_hang && from_hang;
    Transition(gpu, DeviceHealth::kDown);
    return;
  }
  ++d.generation;
  ++d.hang_epoch;
  d.down_from_hang = from_hang;
  d.down_since = env_.Now();
  ++d.stats.down_events;
  if (counters_ != nullptr) ++counters_->device_down_events;
  Transition(gpu, DeviceHealth::kDown);
  // After the bookkeeping, so the observer sees a consistent kDown state
  // while it cancels the device's in-flight runs.
  observer_->OnDeviceDown(gpu);
}

void HealthMonitor::Readmit(std::size_t gpu) {
  Device& d = *devices_[gpu];
  const sim::TimePoint now = env_.Now();
  d.stats.mttr_total += now - d.down_since;
  d.stats.mttr_incidents.push_back(now - d.down_since);
  ++d.stats.readmissions;
  ++d.generation;  // invalidate leftover escalation timers from the episode
  if (options_.score.enabled) {
    // Re-learn the baseline: the error EWMA accumulated through the outage
    // (and a possibly different post-recovery "normal") must not be allowed
    // to instantly re-degrade a freshly readmitted device.
    d.score.Reset();
    d.score_degraded = false;
  }
  if (counters_ != nullptr) ++counters_->device_readmissions;
  if (tracer_ != nullptr && !tracer_->full()) {
    tracer_->AddSpan("health",
                     tracer_->Intern("gpu" + std::to_string(gpu) + " outage"),
                     metrics::Tracer::kHealthTrack, d.down_since, now);
  }
  Transition(gpu, DeviceHealth::kHealthy);
  observer_->OnDeviceReadmitted(gpu);
}

sim::Task HealthMonitor::RecoveryProc(std::size_t gpu,
                                      std::uint64_t generation,
                                      bool full_reinit) {
  Device& d = *devices_[gpu];
  if (full_reinit) {
    if (recovery_.driver_reinit > sim::Duration::Zero()) {
      co_await env_.Delay(recovery_.driver_reinit);
      if (d.generation != generation) co_return;  // failed again meanwhile
    }
    const sim::Duration reload = observer_->ParamsReloadCost(gpu);
    if (reload > sim::Duration::Zero()) {
      co_await env_.Delay(reload);
      if (d.generation != generation) co_return;
    }
  }
  Transition(gpu, DeviceHealth::kRecovering);
  for (int p = 0; p < recovery_.warmup_probes; ++p) {
    bool ok = true;
    try {
      co_await d.gpu->Submit(
          d.probe_stream,
          gpusim::KernelDesc{.job = gpusim::kNoJob,
                             .node_id = -1,
                             .thread_blocks = options_.probe_blocks,
                             .block_work = options_.probe_work});
    } catch (const gpusim::KernelFailed&) {
      ok = false;
    }
    if (d.generation != generation) co_return;
    if (!ok) {
      ++d.stats.probe_failures;
      if (counters_ != nullptr) ++counters_->probe_failures;
    }
  }
  if (recovery_.warmup > sim::Duration::Zero()) {
    co_await env_.Delay(recovery_.warmup);
    if (d.generation != generation) co_return;
  }
  Readmit(gpu);
}

sim::Task HealthMonitor::ProbeLoop(std::size_t gpu) {
  Device& d = *devices_[gpu];
  for (;;) {
    co_await env_.Delay(options_.probe_interval);
    if (stopped_) co_return;
    // Inside an outage submissions fail fast and tell us nothing the
    // listener has not already said; skip the beat.
    if (d.gpu->down()) continue;
    const sim::TimePoint sent = env_.Now();
    bool ok = true;
    try {
      co_await d.gpu->Submit(
          d.probe_stream,
          gpusim::KernelDesc{.job = gpusim::kNoJob,
                             .node_id = -1,
                             .thread_blocks = options_.probe_blocks,
                             .block_work = options_.probe_work});
    } catch (const gpusim::KernelFailed&) {
      ok = false;
    }
    if (stopped_) co_return;
    if (!ok) {
      ++d.stats.probe_failures;
      if (counters_ != nullptr) ++counters_->probe_failures;
    }
    if (options_.score.enabled) {
      // The heartbeat kernel runs through the same capacity-scaled device
      // clock as real work, so a fractional-capacity fault shows up here as
      // a stretched RTT — the only signal a gray fault gives off.
      d.score.OnProbe(ok, env_.Now() - sent);
      UpdateScoreHealth(gpu);
    }
  }
}

void HealthMonitor::HandleHangBegin(std::size_t gpu, sim::TimePoint until) {
  (void)until;
  Device& d = *devices_[gpu];
  if (d.health == DeviceHealth::kHealthy) {
    Transition(gpu, DeviceHealth::kDegraded);
  }
  if (d.health == DeviceHealth::kDegraded &&
      options_.hang_down_after > sim::Duration::Zero()) {
    env_.ScheduleCallbackAt(env_.Now() + options_.hang_down_after,
                            &HealthMonitor::HangEscalateTrampoline, this,
                            Pack(gpu, d.hang_epoch));
  }
}

void HealthMonitor::HandleHangEnd(std::size_t gpu) {
  Device& d = *devices_[gpu];
  ++d.hang_epoch;  // disarm any pending escalation for the ended hang
  if (d.health == DeviceHealth::kDegraded) {
    // The score's hysteresis latch outranks the listener clear: a device
    // still measurably slow stays degraded until the score recovers.
    if (!d.gpu->alloc_fault_active() && !d.score_degraded) {
      Transition(gpu, DeviceHealth::kHealthy);
    }
    return;
  }
  if (d.health == DeviceHealth::kDown && d.down_from_hang) {
    // The wedged channel finally cleared: the driver was never reset, so
    // recovery skips re-init and reload and goes straight to warm-up.
    env_.Spawn(RecoveryProc(gpu, d.generation, /*full_reinit=*/false),
               "health/recover-gpu" + std::to_string(gpu));
  }
}

void HealthMonitor::HandleResetBegin(std::size_t gpu, sim::Duration outage) {
  (void)outage;
  GoDown(gpu, /*from_hang=*/false);
}

void HealthMonitor::HandleResetComplete(std::size_t gpu) {
  Device& d = *devices_[gpu];
  if (d.health != DeviceHealth::kDown) return;
  env_.Spawn(RecoveryProc(gpu, d.generation, /*full_reinit=*/true),
             "health/recover-gpu" + std::to_string(gpu));
}

void HealthMonitor::HandleAllocFaultWindow(std::size_t gpu,
                                           sim::TimePoint until) {
  Device& d = *devices_[gpu];
  if (d.health == DeviceHealth::kHealthy) {
    Transition(gpu, DeviceHealth::kDegraded);
  }
  if (d.health == DeviceHealth::kDegraded) {
    env_.ScheduleCallbackAt(until, &HealthMonitor::AllocClearTrampoline, this,
                            Pack(gpu, 0));
  }
}

void HealthMonitor::HangEscalateTrampoline(void* ctx, std::uint64_t arg) {
  auto* self = static_cast<HealthMonitor*>(ctx);
  const std::size_t gpu = UnpackGpu(arg);
  Device& d = *self->devices_[gpu];
  if ((d.hang_epoch & 0xffffffffu) != UnpackGeneration(arg)) return;
  if (d.health != DeviceHealth::kDegraded) return;
  if (!d.gpu->hung()) return;  // cleared at this exact instant
  self->GoDown(gpu, /*from_hang=*/true);
}

void HealthMonitor::AllocClearTrampoline(void* ctx, std::uint64_t arg) {
  // No epoch needed: a stale timer observes the window still open (it was
  // extended) or the device in some other state, and is a no-op either way.
  auto* self = static_cast<HealthMonitor*>(ctx);
  const std::size_t gpu = UnpackGpu(arg);
  Device& d = *self->devices_[gpu];
  if (d.health != DeviceHealth::kDegraded) return;
  if (d.gpu->hung() || d.gpu->alloc_fault_active()) return;  // still impaired
  if (d.score_degraded) return;  // score hysteresis still holds it degraded
  self->Transition(gpu, DeviceHealth::kHealthy);
}

}  // namespace olympian::serving
