#include "serving/batcher.h"

#include <algorithm>
#include <stdexcept>

#include "models/model_zoo.h"

namespace olympian::serving {

Batcher::Batcher(Experiment& experiment, std::string model, Options options)
    : exp_(experiment),
      env_(experiment.env()),
      model_(std::move(model)),
      options_(std::move(options)),
      ctx_(experiment.CreateJob(model_, options_.allowed_batch_sizes.empty()
                                            ? 1
                                            : options_.allowed_batch_sizes.back(),
                                options_.gpu_index)),
      graph_(experiment.LoadModel(model_, options_.gpu_index)),
      wake_(env_),
      done_cv_(env_) {
  if (options_.allowed_batch_sizes.empty()) {
    throw std::invalid_argument("allowed_batch_sizes must not be empty");
  }
  if (!std::is_sorted(options_.allowed_batch_sizes.begin(),
                      options_.allowed_batch_sizes.end()) ||
      options_.allowed_batch_sizes.front() < 1) {
    throw std::invalid_argument("allowed_batch_sizes must be ascending, >= 1");
  }
  env_.Spawn(Dispatcher(), "batcher:" + model_);
}

int Batcher::PadToAllowed(int items) const {
  for (int s : options_.allowed_batch_sizes) {
    if (s >= items) return s;
  }
  return options_.allowed_batch_sizes.back();
}

sim::Task Batcher::Infer(sim::Duration* latency, metrics::PhaseAccount* pa) {
  if (closed_) throw std::logic_error("Infer after Close");
  Request req{env_.Now(), false, pa};
  pending_.push_back(&req);
  wake_.NotifyAll();
  while (!req.done) co_await done_cv_.Wait();
  if (latency != nullptr) *latency = env_.Now() - req.arrival;
}

void Batcher::Close() {
  closed_ = true;
  wake_.NotifyAll();
}

void Batcher::AlarmTrampoline(void* ctx, std::uint64_t epoch) {
  auto* self = static_cast<Batcher*>(ctx);
  if (epoch == self->alarm_epoch_) self->wake_.NotifyAll();
}

sim::Task Batcher::Dispatcher() {
  const int max_allowed = options_.allowed_batch_sizes.back();
  for (;;) {
    while (pending_.empty() && !closed_) co_await wake_.Wait();
    if (pending_.empty() && closed_) co_return;

    // Wait for the batch to fill or the oldest request to time out.
    const sim::TimePoint deadline =
        pending_.front()->arrival + options_.batch_timeout;
    ++alarm_epoch_;
    env_.ScheduleCallbackAt(deadline, &Batcher::AlarmTrampoline, this,
                            alarm_epoch_);
    while (!closed_ && static_cast<int>(pending_.size()) < max_allowed &&
           env_.Now() < deadline) {
      co_await wake_.Wait();
    }
    ++alarm_epoch_;  // disarm a still-pending alarm

    const int take =
        std::min<int>(static_cast<int>(pending_.size()), max_allowed);
    if (take == 0) continue;  // closed with nothing left
    std::vector<Request*> batch(pending_.begin(), pending_.begin() + take);
    pending_.erase(pending_.begin(), pending_.begin() + take);

    const int padded = PadToAllowed(take);
    ctx_.batch = padded;
    ctx_.model_key = models::ModelKey(model_, padded);
    // Everything up to this instant was time spent waiting for the batch to
    // close; the run interval below is split into GPU residency vs. queueing.
    // Completion (and each waiter's resume) happens at the same virtual
    // instant as the charges below, so the phase-sum identity holds.
    bool any_accounted = false;
    for (Request* r : batch) {
      if (r->pa != nullptr) {
        r->pa->Charge(metrics::Phase::kBatcherWait, env_.Now());
        any_accounted = true;
      }
    }
    const sim::Duration gpu_before =
        any_accounted
            ? exp_.gpu(options_.gpu_index).JobGpuDuration(ctx_.job)
            : sim::Duration::Zero();
    co_await exp_.executor(options_.gpu_index).RunOnce(ctx_, graph_);
    if (any_accounted) {
      const sim::Duration compute =
          exp_.gpu(options_.gpu_index).JobGpuDuration(ctx_.job) - gpu_before;
      for (Request* r : batch) {
        if (r->pa != nullptr) {
          r->pa->SplitCharge(metrics::Phase::kGpuCompute, compute,
                             metrics::Phase::kGpuQueue, env_.Now());
        }
      }
    }

    ++batches_executed_;
    items_served_ += static_cast<std::uint64_t>(take);
    occupancy_sum_ += static_cast<double>(take) / padded;
    batch_sizes_.Add(take);
    for (Request* r : batch) r->done = true;
    done_cv_.NotifyAll();
  }
}

double Batcher::MeanBatchOccupancy() const {
  return batches_executed_ == 0
             ? 0.0
             : occupancy_sum_ / static_cast<double>(batches_executed_);
}

}  // namespace olympian::serving
