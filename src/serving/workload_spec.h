#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "serving/server.h"

namespace olympian::serving {

// A declarative experiment description, parseable from a simple text format
// so operators can run what-if comparisons without recompiling:
//
//   # comment
//   seed 42
//   gpus 1
//   pool-threads 300
//   policy fair              # none = stock TF-Serving
//   quantum-us 1600
//   client inception-v4 batch=100 n=10 weight=2 priority=0
//   client resnet-152  batch=100 n=10 min-share=0.25 interarrival-ms=500
//
// Unknown keys are errors (typos should not silently change experiments).
struct WorkloadSpec {
  std::uint64_t seed = 1;
  int num_gpus = 1;
  std::size_t pool_threads = 300;
  // "none" (stock TF-Serving) or a core::MakePolicy name.
  std::string policy = "none";
  sim::Duration quantum = sim::Duration::Micros(1600);
  std::vector<ClientSpec> clients;

  ServerOptions ToServerOptions() const;

  // Parses the format above. Throws std::invalid_argument with a line
  // number on malformed input.
  static WorkloadSpec Parse(std::istream& is);
  static WorkloadSpec ParseString(const std::string& text);
  static WorkloadSpec LoadFile(const std::string& path);
};

}  // namespace olympian::serving
