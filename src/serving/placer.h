#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "serving/health.h"
#include "sim/environment.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace olympian::serving {

// Health-aware per-request router, replacing the setup-time round-robin pin.
//
// Each client keeps a *primary* device (its round-robin home, where its
// replica was instantiated for free at setup). Route prefers the primary
// while it is usable — sticky placement keeps the no-fault path identical
// to the legacy behaviour and avoids paying replica instantiation for
// nothing — and otherwise picks the least-loaded usable device (healthy
// preferred over degraded, then fewest outstanding requests, then lowest
// index: a deterministic total order).
//
// The replica registry coordinates lazy model instantiation on failover
// targets: the first request routed to a device without the model marks it
// kLoading and pays reload + warm-up on the virtual clock; concurrent
// requests await the load instead of double-paying.
class Placer {
 public:
  static constexpr std::size_t kNoDevice = static_cast<std::size_t>(-1);

  enum class ReplicaState : std::uint8_t { kAbsent = 0, kLoading, kReady };

  Placer(sim::Environment& env, const HealthMonitor& health,
         std::size_t num_gpus);

  Placer(const Placer&) = delete;
  Placer& operator=(const Placer&) = delete;

  // Pick a device for one request of `model` whose home is `primary`.
  // `exclude` (optional) removes one device from consideration — used by
  // hedged requests, which must land somewhere other than the primary
  // attempt. Returns kNoDevice when no usable device remains (every device
  // down: the caller rejects promptly instead of stalling). When the
  // monitor scores devices, the binary rank becomes weighted selection:
  // the primary stays sticky only while score-healthy, and fallback
  // maximizes score / (1 + outstanding) (ties -> replica-ready, then
  // lower index).
  std::size_t Route(const std::string& model, std::size_t primary,
                    std::size_t exclude = kNoDevice) const;

  // Outstanding-request accounting (drives the least-loaded ordering).
  void OnRequestStart(std::size_t gpu) { ++outstanding_.at(gpu); }
  void OnRequestEnd(std::size_t gpu) { --outstanding_.at(gpu); }
  std::uint64_t outstanding(std::size_t gpu) const {
    return outstanding_.at(gpu);
  }

  // --- replica registry --------------------------------------------------
  ReplicaState replica_state(std::size_t gpu, const std::string& model) const;
  // Declare a replica present without loading (primaries at setup).
  void MarkReady(std::size_t gpu, const std::string& model);
  // kAbsent -> kLoading; returns true when the caller owns the load (and
  // must call FinishLoad after charging the cost), false when the replica
  // is already loading or ready.
  bool BeginLoad(std::size_t gpu, const std::string& model);
  // kLoading -> kReady; wakes every AwaitReady waiter.
  void FinishLoad(std::size_t gpu, const std::string& model);
  // kLoading -> kAbsent (the load failed); wakes waiters so one of them
  // can take over the load on its next attempt.
  void AbortLoad(std::size_t gpu, const std::string& model);
  // Suspend while the replica is kLoading. Returns once it settles (kReady,
  // or kAbsent after an aborted load) — callers re-check the state.
  sim::Task AwaitReady(std::size_t gpu, const std::string& model);

  std::uint64_t replicas_loaded() const { return replicas_loaded_; }

 private:
  struct Replica {
    ReplicaState state = ReplicaState::kAbsent;
    std::unique_ptr<sim::CondVar> cv;  // created on first waiter
  };

  std::size_t RouteScored(const std::string& model, std::size_t primary,
                          std::size_t exclude) const;
  Replica& Slot(std::size_t gpu, const std::string& model);
  const Replica* FindSlot(std::size_t gpu, const std::string& model) const;

  sim::Environment& env_;
  const HealthMonitor& health_;
  std::vector<std::uint64_t> outstanding_;
  // Ordered map: deterministic iteration, cheap heterogeneous-ish keying.
  std::map<std::pair<std::size_t, std::string>, Replica> replicas_;
  std::uint64_t replicas_loaded_ = 0;
};

}  // namespace olympian::serving
