#include "serving/degradation.h"

#include <cmath>

namespace olympian::serving {

const char* ToString(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kTimedOut:
      return "timed_out";
    case RequestStatus::kRejected:
      return "rejected";
    case RequestStatus::kFailedRetried:
      return "failed_retried";
    case RequestStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

sim::Duration RetryPolicy::BackoffFor(int attempt) const {
  return base_backoff * std::pow(multiplier, attempt - 1);
}

bool CircuitBreaker::AllowRequest(sim::TimePoint now) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now < open_until_) return false;
      state_ = State::kHalfOpen;
      trial_in_flight_ = true;
      return true;
    case State::kHalfOpen:
      if (trial_in_flight_) return false;
      trial_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::OnSuccess() {
  consecutive_failures_ = 0;
  trial_in_flight_ = false;
  state_ = State::kClosed;
}

bool CircuitBreaker::OnFailure(sim::TimePoint now) {
  trial_in_flight_ = false;
  if (options_.failure_threshold <= 0) return false;
  if (state_ == State::kHalfOpen) {
    // Failed trial: straight back to open for another cooldown.
    state_ = State::kOpen;
    open_until_ = now + options_.cooldown;
    ++opens_;
    return true;
  }
  ++consecutive_failures_;
  if (state_ == State::kClosed &&
      consecutive_failures_ >= options_.failure_threshold) {
    state_ = State::kOpen;
    open_until_ = now + options_.cooldown;
    ++opens_;
    return true;
  }
  return false;
}

}  // namespace olympian::serving
