#include "serving/health_score.h"

#include <stdexcept>

namespace olympian::serving {

void Validate(const HealthScoreOptions& options) {
  if (!options.enabled) return;
  if (options.baseline_probes < 1) {
    throw std::invalid_argument("health score needs >= 1 baseline probe");
  }
  if (!(options.rtt_alpha > 0.0) || options.rtt_alpha > 1.0 ||
      !(options.error_alpha > 0.0) || options.error_alpha > 1.0) {
    throw std::invalid_argument("health score EWMA alphas must be in (0, 1]");
  }
  if (options.rtt_weight < 0.0 || options.rtt_weight > 1.0) {
    throw std::invalid_argument("health score rtt_weight must be in [0, 1]");
  }
  if (!(options.degrade_below > 0.0) || options.degrade_below >= 1.0 ||
      !(options.recover_above > 0.0) || options.recover_above >= 1.0) {
    throw std::invalid_argument("health score thresholds must be in (0, 1)");
  }
  if (options.degrade_below >= options.recover_above) {
    throw std::invalid_argument(
        "degrade_below must sit strictly below recover_above (hysteresis)");
  }
}

}  // namespace olympian::serving
