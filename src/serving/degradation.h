#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace olympian::serving {

// Terminal outcome of one inference request (one batch run).
enum class RequestStatus : std::uint8_t {
  kOk = 0,           // succeeded on the first attempt
  kTimedOut,         // cancelled by its deadline (possibly mid-retry)
  kRejected,         // shed by admission control or an open circuit breaker
  kFailedRetried,    // succeeded, but only after >= 1 retry
  kFailed,           // exhausted the retry budget
};

const char* ToString(RequestStatus status);

// Exponential backoff with deterministic multiplicative jitter (drawn from
// the client's seeded Rng, so retry timing is reproducible).
struct RetryPolicy {
  int max_retries = 2;
  sim::Duration base_backoff = sim::Duration::Millis(2);
  double multiplier = 2.0;
  double jitter = 0.2;

  sim::Duration BackoffFor(int attempt) const;  // attempt is 1-based
};

// Consecutive-failure circuit breaker, one per model key. `failure_threshold`
// of 0 disables it.
struct CircuitBreakerOptions {
  int failure_threshold = 0;
  sim::Duration cooldown = sim::Duration::Millis(50);
};

// Classic three-state breaker: `failure_threshold` consecutive failures trip
// it open; requests fail fast until `cooldown` elapses; then one trial
// request is let through (half-open) and its outcome closes or re-opens the
// breaker. Protects the pool from burning threads on a model whose kernels
// are failing repeatedly (e.g. during a fault window).
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerOptions options) : options_(options) {}

  // May transition kOpen -> kHalfOpen when the cooldown has elapsed. In
  // half-open state only the single trial request is admitted.
  bool AllowRequest(sim::TimePoint now);
  void OnSuccess();
  // Returns true when this failure tripped the breaker open.
  bool OnFailure(sim::TimePoint now);

  State state() const { return state_; }
  std::uint64_t opens() const { return opens_; }

 private:
  CircuitBreakerOptions options_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  bool trial_in_flight_ = false;
  sim::TimePoint open_until_;
  std::uint64_t opens_ = 0;
};

// Knobs for the serving layer's graceful-degradation machinery. Defaults
// preserve the legacy fail-stop behaviour (no shedding, no breaker); the
// retry policy only engages when faults actually produce request failures.
struct DegradationOptions {
  RetryPolicy retry;
  CircuitBreakerOptions breaker;
  // Admission-control watermark as a fraction of the thread pool
  // (busy + queued over pool size). A new request arriving at or above the
  // watermark is rejected instead of stalling the server; 0 disables.
  double admission_watermark = 0.0;
  // Client-side delay after a rejected request before it issues its next
  // one (prevents a zero-virtual-time reject spin).
  sim::Duration reject_backoff = sim::Duration::Millis(5);
};

}  // namespace olympian::serving
