#include "serving/arrivals.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace olympian::serving {

const char* ToString(ArrivalSpec::Kind k) {
  switch (k) {
    case ArrivalSpec::Kind::kClosedLoop:
      return "closed-loop";
    case ArrivalSpec::Kind::kPoisson:
      return "poisson";
    case ArrivalSpec::Kind::kTrace:
      return "trace";
    case ArrivalSpec::Kind::kMmpp:
      return "mmpp";
  }
  return "unknown";
}

ArrivalProcess::ArrivalProcess(ArrivalSpec spec) : spec_(std::move(spec)) {
  switch (spec_.kind) {
    case ArrivalSpec::Kind::kClosedLoop:
      break;
    case ArrivalSpec::Kind::kPoisson:
      if (spec_.rate_rps <= 0.0) {
        throw std::invalid_argument("Poisson arrivals need rate_rps > 0");
      }
      break;
    case ArrivalSpec::Kind::kTrace: {
      if (spec_.rate_rps <= 0.0 || spec_.phase <= sim::Duration::Zero() ||
          spec_.rate_trace.empty()) {
        throw std::invalid_argument(
            "Trace arrivals need rate_rps > 0, phase > 0, non-empty trace");
      }
      bool any_positive = false;
      for (const double m : spec_.rate_trace) {
        if (m < 0.0) {
          throw std::invalid_argument("Trace multipliers must be >= 0");
        }
        any_positive = any_positive || m > 0.0;
      }
      if (!any_positive) {
        throw std::invalid_argument("Trace needs >= 1 positive multiplier");
      }
      break;
    }
    case ArrivalSpec::Kind::kMmpp:
      if ((spec_.mmpp_rate_low <= 0.0 && spec_.mmpp_rate_high <= 0.0) ||
          spec_.mmpp_dwell_low <= sim::Duration::Zero() ||
          spec_.mmpp_dwell_high <= sim::Duration::Zero()) {
        throw std::invalid_argument(
            "MMPP arrivals need a positive rate and positive dwells");
      }
      break;
  }
}

double ArrivalProcess::TraceRateAt(sim::TimePoint t) const {
  const auto n = static_cast<std::int64_t>(spec_.rate_trace.size());
  const std::int64_t slot = (t - sim::TimePoint()).nanos() / spec_.phase.nanos();
  return spec_.rate_rps *
         spec_.rate_trace[static_cast<std::size_t>(slot % n)];
}

sim::TimePoint ArrivalProcess::Next(sim::Rng& rng) {
  switch (spec_.kind) {
    case ArrivalSpec::Kind::kClosedLoop:
      throw std::logic_error("Next() on a closed-loop ArrivalProcess");

    case ArrivalSpec::Kind::kPoisson: {
      const sim::Duration gap =
          sim::Duration::Seconds(1.0 / spec_.rate_rps) *
          (-std::log(1.0 - rng.NextDouble()));
      now_ = now_ + gap;
      return now_;
    }

    case ArrivalSpec::Kind::kTrace: {
      // Inversion for a piecewise-constant rate: draw E ~ Exp(1) once and
      // spend it across phases (E shrinks by rate * time-in-phase at each
      // boundary crossed), so one arrival costs exactly one variate and the
      // sequence is exact, not thinned.
      double e = -std::log(1.0 - rng.NextDouble());
      sim::TimePoint t = now_;
      for (;;) {
        const double rate = TraceRateAt(t);
        const std::int64_t slot = (t - sim::TimePoint()).nanos() /
                                  spec_.phase.nanos();
        const sim::TimePoint phase_end =
            sim::TimePoint() + spec_.phase * static_cast<double>(slot + 1);
        const double rem = (phase_end - t).seconds();
        if (rate > 0.0 && e <= rate * rem) {
          t = t + sim::Duration::Seconds(e / rate);
          break;
        }
        e -= rate * rem;
        t = phase_end;
      }
      now_ = t;
      return now_;
    }

    case ArrivalSpec::Kind::kMmpp: {
      if (!mmpp_armed_) {
        mmpp_armed_ = true;
        mmpp_switch_at_ =
            now_ + spec_.mmpp_dwell_low * (-std::log(1.0 - rng.NextDouble()));
      }
      double e = -std::log(1.0 - rng.NextDouble());
      sim::TimePoint t = now_;
      for (;;) {
        const double rate =
            mmpp_high_ ? spec_.mmpp_rate_high : spec_.mmpp_rate_low;
        const double rem = (mmpp_switch_at_ - t).seconds();
        if (rate > 0.0 && e <= rate * rem) {
          t = t + sim::Duration::Seconds(e / rate);
          break;
        }
        e -= rate * rem;
        t = mmpp_switch_at_;
        mmpp_high_ = !mmpp_high_;
        const sim::Duration dwell =
            mmpp_high_ ? spec_.mmpp_dwell_high : spec_.mmpp_dwell_low;
        mmpp_switch_at_ = t + dwell * (-std::log(1.0 - rng.NextDouble()));
      }
      now_ = t;
      return now_;
    }
  }
  throw std::logic_error("unreachable arrival kind");
}

AggregateArrivalProcess::AggregateArrivalProcess(ArrivalSpec spec,
                                                 std::uint64_t modeled_clients)
    : base_(std::move(spec)), modeled_clients_(modeled_clients) {
  if (modeled_clients_ == 0) {
    throw std::invalid_argument("aggregate stream needs modeled_clients > 0");
  }
  if (!base_.open_loop()) {
    throw std::invalid_argument(
        "aggregate streams are open-loop; closed-loop clients cannot be "
        "superposed into one generator");
  }
}

std::uint64_t AggregateArrivalProcess::NextClient(sim::Rng& rng) {
  return static_cast<std::uint64_t>(rng.UniformInt(
      0, static_cast<std::int64_t>(modeled_clients_) - 1));
}

}  // namespace olympian::serving
