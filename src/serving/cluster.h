#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "metrics/counters.h"
#include "metrics/registry.h"
#include "serving/arrivals.h"
#include "serving/router.h"
#include "serving/server.h"
#include "sim/environment.h"

namespace olympian::serving {

// One client of the cluster: the per-request spec (model, batch, deadline,
// count) plus an open-loop arrival generator. With `arrivals` closed-loop
// and `request.mean_interarrival` zero the client behaves exactly like the
// single-server closed-loop client, one level up.
struct ClusterClientSpec {
  ClientSpec request;
  ArrivalSpec arrivals;
};

// Per-client outcome of a cluster run (the cross-server analogue of
// ClientResult; gpu_index becomes the home *server*).
struct ClusterClientResult {
  std::string name;
  std::string model;
  std::size_t home_server = 0;
  sim::Duration finish_time;
  int requests_completed = 0;  // kOk + kFailedRetried
  std::vector<double> request_latency_ms;
  std::vector<RequestStatus> request_status;

  int CountStatus(RequestStatus s) const;
};

struct ClusterOptions {
  // Template for every server: devices, pool, executor, degradation. The
  // cluster derives each server's seed from `seed` and forces
  // failover.enabled on — the router's cross-server contract depends on the
  // in-server placer rejecting promptly when every local device is down.
  ServerOptions server;
  std::size_t num_servers = 2;
  RouterOptions router;
  // Server-level fault schedule (crashes, hangs, partitions).
  fault::ServerFaultPlan faults;
  // Router counters + per-server health series land here (may be null).
  metrics::MetricRegistry* registry = nullptr;
  // Master seed for server seeds and per-client request streams.
  std::uint64_t seed = 1;
};

// A cluster of N independent serving::Experiment instances on ONE shared
// virtual clock, fronted by a Router. The cluster implements the router's
// transport (so partitions, crashes, and hangs are modelled here, where the
// topology lives) and the cross-server failover contract: a request whose
// server died mid-flight is re-admitted on a survivor WITHOUT spending the
// client retry budget, mirroring the in-server device-failover rule.
class Cluster : private RouterTransport {
 public:
  explicit Cluster(ClusterOptions options);
  ~Cluster() override;

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Runs all clients from t=0 to completion (client i's home server is
  // i % num_servers). May only be called once.
  std::vector<ClusterClientResult> Run(
      const std::vector<ClusterClientSpec>& clients);

  sim::Environment& env() { return env_; }
  Experiment& server(std::size_t i) { return *servers_.at(i); }
  std::size_t num_servers() const { return servers_.size(); }
  const Router& router() const { return *router_; }
  const metrics::RouterCounters& counters() const { return counters_; }
  sim::Duration makespan() const { return makespan_; }

 private:
  // RouterTransport:
  sim::Task Probe(std::size_t server, bool& ok) override;
  bool HasUsableDevice(std::size_t server) const override;

  sim::Task ClientProc(std::size_t client, const ClusterClientSpec& spec,
                       std::uint64_t seed, ClusterClientResult& out);
  // One request end-to-end: route -> forward leg -> serve -> response leg,
  // with failover re-admission and the budgeted retry loop.
  sim::Task DispatchRequest(std::size_t client, const ClientSpec& spec,
                            std::size_t home, sim::Rng& rng,
                            sim::TimePoint arrival, RequestStatus& status);
  // Bring client's tenant up on `server`, charging parameter streaming +
  // warm-up for a first arrival on a non-home server. `ok` is false on a
  // transient allocation failure.
  sim::Task EnsureTenant(std::size_t server, std::size_t client,
                         const ClientSpec& spec, std::size_t& tenant,
                         bool& ok);

  void ArmServerFaults();
  void ApplyServerFault(const fault::ServerFaultEvent& e);
  static void FaultTrampoline(void* ctx, std::uint64_t index);
  void StopAll();

  ClusterOptions options_;
  sim::Environment env_;
  std::vector<std::unique_ptr<Experiment>> servers_;
  std::unique_ptr<Router> router_;
  metrics::RouterCounters counters_;
  metrics::Tracer* tracer_;  // shared across servers via ServerOptions

  // Server fault state (virtual-time windows; a past deadline means clear).
  std::vector<sim::TimePoint> crashed_until_;
  std::vector<sim::TimePoint> hung_until_;
  std::vector<sim::TimePoint> part_to_until_;    // router -> server drops
  std::vector<sim::TimePoint> part_from_until_;  // server -> router drops

  // (server, client) -> tenant index on that server.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> tenant_of_;

  std::size_t clients_running_ = 0;
  sim::Duration makespan_;
  bool ran_ = false;
};

}  // namespace olympian::serving
