#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "metrics/counters.h"
#include "metrics/incident.h"
#include "metrics/phase_account.h"
#include "metrics/registry.h"
#include "serving/arrivals.h"
#include "serving/router.h"
#include "serving/server.h"
#include "sim/environment.h"
#include "sim/shard.h"

namespace olympian::serving {

// One client of the cluster: the per-request spec (model, batch, deadline,
// count) plus an open-loop arrival generator. With `arrivals` closed-loop
// and `request.mean_interarrival` zero the client behaves exactly like the
// single-server closed-loop client, one level up.
struct ClusterClientSpec {
  ClientSpec request;
  ArrivalSpec arrivals;
};

// Per-client outcome of a cluster run (the cross-server analogue of
// ClientResult; gpu_index becomes the home *server*).
struct ClusterClientResult {
  std::string name;
  std::string model;
  std::size_t home_server = 0;
  sim::Duration finish_time;
  int requests_completed = 0;  // kOk + kFailedRetried
  std::vector<double> request_latency_ms;
  std::vector<RequestStatus> request_status;

  int CountStatus(RequestStatus s) const;
};

// Server -> shard assignment policy for sharded runs.
enum class ShardAssignment {
  // server s lives on shard s % shards (the PR-7 layout).
  kStatic,
  // Deterministic greedy bin-packing on per-server event weight: servers
  // sorted by (weight desc, index asc), each placed on the least-loaded
  // shard (ties -> lowest shard). With uniform (or absent) weights this
  // reproduces kStatic exactly, so the trajectory never depends on the
  // policy — only the thread-to-work packing does.
  kAdaptive,
};

struct ClusterOptions {
  // Template for every server: devices, pool, executor, degradation. The
  // cluster derives each server's seed from `seed` and forces
  // failover.enabled on — the router's cross-server contract depends on the
  // in-server placer rejecting promptly when every local device is down.
  ServerOptions server;
  std::size_t num_servers = 2;
  RouterOptions router;
  // Server-level fault schedule (crashes, hangs, partitions).
  fault::ServerFaultPlan faults;
  // Router counters + per-server health series land here (may be null).
  metrics::MetricRegistry* registry = nullptr;
  // Latency anatomy. Both may be null (the default): every charge site is
  // pointer-guarded, so a disabled run pays nothing on the hot path. The
  // collector and the incident log are fed hub-side only, in virtual-time
  // order, so their exports are byte-identical at any shard count.
  metrics::PhaseCollector* phases = nullptr;
  metrics::IncidentLog* incidents = nullptr;
  // Sharded-engine introspection (per-shard busy/barrier-wait wall time,
  // window-length and boundary-traffic series) lands HERE, not in
  // `registry`: wall-clock numbers depend on the physical shard count, so a
  // separate registry preserves the byte-identical-across-shard-counts
  // contract for every export above.
  metrics::MetricRegistry* engine_registry = nullptr;
  // Master seed for server seeds and per-client request streams.
  std::uint64_t seed = 1;
  // Simulation shards. 1 (the default) keeps everything on one event queue —
  // the unsharded engine, byte-identical to the pre-sharding cluster. With
  // shards > 1 the servers are partitioned across worker shards (one engine
  // lane per server, packed by `assignment`; router, clients, and server-
  // level fault injection on the hub) and the experiment runs on
  // sim::ShardedEngine's conservative windows. Clamped to num_servers.
  //
  // Every cluster configuration shards: per-request kAllocFault device
  // faults, a server-side tracer, and a server-side observability registry
  // all run at any shard count and export byte-identically to shards=1
  // (each server writes a private accumulator on its own shard; the cluster
  // merges them hub-side in a canonical order after the run). The two
  // remaining requirements are router.net_delay > 0 (it is the engine
  // lookahead) and no device-level kCapacityFault events (the router probe
  // reads device capacity hub-side; use ServerFaultPlan::CapacityLoss,
  // which is hub-applied). Violations throw with the offending option and
  // the fix named in the message.
  std::size_t shards = 1;
  // How servers are packed onto shards (irrelevant to the trajectory, which
  // is shard-assignment-independent by the engine's lane merge order).
  ShardAssignment assignment = ShardAssignment::kStatic;
  // Per-server event weights for kAdaptive: measured work (e.g. a profile
  // pass's engine.shard_events(), or lane boundary-event counts from a
  // previous run). Empty means uniform. Size must be num_servers otherwise.
  std::vector<double> server_weights;
};

// One aggregate request stream: an open-loop arrival process standing in
// for `modeled_clients` individual clients of one model. Each arrival draws
// a client id, whose home server is id % num_servers; the per-(server,
// stream) tenant is provisioned on every server up front, so memory and
// process count scale with streams and in-flight requests — not with the
// modeled client population. This is what makes million-client workloads
// feasible: one generator proc per stream instead of one proc per client.
struct ClusterStreamSpec {
  ClientSpec request;   // per-request template (model, batch, deadline)
  ArrivalSpec arrivals; // must be open-loop (kClosedLoop is rejected)
  std::uint64_t modeled_clients = 1;
  int num_requests = 0; // total arrivals this stream generates
};

// Per-stream outcome of a RunStreams run. Request slots are indexed by
// arrival order (not completion order), so results are layout-identical
// across shard counts.
struct ClusterStreamResult {
  std::string name;
  std::string model;
  sim::Duration finish_time;   // last response of this stream
  int requests_completed = 0;  // kOk + kFailedRetried
  std::vector<double> request_latency_ms;
  std::vector<RequestStatus> request_status;
};

// A cluster of N independent serving::Experiment instances on ONE shared
// virtual clock, fronted by a Router. The cluster implements the router's
// transport (so partitions, crashes, and hangs are modelled here, where the
// topology lives) and the cross-server failover contract: a request whose
// server died mid-flight is re-admitted on a survivor WITHOUT spending the
// client retry budget, mirroring the in-server device-failover rule.
class Cluster : private RouterTransport {
 public:
  explicit Cluster(ClusterOptions options);
  ~Cluster() override;

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // Runs all clients from t=0 to completion (client i's home server is
  // i % num_servers). May only be called once.
  std::vector<ClusterClientResult> Run(
      const std::vector<ClusterClientSpec>& clients);

  // Runs aggregate request streams from t=0 to completion (open-loop only).
  // Mutually exclusive with Run; may only be called once.
  std::vector<ClusterStreamResult> RunStreams(
      const std::vector<ClusterStreamSpec>& streams);

  sim::Environment& env() { return env_; }
  const sim::ShardedEngine& engine() const { return engine_; }
  std::size_t shards() const { return engine_.shards(); }
  Experiment& server(std::size_t i) { return *servers_.at(i); }
  std::size_t num_servers() const { return servers_.size(); }
  const Router& router() const { return *router_; }
  const metrics::RouterCounters& counters() const { return counters_; }
  sim::Duration makespan() const { return makespan_; }

 private:
  // RouterTransport:
  sim::Task Probe(std::size_t server, bool& ok) override;
  bool HasUsableDevice(std::size_t server) const override;

  sim::Task ClientProc(std::size_t client, const ClusterClientSpec& spec,
                       std::uint64_t seed, ClusterClientResult& out);
  // One request end-to-end: route -> forward leg -> serve -> response leg,
  // with failover re-admission and the budgeted retry loop.
  sim::Task DispatchRequest(std::size_t client, const ClientSpec& spec,
                            std::size_t home, sim::Rng& rng,
                            sim::TimePoint arrival, RequestStatus& status,
                            metrics::PhaseAccount* pa, std::size_t* served);
  // Sharded twin of DispatchRequest: identical decision sequence and
  // virtual-time cost, but the serve section physically executes on the
  // server's shard — the forward/response network legs become cross-shard
  // hops through the engine's boundary channels.
  sim::Task ShardedDispatch(std::size_t client, const ClientSpec& spec,
                            std::size_t home, sim::Rng& rng,
                            sim::TimePoint arrival, RequestStatus& status,
                            metrics::PhaseAccount* pa, std::size_t* served);
  // Bring client's tenant up on `server`, charging parameter streaming +
  // warm-up for a first arrival on a non-home server. `ok` is false on a
  // transient allocation failure. Runs on the server's environment (the
  // hub's in unsharded mode, where they are the same object).
  sim::Task EnsureTenant(std::size_t server, std::size_t client,
                         const ClientSpec& spec, std::size_t& tenant,
                         bool& ok);
  // One aggregate stream: generates arrivals and fans each request out as
  // an independent process (open loop — generation never blocks on serving).
  sim::Task StreamProc(std::size_t stream, const ClusterStreamSpec& spec,
                       std::uint64_t seed, ClusterStreamResult& out);
  sim::Task StreamRequestProc(std::size_t stream, const ClusterStreamSpec& spec,
                              std::size_t home, sim::Rng rng,
                              sim::TimePoint arrival, int index,
                              ClusterStreamResult& out);
  // Merge per-server private accumulators (tenant counters, trace buffers,
  // observability registries) hub-side in canonical order, then export.
  void FinishRun();
  // Engine introspection -> ClusterOptions::engine_registry (wall-clock
  // numbers: deliberately a separate registry from every byte-compared
  // artifact).
  void ExportEngineIntrospection(metrics::MetricRegistry& reg) const;

  std::size_t shard_of(std::size_t server) const {
    // One engine lane per server, so the lane map IS the assignment.
    return engine_.lane_shard(server);
  }

  void ArmServerFaults();
  void ApplyServerFault(const fault::ServerFaultEvent& e);
  static void FaultTrampoline(void* ctx, std::uint64_t index);
  void StopAll();
  // Hop-delay multiplier for `server` at the hub's current instant.
  double JitterFactor(std::size_t server) const {
    return env_.Now() < jitter_until_[server] ? jitter_factor_[server] : 1.0;
  }
  // Lowest capacity multiplier across the server's devices right now (1.0
  // when no fractional-capacity window is open). Read hub-side only.
  double ServerCapacity(std::size_t server);

  ClusterOptions options_;
  // Declared before env_: env_ aliases the engine's hub environment, which
  // is the one and only environment when shards == 1 (the unsharded path).
  sim::ShardedEngine engine_;
  sim::Environment& env_;
  std::vector<std::unique_ptr<Experiment>> servers_;
  std::unique_ptr<Router> router_;
  metrics::RouterCounters counters_;
  // User-facing trace destination (ServerOptions::executor.tracer). Never
  // written during the run: each server records into a private per-server
  // buffer on its own shard, the hub (fault spans) into hub_tracer_, and
  // FinishRun folds them into tracer_ in canonical order — hub first, then
  // servers 0..N-1 — at EVERY shard count, so the merged trace is byte-
  // identical whether the run sharded or not.
  metrics::Tracer* tracer_;
  std::unique_ptr<metrics::Tracer> hub_tracer_;
  std::vector<std::unique_ptr<metrics::Tracer>> server_tracers_;
  // Same scheme for the server-side observability registry: each server
  // gets a private registry (nothing writes it during a cluster run today,
  // but the wiring keeps future server-side sampling partition-safe);
  // FinishRun exports each server's ServingCounters into its private
  // registry and merges them into the user registry labeled {server="s"}.
  std::vector<std::unique_ptr<metrics::MetricRegistry>> server_registries_;

  // Server fault state (virtual-time windows; a past deadline means clear).
  // Written only by hub-resident code (fault callbacks on the hub queue);
  // shard-resident readers are race-free because writes happen only while
  // the workers are parked at a barrier, and temporally exact because every
  // hub instant at or before a worker event's time has already executed.
  std::vector<sim::TimePoint> crashed_until_;
  std::vector<sim::TimePoint> hung_until_;
  std::vector<sim::TimePoint> part_to_until_;    // router -> server drops
  std::vector<sim::TimePoint> part_from_until_;  // server -> router drops
  // Network-jitter windows: every router<->server hop (requests, responses,
  // probes) is stretched by jitter_factor_ while the window is open. The
  // factor is >= 1, so jittered hops never undercut the net_delay lookahead
  // that bounds the sharded engine's conservative windows.
  std::vector<sim::TimePoint> jitter_until_;
  std::vector<double> jitter_factor_;

  // Per-server client -> tenant index. Sharded by server so concurrent
  // first-arrival instantiations on different shards never touch the same
  // map; the hub only reads them (retire loop) during hub instants.
  std::vector<std::map<std::size_t, std::size_t>> tenant_of_;
  // Per-server tenant-instantiation counts, merged into counters_ after the
  // run (the shared counter would be a cross-thread race in sharded mode).
  std::vector<std::uint64_t> tenant_instantiations_;

  std::size_t clients_running_ = 0;
  std::size_t streams_running_ = 0;
  std::size_t outstanding_requests_ = 0;
  sim::Duration makespan_;
  bool ran_ = false;
};

}  // namespace olympian::serving
