#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault.h"
#include "gpusim/gpu.h"
#include "metrics/counters.h"
#include "metrics/trace.h"
#include "serving/health_score.h"
#include "sim/environment.h"
#include "sim/task.h"

namespace olympian::serving {

// Placement-facing classification of one device.
enum class DeviceHealth : std::uint8_t {
  kHealthy = 0,  // serving normally
  kDegraded,     // serving, but impaired (hang in progress, alloc faults)
  kDown,         // not serving: reset outage, or a hang that outlived the
                 // escalation budget and was failed over
  kRecovering,   // driver back up; reloading / warming before readmission
};

const char* ToString(DeviceHealth h);

// One observed health-state edge, in transition order across all devices.
// The failover test asserts on this log (down observed, readmission
// observed); it is also mirrored to the tracer's health track.
struct HealthTransition {
  std::size_t gpu = 0;
  DeviceHealth from = DeviceHealth::kHealthy;
  DeviceHealth to = DeviceHealth::kHealthy;
  sim::TimePoint at;
};

// Callbacks the monitor raises towards the serving layer. `OnDeviceDown`
// fires synchronously inside the device signal that killed it — before any
// failed kernel's waiter resumes — so the observer can cancel in-flight
// runs with a failover reason that wins the sticky cancel-token race.
class HealthObserver {
 public:
  virtual ~HealthObserver() = default;
  virtual void OnDeviceDown(std::size_t gpu) = 0;
  // Recovery finished; the device is healthy and may take traffic again.
  virtual void OnDeviceReadmitted(std::size_t gpu) = 0;
  // Virtual time to reload the parameters resident on `gpu` (charged during
  // the recovery pipeline, after driver re-init).
  virtual sim::Duration ParamsReloadCost(std::size_t gpu) const = 0;
};

struct HealthMonitorOptions {
  // Heartbeat cadence per device; zero disables the probe loop (the
  // listener signals alone still classify, but warm-up probes and liveness
  // checks stop).
  sim::Duration probe_interval = sim::Duration::Millis(5);
  // Shape of the heartbeat kernel (tiny: one block, microseconds of work).
  std::int64_t probe_blocks = 1;
  sim::Duration probe_work = sim::Duration::Micros(20);
  // A hang outliving this budget escalates kDegraded -> kDown, triggering
  // failover even though the driver will eventually un-wedge. Zero keeps
  // hung devices merely degraded.
  sim::Duration hang_down_after = sim::Duration::Millis(10);
  // Gray-failure detection: continuous per-device health scoring from probe
  // kernel RTTs. A fractional-capacity fault has no listener signal — it
  // stretches kernels silently — so it can only be noticed by measuring the
  // heartbeat. When enabled, hysteresis thresholds add a score-driven
  // healthy <-> degraded path alongside the push-style listener edges
  // (which stay authoritative for hangs/alloc faults); while the score
  // holds a device degraded, the listener clear edges are deferred until
  // the score recovers. Off by default: zero behavior change.
  HealthScoreOptions score;
};

// Per-device health state machine on the virtual clock.
//
// Wired to each gpusim::Gpu as its GpuHealthListener: hang/reset/alloc
// signals drive transitions push-style, a per-device heartbeat loop probes
// liveness pull-style, and after an outage a recovery pipeline (driver
// re-init delay -> parameter reload -> warm-up probes) gates readmission.
// All state changes land in a transition log, the serving counters, and the
// tracer's health track, so failover behaviour is observable and testable.
class HealthMonitor : public HealthObserver {
 public:
  struct DeviceStats {
    std::uint64_t down_events = 0;
    std::uint64_t readmissions = 0;
    std::uint64_t probe_failures = 0;
    sim::Duration time_down;      // kDown + kRecovering, completed episodes
    sim::Duration time_degraded;  // completed kDegraded episodes
    sim::Duration mttr_total;     // sum of down -> readmitted intervals
    // One entry per completed recovery (down -> readmitted), in episode
    // order: the per-incident repair times behind mttr_total, so consumers
    // can build a distribution (histogram / p95) instead of one average.
    std::vector<sim::Duration> mttr_incidents;
  };

  HealthMonitor(sim::Environment& env, std::vector<gpusim::Gpu*> gpus,
                HealthMonitorOptions options, fault::RecoveryOptions recovery,
                HealthObserver* observer,
                metrics::ServingCounters* counters = nullptr,
                metrics::Tracer* tracer = nullptr);
  ~HealthMonitor() override;

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  // Attach listeners and spawn the probe loops. Call once, before traffic.
  void Start();
  // Stop probing (pending recovery pipelines still run to completion, and
  // listeners stay attached). Called when the workload finishes so the
  // event queue can drain.
  void Stop();

  std::size_t num_devices() const { return devices_.size(); }
  DeviceHealth health(std::size_t gpu) const;
  // Routable: healthy or degraded (down/recovering devices take no traffic).
  bool Usable(std::size_t gpu) const;
  const DeviceStats& stats(std::size_t gpu) const;
  const std::vector<HealthTransition>& transitions() const {
    return transitions_;
  }
  // Mean time to repair: down -> readmitted, averaged over completed
  // recoveries of `gpu`. Zero when the device never went down.
  sim::Duration Mttr(std::size_t gpu) const;

  // Gray-failure scoring (all trivial when scoring is disabled).
  bool scoring() const { return options_.score.enabled; }
  // Continuous health score of `gpu` (1.0 when scoring is disabled).
  double score(std::size_t gpu) const;
  // Measured probe slowdown vs. the learned baseline (1.0 = nominal).
  double slowdown(std::size_t gpu) const;

  // HealthObserver default self-wiring (used when no external observer is
  // installed; the serving layer normally passes itself instead).
  void OnDeviceDown(std::size_t gpu) override { (void)gpu; }
  void OnDeviceReadmitted(std::size_t gpu) override { (void)gpu; }
  sim::Duration ParamsReloadCost(std::size_t gpu) const override {
    (void)gpu;
    return sim::Duration::Zero();
  }

 private:
  // Fans one device's GpuHealthListener callbacks into the monitor.
  struct Listener final : gpusim::GpuHealthListener {
    HealthMonitor* monitor = nullptr;
    std::size_t index = 0;
    void OnHangBegin(sim::TimePoint until) override {
      monitor->HandleHangBegin(index, until);
    }
    void OnHangEnd() override { monitor->HandleHangEnd(index); }
    void OnResetBegin(sim::Duration outage) override {
      monitor->HandleResetBegin(index, outage);
    }
    void OnResetComplete() override { monitor->HandleResetComplete(index); }
    void OnAllocFaultWindow(sim::TimePoint until) override {
      monitor->HandleAllocFaultWindow(index, until);
    }
  };

  struct Device {
    gpusim::Gpu* gpu = nullptr;
    DeviceHealth health = DeviceHealth::kHealthy;
    sim::TimePoint state_since;
    sim::TimePoint down_since;
    gpusim::StreamId probe_stream = -1;
    // Bumped on every down / readmission edge; stale timers and recovery
    // pipelines from an earlier episode check it and bail.
    std::uint64_t generation = 0;
    // Bumped when a hang ends (or the device goes down); disarms the
    // pending degraded -> down escalation timer of that hang.
    std::uint64_t hang_epoch = 0;
    // True when the current kDown came from hang escalation (no reset): the
    // recovery pipeline then skips driver re-init and parameter reload.
    bool down_from_hang = false;
    // Probe-RTT health score (only consulted when scoring is enabled).
    // `score_degraded` is the hysteresis latch: true from the degrade edge
    // until the score climbs back above recover_above; while set, listener
    // clear edges may not transition the device back to healthy.
    HealthScore score;
    bool score_degraded = false;
    DeviceStats stats;
    Listener listener;
  };

  void Transition(std::size_t gpu, DeviceHealth to);
  void UpdateScoreHealth(std::size_t gpu);
  void GoDown(std::size_t gpu, bool from_hang);
  void Readmit(std::size_t gpu);
  sim::Task RecoveryProc(std::size_t gpu, std::uint64_t generation,
                         bool full_reinit);
  sim::Task ProbeLoop(std::size_t gpu);

  void HandleHangBegin(std::size_t gpu, sim::TimePoint until);
  void HandleHangEnd(std::size_t gpu);
  void HandleResetBegin(std::size_t gpu, sim::Duration outage);
  void HandleResetComplete(std::size_t gpu);
  void HandleAllocFaultWindow(std::size_t gpu, sim::TimePoint until);

  // args pack (gpu << 32) | generation-low-bits; see Pack/Unpack in the .cc.
  static void HangEscalateTrampoline(void* ctx, std::uint64_t arg);
  static void AllocClearTrampoline(void* ctx, std::uint64_t arg);

  sim::Environment& env_;
  HealthMonitorOptions options_;
  fault::RecoveryOptions recovery_;
  HealthObserver* observer_;  // never null (defaults to this)
  metrics::ServingCounters* counters_;
  metrics::Tracer* tracer_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<HealthTransition> transitions_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace olympian::serving
