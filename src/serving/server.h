#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "gpusim/gpu.h"
#include "graph/executor.h"
#include "graph/graph.h"
#include "graph/hooks.h"
#include "graph/thread_pool.h"
#include "metrics/counters.h"
#include "metrics/phase_account.h"
#include "metrics/registry.h"
#include "models/model_zoo.h"
#include "serving/degradation.h"
#include "serving/health.h"
#include "serving/placer.h"
#include "sim/environment.h"
#include "sim/sync.h"

namespace olympian::serving {

// Thrown when a workload cannot make progress — every runnable event has
// drained but clients are unfinished. This is how the simulated server
// surfaces the paper's §4.3 scalability limit: suspended gangs holding all
// pool threads.
struct ServerStalled : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Health-aware placement, failover, and recovery orchestration. Disabled by
// default: the legacy static round-robin pin (and its exact event sequence)
// is preserved bit-for-bit unless `enabled` is set.
struct FailoverOptions {
  bool enabled = false;
  HealthMonitorOptions health;
  // Recovery pipeline after an outage (driver re-init, parameter reload
  // over PCIe, warm-up) — also prices lazy replica instantiation.
  fault::RecoveryOptions recovery;
  // Launch a duplicate attempt on another replica when the routed device is
  // merely degraded (tail tolerance during hangs / alloc-fault windows).
  bool hedge_when_degraded = false;
  sim::Duration hedge_delay = sim::Duration::Millis(5);
  // Slowdown-triggered hedging (requires health.score.enabled): also hedge
  // when the routed device's score drops below this, even before the
  // hysteresis marks it degraded — the response acts on the measured
  // slowdown, not the binary bit. 0 disables (the default).
  double hedge_below_score = 0.0;
};

// Observability wiring for a serving run. Fully passive: with `registry`
// null (the default) no sampling runs and no registry is touched, and even
// when enabled the sampler is strictly read-only — the golden determinism
// suite asserts finish times are bit-identical in both modes.
struct ObservabilityOptions {
  // Destination for counters, request-latency histograms, and the
  // sampler's windowed series. Owned by the caller; must outlive Run.
  metrics::MetricRegistry* registry = nullptr;
  // Virtual-clock cadence of the sampler process that snapshots per-device
  // utilization, queue depth, health, placer load, pool occupancy, breaker
  // state, and scheduler token occupancy (via SchedulingHooks::OnSample).
  // Zero disables the sampler; counters and histograms still flow.
  sim::Duration sample_interval = sim::Duration::Zero();
  // Latency anatomy: when set, every request carries a PhaseAccount that
  // charges its whole lifetime to the closed Phase taxonomy (phase sum ==
  // end-to-end latency bit-exactly in virtual time), folded per
  // (server, model) into this collector after each request. Owned by the
  // caller; must outlive Run. Null (the default) skips all charging — the
  // request path stays branch-plus-nothing.
  metrics::PhaseCollector* phases = nullptr;
};

// Configuration of one model-server instance.
struct ServerOptions {
  gpusim::Gpu::Options gpu;  // device spec + driver arbitration
  // Number of identical devices in the server (extension of the paper's
  // single-GPU scope, per its §7 future work). Clients are placed
  // round-robin; each device gets its own driver and, under Olympian, its
  // own scheduler.
  int num_gpus = 1;
  // Size of the shared inter-op thread pool (TF-Serving's threadPool).
  // Under Olympian, suspended gangs hold pool threads across quanta, so the
  // pool — not GPU memory — caps how many concurrent clients some models
  // can sustain (paper §4.3).
  std::size_t pool_threads = 300;
  // GPU streams per job; bounds a job's intra-request kernel concurrency.
  int streams_per_job = 2;
  graph::ExecutorOptions executor;
  // Deterministic fault schedule applied during Run (empty = no faults).
  fault::FaultPlan faults;
  // Graceful-degradation knobs: retries, circuit breaker, load shedding.
  // Defaults preserve the legacy fail-stop behaviour.
  DegradationOptions degradation;
  // Health-aware placement / failover / recovery. Off by default.
  FailoverOptions failover;
  // Metrics registry + sampler wiring. Off by default.
  ObservabilityOptions observability;
  // Master seed; every stochastic component derives its stream from it.
  std::uint64_t seed = 1;
};

// One client of the serving system: `num_batches` inference requests
// against `model` at batch size `batch` (the paper's default workload is 10
// back-to-back batches of 100).
//
// With `mean_interarrival` zero the client is closed-loop (paper style):
// each request is issued as soon as the previous one finishes. A positive
// value makes it open-loop: requests arrive by a Poisson process (an
// extension toward the paper's "more realistic workloads" future work) and
// per-request latency is recorded.
struct ClientSpec {
  std::string model;
  int batch = 100;
  int num_batches = 10;
  int weight = 1;
  int priority = 0;
  // Guaranteed minimum GPU share for the reservation policy (extension).
  double min_share = 0.0;
  sim::Duration mean_interarrival = sim::Duration::Zero();
  // Per-request deadline, measured from the request's arrival and covering
  // all retry attempts. Zero disables: requests run to completion. With a
  // deadline set, a request overrunning it is cancelled cooperatively and
  // reported as kTimedOut instead of stalling the client.
  sim::Duration deadline = sim::Duration::Zero();
};

// Per-client outcome of a workload run.
struct ClientResult {
  std::string name;
  gpusim::JobId job = gpusim::kNoJob;
  std::string model;
  int batch = 0;
  // Wall-clock from workload start to this client's last response.
  sim::Duration finish_time;
  // Total GPU duration (Figure 5 union) attributed to this client.
  sim::Duration gpu_duration;
  int batches_completed = 0;
  // Which device served this client (round-robin placement).
  std::size_t gpu_index = 0;
  // Per-request latency (arrival -> response), milliseconds. For
  // closed-loop clients the arrival is the previous response.
  std::vector<double> request_latency_ms;
  // Per-request terminal status, parallel to request_latency_ms.
  std::vector<RequestStatus> request_status;

  // Number of requests that ended in `s`.
  int CountStatus(RequestStatus s) const;
};

// A complete single-GPU serving experiment: environment, device, thread
// pool, executor, and clients. Mirrors how the paper runs every
// measurement: N concurrent clients issued against one TF-Serving process.
//
// Usage:
//   Experiment exp(options);
//   exp.SetHooks(&scheduler);              // omit for stock TF-Serving
//   auto results = exp.Run(clients);
class Experiment : private HealthObserver {
 public:
  explicit Experiment(ServerOptions options);
  // Cluster form: run on a caller-owned Environment so several servers
  // share one virtual clock. `env` must outlive the experiment. Everything
  // else — devices, pool, executors, failover — stays per-server.
  Experiment(ServerOptions options, sim::Environment& env);
  ~Experiment() override;

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  // Install a scheduler on device 0 (the common single-GPU case). Must be
  // called before Run; the hooks object must outlive the experiment.
  void SetHooks(graph::SchedulingHooks* hooks) { SetGpuHooks(0, hooks); }

  // Install a per-device scheduler (multi-GPU servers need one scheduler
  // per device — a token is a per-device grant).
  void SetGpuHooks(std::size_t gpu_index, graph::SchedulingHooks* hooks);

  sim::Environment& env() { return env_; }
  gpusim::Gpu& gpu() { return *gpus_[0]; }
  gpusim::Gpu& gpu(std::size_t i) { return *gpus_.at(i); }
  std::size_t num_gpus() const { return gpus_.size(); }
  graph::ThreadPool& pool() { return *pool_; }
  graph::Executor& executor() { return executor(0); }
  graph::Executor& executor(std::size_t gpu_index);

  // Loads a model onto a device (allocating its parameter memory there
  // once) and returns its graph. Called implicitly by Run.
  const graph::Graph& LoadModel(const std::string& name,
                                std::size_t gpu_index = 0);

  // Manual-workload API (used by the Batcher and custom drivers instead of
  // Run): create a job with streams and activation memory for up to
  // `max_batch` items. The context lives as long as the experiment.
  graph::JobContext& CreateJob(const std::string& model, int max_batch,
                               std::size_t gpu_index = 0);

  // Manual-workload API: drain the pool and run the simulation to
  // completion after the caller's own processes have been spawned. Note:
  // makespan() then reports the drain time of the event queue, which may
  // include disarmed timers firing as no-ops; measure request latencies at
  // the call sites for precise timings.
  void FinishManualRun();

  // Runs all clients concurrently from t=0 to completion. Throws
  // ServerStalled if progress stops (capacity exceeded) and
  // gpusim::OutOfDeviceMemory if activations do not fit.
  std::vector<ClientResult> Run(const std::vector<ClientSpec>& clients);

  // --- cluster serving API ------------------------------------------------
  // A Cluster drives N Experiments on one shared Environment through this
  // surface instead of Run(): stand the server up once, register tenants
  // (the cluster's clients, one slot per client that ever lands here), and
  // issue individual requests through the full RunRequest pipeline
  // (admission, breaker, health-aware placement, retries, device failover).
  //
  // StartServing = the setup Run() performs before spawning clients (bind
  // executors, stand up failover, arm the device-fault schedule); it marks
  // the experiment as running, so Run() and StartServing are exclusive.
  void StartServing();
  // Register one tenant: loads the model, creates its JobContext on the
  // next round-robin home device, and allocates activation memory — exactly
  // the per-client setup Run() performs. Returns the tenant index.
  std::size_t AddTenant(const ClientSpec& spec);
  // One request of tenant `tenant` through the RunRequest pipeline.
  // `arrival` anchors the deadline; `status` receives the terminal outcome.
  // `phases` (optional) continues the request's latency-anatomy account —
  // the cluster charges the router-side phases, this call charges the
  // server-side ones.
  sim::Task ServeTenantRequest(std::size_t tenant, sim::Rng& rng,
                               sim::TimePoint arrival, RequestStatus& status,
                               metrics::PhaseAccount* phases = nullptr);
  // Fold a tenant's meters into the retired table (call when its client
  // finishes, mirroring ClientProc's retirement).
  void RetireTenant(std::size_t tenant);
  // Stop the health monitor's probe loops so the shared event queue can
  // drain once traffic ends.
  void StopServing();
  // Shut the thread pool down (exiting workers drain on the next env run).
  void ShutdownPool();
  // Server-level health aggregate for the router: does any device accept
  // traffic right now?
  bool AnyUsableDevice() const;
  std::size_t num_tenants() const { return tenants_.size(); }

  // Post-run metrics.
  sim::Duration makespan() const { return makespan_; }
  // nvidia-smi-style utilization: GPU-busy fraction of the makespan.
  double utilization() const;
  // Fault / retry / degradation counters accumulated during Run.
  const metrics::ServingCounters& counters() const { return counters_; }
  // The fault injector armed for the last Run (nullptr when no faults).
  const fault::FaultInjector* injector() const { return injector_.get(); }
  // Health monitor / placer of the failover subsystem (nullptr unless
  // `failover.enabled`; valid during and after Run).
  const HealthMonitor* health() const { return health_.get(); }
  const Placer* placer() const { return placer_.get(); }

  // The JobContexts created for the last Run (for scheduler inspection).
  const std::vector<std::unique_ptr<graph::JobContext>>& job_contexts() const {
    return contexts_;
  }

 private:
  // Join state between one request's primary attempt and its hedge.
  struct HedgeState {
    explicit HedgeState(sim::Environment& env) : cv(env) {}
    bool primary_done = false;
    bool done = false;     // hedge attempt finished (or skipped)
    bool skipped = false;  // hedge never ran (primary won the race)
    bool won = false;      // hedge completed without cancellation
    graph::CancelToken* token = nullptr;  // hedge's in-flight token
    graph::JobContext* ctx = nullptr;
    std::size_t gpu = 0;
    // Causal identity of the request this hedge shadows, for tracing.
    std::uint64_t request_id = 0;
    std::int32_t attempt = 0;
    sim::CondVar cv;
  };

  Experiment(ServerOptions options, sim::Environment* env);

  // Run() setup stages, also used piecewise by the cluster API (pure code
  // motion out of Run so the single-server event sequence is unchanged).
  void BindExecutors();
  void SetupFailover(std::size_t expected_clients);
  void ArmFaults();

  sim::Task ClientProc(std::size_t client_index, graph::JobContext& ctx,
                       const graph::Graph& g, ClientSpec spec,
                       std::uint64_t seed, ClientResult& out);
  // One request attempt chain: admission -> breaker -> route -> run ->
  // retry loop. Writes the terminal status into `status`.
  sim::Task RunRequest(std::size_t client_index, graph::JobContext& primary_ctx,
                       const graph::Graph& g, const ClientSpec& spec,
                       sim::Rng& rng, sim::TimePoint arrival,
                       std::size_t primary_gpu, RequestStatus& status,
                       metrics::PhaseAccount* pa = nullptr);
  // Fires at `deadline`; cancels the run if it is still in flight. Holds a
  // shared_ptr so a watchdog outliving its request cannot dangle.
  sim::Task DeadlineWatchdog(std::shared_ptr<graph::CancelToken> token,
                             graph::JobContext* ctx, std::size_t gpu_index,
                             sim::TimePoint deadline);
  CircuitBreaker* BreakerFor(const std::string& model);

  // --- failover plumbing (active only when options_.failover.enabled) ----
  // serving::HealthObserver:
  void OnDeviceDown(std::size_t gpu) override;
  void OnDeviceReadmitted(std::size_t gpu) override;
  sim::Duration ParamsReloadCost(std::size_t gpu) const override;
  // Bring `spec.model` (and this client's JobContext) up on `gpu`, charging
  // reload + warm-up on the virtual clock for the first arrival; concurrent
  // arrivals await the load. `ok` is false on a transient alloc failure.
  sim::Task EnsureReplica(std::size_t client_index, const ClientSpec& spec,
                          std::size_t gpu, bool& ok);
  // Duplicate attempt on `gpu` while the primary runs on a degraded device.
  sim::Task HedgeProc(std::size_t client_index, const ClientSpec& spec,
                      const graph::Graph& g, std::size_t gpu,
                      std::shared_ptr<HedgeState> st);
  graph::JobContext* ClientContext(std::size_t client_index, std::size_t gpu);
  // Virtual-clock sampler: snapshots device/pool/health/scheduler state
  // into the observability registry every `sample_interval` until the last
  // client finishes. Read-only; never perturbs the simulation.
  sim::Task SamplerProc();
  void RegisterInFlight(std::size_t gpu, graph::CancelToken* token,
                        graph::JobContext* ctx);
  void DeregisterInFlight(std::size_t gpu, const graph::CancelToken* token);

  ServerOptions options_;
  // Owned in the standalone case, absent in the cluster case; env_ is the
  // single source of truth either way. Declared before env_ so the
  // reference binds to a constructed object.
  std::unique_ptr<sim::Environment> owned_env_;
  sim::Environment& env_;
  std::vector<std::unique_ptr<gpusim::Gpu>> gpus_;
  std::unique_ptr<graph::ThreadPool> pool_;
  std::vector<std::unique_ptr<graph::Executor>> executors_;
  std::vector<graph::SchedulingHooks*> hooks_;
  std::vector<std::uint64_t> executor_seeds_;
  std::unordered_map<std::string, std::unique_ptr<graph::Graph>> loaded_;
  // (gpu_index, model) pairs whose parameters are already resident.
  std::set<std::pair<std::size_t, std::string>> params_resident_;
  std::vector<std::unique_ptr<graph::JobContext>> contexts_;
  gpusim::JobId next_job_id_ = 0;
  sim::Duration makespan_;
  bool ran_ = false;
  metrics::ServingCounters counters_;
  std::unique_ptr<fault::FaultInjector> injector_;
  // Per-model circuit breakers (lazily created when the breaker is enabled).
  std::unordered_map<std::string, std::unique_ptr<CircuitBreaker>> breakers_;

  // --- failover state (allocated only when options_.failover.enabled) ----
  std::unique_ptr<HealthMonitor> health_;
  std::unique_ptr<Placer> placer_;
  // One JobContext per (client, device) the client has ever run on; the
  // primary is created eagerly at setup, replicas lazily on first route.
  std::map<std::pair<std::size_t, std::size_t>, graph::JobContext*>
      client_gpu_ctx_;
  struct InFlight {
    graph::CancelToken* token = nullptr;
    graph::JobContext* ctx = nullptr;
  };
  std::vector<std::vector<InFlight>> inflight_;  // per device
  // Clients still running; the last one out stops the health monitor's
  // probe loops so the event queue can drain.
  std::size_t remaining_clients_ = 0;

  // --- cluster serving state ---------------------------------------------
  struct Tenant {
    ClientSpec spec;
    graph::JobContext* ctx = nullptr;  // home-device context
    const graph::Graph* graph = nullptr;
    std::size_t primary_gpu = 0;
  };
  std::vector<Tenant> tenants_;
  bool serving_ = false;  // StartServing ran (cluster mode)

  // --- observability state ------------------------------------------------
  // Monotonic request-id source; every admission (retry, failover, hedge)
  // of one request reuses its id as the Chrome-trace flow id.
  std::uint64_t next_request_id_ = 0;
  // Clients still inside ClientProc; the sampler loop's stop condition
  // (kept distinct from remaining_clients_, which only exists under
  // failover).
  std::size_t clients_running_ = 0;
};

}  // namespace olympian::serving
