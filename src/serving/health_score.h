#pragma once

#include <algorithm>

#include "sim/time.h"

namespace olympian::serving {

// Knobs for the continuous gray-failure health score shared by the device
// HealthMonitor and the cluster Router. Off by default: with
// `enabled == false` no score is maintained and the binary health state
// machines behave exactly as before, so existing goldens stay byte-identical.
struct HealthScoreOptions {
  bool enabled = false;
  // Successful probe RTTs averaged into the learned baseline before the
  // RTT term starts contributing (score is err-term-only until then).
  int baseline_probes = 3;
  // EWMA smoothing factors (weight of the newest sample).
  double rtt_alpha = 0.3;
  double error_alpha = 0.3;
  // Blend between the RTT term and the error-rate term.
  double rtt_weight = 0.7;
  // Hysteresis thresholds driving healthy <-> degraded transitions:
  // degrade when score < degrade_below, recover when score >= recover_above.
  // The gap between them is what prevents flapping at the boundary.
  double degrade_below = 0.70;
  double recover_above = 0.85;
};

// Continuous health score in [0, 1] for one probed target (a device or a
// server), fed by probe outcomes and round-trip times:
//
//   score = rtt_weight  * min(1, baseline / ewma_rtt)
//         + (1 - rtt_weight) * (1 - err_ewma)
//
// where `baseline` is the mean of the first `baseline_probes` successful
// RTTs (a learned notion of "normal" for this target), `ewma_rtt` smooths
// successful RTTs, and `err_ewma` smooths the 0/1 failure indicator of
// every outcome. A fractional-capacity fault or jitter window inflates
// measured RTT and drives the RTT term down; probe timeouts drive the
// error term down. 1.0 = nominal, 0.0 = unresponsive.
//
// Pure accumulator: no virtual-clock access, no RNG, no events — scoring a
// trajectory adds zero scheduler activity, which is what lets the scored
// and unscored cluster runs share one event stream.
class HealthScore {
 public:
  HealthScore() = default;  // default options (disabled-tier smoothing)
  explicit HealthScore(const HealthScoreOptions& options) : options_(options) {}

  // Record one probe outcome; `rtt` is meaningful only when `ok`.
  void OnProbe(bool ok, sim::Duration rtt) {
    err_ewma_ = options_.error_alpha * (ok ? 0.0 : 1.0) +
                (1.0 - options_.error_alpha) * err_ewma_;
    if (!ok) return;
    const double r = static_cast<double>(rtt.nanos());
    if (baseline_count_ < options_.baseline_probes) {
      baseline_sum_ += r;
      ++baseline_count_;
      ewma_rtt_ = r;  // seed the EWMA while the baseline is learning
      if (baseline_count_ == options_.baseline_probes) {
        baseline_ = baseline_sum_ / static_cast<double>(baseline_count_);
      }
      return;
    }
    ewma_rtt_ =
        options_.rtt_alpha * r + (1.0 - options_.rtt_alpha) * ewma_rtt_;
  }

  // Forget everything (target went down / was readmitted): the baseline
  // re-learns, so a post-recovery "normal" can differ from the old one.
  void Reset() {
    baseline_ = 0.0;
    baseline_sum_ = 0.0;
    baseline_count_ = 0;
    ewma_rtt_ = 0.0;
    err_ewma_ = 0.0;
  }

  double score() const {
    const double err_term = 1.0 - err_ewma_;
    if (baseline_ <= 0.0 || ewma_rtt_ <= 0.0) {
      // RTT term not learned yet: treat it as nominal.
      return options_.rtt_weight + (1.0 - options_.rtt_weight) * err_term;
    }
    const double rtt_term = std::min(1.0, baseline_ / ewma_rtt_);
    return options_.rtt_weight * rtt_term +
           (1.0 - options_.rtt_weight) * err_term;
  }

  // Measured slowdown vs. the learned baseline (1.0 until learned). This
  // is what slowdown-triggered hedging keys on.
  double slowdown() const {
    return baseline_ > 0.0 && ewma_rtt_ > 0.0 ? ewma_rtt_ / baseline_ : 1.0;
  }

  bool baseline_learned() const { return baseline_ > 0.0; }

 private:
  HealthScoreOptions options_;
  double baseline_ = 0.0;      // mean of the first N successful RTTs (ns)
  double baseline_sum_ = 0.0;
  int baseline_count_ = 0;
  double ewma_rtt_ = 0.0;      // EWMA of successful RTTs (ns)
  double err_ewma_ = 0.0;      // EWMA of the 0/1 failure indicator
};

// Throws std::invalid_argument on out-of-range knobs (alphas outside
// (0, 1], weight outside [0, 1], thresholds outside (0, 1) or inverted).
void Validate(const HealthScoreOptions& options);

}  // namespace olympian::serving
