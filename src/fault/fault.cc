#include "fault/fault.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace olympian::fault {

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kKernelFailure:
      return "kernel-failure";
    case FaultKind::kDeviceHang:
      return "device-hang";
    case FaultKind::kDeviceReset:
      return "device-reset";
    case FaultKind::kAllocFault:
      return "alloc-fault";
    case FaultKind::kCapacityFault:
      return "capacity-fault";
  }
  return "unknown";
}

FaultPlan& FaultPlan::KernelFailure(sim::TimePoint at, gpusim::StreamId stream,
                                    std::size_t gpu_index) {
  events_.push_back(FaultEvent{.kind = FaultKind::kKernelFailure,
                               .at = at,
                               .gpu_index = gpu_index,
                               .stream = stream});
  return *this;
}

FaultPlan& FaultPlan::DeviceHang(sim::TimePoint at, sim::Duration duration,
                                 std::size_t gpu_index) {
  events_.push_back(FaultEvent{.kind = FaultKind::kDeviceHang,
                               .at = at,
                               .gpu_index = gpu_index,
                               .duration = duration});
  return *this;
}

FaultPlan& FaultPlan::DeviceReset(sim::TimePoint at, std::size_t gpu_index) {
  events_.push_back(
      FaultEvent{.kind = FaultKind::kDeviceReset, .at = at, .gpu_index = gpu_index});
  return *this;
}

FaultPlan& FaultPlan::DeviceReset(sim::TimePoint at, sim::Duration outage,
                                  std::size_t gpu_index) {
  events_.push_back(FaultEvent{.kind = FaultKind::kDeviceReset,
                               .at = at,
                               .gpu_index = gpu_index,
                               .duration = outage});
  return *this;
}

FaultPlan& FaultPlan::AllocFault(sim::TimePoint at, sim::Duration duration,
                                 std::size_t gpu_index) {
  events_.push_back(FaultEvent{.kind = FaultKind::kAllocFault,
                               .at = at,
                               .gpu_index = gpu_index,
                               .duration = duration});
  return *this;
}

FaultPlan& FaultPlan::CapacityFault(sim::TimePoint at, sim::Duration duration,
                                    double capacity, std::size_t gpu_index) {
  if (!(capacity > 0.0) || capacity > 1.0) {
    throw std::invalid_argument("capacity multiplier must be in (0, 1]");
  }
  events_.push_back(FaultEvent{.kind = FaultKind::kCapacityFault,
                               .at = at,
                               .gpu_index = gpu_index,
                               .duration = duration,
                               .capacity = capacity});
  return *this;
}

namespace {

// Draw `expected` Poisson arrivals (in expectation) uniformly over the
// horizon. Uniform placement of a Poisson-distributed count is an exact
// construction of a homogeneous Poisson process.
template <typename AddFn>
void DrawArrivals(sim::Rng& rng, double expected, sim::Duration horizon,
                  AddFn add) {
  if (expected <= 0.0) return;
  // Knuth's Poisson sampler; expected counts here are small (single digits).
  const double limit = std::exp(-expected);
  int count = 0;
  double p = 1.0;
  for (;;) {
    p *= rng.NextDouble();
    if (p <= limit) break;
    ++count;
  }
  for (int i = 0; i < count; ++i) {
    add(sim::TimePoint() + horizon * rng.NextDouble());
  }
}

}  // namespace

FaultPlan FaultPlan::Random(const RandomOptions& options, std::uint64_t seed) {
  if (options.num_gpus < 1 || options.streams_per_gpu < 1) {
    throw std::invalid_argument("Random fault plan needs >= 1 gpu and stream");
  }
  sim::Rng rng(seed);
  FaultPlan plan;
  DrawArrivals(rng, options.expected_kernel_failures, options.horizon,
               [&](sim::TimePoint at) {
                 const auto gpu = static_cast<std::size_t>(rng.UniformInt(
                     0, static_cast<std::int64_t>(options.num_gpus) - 1));
                 const auto stream =
                     rng.UniformInt(0, options.streams_per_gpu - 1);
                 plan.KernelFailure(at, stream, gpu);
               });
  DrawArrivals(rng, options.expected_hangs, options.horizon,
               [&](sim::TimePoint at) {
                 const auto gpu = static_cast<std::size_t>(rng.UniformInt(
                     0, static_cast<std::int64_t>(options.num_gpus) - 1));
                 plan.DeviceHang(
                     at, options.mean_hang * (-std::log(1.0 - rng.NextDouble())),
                     gpu);
               });
  DrawArrivals(rng, options.expected_resets, options.horizon,
               [&](sim::TimePoint at) {
                 const auto gpu = static_cast<std::size_t>(rng.UniformInt(
                     0, static_cast<std::int64_t>(options.num_gpus) - 1));
                 if (options.mean_reset_outage > sim::Duration::Zero()) {
                   plan.DeviceReset(at,
                                    options.mean_reset_outage *
                                        (-std::log(1.0 - rng.NextDouble())),
                                    gpu);
                 } else {
                   plan.DeviceReset(at, gpu);
                 }
               });
  DrawArrivals(rng, options.expected_alloc_faults, options.horizon,
               [&](sim::TimePoint at) {
                 const auto gpu = static_cast<std::size_t>(rng.UniformInt(
                     0, static_cast<std::int64_t>(options.num_gpus) - 1));
                 plan.AllocFault(at,
                                 options.mean_alloc_window *
                                     (-std::log(1.0 - rng.NextDouble())),
                                 gpu);
               });
  DrawArrivals(rng, options.expected_capacity_faults, options.horizon,
               [&](sim::TimePoint at) {
                 const auto gpu = static_cast<std::size_t>(rng.UniformInt(
                     0, static_cast<std::int64_t>(options.num_gpus) - 1));
                 const double cap =
                     options.capacity_low +
                     (options.capacity_high - options.capacity_low) *
                         rng.NextDouble();
                 plan.CapacityFault(at,
                                    options.mean_capacity_window *
                                        (-std::log(1.0 - rng.NextDouble())),
                                    cap, gpu);
               });
  // Deterministic application order regardless of draw order.
  std::stable_sort(plan.events_.begin(), plan.events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

const char* ToString(ServerFaultKind kind) {
  switch (kind) {
    case ServerFaultKind::kCrash:
      return "server-crash";
    case ServerFaultKind::kHang:
      return "server-hang";
    case ServerFaultKind::kPartition:
      return "partition";
    case ServerFaultKind::kCapacityLoss:
      return "capacity-loss";
    case ServerFaultKind::kJitter:
      return "jitter";
  }
  return "unknown";
}

const char* ToString(PartitionDirection d) {
  switch (d) {
    case PartitionDirection::kToServer:
      return "to-server";
    case PartitionDirection::kFromServer:
      return "from-server";
    case PartitionDirection::kBoth:
      return "both";
  }
  return "unknown";
}

ServerFaultPlan& ServerFaultPlan::Crash(sim::TimePoint at, sim::Duration outage,
                                        std::size_t server) {
  events_.push_back(ServerFaultEvent{.kind = ServerFaultKind::kCrash,
                                     .at = at,
                                     .server = server,
                                     .duration = outage});
  return *this;
}

ServerFaultPlan& ServerFaultPlan::Hang(sim::TimePoint at, sim::Duration duration,
                                       std::size_t server) {
  events_.push_back(ServerFaultEvent{.kind = ServerFaultKind::kHang,
                                     .at = at,
                                     .server = server,
                                     .duration = duration});
  return *this;
}

ServerFaultPlan& ServerFaultPlan::Partition(sim::TimePoint at,
                                            sim::Duration window,
                                            std::size_t server,
                                            PartitionDirection direction) {
  events_.push_back(ServerFaultEvent{.kind = ServerFaultKind::kPartition,
                                     .at = at,
                                     .server = server,
                                     .duration = window,
                                     .direction = direction});
  return *this;
}

ServerFaultPlan& ServerFaultPlan::CapacityLoss(sim::TimePoint at,
                                               sim::Duration window,
                                               std::size_t server,
                                               double capacity) {
  if (!(capacity > 0.0) || capacity > 1.0) {
    throw std::invalid_argument("capacity multiplier must be in (0, 1]");
  }
  events_.push_back(ServerFaultEvent{.kind = ServerFaultKind::kCapacityLoss,
                                     .at = at,
                                     .server = server,
                                     .duration = window,
                                     .capacity = capacity});
  return *this;
}

ServerFaultPlan& ServerFaultPlan::Jitter(sim::TimePoint at,
                                         sim::Duration window,
                                         std::size_t server, double factor) {
  if (factor < 1.0) {
    throw std::invalid_argument("jitter factor must be >= 1");
  }
  events_.push_back(ServerFaultEvent{.kind = ServerFaultKind::kJitter,
                                     .at = at,
                                     .server = server,
                                     .duration = window,
                                     .factor = factor});
  return *this;
}

ServerFaultPlan ServerFaultPlan::Random(const RandomOptions& options,
                                        std::uint64_t seed) {
  if (options.num_servers < 1) {
    throw std::invalid_argument("Random server fault plan needs >= 1 server");
  }
  sim::Rng rng(seed);
  ServerFaultPlan plan;
  const auto draw_server = [&] {
    return static_cast<std::size_t>(rng.UniformInt(
        0, static_cast<std::int64_t>(options.num_servers) - 1));
  };
  DrawArrivals(rng, options.expected_crashes, options.horizon,
               [&](sim::TimePoint at) {
                 plan.Crash(at,
                            options.mean_crash_outage *
                                (-std::log(1.0 - rng.NextDouble())),
                            draw_server());
               });
  DrawArrivals(rng, options.expected_hangs, options.horizon,
               [&](sim::TimePoint at) {
                 plan.Hang(at,
                           options.mean_hang *
                               (-std::log(1.0 - rng.NextDouble())),
                           draw_server());
               });
  DrawArrivals(rng, options.expected_partitions, options.horizon,
               [&](sim::TimePoint at) {
                 const auto dir = static_cast<PartitionDirection>(
                     rng.UniformInt(0, 2));
                 plan.Partition(at,
                                options.mean_partition *
                                    (-std::log(1.0 - rng.NextDouble())),
                                draw_server(), dir);
               });
  DrawArrivals(rng, options.expected_capacity_losses, options.horizon,
               [&](sim::TimePoint at) {
                 const double cap =
                     options.capacity_low +
                     (options.capacity_high - options.capacity_low) *
                         rng.NextDouble();
                 plan.CapacityLoss(at,
                                   options.mean_capacity_window *
                                       (-std::log(1.0 - rng.NextDouble())),
                                   draw_server(), cap);
               });
  DrawArrivals(rng, options.expected_jitter, options.horizon,
               [&](sim::TimePoint at) {
                 const double factor =
                     options.jitter_factor_low +
                     (options.jitter_factor_high - options.jitter_factor_low) *
                         rng.NextDouble();
                 plan.Jitter(at,
                             options.mean_jitter_window *
                                 (-std::log(1.0 - rng.NextDouble())),
                             draw_server(), factor);
               });
  std::stable_sort(plan.events_.begin(), plan.events_.end(),
                   [](const ServerFaultEvent& a, const ServerFaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

FaultInjector::FaultInjector(sim::Environment& env,
                             std::vector<gpusim::Gpu*> gpus, FaultPlan plan,
                             metrics::ServingCounters* counters,
                             metrics::Tracer* tracer)
    : env_(env),
      gpus_(std::move(gpus)),
      plan_(std::move(plan)),
      counters_(counters),
      tracer_(tracer) {
  for (const FaultEvent& e : plan_.events()) {
    if (e.gpu_index >= gpus_.size()) {
      throw std::out_of_range("FaultPlan targets gpu " +
                              std::to_string(e.gpu_index) + " but only " +
                              std::to_string(gpus_.size()) + " exist");
    }
  }
}

void FaultInjector::Arm() {
  if (armed_) throw std::logic_error("FaultInjector::Arm called twice");
  armed_ = true;
  const auto& events = plan_.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].at < env_.Now()) continue;  // already in the past
    env_.ScheduleCallbackAt(events[i].at, &FaultInjector::Trampoline, this, i);
  }
}

void FaultInjector::Trampoline(void* ctx, std::uint64_t index) {
  auto* self = static_cast<FaultInjector*>(ctx);
  self->Apply(self->plan_.events()[index]);
}

void FaultInjector::Apply(const FaultEvent& e) {
  gpusim::Gpu& gpu = *gpus_[e.gpu_index];
  switch (e.kind) {
    case FaultKind::kKernelFailure:
      gpu.InjectKernelFailure(e.stream);
      if (counters_ != nullptr) ++counters_->kernel_failures_injected;
      break;
    case FaultKind::kDeviceHang:
      gpu.Hang(e.duration);
      if (counters_ != nullptr) ++counters_->device_hangs;
      break;
    case FaultKind::kDeviceReset:
      gpu.Reset(e.duration);
      if (counters_ != nullptr) ++counters_->device_resets;
      break;
    case FaultKind::kAllocFault:
      gpu.InjectAllocFault(e.duration);
      if (counters_ != nullptr) ++counters_->alloc_fault_windows;
      break;
    case FaultKind::kCapacityFault:
      gpu.ThrottleCapacity(e.capacity, e.duration);
      if (counters_ != nullptr) ++counters_->capacity_fault_windows;
      break;
  }
  ++events_applied_;
  if (tracer_ != nullptr && !tracer_->full()) {
    const char* name = tracer_->Intern(std::string(ToString(e.kind)) +
                                       "@gpu" + std::to_string(e.gpu_index));
    if (e.duration > sim::Duration::Zero()) {
      tracer_->AddSpan("fault", name, metrics::Tracer::kFaultTrack, e.at,
                       e.at + e.duration);
    } else {
      tracer_->AddInstant("fault", name, metrics::Tracer::kFaultTrack, e.at);
    }
  }
}

}  // namespace olympian::fault
