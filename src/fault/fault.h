#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/gpu.h"
#include "metrics/counters.h"
#include "metrics/trace.h"
#include "sim/environment.h"
#include "sim/random.h"
#include "sim/time.h"

namespace olympian::fault {

// What goes wrong. All faults are device-level; the serving layers above
// convert them into per-request outcomes (timed_out / failed_retried / ...).
enum class FaultKind : std::uint8_t {
  // The next kernel to retire on `stream` of device `gpu_index` retires
  // with an error (a launch/exec failure attributed to one kernel).
  kKernelFailure,
  // The device's driver stops issuing work for `duration`; in-flight waves
  // complete, queued kernels wait (a wedged channel, recovered by watchdog).
  kDeviceHang,
  // Full device reset: all queued kernels fail immediately, executing
  // kernels fail as their in-flight waves drain.
  kDeviceReset,
  // AllocateMemory on the device fails transiently for `duration`.
  kAllocFault,
  // Gray failure: the device keeps serving but at `capacity` (in (0, 1])
  // of its normal speed for `duration` — thermal throttle, ECC remap,
  // partial SM loss. Kernel wave durations stretch by 1/capacity; nothing
  // is push-announced, so detection must come from measured latency.
  kCapacityFault,
};

const char* ToString(FaultKind kind);

// One scheduled fault.
struct FaultEvent {
  FaultKind kind = FaultKind::kDeviceHang;
  sim::TimePoint at;
  std::size_t gpu_index = 0;
  gpusim::StreamId stream = -1;  // kKernelFailure only
  // kDeviceHang / kAllocFault / kCapacityFault: window length.
  // kDeviceReset: outage during which the device stays down (zero =
  // instant reset, legacy semantics).
  sim::Duration duration;
  // kCapacityFault only: fractional speed multiplier in (0, 1].
  double capacity = 1.0;
};

// How long recovery takes once a reset outage ends. Consumed by the serving
// layer's health monitor when it orchestrates readmission: driver re-init,
// parameter reload over PCIe, then a warm-up before traffic resumes.
struct RecoveryOptions {
  sim::Duration driver_reinit = sim::Duration::Millis(20);
  // Host-to-device bandwidth used to charge parameter reload time
  // (resident_mb / 1024 / pcie_gbps seconds).
  double pcie_gbps = 12.0;
  // Fixed warm-up pause after reload before the device serves traffic again.
  sim::Duration warmup = sim::Duration::Millis(5);
  // Heartbeat probes that must succeed during warm-up before readmission.
  int warmup_probes = 2;
};

// A declarative schedule of faults on the virtual clock. Build one with the
// fluent adders (chainable) or generate one stochastically — but
// deterministically — from a seed with `Random`. The plan is pure data; the
// FaultInjector applies it to live devices.
class FaultPlan {
 public:
  FaultPlan& KernelFailure(sim::TimePoint at, gpusim::StreamId stream,
                           std::size_t gpu_index = 0);
  FaultPlan& DeviceHang(sim::TimePoint at, sim::Duration duration,
                        std::size_t gpu_index = 0);
  FaultPlan& DeviceReset(sim::TimePoint at, std::size_t gpu_index = 0);
  // Reset with a down window: submissions fail fast until `outage` elapses,
  // then the device signals completion to its health listener.
  FaultPlan& DeviceReset(sim::TimePoint at, sim::Duration outage,
                         std::size_t gpu_index);
  FaultPlan& AllocFault(sim::TimePoint at, sim::Duration duration,
                        std::size_t gpu_index = 0);
  // Fractional-capacity window: the device runs at `capacity` (in (0, 1])
  // of normal speed for `duration`.
  FaultPlan& CapacityFault(sim::TimePoint at, sim::Duration duration,
                           double capacity, std::size_t gpu_index = 0);

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  // Expected fault counts over a horizon; Poisson arrivals per kind.
  struct RandomOptions {
    sim::Duration horizon = sim::Duration::Seconds(10.0);
    std::size_t num_gpus = 1;
    // Streams to target for kernel failures (round-robin over [0, n)).
    std::int64_t streams_per_gpu = 2;
    double expected_kernel_failures = 0.0;
    double expected_hangs = 0.0;
    sim::Duration mean_hang = sim::Duration::Millis(20);
    double expected_resets = 0.0;
    // Mean down-window per reset; zero keeps legacy instant resets (and
    // draws no extra random number, preserving existing plans bit-for-bit).
    sim::Duration mean_reset_outage = sim::Duration::Zero();
    double expected_alloc_faults = 0.0;
    sim::Duration mean_alloc_window = sim::Duration::Millis(10);
    // Fractional-capacity windows; zero expected events draws no extra
    // random numbers, preserving existing plans bit-for-bit.
    double expected_capacity_faults = 0.0;
    sim::Duration mean_capacity_window = sim::Duration::Millis(200);
    // Multiplier drawn uniformly from [capacity_low, capacity_high].
    double capacity_low = 0.25;
    double capacity_high = 0.75;
  };

  // Draw a plan from `seed`: same seed, same plan, bit-for-bit — fault
  // injection must never break the simulator's reproducibility guarantee.
  static FaultPlan Random(const RandomOptions& options, std::uint64_t seed);

 private:
  std::vector<FaultEvent> events_;
};

// --- server-level faults ----------------------------------------------------
//
// Whole-server failure modes for the cluster layer: the unit of failure is
// a serving process (all of its devices at once) or the network path
// between the front-end router and one server. Like FaultPlan, a
// ServerFaultPlan is pure data on the virtual clock; the cluster layer owns
// the applier (this library cannot depend on serving).

enum class ServerFaultKind : std::uint8_t {
  // Process crash: every device of the server resets and submissions fail
  // fast for `duration`; the process restarts when the outage ends and the
  // server's own recovery pipeline (driver re-init, reload, warm-up) runs
  // before it takes traffic again.
  kCrash,
  // Stop-the-world hang: the process stays up but stops answering — every
  // device hangs for `duration` and router probes time out.
  kHang,
  // Asymmetric network partition between the router and the server for
  // `duration`: kToServer drops requests and probes on the way in,
  // kFromServer drops responses on the way out, kBoth drops both.
  kPartition,
  // Gray failure: every device of the server runs at `capacity` (in
  // (0, 1]) of normal speed for `duration`. The server stays up and keeps
  // answering probes — only measured latency reveals the degradation.
  kCapacityLoss,
  // Gray failure: network jitter between the router and the server —
  // every router<->server hop (requests, responses, probes) is stretched
  // by `factor` (>= 1) for `duration`. Nothing is dropped.
  kJitter,
};

const char* ToString(ServerFaultKind kind);

enum class PartitionDirection : std::uint8_t { kToServer, kFromServer, kBoth };

const char* ToString(PartitionDirection d);

struct ServerFaultEvent {
  ServerFaultKind kind = ServerFaultKind::kCrash;
  sim::TimePoint at;
  std::size_t server = 0;
  sim::Duration duration;  // outage / hang / partition / gray window length
  PartitionDirection direction = PartitionDirection::kBoth;  // kPartition only
  double capacity = 1.0;  // kCapacityLoss only: speed multiplier in (0, 1]
  double factor = 1.0;    // kJitter only: hop-delay multiplier >= 1
};

// Declarative schedule of server-level faults; fluent adders or a seeded
// stochastic generator, mirroring FaultPlan.
class ServerFaultPlan {
 public:
  ServerFaultPlan& Crash(sim::TimePoint at, sim::Duration outage,
                         std::size_t server);
  ServerFaultPlan& Hang(sim::TimePoint at, sim::Duration duration,
                        std::size_t server);
  ServerFaultPlan& Partition(sim::TimePoint at, sim::Duration window,
                             std::size_t server,
                             PartitionDirection direction);
  // Gray faults: fractional capacity on every device of `server`, and
  // network jitter stretching router<->server hops by `factor`.
  ServerFaultPlan& CapacityLoss(sim::TimePoint at, sim::Duration window,
                                std::size_t server, double capacity);
  ServerFaultPlan& Jitter(sim::TimePoint at, sim::Duration window,
                          std::size_t server, double factor);

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  const std::vector<ServerFaultEvent>& events() const { return events_; }

  struct RandomOptions {
    sim::Duration horizon = sim::Duration::Seconds(10.0);
    std::size_t num_servers = 2;
    double expected_crashes = 0.0;
    sim::Duration mean_crash_outage = sim::Duration::Millis(400);
    double expected_hangs = 0.0;
    sim::Duration mean_hang = sim::Duration::Millis(50);
    double expected_partitions = 0.0;
    sim::Duration mean_partition = sim::Duration::Millis(100);
    // Gray faults; zero expected events draws no extra random numbers,
    // preserving existing plans bit-for-bit.
    double expected_capacity_losses = 0.0;
    sim::Duration mean_capacity_window = sim::Duration::Millis(300);
    double capacity_low = 0.25;   // multiplier drawn uniformly from
    double capacity_high = 0.75;  // [capacity_low, capacity_high]
    double expected_jitter = 0.0;
    sim::Duration mean_jitter_window = sim::Duration::Millis(200);
    double jitter_factor_low = 2.0;   // factor drawn uniformly from
    double jitter_factor_high = 8.0;  // [jitter_factor_low, jitter_factor_high]
  };

  // Draw a plan from `seed`: same seed, same plan, bit-for-bit.
  static ServerFaultPlan Random(const RandomOptions& options,
                                std::uint64_t seed);

 private:
  std::vector<ServerFaultEvent> events_;
};

// Applies a FaultPlan to live devices at the scheduled virtual times.
// Construct it after the Environment and Gpus, then call Arm() before (or
// during) the run; events before the current time are dropped. Counters and
// tracer spans (on metrics::Tracer::kFaultTrack) are optional.
class FaultInjector {
 public:
  FaultInjector(sim::Environment& env, std::vector<gpusim::Gpu*> gpus,
                FaultPlan plan, metrics::ServingCounters* counters = nullptr,
                metrics::Tracer* tracer = nullptr);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedule every future event of the plan on the virtual clock.
  void Arm();

  std::uint64_t events_applied() const { return events_applied_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  void Apply(const FaultEvent& e);
  static void Trampoline(void* ctx, std::uint64_t index);

  sim::Environment& env_;
  std::vector<gpusim::Gpu*> gpus_;
  FaultPlan plan_;
  metrics::ServingCounters* counters_;
  metrics::Tracer* tracer_;
  bool armed_ = false;
  std::uint64_t events_applied_ = 0;
};

}  // namespace olympian::fault
