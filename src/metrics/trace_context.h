#pragma once

#include <cstdint>

namespace olympian::metrics {

// Per-request causal identity, threaded from serving::Experiment through
// Placer -> Executor -> Scheduler -> gpusim::Gpu via graph::JobContext.
//
// Propagation rules:
//  * `request` is assigned once per client request by the serving layer
//    (monotonic, 1-based; 0 means "no tracing identity") and is reused
//    verbatim by every retry, failover re-admission, and hedge of that
//    request. It doubles as the Chrome-trace flow id, so everything a
//    request caused renders as one arrow chain across device tracks.
//  * `attempt` counts admissions of this request (0-based); hedges carry
//    the attempt number of the primary attempt they shadow, with `hedge`
//    set so exporters can label the speculative leg.
//
// POD by design: copied into JobContext on the hot path, never allocated.
struct TraceContext {
  std::uint64_t request = 0;  // 0 => untraced
  std::int32_t attempt = 0;
  bool hedge = false;
};

}  // namespace olympian::metrics
