#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace olympian::metrics {

// One (key, value) label pair; a metric name plus a distinct label set is
// one time series in the Prometheus data model.
using Label = std::pair<std::string, std::string>;
using Labels = std::vector<Label>;

// Bucket layout for MetricRegistry::Histogram: upper bounds grow
// geometrically from `first_bound` by `growth` per bucket, giving constant
// relative error across many orders of magnitude with a few dozen buckets.
// The defaults cover 1us .. ~18 minutes when observing milliseconds.
// (Namespace-scope rather than nested so its defaults are complete before
// MetricRegistry's inline default arguments need them.)
struct HistogramOptions {
  double first_bound = 0.001;
  double growth = 1.6;
  int num_buckets = 44;
};

// Labeled metric registry: counters, gauges, log-bucketed histograms, and
// windowed time series keyed by (name, labels).
//
// Usage pattern: look a handle up once (Get* allocates on first use and
// returns a reference that is stable for the registry's lifetime), then
// hit the handle on the hot path — Counter::Inc / Histogram::Observe /
// TimeSeries::Sample are branch-plus-store cheap and allocation-free apart
// from amortized vector growth, which callers avoid by reserving.
//
// Exports: Prometheus text exposition format (WritePrometheus) and a
// compact JSON timeline of the sampled series (WriteJsonTimeline), the
// latter matching what bench::TimelineJson embeds into BENCH_*.json.
//
// Storage is a std::map over rendered keys, so iteration — and therefore
// every export — is deterministically ordered regardless of registration
// order.
class MetricRegistry {
 public:
  // Monotonic counter.
  class Counter {
   public:
    void Inc(std::uint64_t n = 1) { value_ += n; }
    // Bridge entry point: overwrite with an externally maintained monotonic
    // value (e.g. a ServingCounters field). Idempotent, so periodic
    // re-exports never double-count.
    void Set(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }

   private:
    std::uint64_t value_ = 0;
  };

  // Instantaneous value.
  class Gauge {
   public:
    void Set(double v) { value_ = v; }
    void Add(double d) { value_ += d; }
    double value() const { return value_; }

   private:
    double value_ = 0.0;
  };

  // Log-bucketed histogram over HistogramOptions' geometric bucket layout.
  class Histogram {
   public:
    using Options = HistogramOptions;
    explicit Histogram(const Options& opts = Options());

    void Observe(double v);

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return min_; }
    double max() const { return max_; }
    // Upper bounds, one per finite bucket; counts_ has one extra overflow
    // (+Inf) slot at the end. Bucket counts are NON-cumulative here; the
    // Prometheus export accumulates.
    const std::vector<double>& bounds() const { return bounds_; }
    const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
    // Quantile estimate (q in [0,1]) by linear interpolation inside the
    // containing bucket, clamped to the observed min/max.
    double Quantile(double q) const;

    // Folds `src`'s observations into this histogram bucket-wise. Both
    // histograms must share a bucket layout (throws std::invalid_argument
    // otherwise — merging across layouts would smear counts).
    void MergeFrom(const Histogram& src);

   private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow)
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
  };

  // Append-only series of (virtual time, value) samples, written by the
  // sampler process on its virtual-clock cadence.
  class TimeSeries {
   public:
    TimeSeries() { points_.reserve(kReserve); }
    void Sample(sim::TimePoint t, double v) {
      points_.emplace_back(t.nanos(), v);
    }
    const std::vector<std::pair<std::int64_t, double>>& points() const {
      return points_;
    }
    bool empty() const { return points_.empty(); }
    double last() const { return points_.empty() ? 0.0 : points_.back().second; }
    // Appends `src`'s samples after this series' own (no re-sorting: merged
    // series are expected to come from disjoint label sets or consecutive
    // time ranges).
    void MergeFrom(const TimeSeries& src) {
      points_.insert(points_.end(), src.points_.begin(), src.points_.end());
    }

   private:
    static constexpr std::size_t kReserve = 1024;
    std::vector<std::pair<std::int64_t, double>> points_;
  };

  // Lookup-or-create. References are stable for the registry's lifetime.
  Counter& GetCounter(std::string_view name, const Labels& labels = {});
  Gauge& GetGauge(std::string_view name, const Labels& labels = {});
  Histogram& GetHistogram(
      std::string_view name, const Labels& labels = {},
      const Histogram::Options& opts = Histogram::Options());
  TimeSeries& GetSeries(std::string_view name, const Labels& labels = {});

  // Folds every instrument of `src` into this registry, splicing `extra`
  // labels into each key (e.g. {{"server","3"}} qualifies per-server deltas
  // before they land in a shared export). Counters add, gauges overwrite,
  // histograms merge bucket-wise (layouts must match), and time series
  // append their samples. Deterministic: `src` iterates in key order.
  void MergeFrom(const MetricRegistry& src, const Labels& extra = {});

  // Lookup-only (nullptr when absent); for tests and report builders.
  const Counter* FindCounter(std::string_view name,
                             const Labels& labels = {}) const;
  const Gauge* FindGauge(std::string_view name,
                         const Labels& labels = {}) const;
  const Histogram* FindHistogram(std::string_view name,
                                 const Labels& labels = {}) const;
  const TimeSeries* FindSeries(std::string_view name,
                               const Labels& labels = {}) const;

  // Deterministically ordered views over every registered instrument; the
  // string is the rendered label block (`{k="v",...}` or empty).
  std::vector<std::tuple<std::string, std::string, const Counter*>>
  Counters() const;
  std::vector<std::tuple<std::string, std::string, const TimeSeries*>>
  Series() const;

  // Prometheus text exposition format 0.0.4: counters as `_total`-style
  // monotonic values, gauges, histograms with cumulative `_bucket{le=...}`
  // rows ending in `+Inf` plus `_sum`/`_count`, and each time series'
  // latest sample as a gauge.
  void WritePrometheus(std::ostream& os) const;

  // Compact JSON timeline: {"series":[{"name":...,"labels":{...},
  // "points":[[t_ns,value],...]},...]} — the machine-readable companion of
  // the sampler output, consumed by bench::TimelineJson and the tour
  // example.
  void WriteJsonTimeline(std::ostream& os) const;

 private:
  struct Key {
    std::string name;
    std::string labels;  // rendered `{k="v",...}`, empty when unlabeled
    auto operator<=>(const Key&) const = default;
  };
  static std::string RenderLabels(const Labels& labels);

  template <typename T, typename... Args>
  T& GetOrCreate(std::map<Key, std::unique_ptr<T>>& family,
                 std::string_view name, const Labels& labels, Args&&... args);
  template <typename T>
  const T* Find(const std::map<Key, std::unique_ptr<T>>& family,
                std::string_view name, const Labels& labels) const;

  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
  std::map<Key, std::unique_ptr<TimeSeries>> series_;
};

}  // namespace olympian::metrics
