#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/time.h"

namespace olympian::metrics {

// Measures the union of busy intervals of a resource in virtual time.
//
// Callers bracket activity with OnBegin/OnEnd; overlapping activations are
// merged: the meter counts time during which the activation count is > 0.
// This is exactly the paper's "GPU duration" (Figure 5): the total time that
// at least one node of a DNN runs on the GPU.
class BusyMeter {
 public:
  // A unit of activity started at `now`.
  void OnBegin(sim::TimePoint now) {
    if (depth_ == 0) busy_since_ = now;
    ++depth_;
  }

  // A unit of activity ended at `now`.
  void OnEnd(sim::TimePoint now) {
    if (depth_ == 0) throw std::logic_error("BusyMeter::OnEnd without OnBegin");
    --depth_;
    if (depth_ == 0) total_ += now - busy_since_;
  }

  // Total busy duration up to `now` (includes the open interval, if any).
  sim::Duration Total(sim::TimePoint now) const {
    sim::Duration t = total_;
    if (depth_ > 0) t += now - busy_since_;
    return t;
  }

  bool busy() const { return depth_ > 0; }
  std::int64_t depth() const { return depth_; }

 private:
  std::int64_t depth_ = 0;
  sim::TimePoint busy_since_;
  sim::Duration total_;
};

}  // namespace olympian::metrics
