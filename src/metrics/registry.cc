#include "metrics/registry.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace olympian::metrics {

// ---------------------------------------------------------------------------
// Histogram

MetricRegistry::Histogram::Histogram(const Options& opts) {
  bounds_.reserve(static_cast<std::size_t>(opts.num_buckets));
  double bound = opts.first_bound;
  for (int i = 0; i < opts.num_buckets; ++i) {
    bounds_.push_back(bound);
    bound *= opts.growth;
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void MetricRegistry::Histogram::Observe(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
}

void MetricRegistry::Histogram::MergeFrom(const Histogram& src) {
  if (bounds_ != src.bounds_) {
    throw std::invalid_argument(
        "Histogram::MergeFrom: bucket layouts differ; merging histograms "
        "with different bounds would smear counts");
  }
  if (src.count_ == 0) return;
  min_ = count_ == 0 ? src.min_ : std::min(min_, src.min_);
  max_ = count_ == 0 ? src.max_ : std::max(max_, src.max_);
  count_ += src.count_;
  sum_ += src.sum_;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += src.counts_[i];
}

double MetricRegistry::Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double lo_seen = static_cast<double>(seen);
    seen += counts_[i];
    if (static_cast<double>(seen) < rank) continue;
    // Interpolate inside bucket i between its lower and upper bound.
    const double lower = i == 0 ? min_ : bounds_[i - 1];
    const double upper = i < bounds_.size() ? bounds_[i] : max_;
    const double frac =
        counts_[i] == 0
            ? 0.0
            : (rank - lo_seen) / static_cast<double>(counts_[i]);
    return std::clamp(lower + frac * (upper - lower), min_, max_);
  }
  return max_;
}

// ---------------------------------------------------------------------------
// Registry plumbing

std::string MetricRegistry::RenderLabels(const Labels& labels) {
  if (labels.empty()) return {};
  // Sorted so {a=1,b=2} and {b=2,a=1} are the same series.
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : sorted) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    for (const char c : v) {
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
  }
  out += '}';
  return out;
}

namespace {

// Splits a rendered label block `{k="v",...}` into its `k="v"` items.
// Values can contain commas and escaped quotes, so the scan is quote-aware.
std::vector<std::string> SplitLabelItems(const std::string& rendered) {
  std::vector<std::string> items;
  if (rendered.size() < 2) return items;  // "" or "{}"
  std::size_t start = 1;  // past '{'
  bool in_quotes = false;
  for (std::size_t i = 1; i + 1 < rendered.size(); ++i) {
    const char c = rendered[i];
    if (in_quotes) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_quotes = false;
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      items.push_back(rendered.substr(start, i - start));
      start = i + 1;
    }
  }
  items.push_back(rendered.substr(start, rendered.size() - 1 - start));
  return items;
}

// Merges two rendered label blocks into one, keeping items sorted (label
// keys are [a-zA-Z0-9_]* and '=' sorts below all of them, so comparing
// whole `k="v"` items orders by key exactly as RenderLabels does).
std::string SpliceLabels(const std::string& a, const std::string& b) {
  if (a.empty() || a == "{}") return b;
  if (b.empty() || b == "{}") return a;
  std::vector<std::string> items = SplitLabelItems(a);
  const std::vector<std::string> extra = SplitLabelItems(b);
  items.insert(items.end(), extra.begin(), extra.end());
  std::sort(items.begin(), items.end());
  std::string out = "{";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ',';
    out += items[i];
  }
  out += '}';
  return out;
}

}  // namespace

void MetricRegistry::MergeFrom(const MetricRegistry& src, const Labels& extra) {
  const std::string extra_rendered = RenderLabels(extra);
  for (const auto& [key, c] : src.counters_) {
    Key merged{key.name, SpliceLabels(key.labels, extra_rendered)};
    auto it = counters_.find(merged);
    if (it == counters_.end()) {
      it = counters_.emplace(std::move(merged), std::make_unique<Counter>())
               .first;
    }
    it->second->Inc(c->value());
  }
  for (const auto& [key, g] : src.gauges_) {
    Key merged{key.name, SpliceLabels(key.labels, extra_rendered)};
    auto it = gauges_.find(merged);
    if (it == gauges_.end()) {
      it = gauges_.emplace(std::move(merged), std::make_unique<Gauge>()).first;
    }
    it->second->Set(g->value());
  }
  for (const auto& [key, h] : src.histograms_) {
    Key merged{key.name, SpliceLabels(key.labels, extra_rendered)};
    auto it = histograms_.find(merged);
    if (it == histograms_.end()) {
      // Clone the source's bucket layout so the merge below can't throw on
      // a fresh destination. Histogram's public ctor rebuilds from Options;
      // copy-construct instead to take the exact bounds.
      it = histograms_
               .emplace(std::move(merged), std::make_unique<Histogram>(*h))
               .first;
      // The copy already holds src's counts; nothing left to fold in.
      continue;
    }
    it->second->MergeFrom(*h);
  }
  for (const auto& [key, s] : src.series_) {
    Key merged{key.name, SpliceLabels(key.labels, extra_rendered)};
    auto it = series_.find(merged);
    if (it == series_.end()) {
      it = series_.emplace(std::move(merged), std::make_unique<TimeSeries>())
               .first;
    }
    it->second->MergeFrom(*s);
  }
}

template <typename T, typename... Args>
T& MetricRegistry::GetOrCreate(std::map<Key, std::unique_ptr<T>>& family,
                               std::string_view name, const Labels& labels,
                               Args&&... args) {
  Key key{std::string(name), RenderLabels(labels)};
  auto it = family.find(key);
  if (it == family.end()) {
    it = family
             .emplace(std::move(key),
                      std::make_unique<T>(std::forward<Args>(args)...))
             .first;
  }
  return *it->second;
}

template <typename T>
const T* MetricRegistry::Find(const std::map<Key, std::unique_ptr<T>>& family,
                              std::string_view name,
                              const Labels& labels) const {
  const auto it = family.find(Key{std::string(name), RenderLabels(labels)});
  return it == family.end() ? nullptr : it->second.get();
}

MetricRegistry::Counter& MetricRegistry::GetCounter(std::string_view name,
                                                    const Labels& labels) {
  return GetOrCreate(counters_, name, labels);
}

MetricRegistry::Gauge& MetricRegistry::GetGauge(std::string_view name,
                                                const Labels& labels) {
  return GetOrCreate(gauges_, name, labels);
}

MetricRegistry::Histogram& MetricRegistry::GetHistogram(
    std::string_view name, const Labels& labels,
    const Histogram::Options& opts) {
  return GetOrCreate(histograms_, name, labels, opts);
}

MetricRegistry::TimeSeries& MetricRegistry::GetSeries(std::string_view name,
                                                      const Labels& labels) {
  return GetOrCreate(series_, name, labels);
}

const MetricRegistry::Counter* MetricRegistry::FindCounter(
    std::string_view name, const Labels& labels) const {
  return Find(counters_, name, labels);
}

const MetricRegistry::Gauge* MetricRegistry::FindGauge(
    std::string_view name, const Labels& labels) const {
  return Find(gauges_, name, labels);
}

const MetricRegistry::Histogram* MetricRegistry::FindHistogram(
    std::string_view name, const Labels& labels) const {
  return Find(histograms_, name, labels);
}

const MetricRegistry::TimeSeries* MetricRegistry::FindSeries(
    std::string_view name, const Labels& labels) const {
  return Find(series_, name, labels);
}

std::vector<std::tuple<std::string, std::string, const MetricRegistry::Counter*>>
MetricRegistry::Counters() const {
  std::vector<std::tuple<std::string, std::string, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [key, c] : counters_) {
    out.emplace_back(key.name, key.labels, c.get());
  }
  return out;
}

std::vector<
    std::tuple<std::string, std::string, const MetricRegistry::TimeSeries*>>
MetricRegistry::Series() const {
  std::vector<std::tuple<std::string, std::string, const TimeSeries*>> out;
  out.reserve(series_.size());
  for (const auto& [key, s] : series_) {
    out.emplace_back(key.name, key.labels, s.get());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Exports

namespace {

void WriteDouble(std::ostream& os, double v) {
  if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
    return;
  }
  os << v;
}

// Emits one `# TYPE` header per metric family; entries arrive sorted by
// name, so a family's series are contiguous.
void TypeHeader(std::ostream& os, std::string& last_family,
                const std::string& name, const char* type) {
  if (name == last_family) return;
  last_family = name;
  os << "# TYPE " << name << ' ' << type << '\n';
}

}  // namespace

void MetricRegistry::WritePrometheus(std::ostream& os) const {
  // Full round-trip precision: the default 6 significant digits would
  // silently truncate large histogram sums and long counters-as-doubles.
  const std::streamsize saved_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  std::string last;
  for (const auto& [key, c] : counters_) {
    TypeHeader(os, last, key.name, "counter");
    os << key.name << key.labels << ' ' << c->value() << '\n';
  }
  last.clear();
  for (const auto& [key, g] : gauges_) {
    TypeHeader(os, last, key.name, "gauge");
    os << key.name << key.labels << ' ';
    WriteDouble(os, g->value());
    os << '\n';
  }
  last.clear();
  for (const auto& [key, h] : histograms_) {
    TypeHeader(os, last, key.name, "histogram");
    // `le` joins any user labels inside the braces.
    const std::string& lbl = key.labels;
    const std::string prefix =
        lbl.empty() ? key.name + "_bucket{le=\""
                    : key.name + "_bucket" + lbl.substr(0, lbl.size() - 1) +
                          ",le=\"";
    std::uint64_t cum = 0;
    const auto& counts = h->bucket_counts();
    const auto& bounds = h->bounds();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cum += counts[i];
      os << prefix << bounds[i] << "\"} " << cum << '\n';
    }
    cum += counts[bounds.size()];
    os << prefix << "+Inf\"} " << cum << '\n';
    os << key.name << "_sum" << lbl << ' ';
    WriteDouble(os, h->sum());
    os << '\n';
    os << key.name << "_count" << lbl << ' ' << h->count() << '\n';
  }
  last.clear();
  for (const auto& [key, s] : series_) {
    TypeHeader(os, last, key.name, "gauge");
    os << key.name << key.labels << ' ';
    WriteDouble(os, s->last());
    os << '\n';
  }
  os.precision(saved_precision);
}

void MetricRegistry::WriteJsonTimeline(std::ostream& os) const {
  const std::streamsize saved_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\"series\":[";
  bool first_series = true;
  for (const auto& [key, s] : series_) {
    if (!first_series) os << ',';
    first_series = false;
    os << "\n{\"name\":\"" << key.name << "\",\"labels\":{";
    // Re-render `{k="v",...}` as JSON object members.
    bool first_label = true;
    const std::string& lbl = key.labels;
    std::size_t i = 1;  // skip '{'
    while (i < lbl.size() && lbl[i] != '}') {
      const std::size_t eq = lbl.find('=', i);
      if (eq == std::string::npos) break;
      if (!first_label) os << ',';
      first_label = false;
      os << '"' << lbl.substr(i, eq - i) << "\":";
      std::size_t j = eq + 1;  // at opening quote
      // Value is already escaped for Prometheus, which matches JSON
      // escaping for `\` and `"`; copy through the closing quote.
      os << '"';
      ++j;
      while (j < lbl.size()) {
        if (lbl[j] == '\\' && j + 1 < lbl.size()) {
          os << lbl[j] << lbl[j + 1];
          j += 2;
          continue;
        }
        if (lbl[j] == '"') break;
        os << lbl[j];
        ++j;
      }
      os << '"';
      i = j + 1;
      if (i < lbl.size() && lbl[i] == ',') ++i;
    }
    os << "},\"points\":[";
    bool first_point = true;
    for (const auto& [t_ns, v] : s->points()) {
      if (!first_point) os << ',';
      first_point = false;
      os << '[' << t_ns << ',';
      if (std::isfinite(v)) {
        os << v;
      } else {
        os << "null";
      }
      os << ']';
    }
    os << "]}";
  }
  os << "\n]}\n";
  os.precision(saved_precision);
}

}  // namespace olympian::metrics
