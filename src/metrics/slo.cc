#include "metrics/slo.h"

#include <algorithm>
#include <ostream>

namespace olympian::metrics {

SloAccumulator::PerModel& SloAccumulator::ModelSlot(std::string_view model) {
  const auto it = std::lower_bound(
      models_.begin(), models_.end(), model,
      [](const PerModel& m, std::string_view name) { return m.model < name; });
  if (it != models_.end() && it->model == model) return *it;
  return *models_.insert(it, PerModel{std::string(model), {}, {}});
}

void SloAccumulator::Add(std::string_view model, double latency_ms,
                         RequestOutcome outcome) {
  PerModel& slot = ModelSlot(model);
  ++slot.counts[static_cast<std::size_t>(outcome)];
  if (outcome == RequestOutcome::kSuccess ||
      outcome == RequestOutcome::kRetriedSuccess) {
    slot.success_latency_ms.Add(latency_ms);
  }
}

void SloAccumulator::Merge(const SloAccumulator& other) {
  for (const PerModel& src : other.models_) {
    PerModel& dst = ModelSlot(src.model);
    for (std::size_t i = 0; i < 5; ++i) dst.counts[i] += src.counts[i];
    for (const double v : src.success_latency_ms.values()) {
      dst.success_latency_ms.Add(v);
    }
  }
}

std::uint64_t SloAccumulator::total() const {
  std::uint64_t n = 0;
  for (const PerModel& m : models_) {
    for (const std::uint64_t c : m.counts) n += c;
  }
  return n;
}

SloReport SloAccumulator::Report(double window_seconds,
                                 const SloOptions& opts) const {
  SloReport r;
  r.window_seconds = window_seconds;
  r.availability_target = opts.availability_target;

  Series all_latency;
  for (const PerModel& m : models_) {
    SloReport::ModelRow row;
    row.model = m.model;
    const std::uint64_t ok =
        m.counts[static_cast<std::size_t>(RequestOutcome::kSuccess)] +
        m.counts[static_cast<std::size_t>(RequestOutcome::kRetriedSuccess)];
    for (const std::uint64_t c : m.counts) row.total += c;
    row.succeeded = ok;
    row.availability =
        row.total == 0
            ? 1.0
            : static_cast<double>(ok) / static_cast<double>(row.total);
    if (!m.success_latency_ms.empty()) {
      row.p50_ms = m.success_latency_ms.Percentile(50);
      row.p95_ms = m.success_latency_ms.Percentile(95);
      row.p99_ms = m.success_latency_ms.Percentile(99);
      row.p999_ms = m.success_latency_ms.Percentile(99.9);
      row.max_ms = m.success_latency_ms.Max();
    }
    row.goodput_rps = window_seconds > 0.0
                          ? static_cast<double>(ok) / window_seconds
                          : 0.0;
    r.per_model.push_back(std::move(row));

    r.retried_ok +=
        m.counts[static_cast<std::size_t>(RequestOutcome::kRetriedSuccess)];
    r.timed_out += m.counts[static_cast<std::size_t>(RequestOutcome::kTimedOut)];
    r.rejected += m.counts[static_cast<std::size_t>(RequestOutcome::kRejected)];
    r.failed += m.counts[static_cast<std::size_t>(RequestOutcome::kFailed)];
    for (const double v : m.success_latency_ms.values()) all_latency.Add(v);
  }
  for (const SloReport::ModelRow& row : r.per_model) {
    r.total += row.total;
    r.succeeded += row.succeeded;
  }
  r.availability = r.total == 0 ? 1.0
                                : static_cast<double>(r.succeeded) /
                                      static_cast<double>(r.total);
  const double budget = 1.0 - opts.availability_target;
  r.error_budget_burn = budget > 0.0 ? (1.0 - r.availability) / budget : 0.0;
  if (!all_latency.empty()) {
    r.mean_ms = all_latency.Mean();
    r.p50_ms = all_latency.Percentile(50);
    r.p95_ms = all_latency.Percentile(95);
    r.p99_ms = all_latency.Percentile(99);
    r.p999_ms = all_latency.Percentile(99.9);
    r.max_ms = all_latency.Max();
  }
  r.goodput_rps = window_seconds > 0.0
                      ? static_cast<double>(r.succeeded) / window_seconds
                      : 0.0;
  return r;
}

void SloReport::Print(std::ostream& os) const {
  os << "SLO report (window " << window_seconds << "s, target "
     << availability_target << ")\n"
     << "  requests: " << total << " total, " << succeeded << " ok ("
     << retried_ok << " after retry), " << timed_out << " timed out, "
     << rejected << " rejected, " << failed << " failed\n"
     << "  availability: " << availability << "  error-budget burn: "
     << error_budget_burn << '\n'
     << "  latency ms (successes): mean " << mean_ms << "  p50 " << p50_ms
     << "  p95 " << p95_ms << "  p99 " << p99_ms << "  p99.9 " << p999_ms
     << "  max " << max_ms << '\n'
     << "  goodput: " << goodput_rps << " rps\n";
  for (const ModelRow& m : per_model) {
    os << "    model " << m.model << ": " << m.succeeded << '/' << m.total
       << " ok, p50 " << m.p50_ms << "ms p95 " << m.p95_ms << "ms p99 "
       << m.p99_ms << "ms, " << m.goodput_rps << " rps\n";
  }
}

}  // namespace olympian::metrics
