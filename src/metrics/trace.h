#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace olympian::metrics {

class MetricRegistry;

// Structured execution tracing with Chrome trace-event export.
//
// Components (executor, scheduler) record spans — named intervals on a
// numbered track — and the result loads directly into chrome://tracing or
// Perfetto: tracks become "threads" (one per job, plus a scheduler track),
// so a run's token tenures, node executions, and kernel waits are visible
// on one timeline.
//
// Flow events (`AddFlow`) draw arrows between slices on different tracks.
// The serving layer uses one flow per request (flow id = request id) to
// stitch a request's retries, hedges, and failover re-admissions into a
// single causal chain across device tracks.
//
// Hot path: recording is allocation-free. Events are PODs holding
// `const char*` names (string literals, or strings interned once via
// Intern()) and are appended into storage preallocated for `max_events`
// at construction. Per-tenure names that embed a changing integer (e.g.
// "job-17") use the *Numbered variants, which store the integer and render
// it only at export time instead of composing a std::string per event.
//
// Recording stops once `max_events` is reached (a full serving run executes
// millions of nodes; traces are for inspecting windows, not whole runs).
// Truncation is not silent: dropped events are counted, exposed via
// dropped(), and stamped into the Chrome export as a metadata record.
class Tracer {
 public:
  explicit Tracer(std::size_t max_events = 200000) : max_events_(max_events) {
    events_.reserve(max_events_);
  }

  // Track used by the scheduler for token tenures.
  static constexpr std::int64_t kSchedulerTrack = -1;
  // Track used by the fault injector for injected fault events.
  static constexpr std::int64_t kFaultTrack = -2;
  // Track used by the health monitor for device state transitions and
  // outage spans.
  static constexpr std::int64_t kHealthTrack = -3;
  // Track used by IncidentLog::Annotate for incident spans and their
  // detection/mitigation/recovery marks.
  static constexpr std::int64_t kIncidentTrack = -4;

  // Sentinel: event has no numeric name suffix.
  static constexpr std::int64_t kNoNumber = INT64_MIN;

  // Flow-event phase: a flow starts on one slice (kBegin), optionally
  // passes through others (kStep), and terminates (kEnd). Chrome phases
  // "s"/"t"/"f".
  enum class FlowPhase : char { kBegin = 's', kStep = 't', kEnd = 'f' };

  // `name` must outlive the tracer: a string literal, a stable component
  // name, or the result of Intern(). The Add* recorders are defined inline
  // (below the class) — on per-node paths the call is a bounds check plus a
  // POD store, cheap enough to leave tracing compiled in everywhere.
  void AddSpan(const char* category, const char* name, std::int64_t track,
               sim::TimePoint start, sim::TimePoint end);
  void AddInstant(const char* category, const char* name, std::int64_t track,
                  sim::TimePoint t);

  // As above, but the exported name is `name` immediately followed by
  // `number` in decimal (e.g. "job-" + 17 → "job-17"). Avoids composing a
  // heap string per event on per-quantum paths.
  void AddSpanNumbered(const char* category, const char* name,
                       std::int64_t number, std::int64_t track,
                       sim::TimePoint start, sim::TimePoint end);
  void AddInstantNumbered(const char* category, const char* name,
                          std::int64_t number, std::int64_t track,
                          sim::TimePoint t);

  // Records one hop of flow `flow_id` at time `t` on `track`. The exported
  // name is `name` followed by `flow_id` in decimal. To bind to a slice in
  // Perfetto the timestamp must fall inside a slice on the same track; the
  // serving layer emits hops at attempt start, which coincides with the
  // attempt span's start.
  void AddFlow(FlowPhase phase, const char* category, const char* name,
               std::uint64_t flow_id, std::int64_t track, sim::TimePoint t);

  // As above, with a `reason` annotation rendered as args:{"reason":...} in
  // the Chrome export: why this leg of the request started (a kStep after a
  // failover, retry, or hedge) or how the flow ended (a kEnd's terminal
  // outcome). `detail` must outlive the tracer (literal or Intern()ed);
  // nullptr elides the annotation.
  void AddFlow(FlowPhase phase, const char* category, const char* name,
               std::uint64_t flow_id, std::int64_t track, sim::TimePoint t,
               const char* detail);

  // Records a Chrome counter event ('C'): `value` plotted at `t` under the
  // counter named `name`. Perfetto renders each counter name as its own
  // chart on the trace timeline, which is how the sampler's utilization /
  // queue-depth / health series line up with flow chains and incident
  // marks (see ExportCountersToTrace).
  void AddCounter(const char* category, const char* name, std::int64_t track,
                  sim::TimePoint t, double value);

  // Returns a pointer, stable for the tracer's lifetime, to a deduplicated
  // copy of `s`. For cold paths that compose names dynamically (health
  // transitions, fault descriptions); repeated strings are stored once.
  const char* Intern(std::string_view s);

  std::size_t size() const { return events_.size(); }
  std::size_t max_events() const { return max_events_; }
  bool full() const { return events_.size() >= max_events_; }
  // Number of events rejected because the tracer was full.
  std::uint64_t dropped() const { return dropped_; }

  // Appends every event of `src` (re-interning its strings, so `src` may be
  // destroyed afterwards) and folds in its drop count. Respects this
  // tracer's own max_events: events past the cap are counted as dropped,
  // never silently lost. The cluster uses this to fold per-server private
  // trace buffers into the user's tracer in a canonical, shard-count-
  // independent order.
  void MergeFrom(const Tracer& src);

  struct Event {
    const char* category;
    const char* name;
    std::int64_t number;  // kNoNumber => name stands alone
    std::int64_t track;
    std::int64_t start_ns;
    std::int64_t dur_ns;     // -1 => instant or flow hop
    std::uint64_t flow = 0;  // flow id; meaningful only when ph is s/t/f
    char ph = 'X';  // 'X' span, 'i' instant, 's'/'t'/'f' flow, 'C' counter
    // Flow-hop annotation (why the leg started / how the flow ended);
    // nullptr => none. Rendered as args:{"reason":...} on flow phases.
    const char* detail = nullptr;
    double value = 0.0;  // counter ('C') sample value
  };

  // Raw events, for programmatic analysis (tests, custom reports).
  const std::vector<Event>& events() const { return events_; }

  // Chrome trace-event "JSON array" format. When events were dropped, the
  // array ends with a `trace_truncated` metadata instant carrying the drop
  // count so consumers can tell a short trace from a clipped one.
  void WriteChromeTrace(std::ostream& os) const;

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::size_t max_events_;
  std::uint64_t dropped_ = 0;
  std::vector<Event> events_;
  std::unordered_set<std::string, StringHash, std::equal_to<>> interned_;
};

inline void Tracer::AddSpan(const char* category, const char* name,
                            std::int64_t track, sim::TimePoint start,
                            sim::TimePoint end) {
  if (full()) {
    ++dropped_;
    return;
  }
  events_.push_back(Event{category, name, kNoNumber, track, start.nanos(),
                          (end - start).nanos()});
}

inline void Tracer::AddInstant(const char* category, const char* name,
                               std::int64_t track, sim::TimePoint t) {
  if (full()) {
    ++dropped_;
    return;
  }
  events_.push_back(
      Event{category, name, kNoNumber, track, t.nanos(), -1, 0, 'i'});
}

inline void Tracer::AddSpanNumbered(const char* category, const char* name,
                                    std::int64_t number, std::int64_t track,
                                    sim::TimePoint start, sim::TimePoint end) {
  if (full()) {
    ++dropped_;
    return;
  }
  events_.push_back(Event{category, name, number, track, start.nanos(),
                          (end - start).nanos()});
}

inline void Tracer::AddInstantNumbered(const char* category, const char* name,
                                       std::int64_t number, std::int64_t track,
                                       sim::TimePoint t) {
  if (full()) {
    ++dropped_;
    return;
  }
  events_.push_back(
      Event{category, name, number, track, t.nanos(), -1, 0, 'i'});
}

inline void Tracer::AddFlow(FlowPhase phase, const char* category,
                            const char* name, std::uint64_t flow_id,
                            std::int64_t track, sim::TimePoint t) {
  AddFlow(phase, category, name, flow_id, track, t, nullptr);
}

inline void Tracer::AddCounter(const char* category, const char* name,
                               std::int64_t track, sim::TimePoint t,
                               double value) {
  if (full()) {
    ++dropped_;
    return;
  }
  events_.push_back(Event{category, name, kNoNumber, track, t.nanos(), -1, 0,
                          'C', nullptr, value});
}

// Replays every sampled time series of `registry` into `tracer` as Chrome
// counter events ("metric" category, counter name = series name plus its
// rendered label block), so the sampler's per-device utilization, queue
// depth, and health series appear on the same Perfetto timeline as flow
// chains and incident marks. Deterministic: series iterate in registry key
// order. Call once, after the run, before WriteChromeTrace.
void ExportCountersToTrace(const MetricRegistry& registry, Tracer& tracer);

inline void Tracer::AddFlow(FlowPhase phase, const char* category,
                            const char* name, std::uint64_t flow_id,
                            std::int64_t track, sim::TimePoint t,
                            const char* detail) {
  if (full()) {
    ++dropped_;
    return;
  }
  events_.push_back(Event{category, name, static_cast<std::int64_t>(flow_id),
                          track, t.nanos(), -1, flow_id,
                          static_cast<char>(phase), detail});
}

}  // namespace olympian::metrics
