#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace olympian::metrics {

// Structured execution tracing with Chrome trace-event export.
//
// Components (executor, scheduler) record spans — named intervals on a
// numbered track — and the result loads directly into chrome://tracing or
// Perfetto: tracks become "threads" (one per job, plus a scheduler track),
// so a run's token tenures, node executions, and kernel waits are visible
// on one timeline.
//
// Hot path: recording is allocation-free. Events are PODs holding
// `const char*` names (string literals, or strings interned once via
// Intern()) and are appended into storage preallocated for `max_events`
// at construction. Per-tenure names that embed a changing integer (e.g.
// "job-17") use the *Numbered variants, which store the integer and render
// it only at export time instead of composing a std::string per event.
//
// Recording stops silently once `max_events` is reached (a full serving run
// executes millions of nodes; traces are for inspecting windows, not whole
// runs).
class Tracer {
 public:
  explicit Tracer(std::size_t max_events = 200000) : max_events_(max_events) {
    events_.reserve(max_events_);
  }

  // Track used by the scheduler for token tenures.
  static constexpr std::int64_t kSchedulerTrack = -1;
  // Track used by the fault injector for injected fault events.
  static constexpr std::int64_t kFaultTrack = -2;
  // Track used by the health monitor for device state transitions and
  // outage spans.
  static constexpr std::int64_t kHealthTrack = -3;

  // Sentinel: event has no numeric name suffix.
  static constexpr std::int64_t kNoNumber = INT64_MIN;

  // `name` must outlive the tracer: a string literal, a stable component
  // name, or the result of Intern().
  void AddSpan(const char* category, const char* name, std::int64_t track,
               sim::TimePoint start, sim::TimePoint end);
  void AddInstant(const char* category, const char* name, std::int64_t track,
                  sim::TimePoint t);

  // As above, but the exported name is `name` immediately followed by
  // `number` in decimal (e.g. "job-" + 17 → "job-17"). Avoids composing a
  // heap string per event on per-quantum paths.
  void AddSpanNumbered(const char* category, const char* name,
                       std::int64_t number, std::int64_t track,
                       sim::TimePoint start, sim::TimePoint end);
  void AddInstantNumbered(const char* category, const char* name,
                          std::int64_t number, std::int64_t track,
                          sim::TimePoint t);

  // Returns a pointer, stable for the tracer's lifetime, to a deduplicated
  // copy of `s`. For cold paths that compose names dynamically (health
  // transitions, fault descriptions); repeated strings are stored once.
  const char* Intern(std::string_view s);

  std::size_t size() const { return events_.size(); }
  bool full() const { return events_.size() >= max_events_; }

  struct Event {
    const char* category;
    const char* name;
    std::int64_t number;  // kNoNumber => name stands alone
    std::int64_t track;
    std::int64_t start_ns;
    std::int64_t dur_ns;  // -1 => instant
  };

  // Raw events, for programmatic analysis (tests, custom reports).
  const std::vector<Event>& events() const { return events_; }

  // Chrome trace-event "JSON array" format.
  void WriteChromeTrace(std::ostream& os) const;

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::size_t max_events_;
  std::vector<Event> events_;
  std::unordered_set<std::string, StringHash, std::equal_to<>> interned_;
};

}  // namespace olympian::metrics
