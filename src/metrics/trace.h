#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.h"

namespace olympian::metrics {

// Structured execution tracing with Chrome trace-event export.
//
// Components (executor, scheduler) record spans — named intervals on a
// numbered track — and the result loads directly into chrome://tracing or
// Perfetto: tracks become "threads" (one per job, plus a scheduler track),
// so a run's token tenures, node executions, and kernel waits are visible
// on one timeline.
//
// Recording stops silently once `max_events` is reached (a full serving run
// executes millions of nodes; traces are for inspecting windows, not whole
// runs).
class Tracer {
 public:
  explicit Tracer(std::size_t max_events = 200000) : max_events_(max_events) {}

  // Track used by the scheduler for token tenures.
  static constexpr std::int64_t kSchedulerTrack = -1;
  // Track used by the fault injector for injected fault events.
  static constexpr std::int64_t kFaultTrack = -2;
  // Track used by the health monitor for device state transitions and
  // outage spans.
  static constexpr std::int64_t kHealthTrack = -3;

  void AddSpan(const char* category, std::string name, std::int64_t track,
               sim::TimePoint start, sim::TimePoint end);
  void AddInstant(const char* category, std::string name, std::int64_t track,
                  sim::TimePoint t);

  std::size_t size() const { return events_.size(); }
  bool full() const { return events_.size() >= max_events_; }

  struct Event {
    const char* category;
    std::string name;
    std::int64_t track;
    std::int64_t start_ns;
    std::int64_t dur_ns;  // -1 => instant
  };

  // Raw events, for programmatic analysis (tests, custom reports).
  const std::vector<Event>& events() const { return events_; }

  // Chrome trace-event "JSON array" format.
  void WriteChromeTrace(std::ostream& os) const;

 private:
  std::size_t max_events_;
  std::vector<Event> events_;
};

}  // namespace olympian::metrics
