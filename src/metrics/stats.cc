#include "metrics/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace olympian::metrics {

std::vector<double>& Series::MutableSorted() const {
  if (sorted_.size() != values_.size()) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
  }
  return sorted_;
}

double Series::Sum() const {
  double s = 0;
  for (double v : values_) s += v;
  return s;
}

double Series::Mean() const {
  if (values_.empty()) return 0.0;
  return Sum() / static_cast<double>(values_.size());
}

double Series::Stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = Mean();
  double acc = 0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Series::Cv() const {
  const double m = Mean();
  return m == 0.0 ? 0.0 : Stddev() / m;
}

double Series::Min() const {
  if (values_.empty()) throw std::out_of_range("Series::Min on empty series");
  return *std::min_element(values_.begin(), values_.end());
}

double Series::Max() const {
  if (values_.empty()) throw std::out_of_range("Series::Max on empty series");
  return *std::max_element(values_.begin(), values_.end());
}

double Series::Percentile(double p) const {
  if (values_.empty()) {
    throw std::out_of_range("Series::Percentile on empty series");
  }
  const auto& s = MutableSorted();
  if (p <= 0) return s.front();
  if (p >= 100) return s.back();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(s.size())));
  return s[std::min(rank == 0 ? 0 : rank - 1, s.size() - 1)];
}

double Series::CdfAt(double x) const {
  if (values_.empty()) return 0.0;
  const auto& s = MutableSorted();
  const auto it = std::upper_bound(s.begin(), s.end(), x);
  return static_cast<double>(it - s.begin()) / static_cast<double>(s.size());
}

std::vector<std::pair<double, double>> Series::CdfPoints() const {
  std::vector<std::pair<double, double>> out;
  if (values_.empty()) return out;
  const auto& s = MutableSorted();
  const double n = static_cast<double>(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i + 1 < s.size() && s[i + 1] == s[i]) continue;  // last of run
    out.emplace_back(s[i], static_cast<double>(i + 1) / n);
  }
  return out;
}

void Welford::Add(double v) {
  ++n_;
  const double d = v - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (v - mean_);
}

double Welford::Stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("FitLine needs >= 2 matching points");
  }
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    // Degenerate (all x equal): fall back to a constant fit.
    fit.slope = 0.0;
    fit.intercept = sy / n;
  } else {
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
  }
  return fit;
}

}  // namespace olympian::metrics
