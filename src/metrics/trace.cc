#include "metrics/trace.h"

#include <ostream>

namespace olympian::metrics {

void Tracer::AddSpan(const char* category, const char* name,
                     std::int64_t track, sim::TimePoint start,
                     sim::TimePoint end) {
  if (full()) return;
  events_.push_back(Event{category, name, kNoNumber, track, start.nanos(),
                          (end - start).nanos()});
}

void Tracer::AddInstant(const char* category, const char* name,
                        std::int64_t track, sim::TimePoint t) {
  if (full()) return;
  events_.push_back(Event{category, name, kNoNumber, track, t.nanos(), -1});
}

void Tracer::AddSpanNumbered(const char* category, const char* name,
                             std::int64_t number, std::int64_t track,
                             sim::TimePoint start, sim::TimePoint end) {
  if (full()) return;
  events_.push_back(
      Event{category, name, number, track, start.nanos(), (end - start).nanos()});
}

void Tracer::AddInstantNumbered(const char* category, const char* name,
                                std::int64_t number, std::int64_t track,
                                sim::TimePoint t) {
  if (full()) return;
  events_.push_back(Event{category, name, number, track, t.nanos(), -1});
}

const char* Tracer::Intern(std::string_view s) {
  const auto it = interned_.find(s);
  if (it != interned_.end()) return it->c_str();
  return interned_.emplace(s).first->c_str();
}

namespace {

void EscapeInto(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') os << '\\';
    os << *s;
  }
}

}  // namespace

void Tracer::WriteChromeTrace(std::ostream& os) const {
  os << "[\n";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) os << ",\n";
    first = false;
    // Chrome expects microsecond timestamps; keep sub-us precision as
    // fractional microseconds.
    const double ts_us = static_cast<double>(e.start_ns) / 1e3;
    os << R"({"cat":")" << e.category << R"(","name":")";
    EscapeInto(os, e.name);
    if (e.number != kNoNumber) os << e.number;
    os << R"(","pid":1,"tid":)" << e.track << R"(,"ts":)" << ts_us;
    if (e.dur_ns < 0) {
      os << R"(,"ph":"i","s":"t"})";
    } else {
      os << R"(,"ph":"X","dur":)" << static_cast<double>(e.dur_ns) / 1e3
         << "}";
    }
  }
  os << "\n]\n";
}

}  // namespace olympian::metrics
