#include "metrics/trace.h"

#include <ostream>

namespace olympian::metrics {

void Tracer::AddSpan(const char* category, std::string name,
                     std::int64_t track, sim::TimePoint start,
                     sim::TimePoint end) {
  if (full()) return;
  events_.push_back(Event{category, std::move(name), track, start.nanos(),
                          (end - start).nanos()});
}

void Tracer::AddInstant(const char* category, std::string name,
                        std::int64_t track, sim::TimePoint t) {
  if (full()) return;
  events_.push_back(Event{category, std::move(name), track, t.nanos(), -1});
}

namespace {

void EscapeInto(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

}  // namespace

void Tracer::WriteChromeTrace(std::ostream& os) const {
  os << "[\n";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) os << ",\n";
    first = false;
    // Chrome expects microsecond timestamps; keep sub-us precision as
    // fractional microseconds.
    const double ts_us = static_cast<double>(e.start_ns) / 1e3;
    os << R"({"cat":")" << e.category << R"(","name":")";
    EscapeInto(os, e.name);
    os << R"(","pid":1,"tid":)" << e.track << R"(,"ts":)" << ts_us;
    if (e.dur_ns < 0) {
      os << R"(,"ph":"i","s":"t"})";
    } else {
      os << R"(,"ph":"X","dur":)" << static_cast<double>(e.dur_ns) / 1e3
         << "}";
    }
  }
  os << "\n]\n";
}

}  // namespace olympian::metrics
