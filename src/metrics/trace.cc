#include "metrics/trace.h"

#include <ostream>

#include "metrics/registry.h"

namespace olympian::metrics {

const char* Tracer::Intern(std::string_view s) {
  const auto it = interned_.find(s);
  if (it != interned_.end()) return it->c_str();
  return interned_.emplace(s).first->c_str();
}

void Tracer::MergeFrom(const Tracer& src) {
  for (const Event& e : src.events_) {
    if (full()) {
      ++dropped_;
      continue;
    }
    Event copy = e;
    // Source strings may live in src's intern table (or in buffers with
    // src's lifetime); re-intern so the copies outlive the source.
    copy.category = Intern(e.category);
    copy.name = Intern(e.name);
    if (e.detail != nullptr) copy.detail = Intern(e.detail);
    events_.push_back(copy);
  }
  dropped_ += src.dropped_;
}

namespace {

// JSON string-escapes `s`: quote, backslash, and all control characters
// (U+0000..U+001F), which RFC 8259 forbids raw inside strings. Interned
// names can carry arbitrary bytes (model names, fault descriptions), so the
// export must not rely on callers sanitizing.
void EscapeInto(std::ostream& os, const char* s) {
  static const char* kHex = "0123456789abcdef";
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (c < 0x20) {
          os << "\\u00" << kHex[c >> 4] << kHex[c & 0xf];
        } else {
          os << *s;
        }
    }
  }
}

}  // namespace

void Tracer::WriteChromeTrace(std::ostream& os) const {
  os << "[\n";
  bool first = true;
  std::int64_t last_ns = 0;
  for (const Event& e : events_) {
    if (!first) os << ",\n";
    first = false;
    if (e.start_ns > last_ns) last_ns = e.start_ns;
    // Chrome expects microsecond timestamps; keep sub-us precision as
    // fractional microseconds.
    const double ts_us = static_cast<double>(e.start_ns) / 1e3;
    os << R"({"cat":")";
    EscapeInto(os, e.category);
    os << R"(","name":")";
    EscapeInto(os, e.name);
    if (e.number != kNoNumber) os << e.number;
    os << R"(","pid":1,"tid":)" << e.track << R"(,"ts":)" << ts_us;
    switch (e.ph) {
      case 'i':
        os << R"(,"ph":"i","s":"t"})";
        break;
      case 'C':
        // Counter sample; Perfetto plots args.value under the event name.
        os << R"(,"ph":"C","args":{"value":)" << e.value << "}}";
        break;
      case 's':
      case 't':
      case 'f':
        // Flow phases carry the flow id; "bp":"e" makes the terminating
        // arrow bind to the enclosing slice rather than the next one.
        os << R"(,"ph":")" << e.ph << R"(","id":")" << e.flow << '"';
        if (e.ph == 'f') os << R"(,"bp":"e")";
        if (e.detail != nullptr) {
          os << R"(,"args":{"reason":")";
          EscapeInto(os, e.detail);
          os << R"("})";
        }
        os << "}";
        break;
      default:
        os << R"(,"ph":"X","dur":)" << static_cast<double>(e.dur_ns) / 1e3
           << "}";
    }
  }
  if (dropped_ > 0) {
    if (!first) os << ",\n";
    os << R"({"cat":"__metadata","name":"trace_truncated","pid":1,"tid":0,)"
       << R"("ts":)" << static_cast<double>(last_ns) / 1e3
       << R"(,"ph":"i","s":"g","args":{"dropped":)" << dropped_
       << R"(,"max_events":)" << max_events_ << "}}";
  }
  os << "\n]\n";
}

void ExportCountersToTrace(const MetricRegistry& registry, Tracer& tracer) {
  for (const auto& [name, labels, series] : registry.Series()) {
    const char* counter_name =
        tracer.Intern(labels.empty() ? name : name + labels);
    for (const auto& [t_ns, value] : series->points()) {
      tracer.AddCounter("metric", counter_name, 0,
                        sim::TimePoint() + sim::Duration::Nanos(t_ns), value);
    }
  }
}

}  // namespace olympian::metrics
