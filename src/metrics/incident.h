#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.h"

namespace olympian::metrics {

class Tracer;

// Incident timelines: correlates injected fault windows with the serving
// layer's detection, mitigation, and recovery edges into one exported
// record per incident.
//
// The log is fed by whoever owns the signals — the cluster's fault
// trampoline calls Inject when a server fault fires, the router reports
// health transitions / routing shifts / brownout moves, the dispatch path
// reports request outcomes — and Finalize stitches them into the state
// machine
//
//   injected --> detected --> mitigated --> recovered
//
// where `detected` is the first away-from-healthy transition of the
// injected server at or after the injection, `mitigated` is the first
// traffic-shifting action after detection (cross-server failover away from
// the victim, or a brownout level increase), and `recovered` is the first
// back-to-healthy transition after detection. Later stages may be absent
// (-1 in the export): a tolerated gray fault never detects, a fault
// recovered by pure re-routing never sees brownout, and a crash at the end
// of a run never recovers.
//
// All feeding calls happen on the hub side of the sharded engine in virtual
// time order, so the log — like every other export — is byte-identical at
// any shard count. Requests are attributed to an incident while the
// incident is *open*: from injection until recovery, but at least for the
// injected fault window.
class IncidentLog {
 public:
  struct Incident {
    int server = -1;
    std::string kind;  // "crash", "hang", "partition", "capacity", ...
    std::int64_t injected_ns = 0;
    std::int64_t window_ns = 0;  // injected fault window (0 = point fault)
    std::int64_t detected_ns = -1;
    std::int64_t mitigated_ns = -1;
    std::int64_t recovered_ns = -1;
    std::string mitigation;  // "failover" | "brownout" | "" when none
    std::uint64_t requests_impacted = 0;
    std::uint64_t failures_impacted = 0;
    // Overall run goodput minus goodput across the impact window; positive
    // means the incident hurt (computed by Finalize).
    double goodput_dip = 0.0;
  };

  bool enabled() const { return enabled_; }
  void Enable() { enabled_ = true; }

  // --- feeding (no-ops until Enable) -----------------------------------

  // An injected fault fired against `server`.
  void Inject(int server, std::string kind, sim::TimePoint at,
              sim::Duration window);
  // A health-view transition for `server` (any granularity of "healthy":
  // the router reports routable vs not).
  void HealthTransition(int server, bool was_healthy, bool now_healthy,
                        sim::TimePoint at);
  // A traffic-shifting mitigation. `server` is the victim being shifted
  // away from, or -1 for a global action (brownout), which attaches to
  // every open, detected, unmitigated incident.
  void Mitigation(int server, const char* what, sim::TimePoint at);
  // One finished request that targeted `server`.
  void RequestOutcome(int server, sim::TimePoint at, bool ok);

  // --- reporting --------------------------------------------------------

  // Computes goodput dips against the whole-run rate. Idempotent.
  void Finalize();

  const std::vector<Incident>& incidents() const { return incidents_; }
  std::uint64_t total_requests() const { return total_requests_; }

  // JSON export: {"incidents":[{...}], "total_requests": N,
  // "total_failures": N}. Times are integer nanoseconds (-1 = never), so
  // the export is byte-stable.
  void WriteJson(std::ostream& os) const;

  // Adds one span per incident (injection to recovery or window end) plus
  // detected/mitigated/recovered instants on Tracer track -4, so Perfetto
  // shows incidents on the same timeline as flow chains and counters.
  void Annotate(Tracer& tracer) const;

 private:
  // True while requests at `at` should be attributed to `inc`.
  static bool Open(const Incident& inc, sim::TimePoint at);

  bool enabled_ = false;
  bool finalized_ = false;
  std::vector<Incident> incidents_;
  std::uint64_t total_requests_ = 0;
  std::uint64_t total_failures_ = 0;
};

}  // namespace olympian::metrics
