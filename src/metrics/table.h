#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace olympian::metrics {

// Fixed-width console table, used by every bench binary to print the rows a
// paper table/figure reports. Also emits CSV for external plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Append one row; cells are preformatted strings. Must match header count.
  void AddRow(std::vector<std::string> cells);

  // Convenience formatters.
  static std::string Num(double v, int precision = 2);
  static std::string Pct(double fraction, int precision = 1);

  void Print(std::ostream& os) const;
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace olympian::metrics
