#include "metrics/incident.h"

#include <ostream>
#include <utility>

#include "metrics/trace.h"

namespace olympian::metrics {

void IncidentLog::Inject(int server, std::string kind, sim::TimePoint at,
                         sim::Duration window) {
  if (!enabled_) return;
  Incident inc;
  inc.server = server;
  inc.kind = std::move(kind);
  inc.injected_ns = at.nanos();
  inc.window_ns = window.nanos();
  incidents_.push_back(std::move(inc));
}

bool IncidentLog::Open(const Incident& inc, sim::TimePoint at) {
  const std::int64_t t = at.nanos();
  if (t < inc.injected_ns) return false;
  if (inc.recovered_ns >= 0) return t <= inc.recovered_ns;
  // Not recovered (yet): the impact window is at least the injected fault
  // window, and keeps extending while recovery is outstanding.
  return inc.window_ns == 0 || t <= inc.injected_ns + inc.window_ns ||
         inc.detected_ns >= 0;
}

void IncidentLog::HealthTransition(int server, bool was_healthy,
                                   bool now_healthy, sim::TimePoint at) {
  if (!enabled_ || was_healthy == now_healthy) return;
  const std::int64_t t = at.nanos();
  if (!now_healthy) {
    // Detection edge: attach to the earliest undetected incident of this
    // server that was already injected.
    for (Incident& inc : incidents_) {
      if (inc.server == server && inc.detected_ns < 0 &&
          inc.injected_ns <= t && inc.recovered_ns < 0) {
        inc.detected_ns = t;
        return;
      }
    }
    return;
  }
  // Recovery edge: closes every detected-but-unrecovered incident of this
  // server (relapses re-open as new transitions arrive only via new
  // injections, mirroring the router's MTTR folding).
  for (Incident& inc : incidents_) {
    if (inc.server == server && inc.detected_ns >= 0 &&
        inc.recovered_ns < 0) {
      inc.recovered_ns = t;
    }
  }
}

void IncidentLog::Mitigation(int server, const char* what,
                             sim::TimePoint at) {
  if (!enabled_) return;
  const std::int64_t t = at.nanos();
  for (Incident& inc : incidents_) {
    if (server >= 0 && inc.server != server) continue;
    if (inc.detected_ns < 0 || inc.mitigated_ns >= 0 ||
        inc.recovered_ns >= 0) {
      continue;
    }
    inc.mitigated_ns = t;
    inc.mitigation = what;
    if (server >= 0) return;  // targeted action mitigates one incident
  }
}

void IncidentLog::RequestOutcome(int server, sim::TimePoint at, bool ok) {
  if (!enabled_) return;
  ++total_requests_;
  if (!ok) ++total_failures_;
  for (Incident& inc : incidents_) {
    if (inc.server != server || !Open(inc, at)) continue;
    ++inc.requests_impacted;
    if (!ok) ++inc.failures_impacted;
  }
}

void IncidentLog::Finalize() {
  if (finalized_) return;
  finalized_ = true;
  const double overall =
      total_requests_ == 0
          ? 1.0
          : 1.0 - static_cast<double>(total_failures_) /
                      static_cast<double>(total_requests_);
  for (Incident& inc : incidents_) {
    const double window =
        inc.requests_impacted == 0
            ? overall
            : 1.0 - static_cast<double>(inc.failures_impacted) /
                        static_cast<double>(inc.requests_impacted);
    inc.goodput_dip = overall - window;
  }
}

namespace {

void WriteField(std::ostream& os, const char* key, std::int64_t v,
                bool last = false) {
  os << '"' << key << "\": " << v;
  if (!last) os << ", ";
}

}  // namespace

void IncidentLog::WriteJson(std::ostream& os) const {
  os << "{\n  \"incidents\": [";
  bool first = true;
  for (const Incident& inc : incidents_) {
    if (!first) os << ',';
    first = false;
    os << "\n    {\"server\": " << inc.server << ", \"kind\": \"" << inc.kind
       << "\", ";
    WriteField(os, "injected_ns", inc.injected_ns);
    WriteField(os, "window_ns", inc.window_ns);
    WriteField(os, "detected_ns", inc.detected_ns);
    WriteField(os, "mitigated_ns", inc.mitigated_ns);
    WriteField(os, "recovered_ns", inc.recovered_ns);
    os << "\"mitigation\": \"" << inc.mitigation << "\", ";
    WriteField(os, "requests_impacted",
               static_cast<std::int64_t>(inc.requests_impacted));
    WriteField(os, "failures_impacted",
               static_cast<std::int64_t>(inc.failures_impacted));
    os << "\"goodput_dip\": " << inc.goodput_dip << '}';
  }
  if (!first) os << "\n  ";
  os << "],\n  \"total_requests\": " << total_requests_
     << ",\n  \"total_failures\": " << total_failures_ << "\n}\n";
}

void IncidentLog::Annotate(Tracer& tracer) const {
  for (const Incident& inc : incidents_) {
    const std::int64_t end_ns =
        inc.recovered_ns >= 0 ? inc.recovered_ns
                              : inc.injected_ns + inc.window_ns;
    const char* name = tracer.Intern("incident-" + inc.kind + "@server" +
                                     std::to_string(inc.server));
    tracer.AddSpan("incident", name, Tracer::kIncidentTrack,
                   sim::TimePoint() + sim::Duration::Nanos(inc.injected_ns),
                   sim::TimePoint() + sim::Duration::Nanos(end_ns));
    if (inc.detected_ns >= 0) {
      tracer.AddInstant("incident", "detected", Tracer::kIncidentTrack,
                        sim::TimePoint() +
                            sim::Duration::Nanos(inc.detected_ns));
    }
    if (inc.mitigated_ns >= 0) {
      const char* mit = tracer.Intern("mitigated:" + inc.mitigation);
      tracer.AddInstant("incident", mit, Tracer::kIncidentTrack,
                        sim::TimePoint() +
                            sim::Duration::Nanos(inc.mitigated_ns));
    }
    if (inc.recovered_ns >= 0) {
      tracer.AddInstant("incident", "recovered", Tracer::kIncidentTrack,
                        sim::TimePoint() +
                            sim::Duration::Nanos(inc.recovered_ns));
    }
  }
}

}  // namespace olympian::metrics
