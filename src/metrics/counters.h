#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>

namespace olympian::metrics {

class MetricRegistry;

// Monotonic event counters for the serving stack's failure model: injected
// faults, request-level degradation outcomes, and the load-shedding /
// circuit-breaker machinery. One instance lives in each
// `serving::Experiment`; the fault injector and the serving layer both
// increment it, so aggregate checks (e.g. "shed requests == rejected
// results") are a single comparison.
struct ServingCounters {
  // --- injected faults (incremented by fault::FaultInjector) -------------
  std::uint64_t kernel_failures_injected = 0;
  std::uint64_t device_hangs = 0;
  std::uint64_t device_resets = 0;
  std::uint64_t alloc_fault_windows = 0;
  std::uint64_t capacity_fault_windows = 0;  // fractional-capacity windows

  // --- per-request outcomes (incremented by serving::Experiment) ---------
  std::uint64_t requests_ok = 0;
  std::uint64_t requests_retried_ok = 0;  // succeeded after >= 1 retry
  std::uint64_t requests_timed_out = 0;
  std::uint64_t requests_rejected = 0;
  std::uint64_t requests_failed = 0;  // exhausted the retry budget

  // --- degradation machinery ---------------------------------------------
  std::uint64_t retries = 0;              // individual retry attempts
  std::uint64_t requests_shed = 0;        // rejected by admission control
  std::uint64_t breaker_rejections = 0;   // rejected by an open breaker
  std::uint64_t breaker_opens = 0;        // closed/half-open -> open edges
  std::uint64_t transient_alloc_failures = 0;
  std::uint64_t kernel_failures_observed = 0;
  std::uint64_t deadline_cancellations = 0;

  // --- health / failover (incremented by HealthMonitor + Experiment) -----
  std::uint64_t health_transitions = 0;   // any device health-state edge
  std::uint64_t device_down_events = 0;   // healthy/degraded -> down edges
  std::uint64_t device_readmissions = 0;  // recovery pipelines completed
  std::uint64_t probe_failures = 0;       // heartbeat kernels that failed
  std::uint64_t failover_cancellations = 0;  // in-flight runs killed on down
  std::uint64_t requests_failed_over = 0;    // re-admitted on another device
  // Rejected because *no* usable device remained (subset of
  // requests_rejected; the all-devices-down fast path).
  std::uint64_t requests_rejected_no_device = 0;
  std::uint64_t replica_instantiations = 0;  // lazy model loads on failover
  std::uint64_t hedges_launched = 0;         // duplicates sent while degraded
  std::uint64_t hedge_wins = 0;              // hedge finished first / rescued

  std::uint64_t requests_total() const {
    return requests_ok + requests_retried_ok + requests_timed_out +
           requests_rejected + requests_failed;
  }

  // One entry per counter field, in declaration order. Print, the registry
  // bridge, and tests all iterate this single table, so every view of the
  // counters agrees on membership and order by construction.
  struct Field {
    const char* name;
    std::uint64_t ServingCounters::* member;
  };
  static std::span<const Field> Fields();

  // One "name value" row per non-zero counter, in Fields() order.
  void Print(std::ostream& os) const;

  // Mirrors every field into `registry` as a counter named
  // "olympian_<field>_total" via Counter::Set — idempotent, so repeated
  // bridging (Experiment::Run calls this at finish; callers may re-export
  // at any time) never double-counts.
  void ExportTo(MetricRegistry& registry) const;
};

// Monotonic event counters for the cluster front-end: routing decisions,
// cross-server failover, router-side probing, and the server-level fault
// model (crashes, hangs, partitions). One instance lives in each
// `serving::Cluster`; the router, the cluster request path, and the server
// fault applier all increment it. Same single-source-table idiom as
// ServingCounters, exported as "olympian_router_<field>_total".
struct RouterCounters {
  // --- injected server faults --------------------------------------------
  std::uint64_t server_crashes = 0;
  std::uint64_t server_hangs = 0;
  std::uint64_t partitions = 0;
  std::uint64_t capacity_losses = 0;  // server-wide fractional-capacity windows
  std::uint64_t jitter_windows = 0;   // router<->server hop-stretch windows

  // --- routing / request outcomes ----------------------------------------
  std::uint64_t requests_routed = 0;   // forward legs dispatched
  std::uint64_t requests_ok = 0;       // served (incl. server-side retries)
  std::uint64_t requests_failed = 0;   // exhausted the router retry budget
  std::uint64_t requests_timed_out = 0;
  // Rejected because no routable server remained.
  std::uint64_t requests_rejected_no_server = 0;
  // Re-admitted on a surviving server WITHOUT consuming the client retry
  // budget (the cross-server mirror of requests_failed_over).
  std::uint64_t requests_failed_over = 0;
  std::uint64_t retries = 0;  // budgeted retries of genuine failures

  // --- network fault effects ---------------------------------------------
  std::uint64_t requests_lost_to_server = 0;     // dropped router -> server
  std::uint64_t responses_lost_from_server = 0;  // dropped server -> router

  // --- router-side health view -------------------------------------------
  std::uint64_t probes_sent = 0;
  std::uint64_t probe_failures = 0;
  std::uint64_t server_transitions = 0;   // any server health-state edge
  std::uint64_t server_down_events = 0;   // -> down edges
  std::uint64_t server_readmissions = 0;  // recovering -> healthy edges
  std::uint64_t tenant_instantiations = 0;  // lazy (client, server) setups

  // --- gray-failure response (score-weighted routing + brownout) ---------
  std::uint64_t score_degrade_events = 0;  // score-driven healthy -> degraded
  std::uint64_t score_recover_events = 0;  // score-driven degraded -> healthy
  std::uint64_t brownout_entries = 0;      // shed-level 0 -> >0 edges
  std::uint64_t brownout_exits = 0;        // shed-level back-to-0 edges
  std::uint64_t requests_shed_brownout = 0;  // rejected by brownout shedding

  std::uint64_t requests_total() const {
    return requests_ok + requests_failed + requests_timed_out +
           requests_rejected_no_server;
  }

  struct Field {
    const char* name;
    std::uint64_t RouterCounters::* member;
  };
  static std::span<const Field> Fields();

  // One "name value" row per non-zero counter, in Fields() order.
  void Print(std::ostream& os) const;

  // Mirrors every field into `registry` as "olympian_router_<field>_total"
  // via Counter::Set (idempotent).
  void ExportTo(MetricRegistry& registry) const;
};

}  // namespace olympian::metrics
