#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>

#include "metrics/registry.h"
#include "sim/time.h"

namespace olympian::metrics {

// Latency anatomy: where did a request's end-to-end time actually go?
//
// Every request (optionally) carries a PhaseAccount that charges each
// virtual-time interval of its life to exactly one phase of a closed
// taxonomy. The accounting is *cursor-based*: the account remembers the end
// of the last charged interval, and Charge(phase, now) attributes
// [cursor, now) to `phase` and advances the cursor. Because the intervals
// tile the request's lifetime with no gaps and no overlaps, the phase sum
// equals the end-to-end latency bit-exactly in virtual time — an identity
// that holds by construction, in integer nanoseconds, with no floating
// point anywhere. PhaseCollector::Record still verifies it against the
// independently measured latency and counts mismatches, so a missed charge
// site shows up as a nonzero `phase_sum_mismatches` counter rather than a
// silently wrong blame table.

// Closed phase taxonomy. Order matters twice: it is the export order of
// every blame table, and the dominant-phase tie-break (lowest index wins).
enum class Phase : int {
  kRouterHop = 0,    // network hop, router -> server (forward leg)
  kRouterQueue,      // at the router before/between route decisions
  kAdmission,        // admission control, breaker and deadline checks
  kPlacerDecision,   // placer/device routing decision
  kReload,           // parameter reload over PCIe + warm-up
  kBatcherWait,      // waiting for a batch to fill or time out
  kGpuQueue,         // kernels submitted but not yet resident on SMs
  kGpuCompute,       // kernels resident (the paper's "GPU duration")
  kBackoff,          // retry backoff wait
  kHedgeOverhead,    // waiting on a hedged sibling leg
  kFailoverReadmit,  // failover re-admission (device- or server-level)
  kResponseHop,      // network hop, server -> router (response leg)
  kCount,
};

inline constexpr int kPhaseCount = static_cast<int>(Phase::kCount);

// Stable snake_case name used in every export ("router_hop", ...).
const char* PhaseName(Phase p);

class PhaseAccount {
 public:
  // (Re)starts the account at the request's arrival instant.
  void Start(sim::TimePoint arrival) {
    start_ = cursor_ = arrival;
    ns_.fill(0);
  }

  // Charges [cursor, now) to `p` and advances the cursor to `now`.
  void Charge(Phase p, sim::TimePoint now) {
    ns_[static_cast<int>(p)] += (now - cursor_).nanos();
    cursor_ = now;
  }

  // Splits [cursor, now) between two phases: `a` receives `a_amount`
  // (clamped into the interval) and `rest` receives the remainder. Used
  // where one awaited interval covers two distinct costs — e.g. a graph
  // run is GPU compute for the job's measured GPU duration and GPU queue
  // wait for the rest.
  void SplitCharge(Phase a, sim::Duration a_amount, Phase rest,
                   sim::TimePoint now) {
    std::int64_t total = (now - cursor_).nanos();
    std::int64_t amt = a_amount.nanos();
    if (amt < 0) amt = 0;
    if (amt > total) amt = total;
    ns_[static_cast<int>(a)] += amt;
    ns_[static_cast<int>(rest)] += total - amt;
    cursor_ = now;
  }

  std::int64_t ns(Phase p) const { return ns_[static_cast<int>(p)]; }
  const std::array<std::int64_t, kPhaseCount>& phases_ns() const { return ns_; }

  // Sum of all phase charges — equals (cursor - start) by construction.
  std::int64_t TotalNs() const;

  sim::TimePoint start() const { return start_; }
  sim::TimePoint cursor() const { return cursor_; }

  // Phase with the largest charge; ties break toward the lowest index.
  Phase Dominant() const;

 private:
  sim::TimePoint start_;
  sim::TimePoint cursor_;
  std::array<std::int64_t, kPhaseCount> ns_{};
};

// Folds finished requests' PhaseAccounts into a tail-blame table: per
// (server, model), total time per phase, the same restricted to
// SLO-violating requests, and how often each phase was the dominant one of
// a violating request. All sums are integer nanoseconds, so the table is
// bit-exact and byte-identical across shard counts when fed the same
// request trajectory.
class PhaseCollector {
 public:
  struct Options {
    // A request is "violating" when it did not succeed, or when it
    // succeeded slower than this threshold (0 disables the latency
    // criterion, leaving only failures).
    double slo_ms = 0.0;
    // Optional: per-phase log-bucketed histograms
    // (olympian_phase_ms{phase=...}) plus request/violation/mismatch
    // counters are published here. Handles are resolved once.
    MetricRegistry* registry = nullptr;
  };

  PhaseCollector() : PhaseCollector(Options{}) {}
  explicit PhaseCollector(const Options& opts);

  // Records one finished request. `latency` is the independently measured
  // end-to-end virtual latency; `ok` is terminal success. Verifies the
  // accounting identity and counts a mismatch when the phase sum differs.
  void Record(int server, const std::string& model, const PhaseAccount& pa,
              bool ok, sim::Duration latency);

  struct Row {
    std::uint64_t requests = 0;
    std::uint64_t violations = 0;
    std::array<std::int64_t, kPhaseCount> total_ns{};
    std::array<std::int64_t, kPhaseCount> violation_ns{};
    // Dominant-phase counts among violating requests.
    std::array<std::uint64_t, kPhaseCount> dominant{};
  };
  using Key = std::pair<int, std::string>;  // (server, model); server -1 ok

  const std::map<Key, Row>& rows() const { return rows_; }
  double slo_ms() const { return opts_.slo_ms; }
  std::uint64_t requests() const { return requests_; }
  std::uint64_t violations() const { return violations_; }
  // Accounting-identity failures observed by Record — 0 unless a charge
  // site was missed.
  std::uint64_t mismatches() const { return mismatches_; }

  // Folds `src`'s rows and totals into this collector (registry-side
  // instruments are not transferred; merge registries separately).
  void MergeFrom(const PhaseCollector& src);

  // Blame table as JSON: {"slo_ms", "requests", "violations",
  // "phase_sum_mismatches", "rows":[{"server", "model", "requests",
  // "violations", "dominant_phase", "phases_ns":{...},
  // "violation_phases_ns":{...}, "dominant_counts":{...}}]}. Integer
  // nanosecond sums only, so output is byte-stable.
  void WriteBlameJson(std::ostream& os) const;

 private:
  Options opts_;
  std::map<Key, Row> rows_;
  std::uint64_t requests_ = 0;
  std::uint64_t violations_ = 0;
  std::uint64_t mismatches_ = 0;
  // Registry handles, resolved once in the constructor (null when no
  // registry was given).
  std::array<MetricRegistry::Histogram*, kPhaseCount> hist_{};
  MetricRegistry::Counter* requests_counter_ = nullptr;
  MetricRegistry::Counter* violations_counter_ = nullptr;
  MetricRegistry::Counter* mismatch_counter_ = nullptr;
};

}  // namespace olympian::metrics
