#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/time.h"

namespace olympian::metrics {

// A collection of scalar observations with summary statistics.
//
// Stores all values, so percentiles and CDFs are exact. Use Welford (below)
// when only streaming mean/stddev is needed.
class Series {
 public:
  void Add(double v) { values_.push_back(v); }
  void AddDuration(sim::Duration d) { values_.push_back(d.micros()); }

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double Sum() const;
  double Mean() const;
  // Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
  double Stddev() const;
  // Coefficient of variation: stddev / mean.
  double Cv() const;
  double Min() const;
  double Max() const;
  // Nearest-rank percentile, p in [0, 100].
  double Percentile(double p) const;

  // Empirical CDF evaluated at `x`: fraction of values <= x.
  double CdfAt(double x) const;

  // (value, cumulative fraction) pairs at each distinct observation,
  // suitable for plotting the paper's CDF figures (e.g. Figure 4).
  std::vector<std::pair<double, double>> CdfPoints() const;

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double>& MutableSorted() const;
  std::vector<double> values_;
  mutable std::vector<double> sorted_;  // lazy cache, invalidated by size
};

// Streaming mean/variance (Welford's algorithm); O(1) memory.
class Welford {
 public:
  void Add(double v);
  std::size_t count() const { return n_; }
  double Mean() const { return n_ ? mean_ : 0.0; }
  double Stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Linear least-squares fit y = a*x + b. Used by the profiler to extrapolate
// node costs across batch sizes (paper §3.2 / Figure 20).
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double Eval(double x) const { return slope * x + intercept; }
};
LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace olympian::metrics
