#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/stats.h"

namespace olympian::metrics {

// Terminal disposition of one client request, as seen by the SLO layer.
enum class RequestOutcome : std::uint8_t {
  kSuccess = 0,        // completed within deadline, first admission
  kRetriedSuccess,     // completed, but only after retry/failover/hedge
  kTimedOut,           // deadline exceeded
  kRejected,           // shed by admission control or circuit breaker
  kFailed,             // retry budget exhausted on hard failures
};

struct SloOptions {
  // Availability objective used for error-budget burn; 0.999 = "three
  // nines", i.e. a 0.1% error budget.
  double availability_target = 0.999;
};

// Folded service-level view of a run: availability, latency quantiles,
// error-budget burn, and goodput — overall and per model.
struct SloReport {
  double window_seconds = 0.0;

  std::uint64_t total = 0;
  std::uint64_t succeeded = 0;   // kSuccess + kRetriedSuccess
  std::uint64_t retried_ok = 0;  // kRetriedSuccess only
  std::uint64_t timed_out = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;

  double availability = 1.0;       // succeeded / total; 1.0 with no traffic
  double availability_target = 0.999;
  // Fraction of the error budget consumed: (1 - availability) /
  // (1 - target). 1.0 means the budget is exactly spent; >1 means the SLO
  // is violated.
  double error_budget_burn = 0.0;

  // Latency statistics over *successful* requests (failures would skew the
  // distribution toward the retry/deadline plumbing, not service quality).
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;

  double goodput_rps = 0.0;  // succeeded / window

  struct ModelRow {
    std::string model;
    std::uint64_t total = 0;
    std::uint64_t succeeded = 0;
    double availability = 1.0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double p999_ms = 0.0;
    double max_ms = 0.0;
    double goodput_rps = 0.0;
  };
  std::vector<ModelRow> per_model;  // sorted by model name

  void Print(std::ostream& os) const;
};

// Accumulates per-request observations (from ClientResult vectors, bench
// sweeps, or live serving) and folds them into an SloReport. Percentiles
// are exact (metrics::Series keeps every value).
class SloAccumulator {
 public:
  void Add(std::string_view model, double latency_ms, RequestOutcome outcome);
  // Pools another accumulator's observations into this one (bench sweeps
  // merge per-case accumulators into the artifact-level report).
  void Merge(const SloAccumulator& other);

  bool empty() const { return models_.empty(); }
  std::uint64_t total() const;

  SloReport Report(double window_seconds, const SloOptions& opts = {}) const;

 private:
  struct PerModel {
    std::string model;
    Series success_latency_ms;
    std::uint64_t counts[5] = {};  // indexed by RequestOutcome
  };
  PerModel& ModelSlot(std::string_view model);
  std::vector<PerModel> models_;  // sorted by name, small N
};

}  // namespace olympian::metrics
