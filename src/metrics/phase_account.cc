#include "metrics/phase_account.h"

#include <ostream>

namespace olympian::metrics {

const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kRouterHop:
      return "router_hop";
    case Phase::kRouterQueue:
      return "router_queue";
    case Phase::kAdmission:
      return "admission";
    case Phase::kPlacerDecision:
      return "placer_decision";
    case Phase::kReload:
      return "reload";
    case Phase::kBatcherWait:
      return "batcher_wait";
    case Phase::kGpuQueue:
      return "gpu_queue";
    case Phase::kGpuCompute:
      return "gpu_compute";
    case Phase::kBackoff:
      return "backoff";
    case Phase::kHedgeOverhead:
      return "hedge_overhead";
    case Phase::kFailoverReadmit:
      return "failover_readmit";
    case Phase::kResponseHop:
      return "response_hop";
    case Phase::kCount:
      break;
  }
  return "unknown";
}

std::int64_t PhaseAccount::TotalNs() const {
  std::int64_t sum = 0;
  for (std::int64_t v : ns_) sum += v;
  return sum;
}

Phase PhaseAccount::Dominant() const {
  int best = 0;
  for (int i = 1; i < kPhaseCount; ++i) {
    if (ns_[static_cast<std::size_t>(i)] > ns_[static_cast<std::size_t>(best)])
      best = i;
  }
  return static_cast<Phase>(best);
}

PhaseCollector::PhaseCollector(const Options& opts) : opts_(opts) {
  if (opts_.registry != nullptr) {
    for (int i = 0; i < kPhaseCount; ++i) {
      hist_[static_cast<std::size_t>(i)] = &opts_.registry->GetHistogram(
          "olympian_phase_ms",
          {{"phase", PhaseName(static_cast<Phase>(i))}});
    }
    requests_counter_ =
        &opts_.registry->GetCounter("olympian_phase_requests_total");
    violations_counter_ =
        &opts_.registry->GetCounter("olympian_phase_slo_violations_total");
    mismatch_counter_ =
        &opts_.registry->GetCounter("olympian_phase_sum_mismatches_total");
  }
}

void PhaseCollector::Record(int server, const std::string& model,
                            const PhaseAccount& pa, bool ok,
                            sim::Duration latency) {
  Row& row = rows_[Key{server, model}];
  ++row.requests;
  ++requests_;
  if (pa.TotalNs() != latency.nanos()) ++mismatches_;
  const double latency_ms = static_cast<double>(latency.nanos()) / 1e6;
  const bool violating =
      !ok || (opts_.slo_ms > 0.0 && latency_ms > opts_.slo_ms);
  if (violating) {
    ++row.violations;
    ++violations_;
    ++row.dominant[static_cast<std::size_t>(static_cast<int>(pa.Dominant()))];
  }
  for (int i = 0; i < kPhaseCount; ++i) {
    const std::int64_t v = pa.phases_ns()[static_cast<std::size_t>(i)];
    row.total_ns[static_cast<std::size_t>(i)] += v;
    if (violating) row.violation_ns[static_cast<std::size_t>(i)] += v;
    // Only phases the request actually passed through land in the
    // histograms; charging zeros for the other ten would drown the signal.
    if (v > 0 && hist_[static_cast<std::size_t>(i)] != nullptr) {
      hist_[static_cast<std::size_t>(i)]->Observe(static_cast<double>(v) /
                                                  1e6);
    }
  }
  if (requests_counter_ != nullptr) {
    requests_counter_->Inc();
    if (violating) violations_counter_->Inc();
    mismatch_counter_->Set(mismatches_);
  }
}

void PhaseCollector::MergeFrom(const PhaseCollector& src) {
  for (const auto& [key, srow] : src.rows_) {
    Row& row = rows_[key];
    row.requests += srow.requests;
    row.violations += srow.violations;
    for (int i = 0; i < kPhaseCount; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      row.total_ns[idx] += srow.total_ns[idx];
      row.violation_ns[idx] += srow.violation_ns[idx];
      row.dominant[idx] += srow.dominant[idx];
    }
  }
  requests_ += src.requests_;
  violations_ += src.violations_;
  mismatches_ += src.mismatches_;
}

namespace {

void WritePhaseMap(std::ostream& os, const char* key,
                   const std::array<std::int64_t, kPhaseCount>& ns,
                   bool skip_zero) {
  os << '"' << key << "\":{";
  bool first = true;
  for (int i = 0; i < kPhaseCount; ++i) {
    const std::int64_t v = ns[static_cast<std::size_t>(i)];
    if (skip_zero && v == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << PhaseName(static_cast<Phase>(i)) << "\":" << v;
  }
  os << '}';
}

}  // namespace

void PhaseCollector::WriteBlameJson(std::ostream& os) const {
  os << "{\n";
  os << "  \"slo_ms\": " << opts_.slo_ms << ",\n";
  os << "  \"requests\": " << requests_ << ",\n";
  os << "  \"violations\": " << violations_ << ",\n";
  os << "  \"phase_sum_mismatches\": " << mismatches_ << ",\n";
  os << "  \"rows\": [";
  bool first_row = true;
  for (const auto& [key, row] : rows_) {
    if (!first_row) os << ',';
    first_row = false;
    os << "\n    {\"server\": " << key.first << ", \"model\": \""
       << key.second << "\", \"requests\": " << row.requests
       << ", \"violations\": " << row.violations;
    // Dominant phase of the row's violations: highest count, ties toward
    // the lowest phase index (same rule as PhaseAccount::Dominant).
    if (row.violations > 0) {
      int best = 0;
      for (int i = 1; i < kPhaseCount; ++i) {
        if (row.dominant[static_cast<std::size_t>(i)] >
            row.dominant[static_cast<std::size_t>(best)])
          best = i;
      }
      os << ", \"dominant_phase\": \"" << PhaseName(static_cast<Phase>(best))
         << '"';
    }
    os << ", ";
    WritePhaseMap(os, "phases_ns", row.total_ns, /*skip_zero=*/true);
    os << ", ";
    WritePhaseMap(os, "violation_phases_ns", row.violation_ns,
                  /*skip_zero=*/true);
    if (row.violations > 0) {
      os << ", \"dominant_counts\":{";
      bool first = true;
      for (int i = 0; i < kPhaseCount; ++i) {
        const std::uint64_t c = row.dominant[static_cast<std::size_t>(i)];
        if (c == 0) continue;
        if (!first) os << ',';
        first = false;
        os << '"' << PhaseName(static_cast<Phase>(i)) << "\":" << c;
      }
      os << '}';
    }
    os << '}';
  }
  if (!first_row) os << "\n  ";
  os << "]\n}\n";
}

}  // namespace olympian::metrics
