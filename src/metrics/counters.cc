#include "metrics/counters.h"

#include <ostream>
#include <string>

#include "metrics/registry.h"

namespace olympian::metrics {

std::span<const ServingCounters::Field> ServingCounters::Fields() {
  static constexpr Field kFields[] = {
      {"kernel_failures_injected", &ServingCounters::kernel_failures_injected},
      {"device_hangs", &ServingCounters::device_hangs},
      {"device_resets", &ServingCounters::device_resets},
      {"alloc_fault_windows", &ServingCounters::alloc_fault_windows},
      {"requests_ok", &ServingCounters::requests_ok},
      {"requests_retried_ok", &ServingCounters::requests_retried_ok},
      {"requests_timed_out", &ServingCounters::requests_timed_out},
      {"requests_rejected", &ServingCounters::requests_rejected},
      {"requests_failed", &ServingCounters::requests_failed},
      {"retries", &ServingCounters::retries},
      {"requests_shed", &ServingCounters::requests_shed},
      {"breaker_rejections", &ServingCounters::breaker_rejections},
      {"breaker_opens", &ServingCounters::breaker_opens},
      {"transient_alloc_failures", &ServingCounters::transient_alloc_failures},
      {"kernel_failures_observed", &ServingCounters::kernel_failures_observed},
      {"deadline_cancellations", &ServingCounters::deadline_cancellations},
      {"health_transitions", &ServingCounters::health_transitions},
      {"device_down_events", &ServingCounters::device_down_events},
      {"device_readmissions", &ServingCounters::device_readmissions},
      {"probe_failures", &ServingCounters::probe_failures},
      {"failover_cancellations", &ServingCounters::failover_cancellations},
      {"requests_failed_over", &ServingCounters::requests_failed_over},
      {"requests_rejected_no_device",
       &ServingCounters::requests_rejected_no_device},
      {"replica_instantiations", &ServingCounters::replica_instantiations},
      {"hedges_launched", &ServingCounters::hedges_launched},
      {"hedge_wins", &ServingCounters::hedge_wins},
  };
  return kFields;
}

void ServingCounters::Print(std::ostream& os) const {
  for (const Field& f : Fields()) {
    const std::uint64_t v = this->*f.member;
    if (v != 0) os << "  " << f.name << " " << v << "\n";
  }
}

void ServingCounters::ExportTo(MetricRegistry& registry) const {
  std::string name;
  for (const Field& f : Fields()) {
    name.assign("olympian_");
    name.append(f.name);
    name.append("_total");
    registry.GetCounter(name).Set(this->*f.member);
  }
}

}  // namespace olympian::metrics
