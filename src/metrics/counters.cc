#include "metrics/counters.h"

#include <ostream>

namespace olympian::metrics {

namespace {
void Row(std::ostream& os, const char* name, std::uint64_t v) {
  if (v != 0) os << "  " << name << " " << v << "\n";
}
}  // namespace

void ServingCounters::Print(std::ostream& os) const {
  Row(os, "kernel_failures_injected", kernel_failures_injected);
  Row(os, "device_hangs", device_hangs);
  Row(os, "device_resets", device_resets);
  Row(os, "alloc_fault_windows", alloc_fault_windows);
  Row(os, "requests_ok", requests_ok);
  Row(os, "requests_retried_ok", requests_retried_ok);
  Row(os, "requests_timed_out", requests_timed_out);
  Row(os, "requests_rejected", requests_rejected);
  Row(os, "requests_failed", requests_failed);
  Row(os, "retries", retries);
  Row(os, "requests_shed", requests_shed);
  Row(os, "breaker_rejections", breaker_rejections);
  Row(os, "breaker_opens", breaker_opens);
  Row(os, "transient_alloc_failures", transient_alloc_failures);
  Row(os, "kernel_failures_observed", kernel_failures_observed);
  Row(os, "deadline_cancellations", deadline_cancellations);
  Row(os, "health_transitions", health_transitions);
  Row(os, "device_down_events", device_down_events);
  Row(os, "device_readmissions", device_readmissions);
  Row(os, "probe_failures", probe_failures);
  Row(os, "failover_cancellations", failover_cancellations);
  Row(os, "requests_failed_over", requests_failed_over);
  Row(os, "requests_rejected_no_device", requests_rejected_no_device);
  Row(os, "replica_instantiations", replica_instantiations);
  Row(os, "hedges_launched", hedges_launched);
  Row(os, "hedge_wins", hedge_wins);
}

}  // namespace olympian::metrics
