#include "metrics/counters.h"

#include <ostream>
#include <string>

#include "metrics/registry.h"

namespace olympian::metrics {

std::span<const ServingCounters::Field> ServingCounters::Fields() {
  static constexpr Field kFields[] = {
      {"kernel_failures_injected", &ServingCounters::kernel_failures_injected},
      {"device_hangs", &ServingCounters::device_hangs},
      {"device_resets", &ServingCounters::device_resets},
      {"alloc_fault_windows", &ServingCounters::alloc_fault_windows},
      {"capacity_fault_windows", &ServingCounters::capacity_fault_windows},
      {"requests_ok", &ServingCounters::requests_ok},
      {"requests_retried_ok", &ServingCounters::requests_retried_ok},
      {"requests_timed_out", &ServingCounters::requests_timed_out},
      {"requests_rejected", &ServingCounters::requests_rejected},
      {"requests_failed", &ServingCounters::requests_failed},
      {"retries", &ServingCounters::retries},
      {"requests_shed", &ServingCounters::requests_shed},
      {"breaker_rejections", &ServingCounters::breaker_rejections},
      {"breaker_opens", &ServingCounters::breaker_opens},
      {"transient_alloc_failures", &ServingCounters::transient_alloc_failures},
      {"kernel_failures_observed", &ServingCounters::kernel_failures_observed},
      {"deadline_cancellations", &ServingCounters::deadline_cancellations},
      {"health_transitions", &ServingCounters::health_transitions},
      {"device_down_events", &ServingCounters::device_down_events},
      {"device_readmissions", &ServingCounters::device_readmissions},
      {"probe_failures", &ServingCounters::probe_failures},
      {"failover_cancellations", &ServingCounters::failover_cancellations},
      {"requests_failed_over", &ServingCounters::requests_failed_over},
      {"requests_rejected_no_device",
       &ServingCounters::requests_rejected_no_device},
      {"replica_instantiations", &ServingCounters::replica_instantiations},
      {"hedges_launched", &ServingCounters::hedges_launched},
      {"hedge_wins", &ServingCounters::hedge_wins},
  };
  return kFields;
}

void ServingCounters::Print(std::ostream& os) const {
  for (const Field& f : Fields()) {
    const std::uint64_t v = this->*f.member;
    if (v != 0) os << "  " << f.name << " " << v << "\n";
  }
}

void ServingCounters::ExportTo(MetricRegistry& registry) const {
  std::string name;
  for (const Field& f : Fields()) {
    name.assign("olympian_");
    name.append(f.name);
    name.append("_total");
    registry.GetCounter(name).Set(this->*f.member);
  }
}

std::span<const RouterCounters::Field> RouterCounters::Fields() {
  static constexpr Field kFields[] = {
      {"server_crashes", &RouterCounters::server_crashes},
      {"server_hangs", &RouterCounters::server_hangs},
      {"partitions", &RouterCounters::partitions},
      {"capacity_losses", &RouterCounters::capacity_losses},
      {"jitter_windows", &RouterCounters::jitter_windows},
      {"requests_routed", &RouterCounters::requests_routed},
      {"requests_ok", &RouterCounters::requests_ok},
      {"requests_failed", &RouterCounters::requests_failed},
      {"requests_timed_out", &RouterCounters::requests_timed_out},
      {"requests_rejected_no_server",
       &RouterCounters::requests_rejected_no_server},
      {"requests_failed_over", &RouterCounters::requests_failed_over},
      {"retries", &RouterCounters::retries},
      {"requests_lost_to_server", &RouterCounters::requests_lost_to_server},
      {"responses_lost_from_server",
       &RouterCounters::responses_lost_from_server},
      {"probes_sent", &RouterCounters::probes_sent},
      {"probe_failures", &RouterCounters::probe_failures},
      {"server_transitions", &RouterCounters::server_transitions},
      {"server_down_events", &RouterCounters::server_down_events},
      {"server_readmissions", &RouterCounters::server_readmissions},
      {"tenant_instantiations", &RouterCounters::tenant_instantiations},
      {"score_degrade_events", &RouterCounters::score_degrade_events},
      {"score_recover_events", &RouterCounters::score_recover_events},
      {"brownout_entries", &RouterCounters::brownout_entries},
      {"brownout_exits", &RouterCounters::brownout_exits},
      {"requests_shed_brownout", &RouterCounters::requests_shed_brownout},
  };
  return kFields;
}

void RouterCounters::Print(std::ostream& os) const {
  for (const Field& f : Fields()) {
    const std::uint64_t v = this->*f.member;
    if (v != 0) os << "  " << f.name << " " << v << "\n";
  }
}

void RouterCounters::ExportTo(MetricRegistry& registry) const {
  std::string name;
  for (const Field& f : Fields()) {
    name.assign("olympian_router_");
    name.append(f.name);
    name.append("_total");
    registry.GetCounter(name).Set(this->*f.member);
  }
}

}  // namespace olympian::metrics
