#include "metrics/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace olympian::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "  " << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  line(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << "  ";
  for (std::size_t i = 2; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) line(row);
}

void Table::PrintCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace olympian::metrics
