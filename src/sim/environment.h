#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/task.h"
#include "sim/time.h"

namespace olympian::sim {

class Environment;
class Process;

namespace detail {

// Shared state of a spawned process. Kept alive by the Environment until
// completion and by any outstanding Process handles.
struct ProcessState {
  Environment* env = nullptr;
  std::string name;
  std::uint64_t id = 0;
  bool done = false;
  std::exception_ptr exception;
  // Raw frame handle; owned here until completion (then self-destroyed).
  Task::Handle frame = nullptr;
  // Coroutines blocked in Process::Join().
  std::vector<std::coroutine_handle<>> joiners;

  void OnComplete(std::exception_ptr e);
};

}  // namespace detail

// Handle to a spawned process. Copyable; observing only (no cancellation).
class Process {
 public:
  Process() = default;

  bool valid() const { return state_ != nullptr; }
  bool done() const { return state_ && state_->done; }
  std::uint64_t id() const { return state_ ? state_->id : 0; }
  const std::string& name() const;

  // Awaitable: suspends until the process completes. Rethrows the process's
  // uncaught exception, if any, at the join site. (The Environment also
  // reports the first uncaught process exception from Run().)
  auto Join() {
    struct Awaiter {
      std::shared_ptr<detail::ProcessState> state;
      bool await_ready() const noexcept { return !state || state->done; }
      void await_suspend(std::coroutine_handle<> h) {
        state->joiners.push_back(h);
      }
      void await_resume() const {
        if (state && state->exception) std::rethrow_exception(state->exception);
      }
    };
    return Awaiter{state_};
  }

 private:
  friend class Environment;
  explicit Process(std::shared_ptr<detail::ProcessState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::ProcessState> state_;
};

// A deterministic single-threaded discrete-event simulation.
//
// The Environment owns the virtual clock and the event queue. Processes are
// C++20 coroutines (`Task`) that suspend on awaitables — `Delay`, condition
// variables, channels — and are resumed by the event loop. Two events at the
// same virtual instant run in schedule order (FIFO), so a simulation is a
// pure function of its inputs and seeds.
class Environment {
 public:
  Environment() = default;
  ~Environment();

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  // Current virtual time.
  TimePoint Now() const { return now_; }

  // Awaitable: suspend the calling process for `d` of virtual time.
  // A zero delay still yields through the event queue (a cooperative yield).
  auto Delay(Duration d) {
    struct Awaiter {
      Environment* env;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        env->ScheduleAt(env->now_ + d, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  // Start `t` as an independent process. The process begins running at the
  // current virtual time, after already-queued events.
  Process Spawn(Task t, std::string name = {});

  // Run until the event queue drains. Throws the first uncaught process
  // exception, if any (after draining).
  void Run();

  // Run until the clock would pass `deadline` (events at exactly `deadline`
  // are executed). Returns true if the queue drained before the deadline.
  bool RunUntil(TimePoint deadline);

  // Number of spawned processes that have not yet completed.
  std::size_t live_process_count() const { return live_; }

  // Total events executed; a cheap progress/efficiency metric for benches.
  std::uint64_t events_executed() const { return events_executed_; }

  // Schedule a raw coroutine resume. Used by awaitable primitives; not
  // usually called directly by application code.
  void ScheduleAt(TimePoint t, std::coroutine_handle<> h);
  void ScheduleNow(std::coroutine_handle<> h) { ScheduleAt(now_, h); }

  // Allocation-free timer callback, for high-frequency internal events
  // (e.g. GPU kernel-wave completions). `ctx` must outlive the event.
  using Callback = void (*)(void* ctx, std::uint64_t arg);
  void ScheduleCallbackAt(TimePoint t, Callback fn, void* ctx,
                          std::uint64_t arg);

 private:
  friend struct detail::ProcessState;

  struct Event {
    TimePoint t;
    std::uint64_t seq;
    std::coroutine_handle<> h;   // exactly one of h / fn is set
    Callback fn = nullptr;
    void* ctx = nullptr;
    std::uint64_t arg = 0;
    bool operator>(const Event& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  bool Step();  // execute one event; false if queue empty
  void NoteProcessDone(detail::ProcessState* s, bool had_joiners);

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_process_id_ = 1;
  std::uint64_t events_executed_ = 0;
  std::size_t live_ = 0;
  bool tearing_down_ = false;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::vector<std::shared_ptr<detail::ProcessState>> processes_;
  std::exception_ptr first_error_;
};

}  // namespace olympian::sim
