#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "sim/task.h"
#include "sim/time.h"

namespace olympian::sim {

class Environment;
class Process;

namespace detail {

// Shared state of a spawned process. Kept alive by the Environment until
// completion and by any outstanding Process handles. Allocated from the
// per-thread FramePool (via std::allocate_shared), so spawning is
// malloc-free in steady state.
struct ProcessState {
  Environment* env = nullptr;
  std::string name;
  std::uint64_t id = 0;
  // Position in Environment::processes_, maintained by the Environment so
  // completion bookkeeping is O(1) (swap-remove, no linear scan).
  std::uint32_t index = 0;
  bool done = false;
  std::exception_ptr exception;
  // Raw frame handle; owned here until completion (then self-destroyed).
  Task::Handle frame = nullptr;
  // Coroutines blocked in Process::Join().
  std::vector<std::coroutine_handle<>> joiners;

  void OnComplete(std::exception_ptr e);
};

}  // namespace detail

// Handle to a spawned process. Copyable; observing only (no cancellation).
class Process {
 public:
  Process() = default;

  bool valid() const { return state_ != nullptr; }
  bool done() const { return state_ && state_->done; }
  std::uint64_t id() const { return state_ ? state_->id : 0; }
  const std::string& name() const;

  // Awaitable: suspends until the process completes. Rethrows the process's
  // uncaught exception, if any, at the join site.
  //
  // Exception-reporting contract (see also Environment::Run): a process
  // completing with an uncaught exception delivers it to the joiners
  // *registered at completion time* — each of them has it rethrown from
  // `co_await Join()`, and the Environment then considers the error
  // handled: it is NOT additionally surfaced from Run(), even if every
  // joiner swallows it. With no joiners registered at completion, the
  // exception is instead stored as the run's first error and rethrown from
  // Run()/RunUntil() after the queue drains or the deadline is reached.
  // A Join() awaited after completion always rethrows too (await_ready
  // path), so a late joiner of an unjoined failed process observes the same
  // exception that Run() reports.
  auto Join() {
    struct Awaiter {
      std::shared_ptr<detail::ProcessState> state;
      bool await_ready() const noexcept { return !state || state->done; }
      void await_suspend(std::coroutine_handle<> h) {
        state->joiners.push_back(h);
      }
      void await_resume() const {
        if (state && state->exception) std::rethrow_exception(state->exception);
      }
    };
    return Awaiter{state_};
  }

 private:
  friend class Environment;
  explicit Process(std::shared_ptr<detail::ProcessState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::ProcessState> state_;
};

// A deterministic single-threaded discrete-event simulation.
//
// The Environment owns the virtual clock and the event queue. Processes are
// C++20 coroutines (`Task`) that suspend on awaitables — `Delay`, condition
// variables, channels — and are resumed by the event loop. Two events at the
// same virtual instant run in schedule order (FIFO), so a simulation is a
// pure function of its inputs and seeds.
//
// The event queue is two-tier, tuned for the dominant schedule shape:
//  * a FIFO ring buffer for same-instant events (`ScheduleNow` — kernel
//    waves, condvar wakes, gang resumes — plus zero delays), O(1) and
//    comparison-free;
//  * a cache-friendly 4-ary min-heap on (time, seq) for future timers.
// Global execution order is still exactly ascending (time, seq): the loop
// compares the ring front against the heap top, so a timer landing at the
// current instant with an earlier sequence number runs first. The split is
// an implementation detail — event ordering is bit-identical to a single
// totally-ordered queue (enforced by golden_determinism_test).
class Environment {
 public:
  Environment() = default;
  ~Environment();

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  // Current virtual time.
  TimePoint Now() const { return now_; }

  // Sentinel returned by NextEventTime() when the queue is empty: later than
  // any schedulable instant.
  static constexpr TimePoint Never() {
    return TimePoint::FromNanos(std::numeric_limits<std::int64_t>::max());
  }

  // Timestamp of the next pending event, or Never() if the queue is empty.
  // The sharded engine uses this to compute conservative synchronization
  // horizons; it is also handy for tests.
  TimePoint NextEventTime() const;

  // Advance the clock to `t` without executing anything. Only legal when `t`
  // is not in the past and no pending event precedes `t` (throws
  // std::logic_error otherwise — skipping over an event would corrupt the
  // trajectory). The sharded engine uses this to align a parked shard's
  // clock with the hub before a hub instant, so state mutations the hub
  // applies across the shard boundary schedule follow-ups at the correct
  // time.
  void AdvanceTo(TimePoint t);

  // Awaitable: suspend the calling process for `d` of virtual time.
  // A zero delay still yields through the event queue (a cooperative yield).
  auto Delay(Duration d) {
    struct Awaiter {
      Environment* env;
      Duration d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        env->ScheduleAt(env->now_ + d, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  // Start `t` as an independent process. The process begins running at the
  // current virtual time, after already-queued events.
  Process Spawn(Task t, std::string name = {});

  // Run until the event queue drains. Throws the run's first unhandled
  // process error, if any (after draining) — see Process::Join for what
  // counts as unhandled.
  //
  // Not reentrant: calling Run/RunUntil from inside an event handler (a
  // process resumed by this loop) throws std::logic_error. See RunUntil.
  void Run();

  // Run until the clock would pass `deadline` (events at exactly `deadline`
  // are executed). Returns true if the queue drained before the deadline.
  // Either way the clock ends at `deadline` (never earlier), so consecutive
  // RunUntil calls carve virtual time into contiguous windows.
  //
  // Contract: RunUntil drives the loop from the *outside* — it may only be
  // called from non-coroutine code while no Run/RunUntil on this
  // Environment is already on the stack. Nesting it inside an event handler
  // would re-enter the dispatch loop mid-event and break the (time, seq)
  // total order; processes that want to pause until a time use
  // `co_await Delay(...)` instead. Under the sharded engine each shard's
  // loop owns its deadline windows outright: only ShardedEngine::Run calls
  // RunUntil on shard environments, one window at a time, so application
  // code must never call Run/RunUntil on a shard environment. Violations
  // throw std::logic_error.
  bool RunUntil(TimePoint deadline);

  // Sharded-engine window primitive: like RunUntil, but the bound is
  // re-read through `cap` before every event, so an event handler that
  // lowers `*cap` mid-window takes effect immediately (the engine's
  // boundary sends self-cap their shard's window this way). The caller
  // must only ever LOWER `*cap` while the loop runs, and never below the
  // current clock. On return the clock lands exactly on the final `*cap`
  // when it is finite; with `*cap == Never()` (an unbounded window) a
  // drained queue leaves the clock at the last executed event instead of
  // teleporting it to the sentinel. Same reentrancy contract as RunUntil.
  bool RunUntilDynamic(const TimePoint* cap);

  // Number of spawned processes that have not yet completed.
  std::size_t live_process_count() const { return live_; }

  // Total events executed; a cheap progress/efficiency metric for benches.
  std::uint64_t events_executed() const { return events_executed_; }

  // Schedule a raw coroutine resume. Used by awaitable primitives; not
  // usually called directly by application code. Defined inline so awaiters
  // in headers (Delay, CondVar::Wait, ...) inline the whole push path.
  void ScheduleAt(TimePoint t, std::coroutine_handle<> h) {
    if (tearing_down_) return;
    if (t == now_) {
      ring_.push(Event{t, next_seq_++, h});
    } else {
      heap_.push(Event{t, next_seq_++, h});
    }
  }
  void ScheduleNow(std::coroutine_handle<> h) {
    if (tearing_down_) return;
    ring_.push(Event{now_, next_seq_++, h});
  }

  // Allocation-free timer callback, for high-frequency internal events
  // (e.g. GPU kernel-wave completions). `ctx` must outlive the event.
  using Callback = void (*)(void* ctx, std::uint64_t arg);
  void ScheduleCallbackAt(TimePoint t, Callback fn, void* ctx,
                          std::uint64_t arg) {
    if (tearing_down_) return;
    if (t == now_) {
      ring_.push(Event{t, next_seq_++, nullptr, fn, ctx, arg});
    } else {
      heap_.push(Event{t, next_seq_++, nullptr, fn, ctx, arg});
    }
  }

 private:
  friend struct detail::ProcessState;

  struct Event {
    TimePoint t;
    std::uint64_t seq;
    std::coroutine_handle<> h;   // exactly one of h / fn is set
    Callback fn = nullptr;
    void* ctx = nullptr;
    std::uint64_t arg = 0;
  };

  // Ascending (time, seq) — the global execution order. Deliberately tests
  // `!=` first: in heap sifts the times are almost never equal, so this
  // branch predicts perfectly, whereas leading with a short-circuit `<`
  // branches 50/50 and measures ~2x slower across the whole event loop.
  static bool Earlier(const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }

  // Power-of-two circular buffer holding same-instant events in FIFO order.
  class EventRing {
   public:
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    const Event& front() const { return buf_[head_]; }
    void push(const Event& e) {
      if (size_ == buf_.size()) Grow();
      buf_[(head_ + size_) & mask_] = e;
      ++size_;
    }
    Event pop() {
      Event e = buf_[head_];
      head_ = (head_ + 1) & mask_;
      --size_;
      return e;
    }

   private:
    void Grow();
    std::vector<Event> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::size_t mask_ = 0;
  };

  // 4-ary min-heap on (time, seq). Shallower than a binary heap and sifts
  // through adjacent cache lines, which measures faster for the deep timer
  // queues the GPU model produces. Sifts move a hole instead of swapping:
  // one element copy per level rather than three (events are 48 bytes, so
  // copies are most of the work).
  class TimerHeap {
   public:
    bool empty() const { return v_.empty(); }
    std::size_t size() const { return v_.size(); }
    const Event& top() const { return v_.front(); }
    void push(const Event& e) {
      v_.push_back(e);  // grows the vector; the new slot becomes the hole
      const std::size_t tail = v_.size() - 1;
      std::size_t i = tail;
      while (i > 0) {
        const std::size_t parent = (i - 1) / 4;
        if (!Earlier(e, v_[parent])) break;
        v_[i] = v_[parent];
        i = parent;
      }
      if (i != tail) v_[i] = e;  // push_back already stored it at the tail
    }
    // Small enough to inline at the call site; the sift itself is outlined
    // so the common single-timer case is branch + copy + pop_back only.
    Event pop() {
      Event top = v_.front();
      if (v_.size() == 1) {
        v_.pop_back();
      } else {
        SiftDownFromTop();
      }
      return top;
    }

   private:
    void SiftDownFromTop();  // refill the root hole from the back element
    std::vector<Event> v_;
  };

  bool Step();  // execute one event; false if queue empty
  // Advance the clock to `e.t` and run its handler. Inlined into each pop
  // site of Step, so every path is straight-line code with a single Event
  // copy out of its container.
  void ExecuteEvent(const Event& e);
  bool QueueEmpty() const { return ring_.empty() && heap_.empty(); }
  // The event that would execute next; nullptr if none. Pointer is
  // invalidated by any schedule/step.
  const Event* PeekNext() const;
  void NoteProcessDone(detail::ProcessState* s, bool had_joiners);

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_process_id_ = 1;
  std::uint64_t events_executed_ = 0;
  std::size_t live_ = 0;
  bool tearing_down_ = false;
  bool running_ = false;  // reentrancy guard for Run/RunUntil
  EventRing ring_;   // events at the current instant, FIFO
  TimerHeap heap_;   // future events, min (time, seq)
  std::vector<std::shared_ptr<detail::ProcessState>> processes_;
  std::exception_ptr first_error_;
};

}  // namespace olympian::sim
