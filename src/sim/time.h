#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace olympian::sim {

// A span of virtual time with nanosecond resolution.
//
// All simulation timing in this project flows through this type; raw
// integers never carry time units across an interface. Durations may be
// negative (the difference of two time points is a Duration).
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration Nanos(std::int64_t n) { return Duration(n); }
  static constexpr Duration Micros(std::int64_t u) { return Duration(u * 1000); }
  static constexpr Duration Millis(std::int64_t m) {
    return Duration(m * 1000000);
  }
  static constexpr Duration Seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9));
  }
  static constexpr Duration Zero() { return Duration(0); }
  // Larger than any duration arising in practice; safe to add to a TimePoint.
  static constexpr Duration Max() { return Duration(int64_t{1} << 60); }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr double micros() const { return static_cast<double>(ns_) / 1e3; }
  constexpr double millis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator-() const { return Duration(-ns_); }
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<std::int64_t>(static_cast<double>(ns_) * k));
  }
  constexpr Duration operator/(std::int64_t k) const { return Duration(ns_ / k); }
  // Ratio of two durations, e.g. for utilization computations.
  constexpr double Ratio(Duration denom) const {
    return static_cast<double>(ns_) / static_cast<double>(denom.ns_);
  }
  constexpr Duration& operator+=(Duration o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    ns_ -= o.ns_;
    return *this;
  }

  constexpr auto operator<=>(const Duration&) const = default;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

constexpr Duration operator*(double k, Duration d) { return d * k; }

// An instant on the virtual clock. Time zero is the start of a simulation.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint FromNanos(std::int64_t ns) { return TimePoint(ns); }

  constexpr std::int64_t nanos() const { return ns_; }
  constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr TimePoint operator+(Duration d) const {
    return TimePoint(ns_ + d.nanos());
  }
  constexpr TimePoint operator-(Duration d) const {
    return TimePoint(ns_ - d.nanos());
  }
  constexpr Duration operator-(TimePoint o) const {
    return Duration::Nanos(ns_ - o.ns_);
  }

  constexpr auto operator<=>(const TimePoint&) const = default;

 private:
  constexpr explicit TimePoint(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

// Human-readable rendering, e.g. "1.25ms" or "830us"; used in logs and tables.
std::string ToString(Duration d);
std::string ToString(TimePoint t);

}  // namespace olympian::sim
