#include "sim/shard.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace olympian::sim {

ShardedEngine::ShardedEngine(std::size_t shards, Duration lookahead)
    : shards_(shards == 0 ? 1 : shards), lookahead_(lookahead) {
  if (sharded() && lookahead_ <= Duration::Zero()) {
    throw std::logic_error(
        "ShardedEngine: sharded execution requires a positive lookahead "
        "(the minimum cross-shard hop latency)");
  }
  const std::size_t envs = sharded() ? shards_ + 1 : 1;
  envs_.reserve(envs);
  for (std::size_t i = 0; i < envs; ++i) {
    envs_.push_back(std::make_unique<Environment>());
  }
  if (sharded()) {
    to_shard_.resize(shards_);
    to_hub_.resize(shards_);
    worker_errors_.resize(shards_);
  }
}

ShardedEngine::~ShardedEngine() { StopWorkers(); }

void ShardedEngine::Send(std::size_t shard, bool to_hub, Duration latency,
                         std::coroutine_handle<> h) {
  if (!sharded()) {
    // Single-shard: the "hop" degenerates to a latency delay on the one
    // queue, byte-identical to what the unsharded code path schedules.
    Environment& env = hub();
    env.ScheduleAt(env.Now() + latency, h);
    return;
  }
  if (latency < lookahead_) {
    throw std::logic_error(
        "ShardedEngine: cross-shard hop latency below the engine lookahead "
        "would violate the conservative horizon");
  }
  Environment& src = to_hub ? *envs_[shard + 1] : hub();
  Channel& ch = to_hub ? to_hub_[shard] : to_shard_[shard];
  ch.msgs.push_back(BoundaryEvent{src.Now() + latency, h});
}

void ShardedEngine::Deliver() {
  // Hub -> worker: each channel is already in send (seq) order; a stable
  // sort by arrival time yields (time, seq) — the documented merge order.
  for (std::size_t k = 0; k < shards_; ++k) {
    Channel& ch = to_shard_[k];
    if (ch.msgs.empty()) continue;
    std::stable_sort(ch.msgs.begin(), ch.msgs.end(),
                     [](const BoundaryEvent& a, const BoundaryEvent& b) {
                       return a.at < b.at;
                     });
    Environment& env = *envs_[k + 1];
    for (const BoundaryEvent& m : ch.msgs) {
      if (m.at < env.Now()) {
        throw std::logic_error(
            "ShardedEngine: boundary event arrives in the destination "
            "shard's past (conservative horizon violated)");
      }
      env.ScheduleAt(m.at, m.h);
    }
    boundary_events_ += ch.msgs.size();
    ch.msgs.clear();
  }
  // Worker -> hub: append channels in shard order (each in seq order), then
  // stable-sort by arrival time: ties keep shard-then-seq order, giving the
  // (time, shard, seq) total order the determinism contract documents.
  merge_scratch_.clear();
  for (std::size_t k = 0; k < shards_; ++k) {
    Channel& ch = to_hub_[k];
    merge_scratch_.insert(merge_scratch_.end(), ch.msgs.begin(),
                          ch.msgs.end());
    ch.msgs.clear();
  }
  if (merge_scratch_.empty()) return;
  std::stable_sort(merge_scratch_.begin(), merge_scratch_.end(),
                   [](const BoundaryEvent& a, const BoundaryEvent& b) {
                     return a.at < b.at;
                   });
  Environment& env = hub();
  for (const BoundaryEvent& m : merge_scratch_) {
    if (m.at < env.Now()) {
      throw std::logic_error(
          "ShardedEngine: boundary event arrives in the hub's past "
          "(conservative horizon violated)");
    }
    env.ScheduleAt(m.at, m.h);
  }
  boundary_events_ += merge_scratch_.size();
}

void ShardedEngine::StartWorkers() {
  if (!threads_.empty()) return;
  // Capture the spawn-time phase on this thread: a worker that first reads
  // phase_ only after the engine already opened a window must still see that
  // window as "new", or it would sleep through it and deadlock the barrier.
  const std::uint64_t start_phase = phase_.load(std::memory_order_relaxed);
  threads_.reserve(shards_);
  for (std::size_t k = 0; k < shards_; ++k) {
    threads_.emplace_back([this, k, start_phase] { WorkerMain(k, start_phase); });
  }
}

void ShardedEngine::StopWorkers() {
  if (threads_.empty()) return;
  stop_.store(true, std::memory_order_relaxed);
  phase_.fetch_add(1, std::memory_order_release);
  phase_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

void ShardedEngine::WorkerMain(std::size_t k, std::uint64_t seen) {
  Environment& env = *envs_[k + 1];
  for (;;) {
    phase_.wait(seen, std::memory_order_acquire);
    seen = phase_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_relaxed)) return;
    try {
      env.RunUntil(window_deadline_);
    } catch (...) {
      worker_errors_[k] = std::current_exception();
    }
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
    remaining_.notify_one();
  }
}

void ShardedEngine::RunWindow(TimePoint deadline) {
  window_deadline_ = deadline;
  remaining_.store(static_cast<std::uint32_t>(shards_),
                   std::memory_order_relaxed);
  phase_.fetch_add(1, std::memory_order_release);
  phase_.notify_all();
  for (;;) {
    const std::uint32_t left = remaining_.load(std::memory_order_acquire);
    if (left == 0) break;
    remaining_.wait(left, std::memory_order_acquire);
  }
  for (std::size_t k = 0; k < shards_; ++k) {
    if (worker_errors_[k]) {
      std::rethrow_exception(std::exchange(worker_errors_[k], nullptr));
    }
  }
}

void ShardedEngine::Run() {
  if (!sharded()) {
    hub().Run();
    return;
  }
  StartWorkers();
  for (;;) {
    Deliver();
    const TimePoint hub_next = hub().NextEventTime();
    TimePoint worker_next = Environment::Never();
    for (std::size_t k = 0; k < shards_; ++k) {
      worker_next = std::min(worker_next, envs_[k + 1]->NextEventTime());
    }
    if (hub_next == Environment::Never() &&
        worker_next == Environment::Never()) {
      break;  // every queue and channel drained
    }
    if (hub_next <= worker_next) {
      // Hub instant: align every worker clock first so hub code touching
      // shard-resident objects (fault injection, shutdown) schedules
      // follow-ups at the current instant, then run the whole instant —
      // including same-instant cascades — serially on this thread.
      ++hub_instants_;
      for (std::size_t k = 0; k < shards_; ++k) {
        envs_[k + 1]->AdvanceTo(hub_next);
      }
      hub().RunUntil(hub_next);
    } else {
      // Parallel window [worker_next, end): conservative because every
      // boundary message sent from inside the window arrives at or after
      // worker_next + lookahead >= end, and the hub stays parked (its next
      // event is at end or later).
      ++sync_windows_;
      const TimePoint horizon = worker_next + lookahead_;
      const TimePoint end = hub_next < horizon ? hub_next : horizon;
      RunWindow(end - Duration::Nanos(1));
    }
  }
}

std::uint64_t ShardedEngine::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& env : envs_) total += env->events_executed();
  return total;
}

}  // namespace olympian::sim
