#include "sim/shard.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace olympian::sim {

ShardedEngine::ShardedEngine(std::size_t shards, Duration lookahead,
                             std::vector<std::size_t> lane_to_shard)
    : shards_(shards == 0 ? 1 : shards),
      lookahead_(lookahead),
      lane_to_shard_(std::move(lane_to_shard)) {
  if (sharded() && lookahead_ <= Duration::Zero()) {
    throw std::logic_error(
        "ShardedEngine: shards=" + std::to_string(shards_) +
        " requires a positive lookahead; pass the minimum cross-shard hop "
        "latency (e.g. the cluster's router<->server net_delay) as the "
        "lookahead argument, or construct with shards=1");
  }
  if (lane_to_shard_.empty()) {
    // Identity map: one lane per shard, the pre-lane API shape.
    lane_to_shard_.resize(shards_);
    for (std::size_t k = 0; k < shards_; ++k) lane_to_shard_[k] = k;
  }
  for (std::size_t l = 0; l < lane_to_shard_.size(); ++l) {
    if (lane_to_shard_[l] >= shards_) {
      throw std::logic_error(
          "ShardedEngine: lane_to_shard[" + std::to_string(l) + "] = " +
          std::to_string(lane_to_shard_[l]) + " names a shard >= shards (" +
          std::to_string(shards_) +
          "); every lane must map to a worker shard in [0, shards)");
    }
  }
  const std::size_t envs = sharded() ? shards_ + 1 : 1;
  envs_.reserve(envs);
  for (std::size_t i = 0; i < envs; ++i) {
    envs_.push_back(std::make_unique<Environment>());
  }
  lane_boundary_events_.resize(lane_to_shard_.size());
  if (sharded()) {
    shard_lanes_.resize(shards_);
    for (std::size_t l = 0; l < lane_to_shard_.size(); ++l) {
      shard_lanes_[lane_to_shard_[l]].push_back(l);  // ascending lane order
    }
    to_shard_.resize(lane_to_shard_.size());
    to_hub_.resize(lane_to_shard_.size());
    worker_errors_.resize(shards_);
    slots_.reserve(shards_);
    for (std::size_t k = 0; k < shards_; ++k) {
      slots_.push_back(std::make_unique<WorkerSlot>());
    }
    nexts_.resize(shards_);
    participate_.resize(shards_);
  }
}

ShardedEngine::~ShardedEngine() { StopWorkers(); }

void ShardedEngine::Send(std::size_t lane, bool to_hub, Duration latency,
                         std::coroutine_handle<> h) {
  if (!sharded()) {
    // Single-shard: the "hop" degenerates to a latency delay on the one
    // queue, byte-identical to what the unsharded code path schedules.
    Environment& env = hub();
    env.ScheduleAt(env.Now() + latency, h);
    return;
  }
  if (latency < lookahead_) {
    throw std::logic_error(
        "ShardedEngine: cross-shard hop latency below the engine lookahead "
        "would violate the conservative horizon");
  }
  const std::size_t shard = lane_to_shard_[lane];
  if (to_hub) {
    Environment& src = *envs_[shard + 1];
    const TimePoint at = src.Now() + latency;
    to_hub_[lane].msgs.push_back(BoundaryEvent{at, h});
    pending_to_hub_.fetch_add(1, std::memory_order_relaxed);
    // Self-cap: this send can seed a hub event at `at`, so the sending
    // worker must not execute anything at or past it. Runs on the worker's
    // own thread mid-window, which is exactly who reads the cap.
    WorkerSlot& slot = *slots_[shard];
    const TimePoint cap = at - Duration::Nanos(1);
    if (cap < slot.cap) slot.cap = cap;
  } else {
    to_shard_[lane].msgs.push_back(BoundaryEvent{hub().Now() + latency, h});
    ++pending_to_shard_;
  }
}

void ShardedEngine::Deliver() {
  const std::uint64_t before = boundary_events_;
  // Hub -> workers: concatenate each shard's lanes in ascending lane order
  // (each channel already in send/seq order), then stable-sort by arrival
  // time: ties keep lane-then-seq order. The (time, lane, seq) total order
  // is independent of the lane->shard assignment.
  if (pending_to_shard_ != 0) {
    pending_to_shard_ = 0;
    for (std::size_t k = 0; k < shards_; ++k) {
      merge_scratch_.clear();
      for (const std::size_t l : shard_lanes_[k]) {
        Channel& ch = to_shard_[l];
        if (ch.msgs.empty()) continue;
        merge_scratch_.insert(merge_scratch_.end(), ch.msgs.begin(),
                              ch.msgs.end());
        lane_boundary_events_[l] += ch.msgs.size();
        ch.msgs.clear();
      }
      if (merge_scratch_.empty()) continue;
      std::stable_sort(merge_scratch_.begin(), merge_scratch_.end(),
                       [](const BoundaryEvent& a, const BoundaryEvent& b) {
                         return a.at < b.at;
                       });
      Environment& env = *envs_[k + 1];
      for (const BoundaryEvent& m : merge_scratch_) {
        if (m.at < env.Now()) {
          throw std::logic_error(
              "ShardedEngine: boundary event arrives in the destination "
              "shard's past (conservative horizon violated)");
        }
        env.ScheduleAt(m.at, m.h);
      }
      boundary_events_ += merge_scratch_.size();
    }
  }
  // Workers -> hub: same (time, lane, seq) merge across every lane.
  if (pending_to_hub_.load(std::memory_order_relaxed) == 0) {
    RecordBoundarySample(before);
    return;
  }
  pending_to_hub_.store(0, std::memory_order_relaxed);
  merge_scratch_.clear();
  for (std::size_t l = 0; l < to_hub_.size(); ++l) {
    Channel& ch = to_hub_[l];
    if (ch.msgs.empty()) continue;
    merge_scratch_.insert(merge_scratch_.end(), ch.msgs.begin(),
                          ch.msgs.end());
    lane_boundary_events_[l] += ch.msgs.size();
    ch.msgs.clear();
  }
  if (merge_scratch_.empty()) {
    RecordBoundarySample(before);
    return;
  }
  std::stable_sort(merge_scratch_.begin(), merge_scratch_.end(),
                   [](const BoundaryEvent& a, const BoundaryEvent& b) {
                     return a.at < b.at;
                   });
  Environment& env = hub();
  for (const BoundaryEvent& m : merge_scratch_) {
    if (m.at < env.Now()) {
      throw std::logic_error(
          "ShardedEngine: boundary event arrives in the hub's past "
          "(conservative horizon violated)");
    }
    env.ScheduleAt(m.at, m.h);
  }
  boundary_events_ += merge_scratch_.size();
  RecordBoundarySample(before);
}

void ShardedEngine::RecordBoundarySample(std::uint64_t before) {
  const std::uint64_t delivered = boundary_events_ - before;
  if (delivered == 0) return;
  if (boundary_samples_.size() < kMaxIntrospectionSamples) {
    boundary_samples_.push_back(
        BoundarySample{hub().Now().nanos(), delivered});
  } else {
    ++introspection_dropped_;
  }
}

void ShardedEngine::StartWorkers() {
  if (!threads_.empty()) return;
  // Capture the spawn-time phase on this thread: a worker that first reads
  // its slot only after the engine already opened a window must still see
  // that window as "new", or it would sleep through it and deadlock.
  threads_.reserve(shards_);
  for (std::size_t k = 0; k < shards_; ++k) {
    const std::uint64_t start_phase =
        slots_[k]->phase.load(std::memory_order_relaxed);
    threads_.emplace_back(
        [this, k, start_phase] { WorkerMain(k, start_phase); });
  }
}

void ShardedEngine::StopWorkers() {
  if (threads_.empty()) return;
  stop_.store(true, std::memory_order_relaxed);
  for (auto& slot : slots_) {
    slot->phase.fetch_add(1, std::memory_order_release);
    slot->phase.notify_all();
  }
  for (std::thread& t : threads_) t.join();
  threads_.clear();
}

void ShardedEngine::WorkerMain(std::size_t k, std::uint64_t seen) {
  using WallClock = std::chrono::steady_clock;
  Environment& env = *envs_[k + 1];
  WorkerSlot& slot = *slots_[k];
  for (;;) {
    const WallClock::time_point parked = WallClock::now();
    slot.phase.wait(seen, std::memory_order_acquire);
    seen = slot.phase.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_relaxed)) return;
    const WallClock::time_point woke = WallClock::now();
    try {
      // The cap can shrink while we run (Send self-caps on the first
      // boundary message), so the window loop re-reads it per event.
      env.RunUntilDynamic(&slot.cap);
    } catch (...) {
      worker_errors_[k] = std::current_exception();
    }
    // Introspection: written before the release decrement below, which is
    // what publishes them to the engine's post-barrier reads.
    slot.wait_wall_ns +=
        std::chrono::duration_cast<std::chrono::nanoseconds>(woke - parked)
            .count();
    slot.busy_wall_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                             WallClock::now() - woke)
                             .count();
    ++slot.windows_run;
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
    remaining_.notify_one();
  }
}

void ShardedEngine::Run() {
  if (!sharded()) {
    hub().Run();
    return;
  }
  StartWorkers();
  for (;;) {
    Deliver();
    TimePoint hub_next = hub().NextEventTime();
    TimePoint worker_next = Environment::Never();
    for (std::size_t k = 0; k < shards_; ++k) {
      nexts_[k] = envs_[k + 1]->NextEventTime();
      worker_next = std::min(worker_next, nexts_[k]);
    }
    if (hub_next == Environment::Never() &&
        worker_next == Environment::Never()) {
      break;  // every queue and channel drained
    }
    if (hub_next <= worker_next) {
      // Serial stretch: run hub instants back to back for as long as the
      // hub stays earliest and nothing crosses a boundary — no channel
      // drain and no barrier between them. Worker clocks are aligned at
      // every instant so hub code touching shard-resident objects (fault
      // injection, shutdown) schedules follow-ups at the current instant,
      // and each whole instant — including same-instant cascades — runs
      // serially on this thread.
      for (;;) {
        ++hub_instants_;
        for (std::size_t k = 0; k < shards_; ++k) {
          if (envs_[k + 1]->Now() < hub_next) envs_[k + 1]->AdvanceTo(hub_next);
        }
        hub().RunUntil(hub_next);
        if (pending_to_shard_ != 0 ||
            pending_to_hub_.load(std::memory_order_relaxed) != 0) {
          break;  // boundary traffic: deliver before anything else runs
        }
        // The hub may have scheduled directly onto worker queues
        // (cross-shard mutation during the instant), so rescan both sides.
        hub_next = hub().NextEventTime();
        worker_next = Environment::Never();
        for (std::size_t k = 0; k < shards_; ++k) {
          worker_next = std::min(worker_next, envs_[k + 1]->NextEventTime());
        }
        if (hub_next == Environment::Never() || hub_next > worker_next) break;
      }
      continue;
    }
    // Parallel window round. Worker k may run through every instant t with
    //   t <= cap_k = min(hub_next, min_{j != k} next_j + lookahead) - 1ns,
    // further self-capped by its own boundary sends (see Send): the
    // earliest possible future hub event is min(hub_next, earliest
    // boundary arrival), arrivals from shard j land at or after next_j +
    // lookahead, and a worker accounts for its own sends exactly. Hence no
    // worker executes an event at or past any future hub event's time —
    // the invariant hub instants rely on. min()/2nd-min() of next_j +
    // lookahead give every cap in one pass.
    ++sync_windows_;
    TimePoint min1 = Environment::Never();
    TimePoint min2 = Environment::Never();
    std::size_t min1_k = shards_;
    for (std::size_t k = 0; k < shards_; ++k) {
      if (nexts_[k] == Environment::Never()) continue;
      const TimePoint c = nexts_[k] + lookahead_;
      if (c < min1) {
        min2 = min1;
        min1 = c;
        min1_k = k;
      } else if (c < min2) {
        min2 = c;
      }
    }
    std::uint32_t participants = 0;
    // Pass 1: pick participants and publish caps (remaining_ must cover
    // every participant before the first wakeup). A worker participates
    // only when its head event fits under its cap; everyone else sleeps
    // through the round untouched.
    TimePoint widest_cap;
    bool any_unbounded = false;
    for (std::size_t k = 0; k < shards_; ++k) {
      participate_[k] = false;
      if (nexts_[k] == Environment::Never()) continue;  // idle: never woken
      const TimePoint others = std::min(hub_next, min1_k == k ? min2 : min1);
      const TimePoint cap = others == Environment::Never()
                                ? Environment::Never()
                                : others - Duration::Nanos(1);
      if (nexts_[k] > cap) continue;
      participate_[k] = true;
      slots_[k]->cap = cap;
      ++participants;
      if (cap == Environment::Never()) {
        any_unbounded = true;
      } else {
        widest_cap = std::max(widest_cap, cap);
      }
    }
    if (participants == 0) {
      throw std::logic_error(
          "ShardedEngine: window opened with no runnable worker (engine "
          "invariant violated)");
    }
    worker_wakeups_ += participants;
    if (window_samples_.size() < kMaxIntrospectionSamples) {
      WindowSample ws;
      ws.at_ns = worker_next.nanos();
      ws.len_ns = any_unbounded ? -1 : (widest_cap - worker_next).nanos();
      ws.participants = participants;
      window_samples_.push_back(ws);
    } else {
      ++introspection_dropped_;
    }
    remaining_.store(participants, std::memory_order_relaxed);
    // Pass 2: wake exactly the participants.
    for (std::size_t k = 0; k < shards_; ++k) {
      if (!participate_[k]) continue;
      WorkerSlot& slot = *slots_[k];
      slot.phase.fetch_add(1, std::memory_order_release);
      slot.phase.notify_one();
    }
    for (;;) {
      const std::uint32_t left = remaining_.load(std::memory_order_acquire);
      if (left == 0) break;
      remaining_.wait(left, std::memory_order_acquire);
    }
    for (std::size_t k = 0; k < shards_; ++k) {
      if (worker_errors_[k]) {
        std::rethrow_exception(std::exchange(worker_errors_[k], nullptr));
      }
    }
  }
}

std::uint64_t ShardedEngine::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& env : envs_) total += env->events_executed();
  return total;
}

}  // namespace olympian::sim
