#pragma once

#include <cstdint>

#include "sim/time.h"

namespace olympian::sim {

// Deterministic pseudo-random source (xoshiro256++ seeded via SplitMix64).
//
// Every stochastic element of an experiment draws from one Rng so that an
// experiment is fully reproducible from its seed, and run-to-run variance
// (e.g. the paper's Figure 3, Run-1 vs Run-2) is obtained by changing seeds.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform over the full 64-bit range.
  std::uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  // Standard normal via Box-Muller.
  double Normal(double mean, double stddev);

  // Log-normal: exp(Normal(mu, sigma)); heavy-tailed, used for node-duration
  // distributions (paper Figure 4).
  double LogNormal(double mu, double sigma);

  // A duration jittered multiplicatively: base * Uniform(1-frac, 1+frac).
  Duration Jitter(Duration base, double frac);

  // Derive an independent stream (for sub-components) without correlating
  // the parent stream.
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace olympian::sim
