#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "sim/environment.h"

namespace olympian::sim {

// Condition variable for simulation processes.
//
// Unlike std::condition_variable there is no associated mutex: the
// simulation is single-threaded and cooperative, so checking a predicate and
// calling Wait() is atomic with respect to other processes. Callers must
// still re-check their predicate in a loop: NotifyAll wakes everyone, and a
// woken process may find the condition already consumed.
class CondVar {
 public:
  explicit CondVar(Environment& env) : env_(&env) {}
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Awaitable: suspend until NotifyOne/NotifyAll.
  auto Wait() {
    struct Awaiter {
      CondVar* cv;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        cv->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  // Wake the longest-waiting process (if any). The wakeup is scheduled at
  // the current virtual time; it runs after the caller next suspends.
  void NotifyOne() {
    if (waiters_.empty()) return;
    env_->ScheduleNow(waiters_.front());
    waiters_.pop_front();
  }

  void NotifyAll() {
    for (auto h : waiters_) env_->ScheduleNow(h);
    waiters_.clear();
  }

  std::size_t waiter_count() const { return waiters_.size(); }

 private:
  Environment* env_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// FIFO mutex for critical sections that span suspension points. Not needed
// for plain shared data (the simulation is cooperative); use it when a
// process must hold exclusivity across a Delay or kernel wait.
class Mutex {
 public:
  explicit Mutex(Environment& env) : cv_(env) {}

  // Awaitable lock acquisition (FIFO).
  Task Lock() {
    while (locked_) co_await cv_.Wait();
    locked_ = true;
  }

  void Unlock() {
    locked_ = false;
    cv_.NotifyOne();
  }

  bool locked() const { return locked_; }

 private:
  bool locked_ = false;
  CondVar cv_;
};

// RAII guard for Mutex. Acquire with `co_await guard.Acquire()`.
class LockGuard {
 public:
  explicit LockGuard(Mutex& m) : mutex_(&m) {}
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;
  ~LockGuard() {
    if (held_) mutex_->Unlock();
  }

  Task Acquire() {
    co_await mutex_->Lock();
    held_ = true;
  }

 private:
  Mutex* mutex_;
  bool held_ = false;
};

// Counting semaphore; models bounded resources (e.g. OS thread-pool slots).
class Semaphore {
 public:
  Semaphore(Environment& env, std::int64_t initial)
      : count_(initial), cv_(env) {}

  Task Acquire() {
    while (count_ == 0) co_await cv_.Wait();
    --count_;
  }

  // Non-blocking acquire; true on success.
  bool TryAcquire() {
    if (count_ == 0) return false;
    --count_;
    return true;
  }

  void Release() {
    ++count_;
    cv_.NotifyOne();
  }

  std::int64_t count() const { return count_; }

 private:
  std::int64_t count_;
  CondVar cv_;
};

// Unbounded multi-producer multi-consumer queue. Pop suspends while empty;
// after Close(), Pop drains remaining items then returns nullopt.
template <typename T>
class Channel {
 public:
  explicit Channel(Environment& env) : cv_(env) {}

  void Push(T value) {
    items_.push_back(std::move(value));
    cv_.NotifyOne();
  }

  // Awaitable pop. Returns nullopt once the channel is closed and drained.
  Task Pop(std::optional<T>& out) {
    while (items_.empty() && !closed_) co_await cv_.Wait();
    if (items_.empty()) {
      out = std::nullopt;
      co_return;
    }
    out = std::move(items_.front());
    items_.pop_front();
  }

  void Close() {
    closed_ = true;
    cv_.NotifyAll();
  }

  bool closed() const { return closed_; }
  std::size_t size() const { return items_.size(); }

 private:
  std::deque<T> items_;
  bool closed_ = false;
  CondVar cv_;
};

}  // namespace olympian::sim
