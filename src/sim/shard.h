#pragma once

// Conservative parallel discrete-event engine for hub-and-spoke topologies.
//
// A ShardedEngine partitions one experiment across `shards` worker shards
// plus a hub shard (index 0 of the internal environment array). Each shard
// owns a full Environment — its own two-tier event queue and virtual clock —
// and the engine advances them in lock-step:
//
//   * Hub instants. When the hub's next event is not later than every
//     worker's next event, the engine parks all workers (aligning their
//     clocks with AdvanceTo), then executes ALL hub events at exactly that
//     instant on the calling thread. The hub therefore runs serially with
//     exclusive access to every shard's memory — router probes may read
//     server state, fault injection may mutate GPUs on any shard — and its
//     reads are temporally exact because every worker has executed all of
//     its events strictly before the instant and none at or after it.
//   * Parallel windows. Otherwise the earliest pending work is on a worker.
//     All workers run concurrently up to (but excluding) the conservative
//     horizon H = min(hub_next, workers_next + lookahead): no event inside
//     the window can be affected by a cross-shard message, because every
//     boundary hop carries latency >= lookahead (enforced by Send), so
//     anything sent from inside the window lands at or after H.
//
// Boundary events cross shards through per-pair FIFO channels, drained
// between phases by the engine thread and merged into the destination queue
// in (time, source shard, channel seq) order — a fixed total order, so the
// trajectory is independent of thread scheduling. With shards == 1 the
// engine owns a single Environment and Run() is literally Environment::Run:
// byte-identical to the unsharded engine, which keeps golden tests pinned.
//
// The halo-exchange shape (advance to horizon, exchange boundary events,
// repeat) follows the classic conservative-window decomposition; the star
// topology removes the need for null messages because workers never talk to
// each other — all cross-shard interaction flows through the hub.

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include "sim/environment.h"
#include "sim/time.h"

namespace olympian::sim {

class ShardedEngine {
 public:
  // `lookahead` is the minimum cross-shard latency (e.g. the cluster's
  // router<->server network delay); it must be > 0 when shards > 1, and every
  // hop's latency must be >= it. With shards <= 1 it is ignored.
  explicit ShardedEngine(std::size_t shards,
                         Duration lookahead = Duration::Zero());
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  std::size_t shards() const { return shards_; }
  bool sharded() const { return shards_ > 1; }

  // The hub environment (shard 0: router, clients, cluster bookkeeping).
  Environment& hub() { return *envs_.front(); }
  const Environment& hub() const { return *envs_.front(); }

  // Worker shard k's environment, k in [0, shards). With shards == 1 this
  // is the hub itself: everything shares one queue, as before sharding.
  Environment& shard_env(std::size_t k) {
    return sharded() ? *envs_[k + 1] : *envs_.front();
  }

  // Awaitable: move the running coroutine from the hub onto worker shard
  // `k`, resuming `latency` later on that shard's clock. Must be awaited
  // from hub-resident code. With shards == 1, a plain Delay on the hub.
  auto HopToShard(std::size_t k, Duration latency) {
    return HopAwaiter{this, k, /*to_hub=*/false, latency};
  }

  // Awaitable: move the running coroutine from worker shard `k` back onto
  // the hub, resuming `latency` later on the hub's clock. Must be awaited
  // from code resident on shard `k`. With shards == 1, a plain Delay.
  auto HopToHub(std::size_t k, Duration latency) {
    return HopAwaiter{this, k, /*to_hub=*/true, latency};
  }

  // Run every shard to completion (all queues drained, all channels empty).
  // Callable repeatedly — the cluster layer runs traffic, then schedules
  // shutdown work and runs again to drain it. Rethrows the first process
  // error (hub first, then workers in shard order).
  void Run();

  // --- counters (stable across runs; exported into BENCH_*.json) ----------
  // Parallel windows executed.
  std::uint64_t sync_windows() const { return sync_windows_; }
  // Serial hub instants executed.
  std::uint64_t hub_instants() const { return hub_instants_; }
  // Events that crossed a shard boundary through a channel.
  std::uint64_t boundary_events() const { return boundary_events_; }
  // Events executed across all shards.
  std::uint64_t events_executed() const;

 private:
  struct BoundaryEvent {
    TimePoint at;
    std::coroutine_handle<> h;
  };
  struct Channel {
    std::vector<BoundaryEvent> msgs;  // FIFO: push order is channel seq
  };
  struct HopAwaiter {
    ShardedEngine* eng;
    std::size_t shard;
    bool to_hub;
    Duration latency;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      eng->Send(shard, to_hub, latency, h);
    }
    void await_resume() const noexcept {}
  };

  void Send(std::size_t shard, bool to_hub, Duration latency,
            std::coroutine_handle<> h);
  void Deliver();  // drain all channels into destination queues
  void StartWorkers();
  void StopWorkers();
  void RunWindow(TimePoint deadline);  // run all workers until `deadline`
  void WorkerMain(std::size_t k, std::uint64_t seen_phase);

  std::size_t shards_;
  Duration lookahead_;
  std::vector<std::unique_ptr<Environment>> envs_;  // [hub, worker 0..N-1]
  std::vector<Channel> to_shard_;  // hub -> worker k, written by engine thread
  std::vector<Channel> to_hub_;    // worker k -> hub, written by worker k
  std::vector<BoundaryEvent> merge_scratch_;

  // Window barrier. The engine thread publishes a deadline, bumps phase_
  // (release) and wakes the workers; each worker runs its window, then
  // decrements remaining_ (acq_rel) and wakes the engine. The acquire/
  // release pairs order all shard memory between phases, so cross-shard
  // reads during hub instants and deliveries are data-race-free.
  std::vector<std::thread> threads_;
  std::vector<std::exception_ptr> worker_errors_;
  std::atomic<std::uint64_t> phase_{0};
  std::atomic<std::uint32_t> remaining_{0};
  std::atomic<bool> stop_{false};
  TimePoint window_deadline_;  // published before phase_, read after

  std::uint64_t sync_windows_ = 0;
  std::uint64_t hub_instants_ = 0;
  std::uint64_t boundary_events_ = 0;
};

}  // namespace olympian::sim
