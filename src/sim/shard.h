#pragma once

// Conservative parallel discrete-event engine for hub-and-spoke topologies.
//
// A ShardedEngine partitions one experiment across `shards` worker shards
// plus a hub shard (index 0 of the internal environment array). Each shard
// owns a full Environment — its own two-tier event queue and virtual clock —
// and the engine advances them in lock-step:
//
//   * Hub instants. When the hub's next event is not later than every
//     worker's next event, the engine parks all workers (aligning their
//     clocks with AdvanceTo), then executes ALL hub events at exactly that
//     instant on the calling thread. The hub therefore runs serially with
//     exclusive access to every shard's memory — router probes may read
//     server state, fault injection may mutate GPUs on any shard — and its
//     reads are temporally exact because every worker has executed all of
//     its events strictly before the instant and none at or after it.
//     Consecutive hub instants with no boundary traffic between them are
//     batched: the engine stays in a serial stretch (no channel drain, no
//     worker scan beyond a next-event check) until a send or an earlier
//     worker event forces it out.
//   * Parallel windows. Otherwise the earliest pending work is on a worker.
//     Workers with pending work run concurrently, each to its OWN deadline
//       cap_k = min(hub_next, min_{j != k} next_j + lookahead) - 1ns,
//     self-capped at a - 1ns the moment the worker sends a boundary message
//     arriving at `a`. This is conservative: the earliest instant at which
//     any future hub event can exist is min(hub_next, earliest boundary
//     arrival), every arrival from worker j lands at or after next_j +
//     lookahead (and the worker's own sends are accounted exactly), and no
//     worker ever executes an event at or past a future hub event's time —
//     which is what keeps hub-side reads of shard state temporally exact.
//     A worker whose queue is empty past its cap is simply not woken, so
//     idle shards cost nothing; a worker alone with work self-extends its
//     window until its first send (unbounded when it never sends), skipping
//     hub instants and barrier rounds entirely.
//
// Boundary events cross shards through per-LANE FIFO channels. A lane is a
// stable endpoint identity (the cluster uses one lane per server); the
// constructor's lane_to_shard map assigns lanes to shards, defaulting to
// the identity (lane k on shard k). Channels are drained between phases by
// the engine thread and merged into the destination queue in (time, lane,
// channel seq) order — a fixed total order that does NOT depend on how
// lanes are packed onto shards, so the trajectory is independent of both
// thread scheduling and the shard-assignment policy. With shards == 1 the
// engine owns a single Environment and Run() is literally Environment::Run:
// byte-identical to the unsharded engine, which keeps golden tests pinned.
//
// The halo-exchange shape (advance to horizon, exchange boundary events,
// repeat) follows the classic conservative-window decomposition; the star
// topology removes the need for null messages because workers never talk to
// each other — all cross-shard interaction flows through the hub.

#include <atomic>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

#include <chrono>

#include "sim/environment.h"
#include "sim/time.h"

namespace olympian::sim {

class ShardedEngine {
 public:
  // `lookahead` is the minimum cross-shard latency (e.g. the cluster's
  // router<->server network delay); it must be > 0 when shards > 1, and every
  // hop's latency must be >= it. With shards <= 1 it is ignored.
  //
  // `lane_to_shard` maps boundary-lane identities onto worker shards (entry
  // l is the shard that hosts lane l); empty means the identity map (one
  // lane per shard). The cluster passes one lane per SERVER here, so the
  // boundary merge order — (time, lane, seq) — is a property of the
  // workload, not of the assignment policy.
  explicit ShardedEngine(std::size_t shards,
                         Duration lookahead = Duration::Zero(),
                         std::vector<std::size_t> lane_to_shard = {});
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  std::size_t shards() const { return shards_; }
  bool sharded() const { return shards_ > 1; }
  std::size_t lanes() const { return lane_to_shard_.size(); }
  // The shard hosting lane l (identity when constructed without a map).
  std::size_t lane_shard(std::size_t lane) const { return lane_to_shard_[lane]; }

  // The hub environment (shard 0: router, clients, cluster bookkeeping).
  Environment& hub() { return *envs_.front(); }
  const Environment& hub() const { return *envs_.front(); }

  // Worker shard k's environment, k in [0, shards). With shards == 1 this
  // is the hub itself: everything shares one queue, as before sharding.
  Environment& shard_env(std::size_t k) {
    return sharded() ? *envs_[k + 1] : *envs_.front();
  }

  // The environment hosting lane l — shard_env(lane_shard(l)), or the hub
  // when unsharded. This is what lane-owning objects (cluster servers)
  // should live on.
  Environment& lane_env(std::size_t lane) {
    return sharded() ? *envs_[lane_to_shard_[lane] + 1] : *envs_.front();
  }

  // Awaitable: move the running coroutine from the hub onto lane `l`'s
  // shard, resuming `latency` later on that shard's clock. Must be awaited
  // from hub-resident code. With shards == 1, a plain Delay on the hub.
  auto HopToShard(std::size_t l, Duration latency) {
    return HopAwaiter{this, l, /*to_hub=*/false, latency};
  }

  // Awaitable: move the running coroutine from lane `l`'s shard back onto
  // the hub, resuming `latency` later on the hub's clock. Must be awaited
  // from code resident on that lane's shard. With shards == 1, a plain
  // Delay.
  auto HopToHub(std::size_t l, Duration latency) {
    return HopAwaiter{this, l, /*to_hub=*/true, latency};
  }

  // Run every shard to completion (all queues drained, all channels empty).
  // Callable repeatedly — the cluster layer runs traffic, then schedules
  // shutdown work and runs again to drain it. Rethrows the first process
  // error (hub first, then workers in shard order).
  void Run();

  // --- counters (stable across runs; exported into BENCH_*.json) ----------
  // Parallel window rounds executed (one barrier open/close each).
  std::uint64_t sync_windows() const { return sync_windows_; }
  // Serial hub instants executed.
  std::uint64_t hub_instants() const { return hub_instants_; }
  // Events that crossed a shard boundary through a channel.
  std::uint64_t boundary_events() const { return boundary_events_; }
  // Worker wakeups summed over all window rounds. With the arrival barrier
  // this is <= sync_windows() * shards(): idle shards are never woken, so
  // (wakeups / windows) / shards measures how busy the partition keeps its
  // threads.
  std::uint64_t worker_wakeups() const { return worker_wakeups_; }
  // Events executed across all shards.
  std::uint64_t events_executed() const;
  // Events executed on shard k's environment alone (the hub excluded).
  // With shards == 1 this is the whole run. Feed these back in as adaptive
  // assignment weights, or ratio max/mean as an imbalance metric.
  std::uint64_t shard_events(std::size_t k) const {
    return sharded() ? envs_[k + 1]->events_executed()
                     : envs_.front()->events_executed();
  }
  // Boundary events that crossed lane l (both directions); a cheap measured
  // proxy for how much traffic the lane's owner handled.
  const std::vector<std::uint64_t>& lane_boundary_events() const {
    return lane_boundary_events_;
  }

  // --- introspection (wall-clock; NOT part of the deterministic trajectory,
  // so consumers must keep these out of byte-compared artifacts) ------------
  // One record per parallel window round: when it opened (virtual time of
  // the earliest participant event), how wide it was allowed to run (virtual
  // span to the widest participant cap; -1 = a lone worker's unbounded
  // window), and how many workers woke. Capped at kMaxIntrospectionSamples;
  // overflow is counted, never silently dropped.
  struct WindowSample {
    std::int64_t at_ns = 0;
    std::int64_t len_ns = -1;
    std::uint32_t participants = 0;
  };
  // One record per channel drain that moved events: hub virtual time and
  // how many boundary events were merged in that batch.
  struct BoundarySample {
    std::int64_t at_ns = 0;
    std::uint64_t events = 0;
  };
  static constexpr std::size_t kMaxIntrospectionSamples = 1 << 16;
  // Wall time shard k spent executing window events, and wall time it spent
  // parked at the arrival barrier between windows. Read only after Run()
  // returns (the barrier's release/acquire pairs publish the counters).
  std::int64_t shard_busy_wall_ns(std::size_t k) const {
    return sharded() ? slots_[k]->busy_wall_ns : 0;
  }
  std::int64_t shard_barrier_wait_wall_ns(std::size_t k) const {
    return sharded() ? slots_[k]->wait_wall_ns : 0;
  }
  std::uint64_t shard_windows_run(std::size_t k) const {
    return sharded() ? slots_[k]->windows_run : 0;
  }
  const std::vector<WindowSample>& window_samples() const {
    return window_samples_;
  }
  const std::vector<BoundarySample>& boundary_samples() const {
    return boundary_samples_;
  }
  std::uint64_t introspection_samples_dropped() const {
    return introspection_dropped_;
  }

 private:
  struct BoundaryEvent {
    TimePoint at;
    std::coroutine_handle<> h;
  };
  struct Channel {
    std::vector<BoundaryEvent> msgs;  // FIFO: push order is channel seq
  };
  struct HopAwaiter {
    ShardedEngine* eng;
    std::size_t lane;
    bool to_hub;
    Duration latency;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      eng->Send(lane, to_hub, latency, h);
    }
    void await_resume() const noexcept {}
  };
  // Per-worker barrier slot, cache-line padded so a worker spinning on its
  // own phase word never bounces a neighbour's line. `cap` is the window
  // deadline: published by the engine before bumping `phase` (the release
  // pairs with the worker's acquire), then lowered ONLY by the worker's own
  // thread (boundary sends self-cap), so it needs no atomicity of its own.
  struct alignas(64) WorkerSlot {
    std::atomic<std::uint64_t> phase{0};
    TimePoint cap;
    // Wall-clock introspection, written ONLY by the owning worker thread
    // before its release decrement of remaining_ (which is what makes the
    // engine's post-barrier reads race-free).
    std::int64_t busy_wall_ns = 0;
    std::int64_t wait_wall_ns = 0;
    std::uint64_t windows_run = 0;
  };

  void Send(std::size_t lane, bool to_hub, Duration latency,
            std::coroutine_handle<> h);
  void Deliver();  // drain all channels into destination queues
  // Record one boundary-traffic sample covering everything a Deliver call
  // merged (`before` is boundary_events_ at its entry). No-op when nothing
  // crossed.
  void RecordBoundarySample(std::uint64_t before);
  void StartWorkers();
  void StopWorkers();
  void WorkerMain(std::size_t k, std::uint64_t seen_phase);

  std::size_t shards_;
  Duration lookahead_;
  std::vector<std::size_t> lane_to_shard_;
  std::vector<std::vector<std::size_t>> shard_lanes_;  // inverse, lane-sorted
  std::vector<std::unique_ptr<Environment>> envs_;  // [hub, worker 0..N-1]
  std::vector<Channel> to_shard_;  // hub -> lane l, written by engine thread
  std::vector<Channel> to_hub_;    // lane l -> hub, written by l's worker
  std::vector<BoundaryEvent> merge_scratch_;
  // Channel occupancy, so Deliver() is O(1) when nothing crossed a boundary
  // (the common case between batched hub instants). The to-hub counter is
  // written by worker threads during windows, hence atomic; the engine only
  // reads it while the workers are parked.
  std::uint64_t pending_to_shard_ = 0;
  std::atomic<std::uint64_t> pending_to_hub_{0};

  // Arrival barrier. The engine publishes each participant's cap, bumps its
  // slot phase (release) and wakes it; each woken worker runs its window,
  // then decrements remaining_ (acq_rel) and wakes the engine. The acquire/
  // release pairs order all shard memory between phases, so cross-shard
  // reads during hub instants and deliveries are data-race-free. Workers
  // without pending work are not woken at all.
  std::vector<std::thread> threads_;
  std::vector<std::exception_ptr> worker_errors_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::atomic<std::uint32_t> remaining_{0};
  std::atomic<bool> stop_{false};

  std::uint64_t sync_windows_ = 0;
  std::uint64_t hub_instants_ = 0;
  std::uint64_t boundary_events_ = 0;
  std::uint64_t worker_wakeups_ = 0;
  std::vector<std::uint64_t> lane_boundary_events_;
  std::vector<WindowSample> window_samples_;      // engine thread only
  std::vector<BoundarySample> boundary_samples_;  // engine thread only
  std::uint64_t introspection_dropped_ = 0;

  // Scratch for Run()'s per-window scan (avoids per-iteration allocation).
  std::vector<TimePoint> nexts_;
  std::vector<char> participate_;
};

}  // namespace olympian::sim
