#include "sim/random.h"

#include <cmath>
#include <numbers>

namespace olympian::sim {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextU64() % span);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Normal(double mean, double stddev) {
  // Box-Muller; guard against log(0).
  double u1 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

Duration Rng::Jitter(Duration base, double frac) {
  return base * Uniform(1.0 - frac, 1.0 + frac);
}

Rng Rng::Fork() {
  return Rng(NextU64());
}

}  // namespace olympian::sim
