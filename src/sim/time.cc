#include "sim/time.h"

#include <cmath>
#include <cstdio>

namespace olympian::sim {

namespace {

std::string Format(double value, const char* unit) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g%s", value, unit);
  return buf;
}

}  // namespace

std::string ToString(Duration d) {
  const double ns = static_cast<double>(d.nanos());
  const double mag = std::fabs(ns);
  if (mag < 1e3) return Format(ns, "ns");
  if (mag < 1e6) return Format(ns / 1e3, "us");
  if (mag < 1e9) return Format(ns / 1e6, "ms");
  return Format(ns / 1e9, "s");
}

std::string ToString(TimePoint t) {
  return ToString(t - TimePoint());
}

}  // namespace olympian::sim
