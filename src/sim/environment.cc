#include "sim/environment.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace olympian::sim {

namespace detail {

void ProcessState::OnComplete(std::exception_ptr e) {
  done = true;
  exception = std::move(e);
  const bool had_joiners = !joiners.empty();
  for (auto h : joiners) env->ScheduleNow(h);
  joiners.clear();
  env->NoteProcessDone(this, had_joiners);
}

}  // namespace detail

std::coroutine_handle<> Task::FinalAwaiter::await_suspend(Handle h) noexcept {
  auto& p = h.promise();
  if (p.process != nullptr) {
    detail::ProcessState* s = p.process;
    s->frame = nullptr;  // the frame self-destroys below
    s->OnComplete(std::move(p.exception));
    h.destroy();
    return std::noop_coroutine();
  }
  if (p.continuation) return p.continuation;
  return std::noop_coroutine();
}

namespace {
const std::string kAnonymous = "<process>";
}  // namespace

const std::string& Process::name() const {
  return state_ ? state_->name : kAnonymous;
}

// --- event containers -------------------------------------------------------

void Environment::EventRing::Grow() {
  const std::size_t cap = buf_.empty() ? 64 : buf_.size() * 2;
  std::vector<Event> grown(cap);
  for (std::size_t i = 0; i < size_; ++i) {
    grown[i] = buf_[(head_ + i) & mask_];
  }
  buf_ = std::move(grown);
  head_ = 0;
  mask_ = cap - 1;
}

void Environment::TimerHeap::SiftDownFromTop() {
  const Event last = v_.back();
  v_.pop_back();
  const std::size_t n = v_.size();
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = i * 4 + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + 4, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (Earlier(v_[c], v_[best])) best = c;
    }
    if (!Earlier(v_[best], last)) break;
    v_[i] = v_[best];
    i = best;
  }
  v_[i] = last;
}

// --- environment ------------------------------------------------------------

Environment::~Environment() {
  tearing_down_ = true;
  // Destroy any still-suspended process frames. Frame-local destructors may
  // schedule further events; those are dropped along with the queue.
  for (auto& s : processes_) {
    if (s->frame) {
      auto f = std::exchange(s->frame, nullptr);
      f.destroy();
    }
  }
  processes_.clear();
}

Process Environment::Spawn(Task t, std::string name) {
  auto state = std::allocate_shared<detail::ProcessState>(
      detail::PoolAlloc<detail::ProcessState>{});
  state->env = this;
  state->name = std::move(name);
  state->id = next_process_id_++;
  state->index = static_cast<std::uint32_t>(processes_.size());
  state->frame = t.Release();
  state->frame.promise().process = state.get();
  ++live_;
  processes_.push_back(state);
  ScheduleNow(state->frame);
  return Process(std::move(state));
}

const Environment::Event* Environment::PeekNext() const {
  if (ring_.empty()) return heap_.empty() ? nullptr : &heap_.top();
  if (heap_.empty()) return &ring_.front();
  // Ring entries were scheduled at the instant the clock already reached, so
  // the ring front almost always wins; a heap timer can only tie its time,
  // with an earlier sequence number.
  return Earlier(heap_.top(), ring_.front()) ? &heap_.top() : &ring_.front();
}

bool Environment::Step() {
  if (!ring_.empty()) {
    if (heap_.empty() || !Earlier(heap_.top(), ring_.front())) {
      ExecuteEvent(ring_.pop());
    } else {
      ExecuteEvent(heap_.pop());
    }
    return true;
  }
  if (heap_.empty()) return false;
  ExecuteEvent(heap_.pop());
  return true;
}

void Environment::ExecuteEvent(const Event& e) {
  now_ = e.t;
  ++events_executed_;
  if (e.fn != nullptr) {
    e.fn(e.ctx, e.arg);
  } else {
    e.h.resume();
  }
}

TimePoint Environment::NextEventTime() const {
  const Event* next = PeekNext();
  return next == nullptr ? Never() : next->t;
}

void Environment::AdvanceTo(TimePoint t) {
  if (t < now_) {
    throw std::logic_error("Environment::AdvanceTo: target is in the past");
  }
  if (NextEventTime() < t) {
    throw std::logic_error(
        "Environment::AdvanceTo: a pending event precedes the target");
  }
  now_ = t;
}

namespace {
// RAII reentrancy guard: Run/RunUntil may rethrow a process error from any
// exit, so the flag must be cleared on unwind too.
struct RunningScope {
  explicit RunningScope(bool& flag) : flag_(flag) {
    if (flag_) {
      throw std::logic_error(
          "Environment::Run/RunUntil re-entered from inside an event "
          "handler; shard loops own their deadline windows (see the "
          "RunUntil contract in environment.h)");
    }
    flag_ = true;
  }
  ~RunningScope() { flag_ = false; }
  bool& flag_;
};
}  // namespace

void Environment::Run() {
  RunningScope scope(running_);
  while (Step()) {
  }
  if (first_error_) {
    std::rethrow_exception(std::exchange(first_error_, nullptr));
  }
}

bool Environment::RunUntil(TimePoint deadline) {
  RunningScope scope(running_);
  for (;;) {
    const Event* next = PeekNext();
    if (next == nullptr) {
      // Drained early: still consume the whole window, so Now() lands on
      // `deadline` exactly as in the non-drained branch below.
      if (now_ < deadline) now_ = deadline;
      if (first_error_) {
        std::rethrow_exception(std::exchange(first_error_, nullptr));
      }
      return true;
    }
    if (next->t > deadline) {
      now_ = deadline;
      if (first_error_) {
        std::rethrow_exception(std::exchange(first_error_, nullptr));
      }
      return false;
    }
    Step();
  }
}

bool Environment::RunUntilDynamic(const TimePoint* cap) {
  RunningScope scope(running_);
  for (;;) {
    const Event* next = PeekNext();
    const TimePoint bound = *cap;
    if (next == nullptr) {
      // Drained. A finite bound is consumed whole (clock lands on it, like
      // RunUntil); an unbounded window leaves the clock where the last
      // event put it — there is no meaningful instant to jump to.
      if (bound != Never() && now_ < bound) now_ = bound;
      if (first_error_) {
        std::rethrow_exception(std::exchange(first_error_, nullptr));
      }
      return true;
    }
    if (next->t > bound) {
      now_ = bound;
      if (first_error_) {
        std::rethrow_exception(std::exchange(first_error_, nullptr));
      }
      return false;
    }
    Step();
  }
}

void Environment::NoteProcessDone(detail::ProcessState* s, bool had_joiners) {
  --live_;
  if (s->exception && !had_joiners) {
    // Nobody was waiting on this process; surface the error from Run().
    if (!first_error_) first_error_ = s->exception;
  }
  // Drop the environment's reference so completed states are reclaimed once
  // user-held Process handles go away. O(1): swap with the tail and patch
  // the moved element's index.
  const std::uint32_t i = s->index;
  if (i + 1 != processes_.size()) {
    processes_[i] = std::move(processes_.back());
    processes_[i]->index = i;
  }
  processes_.pop_back();
}

}  // namespace olympian::sim
