#include "sim/environment.h"

#include <utility>

namespace olympian::sim {

namespace detail {

void ProcessState::OnComplete(std::exception_ptr e) {
  done = true;
  exception = std::move(e);
  const bool had_joiners = !joiners.empty();
  for (auto h : joiners) env->ScheduleNow(h);
  joiners.clear();
  env->NoteProcessDone(this, had_joiners);
}

}  // namespace detail

std::coroutine_handle<> Task::FinalAwaiter::await_suspend(Handle h) noexcept {
  auto& p = h.promise();
  if (p.process != nullptr) {
    detail::ProcessState* s = p.process;
    s->frame = nullptr;  // the frame self-destroys below
    s->OnComplete(std::move(p.exception));
    h.destroy();
    return std::noop_coroutine();
  }
  if (p.continuation) return p.continuation;
  return std::noop_coroutine();
}

namespace {
const std::string kAnonymous = "<process>";
}  // namespace

const std::string& Process::name() const {
  return state_ ? state_->name : kAnonymous;
}

Environment::~Environment() {
  tearing_down_ = true;
  // Destroy any still-suspended process frames. Frame-local destructors may
  // schedule further events; those are dropped along with the queue.
  for (auto& s : processes_) {
    if (s->frame) {
      auto f = std::exchange(s->frame, nullptr);
      f.destroy();
    }
  }
  processes_.clear();
}

Process Environment::Spawn(Task t, std::string name) {
  auto state = std::make_shared<detail::ProcessState>();
  state->env = this;
  state->name = std::move(name);
  state->id = next_process_id_++;
  state->frame = t.Release();
  state->frame.promise().process = state.get();
  ++live_;
  processes_.push_back(state);
  ScheduleNow(state->frame);
  return Process(state);
}

void Environment::ScheduleAt(TimePoint t, std::coroutine_handle<> h) {
  if (tearing_down_) return;
  queue_.push(Event{t, next_seq_++, h, nullptr, nullptr, 0});
}

void Environment::ScheduleCallbackAt(TimePoint t, Callback fn, void* ctx,
                                     std::uint64_t arg) {
  if (tearing_down_) return;
  queue_.push(Event{t, next_seq_++, nullptr, fn, ctx, arg});
}

bool Environment::Step() {
  if (queue_.empty()) return false;
  Event e = queue_.top();
  queue_.pop();
  now_ = e.t;
  ++events_executed_;
  if (e.fn != nullptr) {
    e.fn(e.ctx, e.arg);
  } else {
    e.h.resume();
  }
  return true;
}

void Environment::Run() {
  while (Step()) {
  }
  if (first_error_) {
    std::rethrow_exception(std::exchange(first_error_, nullptr));
  }
}

bool Environment::RunUntil(TimePoint deadline) {
  for (;;) {
    if (queue_.empty()) {
      if (first_error_) {
        std::rethrow_exception(std::exchange(first_error_, nullptr));
      }
      return true;
    }
    if (queue_.top().t > deadline) {
      now_ = deadline;
      if (first_error_) {
        std::rethrow_exception(std::exchange(first_error_, nullptr));
      }
      return false;
    }
    Step();
  }
}

void Environment::NoteProcessDone(detail::ProcessState* s, bool had_joiners) {
  --live_;
  if (s->exception && !had_joiners) {
    // Nobody was waiting on this process; surface the error from Run().
    if (!first_error_) first_error_ = s->exception;
  }
  // Drop the environment's reference so completed states are reclaimed once
  // user-held Process handles go away.
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    if (processes_[i].get() == s) {
      processes_[i] = std::move(processes_.back());
      processes_.pop_back();
      break;
    }
  }
}

}  // namespace olympian::sim
