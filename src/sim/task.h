#pragma once

#include <coroutine>
#include <cstddef>
#include <exception>
#include <new>
#include <utility>

namespace olympian::sim {

class Environment;

namespace detail {
struct ProcessState;

// Freelist pool for coroutine frames and process-state blocks.
//
// Simulations create and destroy frames at event rates (every spawned
// process, every nested task), and the frames of a given coroutine function
// are all the same size — a textbook fit for size-binned freelists. Blocks
// are binned by rounding the request up to 64-byte granules; oversized
// requests (> 4 KiB) fall through to the global allocator.
//
// The pool is thread_local: each SweepRunner worker thread drives its own
// Environment, and per-thread freelists make frame recycling free of
// synchronization. Outstanding freelist blocks are returned to the global
// allocator when the owning thread exits (keeps LeakSanitizer quiet).
class FramePool {
 public:
  static void* Allocate(std::size_t size) {
    const std::size_t bin = BinFor(size);
    if (bin >= kBins) return ::operator new(size);
    Bins& b = bins();
    if (FreeBlock* block = b.head[bin]) {
      b.head[bin] = block->next;
      return block;
    }
    return ::operator new(bin * kGranularity);
  }

  static void Release(void* p, std::size_t size) noexcept {
    const std::size_t bin = BinFor(size);
    if (bin >= kBins) {
      ::operator delete(p);
      return;
    }
    Bins& b = bins();
    auto* block = static_cast<FreeBlock*>(p);
    block->next = b.head[bin];
    b.head[bin] = block;
  }

 private:
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kBins = 65;  // bins 1..64 => up to 4 KiB

  struct FreeBlock {
    FreeBlock* next;
  };

  struct Bins {
    FreeBlock* head[kBins] = {};
    ~Bins() {
      for (FreeBlock* list : head) {
        while (list != nullptr) {
          FreeBlock* next = list->next;
          ::operator delete(list);
          list = next;
        }
      }
    }
  };

  static std::size_t BinFor(std::size_t size) {
    return (size + kGranularity - 1) / kGranularity;
  }

  static Bins& bins() {
    static thread_local Bins b;
    return b;
  }
};

// Minimal allocator handing out FramePool blocks; used with
// std::allocate_shared so a process's state + shared_ptr control block come
// from the same recycled pool as its coroutine frame.
template <typename T>
struct PoolAlloc {
  using value_type = T;

  PoolAlloc() = default;
  template <typename U>
  PoolAlloc(const PoolAlloc<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(FramePool::Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    FramePool::Release(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PoolAlloc<U>&) const noexcept {
    return true;
  }
};

}  // namespace detail

// The coroutine type for simulation processes.
//
// A `Task` models one logical thread of control in virtual time. Tasks are
// lazy: creating one does not run any code. They are consumed in one of two
// ways:
//
//  * `co_await task` from another task — runs the child to completion within
//    the parent's logical thread (like a plain function call that may block
//    in virtual time). Exceptions propagate to the parent.
//  * `Environment::Spawn(std::move(task))` — runs it as an independent
//    process (like starting an OS thread). Completion is observed via the
//    returned `Process` handle.
//
// Tasks are move-only and own their coroutine frame until consumed. Frames
// are recycled through a per-thread freelist (`detail::FramePool`), so
// steady-state process churn performs no heap allocation.
class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) noexcept;
    void await_resume() const noexcept {}
  };

  struct promise_type {
    // Coroutine to resume when this task finishes (set by co_await).
    std::coroutine_handle<> continuation;
    // Uncaught exception, rethrown at the await site or surfaced by the
    // Environment for spawned processes.
    std::exception_ptr exception;
    // Non-null iff this task was spawned as a top-level process.
    detail::ProcessState* process = nullptr;

    // Route frame allocation through the freelist pool. The sized delete is
    // required: it is how the pool knows which bin a frame returns to.
    static void* operator new(std::size_t size) {
      return detail::FramePool::Allocate(size);
    }
    static void operator delete(void* p, std::size_t size) noexcept {
      detail::FramePool::Release(p, size);
    }

    Task get_return_object() { return Task(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    FinalAwaiter final_suspend() const noexcept { return {}; }
    void return_void() const noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }
  };

  Task() = default;
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      Destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }

  // Awaiting a task starts it (symmetric transfer) and resumes the awaiter
  // when it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        handle.promise().continuation = parent;
        return handle;
      }
      void await_resume() const {
        if (handle && handle.promise().exception) {
          std::rethrow_exception(handle.promise().exception);
        }
      }
    };
    return Awaiter{handle_};
  }

 private:
  friend class Environment;
  explicit Task(Handle h) : handle_(h) {}

  // Relinquish ownership of the frame (used by Spawn; the frame then
  // self-destroys at final suspend).
  Handle Release() { return std::exchange(handle_, nullptr); }

  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  Handle handle_ = nullptr;
};

}  // namespace olympian::sim
