#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace olympian::sim {

class Environment;

namespace detail {
struct ProcessState;
}  // namespace detail

// The coroutine type for simulation processes.
//
// A `Task` models one logical thread of control in virtual time. Tasks are
// lazy: creating one does not run any code. They are consumed in one of two
// ways:
//
//  * `co_await task` from another task — runs the child to completion within
//    the parent's logical thread (like a plain function call that may block
//    in virtual time). Exceptions propagate to the parent.
//  * `Environment::Spawn(std::move(task))` — runs it as an independent
//    process (like starting an OS thread). Completion is observed via the
//    returned `Process` handle.
//
// Tasks are move-only and own their coroutine frame until consumed.
class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) noexcept;
    void await_resume() const noexcept {}
  };

  struct promise_type {
    // Coroutine to resume when this task finishes (set by co_await).
    std::coroutine_handle<> continuation;
    // Uncaught exception, rethrown at the await site or surfaced by the
    // Environment for spawned processes.
    std::exception_ptr exception;
    // Non-null iff this task was spawned as a top-level process.
    detail::ProcessState* process = nullptr;

    Task get_return_object() { return Task(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    FinalAwaiter final_suspend() const noexcept { return {}; }
    void return_void() const noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }
  };

  Task() = default;
  Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, nullptr)) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      Destroy();
      handle_ = std::exchange(o.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }

  // Awaiting a task starts it (symmetric transfer) and resumes the awaiter
  // when it completes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
        handle.promise().continuation = parent;
        return handle;
      }
      void await_resume() const {
        if (handle && handle.promise().exception) {
          std::rethrow_exception(handle.promise().exception);
        }
      }
    };
    return Awaiter{handle_};
  }

 private:
  friend class Environment;
  explicit Task(Handle h) : handle_(h) {}

  // Relinquish ownership of the frame (used by Spawn; the frame then
  // self-destroys at final suspend).
  Handle Release() { return std::exchange(handle_, nullptr); }

  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  Handle handle_ = nullptr;
};

}  // namespace olympian::sim
