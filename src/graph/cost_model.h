#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.h"
#include "sim/time.h"

namespace olympian::graph {

// Per-node measured execution costs for one (model, batch size) pair — the
// equivalent of Tensorflow's cost-model API output that Olympian's profiler
// consumes (paper §3.2).
//
// Costs are in nanoseconds of observed node execution time. The two summary
// quantities the paper's math uses are:
//   C_j = TotalCost()   — sum of all node costs, and
//   D_j = gpu_duration  — the job's GPU duration (union of busy intervals)
// giving the cost-accumulation rate C_j / D_j and quantum threshold
// T_j = Q * C_j / D_j.
class CostProfile {
 public:
  CostProfile() = default;
  explicit CostProfile(std::size_t num_nodes) : costs_(num_nodes, 0.0) {}

  void Resize(std::size_t num_nodes) { costs_.assign(num_nodes, 0.0); }

  void RecordNodeCost(NodeId node, double cost_ns) {
    costs_[static_cast<std::size_t>(node)] = cost_ns;
  }

  double NodeCost(NodeId node) const {
    return costs_[static_cast<std::size_t>(node)];
  }

  std::size_t size() const { return costs_.size(); }

  // C_j: the sum of all node costs.
  double TotalCost() const {
    double s = 0;
    for (double c : costs_) s += c;
    return s;
  }

  const std::vector<double>& costs() const { return costs_; }
  std::vector<double>& mutable_costs() { return costs_; }

  // D_j: measured GPU duration of one solo run (Figure 5).
  sim::Duration gpu_duration;

  // Wall-clock of the solo profiling run (for reporting).
  sim::Duration solo_runtime;

  // Cost-accumulation rate C_j / D_j (paper §3.2). Cost units per
  // nanosecond of GPU duration.
  double CostAccumulationRate() const {
    const double d = static_cast<double>(gpu_duration.nanos());
    return d <= 0 ? 0.0 : TotalCost() / d;
  }

 private:
  std::vector<double> costs_;
};

}  // namespace olympian::graph
