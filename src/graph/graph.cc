#include "graph/graph.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace olympian::graph {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kInput: return "Input";
    case OpKind::kConv: return "Conv2D";
    case OpKind::kMatMul: return "MatMul";
    case OpKind::kPool: return "Pool";
    case OpKind::kNorm: return "Norm";
    case OpKind::kActivation: return "Activation";
    case OpKind::kConcat: return "Concat";
    case OpKind::kAdd: return "Add";
    case OpKind::kSoftmax: return "Softmax";
    case OpKind::kIdentity: return "Identity";
  }
  return "Unknown";
}

std::int64_t Node::BlocksFor(int batch) const {
  const double b = blocks_base + blocks_per_item * batch;
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(std::llround(b)));
}

NodeId Graph::AddNode(Node node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  node.id = id;
  for (NodeId in : node.inputs) {
    if (in < 0 || in >= id) {
      throw std::logic_error("node input must reference an earlier node");
    }
    nodes_[static_cast<size_t>(in)].outputs.push_back(id);
  }
  if (node.is_gpu()) ++gpu_nodes_;
  nodes_.push_back(std::move(node));
  return id;
}

void Graph::Validate() const {
  if (nodes_.empty()) throw std::logic_error("empty graph");
  if (!nodes_[0].inputs.empty()) {
    throw std::logic_error("node 0 must be the source");
  }
  // Ids are append-ordered and inputs always reference earlier nodes, so the
  // graph is acyclic by construction; check connectivity and edge symmetry.
  std::vector<char> reachable(nodes_.size(), 0);
  std::vector<NodeId> stack{0};
  reachable[0] = 1;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (NodeId out : nodes_[static_cast<size_t>(n)].outputs) {
      if (!reachable[static_cast<size_t>(out)]) {
        reachable[static_cast<size_t>(out)] = 1;
        stack.push_back(out);
      }
    }
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!reachable[i]) {
      throw std::logic_error("node " + nodes_[i].name +
                             " unreachable from the source");
    }
    if (i > 0 && nodes_[i].inputs.empty()) {
      throw std::logic_error("multiple sources: node " + nodes_[i].name);
    }
    if (nodes_[i].is_gpu() && nodes_[i].block_work < sim::Duration::Zero()) {
      throw std::logic_error("negative block work on " + nodes_[i].name);
    }
  }
}

sim::Duration Graph::TotalGpuWork(int batch) const {
  sim::Duration total;
  for (const Node& n : nodes_) {
    if (!n.is_gpu()) continue;
    total += n.block_work * static_cast<double>(n.BlocksFor(batch));
  }
  return total;
}

}  // namespace olympian::graph
