#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "sim/environment.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace olympian::graph {

// The simulated inter-op thread pool shared by every job in the server
// (TF-Serving's `threadPool` in Algorithm 1).
//
// Each worker is a simulation process that pulls work items — coroutine
// factories — off a queue and awaits them to completion. A worker therefore
// stays occupied while its item is suspended, which is precisely why
// Olympian reaches the pool limit sooner than stock TF-Serving (§4.3): a
// de-scheduled job's node tasks hold their workers while waiting for the
// scheduler token.
class ThreadPool {
 public:
  using WorkItem = std::function<sim::Task()>;

  ThreadPool(sim::Environment& env, std::size_t num_threads);

  // Enqueue a work item; it starts when a worker becomes free (FIFO).
  void Schedule(WorkItem item);

  // Close the queue; workers drain remaining items and exit. Must be called
  // for Environment::Run() to terminate.
  void Shutdown();

  std::size_t num_threads() const { return num_threads_; }
  std::size_t busy_workers() const { return busy_; }
  std::size_t peak_busy_workers() const { return peak_busy_; }
  std::size_t queued() const { return queue_.size(); }
  std::uint64_t items_executed() const { return executed_; }

 private:
  sim::Task Worker();

  sim::Environment& env_;
  std::size_t num_threads_;
  sim::Channel<WorkItem> queue_;
  std::size_t busy_ = 0;
  std::size_t peak_busy_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace olympian::graph
