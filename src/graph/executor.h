#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gpusim/gpu.h"
#include "graph/cost_model.h"
#include "graph/graph.h"
#include "graph/hooks.h"
#include "graph/thread_pool.h"
#include "metrics/trace.h"
#include "sim/environment.h"
#include "sim/random.h"
#include "sim/sync.h"

namespace olympian::graph {

struct ExecutorOptions {
  // Multiplicative jitter on per-node CPU time. This models OS-thread and
  // cache noise; it is the seed-controlled source of submission-order
  // variance that makes stock TF-Serving's finish times unpredictable
  // (paper Figure 3).
  double cpu_jitter = 0.15;

  // Multiplicative jitter on kernel execution time (clock/thermal noise).
  // Gives profiled costs and GPU durations their few-percent run-to-run
  // spread (paper §4.4 measures ~1.7-2.5% CVs).
  double gpu_jitter = 0.025;

  // When true, models Tensorflow's online cost profiler (CUPTI hooks): a
  // fixed CPU cost per node plus a slowdown on instrumented kernels,
  // inflating end-to-end runtimes by 21-29% (paper Figure 6) — the reason
  // Olympian profiles offline.
  bool online_cost_profiler = false;
  sim::Duration profiler_overhead_per_node = sim::Duration::Micros(4);
  double profiler_kernel_slowdown = 1.22;

  // Optional execution tracing: every node records a span on its job's
  // track (see metrics/trace.h). Must outlive the executor.
  metrics::Tracer* tracer = nullptr;
  // With a tracer set, also record one span per node execution. Node spans
  // dominate trace volume (graph-size events per inference); disabling them
  // keeps the request/attempt flow chains while leaving the buffer to
  // request-level events — what a cluster-scale drill wants.
  bool trace_node_spans = true;
};

// The dataflow-graph executor — the paper's Algorithm 1 (and, with a
// non-null SchedulingHooks, Algorithm 2).
//
// `RunOnce` executes one inference: a breadth-first traversal from the root
// in which synchronous (CPU) nodes run inline on the calling thread's local
// queue while each asynchronous (GPU) node is handed to a thread-pool
// worker that continues the traversal from that node. The set of simulated
// threads working for one job is the paper's "gang".
class Executor {
 public:
  Executor(sim::Environment& env, gpusim::Gpu& gpu, ThreadPool& pool,
           ExecutorOptions options, std::uint64_t seed,
           SchedulingHooks* hooks = nullptr);

  // Execute one inference run of `graph` at `ctx.batch`. Completes when
  // every node has executed. If `profile` is non-null, per-node costs
  // (observed execution times, ns) are recorded into it. Validates `ctx`
  // eagerly (throws std::invalid_argument before any execution).
  sim::Task RunOnce(JobContext& ctx, const Graph& graph,
                    CostProfile* profile = nullptr);

  sim::Environment& env() { return env_; }
  gpusim::Gpu& gpu() { return gpu_; }
  ThreadPool& pool() { return pool_; }
  SchedulingHooks* hooks() { return hooks_; }
  const ExecutorOptions& options() const { return options_; }

  std::uint64_t runs_completed() const { return runs_completed_; }
  std::uint64_t nodes_executed() const { return nodes_executed_; }
  // Nodes skipped because their run was cancelled (deadline / fault).
  std::uint64_t nodes_cancelled() const { return nodes_cancelled_; }

 private:
  // Per-run bookkeeping. Instances are pooled on the executor and recycled
  // across runs (Acquire/Release below): `pending` keeps its heap buffer,
  // so steady-state request admission allocates nothing.
  struct RunState {
    explicit RunState(sim::Environment& env) : all_done(env) {}
    void Reset(const Graph& g, CostProfile* prof);
    const Graph* graph = nullptr;
    CostProfile* profile = nullptr;
    std::vector<std::int32_t> pending;
    std::size_t remaining = 0;
    sim::CondVar all_done;
  };

  // BFS traversal scratch: a flat FIFO that keeps its buffer across runs.
  // One is held per live Process coroutine (gangs traverse concurrently),
  // pooled like RunState.
  struct BfsQueue {
    std::vector<NodeId> buf;
    std::size_t head = 0;
    bool empty() const { return head == buf.size(); }
    void push(NodeId n) { buf.push_back(n); }
    NodeId pop() { return buf[head++]; }
    void reset() {
      buf.clear();
      head = 0;
    }
  };

  RunState* AcquireRunState(const Graph& graph, CostProfile* profile);
  void ReleaseRunState(RunState* st);
  BfsQueue* AcquireBfs();
  void ReleaseBfs(BfsQueue* q);

  sim::Task RunOnceImpl(JobContext& ctx, const Graph& graph,
                        CostProfile* profile);
  sim::Task Process(JobContext& ctx, RunState& st, NodeId start);
  sim::Task Compute(JobContext& ctx, RunState& st, const Node& node);

  static bool IsCancelled(const JobContext& ctx) {
    return ctx.cancel != nullptr && ctx.cancel->cancelled;
  }
  // One-shot hook notification on the first observation of cancellation.
  void NotifyCancel(JobContext& ctx);

  sim::Environment& env_;
  gpusim::Gpu& gpu_;
  ThreadPool& pool_;
  ExecutorOptions options_;
  sim::Rng rng_;
  SchedulingHooks* hooks_;
  std::uint64_t runs_completed_ = 0;
  std::uint64_t nodes_executed_ = 0;
  std::uint64_t nodes_cancelled_ = 0;

  // Scratch pools (owning stores + freelists of recyclable instances).
  std::vector<std::unique_ptr<RunState>> runstate_store_;
  std::vector<RunState*> runstate_free_;
  std::vector<std::unique_ptr<BfsQueue>> bfs_store_;
  std::vector<BfsQueue*> bfs_free_;
};

}  // namespace olympian::graph
