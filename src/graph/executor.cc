#include "graph/executor.h"

#include <stdexcept>

namespace olympian::graph {

Executor::Executor(sim::Environment& env, gpusim::Gpu& gpu, ThreadPool& pool,
                   ExecutorOptions options, std::uint64_t seed,
                   SchedulingHooks* hooks)
    : env_(env),
      gpu_(gpu),
      pool_(pool),
      options_(options),
      rng_(seed),
      hooks_(hooks) {}

void Executor::RunState::Reset(const Graph& g, CostProfile* prof) {
  graph = &g;
  profile = prof;
  remaining = g.size();
  pending.clear();
  for (const Node& n : g.nodes()) {
    pending.push_back(static_cast<std::int32_t>(n.inputs.size()));
  }
  if (profile != nullptr && profile->size() != g.size()) {
    profile->Resize(g.size());
  }
}

Executor::RunState* Executor::AcquireRunState(const Graph& graph,
                                              CostProfile* profile) {
  RunState* st;
  if (!runstate_free_.empty()) {
    st = runstate_free_.back();
    runstate_free_.pop_back();
  } else {
    runstate_store_.push_back(std::make_unique<RunState>(env_));
    st = runstate_store_.back().get();
  }
  st->Reset(graph, profile);
  return st;
}

void Executor::ReleaseRunState(RunState* st) {
  runstate_free_.push_back(st);
}

Executor::BfsQueue* Executor::AcquireBfs() {
  if (!bfs_free_.empty()) {
    BfsQueue* q = bfs_free_.back();
    bfs_free_.pop_back();
    return q;
  }
  bfs_store_.push_back(std::make_unique<BfsQueue>());
  return bfs_store_.back().get();
}

void Executor::ReleaseBfs(BfsQueue* q) {
  q->reset();
  bfs_free_.push_back(q);
}

sim::Task Executor::RunOnce(JobContext& ctx, const Graph& graph,
                            CostProfile* profile) {
  // Validate eagerly: this function is not a coroutine, so violations throw
  // at the call site rather than being deferred into the task.
  if (ctx.streams.empty()) {
    throw std::invalid_argument("JobContext has no GPU streams");
  }
  if (ctx.batch < 1) throw std::invalid_argument("batch must be >= 1");
  return RunOnceImpl(ctx, graph, profile);
}

sim::Task Executor::RunOnceImpl(JobContext& ctx, const Graph& graph,
                                CostProfile* profile) {
  RunState& st = *AcquireRunState(graph, profile);
  const sim::TimePoint attempt_start = env_.Now();
  // Algorithm 2, lines 4-5: register and reset the gang-shared cost.
  ctx.cumulated_cost = 0.0;
  if (hooks_ != nullptr) hooks_->RegisterRun(ctx);
  co_await Process(ctx, st, graph.root());
  // The root traversal has returned, but asynchronous subtrees may still be
  // executing on pool threads; Session::Run returns only when the whole
  // graph has been evaluated.
  while (st.remaining > 0) co_await st.all_done.Wait();
  if (hooks_ != nullptr) hooks_->DeregisterRun(ctx);
  if (options_.tracer != nullptr && ctx.trace.request != 0) {
    // One span per admission of a traced request; the serving layer's flow
    // events bind to these at their start timestamps, chaining retries,
    // hedges, and failover re-admissions across device tracks.
    options_.tracer->AddSpanNumbered(
        "attempt", ctx.trace.hedge ? "hedge-req-" : "req-",
        static_cast<std::int64_t>(ctx.trace.request), ctx.job, attempt_start,
        env_.Now());
  }
  ++runs_completed_;
  // Only now is the state guaranteed unreferenced by pool threads.
  ReleaseRunState(&st);
}

void Executor::NotifyCancel(JobContext& ctx) {
  if (hooks_ != nullptr && ctx.cancel != nullptr &&
      !ctx.cancel->hooks_notified) {
    ctx.cancel->hooks_notified = true;
    hooks_->CancelRun(ctx);
  }
}

sim::Task Executor::Process(JobContext& ctx, RunState& st, NodeId start) {
  BfsQueue& bfs_queue = *AcquireBfs();
  bfs_queue.push(start);
  while (!bfs_queue.empty()) {
    const NodeId nid = bfs_queue.pop();
    const Node& node = st.graph->node(nid);

    bool cancelled = IsCancelled(ctx);
    if (!cancelled) {
      // Algorithm 2, line 12: cooperative yield point. With no hooks this is
      // stock TF-Serving (Algorithm 1).
      if (hooks_ != nullptr && hooks_->NeedsYield(ctx)) {
        co_await hooks_->Yield(ctx);
        cancelled = IsCancelled(ctx);  // run may have been cancelled waiting
      }
    }
    if (!cancelled) {
      co_await Compute(ctx, st, node);
      // A kernel failure inside Compute, or a deadline elapsing while the
      // kernel was in flight, cancels the run mid-node.
      cancelled = IsCancelled(ctx);
      // Algorithm 2, lines 14-18: cost accrual / token rotation.
      if (!cancelled && hooks_ != nullptr) hooks_->OnNodeComputed(ctx, node);
      ++nodes_executed_;
    } else {
      ++nodes_cancelled_;
    }
    if (cancelled) NotifyCancel(ctx);

    --st.remaining;
    if (st.remaining == 0) st.all_done.NotifyAll();

    for (const NodeId child : node.outputs) {
      if (--st.pending[static_cast<std::size_t>(child)] == 0) {
        if (cancelled || !st.graph->node(child).is_gpu()) {
          // Synchronous — or cancelled, in which case the rest of the graph
          // drains inline as no-ops without touching the pool.
          bfs_queue.push(child);
        } else {
          // Asynchronous: fetch a pool thread to continue from this node
          // (Algorithm 1, lines 13-15). &ctx and &st outlive the item: the
          // enclosing RunOnce returns only after every node has executed.
          pool_.Schedule(
              [this, &ctx, &st, child]() { return Process(ctx, st, child); });
        }
      }
    }
  }
  ReleaseBfs(&bfs_queue);
}

sim::Task Executor::Compute(JobContext& ctx, RunState& st, const Node& node) {
  const sim::TimePoint t0 = env_.Now();
  sim::Duration cpu =
      node.cpu_time + node.cpu_time_per_item * static_cast<double>(ctx.batch);
  if (options_.online_cost_profiler) {
    cpu += options_.profiler_overhead_per_node;
  }
  if (options_.cpu_jitter > 0.0) cpu = rng_.Jitter(cpu, options_.cpu_jitter);
  if (cpu > sim::Duration::Zero()) co_await env_.Delay(cpu);

  if (node.is_gpu()) {
    const auto stream = ctx.streams[ctx.next_stream % ctx.streams.size()];
    ++ctx.next_stream;
    sim::Duration work = node.block_work;
    if (options_.online_cost_profiler) {
      work = work * options_.profiler_kernel_slowdown;
    }
    if (options_.gpu_jitter > 0.0) work = rng_.Jitter(work, options_.gpu_jitter);
    try {
      co_await gpu_.Submit(stream,
                           gpusim::KernelDesc{
                               .job = ctx.job,
                               .node_id = node.id,
                               .thread_blocks = node.BlocksFor(ctx.batch),
                               .block_work = work,
                           });
    } catch (const gpusim::KernelFailed&) {
      // With a cancellation token installed the failure degrades gracefully:
      // the run is marked failed and drains, and the serving layer decides
      // whether to retry. Without one (manual drivers), stay fail-stop.
      if (ctx.cancel == nullptr) throw;
      ctx.cancel->Cancel(CancelReason::kKernelFailed);
    }
  }

  if (st.profile != nullptr) {
    st.profile->RecordNodeCost(
        node.id, static_cast<double>((env_.Now() - t0).nanos()));
  }
  if (options_.tracer != nullptr && options_.trace_node_spans) {
    // Numbered ("node-<id>") rather than the graph's string name: this runs
    // once per node execution, and interning every name would hash and
    // allocate ~graph-size strings per fresh tracer — measurable against
    // the whole simulation. The id resolves to the name via the graph.
    // Called even when full so truncation accounting sees every rejection.
    options_.tracer->AddSpanNumbered(node.is_gpu() ? "gpu-node" : "cpu-node",
                                     "node-", node.id, ctx.job, t0,
                                     env_.Now());
  }
}

}  // namespace olympian::graph
