#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace olympian::graph {

using NodeId = std::int32_t;

// Where a node's kernel runs. GPU nodes are asynchronous: the executor hands
// them to a thread-pool thread which blocks on kernel completion, exactly as
// TF-Serving does (paper Algorithm 1, lines 13-15).
enum class Device { kCpu, kGpu };

// Broad operator classes; they only affect naming/statistics, not the
// execution model (which is driven by the per-node work parameters).
enum class OpKind {
  kInput,
  kConv,
  kMatMul,
  kPool,
  kNorm,
  kActivation,
  kConcat,
  kAdd,
  kSoftmax,
  kIdentity,
};

const char* OpKindName(OpKind kind);

// One operator in a dataflow graph.
//
// Work is parameterized by batch size with an explicit linear model —
// `thread_blocks = blocks_base + blocks_per_item * batch` — which is what
// makes the paper's linear cost extrapolation across batch sizes (§3.2,
// Figure 20) physically true in this simulation.
struct Node {
  NodeId id = -1;
  std::string name;
  OpKind op = OpKind::kIdentity;
  Device device = Device::kCpu;

  // CPU-side processing (the whole node for CPU nodes; launch/bookkeeping
  // for GPU nodes). Total CPU time is cpu_time + cpu_time_per_item * batch;
  // the per-item term models input decode/batching work (paper §2.1).
  sim::Duration cpu_time;
  sim::Duration cpu_time_per_item;

  // GPU kernel shape (ignored for CPU nodes).
  double blocks_base = 0.0;
  double blocks_per_item = 0.0;
  sim::Duration block_work;

  std::vector<NodeId> inputs;
  std::vector<NodeId> outputs;

  bool is_gpu() const { return device == Device::kGpu; }

  // Thread blocks launched for a given batch size (>= 1 for GPU nodes).
  std::int64_t BlocksFor(int batch) const;
};

// An immutable-after-build DNN dataflow graph. Node 0 is always the single
// source (the input/batching node); the graph must be a connected DAG.
class Graph {
 public:
  explicit Graph(std::string name) : name_(std::move(name)) {}

  // Adds a node and returns its id. Inputs must already exist.
  NodeId AddNode(Node node);

  const std::string& name() const { return name_; }
  const Node& node(NodeId id) const { return nodes_[static_cast<size_t>(id)]; }
  // Mutable access for builders (e.g. work-calibration passes).
  Node& MutableNode(NodeId id) { return nodes_[static_cast<size_t>(id)]; }
  const std::vector<Node>& nodes() const { return nodes_; }
  std::size_t size() const { return nodes_.size(); }
  NodeId root() const { return 0; }

  std::size_t gpu_node_count() const { return gpu_nodes_; }
  std::size_t cpu_node_count() const { return nodes_.size() - gpu_nodes_; }

  // Checks the structural invariants (single source at id 0, acyclic,
  // edges consistent, every node reachable from the root). Throws
  // std::logic_error on violation. Model builders call this once.
  void Validate() const;

  // Total GPU work (sum over GPU nodes of blocks * block_work) at a batch
  // size; used for calibration and analytical sanity checks.
  sim::Duration TotalGpuWork(int batch) const;

 private:
  std::string name_;
  std::vector<Node> nodes_;
  std::size_t gpu_nodes_ = 0;
};

}  // namespace olympian::graph
