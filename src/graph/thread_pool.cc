#include "graph/thread_pool.h"

#include <algorithm>
#include <utility>

namespace olympian::graph {

ThreadPool::ThreadPool(sim::Environment& env, std::size_t num_threads)
    : env_(env), num_threads_(num_threads), queue_(env) {
  for (std::size_t i = 0; i < num_threads_; ++i) {
    env_.Spawn(Worker(), "pool-worker");
  }
}

void ThreadPool::Schedule(WorkItem item) { queue_.Push(std::move(item)); }

void ThreadPool::Shutdown() { queue_.Close(); }

sim::Task ThreadPool::Worker() {
  for (;;) {
    std::optional<WorkItem> item;
    co_await queue_.Pop(item);
    if (!item) co_return;  // pool shut down
    ++busy_;
    peak_busy_ = std::max(peak_busy_, busy_);
    // Keep the factory alive while its coroutine runs (it owns captures).
    WorkItem fn = std::move(*item);
    co_await fn();
    ++executed_;
    --busy_;
  }
}

}  // namespace olympian::graph
