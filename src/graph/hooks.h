#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/kernel.h"
#include "graph/graph.h"
#include "metrics/trace_context.h"
#include "sim/task.h"

namespace olympian::metrics {
class MetricRegistry;
}  // namespace olympian::metrics

namespace olympian::graph {

// Why a run was cancelled mid-flight.
enum class CancelReason : std::uint8_t {
  kNone = 0,
  kDeadline,      // the request's deadline elapsed
  kKernelFailed,  // a GPU kernel retired with an error (fault injection)
  kFailover,      // the device went down; the request moves to a replica
                  // without consuming its retry budget
};

// Stable label for a cancel reason; used verbatim as the `reason` argument
// of tracer flow hops, so trace consumers can key on these strings.
inline const char* ToString(CancelReason r) {
  switch (r) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kDeadline:
      return "deadline";
    case CancelReason::kKernelFailed:
      return "kernel-failed";
    case CancelReason::kFailover:
      return "failover";
  }
  return "unknown";
}

// Per-request cancellation token. The issuer (serving layer) points
// `JobContext::cancel` at one of these for the duration of a run; the
// executor checks it at every node boundary and the scheduler checks it
// when deciding whether a suspended gang thread should keep waiting for
// the token. Cancellation is cooperative and sticky: once set, the run
// drains its remaining nodes as no-ops and completes promptly.
struct CancelToken {
  bool cancelled = false;
  // Set by the issuer once the run has completed (drained); lets a stale
  // deadline watchdog recognize that its request already finished.
  bool finished = false;
  // True once the scheduling hooks have been told (CancelRun); guards
  // against double notification from racing observers.
  bool hooks_notified = false;
  CancelReason reason = CancelReason::kNone;

  void Cancel(CancelReason r) {
    if (!cancelled) {
      cancelled = true;
      reason = r;
    }
  }
};

// Everything the executor and scheduler need to know about one job — the
// equivalent of the paper's `SessRunInfo`. One JobContext is created per
// client and reused across that client's sequential batch runs.
struct JobContext {
  gpusim::JobId job = 0;
  std::string client_name;
  // Profile lookup key, e.g. "inception-v4@100" (model + batch size).
  std::string model_key;
  int batch = 1;
  // Policy inputs (paper §3.4): weighted fair sharing and priority, plus a
  // guaranteed minimum GPU share in [0,1) for the reservation policy
  // (extension).
  int weight = 1;
  int priority = 0;
  double min_share = 0.0;
  // Algorithm 2's `cumulatedCost`, shared by the job's whole thread gang.
  double cumulated_cost = 0.0;
  // GPU streams assigned to this job, used round-robin across its nodes.
  std::vector<gpusim::StreamId> streams;
  std::size_t next_stream = 0;
  // Cancellation token of the in-flight run, or nullptr when the run is
  // not cancellable. Owned by the issuer; valid only while the run is in
  // flight (reset between runs).
  CancelToken* cancel = nullptr;
  // Device this context executes on; lets trace consumers map a job track
  // back to a GPU. The serving layer keeps it in sync across failover.
  int gpu_index = 0;
  // Causal identity of the in-flight request (0 = untraced). Set by the
  // serving layer before each run; the executor stamps it onto attempt
  // spans so Chrome-trace flow events can bind across device tracks.
  metrics::TraceContext trace;
};

// The Olympian patch point inside the TF session loop.
//
// Stock TF-Serving is an executor with no hooks (nullptr). Olympian's
// scheduler (core/scheduler.h) implements this interface to realize
// Algorithm 2: registration, the cooperative yield before every node
// compute, and cost accrual with quantum rotation after every node.
class SchedulingHooks {
 public:
  virtual ~SchedulingHooks() = default;

  // Algorithm 2, line 4 / line 7 (per Session::Run, i.e. per batch run).
  virtual void RegisterRun(JobContext& ctx) = 0;
  virtual void DeregisterRun(JobContext& ctx) = 0;

  // Fast-path check: does the calling thread need to pass through Yield?
  // (Avoids a coroutine-frame allocation per node on the hot path.)
  virtual bool NeedsYield(const JobContext& ctx) const = 0;

  // Algorithm 2, line 12: called before computing every node; suspends the
  // calling thread while the job does not hold the GPU token.
  virtual sim::Task Yield(JobContext& ctx) = 0;

  // Algorithm 2, lines 14-18: called after a node computes; accrues the
  // node's profiled cost and rotates the token when the quantum expires.
  virtual void OnNodeComputed(JobContext& ctx, const Node& node) = 0;

  // Called once when `ctx`'s in-flight run is cancelled (deadline or
  // fault). Implementations must release any grant the job holds (rotating
  // it to a live job) and wake the job's suspended gang threads so they can
  // observe the cancellation and drain — a cancelled gang must not strand
  // threads in the pool. Idempotent; default is a no-op (stock TF-Serving
  // has no scheduler state to release).
  virtual void CancelRun(JobContext& ctx) { (void)ctx; }

  // Failover lifecycle of the device this scheduler manages. OnDeviceDown
  // is called after every in-flight run has been cancelled (CancelRun):
  // implementations drop any remaining registration state and park the
  // grant. OnDeviceUp is called when the health layer readmits the device;
  // traffic resumes through the normal RegisterRun path. Defaults no-op.
  virtual void OnDeviceDown() {}
  virtual void OnDeviceUp() {}

  // Observability sampler tick: publish whatever internal occupancy state
  // the implementation has (token holder, quantum counts) into `registry`.
  // `device` is the index of the GPU this hook instance manages; one hook
  // instance may be shared across devices only if it ignores it, so
  // implementations must label their series with it to keep per-device
  // samples from colliding. Must be strictly read-only with respect to
  // scheduling state — the golden determinism suite runs with the sampler
  // on and expects bit-identical trajectories. Default no-op.
  virtual void OnSample(metrics::MetricRegistry& registry, sim::TimePoint now,
                        std::size_t device) {
    (void)registry;
    (void)now;
    (void)device;
  }
};

}  // namespace olympian::graph
