#include "models/model_zoo.h"

#include <cmath>
#include <stdexcept>

#include "gpusim/gpu_spec.h"
#include "sim/random.h"

namespace olympian::models {

namespace {

using graph::Device;
using graph::Graph;
using graph::Node;
using graph::OpKind;
using sim::Duration;

// Fraction of a solo run's wall time spent saturating the GPU. The paper's
// workloads are GPU-bound at their Table-2 batch sizes (two concurrent
// Inception jobs take twice as long as one, §2.3); 0.92 leaves room for
// CPU-side ramp-up/drain.
constexpr double kGpuWorkFraction = 0.88;

// log-normal helper parameterized by median.
Duration LogNormalDuration(sim::Rng& rng, double median_us, double sigma) {
  const double v = rng.LogNormal(std::log(median_us * 1e3), sigma);
  return Duration::Nanos(static_cast<std::int64_t>(v));
}

}  // namespace

std::int64_t ModelSpec::ClientMemoryMb(int batch) const {
  return static_cast<std::int64_t>(
      std::ceil(activation_mb_per_item * static_cast<double>(batch)));
}

const std::vector<ModelSpec>& AllModels() {
  static const std::vector<ModelSpec> kModels = {
      // Paper Table 2 rows. branch_lengths reflect each architecture's
      // characteristic parallel width: 4-way Inception modules, 3-way
      // GoogLeNet modules, AlexNet's two grouped towers, VGG's plain chain,
      // and residual blocks (main path + shortcut).
      {.name = "inception-v4",
       .paper_batch = 150,
       .total_nodes = 15599,
       .gpu_nodes = 13309,
       .paper_runtime_s = 0.81,
       .branch_lengths = {7, 7, 7, 7},
       .heavy_work_share = 0.88,
       .heavy_node_frac = 0.15,
       .graph_seed = 101,
       .params_mb = 163,
       .activation_mb_per_item = 1.05},
      {.name = "googlenet",
       .paper_batch = 200,
       .total_nodes = 18980,
       .gpu_nodes = 15948,
       .paper_runtime_s = 1.09,
       .branch_lengths = {6, 6, 6},
       .heavy_work_share = 0.88,
       .heavy_node_frac = 0.15,
       .graph_seed = 102,
       .params_mb = 27,
       .activation_mb_per_item = 1.10},
      {.name = "alexnet",
       .paper_batch = 256,
       .total_nodes = 23774,
       .gpu_nodes = 19902,
       .paper_runtime_s = 1.13,
       .branch_lengths = {5, 5},
       .heavy_work_share = 0.85,
       .heavy_node_frac = 0.12,
       .graph_seed = 103,
       .params_mb = 233,
       .activation_mb_per_item = 0.85},
      {.name = "vgg16",
       .paper_batch = 120,
       .total_nodes = 11297,
       .gpu_nodes = 9965,
       .paper_runtime_s = 0.83,
       .branch_lengths = {9},
       .heavy_work_share = 0.92,
       .heavy_node_frac = 0.22,
       .graph_seed = 104,
       .params_mb = 528,
       .activation_mb_per_item = 2.00},
      {.name = "resnet-50",
       .paper_batch = 144,
       .total_nodes = 14472,
       .gpu_nodes = 12280,
       .paper_runtime_s = 0.79,
       .branch_lengths = {6, 1},
       .heavy_work_share = 0.88,
       .heavy_node_frac = 0.15,
       .graph_seed = 105,
       .params_mb = 98,
       .activation_mb_per_item = 1.45},
      {.name = "resnet-101",
       .paper_batch = 128,
       .total_nodes = 14034,
       .gpu_nodes = 12082,
       .paper_runtime_s = 0.85,
       .branch_lengths = {6, 1},
       .heavy_work_share = 0.88,
       .heavy_node_frac = 0.15,
       .graph_seed = 106,
       .params_mb = 170,
       .activation_mb_per_item = 1.60},
      {.name = "resnet-152",
       .paper_batch = 100,
       .total_nodes = 12495,
       .gpu_nodes = 10963,
       .paper_runtime_s = 0.80,
       .branch_lengths = {6, 1},
       .heavy_work_share = 0.88,
       .heavy_node_frac = 0.15,
       .graph_seed = 107,
       .params_mb = 230,
       .activation_mb_per_item = 2.10},
  };
  return kModels;
}

const ModelSpec& GetModel(const std::string& name) {
  for (const ModelSpec& m : AllModels()) {
    if (m.name == name) return m;
  }
  throw std::out_of_range("unknown model: " + name);
}

std::string ModelKey(const std::string& model, int batch) {
  return model + "@" + std::to_string(batch);
}

Graph BuildModel(const ModelSpec& spec) {
  if (spec.branch_lengths.empty()) {
    throw std::invalid_argument("model needs at least one branch");
  }
  sim::Rng rng(spec.graph_seed);
  Graph g(spec.name);

  // Structure: `segments` sequential stages, each a set of parallel pure-GPU
  // branch chains joined by a GPU merge node, plus CPU "administrative" side
  // nodes hanging off each merge. CPU nodes sit OFF the GPU data path — as
  // in real TF graphs, where inline host ops would stall the stream — so
  // they overlap with the job's own kernels instead of bubbling the device.
  int branch_sum = 0;
  for (int l : spec.branch_lengths) branch_sum += l;
  const int per_segment_gpu = branch_sum + 1;  // + merge node
  const int segments = std::max(1, spec.gpu_nodes / per_segment_gpu);
  const int pad_gpu = spec.gpu_nodes - segments * per_segment_gpu;
  const int cpu_side_total = spec.total_nodes - spec.gpu_nodes - 1;  // - input
  if (cpu_side_total < 0) {
    throw std::invalid_argument("gpu_nodes exceeds total_nodes");
  }

  std::int64_t gpu_left = spec.gpu_nodes;
  std::int64_t heavy_left = static_cast<std::int64_t>(
      std::llround(spec.heavy_node_frac * static_cast<double>(spec.gpu_nodes)));

  std::vector<bool> is_heavy;  // by node id, for the calibration pass
  auto make_gpu_node = [&](std::string name, OpKind op,
                           std::vector<graph::NodeId> inputs) {
    Node n;
    n.name = std::move(name);
    n.op = op;
    n.inputs = std::move(inputs);
    n.device = Device::kGpu;
    // Kernel-launch path. Kept small: real TF enqueues kernels into CUDA
    // streams asynchronously, so back-to-back kernels of one job leave
    // almost no pipeline bubble even when the graph is a narrow chain.
    n.cpu_time = LogNormalDuration(rng, 0.5, 0.5);
    const bool heavy = rng.NextDouble() < static_cast<double>(heavy_left) /
                                              static_cast<double>(gpu_left);
    --gpu_left;
    // Kernels are pixel-level data-parallel over the whole batch: at the
    // paper's batch sizes their block counts meet or exceed the device's
    // resident-block capacity, so concurrent requests get essentially no
    // spatial multiplexing (paper §2.3).
    if (heavy) {
      --heavy_left;
      n.block_work = LogNormalDuration(rng, 150.0, 0.45);
      n.blocks_base = rng.Uniform(0.0, 16.0);
      n.blocks_per_item = rng.Uniform(4.0, 10.0);
    } else {
      n.block_work = LogNormalDuration(rng, 8.0, 0.9);
      n.blocks_base = rng.Uniform(0.0, 8.0);
      n.blocks_per_item = rng.Uniform(2.5, 6.0);
    }
    const auto id = g.AddNode(std::move(n));
    is_heavy.push_back(heavy);
    return id;
  };
  auto make_cpu_node = [&](std::string name, OpKind op,
                           std::vector<graph::NodeId> inputs) {
    Node n;
    n.name = std::move(name);
    n.op = op;
    n.inputs = std::move(inputs);
    n.device = Device::kCpu;
    n.cpu_time = LogNormalDuration(rng, 10.0, 0.8);
    const auto id = g.AddNode(std::move(n));
    is_heavy.push_back(false);
    return id;
  };

  // Input / batching node (CPU; decode cost scales with batch, §2.1).
  {
    Node input;
    input.name = "input";
    input.op = OpKind::kInput;
    input.device = Device::kCpu;
    input.cpu_time = Duration::Micros(30);
    input.cpu_time_per_item = Duration::Micros(50);
    g.AddNode(std::move(input));
    is_heavy.push_back(false);
  }

  graph::NodeId prev = 0;
  const OpKind kBranchOps[] = {OpKind::kConv, OpKind::kNorm,
                               OpKind::kActivation, OpKind::kPool};
  int cpu_emitted = 0;
  for (int s = 0; s < segments; ++s) {
    std::vector<graph::NodeId> ends;
    ends.reserve(spec.branch_lengths.size());
    for (std::size_t b = 0; b < spec.branch_lengths.size(); ++b) {
      graph::NodeId cur = prev;
      for (int i = 0; i < spec.branch_lengths[b]; ++i) {
        cur = make_gpu_node("seg" + std::to_string(s) + "/b" +
                                std::to_string(b) + "/op" + std::to_string(i),
                            kBranchOps[static_cast<std::size_t>(i) % 4], {cur});
      }
      ends.push_back(cur);
    }
    prev = make_gpu_node("seg" + std::to_string(s) + "/merge",
                         ends.size() > 1 ? OpKind::kConcat : OpKind::kIdentity,
                         std::move(ends));
    // Evenly spread administrative CPU side nodes (no downstream consumers).
    const int cpu_target =
        static_cast<int>(static_cast<std::int64_t>(cpu_side_total) * (s + 1) /
                         segments);
    for (; cpu_emitted < cpu_target; ++cpu_emitted) {
      make_cpu_node("seg" + std::to_string(s) + "/aux" +
                        std::to_string(cpu_emitted),
                    OpKind::kIdentity, {prev});
    }
  }
  for (int i = 0; i < pad_gpu; ++i) {
    prev = make_gpu_node(
        "tail/op" + std::to_string(i),
        i + 1 == pad_gpu ? OpKind::kSoftmax : OpKind::kMatMul, {prev});
  }

  // --- calibration -------------------------------------------------------
  // Normalize per-block work so total GPU work at the paper batch size
  // equals the Table-2 runtime scaled by the reference device parallelism,
  // split heavy_work_share : (1 - heavy_work_share) between heavy kernels
  // and the rest. "Heavy" after generation = top blocks_per_item >= 1.0.
  const double slots = static_cast<double>(
      gpusim::GpuSpec::Gtx1080Ti().total_block_slots());
  const double target_slot_ns =
      spec.paper_runtime_s * kGpuWorkFraction * slots * 1e9;
  double heavy_raw = 0, small_raw = 0;
  for (const Node& n : g.nodes()) {
    if (!n.is_gpu()) continue;
    const double w = static_cast<double>(n.BlocksFor(spec.paper_batch)) *
                     static_cast<double>(n.block_work.nanos());
    (is_heavy[static_cast<std::size_t>(n.id)] ? heavy_raw : small_raw) += w;
  }
  const double heavy_scale =
      heavy_raw > 0 ? target_slot_ns * spec.heavy_work_share / heavy_raw : 0;
  const double small_scale =
      small_raw > 0 ? target_slot_ns * (1.0 - spec.heavy_work_share) / small_raw
                    : 0;
  // Const-cast free path: rebuild durations via the mutable node list.
  for (std::size_t i = 0; i < g.size(); ++i) {
    Node& n = g.MutableNode(static_cast<graph::NodeId>(i));
    if (!n.is_gpu()) continue;
    n.block_work = n.block_work * (is_heavy[i] ? heavy_scale : small_scale);
  }

  g.Validate();
  return g;
}

}  // namespace olympian::models
