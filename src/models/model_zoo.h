#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace olympian::models {

// Static description of one of the paper's seven DNNs (Table 2) plus the
// generation parameters used to synthesize a dataflow graph with the same
// shape: node count, GPU-node count, solo runtime at the paper's batch
// size, and the Figure-4 node-duration distribution.
struct ModelSpec {
  std::string name;

  // --- paper Table 2 ----------------------------------------------------
  int paper_batch = 100;
  int total_nodes = 10000;
  int gpu_nodes = 8500;
  double paper_runtime_s = 0.8;  // solo run, one batch, paper hardware

  // --- architecture shape ------------------------------------------------
  // Parallel branch lengths within one segment (e.g. {7,7,7,7} for an
  // Inception module, {6,1} for a residual block, {8} for VGG's chain).
  std::vector<int> branch_lengths;
  // Fraction of GPU work carried by rare "heavy" kernels (big convolutions).
  double heavy_work_share = 0.85;
  // Fraction of branch nodes that are heavy.
  double heavy_node_frac = 0.05;
  // Graph-generation seed (fixed per model: the graph is deterministic).
  std::uint64_t graph_seed = 1;

  // --- memory footprint (for §4.3 scaling) -------------------------------
  std::int64_t params_mb = 100;
  double activation_mb_per_item = 1.0;

  // Device memory one serving client needs at a batch size (activations;
  // parameters are shared across clients and charged once per model).
  std::int64_t ClientMemoryMb(int batch) const;
};

// All seven models of the paper's Table 2.
const std::vector<ModelSpec>& AllModels();

// Lookup by name ("inception-v4", "googlenet", "alexnet", "vgg16",
// "resnet-50", "resnet-101", "resnet-152"). Throws std::out_of_range for
// unknown names.
const ModelSpec& GetModel(const std::string& name);

// Profile-map key for a (model, batch) pair, e.g. "inception-v4@100".
std::string ModelKey(const std::string& model, int batch);

// Synthesize the dataflow graph for `spec`. Deterministic in (spec); the
// batch size is applied at execution time via Node::BlocksFor, so one graph
// serves every batch size.
//
// Calibration: per-block work durations are normalized so that the total
// GPU work at `spec.paper_batch` equals `spec.paper_runtime_s` scaled by
// the reference device's parallelism — making a solo run on the reference
// GPU (GTX-1080Ti model) land near the paper's Table-2 runtime, with the
// workload GPU-bound as on the real testbed.
graph::Graph BuildModel(const ModelSpec& spec);

}  // namespace olympian::models
