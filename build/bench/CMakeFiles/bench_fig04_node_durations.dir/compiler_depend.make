# Empty compiler generated dependencies file for bench_fig04_node_durations.
# This may be replaced when dependencies are built.
