file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_node_durations.dir/bench_fig04_node_durations.cc.o"
  "CMakeFiles/bench_fig04_node_durations.dir/bench_fig04_node_durations.cc.o.d"
  "bench_fig04_node_durations"
  "bench_fig04_node_durations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_node_durations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
