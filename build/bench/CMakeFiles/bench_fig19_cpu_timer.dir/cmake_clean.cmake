file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_cpu_timer.dir/bench_fig19_cpu_timer.cc.o"
  "CMakeFiles/bench_fig19_cpu_timer.dir/bench_fig19_cpu_timer.cc.o.d"
  "bench_fig19_cpu_timer"
  "bench_fig19_cpu_timer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_cpu_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
