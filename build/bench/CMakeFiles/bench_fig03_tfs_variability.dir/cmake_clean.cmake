file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_tfs_variability.dir/bench_fig03_tfs_variability.cc.o"
  "CMakeFiles/bench_fig03_tfs_variability.dir/bench_fig03_tfs_variability.cc.o.d"
  "bench_fig03_tfs_variability"
  "bench_fig03_tfs_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_tfs_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
