# Empty dependencies file for bench_fig06_profiler_overhead.
# This may be replaced when dependencies are built.
