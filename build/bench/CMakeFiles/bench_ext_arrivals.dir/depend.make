# Empty dependencies file for bench_ext_arrivals.
# This may be replaced when dependencies are built.
