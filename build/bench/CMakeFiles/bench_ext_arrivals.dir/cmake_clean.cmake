file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_arrivals.dir/bench_ext_arrivals.cc.o"
  "CMakeFiles/bench_ext_arrivals.dir/bench_ext_arrivals.cc.o.d"
  "bench_ext_arrivals"
  "bench_ext_arrivals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
