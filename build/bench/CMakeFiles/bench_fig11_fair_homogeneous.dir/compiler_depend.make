# Empty compiler generated dependencies file for bench_fig11_fair_homogeneous.
# This may be replaced when dependencies are built.
