file(REMOVE_RECURSE
  "CMakeFiles/bench_fig21_portability.dir/bench_fig21_portability.cc.o"
  "CMakeFiles/bench_fig21_portability.dir/bench_fig21_portability.cc.o.d"
  "bench_fig21_portability"
  "bench_fig21_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
