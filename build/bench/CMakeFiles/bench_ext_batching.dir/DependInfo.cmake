
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_batching.cc" "bench/CMakeFiles/bench_ext_batching.dir/bench_ext_batching.cc.o" "gcc" "bench/CMakeFiles/bench_ext_batching.dir/bench_ext_batching.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/olympian_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/olympian_core.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/olympian_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/olympian_models.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/olympian_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/olympian_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/olympian_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/olympian_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
