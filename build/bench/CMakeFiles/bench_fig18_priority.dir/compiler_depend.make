# Empty compiler generated dependencies file for bench_fig18_priority.
# This may be replaced when dependencies are built.
