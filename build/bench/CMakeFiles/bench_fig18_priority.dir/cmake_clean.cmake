file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_priority.dir/bench_fig18_priority.cc.o"
  "CMakeFiles/bench_fig18_priority.dir/bench_fig18_priority.cc.o.d"
  "bench_fig18_priority"
  "bench_fig18_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
