file(REMOVE_RECURSE
  "CMakeFiles/olympian_bench_common.dir/harness.cc.o"
  "CMakeFiles/olympian_bench_common.dir/harness.cc.o.d"
  "libolympian_bench_common.a"
  "libolympian_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olympian_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
