file(REMOVE_RECURSE
  "libolympian_bench_common.a"
)
