# Empty dependencies file for olympian_bench_common.
# This may be replaced when dependencies are built.
