# Empty compiler generated dependencies file for bench_util_scaling.
# This may be replaced when dependencies are built.
