file(REMOVE_RECURSE
  "CMakeFiles/bench_util_scaling.dir/bench_util_scaling.cc.o"
  "CMakeFiles/bench_util_scaling.dir/bench_util_scaling.cc.o.d"
  "bench_util_scaling"
  "bench_util_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_util_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
