file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_overhead_q.dir/bench_fig08_overhead_q.cc.o"
  "CMakeFiles/bench_fig08_overhead_q.dir/bench_fig08_overhead_q.cc.o.d"
  "bench_fig08_overhead_q"
  "bench_fig08_overhead_q.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_overhead_q.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
