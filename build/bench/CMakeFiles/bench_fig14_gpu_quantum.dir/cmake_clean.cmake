file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_gpu_quantum.dir/bench_fig14_gpu_quantum.cc.o"
  "CMakeFiles/bench_fig14_gpu_quantum.dir/bench_fig14_gpu_quantum.cc.o.d"
  "bench_fig14_gpu_quantum"
  "bench_fig14_gpu_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_gpu_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
