# Empty compiler generated dependencies file for bench_fig14_gpu_quantum.
# This may be replaced when dependencies are built.
