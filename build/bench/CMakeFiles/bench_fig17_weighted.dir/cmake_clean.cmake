file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_weighted.dir/bench_fig17_weighted.cc.o"
  "CMakeFiles/bench_fig17_weighted.dir/bench_fig17_weighted.cc.o.d"
  "bench_fig17_weighted"
  "bench_fig17_weighted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_weighted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
