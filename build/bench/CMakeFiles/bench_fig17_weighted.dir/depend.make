# Empty dependencies file for bench_fig17_weighted.
# This may be replaced when dependencies are built.
