file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_power.dir/bench_ext_power.cc.o"
  "CMakeFiles/bench_ext_power.dir/bench_ext_power.cc.o.d"
  "bench_ext_power"
  "bench_ext_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
