# Empty compiler generated dependencies file for bench_fig20_linear_model.
# This may be replaced when dependencies are built.
