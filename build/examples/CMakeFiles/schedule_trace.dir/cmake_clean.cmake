file(REMOVE_RECURSE
  "CMakeFiles/schedule_trace.dir/schedule_trace.cpp.o"
  "CMakeFiles/schedule_trace.dir/schedule_trace.cpp.o.d"
  "schedule_trace"
  "schedule_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
