file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_serving.dir/multi_tenant_serving.cpp.o"
  "CMakeFiles/multi_tenant_serving.dir/multi_tenant_serving.cpp.o.d"
  "multi_tenant_serving"
  "multi_tenant_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
