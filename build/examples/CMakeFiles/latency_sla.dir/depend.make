# Empty dependencies file for latency_sla.
# This may be replaced when dependencies are built.
