# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/gpusim_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/serving_test[1]_include.cmake")
include("/root/repo/build/tests/batcher_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/workload_spec_test[1]_include.cmake")
include("/root/repo/build/tests/isolation_property_test[1]_include.cmake")
