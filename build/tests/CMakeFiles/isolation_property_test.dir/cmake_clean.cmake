file(REMOVE_RECURSE
  "CMakeFiles/isolation_property_test.dir/isolation_property_test.cc.o"
  "CMakeFiles/isolation_property_test.dir/isolation_property_test.cc.o.d"
  "isolation_property_test"
  "isolation_property_test.pdb"
  "isolation_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isolation_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
