# Empty dependencies file for isolation_property_test.
# This may be replaced when dependencies are built.
