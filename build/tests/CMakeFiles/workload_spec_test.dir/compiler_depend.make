# Empty compiler generated dependencies file for workload_spec_test.
# This may be replaced when dependencies are built.
