file(REMOVE_RECURSE
  "CMakeFiles/workload_spec_test.dir/workload_spec_test.cc.o"
  "CMakeFiles/workload_spec_test.dir/workload_spec_test.cc.o.d"
  "workload_spec_test"
  "workload_spec_test.pdb"
  "workload_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
