file(REMOVE_RECURSE
  "CMakeFiles/olympian_serving.dir/batcher.cc.o"
  "CMakeFiles/olympian_serving.dir/batcher.cc.o.d"
  "CMakeFiles/olympian_serving.dir/server.cc.o"
  "CMakeFiles/olympian_serving.dir/server.cc.o.d"
  "CMakeFiles/olympian_serving.dir/workload_spec.cc.o"
  "CMakeFiles/olympian_serving.dir/workload_spec.cc.o.d"
  "libolympian_serving.a"
  "libolympian_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olympian_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
