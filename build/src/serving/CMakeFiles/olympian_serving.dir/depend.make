# Empty dependencies file for olympian_serving.
# This may be replaced when dependencies are built.
