file(REMOVE_RECURSE
  "libolympian_serving.a"
)
