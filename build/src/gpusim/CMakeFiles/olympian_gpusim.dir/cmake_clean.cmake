file(REMOVE_RECURSE
  "CMakeFiles/olympian_gpusim.dir/gpu.cc.o"
  "CMakeFiles/olympian_gpusim.dir/gpu.cc.o.d"
  "libolympian_gpusim.a"
  "libolympian_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olympian_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
