file(REMOVE_RECURSE
  "libolympian_gpusim.a"
)
