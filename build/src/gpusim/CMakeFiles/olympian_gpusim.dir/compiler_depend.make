# Empty compiler generated dependencies file for olympian_gpusim.
# This may be replaced when dependencies are built.
