file(REMOVE_RECURSE
  "CMakeFiles/olympian_graph.dir/executor.cc.o"
  "CMakeFiles/olympian_graph.dir/executor.cc.o.d"
  "CMakeFiles/olympian_graph.dir/graph.cc.o"
  "CMakeFiles/olympian_graph.dir/graph.cc.o.d"
  "CMakeFiles/olympian_graph.dir/thread_pool.cc.o"
  "CMakeFiles/olympian_graph.dir/thread_pool.cc.o.d"
  "libolympian_graph.a"
  "libolympian_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olympian_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
