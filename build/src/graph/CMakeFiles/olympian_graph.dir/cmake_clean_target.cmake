file(REMOVE_RECURSE
  "libolympian_graph.a"
)
