# Empty compiler generated dependencies file for olympian_graph.
# This may be replaced when dependencies are built.
