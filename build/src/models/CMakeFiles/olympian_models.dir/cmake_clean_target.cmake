file(REMOVE_RECURSE
  "libolympian_models.a"
)
