file(REMOVE_RECURSE
  "CMakeFiles/olympian_models.dir/model_zoo.cc.o"
  "CMakeFiles/olympian_models.dir/model_zoo.cc.o.d"
  "libolympian_models.a"
  "libolympian_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olympian_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
