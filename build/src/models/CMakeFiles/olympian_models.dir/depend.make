# Empty dependencies file for olympian_models.
# This may be replaced when dependencies are built.
