file(REMOVE_RECURSE
  "libolympian_core.a"
)
