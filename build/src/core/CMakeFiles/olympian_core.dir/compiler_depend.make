# Empty compiler generated dependencies file for olympian_core.
# This may be replaced when dependencies are built.
