file(REMOVE_RECURSE
  "CMakeFiles/olympian_core.dir/policy.cc.o"
  "CMakeFiles/olympian_core.dir/policy.cc.o.d"
  "CMakeFiles/olympian_core.dir/profile_store.cc.o"
  "CMakeFiles/olympian_core.dir/profile_store.cc.o.d"
  "CMakeFiles/olympian_core.dir/profiler.cc.o"
  "CMakeFiles/olympian_core.dir/profiler.cc.o.d"
  "CMakeFiles/olympian_core.dir/scheduler.cc.o"
  "CMakeFiles/olympian_core.dir/scheduler.cc.o.d"
  "libolympian_core.a"
  "libolympian_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olympian_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
