# Empty dependencies file for olympian_metrics.
# This may be replaced when dependencies are built.
