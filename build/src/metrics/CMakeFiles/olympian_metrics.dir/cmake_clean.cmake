file(REMOVE_RECURSE
  "CMakeFiles/olympian_metrics.dir/stats.cc.o"
  "CMakeFiles/olympian_metrics.dir/stats.cc.o.d"
  "CMakeFiles/olympian_metrics.dir/table.cc.o"
  "CMakeFiles/olympian_metrics.dir/table.cc.o.d"
  "CMakeFiles/olympian_metrics.dir/trace.cc.o"
  "CMakeFiles/olympian_metrics.dir/trace.cc.o.d"
  "libolympian_metrics.a"
  "libolympian_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olympian_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
