file(REMOVE_RECURSE
  "libolympian_metrics.a"
)
