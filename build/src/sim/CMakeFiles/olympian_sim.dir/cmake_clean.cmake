file(REMOVE_RECURSE
  "CMakeFiles/olympian_sim.dir/environment.cc.o"
  "CMakeFiles/olympian_sim.dir/environment.cc.o.d"
  "CMakeFiles/olympian_sim.dir/random.cc.o"
  "CMakeFiles/olympian_sim.dir/random.cc.o.d"
  "CMakeFiles/olympian_sim.dir/time.cc.o"
  "CMakeFiles/olympian_sim.dir/time.cc.o.d"
  "libolympian_sim.a"
  "libolympian_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olympian_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
