# Empty compiler generated dependencies file for olympian_sim.
# This may be replaced when dependencies are built.
