file(REMOVE_RECURSE
  "libolympian_sim.a"
)
