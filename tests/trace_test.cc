// Tests for the tracing subsystem (metrics/trace.h) and its integration
// with the executor and scheduler.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string_view>

#include "core/profiler.h"
#include "core/scheduler.h"
#include "metrics/stats.h"
#include "metrics/trace.h"
#include "serving/server.h"

namespace olympian::metrics {
namespace {

using sim::Duration;
using sim::TimePoint;

TEST(TracerTest, RecordsSpansAndInstants) {
  Tracer t;
  t.AddSpan("cat", "span-a", 3, TimePoint(), TimePoint() + Duration::Micros(5));
  t.AddInstant("cat", "tick", 3, TimePoint() + Duration::Micros(2));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_FALSE(t.full());
}

TEST(TracerTest, CapStopsRecording) {
  Tracer t(/*max_events=*/2);
  for (int i = 0; i < 5; ++i) {
    t.AddSpan("c", "s", 0, TimePoint(), TimePoint() + Duration::Micros(1));
  }
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.full());
}

TEST(TracerTest, ChromeJsonShape) {
  Tracer t;
  t.AddSpan("token", "job-\"0\"", -1, TimePoint() + Duration::Micros(1),
            TimePoint() + Duration::Micros(4));
  t.AddInstant("mark", "m", 2, TimePoint() + Duration::Micros(9));
  std::ostringstream os;
  t.WriteChromeTrace(os);
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '[');
  EXPECT_NE(out.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(out.find(R"("ph":"i")"), std::string::npos);
  EXPECT_NE(out.find(R"("tid":-1)"), std::string::npos);
  EXPECT_NE(out.find(R"("dur":3)"), std::string::npos);
  // Quotes in names are escaped.
  EXPECT_NE(out.find(R"(job-\"0\")"), std::string::npos);
}

TEST(TracerTest, OverflowPerSwitchIsBounded) {
  // Paper Figure 10: when the token moves, only the handful of nodes whose
  // kernels were already launched finish under the new tenure (typically
  // 2-3 per context switch). Count, for each token tenure, how many
  // *other* jobs' GPU-node spans end inside it.
  core::Profiler profiler;
  const auto profile = profiler.ProfileModel("resnet-152", 48);

  Tracer tracer(400000);
  serving::ServerOptions opts;
  opts.seed = 19;
  opts.executor.tracer = &tracer;
  serving::Experiment exp(opts);
  core::Scheduler sched(exp.env(), exp.gpu(),
                        std::make_unique<core::FairPolicy>());
  sched.SetProfile(profile.key, &profile.cost,
                   core::Profiler::ThresholdFor(profile, Duration::Micros(1500)));
  exp.SetHooks(&sched);
  exp.Run(std::vector<serving::ClientSpec>(
      2, {.model = "resnet-152", .batch = 48, .num_batches = 1}));

  const auto& quanta = sched.quantum_log();
  ASSERT_GT(quanta.size(), 10u);

  // For each tenure, count GPU-node spans of the *other* job that end
  // strictly inside it — those are overflow completions.
  Series overflow_per_switch;
  for (const auto& q : quanta) {
    int foreign_ends = 0;
    for (const auto& e : tracer.events()) {
      if (std::string_view(e.category) != "gpu-node") continue;
      if (e.track == q.job) continue;
      const std::int64_t end_ns = e.start_ns + e.dur_ns;
      if (end_ns > q.start.nanos() && end_ns <= q.end.nanos()) {
        ++foreign_ends;
      }
    }
    overflow_per_switch.Add(foreign_ends);
  }
  // The paper observes ~2-3 overflow nodes per context switch; with two
  // streams per job the bound here is small and the typical case tiny.
  EXPECT_LE(overflow_per_switch.Mean(), 6.0);
  EXPECT_LE(overflow_per_switch.Percentile(95), 10.0);
}

TEST(TracerTest, EndToEndCapturesTokenAndNodeSpans) {
  core::Profiler profiler;
  const auto profile = profiler.ProfileModel("resnet-152", 20);

  Tracer tracer(50000);
  serving::ServerOptions opts;
  opts.executor.tracer = &tracer;
  serving::Experiment exp(opts);
  core::Scheduler::Options sopts;
  sopts.tracer = &tracer;
  core::Scheduler sched(exp.env(), exp.gpu(),
                        std::make_unique<core::FairPolicy>(), sopts);
  sched.SetProfile(profile.key, &profile.cost,
                   core::Profiler::ThresholdFor(profile, Duration::Micros(800)));
  exp.SetHooks(&sched);
  exp.Run(std::vector<serving::ClientSpec>(
      2, {.model = "resnet-152", .batch = 20, .num_batches = 1}));

  EXPECT_GT(tracer.size(), 100u);
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"token\""), std::string::npos);
  EXPECT_NE(out.find("\"gpu-node\""), std::string::npos);
  EXPECT_NE(out.find("\"cpu-node\""), std::string::npos);
}

}  // namespace
}  // namespace olympian::metrics
