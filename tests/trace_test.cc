// Tests for the tracing subsystem (metrics/trace.h) and its integration
// with the executor and scheduler.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string_view>

#include "core/profiler.h"
#include "core/scheduler.h"
#include "json_reader.h"
#include "metrics/stats.h"
#include "metrics/trace.h"
#include "serving/server.h"

namespace olympian::metrics {
namespace {

using sim::Duration;
using sim::TimePoint;

TEST(TracerTest, RecordsSpansAndInstants) {
  Tracer t;
  t.AddSpan("cat", "span-a", 3, TimePoint(), TimePoint() + Duration::Micros(5));
  t.AddInstant("cat", "tick", 3, TimePoint() + Duration::Micros(2));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_FALSE(t.full());
}

TEST(TracerTest, CapStopsRecording) {
  Tracer t(/*max_events=*/2);
  for (int i = 0; i < 5; ++i) {
    t.AddSpan("c", "s", 0, TimePoint(), TimePoint() + Duration::Micros(1));
  }
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.full());
}

TEST(TracerTest, ChromeJsonShape) {
  Tracer t;
  t.AddSpan("token", "job-\"0\"", -1, TimePoint() + Duration::Micros(1),
            TimePoint() + Duration::Micros(4));
  t.AddInstant("mark", "m", 2, TimePoint() + Duration::Micros(9));
  std::ostringstream os;
  t.WriteChromeTrace(os);
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '[');
  EXPECT_NE(out.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(out.find(R"("ph":"i")"), std::string::npos);
  EXPECT_NE(out.find(R"("tid":-1)"), std::string::npos);
  EXPECT_NE(out.find(R"("dur":3)"), std::string::npos);
  // Quotes in names are escaped.
  EXPECT_NE(out.find(R"(job-\"0\")"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSON correctness: parse the whole export with a real (strict) parser.
// Substring checks cannot catch a missing comma or a bad escape; these can.

testjson::Value ParseTrace(const Tracer& t) {
  std::ostringstream os;
  t.WriteChromeTrace(os);
  return testjson::Parse(os.str());
}

TEST(TracerTest, ChromeTraceParsesAsStrictJson) {
  Tracer t;
  const TimePoint t0;
  t.AddSpan("cat", "plain", 1, t0 + Duration::Micros(1),
            t0 + Duration::Micros(4));
  t.AddSpanNumbered("token", "job-", 17, -1, t0 + Duration::Micros(2),
                    t0 + Duration::Micros(6));
  t.AddInstant("mark", "tick", 2, t0 + Duration::Micros(9));
  t.AddInstantNumbered("placer", "route-gpu-", 1, 3, t0 + Duration::Micros(9));
  t.AddFlow(Tracer::FlowPhase::kBegin, "request", "req-", 7, 4,
            t0 + Duration::Micros(10));
  t.AddFlow(Tracer::FlowPhase::kStep, "request", "req-", 7, 5,
            t0 + Duration::Micros(11));
  t.AddFlow(Tracer::FlowPhase::kEnd, "request", "req-", 7, 5,
            t0 + Duration::Micros(12));

  const testjson::Value doc = ParseTrace(t);
  const auto& events = doc.AsArray();
  ASSERT_EQ(events.size(), 7u);
  for (const auto& e : events) {
    // Every record carries the trace-event required fields.
    EXPECT_TRUE(e.at("cat").is_string());
    EXPECT_TRUE(e.at("name").is_string());
    EXPECT_TRUE(e.at("pid").is_number());
    EXPECT_TRUE(e.at("tid").is_number());
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("ph").is_string());
  }
  // Numbered names are rendered at export: "job-" + 17.
  EXPECT_EQ(events[1].at("name").AsString(), "job-17");
  EXPECT_EQ(events[1].at("ph").AsString(), "X");
  EXPECT_DOUBLE_EQ(events[1].at("dur").AsNumber(), 4.0);  // us
  EXPECT_EQ(events[3].at("name").AsString(), "route-gpu-1");
  EXPECT_EQ(events[3].at("ph").AsString(), "i");
  EXPECT_EQ(events[3].at("s").AsString(), "t");
  // Flow hops: phases s/t/f, the flow id as a string, and "bp":"e" on the
  // terminator so the arrow binds to the enclosing slice.
  EXPECT_EQ(events[4].at("ph").AsString(), "s");
  EXPECT_EQ(events[4].at("id").AsString(), "7");
  EXPECT_EQ(events[4].at("name").AsString(), "req-7");
  EXPECT_FALSE(events[4].contains("bp"));
  EXPECT_EQ(events[5].at("ph").AsString(), "t");
  EXPECT_EQ(events[6].at("ph").AsString(), "f");
  EXPECT_EQ(events[6].at("bp").AsString(), "e");
  EXPECT_DOUBLE_EQ(events[6].at("ts").AsNumber(), 12.0);
}

TEST(TracerTest, ControlCharactersAndQuotesAreEscaped) {
  Tracer t;
  // Interned names can carry arbitrary bytes (fault descriptions, model
  // names); the export must string-escape them, not trust the caller.
  const std::string hostile = "a\"b\\c\nd\te\x01f";
  t.AddInstant("cat", t.Intern(hostile), 0, TimePoint() + Duration::Micros(1));

  const testjson::Value doc = ParseTrace(t);
  ASSERT_EQ(doc.AsArray().size(), 1u);
  // A strict parser round-trips the exact original bytes.
  EXPECT_EQ(doc.AsArray()[0].at("name").AsString(), hostile);
}

TEST(TracerTest, TruncationIsCountedAndStampedIntoExport) {
  Tracer t(/*max_events=*/2);
  for (int i = 0; i < 5; ++i) {
    t.AddSpan("c", "s", 0, TimePoint(), TimePoint() + Duration::Micros(1));
  }
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.dropped(), 3u);

  const testjson::Value doc = ParseTrace(t);
  const auto& events = doc.AsArray();
  // Two real events plus the truncation metadata record.
  ASSERT_EQ(events.size(), 3u);
  const testjson::Value& meta = events.back();
  EXPECT_EQ(meta.at("cat").AsString(), "__metadata");
  EXPECT_EQ(meta.at("name").AsString(), "trace_truncated");
  EXPECT_DOUBLE_EQ(meta.at("args").at("dropped").AsNumber(), 3.0);
  EXPECT_DOUBLE_EQ(meta.at("args").at("max_events").AsNumber(), 2.0);
}

TEST(TracerTest, UntruncatedExportCarriesNoMetadataRecord) {
  Tracer t(/*max_events=*/8);
  t.AddSpan("c", "s", 0, TimePoint(), TimePoint() + Duration::Micros(1));
  const testjson::Value doc = ParseTrace(t);
  ASSERT_EQ(doc.AsArray().size(), 1u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TracerTest, MergeFoldsDropsAcrossShardedTracers) {
  // The cluster gives every server a private tracer on its own shard and
  // folds them hub-side after the run. Truncation must survive the fold:
  // the merged trace's dropped() is every source's drops plus whatever the
  // merge itself could not fit.
  Tracer a(/*max_events=*/2), b(/*max_events=*/2);
  for (int i = 0; i < 5; ++i) {
    a.AddSpan("c", "sa", 0, TimePoint(), TimePoint() + Duration::Micros(1));
    b.AddSpan("c", "sb", 1, TimePoint(), TimePoint() + Duration::Micros(1));
  }
  EXPECT_EQ(a.dropped(), 3u);
  EXPECT_EQ(b.dropped(), 3u);

  Tracer merged(/*max_events=*/3);
  merged.MergeFrom(a);  // 2 fit
  merged.MergeFrom(b);  // 1 fits, 1 dropped at merge time
  EXPECT_EQ(merged.size(), 3u);
  // 3 (a's) + 3 (b's) + 1 (merge overflow) = 7.
  EXPECT_EQ(merged.dropped(), 7u);

  // The folded total is what the export stamps into trace_truncated.
  const testjson::Value doc = ParseTrace(merged);
  const testjson::Value& meta = doc.AsArray().back();
  EXPECT_EQ(meta.at("name").AsString(), "trace_truncated");
  EXPECT_DOUBLE_EQ(meta.at("args").at("dropped").AsNumber(), 7.0);
}

TEST(TracerTest, MergePreservesDropFreeSources) {
  Tracer a, b;
  a.AddSpan("c", "sa", 0, TimePoint(), TimePoint() + Duration::Micros(1));
  b.AddInstant("c", "ib", 1, TimePoint() + Duration::Micros(2));
  Tracer merged;
  merged.MergeFrom(a);
  merged.MergeFrom(b);
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.dropped(), 0u);
  EXPECT_TRUE(ParseTrace(merged).AsArray().size() == 2u);
}

TEST(TracerTest, CounterEventJsonShape) {
  Tracer t;
  t.AddCounter("metric", "util", 0, TimePoint() + Duration::Micros(3), 0.5);
  const testjson::Value doc = ParseTrace(t);
  ASSERT_EQ(doc.AsArray().size(), 1u);
  const testjson::Value& e = doc.AsArray()[0];
  EXPECT_EQ(e.at("ph").AsString(), "C");
  EXPECT_EQ(e.at("name").AsString(), "util");
  EXPECT_DOUBLE_EQ(e.at("ts").AsNumber(), 3.0);
  EXPECT_DOUBLE_EQ(e.at("args").at("value").AsNumber(), 0.5);
}

TEST(TracerTest, ExportCountersToTraceEmitsSampledSeries) {
  MetricRegistry registry;
  auto& plain = registry.GetSeries("olympian_util", {});
  auto& labeled = registry.GetSeries("olympian_health", {{"server", "0"}});
  plain.Sample(TimePoint() + Duration::Millis(1), 0.25);
  plain.Sample(TimePoint() + Duration::Millis(2), 0.75);
  labeled.Sample(TimePoint() + Duration::Millis(3), 1.0);

  Tracer t;
  ExportCountersToTrace(registry, t);
  const testjson::Value doc = ParseTrace(t);
  const auto& events = doc.AsArray();
  ASSERT_EQ(events.size(), 3u);
  std::size_t labeled_seen = 0;
  for (const auto& e : events) {
    EXPECT_EQ(e.at("ph").AsString(), "C");
    EXPECT_EQ(e.at("cat").AsString(), "metric");
    EXPECT_TRUE(e.at("args").at("value").is_number());
    // Labeled series keep their label string in the counter name, so each
    // (name, labels) pair charts separately in Perfetto.
    if (e.at("name").AsString().find("server") != std::string::npos) {
      ++labeled_seen;
    }
  }
  EXPECT_EQ(labeled_seen, 1u);
}

TEST(TracerTest, EmptyTraceIsAValidJsonArray) {
  Tracer t;
  const testjson::Value doc = ParseTrace(t);
  EXPECT_TRUE(doc.is_array());
  EXPECT_TRUE(doc.AsArray().empty());
}

TEST(TracerTest, OverflowPerSwitchIsBounded) {
  // Paper Figure 10: when the token moves, only the handful of nodes whose
  // kernels were already launched finish under the new tenure (typically
  // 2-3 per context switch). Count, for each token tenure, how many
  // *other* jobs' GPU-node spans end inside it.
  core::Profiler profiler;
  const auto profile = profiler.ProfileModel("resnet-152", 48);

  Tracer tracer(400000);
  serving::ServerOptions opts;
  opts.seed = 19;
  opts.executor.tracer = &tracer;
  serving::Experiment exp(opts);
  core::Scheduler sched(exp.env(), exp.gpu(),
                        std::make_unique<core::FairPolicy>());
  sched.SetProfile(profile.key, &profile.cost,
                   core::Profiler::ThresholdFor(profile, Duration::Micros(1500)));
  exp.SetHooks(&sched);
  exp.Run(std::vector<serving::ClientSpec>(
      2, {.model = "resnet-152", .batch = 48, .num_batches = 1}));

  const auto& quanta = sched.quantum_log();
  ASSERT_GT(quanta.size(), 10u);

  // For each tenure, count GPU-node spans of the *other* job that end
  // strictly inside it — those are overflow completions.
  Series overflow_per_switch;
  for (const auto& q : quanta) {
    int foreign_ends = 0;
    for (const auto& e : tracer.events()) {
      if (std::string_view(e.category) != "gpu-node") continue;
      if (e.track == q.job) continue;
      const std::int64_t end_ns = e.start_ns + e.dur_ns;
      if (end_ns > q.start.nanos() && end_ns <= q.end.nanos()) {
        ++foreign_ends;
      }
    }
    overflow_per_switch.Add(foreign_ends);
  }
  // The paper observes ~2-3 overflow nodes per context switch; with two
  // streams per job the bound here is small and the typical case tiny.
  EXPECT_LE(overflow_per_switch.Mean(), 6.0);
  EXPECT_LE(overflow_per_switch.Percentile(95), 10.0);
}

TEST(TracerTest, EndToEndCapturesTokenAndNodeSpans) {
  core::Profiler profiler;
  const auto profile = profiler.ProfileModel("resnet-152", 20);

  Tracer tracer(50000);
  serving::ServerOptions opts;
  opts.executor.tracer = &tracer;
  serving::Experiment exp(opts);
  core::Scheduler::Options sopts;
  sopts.tracer = &tracer;
  core::Scheduler sched(exp.env(), exp.gpu(),
                        std::make_unique<core::FairPolicy>(), sopts);
  sched.SetProfile(profile.key, &profile.cost,
                   core::Profiler::ThresholdFor(profile, Duration::Micros(800)));
  exp.SetHooks(&sched);
  exp.Run(std::vector<serving::ClientSpec>(
      2, {.model = "resnet-152", .batch = 20, .num_batches = 1}));

  EXPECT_GT(tracer.size(), 100u);
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"token\""), std::string::npos);
  EXPECT_NE(out.find("\"gpu-node\""), std::string::npos);
  EXPECT_NE(out.find("\"cpu-node\""), std::string::npos);
}

}  // namespace
}  // namespace olympian::metrics
