// Unit tests for Olympian's core: scheduling policies and the Algorithm-2
// scheduler (token mechanics, cost-based quanta, cooperative yield).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/policy.h"
#include "core/scheduler.h"
#include "gpusim/gpu.h"
#include "graph/cost_model.h"
#include "sim/environment.h"

namespace olympian::core {
namespace {

using gpusim::JobId;
using gpusim::kNoJob;
using sim::Duration;
using sim::Environment;
using sim::Task;

graph::JobContext MakeCtx(JobId id, int weight = 1, int priority = 0) {
  graph::JobContext ctx;
  ctx.job = id;
  ctx.model_key = "m@1";
  ctx.weight = weight;
  ctx.priority = priority;
  return ctx;
}

std::vector<JobEntry> Entries(std::vector<graph::JobContext*> ctxs) {
  std::vector<JobEntry> out;
  for (auto* c : ctxs) out.push_back(JobEntry{c->job, c, 1.0, 0});
  return out;
}

TEST(FairPolicyTest, RoundRobinCycle) {
  FairPolicy p;
  auto c0 = MakeCtx(0), c1 = MakeCtx(1), c2 = MakeCtx(2);
  auto jobs = Entries({&c0, &c1, &c2});
  EXPECT_EQ(p.NextJob(jobs, kNoJob), 0);
  EXPECT_EQ(p.NextJob(jobs, 0), 1);
  EXPECT_EQ(p.NextJob(jobs, 1), 2);
  EXPECT_EQ(p.NextJob(jobs, 2), 0);
}

TEST(FairPolicyTest, EmptyReturnsNoJob) {
  FairPolicy p;
  std::vector<JobEntry> jobs;
  EXPECT_EQ(p.NextJob(jobs, kNoJob), kNoJob);
}

TEST(FairPolicyTest, DepartedCurrentAdvancesFromStart) {
  FairPolicy p;
  auto c1 = MakeCtx(1), c2 = MakeCtx(2);
  auto jobs = Entries({&c1, &c2});
  // current=7 is no longer registered -> treated like "before the start".
  EXPECT_EQ(p.NextJob(jobs, 7), 1);
}

TEST(WeightedFairPolicyTest, WeightGivesConsecutiveQuanta) {
  WeightedFairPolicy p;
  auto c0 = MakeCtx(0, /*weight=*/2), c1 = MakeCtx(1, /*weight=*/1);
  auto jobs = Entries({&c0, &c1});
  // Sequence of quantum expirations: job 0 holds twice, job 1 once, repeat.
  std::vector<JobId> seq;
  JobId cur = p.NextJob(jobs, kNoJob);
  seq.push_back(cur);
  for (int i = 0; i < 5; ++i) {
    cur = p.NextJob(jobs, cur);
    seq.push_back(cur);
  }
  EXPECT_EQ(seq, (std::vector<JobId>{0, 0, 1, 0, 0, 1}));
}

TEST(WeightedFairPolicyTest, WeightOneDegeneratesToFair) {
  WeightedFairPolicy p;
  auto c0 = MakeCtx(0, 1), c1 = MakeCtx(1, 1);
  auto jobs = Entries({&c0, &c1});
  JobId cur = p.NextJob(jobs, kNoJob);
  EXPECT_EQ(cur, 0);
  EXPECT_EQ(p.NextJob(jobs, 0), 1);
  EXPECT_EQ(p.NextJob(jobs, 1), 0);
}

TEST(PriorityPolicyTest, HighestPriorityWins) {
  PriorityPolicy p;
  auto c0 = MakeCtx(0, 1, /*priority=*/1);
  auto c1 = MakeCtx(1, 1, /*priority=*/5);
  auto c2 = MakeCtx(2, 1, /*priority=*/3);
  auto jobs = Entries({&c0, &c1, &c2});
  EXPECT_EQ(p.NextJob(jobs, kNoJob), 1);
  EXPECT_EQ(p.NextJob(jobs, 1), 1);  // stays with the top job
}

TEST(PriorityPolicyTest, EqualPriorityRoundRobins) {
  PriorityPolicy p;
  auto c0 = MakeCtx(0, 1, 5), c1 = MakeCtx(1, 1, 5), c2 = MakeCtx(2, 1, 0);
  auto jobs = Entries({&c0, &c1, &c2});
  EXPECT_EQ(p.NextJob(jobs, 0), 1);
  EXPECT_EQ(p.NextJob(jobs, 1), 0);
}

TEST(MakePolicyTest, FactoryNamesWork) {
  EXPECT_EQ(MakePolicy("fair")->name(), "fair");
  EXPECT_EQ(MakePolicy("weighted-fair")->name(), "weighted-fair");
  EXPECT_EQ(MakePolicy("priority")->name(), "priority");
  EXPECT_EQ(MakePolicy("lottery")->name(), "lottery");
  EXPECT_THROW(MakePolicy("edf"), std::invalid_argument);
}

TEST(LotteryPolicyTest, SharesTrackWeights) {
  LotteryPolicy p(/*seed=*/5);
  auto c0 = MakeCtx(0, /*weight=*/3), c1 = MakeCtx(1, /*weight=*/1);
  auto jobs = Entries({&c0, &c1});
  int wins0 = 0;
  const int kDraws = 20000;
  gpusim::JobId cur = kNoJob;
  for (int i = 0; i < kDraws; ++i) {
    cur = p.NextJob(jobs, cur);
    wins0 += (cur == 0);
  }
  EXPECT_NEAR(static_cast<double>(wins0) / kDraws, 0.75, 0.02);
}

TEST(LotteryPolicyTest, EmptyReturnsNoJob) {
  LotteryPolicy p;
  std::vector<JobEntry> jobs;
  EXPECT_EQ(p.NextJob(jobs, kNoJob), kNoJob);
}

TEST(LotteryPolicyTest, SingleJobAlwaysWins) {
  LotteryPolicy p;
  auto c0 = MakeCtx(0);
  auto jobs = Entries({&c0});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(p.NextJob(jobs, 0), 0);
}

TEST(ReservationPolicyTest, GuaranteesMinimumShares) {
  ReservationPolicy p;
  auto c0 = MakeCtx(0);
  c0.min_share = 0.5;  // guaranteed half
  auto c1 = MakeCtx(1);
  auto c2 = MakeCtx(2);
  auto jobs = Entries({&c0, &c1, &c2});
  int granted0 = 0;
  gpusim::JobId cur = kNoJob;
  const int kQuanta = 3000;
  for (int i = 0; i < kQuanta; ++i) {
    cur = p.NextJob(jobs, cur);
    granted0 += (cur == 0);
  }
  EXPECT_GE(static_cast<double>(granted0) / kQuanta, 0.499);
  // Surplus round-robins: the other two get roughly equal remainders.
  std::int64_t s1 = jobs[1].served_quanta, s2 = jobs[2].served_quanta;
  EXPECT_NEAR(static_cast<double>(s1), static_cast<double>(s2),
              0.1 * static_cast<double>(s1));
}

TEST(ReservationPolicyTest, NoReservationsDegeneratesToRoundRobin) {
  ReservationPolicy p;
  auto c0 = MakeCtx(0), c1 = MakeCtx(1);
  auto jobs = Entries({&c0, &c1});
  gpusim::JobId cur = p.NextJob(jobs, kNoJob);
  std::vector<gpusim::JobId> seq{cur};
  for (int i = 0; i < 3; ++i) {
    cur = p.NextJob(jobs, cur);
    seq.push_back(cur);
  }
  EXPECT_EQ(seq, (std::vector<gpusim::JobId>{0, 1, 0, 1}));
}

TEST(ReservationPolicyTest, EmptyReturnsNoJob) {
  ReservationPolicy p;
  std::vector<JobEntry> jobs;
  EXPECT_EQ(p.NextJob(jobs, kNoJob), kNoJob);
}

// --- Scheduler unit tests (hooks driven manually) ------------------------

struct SchedFixture {
  explicit SchedFixture(std::unique_ptr<SchedulingPolicy> policy,
                        Scheduler::Options opts = {})
      : gpu(env, gpusim::Gpu::Options{.arbitration_bias_sigma = 0, .seed = 1}),
        sched(env, gpu, std::move(policy), opts) {
    // A flat profile: every node costs 100 cost units.
    profile.Resize(16);
    for (int i = 0; i < 16; ++i) profile.RecordNodeCost(i, 100.0);
    profile.gpu_duration = Duration::Millis(1);
    sched.SetProfile("m@1", &profile, 100.0);  // tests may overwrite
  }

  graph::Node FakeGpuNode(graph::NodeId id) {
    graph::Node n;
    n.id = id;
    n.device = graph::Device::kGpu;
    return n;
  }

  Environment env;
  gpusim::Gpu gpu;
  graph::CostProfile profile;
  Scheduler sched;
};

TEST(SchedulerTest, FirstRegistrationGetsToken) {
  SchedFixture f(std::make_unique<FairPolicy>());
  f.sched.SetProfile("m@1", &f.profile, 300.0);
  auto ctx = MakeCtx(0);
  EXPECT_EQ(f.sched.token(), kNoJob);
  f.sched.RegisterRun(ctx);
  EXPECT_EQ(f.sched.token(), 0);
  EXPECT_FALSE(f.sched.NeedsYield(ctx));
}

TEST(SchedulerTest, RegistrationWithoutProfileThrows) {
  SchedFixture f(std::make_unique<FairPolicy>());
  auto ctx = MakeCtx(0);
  ctx.model_key = "unprofiled-model@99";
  EXPECT_THROW(f.sched.RegisterRun(ctx), std::logic_error);
}

TEST(SchedulerTest, InvalidProfileRejected) {
  SchedFixture f(std::make_unique<FairPolicy>());
  EXPECT_THROW(f.sched.SetProfile("m@1", nullptr, 100.0),
               std::invalid_argument);
  EXPECT_THROW(f.sched.SetProfile("m@1", &f.profile, 0.0),
               std::invalid_argument);
}

TEST(SchedulerTest, QuantumExpiryRotatesToken) {
  SchedFixture f(std::make_unique<FairPolicy>());
  f.sched.SetProfile("m@1", &f.profile, 250.0);  // threshold: 2.5 nodes
  auto a = MakeCtx(0), b = MakeCtx(1);
  f.sched.RegisterRun(a);
  f.sched.RegisterRun(b);
  EXPECT_EQ(f.sched.token(), 0);
  // Three completed nodes at cost 100 cross the 250 threshold.
  f.sched.OnNodeComputed(a, f.FakeGpuNode(0));
  f.sched.OnNodeComputed(a, f.FakeGpuNode(1));
  EXPECT_EQ(f.sched.token(), 0);
  f.sched.OnNodeComputed(a, f.FakeGpuNode(2));
  EXPECT_EQ(f.sched.token(), 1);
  EXPECT_NEAR(a.cumulated_cost, 50.0, 1e-9);  // 300 - 250 carried over
  EXPECT_EQ(f.sched.quanta_completed(), 1u);
}

TEST(SchedulerTest, CpuNodesDoNotAccrueCost) {
  SchedFixture f(std::make_unique<FairPolicy>());
  f.sched.SetProfile("m@1", &f.profile, 150.0);
  auto a = MakeCtx(0);
  f.sched.RegisterRun(a);
  graph::Node cpu;
  cpu.id = 0;
  cpu.device = graph::Device::kCpu;
  f.sched.OnNodeComputed(a, cpu);
  EXPECT_DOUBLE_EQ(a.cumulated_cost, 0.0);
}

TEST(SchedulerTest, DeregisterReleasesToken) {
  SchedFixture f(std::make_unique<FairPolicy>());
  f.sched.SetProfile("m@1", &f.profile, 250.0);
  auto a = MakeCtx(0), b = MakeCtx(1);
  f.sched.RegisterRun(a);
  f.sched.RegisterRun(b);
  f.sched.DeregisterRun(a);
  EXPECT_EQ(f.sched.token(), 1);
  f.sched.DeregisterRun(b);
  EXPECT_EQ(f.sched.token(), kNoJob);
}

TEST(SchedulerTest, DeregisterWhileHoldingTokenRotatesToLiveJob) {
  // Regression: the departing job holds the token; rotation must land on a
  // still-registered job (never the departed one, never kNoJob while others
  // remain), with each departure counted as a switch.
  SchedFixture f(std::make_unique<FairPolicy>());
  f.sched.SetProfile("m@1", &f.profile, 1e9);  // no quantum expiry
  auto a = MakeCtx(0), b = MakeCtx(1), c = MakeCtx(2);
  f.sched.RegisterRun(a);
  f.sched.RegisterRun(b);
  f.sched.RegisterRun(c);
  ASSERT_EQ(f.sched.token(), 0);
  const auto switches_before = f.sched.switches();
  f.sched.DeregisterRun(a);  // holder departs
  EXPECT_EQ(f.sched.token(), 1);
  f.sched.DeregisterRun(b);  // new holder departs too
  EXPECT_EQ(f.sched.token(), 2);
  EXPECT_EQ(f.sched.switches(), switches_before + 2);
  f.sched.DeregisterRun(c);
  EXPECT_EQ(f.sched.token(), kNoJob);
}

TEST(SchedulerTest, CancelRunDeregistersAndRotates) {
  SchedFixture f(std::make_unique<FairPolicy>());
  f.sched.SetProfile("m@1", &f.profile, 1e9);
  auto a = MakeCtx(0), b = MakeCtx(1);
  graph::CancelToken tok;
  a.cancel = &tok;
  f.sched.RegisterRun(a);
  f.sched.RegisterRun(b);
  ASSERT_EQ(f.sched.token(), 0);
  tok.Cancel(graph::CancelReason::kDeadline);
  f.sched.CancelRun(a);
  // The cancelled holder is gone and the token moved to the live job.
  EXPECT_EQ(f.sched.token(), 1);
  EXPECT_EQ(f.sched.cancellations(), 1u);
  // The executor's end-of-run DeregisterRun for the cancelled job must be a
  // safe no-op afterwards.
  f.sched.DeregisterRun(a);
  EXPECT_EQ(f.sched.token(), 1);
  f.sched.DeregisterRun(b);
  EXPECT_EQ(f.sched.token(), kNoJob);
}

TEST(SchedulerTest, CancelRunWakesSuspendedGangThreads) {
  // A cancelled gang suspended in Yield must wake, observe the token, and
  // drain — not hold its (pool) thread forever.
  SchedFixture f(std::make_unique<FairPolicy>());
  f.sched.SetProfile("m@1", &f.profile, 1e9);
  auto a = MakeCtx(0), b = MakeCtx(1);
  graph::CancelToken tok;
  b.cancel = &tok;
  f.sched.RegisterRun(a);  // a holds the token
  f.sched.RegisterRun(b);  // b's gang will suspend in Yield
  bool resumed = false;
  auto gang_thread = [&]() -> Task {
    co_await f.sched.Yield(b);
    resumed = true;
  };
  auto p = f.env.Spawn(gang_thread());
  f.env.RunUntil(sim::TimePoint() + Duration::Millis(1));
  ASSERT_FALSE(resumed);  // suspended: a still holds the token
  tok.Cancel(graph::CancelReason::kDeadline);
  f.sched.CancelRun(b);
  f.env.Run();
  EXPECT_TRUE(resumed);
  EXPECT_TRUE(p.done());
  EXPECT_EQ(f.sched.token(), 0);  // a unaffected
}

TEST(SchedulerTest, YieldSuspendsUntilTokenGranted) {
  SchedFixture f(std::make_unique<FairPolicy>());
  f.sched.SetProfile("m@1", &f.profile, 200.0);
  auto a = MakeCtx(0), b = MakeCtx(1);
  f.sched.RegisterRun(a);
  f.sched.RegisterRun(b);

  std::vector<int> order;
  f.env.Spawn([](SchedFixture& fx, graph::JobContext& ctx,
                 std::vector<int>& ord) -> Task {
    co_await fx.sched.Yield(ctx);  // b must wait for the token
    ord.push_back(1);
  }(f, b, order));
  f.env.Spawn([](SchedFixture& fx, graph::JobContext& ctx,
                 std::vector<int>& ord) -> Task {
    co_await fx.env.Delay(Duration::Millis(1));
    // Two nodes cross the 200 threshold -> token moves to b.
    fx.sched.OnNodeComputed(ctx, fx.FakeGpuNode(0));
    fx.sched.OnNodeComputed(ctx, fx.FakeGpuNode(1));
    ord.push_back(0);
  }(f, a, order));
  f.env.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(SchedulerTest, OverflowCostChargedToOriginalJob) {
  // A node completing after its job lost the token still bills that job
  // (paper Figure 15).
  SchedFixture f(std::make_unique<FairPolicy>());
  f.sched.SetProfile("m@1", &f.profile, 250.0);
  auto a = MakeCtx(0), b = MakeCtx(1);
  f.sched.RegisterRun(a);
  f.sched.RegisterRun(b);
  f.sched.OnNodeComputed(a, f.FakeGpuNode(0));
  f.sched.OnNodeComputed(a, f.FakeGpuNode(1));
  f.sched.OnNodeComputed(a, f.FakeGpuNode(2));  // rotation, carry 50
  ASSERT_EQ(f.sched.token(), 1);
  // Overflow node of job a finishes while b holds the token.
  f.sched.OnNodeComputed(a, f.FakeGpuNode(3));
  EXPECT_NEAR(a.cumulated_cost, 150.0, 1e-9);
  EXPECT_EQ(f.sched.token(), 1);  // no rotation triggered by a
}

TEST(SchedulerTest, QuantumLogRecordsTenures) {
  SchedFixture f(std::make_unique<FairPolicy>());
  f.sched.SetProfile("m@1", &f.profile, 100.0);
  auto a = MakeCtx(0), b = MakeCtx(1);
  f.sched.RegisterRun(a);
  f.sched.RegisterRun(b);
  f.sched.OnNodeComputed(a, f.FakeGpuNode(0));  // rotate to b
  f.sched.OnNodeComputed(b, f.FakeGpuNode(1));  // rotate to a
  ASSERT_GE(f.sched.quantum_log().size(), 2u);
  EXPECT_EQ(f.sched.quantum_log()[0].job, 0);
  EXPECT_EQ(f.sched.quantum_log()[1].job, 1);
  EXPECT_EQ(f.sched.quantum_log()[0].active_jobs, 2u);
}

TEST(SchedulerTest, WallClockModeRotatesOnTimer) {
  // Figure 19's ablation: with use_wall_clock the token moves after a fixed
  // CPU-time quantum regardless of GPU cost.
  Scheduler::Options opts;
  opts.use_wall_clock = true;
  opts.wall_quantum = Duration::Millis(2);
  SchedFixture f(std::make_unique<FairPolicy>(), opts);
  auto a = MakeCtx(0), b = MakeCtx(1);
  f.sched.RegisterRun(a);
  f.sched.RegisterRun(b);
  EXPECT_EQ(f.sched.token(), 0);
  bool saw_b = false;
  f.env.Spawn([](SchedFixture& fx, bool& out) -> Task {
    co_await fx.env.Delay(Duration::Millis(3));
    out = fx.sched.token() == 1;
  }(f, saw_b));
  f.env.RunUntil(sim::TimePoint() + Duration::Millis(10));
  EXPECT_TRUE(saw_b);
}

TEST(SchedulerTest, WeightedPolicyIntegration) {
  SchedFixture f(std::make_unique<WeightedFairPolicy>());
  f.sched.SetProfile("m@1", &f.profile, 100.0);
  auto a = MakeCtx(0, /*weight=*/3), b = MakeCtx(1, /*weight=*/1);
  f.sched.RegisterRun(a);
  f.sched.RegisterRun(b);
  std::vector<JobId> tenure;
  graph::JobContext* holders[] = {&a, &b};
  for (int i = 0; i < 8; ++i) {
    tenure.push_back(f.sched.token());
    auto* h = holders[f.sched.token()];
    f.sched.OnNodeComputed(*h, f.FakeGpuNode(0));  // cost 100 = threshold
  }
  EXPECT_EQ(tenure, (std::vector<JobId>{0, 0, 0, 1, 0, 0, 0, 1}));
}

}  // namespace
}  // namespace olympian::core
