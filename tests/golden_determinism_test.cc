// Golden determinism regression test: the Fig-11 workload (homogeneous
// Inception clients, stock TF-Serving and Olympian fair sharing) replayed
// with a fixed seed must produce bit-identical per-client finish times,
// events_executed, and scheduler counters — both run-to-run within one build
// and against golden values recorded before the event-queue/allocator
// rewrite. This is the gate that lets the simulation kernel be optimized
// freely: any reordering of same-instant events or change in stochastic
// stream consumption shows up here as an exact mismatch.
//
// Runs in both CI jobs (Release and OLYMPIAN_SANITIZE=ON); sanitizers do not
// perturb virtual-clock arithmetic, so the same constants hold.
//
// To regenerate after an *intentional* semantic change, run with
// OLYMPIAN_GOLDEN_PRINT=1 and paste the emitted block below.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/profiler.h"
#include "core/scheduler.h"
#include "serving/server.h"

namespace olympian {
namespace {

struct GoldenRun {
  std::vector<std::int64_t> finish_ns;   // per-client finish times
  std::vector<std::int64_t> gpu_ns;      // per-client GPU durations
  std::vector<int> batches;              // per-client completed batches
  std::uint64_t events = 0;              // Environment::events_executed()
  std::uint64_t switches = 0;            // Olympian-only
  std::uint64_t quanta = 0;              // Olympian-only

  bool operator==(const GoldenRun&) const = default;
};

constexpr int kClients = 10;
constexpr int kBatches = 2;
constexpr std::uint64_t kSeed = 5;

GoldenRun RunWorkload(bool olympian) {
  std::vector<serving::ClientSpec> clients(
      kClients, serving::ClientSpec{.model = "inception-v4",
                                    .batch = 100,
                                    .num_batches = kBatches});
  serving::ServerOptions opts;
  opts.seed = kSeed;
  serving::Experiment exp(opts);

  std::unique_ptr<core::Scheduler> sched;
  core::ModelProfile profile;
  if (olympian) {
    core::Profiler profiler;
    profile = profiler.ProfileModel("inception-v4", 100);
    const auto q = sim::Duration::Micros(1600);
    sched = std::make_unique<core::Scheduler>(
        exp.env(), exp.gpu(), std::make_unique<core::FairPolicy>());
    sched->SetProfile(profile.key, &profile.cost,
                      core::Profiler::ThresholdFor(profile, q));
    exp.SetHooks(sched.get());
  }

  const auto results = exp.Run(clients);
  GoldenRun out;
  for (const auto& r : results) {
    out.finish_ns.push_back(r.finish_time.nanos());
    out.gpu_ns.push_back(r.gpu_duration.nanos());
    out.batches.push_back(r.batches_completed);
  }
  out.events = exp.env().events_executed();
  if (sched) {
    out.switches = sched->switches();
    out.quanta = sched->quanta_completed();
  }
  return out;
}

void PrintGolden(const char* name, const GoldenRun& g) {
  std::printf("const GoldenRun %s{\n    {", name);
  for (auto v : g.finish_ns) std::printf("%lldLL, ", static_cast<long long>(v));
  std::printf("},\n    {");
  for (auto v : g.gpu_ns) std::printf("%lldLL, ", static_cast<long long>(v));
  std::printf("},\n    {");
  for (auto v : g.batches) std::printf("%d, ", v);
  std::printf("},\n    %lluULL, %lluULL, %lluULL};\n",
              static_cast<unsigned long long>(g.events),
              static_cast<unsigned long long>(g.switches),
              static_cast<unsigned long long>(g.quanta));
}

// Golden values recorded from the pre-rewrite simulation kernel
// (std::priority_queue event loop), seed 5, 10 clients x 2 batches.
const GoldenRun kGoldenBaseline{
    {9068776858LL, 10960558313LL, 11354049113LL, 10220972098LL, 8912229488LL,
     10659668123LL, 9711286909LL, 8228638535LL, 9828060530LL, 11338222049LL},
    {1134996471LL, 1134886510LL, 1135164404LL, 1134937902LL, 1134936901LL,
     1134930888LL, 1134938968LL, 1134993954LL, 1134789945LL, 1134941801LL},
    {2, 2, 2, 2, 2, 2, 2, 2, 2, 2},
    1111150ULL, 0ULL, 0ULL};

const GoldenRun kGoldenOlympian{
    {11535181119LL, 11535835619LL, 11536476308LL, 11537126770LL,
     11537792406LL, 11538439502LL, 11539101135LL, 11539751847LL,
     11540391545LL, 11541038440LL},
    {1135041533LL, 1134626034LL, 1134901641LL, 1134560874LL, 1135277897LL,
     1134812960LL, 1135173941LL, 1134996082LL, 1135156183LL, 1135204132LL},
    {2, 2, 2, 2, 2, 2, 2, 2, 2, 2},
    1156570ULL, 6781ULL, 6760ULL};

bool PrintRequested() {
  const char* v = std::getenv("OLYMPIAN_GOLDEN_PRINT");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

TEST(GoldenDeterminismTest, BaselineMatchesGoldenAndReplays) {
  const GoldenRun a = RunWorkload(/*olympian=*/false);
  const GoldenRun b = RunWorkload(/*olympian=*/false);
  EXPECT_EQ(a, b) << "same-seed replay diverged within one build";
  if (PrintRequested()) {
    PrintGolden("kGoldenBaseline", a);
    return;
  }
  EXPECT_EQ(a, kGoldenBaseline) << "baseline run diverged from golden values";
}

TEST(GoldenDeterminismTest, OlympianMatchesGoldenAndReplays) {
  const GoldenRun a = RunWorkload(/*olympian=*/true);
  const GoldenRun b = RunWorkload(/*olympian=*/true);
  EXPECT_EQ(a, b) << "same-seed replay diverged within one build";
  if (PrintRequested()) {
    PrintGolden("kGoldenOlympian", a);
    return;
  }
  EXPECT_EQ(a, kGoldenOlympian) << "Olympian run diverged from golden values";
}

}  // namespace
}  // namespace olympian
