// Golden determinism regression test: the Fig-11 workload (homogeneous
// Inception clients, stock TF-Serving and Olympian fair sharing) replayed
// with a fixed seed must produce bit-identical per-client finish times,
// events_executed, and scheduler counters — both run-to-run within one build
// and against golden values recorded before the event-queue/allocator
// rewrite. This is the gate that lets the simulation kernel be optimized
// freely: any reordering of same-instant events or change in stochastic
// stream consumption shows up here as an exact mismatch.
//
// Runs in both CI jobs (Release and OLYMPIAN_SANITIZE=ON); sanitizers do not
// perturb virtual-clock arithmetic, so the same constants hold.
//
// To regenerate after an *intentional* semantic change, run with
// OLYMPIAN_GOLDEN_PRINT=1 and paste the emitted block below.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/profiler.h"
#include "core/scheduler.h"
#include "fault/fault.h"
#include "metrics/registry.h"
#include "metrics/trace.h"
#include "serving/cluster.h"
#include "serving/server.h"

namespace olympian {
namespace {

struct GoldenRun {
  std::vector<std::int64_t> finish_ns;   // per-client finish times
  std::vector<std::int64_t> gpu_ns;      // per-client GPU durations
  std::vector<int> batches;              // per-client completed batches
  std::uint64_t events = 0;              // Environment::events_executed()
  std::uint64_t switches = 0;            // Olympian-only
  std::uint64_t quanta = 0;              // Olympian-only

  bool operator==(const GoldenRun&) const = default;
};

constexpr int kClients = 10;
constexpr int kBatches = 2;
constexpr std::uint64_t kSeed = 5;

GoldenRun RunWorkload(bool olympian, bool observed = false) {
  std::vector<serving::ClientSpec> clients(
      kClients, serving::ClientSpec{.model = "inception-v4",
                                    .batch = 100,
                                    .num_batches = kBatches});
  serving::ServerOptions opts;
  opts.seed = kSeed;
  // Full observability: tracer on the executor, registry + sampler on the
  // serving layer. The sampler adds its own timer events (so
  // events_executed differs) but is strictly read-only and draws no
  // randomness — every simulation outcome must stay bit-identical.
  metrics::Tracer tracer(100000);
  metrics::MetricRegistry registry;
  if (observed) {
    opts.executor.tracer = &tracer;
    opts.observability.registry = &registry;
    opts.observability.sample_interval = sim::Duration::Millis(10);
  }
  serving::Experiment exp(opts);

  std::unique_ptr<core::Scheduler> sched;
  core::ModelProfile profile;
  if (olympian) {
    core::Profiler profiler;
    profile = profiler.ProfileModel("inception-v4", 100);
    const auto q = sim::Duration::Micros(1600);
    sched = std::make_unique<core::Scheduler>(
        exp.env(), exp.gpu(), std::make_unique<core::FairPolicy>());
    sched->SetProfile(profile.key, &profile.cost,
                      core::Profiler::ThresholdFor(profile, q));
    exp.SetHooks(sched.get());
  }

  const auto results = exp.Run(clients);
  GoldenRun out;
  for (const auto& r : results) {
    out.finish_ns.push_back(r.finish_time.nanos());
    out.gpu_ns.push_back(r.gpu_duration.nanos());
    out.batches.push_back(r.batches_completed);
  }
  out.events = exp.env().events_executed();
  if (sched) {
    out.switches = sched->switches();
    out.quanta = sched->quanta_completed();
  }
  return out;
}

void PrintGolden(const char* name, const GoldenRun& g) {
  std::printf("const GoldenRun %s{\n    {", name);
  for (auto v : g.finish_ns) std::printf("%lldLL, ", static_cast<long long>(v));
  std::printf("},\n    {");
  for (auto v : g.gpu_ns) std::printf("%lldLL, ", static_cast<long long>(v));
  std::printf("},\n    {");
  for (auto v : g.batches) std::printf("%d, ", v);
  std::printf("},\n    %lluULL, %lluULL, %lluULL};\n",
              static_cast<unsigned long long>(g.events),
              static_cast<unsigned long long>(g.switches),
              static_cast<unsigned long long>(g.quanta));
}

// Golden values recorded from the pre-rewrite simulation kernel
// (std::priority_queue event loop), seed 5, 10 clients x 2 batches.
const GoldenRun kGoldenBaseline{
    {9068776858LL, 10960558313LL, 11354049113LL, 10220972098LL, 8912229488LL,
     10659668123LL, 9711286909LL, 8228638535LL, 9828060530LL, 11338222049LL},
    {1134996471LL, 1134886510LL, 1135164404LL, 1134937902LL, 1134936901LL,
     1134930888LL, 1134938968LL, 1134993954LL, 1134789945LL, 1134941801LL},
    {2, 2, 2, 2, 2, 2, 2, 2, 2, 2},
    1111150ULL, 0ULL, 0ULL};

const GoldenRun kGoldenOlympian{
    {11535181119LL, 11535835619LL, 11536476308LL, 11537126770LL,
     11537792406LL, 11538439502LL, 11539101135LL, 11539751847LL,
     11540391545LL, 11541038440LL},
    {1135041533LL, 1134626034LL, 1134901641LL, 1134560874LL, 1135277897LL,
     1134812960LL, 1135173941LL, 1134996082LL, 1135156183LL, 1135204132LL},
    {2, 2, 2, 2, 2, 2, 2, 2, 2, 2},
    1156570ULL, 6781ULL, 6760ULL};

bool PrintRequested() {
  const char* v = std::getenv("OLYMPIAN_GOLDEN_PRINT");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

TEST(GoldenDeterminismTest, BaselineMatchesGoldenAndReplays) {
  const GoldenRun a = RunWorkload(/*olympian=*/false);
  const GoldenRun b = RunWorkload(/*olympian=*/false);
  EXPECT_EQ(a, b) << "same-seed replay diverged within one build";
  if (PrintRequested()) {
    PrintGolden("kGoldenBaseline", a);
    return;
  }
  EXPECT_EQ(a, kGoldenBaseline) << "baseline run diverged from golden values";
}

TEST(GoldenDeterminismTest, OlympianMatchesGoldenAndReplays) {
  const GoldenRun a = RunWorkload(/*olympian=*/true);
  const GoldenRun b = RunWorkload(/*olympian=*/true);
  EXPECT_EQ(a, b) << "same-seed replay diverged within one build";
  if (PrintRequested()) {
    PrintGolden("kGoldenOlympian", a);
    return;
  }
  EXPECT_EQ(a, kGoldenOlympian) << "Olympian run diverged from golden values";
}

// Observability must be invisible to the virtual clock: with the tracer,
// registry, and sampler all live, every simulation outcome — finish times,
// GPU durations, batch counts, scheduler switch/quantum counts — is
// bit-identical to the unobserved run. Only events_executed may differ
// (the sampler's own timer ticks are events), so it is excluded here.
TEST(GoldenDeterminismTest, ObservabilityLeavesOutcomesBitIdentical) {
  for (const bool olympian : {false, true}) {
    const GoldenRun plain = RunWorkload(olympian, /*observed=*/false);
    const GoldenRun observed = RunWorkload(olympian, /*observed=*/true);
    EXPECT_EQ(observed.finish_ns, plain.finish_ns) << "olympian=" << olympian;
    EXPECT_EQ(observed.gpu_ns, plain.gpu_ns) << "olympian=" << olympian;
    EXPECT_EQ(observed.batches, plain.batches) << "olympian=" << olympian;
    EXPECT_EQ(observed.switches, plain.switches) << "olympian=" << olympian;
    EXPECT_EQ(observed.quanta, plain.quanta) << "olympian=" << olympian;
    EXPECT_GT(observed.events, plain.events)
        << "sampler ticks should add events";
  }
}

// ---------------------------------------------------------------------------
// Cluster-ON golden: the full cluster stack (router, probes, open-loop
// Poisson arrivals, a crash with failover) pinned the same way. The
// single-server goldens above run with the cluster disabled and must stay
// untouched by cluster work; this one pins the cluster trajectory itself.

struct GoldenClusterRun {
  std::vector<std::int64_t> finish_ns;  // per-client
  std::vector<int> completed;           // per-client served requests
  std::uint64_t events = 0;
  std::uint64_t routed = 0;
  std::uint64_t ok = 0;
  std::uint64_t failed_over = 0;
  std::uint64_t transitions = 0;

  bool operator==(const GoldenClusterRun&) const = default;
};

GoldenClusterRun RunClusterWorkload() {
  serving::ClusterOptions opts;
  opts.num_servers = 2;
  opts.server.num_gpus = 1;
  opts.server.pool_threads = 100;
  opts.seed = 7;
  opts.faults.Crash(sim::TimePoint() + sim::Duration::Millis(100),
                    sim::Duration::Millis(400), /*server=*/0);
  serving::Cluster cluster(opts);
  serving::ClusterClientSpec c;
  c.request.model = "googlenet";
  c.request.batch = 10;
  c.request.num_batches = 6;
  c.arrivals.kind = serving::ArrivalSpec::Kind::kPoisson;
  c.arrivals.rate_rps = 150.0;
  const auto results =
      cluster.Run(std::vector<serving::ClusterClientSpec>(4, c));
  GoldenClusterRun out;
  for (const auto& r : results) {
    out.finish_ns.push_back(r.finish_time.nanos());
    out.completed.push_back(r.requests_completed);
  }
  out.events = cluster.env().events_executed();
  out.routed = cluster.counters().requests_routed;
  out.ok = cluster.counters().requests_ok;
  out.failed_over = cluster.counters().requests_failed_over;
  out.transitions = cluster.counters().server_transitions;
  return out;
}

void PrintGoldenCluster(const char* name, const GoldenClusterRun& g) {
  std::printf("const GoldenClusterRun %s{\n    {", name);
  for (auto v : g.finish_ns) std::printf("%lldLL, ", static_cast<long long>(v));
  std::printf("},\n    {");
  for (auto v : g.completed) std::printf("%d, ", v);
  std::printf("},\n    %lluULL, %lluULL, %lluULL, %lluULL, %lluULL};\n",
              static_cast<unsigned long long>(g.events),
              static_cast<unsigned long long>(g.routed),
              static_cast<unsigned long long>(g.ok),
              static_cast<unsigned long long>(g.failed_over),
              static_cast<unsigned long long>(g.transitions));
}

const GoldenClusterRun kGoldenCluster{
    {1169439626LL, 1055583791LL, 1173012036LL, 1053536204LL},
    {6, 6, 6, 6},
    3201689ULL, 26ULL, 24ULL, 2ULL, 4ULL};

TEST(GoldenDeterminismTest, ClusterMatchesGoldenAndReplays) {
  const GoldenClusterRun a = RunClusterWorkload();
  const GoldenClusterRun b = RunClusterWorkload();
  EXPECT_EQ(a, b) << "same-seed cluster replay diverged within one build";
  if (PrintRequested()) {
    PrintGoldenCluster("kGoldenCluster", a);
    return;
  }
  EXPECT_EQ(a, kGoldenCluster) << "cluster run diverged from golden values";
}

// ---------------------------------------------------------------------------
// Sharded engine: partitioning the cluster across worker threads is a pure
// execution-strategy change — the virtual-time trajectory must be BIT-
// IDENTICAL to the single-queue run, for any shard count, on any host
// (thread scheduling must not leak into outcomes). A 4-server workload with
// a crash plus an asymmetric partition exercises hub instants (faults,
// probes, routing) interleaved with parallel windows (serving), cross-shard
// failover, and lost-response re-execution. `events` is excluded from the
// cross-shard comparison only in that it counts per-environment; summed
// across shards it too must match the unsharded count (same events, merely
// executed on different queues).

GoldenClusterRun RunShardedClusterWorkload(
    std::size_t shards,
    serving::ShardAssignment assignment = serving::ShardAssignment::kStatic,
    std::vector<double> weights = {}) {
  serving::ClusterOptions opts;
  opts.num_servers = 4;
  opts.server.num_gpus = 1;
  opts.server.pool_threads = 100;
  opts.seed = 11;
  opts.shards = shards;
  opts.assignment = assignment;
  opts.server_weights = std::move(weights);
  opts.faults.Crash(sim::TimePoint() + sim::Duration::Millis(100),
                    sim::Duration::Millis(400), /*server=*/0);
  opts.faults.Partition(sim::TimePoint() + sim::Duration::Millis(300),
                        sim::Duration::Millis(300), /*server=*/2,
                        fault::PartitionDirection::kToServer);
  serving::Cluster cluster(opts);
  serving::ClusterClientSpec c;
  c.request.model = "googlenet";
  c.request.batch = 10;
  c.request.num_batches = 5;
  c.arrivals.kind = serving::ArrivalSpec::Kind::kPoisson;
  c.arrivals.rate_rps = 120.0;
  const auto results =
      cluster.Run(std::vector<serving::ClusterClientSpec>(8, c));
  GoldenClusterRun out;
  for (const auto& r : results) {
    out.finish_ns.push_back(r.finish_time.nanos());
    out.completed.push_back(r.requests_completed);
  }
  out.events = cluster.engine().events_executed();
  out.routed = cluster.counters().requests_routed;
  out.ok = cluster.counters().requests_ok;
  out.failed_over = cluster.counters().requests_failed_over;
  out.transitions = cluster.counters().server_transitions;
  return out;
}

TEST(GoldenDeterminismTest, ShardedClusterBitIdenticalToUnsharded) {
  const GoldenClusterRun seq = RunShardedClusterWorkload(1);
  const GoldenClusterRun par = RunShardedClusterWorkload(4);
  const GoldenClusterRun par2 = RunShardedClusterWorkload(4);
  if (PrintRequested()) {
    PrintGoldenCluster("kGoldenShardedCluster(seq)", seq);
    PrintGoldenCluster("kGoldenShardedCluster(par)", par);
    return;
  }
  EXPECT_EQ(par, par2)
      << "same-seed 4-shard replay diverged: thread scheduling leaked into "
         "the trajectory";
  EXPECT_EQ(par, seq)
      << "4-shard run diverged from the single-queue run (same seed)";
}

TEST(GoldenDeterminismTest, ShardedClusterWithTwoShardsMatchesToo) {
  // A shard count that does not divide the server count: servers 0 and 2
  // share shard 0, servers 1 and 3 share shard 1.
  const GoldenClusterRun seq = RunShardedClusterWorkload(1);
  const GoldenClusterRun par = RunShardedClusterWorkload(2);
  EXPECT_EQ(par, seq);
}

TEST(GoldenDeterminismTest, ShardedAdaptiveAssignmentReplaysStaticTrajectory) {
  // Skewed measured weights pack the servers differently from s % shards —
  // the boundary merge order is per-lane (per-server), so the trajectory
  // must not move by a nanosecond at either shard count.
  const std::vector<double> kWeights{5.0, 1.0, 4.0, 2.0};
  const GoldenClusterRun seq = RunShardedClusterWorkload(1);
  const GoldenClusterRun adaptive2 = RunShardedClusterWorkload(
      2, serving::ShardAssignment::kAdaptive, kWeights);
  const GoldenClusterRun adaptive4 = RunShardedClusterWorkload(
      4, serving::ShardAssignment::kAdaptive, kWeights);
  EXPECT_EQ(adaptive2, seq)
      << "adaptive assignment at shards=2 diverged from the static "
         "trajectory";
  EXPECT_EQ(adaptive4, seq)
      << "adaptive assignment at shards=4 diverged from the static "
         "trajectory";
  // Sanity: the weights above actually change the shards=2 packing versus
  // s % shards (greedy: server 0 -> shard 0, server 2 -> shard 1, server 3
  // -> shard 1, server 1 -> shard 0), so the pin is not vacuous.
  serving::ClusterOptions opts;
  opts.num_servers = 4;
  opts.shards = 2;
  opts.assignment = serving::ShardAssignment::kAdaptive;
  opts.server_weights = kWeights;
  serving::Cluster probe(opts);
  EXPECT_EQ(probe.engine().lane_shard(0), 0u);
  EXPECT_EQ(probe.engine().lane_shard(1), 0u);
  EXPECT_EQ(probe.engine().lane_shard(2), 1u);
  EXPECT_EQ(probe.engine().lane_shard(3), 1u);
}

// Sharded observability: a cluster run with a server-side tracer AND a
// server-side registry (both banned in sharded mode before the private-
// accumulator merge) must export byte-identical artifacts at any shard
// count. Compares the full Chrome trace JSON, Prometheus exposition, and
// JSON timeline strings.
struct GoldenObservabilityRun {
  GoldenClusterRun run;
  std::string chrome_trace;
  std::string prometheus;
  std::string timeline;

  bool operator==(const GoldenObservabilityRun&) const = default;
};

GoldenObservabilityRun RunShardedObservabilityWorkload(std::size_t shards) {
  metrics::Tracer tracer(200000);
  metrics::MetricRegistry server_registry;
  metrics::MetricRegistry cluster_registry;
  serving::ClusterOptions opts;
  opts.num_servers = 4;
  opts.server.num_gpus = 1;
  opts.server.pool_threads = 100;
  opts.seed = 11;
  opts.shards = shards;
  opts.server.executor.tracer = &tracer;
  opts.server.observability.registry = &server_registry;
  opts.registry = &cluster_registry;
  opts.faults.Crash(sim::TimePoint() + sim::Duration::Millis(100),
                    sim::Duration::Millis(400), /*server=*/0);
  opts.faults.Partition(sim::TimePoint() + sim::Duration::Millis(300),
                        sim::Duration::Millis(300), /*server=*/2,
                        fault::PartitionDirection::kToServer);
  // Alloc faults so the lifted per-request failure path runs under
  // observability too.
  opts.server.faults.AllocFault(
      sim::TimePoint() + sim::Duration::Millis(80),
      sim::Duration::Millis(250));
  serving::Cluster cluster(opts);
  serving::ClusterClientSpec c;
  c.request.model = "googlenet";
  c.request.batch = 10;
  c.request.num_batches = 5;
  c.arrivals.kind = serving::ArrivalSpec::Kind::kPoisson;
  c.arrivals.rate_rps = 120.0;
  const auto results =
      cluster.Run(std::vector<serving::ClusterClientSpec>(8, c));
  GoldenObservabilityRun out;
  for (const auto& r : results) {
    out.run.finish_ns.push_back(r.finish_time.nanos());
    out.run.completed.push_back(r.requests_completed);
  }
  out.run.events = cluster.engine().events_executed();
  out.run.routed = cluster.counters().requests_routed;
  out.run.ok = cluster.counters().requests_ok;
  out.run.failed_over = cluster.counters().requests_failed_over;
  out.run.transitions = cluster.counters().server_transitions;
  {
    std::ostringstream os;
    tracer.WriteChromeTrace(os);
    out.chrome_trace = os.str();
  }
  {
    std::ostringstream os;
    server_registry.WritePrometheus(os);
    os << "--- cluster ---\n";
    cluster_registry.WritePrometheus(os);
    out.prometheus = os.str();
  }
  {
    std::ostringstream os;
    server_registry.WriteJsonTimeline(os);
    cluster_registry.WriteJsonTimeline(os);
    out.timeline = os.str();
  }
  return out;
}

TEST(GoldenDeterminismTest, ShardedObservabilityExportsBitIdentical) {
  const GoldenObservabilityRun seq = RunShardedObservabilityWorkload(1);
  const GoldenObservabilityRun par = RunShardedObservabilityWorkload(4);
  EXPECT_GT(seq.chrome_trace.size(), 100u)
      << "trace export is vacuously empty";
  EXPECT_NE(seq.prometheus.find("server=\"1\""), std::string::npos)
      << "per-server counters missing from the merged registry export";
  EXPECT_EQ(par.run, seq.run);
  EXPECT_EQ(par.chrome_trace, seq.chrome_trace)
      << "sharded Chrome trace diverged from the unsharded export";
  EXPECT_EQ(par.prometheus, seq.prometheus)
      << "sharded Prometheus export diverged from the unsharded export";
  EXPECT_EQ(par.timeline, seq.timeline)
      << "sharded JSON timeline diverged from the unsharded export";
}

// ---------------------------------------------------------------------------
// Wave-train coalescing: collapsing k identical back-to-back waves into one
// timer event is a pure event-count optimization — it must never move a
// finish time. The serving workload above never triggers it (production
// batches saturate the device and run exclusive), so this exercises the
// coalesced path directly: a long backdrop kernel pins most of the device
// while short kernels stream multi-wave trains through the leftover slots.

namespace {

struct TrainRun {
  std::vector<std::int64_t> done_ns;
  std::uint64_t waves_dispatched = 0;
  std::uint64_t waves_coalesced = 0;
  std::uint64_t kernels_completed = 0;
};

sim::Task OneKernel(gpusim::Gpu& gpu, sim::Environment& env,
                    gpusim::StreamId s, gpusim::KernelDesc d,
                    std::vector<std::int64_t>& done_ns, std::size_t slot) {
  co_await gpu.Submit(s, d);
  done_ns[slot] = (env.Now() - sim::TimePoint()).nanos();
}

TrainRun RunWaveTrains(bool coalesce, bool hang_mid_train) {
  sim::Environment env;
  gpusim::Gpu::Options o;
  o.spec = gpusim::GpuSpec{.name = "train-test",
                           .num_sms = 8,
                           .max_blocks_per_sm = 1,
                           .clock_scale = 1.0,
                           .memory_mb = 1000};
  o.clock_noise_sigma = 0.0;
  o.seed = 11;
  o.coalesce_wave_trains = coalesce;
  gpusim::Gpu gpu(env, o);
  const auto backdrop = gpu.CreateStream();
  const auto train = gpu.CreateStream();
  constexpr int kTrains = 40;
  std::vector<std::int64_t> done(kTrains + 1, -1);
  // Holds 6 of 8 slots for a long time so the train kernels below see a
  // steady 2 free slots — the full-refill precondition for coalescing.
  env.Spawn(OneKernel(gpu, env, backdrop,
                      gpusim::KernelDesc{.job = 0, .thread_blocks = 6,
                                         .block_work = sim::Duration::Millis(40)},
                      done, 0));
  // Each kernel is 7 blocks through 2 slots: waves of 2/2/2/1, the first
  // issue qualifying as a coalescible 3-wave train.
  for (int i = 0; i < kTrains; ++i) {
    env.Spawn(OneKernel(gpu, env, train,
                        gpusim::KernelDesc{.job = 1, .thread_blocks = 7,
                                           .block_work = sim::Duration::Micros(5)},
                        done, static_cast<std::size_t>(i) + 1));
  }
  if (hang_mid_train) {
    // Lands mid-train for several kernels; coalesced trains must split so
    // un-issued waves stall exactly as they would uncoalesced.
    env.ScheduleCallbackAt(
        sim::TimePoint() + sim::Duration::Micros(203),
        [](void* ctx, std::uint64_t) {
          static_cast<gpusim::Gpu*>(ctx)->Hang(sim::Duration::Micros(90));
        },
        &gpu, 0);
  }
  env.Run();
  return TrainRun{.done_ns = std::move(done),
                  .waves_dispatched = gpu.waves_dispatched(),
                  .waves_coalesced = gpu.waves_coalesced(),
                  .kernels_completed = gpu.kernels_completed()};
}

}  // namespace

TEST(GoldenDeterminismTest, WaveTrainCoalescingPreservesFinishTimes) {
  const TrainRun on = RunWaveTrains(/*coalesce=*/true, /*hang_mid_train=*/false);
  const TrainRun off =
      RunWaveTrains(/*coalesce=*/false, /*hang_mid_train=*/false);
  EXPECT_GT(on.waves_coalesced, 0u) << "scenario failed to trigger coalescing";
  EXPECT_EQ(off.waves_coalesced, 0u);
  // Semantic wave/kernel counts match; only timer events are elided.
  EXPECT_EQ(on.waves_dispatched, off.waves_dispatched);
  EXPECT_EQ(on.kernels_completed, off.kernels_completed);
  ASSERT_EQ(on.done_ns.size(), off.done_ns.size());
  for (std::size_t i = 0; i < on.done_ns.size(); ++i) {
    EXPECT_EQ(on.done_ns[i], off.done_ns[i]) << "kernel " << i;
    EXPECT_GE(on.done_ns[i], 0) << "kernel " << i << " never finished";
  }
  // And the coalesced path replays bit-identically.
  const TrainRun replay =
      RunWaveTrains(/*coalesce=*/true, /*hang_mid_train=*/false);
  EXPECT_EQ(replay.done_ns, on.done_ns);
  EXPECT_EQ(replay.waves_coalesced, on.waves_coalesced);
}

TEST(GoldenDeterminismTest, HangSplitsTrainsWithoutMovingFinishTimes) {
  const TrainRun on = RunWaveTrains(/*coalesce=*/true, /*hang_mid_train=*/true);
  const TrainRun off =
      RunWaveTrains(/*coalesce=*/false, /*hang_mid_train=*/true);
  EXPECT_GT(on.waves_coalesced, 0u) << "scenario failed to trigger coalescing";
  EXPECT_EQ(on.kernels_completed, off.kernels_completed);
  ASSERT_EQ(on.done_ns.size(), off.done_ns.size());
  for (std::size_t i = 0; i < on.done_ns.size(); ++i) {
    EXPECT_EQ(on.done_ns[i], off.done_ns[i]) << "kernel " << i;
    EXPECT_GE(on.done_ns[i], 0) << "kernel " << i << " never finished";
  }
}

// A fractional-capacity window landing mid-train is the same exactness
// obligation as a hang: trains split at the window-open edge
// (ThrottleCapacity) and are capped at the window-close edge
// (CoalescibleWaves), so no train ever spans a capacity change — the
// coalesced run must finish every kernel at the uncoalesced instant.
TEST(GoldenDeterminismTest, CapacityWindowSplitsTrainsWithoutMovingTimes) {
  const auto run = [](bool coalesce) {
    sim::Environment env;
    gpusim::Gpu::Options o;
    o.spec = gpusim::GpuSpec{.name = "train-test",
                             .num_sms = 8,
                             .max_blocks_per_sm = 1,
                             .clock_scale = 1.0,
                             .memory_mb = 1000};
    o.clock_noise_sigma = 0.0;
    o.seed = 11;
    o.coalesce_wave_trains = coalesce;
    gpusim::Gpu gpu(env, o);
    const auto backdrop = gpu.CreateStream();
    const auto train = gpu.CreateStream();
    constexpr int kTrains = 40;
    std::vector<std::int64_t> done(kTrains + 1, -1);
    env.Spawn(OneKernel(
        gpu, env, backdrop,
        gpusim::KernelDesc{.job = 0, .thread_blocks = 6,
                           .block_work = sim::Duration::Millis(40)},
        done, 0));
    for (int i = 0; i < kTrains; ++i) {
      env.Spawn(OneKernel(
          gpu, env, train,
          gpusim::KernelDesc{.job = 1, .thread_blocks = 7,
                             .block_work = sim::Duration::Micros(5)},
          done, static_cast<std::size_t>(i) + 1));
    }
    // Opens mid-train for several kernels, closes mid-train again 90us on.
    env.ScheduleCallbackAt(
        sim::TimePoint() + sim::Duration::Micros(203),
        [](void* ctx, std::uint64_t) {
          static_cast<gpusim::Gpu*>(ctx)->ThrottleCapacity(
              0.5, sim::Duration::Micros(90));
        },
        &gpu, 0);
    env.Run();
    return TrainRun{.done_ns = std::move(done),
                    .waves_dispatched = gpu.waves_dispatched(),
                    .waves_coalesced = gpu.waves_coalesced(),
                    .kernels_completed = gpu.kernels_completed()};
  };
  const TrainRun on = run(/*coalesce=*/true);
  const TrainRun off = run(/*coalesce=*/false);
  EXPECT_GT(on.waves_coalesced, 0u) << "scenario failed to trigger coalescing";
  // waves_dispatched can legitimately differ: a split train returns its
  // un-run waves to the queue and they are counted again on re-dispatch
  // (same as the hang-split scenario above). Finish times are the
  // exactness obligation.
  EXPECT_EQ(on.kernels_completed, off.kernels_completed);
  ASSERT_EQ(on.done_ns.size(), off.done_ns.size());
  for (std::size_t i = 0; i < on.done_ns.size(); ++i) {
    EXPECT_EQ(on.done_ns[i], off.done_ns[i]) << "kernel " << i;
    EXPECT_GE(on.done_ns[i], 0) << "kernel " << i << " never finished";
  }
}

// ---------------------------------------------------------------------------
// Gray-failure golden: scoring, brownout, capacity losses, and jitter all
// ON — the new path pinned bit-exactly, at shards=1 and shards=4. The
// cluster goldens above run with scoring disabled and must stay untouched
// by this PR; this one pins the scored trajectory itself.

struct GoldenGrayRun {
  std::vector<std::int64_t> finish_ns;  // per-client
  std::vector<int> completed;           // per-client served requests
  std::uint64_t events = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;               // requests_shed_brownout
  std::uint64_t degrades = 0;           // score_degrade_events
  std::uint64_t recovers = 0;           // score_recover_events
  std::uint64_t brownouts = 0;          // brownout_entries
  std::int64_t detection_ns = 0;        // sum of detection latencies

  bool operator==(const GoldenGrayRun&) const = default;
};

GoldenGrayRun RunGrayClusterWorkload(std::size_t shards) {
  serving::ClusterOptions opts;
  opts.num_servers = 4;
  opts.server.num_gpus = 1;
  opts.server.pool_threads = 100;
  opts.seed = 17;
  opts.shards = shards;
  opts.router.score.enabled = true;
  opts.router.brownout.enabled = true;
  opts.router.brownout.enter_below = 0.80;
  opts.router.brownout.exit_above = 0.90;
  opts.faults.CapacityLoss(sim::TimePoint() + sim::Duration::Millis(100),
                           sim::Duration::Millis(250), /*server=*/0, 0.25);
  opts.faults.CapacityLoss(sim::TimePoint() + sim::Duration::Millis(120),
                           sim::Duration::Millis(250), /*server=*/1, 0.3);
  opts.faults.Jitter(sim::TimePoint() + sim::Duration::Millis(150),
                     sim::Duration::Millis(200), /*server=*/2, 5.0);
  serving::Cluster cluster(opts);
  std::vector<serving::ClusterClientSpec> clients;
  for (int i = 0; i < 8; ++i) {
    serving::ClusterClientSpec c;
    c.request.model = "googlenet";
    c.request.batch = 8;
    c.request.num_batches = 8;
    c.request.priority = i % 2;
    c.arrivals.kind = serving::ArrivalSpec::Kind::kPoisson;
    c.arrivals.rate_rps = 15.0;
    clients.push_back(c);
  }
  const auto results = cluster.Run(clients);
  GoldenGrayRun out;
  for (const auto& r : results) {
    out.finish_ns.push_back(r.finish_time.nanos());
    out.completed.push_back(r.requests_completed);
  }
  out.events = cluster.engine().events_executed();
  out.ok = cluster.counters().requests_ok;
  out.shed = cluster.counters().requests_shed_brownout;
  out.degrades = cluster.counters().score_degrade_events;
  out.recovers = cluster.counters().score_recover_events;
  out.brownouts = cluster.counters().brownout_entries;
  for (const sim::Duration d : cluster.router().detection_latencies()) {
    out.detection_ns += d.nanos();
  }
  return out;
}

void PrintGoldenGray(const char* name, const GoldenGrayRun& g) {
  std::printf("const GoldenGrayRun %s{\n    {", name);
  for (auto v : g.finish_ns) std::printf("%lldLL, ", static_cast<long long>(v));
  std::printf("},\n    {");
  for (auto v : g.completed) std::printf("%d, ", v);
  std::printf("},\n    %lluULL, %lluULL, %lluULL, %lluULL, %lluULL, %lluULL, "
              "%lldLL};\n",
              static_cast<unsigned long long>(g.events),
              static_cast<unsigned long long>(g.ok),
              static_cast<unsigned long long>(g.shed),
              static_cast<unsigned long long>(g.degrades),
              static_cast<unsigned long long>(g.recovers),
              static_cast<unsigned long long>(g.brownouts),
              static_cast<long long>(g.detection_ns));
}

const GoldenGrayRun kGoldenGray{
    {885153784LL, 1279888020LL, 769712434LL, 1065424996LL, 912355800LL,
     1271921622LL, 471160639LL, 1064546099LL},
    {4, 8, 4, 8, 4, 8, 2, 8},
    3128821ULL, 46ULL, 18ULL, 3ULL, 3ULL, 1ULL, 137666666LL};

TEST(GoldenDeterminismTest, GrayClusterMatchesGoldenAndReplays) {
  const GoldenGrayRun a = RunGrayClusterWorkload(1);
  const GoldenGrayRun b = RunGrayClusterWorkload(1);
  EXPECT_EQ(a, b) << "same-seed gray-failure replay diverged within one build";
  if (PrintRequested()) {
    PrintGoldenGray("kGoldenGray", a);
    return;
  }
  EXPECT_EQ(a, kGoldenGray) << "gray-failure run diverged from golden values";
  // The scenario actually exercises the new machinery.
  EXPECT_GT(a.degrades, 0u);
  EXPECT_GT(a.brownouts, 0u);
  EXPECT_GT(a.detection_ns, 0);
}

TEST(GoldenDeterminismTest, GrayClusterShardedBitIdenticalToUnsharded) {
  const GoldenGrayRun seq = RunGrayClusterWorkload(1);
  const GoldenGrayRun par = RunGrayClusterWorkload(4);
  const GoldenGrayRun par2 = RunGrayClusterWorkload(4);
  EXPECT_EQ(par, par2)
      << "same-seed 4-shard gray replay diverged: thread scheduling leaked "
         "into the trajectory";
  EXPECT_EQ(par, seq)
      << "4-shard gray run diverged from the single-queue run (same seed)";
}

}  // namespace
}  // namespace olympian
