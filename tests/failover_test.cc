// Tests for the failover subsystem: health monitoring, health-aware
// placement, device failover with re-admission, and the recovery pipeline.
//
// The acceptance scenario from the issue: a device reset mid-run on GPU 0
// of a two-GPU server. With failover enabled every batch completes (zero
// kFailed — victims re-admit to the surviving replica without touching
// their retry budget); with it disabled GPU 0's client loses requests.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "core/scheduler.h"
#include "fault/fault.h"
#include "serving/health.h"
#include "serving/placer.h"
#include "serving/server.h"
#include "sim/environment.h"

namespace olympian {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint At(double ms) { return TimePoint() + Duration::Millis(ms); }

serving::ClientSpec Client(const std::string& model, int batches = 8) {
  return serving::ClientSpec{.model = model, .batch = 20,
                             .num_batches = batches};
}

// Two clients with distinct models, one homed per device: a failover from
// GPU 0 must lazily instantiate the victim's model on GPU 1.
std::vector<serving::ClientSpec> TwoGpuWorkload(int batches = 8) {
  return {Client("resnet-152", batches), Client("googlenet", batches)};
}

serving::ServerOptions TwoGpuOptions(bool failover) {
  serving::ServerOptions opts;
  opts.num_gpus = 2;
  opts.failover.enabled = failover;
  return opts;
}

int CountAll(const std::vector<serving::ClientResult>& results,
             serving::RequestStatus s) {
  int n = 0;
  for (const auto& r : results) n += r.CountStatus(s);
  return n;
}

int BatchesAll(const std::vector<serving::ClientResult>& results) {
  int n = 0;
  for (const auto& r : results) n += r.batches_completed;
  return n;
}

// ---------------------------------------------------------------------------
// Acceptance: device loss mid-run

TEST(FailoverTest, DeviceLossFailsOverToSurvivingReplica) {
  // GPU 0 dies at t=600ms and stays down for the rest of the workload.
  serving::ServerOptions opts = TwoGpuOptions(/*failover=*/true);
  opts.faults.DeviceReset(At(600), Duration::Seconds(100), /*gpu_index=*/0);
  serving::Experiment exp(opts);
  const auto results = exp.Run(TwoGpuWorkload());

  // Every batch completes; no request is lost to the dead device.
  for (const auto& r : results) {
    EXPECT_EQ(r.batches_completed, 8) << r.name;
    EXPECT_EQ(r.CountStatus(serving::RequestStatus::kFailed), 0) << r.name;
  }
  const auto& c = exp.counters();
  EXPECT_EQ(c.device_down_events, 1u);
  EXPECT_GE(c.failover_cancellations, 1u);  // in-flight victim cancelled
  EXPECT_GE(c.requests_failed_over, 1u);    // ...and re-admitted
  EXPECT_EQ(c.requests_failed, 0u);
  // The victim's model was not resident on GPU 1: exactly one lazy
  // replica instantiation (reload + warm-up paid on the virtual clock).
  EXPECT_EQ(c.replica_instantiations, 1u);
  ASSERT_NE(exp.placer(), nullptr);
  EXPECT_EQ(exp.placer()->replicas_loaded(), 1u);
  // Failover cancellations must not consume retry budget.
  EXPECT_EQ(c.retries, 0u);

  // The down transition is in the health log. The outage outlives the
  // workload: every client finished long before the 100s recovery (which
  // the final event-queue drain still runs to completion).
  ASSERT_NE(exp.health(), nullptr);
  EXPECT_EQ(exp.health()->stats(0).down_events, 1u);
  EXPECT_EQ(exp.health()->health(1), serving::DeviceHealth::kHealthy);
  for (const auto& r : results) {
    EXPECT_LT(r.finish_time, Duration::Seconds(100)) << r.name;
  }
}

TEST(FailoverTest, DisabledFailoverLosesRequestsOnDeadDevice) {
  serving::ServerOptions opts = TwoGpuOptions(/*failover=*/false);
  opts.faults.DeviceReset(At(600), Duration::Seconds(100), /*gpu_index=*/0);
  serving::Experiment exp(opts);
  const auto results = exp.Run(TwoGpuWorkload());

  // Client 0 is pinned to the dead device: its remaining requests exhaust
  // the retry budget and fail. Client 1 is untouched.
  EXPECT_LT(results[0].batches_completed, 8);
  EXPECT_GT(results[0].CountStatus(serving::RequestStatus::kFailed), 0);
  EXPECT_EQ(results[1].batches_completed, 8);
  EXPECT_EQ(results[1].CountStatus(serving::RequestStatus::kFailed), 0);
  EXPECT_EQ(exp.health(), nullptr);  // subsystem not constructed
}

// ---------------------------------------------------------------------------
// Recovery and readmission

TEST(FailoverTest, RecoveryReadmitsDeviceAfterOutage) {
  serving::ServerOptions opts = TwoGpuOptions(/*failover=*/true);
  opts.faults.DeviceReset(At(600), Duration::Millis(250), /*gpu_index=*/0);
  serving::Experiment exp(opts);
  const auto results = exp.Run(TwoGpuWorkload(/*batches=*/10));

  for (const auto& r : results) {
    EXPECT_EQ(r.batches_completed, 10) << r.name;
    EXPECT_EQ(r.CountStatus(serving::RequestStatus::kFailed), 0) << r.name;
  }
  ASSERT_NE(exp.health(), nullptr);
  const auto& stats = exp.health()->stats(0);
  EXPECT_EQ(stats.down_events, 1u);
  EXPECT_EQ(stats.readmissions, 1u);
  EXPECT_EQ(exp.counters().device_readmissions, 1u);
  // MTTR covers the outage plus the recovery pipeline (driver re-init,
  // parameter reload, warm-up): strictly more than the raw outage.
  EXPECT_GT(exp.health()->Mttr(0), Duration::Millis(250));
  EXPECT_EQ(exp.health()->health(0), serving::DeviceHealth::kHealthy);

  // Readmission is observable in the transition log: kDown -> kRecovering
  // followed by kRecovering -> kHealthy for GPU 0.
  bool recovering = false, readmitted = false;
  for (const auto& t : exp.health()->transitions()) {
    if (t.gpu != 0) continue;
    if (t.from == serving::DeviceHealth::kDown &&
        t.to == serving::DeviceHealth::kRecovering) {
      recovering = true;
    }
    if (recovering && t.from == serving::DeviceHealth::kRecovering &&
        t.to == serving::DeviceHealth::kHealthy) {
      readmitted = true;
    }
  }
  EXPECT_TRUE(recovering);
  EXPECT_TRUE(readmitted);
}

// The recovering edge, device level: heartbeat probes land while the device
// is in kRecovering (the driver is back up, so they succeed), but none may
// readmit it early — only the recovery pipeline's warm-up hand-shake does,
// and the transition log records kRecovering -> kHealthy exactly once.
TEST(FailoverTest, ProbeDuringDeviceRecoveringDoesNotReadmitEarly) {
  sim::Environment env;
  gpusim::Gpu gpu(env, gpusim::Gpu::Options{});
  serving::HealthMonitorOptions hopts;
  hopts.probe_interval = Duration::Millis(1);
  const fault::RecoveryOptions rec;  // 20ms re-init, 2 warm-up probes, 5ms
  serving::HealthMonitor mon(env, {&gpu}, hopts, rec, /*observer=*/nullptr);
  mon.Start();

  env.RunUntil(At(2.5));
  ASSERT_EQ(mon.health(0), serving::DeviceHealth::kHealthy);
  gpu.Reset(Duration::Millis(20));  // outage [2.5, 22.5)
  ASSERT_EQ(mon.health(0), serving::DeviceHealth::kDown);

  // Outage ends at 22.5 but the driver re-init runs until 42.5: probes in
  // between succeed at the device yet the monitor must stay kDown.
  env.RunUntil(At(30));
  EXPECT_EQ(mon.health(0), serving::DeviceHealth::kDown);
  EXPECT_FALSE(mon.Usable(0));

  env.RunUntil(At(43));
  ASSERT_EQ(mon.health(0), serving::DeviceHealth::kRecovering);
  EXPECT_FALSE(mon.Usable(0));
  env.RunUntil(At(44.5));
  // Heartbeats landed every 1ms during recovery; readmission waits for the
  // pipeline (warm-up probes + 5ms warm-up), not the first probe success.
  EXPECT_EQ(mon.health(0), serving::DeviceHealth::kRecovering);
  EXPECT_FALSE(mon.Usable(0));

  env.RunUntil(At(60));
  EXPECT_EQ(mon.health(0), serving::DeviceHealth::kHealthy);
  EXPECT_TRUE(mon.Usable(0));
  int recovering_to_healthy = 0;
  for (const auto& t : mon.transitions()) {
    if (t.gpu == 0 && t.from == serving::DeviceHealth::kRecovering &&
        t.to == serving::DeviceHealth::kHealthy) {
      ++recovering_to_healthy;
    }
  }
  EXPECT_EQ(recovering_to_healthy, 1);
  EXPECT_EQ(mon.stats(0).readmissions, 1u);
  ASSERT_EQ(mon.stats(0).mttr_incidents.size(), 1u);
  // The incident covers outage + re-init + warm-up, not just the outage.
  EXPECT_GT(mon.stats(0).mttr_incidents[0], Duration::Millis(20));
  mon.Stop();
  env.Run();
}

TEST(FailoverTest, HangEscalationFailsOverAndRecoversAtHangEnd) {
  serving::ServerOptions opts = TwoGpuOptions(/*failover=*/true);
  // A 300ms hang outlives the 10ms escalation budget: kDegraded -> kDown
  // (failover), then recovery without driver re-init once the hang clears.
  opts.faults.DeviceHang(At(600), Duration::Millis(300), /*gpu_index=*/0);
  opts.failover.health.hang_down_after = Duration::Millis(10);
  serving::Experiment exp(opts);
  const auto results = exp.Run(TwoGpuWorkload(/*batches=*/10));

  for (const auto& r : results) {
    EXPECT_EQ(r.batches_completed, 10) << r.name;
    EXPECT_EQ(r.CountStatus(serving::RequestStatus::kFailed), 0) << r.name;
  }
  const auto& c = exp.counters();
  EXPECT_EQ(c.device_down_events, 1u);
  EXPECT_GE(c.requests_failed_over, 1u);
  EXPECT_EQ(exp.health()->stats(0).readmissions, 1u);
  EXPECT_EQ(exp.health()->health(0), serving::DeviceHealth::kHealthy);
}

// ---------------------------------------------------------------------------
// Satellite: every device down -> prompt rejection, no stall

TEST(FailoverTest, AllDevicesDownRejectsPendingRequestsPromptly) {
  serving::ServerOptions opts = TwoGpuOptions(/*failover=*/true);
  opts.faults.DeviceReset(At(600), Duration::Seconds(100), /*gpu_index=*/0);
  opts.faults.DeviceReset(At(600), Duration::Seconds(100), /*gpu_index=*/1);
  serving::Experiment exp(opts);
  const auto results = exp.Run(TwoGpuWorkload());  // must not stall

  EXPECT_GT(CountAll(results, serving::RequestStatus::kRejected), 0);
  EXPECT_LT(BatchesAll(results), 16);
  const auto& c = exp.counters();
  EXPECT_GT(c.requests_rejected_no_device, 0u);
  EXPECT_EQ(c.requests_rejected_no_device,
            static_cast<std::uint64_t>(
                CountAll(results, serving::RequestStatus::kRejected)));
  // Prompt termination: clients drain their remaining requests as
  // rejections instead of waiting out the 100s outage.
  for (const auto& r : results) {
    EXPECT_LT(r.finish_time, Duration::Seconds(10)) << r.name;
  }
}

// ---------------------------------------------------------------------------
// Hedged requests during degradation

TEST(FailoverTest, HedgesLaunchWhileRoutedDeviceIsDegraded) {
  // A closed-loop client never *starts* a request during a hang (its
  // in-flight request is stuck until the hang clears), so degradation is
  // made visible to routing via a retry: a kernel failure at t=595ms fails
  // the attempt, the 10ms backoff lands the retry inside the hang window
  // that opens at t=600ms, and the retry — routed to the degraded primary —
  // hedges on the healthy peer.
  serving::ServerOptions opts = TwoGpuOptions(/*failover=*/true);
  // Stream 0 is the health monitor's probe stream; the client's first
  // stream is 1.
  opts.faults.KernelFailure(At(595), /*stream=*/1, /*gpu_index=*/0);
  opts.faults.DeviceHang(At(600), Duration::Millis(300), /*gpu_index=*/0);
  opts.failover.health.hang_down_after = Duration::Seconds(10);
  opts.failover.hedge_when_degraded = true;
  opts.failover.hedge_delay = Duration::Millis(1);
  opts.degradation.retry.base_backoff = Duration::Millis(10);
  serving::Experiment exp(opts);
  const auto results = exp.Run(TwoGpuWorkload(/*batches=*/10));

  for (const auto& r : results) {
    EXPECT_EQ(r.batches_completed, 10) << r.name;
    EXPECT_EQ(r.CountStatus(serving::RequestStatus::kFailed), 0) << r.name;
  }
  EXPECT_GE(exp.counters().hedges_launched, 1u);
}

TEST(FailoverTest, HedgeWinAdoptedWhenPrimaryDiesMidKernel) {
  // Same staging as above — the kernel failure at t=595ms pushes a retry
  // into the hang window, where it routes to the degraded primary and
  // hedges on the healthy peer. Then the primary device RESETS at t=650ms,
  // killing the wedged attempt mid-kernel. The request must adopt the
  // hedge's result: no failed requests, a hedge win counted, and no retry
  // budget consumed by the primary's death (the only retry on the books is
  // the injected kernel failure that staged the scenario).
  serving::ServerOptions opts = TwoGpuOptions(/*failover=*/true);
  opts.faults.KernelFailure(At(595), /*stream=*/1, /*gpu_index=*/0);
  opts.faults.DeviceHang(At(600), Duration::Millis(300), /*gpu_index=*/0);
  opts.faults.DeviceReset(At(650), Duration::Seconds(100), /*gpu_index=*/0);
  opts.failover.health.hang_down_after = Duration::Seconds(10);
  opts.failover.hedge_when_degraded = true;
  opts.failover.hedge_delay = Duration::Millis(1);
  opts.degradation.retry.base_backoff = Duration::Millis(10);
  serving::Experiment exp(opts);
  const auto results = exp.Run(TwoGpuWorkload(/*batches=*/10));

  for (const auto& r : results) {
    EXPECT_EQ(r.batches_completed, 10) << r.name;
    EXPECT_EQ(r.CountStatus(serving::RequestStatus::kFailed), 0) << r.name;
  }
  const auto& c = exp.counters();
  EXPECT_GE(c.hedges_launched, 1u);
  EXPECT_GE(c.hedge_wins, 1u);
  // The hedge-winning request is the staged retry (attempt 2), so exactly
  // one request reports kFailedRetried; everything else is clean.
  EXPECT_EQ(results[0].CountStatus(serving::RequestStatus::kFailedRetried), 1)
      << results[0].name;
  // One retry from the injected kernel failure — and none from the
  // primary's cancellation, which the hedge win absorbed.
  EXPECT_EQ(c.retries, 1u);
  EXPECT_EQ(c.requests_failed, 0u);
}

// ---------------------------------------------------------------------------
// Determinism: the failover path is on the virtual clock end to end

TEST(FailoverTest, FailoverRunsAreBitIdenticalAcrossRepeats) {
  auto run = [] {
    serving::ServerOptions opts = TwoGpuOptions(/*failover=*/true);
    opts.seed = 99;
    opts.faults.DeviceReset(At(600), Duration::Millis(250), /*gpu_index=*/0);
    opts.faults.DeviceHang(At(1200), Duration::Millis(30), /*gpu_index=*/1);
    serving::Experiment exp(opts);
    return exp.Run(TwoGpuWorkload(/*batches=*/10));
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].finish_time, b[i].finish_time);
    EXPECT_EQ(a[i].gpu_duration, b[i].gpu_duration);
    EXPECT_EQ(a[i].batches_completed, b[i].batches_completed);
    ASSERT_EQ(a[i].request_latency_ms, b[i].request_latency_ms);
    ASSERT_EQ(a[i].request_status, b[i].request_status);
  }
}

// Golden determinism: constructing the subsystem disabled must not perturb
// the legacy event sequence at all.
TEST(FailoverTest, DisabledFailoverPreservesLegacyResults) {
  auto run = [](bool failover) {
    serving::ServerOptions opts = TwoGpuOptions(failover);
    serving::Experiment exp(opts);
    return exp.Run(TwoGpuWorkload());
  };
  const auto legacy = run(false);
  const auto quiet = run(true);  // enabled, but no faults ever fire
  ASSERT_EQ(legacy.size(), quiet.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    // Probe kernels share the device, so utilization-side numbers may move;
    // client-visible results must not.
    EXPECT_EQ(legacy[i].batches_completed, quiet[i].batches_completed);
    EXPECT_EQ(legacy[i].CountStatus(serving::RequestStatus::kOk),
              quiet[i].CountStatus(serving::RequestStatus::kOk));
  }
}

// ---------------------------------------------------------------------------
// Failover under the Olympian scheduler: gang detach on device death

TEST(FailoverTest, OlympianSchedulerDetachesAndReattachesAcrossFailover) {
  serving::ServerOptions opts = TwoGpuOptions(/*failover=*/true);
  opts.faults.DeviceReset(At(600), Duration::Millis(250), /*gpu_index=*/0);
  serving::Experiment exp(opts);

  core::Profiler profiler;
  auto p_resnet = profiler.ProfileModel("resnet-152", 20);
  auto p_google = profiler.ProfileModel("googlenet", 20);
  std::vector<std::unique_ptr<core::Scheduler>> scheds;
  for (std::size_t i = 0; i < exp.num_gpus(); ++i) {
    auto s = std::make_unique<core::Scheduler>(
        exp.env(), exp.gpu(i), std::make_unique<core::FairPolicy>());
    // Either model may land on either device after a failover: install
    // both profiles on both schedulers.
    s->SetProfile(p_resnet.key, &p_resnet.cost,
                  core::Profiler::ThresholdFor(p_resnet, Duration::Micros(500)));
    s->SetProfile(p_google.key, &p_google.cost,
                  core::Profiler::ThresholdFor(p_google, Duration::Micros(500)));
    exp.SetGpuHooks(i, s.get());
    scheds.push_back(std::move(s));
  }
  const auto results = exp.Run(TwoGpuWorkload(/*batches=*/10));

  for (const auto& r : results) {
    EXPECT_EQ(r.batches_completed, 10) << r.name;
    EXPECT_EQ(r.CountStatus(serving::RequestStatus::kFailed), 0) << r.name;
  }
  EXPECT_EQ(scheds[0]->detaches(), 1u);  // token parked on device death
  EXPECT_EQ(scheds[0]->attaches(), 1u);  // ...and the device re-attached
  EXPECT_EQ(scheds[1]->detaches(), 0u);
}

}  // namespace
}  // namespace olympian
