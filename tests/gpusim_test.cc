// Unit tests for the simulated GPU and its job-blind driver (gpusim/).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gpusim/gpu.h"
#include "sim/environment.h"

namespace olympian::gpusim {
namespace {

using sim::Duration;
using sim::Environment;
using sim::Task;
using sim::TimePoint;

Gpu::Options SmallGpu(std::int64_t slots, std::uint64_t seed = 1) {
  Gpu::Options o;
  o.spec = GpuSpec{.name = "test",
                   .num_sms = static_cast<int>(slots),
                   .max_blocks_per_sm = 1,
                   .clock_scale = 1.0,
                   .memory_mb = 1000};
  o.clock_noise_sigma = 0.0;
  o.seed = seed;
  return o;
}

// Submits one kernel and records its completion time.
Task SubmitOne(Gpu& gpu, Environment& env, StreamId s, KernelDesc d,
               TimePoint& done) {
  co_await gpu.Submit(s, d);
  done = env.Now();
}

TEST(GpuTest, SingleKernelSingleWave) {
  Environment env;
  Gpu gpu(env, SmallGpu(8));
  auto s = gpu.CreateStream();
  TimePoint done;
  env.Spawn(SubmitOne(gpu, env, s,
                      KernelDesc{.job = 0, .node_id = 1, .thread_blocks = 4,
                                 .block_work = Duration::Micros(10)},
                      done));
  env.Run();
  EXPECT_EQ(done, TimePoint() + Duration::Micros(10));
  EXPECT_EQ(gpu.kernels_completed(), 1u);
  EXPECT_EQ(gpu.waves_dispatched(), 1u);
}

TEST(GpuTest, SaturatingKernelRunsExclusiveMultiWave) {
  Environment env;
  Gpu gpu(env, SmallGpu(4));
  auto s = gpu.CreateStream();
  TimePoint done;
  // 10 blocks on 4 slots: saturating -> device-exclusive, ceil(10/4)=3
  // wave-times = 30us, dispatched as one occupancy.
  env.Spawn(SubmitOne(gpu, env, s,
                      KernelDesc{.job = 0, .thread_blocks = 10,
                                 .block_work = Duration::Micros(10)},
                      done));
  env.Run();
  EXPECT_EQ(done, TimePoint() + Duration::Micros(30));
  EXPECT_EQ(gpu.waves_dispatched(), 1u);
  EXPECT_EQ(gpu.free_slots(), 4);
}

TEST(GpuTest, ExclusiveKernelWaitsForDeviceDrain) {
  Environment env;
  Gpu gpu(env, SmallGpu(4));
  auto s1 = gpu.CreateStream();
  auto s2 = gpu.CreateStream();
  TimePoint d_small, d_big;
  // Small kernel occupies 2 slots for 10us; the saturating kernel on the
  // other stream must wait for a full drain before its exclusive run.
  env.Spawn(SubmitOne(gpu, env, s1,
                      KernelDesc{.job = 1, .thread_blocks = 2,
                                 .block_work = Duration::Micros(10)},
                      d_small));
  env.Spawn(SubmitOne(gpu, env, s2,
                      KernelDesc{.job = 2, .thread_blocks = 8,
                                 .block_work = Duration::Micros(5)},
                      d_big));
  env.Run();
  EXPECT_EQ(d_small, TimePoint() + Duration::Micros(10));
  // Starts at 10us, runs ceil(8/4)*5us = 10us.
  EXPECT_EQ(d_big, TimePoint() + Duration::Micros(20));
}

TEST(GpuTest, ClockScaleSpeedsUpExecution) {
  Environment env;
  Gpu::Options o = SmallGpu(4);
  o.spec.clock_scale = 2.0;
  Gpu gpu(env, o);
  auto s = gpu.CreateStream();
  TimePoint done;
  env.Spawn(SubmitOne(gpu, env, s,
                      KernelDesc{.thread_blocks = 4,
                                 .block_work = Duration::Micros(10)},
                      done));
  env.Run();
  EXPECT_EQ(done, TimePoint() + Duration::Micros(5));
}

TEST(GpuTest, InStreamKernelsSerialize) {
  Environment env;
  Gpu gpu(env, SmallGpu(8));
  auto s = gpu.CreateStream();
  TimePoint d1, d2;
  env.Spawn(SubmitOne(gpu, env, s,
                      KernelDesc{.thread_blocks = 1,
                                 .block_work = Duration::Micros(10)},
                      d1));
  env.Spawn(SubmitOne(gpu, env, s,
                      KernelDesc{.thread_blocks = 1,
                                 .block_work = Duration::Micros(10)},
                      d2));
  env.Run();
  // Same stream: second kernel starts only after the first completes,
  // despite free slots.
  EXPECT_EQ(d1, TimePoint() + Duration::Micros(10));
  EXPECT_EQ(d2, TimePoint() + Duration::Micros(20));
}

TEST(GpuTest, CrossStreamSmallKernelsOverlap) {
  Environment env;
  Gpu gpu(env, SmallGpu(8));
  auto s1 = gpu.CreateStream();
  auto s2 = gpu.CreateStream();
  TimePoint d1, d2;
  env.Spawn(SubmitOne(gpu, env, s1,
                      KernelDesc{.job = 1, .thread_blocks = 2,
                                 .block_work = Duration::Micros(10)},
                      d1));
  env.Spawn(SubmitOne(gpu, env, s2,
                      KernelDesc{.job = 2, .thread_blocks = 2,
                                 .block_work = Duration::Micros(10)},
                      d2));
  env.Run();
  // Both fit spatially; both finish at 10us.
  EXPECT_EQ(d1, TimePoint() + Duration::Micros(10));
  EXPECT_EQ(d2, TimePoint() + Duration::Micros(10));
}

TEST(GpuTest, SaturatingKernelBlocksOtherStreams) {
  Environment env;
  Gpu gpu(env, SmallGpu(4));
  auto s1 = gpu.CreateStream();
  auto s2 = gpu.CreateStream();
  TimePoint d1, d2;
  // Kernel A occupies all 4 slots for 10us; B (1 block) must wait.
  env.Spawn(SubmitOne(gpu, env, s1,
                      KernelDesc{.job = 1, .thread_blocks = 4,
                                 .block_work = Duration::Micros(10)},
                      d1));
  env.Spawn(SubmitOne(gpu, env, s2,
                      KernelDesc{.job = 2, .thread_blocks = 1,
                                 .block_work = Duration::Micros(10)},
                      d2));
  env.Run();
  EXPECT_EQ(d1, TimePoint() + Duration::Micros(10));
  EXPECT_EQ(d2, TimePoint() + Duration::Micros(20));
}

TEST(GpuTest, JobGpuDurationIsUnionOfIntervals) {
  Environment env;
  Gpu gpu(env, SmallGpu(8));
  auto s1 = gpu.CreateStream();
  auto s2 = gpu.CreateStream();
  TimePoint d1, d2;
  // Two overlapping kernels of the same job via different streams:
  // union, not sum (paper Figure 5).
  env.Spawn(SubmitOne(gpu, env, s1,
                      KernelDesc{.job = 7, .thread_blocks = 1,
                                 .block_work = Duration::Micros(10)},
                      d1));
  env.Spawn(SubmitOne(gpu, env, s2,
                      KernelDesc{.job = 7, .thread_blocks = 1,
                                 .block_work = Duration::Micros(6)},
                      d2));
  env.Run();
  EXPECT_EQ(gpu.JobGpuDuration(7), Duration::Micros(10));
}

TEST(GpuTest, TotalBusyAndIdle) {
  Environment env;
  Gpu gpu(env, SmallGpu(8));
  auto s = gpu.CreateStream();
  TimePoint done;
  env.Spawn([](Environment& e, Gpu& g, StreamId st, TimePoint& d) -> Task {
    co_await e.Delay(Duration::Micros(5));  // idle gap first
    co_await g.Submit(st, KernelDesc{.job = 0, .thread_blocks = 1,
                                     .block_work = Duration::Micros(10)});
    d = e.Now();
  }(env, gpu, s, done));
  env.Run();
  EXPECT_EQ(gpu.TotalBusy(), Duration::Micros(10));
  EXPECT_TRUE(gpu.idle());
  EXPECT_NEAR(gpu.MeanSlotOccupancy(), (1.0 / 8.0) * (10.0 / 15.0), 1e-9);
}

TEST(GpuTest, ManyKernelsAllComplete) {
  Environment env;
  Gpu gpu(env, SmallGpu(16, /*seed=*/42));
  std::vector<StreamId> streams;
  for (int i = 0; i < 4; ++i) streams.push_back(gpu.CreateStream());
  int completed = 0;
  for (int i = 0; i < 400; ++i) {
    env.Spawn([](Gpu& g, StreamId st, int blocks, int& done) -> Task {
      co_await g.Submit(st, KernelDesc{.job = st, .thread_blocks = blocks,
                                       .block_work = Duration::Micros(3)});
      ++done;
    }(gpu, streams[i % 4], 1 + i % 7, completed));
  }
  env.Run();
  EXPECT_EQ(completed, 400);
  EXPECT_EQ(gpu.kernels_completed(), 400u);
  EXPECT_EQ(gpu.free_slots(), 16);
}

TEST(GpuTest, MemoryAccounting) {
  Environment env;
  Gpu gpu(env, SmallGpu(4));
  gpu.AllocateMemory(1, 600);
  EXPECT_EQ(gpu.memory_used_mb(), 600);
  EXPECT_THROW(gpu.AllocateMemory(2, 600), OutOfDeviceMemory);
  gpu.ReleaseMemory(1, 600);
  gpu.AllocateMemory(2, 600);
  EXPECT_EQ(gpu.memory_used_mb(), 600);
}

TEST(GpuTest, MemoryUnderflowThrows) {
  Environment env;
  Gpu gpu(env, SmallGpu(4));
  EXPECT_THROW(gpu.ReleaseMemory(1, 10), std::logic_error);
}

TEST(GpuTest, InvalidSubmissionsRejected) {
  Environment env;
  Gpu gpu(env, SmallGpu(4));
  auto s = gpu.CreateStream();
  bool threw_blocks = false, threw_stream = false;
  env.Spawn([](Gpu& g, StreamId st, bool& t1, bool& t2) -> Task {
    try {
      co_await g.Submit(st, KernelDesc{.thread_blocks = 0,
                                       .block_work = Duration::Micros(1)});
    } catch (const std::invalid_argument&) {
      t1 = true;
    }
    try {
      co_await g.Submit(999, KernelDesc{.thread_blocks = 1,
                                        .block_work = Duration::Micros(1)});
    } catch (const std::out_of_range&) {
      t2 = true;
    }
  }(gpu, s, threw_blocks, threw_stream));
  env.Run();
  EXPECT_TRUE(threw_blocks);
  EXPECT_TRUE(threw_stream);
}

// Property: the driver conserves work — total busy time equals the sum of
// all block executions divided by parallelism bounds; and per-job durations
// never exceed total busy.
class GpuConservationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GpuConservationTest, DurationsConsistent) {
  Environment env;
  Gpu gpu(env, SmallGpu(8, GetParam()));
  sim::Rng rng(GetParam());
  std::vector<StreamId> streams;
  for (int i = 0; i < 6; ++i) streams.push_back(gpu.CreateStream());
  for (int i = 0; i < 300; ++i) {
    const auto st = streams[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(streams.size()) - 1))];
    const JobId job = st % 3;
    env.Spawn([](Gpu& g, StreamId s, JobId j, std::int64_t blocks,
                 sim::Duration work) -> Task {
      co_await g.Submit(
          s, KernelDesc{.job = j, .thread_blocks = blocks, .block_work = work});
    }(gpu, st, job, rng.UniformInt(1, 20),
      Duration::Micros(rng.UniformInt(1, 50))));
  }
  env.Run();
  const Duration total = gpu.TotalBusy();
  Duration sum_jobs = Duration::Zero();
  for (JobId j = 0; j < 3; ++j) {
    EXPECT_LE(gpu.JobGpuDuration(j), total);
    sum_jobs += gpu.JobGpuDuration(j);
  }
  // Jobs can overlap spatially, so the union-sum can exceed total busy, but
  // never by more than the parallelism factor.
  EXPECT_GE(sum_jobs, total);
  EXPECT_LE(gpu.MeanSlotOccupancy(), 1.0 + 1e-9);
  EXPECT_EQ(gpu.kernels_completed(), 300u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpuConservationTest,
                         ::testing::Values(1, 2, 3, 10, 77));

TEST(GpuTest, ArbitrationBiasSkewsServiceOrder) {
  // With a strong persistent bias, long-run service shares across streams
  // become unequal — the Figure-3 mechanism. We compare the completion
  // counts of two streams fed identical open queues.
  Environment env;
  Gpu::Options o = SmallGpu(4, /*seed=*/9);
  o.arbitration_bias_sigma = 0.8;
  Gpu gpu(env, o);
  auto s1 = gpu.CreateStream();
  auto s2 = gpu.CreateStream();
  int done1 = 0, done2 = 0;
  // Keep each stream's queue backlogged (several producers per stream) so
  // both streams are always ready and the biased pick matters.
  auto feeder = [](Gpu& g, StreamId st, int& done) -> Task {
    for (int i = 0; i < 50; ++i) {
      co_await g.Submit(st, KernelDesc{.job = st, .thread_blocks = 4,
                                       .block_work = Duration::Micros(10)});
      ++done;
    }
  };
  for (int p = 0; p < 4; ++p) {
    env.Spawn(feeder(gpu, s1, done1));
    env.Spawn(feeder(gpu, s2, done2));
  }
  // Stop mid-flight and compare progress.
  env.RunUntil(TimePoint() + Duration::Millis(2));
  EXPECT_GT(done1 + done2, 50);
  EXPECT_NE(done1, done2);  // biased arbitration: unequal progress
  env.Run();
  EXPECT_EQ(done1, 200);
  EXPECT_EQ(done2, 200);
}

TEST(GpuTest, ZeroBiasKeepsServiceBalanced) {
  Environment env;
  Gpu::Options o = SmallGpu(4, /*seed=*/9);
  o.arbitration_bias_sigma = 0.0;
  Gpu gpu(env, o);
  auto s1 = gpu.CreateStream();
  auto s2 = gpu.CreateStream();
  int done1 = 0, done2 = 0;
  auto feeder = [](Gpu& g, StreamId st, int& done) -> Task {
    for (int i = 0; i < 200; ++i) {
      co_await g.Submit(st, KernelDesc{.job = st, .thread_blocks = 4,
                                       .block_work = Duration::Micros(10)});
      ++done;
    }
  };
  env.Spawn(feeder(gpu, s1, done1));
  env.Spawn(feeder(gpu, s2, done2));
  env.RunUntil(TimePoint() + Duration::Millis(2));
  EXPECT_NEAR(done1, done2, 12);  // burst-granular but unbiased
  env.Run();
}

TEST(GpuTest, ClockNoiseShiftsRuntimesAcrossInstances) {
  // Run-level clock noise: the same kernel takes a (slightly) different
  // time on two device instances with different seeds.
  auto run_one = [](std::uint64_t seed) {
    Environment env;
    Gpu::Options o;
    o.spec = GpuSpec{.name = "t", .num_sms = 4, .max_blocks_per_sm = 1,
                     .clock_scale = 1.0, .memory_mb = 100};
    o.clock_noise_sigma = 0.05;
    o.seed = seed;
    Gpu gpu(env, o);
    auto s = gpu.CreateStream();
    TimePoint done;
    env.Spawn(SubmitOne(gpu, env, s,
                        KernelDesc{.thread_blocks = 4,
                                   .block_work = Duration::Micros(100)},
                        done));
    env.Run();
    return done;
  };
  const auto a = run_one(1);
  const auto b = run_one(2);
  EXPECT_NE(a, b);
  // Bounded: within ~25% of nominal.
  EXPECT_GT(a, TimePoint() + Duration::Micros(75));
  EXPECT_LT(a, TimePoint() + Duration::Micros(135));
}

TEST(GpuTest, EnergyModelAccumulates) {
  Environment env;
  Gpu gpu(env, SmallGpu(4));
  auto s = gpu.CreateStream();
  TimePoint done;
  env.Spawn(SubmitOne(gpu, env, s,
                      KernelDesc{.thread_blocks = 4,
                                 .block_work = Duration::Micros(1000)},
                      done));
  env.Run();
  // 1ms fully-busy, fully-occupied: idle + busy_extra + occupancy watts.
  const auto& spec = gpu.spec();
  const double expect_j = (spec.idle_watts + spec.busy_extra_watts +
                           spec.occupancy_watts) * 1e-3;
  EXPECT_NEAR(gpu.EnergyJoules(), expect_j, 0.05 * expect_j);
  EXPECT_GT(gpu.MeanPowerWatts(), spec.idle_watts);
}

TEST(GpuTest, RetiredJobMetersStayBoundedAtServingScale) {
  // ~100k short single-kernel jobs, retired as they finish. The live meter
  // table must stay bounded by the in-service job count (here: the batch
  // width), not by the total jobs ever served, and a retired job's
  // accumulated duration must remain queryable.
  Environment env;
  Gpu gpu(env, SmallGpu(8));
  auto s = gpu.CreateStream();
  constexpr JobId kJobs = 100000;
  constexpr JobId kBatch = 16;
  std::size_t max_live = 0;
  auto runner = [&](JobId first) -> Task {
    for (JobId j = first; j < first + kBatch && j < kJobs; ++j) {
      co_await gpu.Submit(s, KernelDesc{.job = j, .thread_blocks = 1,
                                        .block_work = Duration::Nanos(10)});
    }
  };
  for (JobId base = 0; base < kJobs; base += kBatch) {
    env.Spawn(runner(base));
    env.Run();
    max_live = std::max(max_live, gpu.live_job_meters());
    for (JobId j = base; j < base + kBatch && j < kJobs; ++j) gpu.RetireJob(j);
    max_live = std::max(max_live, gpu.live_job_meters());
  }
  EXPECT_EQ(gpu.kernels_completed(), static_cast<std::uint64_t>(kJobs));
  EXPECT_LE(max_live, static_cast<std::size_t>(kBatch));
  EXPECT_EQ(gpu.live_job_meters(), 0u);
  // Retired meters still answer JobGpuDuration.
  EXPECT_EQ(gpu.JobGpuDuration(0), Duration::Nanos(10));
  EXPECT_EQ(gpu.JobGpuDuration(kJobs - 1), Duration::Nanos(10));
  // Retiring is idempotent and tolerates unknown jobs.
  gpu.RetireJob(0);
  gpu.RetireJob(kJobs + 5);
  EXPECT_EQ(gpu.JobGpuDuration(0), Duration::Nanos(10));
}

TEST(GpuTest, RetireWhileResidentIsDeferredNoOp) {
  Environment env;
  Gpu gpu(env, SmallGpu(4));
  auto s = gpu.CreateStream();
  TimePoint done;
  env.Spawn(SubmitOne(gpu, env, s,
                      KernelDesc{.job = 3, .thread_blocks = 4,
                                 .block_work = Duration::Micros(10)},
                      done));
  bool live_while_resident = false;
  auto mid = [&]() -> Task {
    co_await env.Delay(Duration::Micros(5));  // kernel in flight
    gpu.RetireJob(3);  // must not drop an in-service meter
    live_while_resident = gpu.live_job_meters() == 1;
  };
  env.Spawn(mid());
  env.Run();
  EXPECT_TRUE(live_while_resident);
  EXPECT_EQ(gpu.JobGpuDuration(3), Duration::Micros(10));
  gpu.RetireJob(3);
  EXPECT_EQ(gpu.live_job_meters(), 0u);
  EXPECT_EQ(gpu.JobGpuDuration(3), Duration::Micros(10));
}

TEST(GpuTest, EnqueueOnDownDeviceThrowsWithoutFailureFlag) {
  // Contract: with `failed_out == nullptr` a launch on a down device cannot
  // report the error through a flag, so Enqueue throws synchronously
  // instead of pretending the kernel was queued.
  Environment env;
  Gpu gpu(env, SmallGpu(4));
  auto s = gpu.CreateStream();
  gpu.Reset(Duration::Millis(5));
  EXPECT_TRUE(gpu.down());
  const auto before = gpu.kernels_failed();
  EXPECT_THROW(gpu.Enqueue(s,
                           KernelDesc{.job = 0, .thread_blocks = 1,
                                      .block_work = Duration::Micros(1)},
                           {}, nullptr),
               KernelFailed);
  EXPECT_EQ(gpu.kernels_failed(), before + 1);
}

TEST(GpuTest, EnqueueOnDownDeviceReportsThroughFailureFlag) {
  // With a `failed_out` the same launch fails fast through the flag and the
  // waiter is resumed (asynchronously, preserving no-reentrancy), without
  // throwing.
  Environment env;
  Gpu gpu(env, SmallGpu(4));
  auto s = gpu.CreateStream();
  gpu.Reset(Duration::Millis(5));
  bool threw = false;
  TimePoint failed_at;
  auto submit = [&]() -> Task {
    try {
      co_await gpu.Submit(s, KernelDesc{.job = 0, .thread_blocks = 1,
                                        .block_work = Duration::Micros(1)});
    } catch (const KernelFailed&) {
      threw = true;
      failed_at = env.Now();
    }
  };
  env.Spawn(submit());
  env.Run();
  EXPECT_TRUE(threw);
  // Failed fast at submit time, not after the outage cleared.
  EXPECT_LT(failed_at, TimePoint() + Duration::Millis(5));
}

}  // namespace
}  // namespace olympian::gpusim
