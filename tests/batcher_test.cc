// Tests for the request batcher (serving/batcher.h) and the profile-store
// persistence (core/profile_store.h).

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/profile_store.h"
#include "core/profiler.h"
#include "core/scheduler.h"
#include "serving/batcher.h"
#include "serving/server.h"

namespace olympian::serving {
namespace {

using sim::Duration;
using sim::Task;

Batcher::Options SmallBatches() {
  Batcher::Options o;
  o.allowed_batch_sizes = {4, 8};
  o.batch_timeout = Duration::Millis(20);
  return o;
}

// Spawns `n` producers that each submit one item after `gap * index`.
void SpawnProducers(Experiment& exp, Batcher& batcher, int n, Duration gap,
                    std::vector<sim::Process>& procs) {
  for (int i = 0; i < n; ++i) {
    procs.push_back(exp.env().Spawn(
        [](sim::Environment& env, Batcher& b, Duration delay) -> Task {
          co_await env.Delay(delay);
          co_await b.Infer();
        }(exp.env(), batcher, gap * static_cast<double>(i)),
        "producer"));
  }
}

// A supervisor that closes the batcher once all producers joined.
sim::Task CloseWhenDone(Batcher& batcher, std::vector<sim::Process> procs) {
  for (auto& p : procs) co_await p.Join();
  batcher.Close();
}

TEST(BatcherTest, CoalescesSimultaneousRequestsIntoOneBatch) {
  Experiment exp(ServerOptions{});
  Batcher batcher(exp, "resnet-152", SmallBatches());
  std::vector<sim::Process> procs;
  SpawnProducers(exp, batcher, 4, Duration::Zero(), procs);
  exp.env().Spawn(CloseWhenDone(batcher, std::move(procs)), "supervisor");
  exp.FinishManualRun();
  EXPECT_EQ(batcher.items_served(), 4u);
  EXPECT_EQ(batcher.batches_executed(), 1u);
  EXPECT_DOUBLE_EQ(batcher.MeanBatchOccupancy(), 1.0);
}

TEST(BatcherTest, TimeoutFlushesPartialBatch) {
  Experiment exp(ServerOptions{});
  Batcher batcher(exp, "resnet-152", SmallBatches());
  std::vector<sim::Process> procs;
  SpawnProducers(exp, batcher, 2, Duration::Zero(), procs);
  exp.env().Spawn(CloseWhenDone(batcher, std::move(procs)), "supervisor");
  exp.FinishManualRun();
  // 2 items < max 8, flushed by the 20ms timeout, padded to 4.
  EXPECT_EQ(batcher.batches_executed(), 1u);
  EXPECT_EQ(batcher.items_served(), 2u);
  EXPECT_DOUBLE_EQ(batcher.MeanBatchOccupancy(), 0.5);
}

TEST(BatcherTest, FullBatchDispatchesBeforeTimeout) {
  Experiment exp(ServerOptions{});
  Batcher::Options o = SmallBatches();
  o.batch_timeout = Duration::Seconds(10);  // effectively never
  Batcher batcher(exp, "resnet-152", o);
  std::vector<sim::Process> procs;
  Duration latency;
  for (int i = 0; i < 8; ++i) {
    procs.push_back(exp.env().Spawn(
        [](Batcher& b, Duration& out) -> Task { co_await b.Infer(&out); }(
            batcher, latency),
        "producer"));
  }
  exp.env().Spawn(CloseWhenDone(batcher, std::move(procs)), "supervisor");
  exp.FinishManualRun();
  EXPECT_EQ(batcher.batches_executed(), 1u);
  // Dispatched at fill: request latency is execution time, nowhere near the
  // 10s timeout. (The virtual clock itself still drains the disarmed alarm.)
  EXPECT_LT(latency, Duration::Seconds(5));
}

TEST(BatcherTest, StaggeredArrivalsFormMultipleBatches) {
  Experiment exp(ServerOptions{});
  Batcher batcher(exp, "resnet-152", SmallBatches());
  std::vector<sim::Process> procs;
  // 16 producers spread over ~1.5s: several timeout-flushed batches.
  SpawnProducers(exp, batcher, 16, Duration::Millis(100), procs);
  exp.env().Spawn(CloseWhenDone(batcher, std::move(procs)), "supervisor");
  exp.FinishManualRun();
  EXPECT_EQ(batcher.items_served(), 16u);
  EXPECT_GE(batcher.batches_executed(), 2u);
  EXPECT_LE(batcher.batches_executed(), 16u);
}

TEST(BatcherTest, ReportsPerRequestLatency) {
  Experiment exp(ServerOptions{});
  Batcher batcher(exp, "resnet-152", SmallBatches());
  Duration latency;
  auto p = exp.env().Spawn(
      [](Batcher& b, Duration& out) -> Task { co_await b.Infer(&out); }(
          batcher, latency),
      "producer");
  exp.env().Spawn(CloseWhenDone(batcher, {p}), "supervisor");
  exp.FinishManualRun();
  // Latency includes the 20ms timeout wait plus execution.
  EXPECT_GT(latency, Duration::Millis(20));
}

TEST(BatcherTest, WorksUnderOlympianWithInterpolatedProfiles) {
  // The Figure-20 workflow: profiles for the allowed batch sizes come from
  // two measured sizes via linear regression.
  core::Profiler profiler;
  const auto p20 = profiler.ProfileModel("resnet-152", 20);
  const auto p60 = profiler.ProfileModel("resnet-152", 60);
  const auto p4 = core::Profiler::Interpolate(p20, p60, 4);
  const auto p8 = core::Profiler::Interpolate(p20, p60, 8);

  Experiment exp(ServerOptions{});
  core::Scheduler sched(exp.env(), exp.gpu(),
                        std::make_unique<core::FairPolicy>());
  const auto q = Duration::Micros(1200);
  sched.SetProfile(p4.key, &p4.cost, core::Profiler::ThresholdFor(p4, q));
  sched.SetProfile(p8.key, &p8.cost, core::Profiler::ThresholdFor(p8, q));
  exp.SetHooks(&sched);

  Batcher batcher(exp, "resnet-152", SmallBatches());
  std::vector<sim::Process> procs;
  SpawnProducers(exp, batcher, 12, Duration::Millis(5), procs);
  exp.env().Spawn(CloseWhenDone(batcher, std::move(procs)), "supervisor");
  exp.FinishManualRun();
  EXPECT_EQ(batcher.items_served(), 12u);
}

TEST(BatcherTest, RejectsBadOptions) {
  Experiment exp(ServerOptions{});
  Batcher::Options empty;
  empty.allowed_batch_sizes = {};
  EXPECT_THROW(Batcher(exp, "resnet-152", empty), std::invalid_argument);
  Batcher::Options unsorted;
  unsorted.allowed_batch_sizes = {8, 4};
  EXPECT_THROW(Batcher(exp, "resnet-152", unsorted), std::invalid_argument);
}

}  // namespace
}  // namespace olympian::serving

namespace olympian::core {
namespace {

TEST(ProfileStoreTest, RoundTripsExactly) {
  Profiler profiler;
  const ModelProfile original = profiler.ProfileModel("resnet-152", 20);
  std::stringstream ss;
  ProfileStore::Write(original, ss);
  const ModelProfile loaded = ProfileStore::Read(ss);
  EXPECT_EQ(loaded.model, original.model);
  EXPECT_EQ(loaded.batch, original.batch);
  EXPECT_EQ(loaded.key, original.key);
  EXPECT_EQ(loaded.cost.gpu_duration, original.cost.gpu_duration);
  EXPECT_EQ(loaded.cost.solo_runtime, original.cost.solo_runtime);
  ASSERT_EQ(loaded.cost.size(), original.cost.size());
  for (std::size_t i = 0; i < loaded.cost.size(); ++i) {
    EXPECT_EQ(loaded.cost.costs()[i], original.cost.costs()[i]) << i;
  }
  // Thresholds derived from the loaded profile are bit-identical.
  EXPECT_EQ(Profiler::ThresholdFor(loaded, sim::Duration::Micros(1200)),
            Profiler::ThresholdFor(original, sim::Duration::Micros(1200)));
}

TEST(ProfileStoreTest, FileRoundTrip) {
  Profiler profiler;
  const ModelProfile original = profiler.ProfileModel("resnet-152", 20);
  const std::string path = "/tmp/olympian_profile_test.txt";
  ProfileStore::Save(original, path);
  const ModelProfile loaded = ProfileStore::Load(path);
  EXPECT_EQ(loaded.cost.TotalCost(), original.cost.TotalCost());
}

TEST(ProfileStoreTest, RejectsGarbage) {
  std::stringstream not_a_profile("hello world");
  EXPECT_THROW(ProfileStore::Read(not_a_profile), std::invalid_argument);
  std::stringstream bad_version("olympian-profile v99\n");
  EXPECT_THROW(ProfileStore::Read(bad_version), std::invalid_argument);
  std::stringstream truncated(
      "olympian-profile v1\nmodel x\nbatch 2\ngpu_duration_ns 5\n"
      "solo_runtime_ns 9\nnodes 3\n1.0\n");
  EXPECT_THROW(ProfileStore::Read(truncated), std::invalid_argument);
}

TEST(ProfileStoreTest, MissingFileThrows) {
  EXPECT_THROW(ProfileStore::Load("/nonexistent/path/profile.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace olympian::core
