// Tests for the observability subsystem: the labeled metric registry and
// its Prometheus / JSON-timeline exports, the ServingCounters registry
// bridge, SLO report folding, the virtual-clock sampler, and — the
// acceptance scenario — end-to-end causal tracing of one request's
// retry -> failover -> hedge-win chain across device tracks.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "json_reader.h"
#include "metrics/counters.h"
#include "metrics/registry.h"
#include "metrics/slo.h"
#include "metrics/trace.h"
#include "serving/server.h"

namespace olympian {
namespace {

using metrics::MetricRegistry;
using metrics::RequestOutcome;
using metrics::ServingCounters;
using metrics::SloAccumulator;
using metrics::SloReport;
using metrics::Tracer;
using sim::Duration;
using sim::TimePoint;

// ---------------------------------------------------------------------------
// MetricRegistry: Prometheus exposition format

// Splits the exposition text into "name{labels} value" sample lines,
// skipping comments.
std::vector<std::pair<std::string, double>> PromSamples(
    const std::string& text) {
  std::vector<std::pair<std::string, double>> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    EXPECT_NE(sp, std::string::npos) << line;
    out.emplace_back(line.substr(0, sp), std::stod(line.substr(sp + 1)));
  }
  return out;
}

TEST(RegistryTest, PrometheusExpositionShape) {
  MetricRegistry reg;
  reg.GetCounter("olympian_requests_total", {{"model", "resnet"}}).Inc(3);
  reg.GetCounter("olympian_requests_total", {{"model", "googlenet"}}).Inc(5);
  reg.GetGauge("olympian_pool_occupancy").Set(0.5);
  reg.GetSeries("olympian_gpu_utilization", {{"gpu", "0"}})
      .Sample(TimePoint() + Duration::Millis(1), 0.75);

  std::ostringstream os;
  reg.WritePrometheus(os);
  const std::string text = os.str();

  // One TYPE header per family, and label sets render sorted.
  EXPECT_NE(text.find("# TYPE olympian_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("olympian_requests_total{model=\"resnet\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("olympian_requests_total{model=\"googlenet\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("olympian_pool_occupancy 0.5"), std::string::npos);
  // A time series exports its latest sample as a gauge.
  EXPECT_NE(text.find("olympian_gpu_utilization{gpu=\"0\"} 0.75"),
            std::string::npos);
  // Re-exporting is stable: the registry iterates a sorted map.
  std::ostringstream os2;
  reg.WritePrometheus(os2);
  EXPECT_EQ(text, os2.str());
}

TEST(RegistryTest, PrometheusHistogramBucketsAreCumulativeAndEndAtInf) {
  MetricRegistry reg;
  auto& h = reg.GetHistogram("olympian_request_latency_ms");
  const double values[] = {0.5, 2.0, 8.0, 40.0, 40.0, 1e9};
  for (const double v : values) h.Observe(v);

  std::ostringstream os;
  reg.WritePrometheus(os);
  const auto samples = PromSamples(os.str());

  double prev = 0.0;
  double inf_count = -1.0, total_count = -1.0, sum = -1.0;
  for (const auto& [name, value] : samples) {
    if (name.find("_bucket{") != std::string::npos) {
      EXPECT_GE(value, prev) << "bucket counts must be cumulative: " << name;
      prev = value;
      if (name.find("le=\"+Inf\"") != std::string::npos) inf_count = value;
    } else if (name.find("_count") != std::string::npos) {
      total_count = value;
    } else if (name.find("_sum") != std::string::npos) {
      sum = value;
    }
  }
  // The +Inf bucket is the last and equals the total count; the 1e9
  // observation lands in the overflow slot, so this catches a lost tail.
  EXPECT_DOUBLE_EQ(inf_count, 6.0);
  EXPECT_DOUBLE_EQ(total_count, 6.0);
  EXPECT_NEAR(sum, 0.5 + 2.0 + 8.0 + 40.0 + 40.0 + 1e9, 1e-6);
}

TEST(RegistryTest, HistogramQuantilesBracketObservations) {
  MetricRegistry::Histogram h;
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  double prev = 0.0;
  for (const double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, prev) << "quantiles must be monotone";
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    prev = v;
  }
  // Log-bucketed estimate: p50 of 1..100 within a bucket's relative error.
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 50.0 * 0.6);
}

TEST(RegistryTest, JsonTimelineParsesAndRoundTripsPoints) {
  MetricRegistry reg;
  auto& s = reg.GetSeries("olympian_gpu_utilization", {{"gpu", "1"}});
  s.Sample(TimePoint() + Duration::Millis(1), 0.25);
  s.Sample(TimePoint() + Duration::Millis(2), 0.75);
  reg.GetSeries("olympian_pool_occupancy")
      .Sample(TimePoint() + Duration::Millis(1), 0.125);

  std::ostringstream os;
  reg.WriteJsonTimeline(os);
  const testjson::Value doc = testjson::Parse(os.str());
  const auto& series = doc.at("series").AsArray();
  ASSERT_EQ(series.size(), 2u);
  // Map-ordered: gpu_utilization before pool_occupancy.
  EXPECT_EQ(series[0].at("name").AsString(), "olympian_gpu_utilization");
  EXPECT_EQ(series[0].at("labels").at("gpu").AsString(), "1");
  const auto& points = series[0].at("points").AsArray();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].AsArray()[0].AsNumber(), 1e6);  // t_ns
  EXPECT_DOUBLE_EQ(points[0].AsArray()[1].AsNumber(), 0.25);
  EXPECT_DOUBLE_EQ(points[1].AsArray()[1].AsNumber(), 0.75);
  EXPECT_TRUE(series[1].at("labels").AsObject().empty());
}

// ---------------------------------------------------------------------------
// ServingCounters: deterministic Print and the registry bridge

TEST(ServingCountersTest, PrintIsDeterministicAndFollowsFieldOrder) {
  ServingCounters c;
  c.hedge_wins = 3;              // declared late
  c.kernel_failures_injected = 1;  // declared first
  c.requests_ok = 2;

  std::ostringstream a, b;
  c.Print(a);
  c.Print(b);
  EXPECT_EQ(a.str(), b.str());
  // Rows come out in Fields() declaration order regardless of assignment
  // order, and zero-valued counters are omitted.
  EXPECT_EQ(a.str(),
            "  kernel_failures_injected 1\n"
            "  requests_ok 2\n"
            "  hedge_wins 3\n");
}

TEST(ServingCountersTest, FieldsTableCoversEveryCounterExactlyOnce) {
  // The table is the single source of truth shared by Print, ExportTo, and
  // these tests; a field added to the struct but not the table would make
  // the bridge silently incomplete. Guard with a size check against the
  // struct layout.
  EXPECT_EQ(ServingCounters::Fields().size(),
            sizeof(ServingCounters) / sizeof(std::uint64_t));
  std::set<std::string> names;
  for (const auto& f : ServingCounters::Fields()) names.insert(f.name);
  EXPECT_EQ(names.size(), ServingCounters::Fields().size());
}

TEST(ServingCountersTest, RegistryBridgeIsIdempotent) {
  ServingCounters c;
  c.requests_ok = 7;
  c.retries = 2;

  MetricRegistry reg;
  c.ExportTo(reg);
  c.ExportTo(reg);  // periodic re-export must not double-count
  const auto* ok = reg.FindCounter("olympian_requests_ok_total");
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->value(), 7u);
  const auto* retries = reg.FindCounter("olympian_retries_total");
  ASSERT_NE(retries, nullptr);
  EXPECT_EQ(retries->value(), 2u);
  // Every field is bridged, zero or not.
  EXPECT_EQ(reg.Counters().size(), ServingCounters::Fields().size());
}

// ---------------------------------------------------------------------------
// SLO report folding

TEST(SloTest, ReportFoldsOutcomesAndLatencies) {
  SloAccumulator acc;
  for (int i = 0; i < 96; ++i) {
    acc.Add("resnet", 10.0 + static_cast<double>(i % 5), RequestOutcome::kSuccess);
  }
  acc.Add("resnet", 50.0, RequestOutcome::kRetriedSuccess);
  acc.Add("resnet", 0.0, RequestOutcome::kTimedOut);
  acc.Add("resnet", 0.0, RequestOutcome::kRejected);
  acc.Add("resnet", 0.0, RequestOutcome::kFailed);
  acc.Add("googlenet", 5.0, RequestOutcome::kSuccess);

  const SloReport r = acc.Report(/*window_seconds=*/10.0);
  EXPECT_EQ(r.total, 101u);
  EXPECT_EQ(r.succeeded, 98u);  // 96 clean + 1 retried + googlenet
  EXPECT_EQ(r.retried_ok, 1u);
  EXPECT_EQ(r.timed_out, 1u);
  EXPECT_EQ(r.rejected, 1u);
  EXPECT_EQ(r.failed, 1u);
  EXPECT_NEAR(r.availability, 98.0 / 101.0, 1e-12);
  // Burn against the default three-nines target.
  EXPECT_NEAR(r.error_budget_burn,
              (1.0 - 98.0 / 101.0) / (1.0 - r.availability_target), 1e-9);
  EXPECT_NEAR(r.goodput_rps, 98.0 / 10.0, 1e-12);
  // Latency statistics cover successes only: the retried request's 50ms is
  // in-population, the failures' 0ms placeholders are not.
  EXPECT_GT(r.p50_ms, 5.0);
  EXPECT_LE(r.p50_ms, 14.0);
  EXPECT_DOUBLE_EQ(r.max_ms, 50.0);
  EXPECT_GE(r.p99_ms, r.p95_ms);
  EXPECT_GE(r.p95_ms, r.p50_ms);
  // Per-model rows sorted by name.
  ASSERT_EQ(r.per_model.size(), 2u);
  EXPECT_EQ(r.per_model[0].model, "googlenet");
  EXPECT_EQ(r.per_model[1].model, "resnet");
  EXPECT_EQ(r.per_model[1].total, 100u);
}

TEST(SloTest, MergePoolsObservations) {
  SloAccumulator a, b, direct;
  a.Add("m", 10.0, RequestOutcome::kSuccess);
  b.Add("m", 30.0, RequestOutcome::kSuccess);
  b.Add("n", 0.0, RequestOutcome::kFailed);
  direct.Add("m", 10.0, RequestOutcome::kSuccess);
  direct.Add("m", 30.0, RequestOutcome::kSuccess);
  direct.Add("n", 0.0, RequestOutcome::kFailed);

  a.Merge(b);
  const SloReport merged = a.Report(5.0);
  const SloReport want = direct.Report(5.0);
  EXPECT_EQ(merged.total, want.total);
  EXPECT_EQ(merged.succeeded, want.succeeded);
  EXPECT_DOUBLE_EQ(merged.availability, want.availability);
  EXPECT_DOUBLE_EQ(merged.p50_ms, want.p50_ms);
  EXPECT_DOUBLE_EQ(merged.max_ms, want.max_ms);
  ASSERT_EQ(merged.per_model.size(), want.per_model.size());
}

TEST(SloTest, EmptyAccumulatorReportsPerfectAvailability) {
  const SloReport r = SloAccumulator().Report(1.0);
  EXPECT_EQ(r.total, 0u);
  EXPECT_DOUBLE_EQ(r.availability, 1.0);
  EXPECT_DOUBLE_EQ(r.error_budget_burn, 0.0);
}

// ---------------------------------------------------------------------------
// Sampler integration: a live serving run populates the registry

TEST(ObservabilityTest, SamplerPopulatesSeriesHistogramAndCounters) {
  MetricRegistry reg;
  serving::ServerOptions opts;
  opts.num_gpus = 2;
  opts.observability.registry = &reg;
  opts.observability.sample_interval = Duration::Millis(20);
  serving::Experiment exp(opts);
  const auto results = exp.Run(
      {serving::ClientSpec{.model = "resnet-152", .batch = 20, .num_batches = 2},
       serving::ClientSpec{.model = "googlenet", .batch = 20, .num_batches = 2}});

  // Per-device series exist and carry samples on the virtual clock.
  for (const char* gpu : {"0", "1"}) {
    const auto* util =
        reg.FindSeries("olympian_gpu_utilization", {{"gpu", gpu}});
    ASSERT_NE(util, nullptr) << "gpu " << gpu;
    EXPECT_FALSE(util->empty());
    EXPECT_NE(reg.FindSeries("olympian_gpu_pending_kernels", {{"gpu", gpu}}),
              nullptr);
  }
  const auto* occ = reg.FindSeries("olympian_pool_occupancy");
  ASSERT_NE(occ, nullptr);
  ASSERT_FALSE(occ->empty());
  // Samples are timestamped within the run and ordered.
  std::int64_t prev = -1;
  for (const auto& [t_ns, v] : occ->points()) {
    EXPECT_GT(t_ns, prev);
    prev = t_ns;
    EXPECT_GE(v, 0.0);
  }
  // The final tick can land up to one interval past the last client's
  // finish (the stop condition is checked before each sleep).
  EXPECT_LE(prev, exp.makespan().nanos() + Duration::Millis(20).nanos());

  // Request latencies flow into the labeled histogram...
  const auto* h = reg.FindHistogram("olympian_request_latency_ms",
                                    {{"model", "resnet-152"}});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  // ...and the final counter bridge ran.
  const auto* ok = reg.FindCounter("olympian_requests_ok_total");
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(ok->value(), exp.counters().requests_ok);
  EXPECT_EQ(ok->value(), 4u);
}

TEST(ObservabilityTest, DisabledObservabilityTouchesNoRegistry) {
  serving::ServerOptions opts;
  serving::Experiment exp(opts);
  exp.Run({serving::ClientSpec{
      .model = "googlenet", .batch = 20, .num_batches = 1}});
  // Nothing to assert on a null registry beyond "it ran"; the golden
  // determinism suite asserts the stronger bit-identical property.
  EXPECT_GT(exp.counters().requests_ok, 0u);
}

// ---------------------------------------------------------------------------
// Acceptance: one request's retry -> failover -> hedge-win chain is a
// single flow across >= 2 device tracks, in the raw events and in the
// exported Chrome JSON.

TimePoint At(double ms) { return TimePoint() + Duration::Millis(ms); }

struct FlowHop {
  char ph;
  std::int64_t track;
  std::int64_t ts_ns;
  const char* name;
};

TEST(ObservabilityTest, HedgeWinChainConnectsDeviceTracks) {
  // The staging from FailoverTest.HedgeWinAdoptedWhenPrimaryDiesMidKernel:
  // a kernel failure pushes a retry into a hang window (degraded routing +
  // hedge on the healthy peer), then the primary device resets mid-kernel
  // and the hedge's result is adopted.
  Tracer tracer(400000);
  metrics::MetricRegistry reg;
  serving::ServerOptions opts;
  opts.num_gpus = 2;
  opts.failover.enabled = true;
  opts.executor.tracer = &tracer;
  opts.observability.registry = &reg;
  opts.observability.sample_interval = Duration::Millis(50);
  opts.faults.KernelFailure(At(595), /*stream=*/1, /*gpu_index=*/0);
  opts.faults.DeviceHang(At(600), Duration::Millis(300), /*gpu_index=*/0);
  opts.faults.DeviceReset(At(650), Duration::Seconds(100), /*gpu_index=*/0);
  opts.failover.health.hang_down_after = Duration::Seconds(10);
  opts.failover.hedge_when_degraded = true;
  opts.failover.hedge_delay = Duration::Millis(1);
  opts.degradation.retry.base_backoff = Duration::Millis(10);
  serving::Experiment exp(opts);
  const auto results = exp.Run(
      {serving::ClientSpec{.model = "resnet-152", .batch = 20, .num_batches = 10},
       serving::ClientSpec{.model = "googlenet", .batch = 20, .num_batches = 10}});
  // The staged request retried (kernel failure) and its hedge won (the
  // primary's death mid-kernel was absorbed, so no re-admission shows up
  // in requests_failed_over).
  ASSERT_GE(exp.counters().hedge_wins, 1u);
  ASSERT_GE(exp.counters().retries, 1u);
  ASSERT_GE(exp.counters().device_down_events, 1u);

  // Track (= JobContext::job) -> device, via the contexts the run created.
  std::map<std::int64_t, std::size_t> track_gpu;
  for (const auto& ctx : exp.job_contexts()) {
    track_gpu[static_cast<std::int64_t>(ctx->job)] =
        static_cast<std::size_t>(ctx->gpu_index);
  }

  // Group flow hops by flow id (= request id).
  std::map<std::uint64_t, std::vector<FlowHop>> flows;
  for (const auto& e : tracer.events()) {
    if (e.ph == 's' || e.ph == 't' || e.ph == 'f') {
      ASSERT_EQ(std::string_view(e.category), "request");
      flows[e.flow].push_back(FlowHop{e.ph, e.track, e.start_ns, e.name});
    }
  }
  ASSERT_FALSE(flows.empty());

  // Requests that hedged: the rids of "hedge-req-" attempt spans. (Plain
  // failover re-admissions also cross device tracks; the acceptance chain
  // must additionally contain the speculative leg.)
  std::set<std::uint64_t> hedged_rids;
  for (const auto& e : tracer.events()) {
    if (e.ph == 'X' && std::string_view(e.category) == "attempt" &&
        std::string_view(e.name) == "hedge-req-") {
      hedged_rids.insert(static_cast<std::uint64_t>(e.number));
    }
  }
  ASSERT_FALSE(hedged_rids.empty());

  // Find the hedge chain: a flow whose hops span >= 2 devices and whose
  // request hedged.
  std::uint64_t chain_id = 0;
  for (auto& [id, hops] : flows) {
    if (hedged_rids.count(id) == 0) continue;
    std::set<std::size_t> gpus;
    for (const auto& h : hops) {
      const auto it = track_gpu.find(h.track);
      ASSERT_NE(it, track_gpu.end()) << "flow hop on unknown track";
      gpus.insert(it->second);
    }
    if (gpus.size() >= 2) {
      chain_id = id;
      break;
    }
  }
  ASSERT_NE(chain_id, 0u) << "no hedged flow crossed device tracks";

  // The chain is well-formed: begins once, ends once, steps in between,
  // monotone in virtual time.
  const auto& hops = flows[chain_id];
  ASSERT_GE(hops.size(), 3u);
  EXPECT_EQ(hops.front().ph, 's');
  EXPECT_EQ(hops.back().ph, 'f');
  for (std::size_t i = 1; i + 1 < hops.size(); ++i) {
    EXPECT_EQ(hops[i].ph, 't');
    EXPECT_GE(hops[i].ts_ns, hops[i - 1].ts_ns);
  }

  // Every admission hop coincides with the start of an "attempt" span on
  // the same track — the binding Perfetto uses to attach the arrows — and
  // at least one of those spans is the hedge's speculative leg on a
  // different device than the chain's origin.
  const std::size_t origin_gpu = track_gpu.at(hops.front().track);
  bool hedge_leg_elsewhere = false;
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {  // all but the 'f'
    bool bound = false;
    for (const auto& e : tracer.events()) {
      if (e.ph != 'X' || std::string_view(e.category) != "attempt") continue;
      if (e.track == hops[i].track && e.start_ns == hops[i].ts_ns) {
        bound = true;
        if (std::string_view(e.name) == "hedge-req-" &&
            track_gpu.at(e.track) != origin_gpu) {
          hedge_leg_elsewhere = true;
        }
      }
    }
    EXPECT_TRUE(bound) << "flow hop " << i << " has no enclosing attempt span";
  }
  EXPECT_TRUE(hedge_leg_elsewhere)
      << "chain never reached a hedge attempt on another device";

  // The same chain survives the Chrome-trace export: parse the full JSON
  // with the strict reader and re-derive the multi-device flow.
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const testjson::Value doc = testjson::Parse(os.str());
  std::set<double> tids;
  int begins = 0, ends = 0;
  const std::string want_id = std::to_string(chain_id);
  for (const auto& e : doc.AsArray()) {
    const std::string& ph = e.at("ph").AsString();
    if (ph != "s" && ph != "t" && ph != "f") continue;
    if (e.at("id").AsString() != want_id) continue;
    tids.insert(e.at("tid").AsNumber());
    if (ph == "s") ++begins;
    if (ph == "f") {
      ++ends;
      EXPECT_EQ(e.at("bp").AsString(), "e");
    }
  }
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
  EXPECT_GE(tids.size(), 2u) << "exported flow does not cross device tracks";

  // And the registry saw the same story: device 0 went down, the breaker /
  // health series sampled it, and the hedge counters bridged.
  const auto* hedge_wins = reg.FindCounter("olympian_hedge_wins_total");
  ASSERT_NE(hedge_wins, nullptr);
  EXPECT_EQ(hedge_wins->value(), exp.counters().hedge_wins);
  const auto* health0 = reg.FindSeries("olympian_device_health", {{"gpu", "0"}});
  ASSERT_NE(health0, nullptr);
  const bool saw_unhealthy =
      std::any_of(health0->points().begin(), health0->points().end(),
                  [](const auto& p) { return p.second != 0.0; });
  EXPECT_TRUE(saw_unhealthy) << "health series never left kHealthy";
}

TEST(ObservabilityTest, FlowHopsCarryCancelReasonDetails) {
  // A device loss mid-run: victims re-admit on the survivor, so their flow
  // chains carry a kStep annotated "failover", and every flow terminates
  // with an explicit outcome reason on its kEnd hop.
  Tracer tracer(400000);
  serving::ServerOptions opts;
  opts.num_gpus = 2;
  opts.failover.enabled = true;
  opts.executor.tracer = &tracer;
  opts.faults.DeviceReset(At(600), Duration::Seconds(100), /*gpu_index=*/0);
  serving::Experiment exp(opts);
  const auto results = exp.Run(
      {serving::ClientSpec{.model = "resnet-152", .batch = 20,
                           .num_batches = 8},
       serving::ClientSpec{.model = "googlenet", .batch = 20,
                           .num_batches = 8}});
  ASSERT_GE(exp.counters().requests_failed_over, 1u);

  int begins = 0, ends = 0, failover_steps = 0, ok_ends = 0;
  for (const auto& e : tracer.events()) {
    if (e.ph == 's') {
      ++begins;
      // The first admission needs no reason; nothing went wrong yet.
      EXPECT_EQ(e.detail, nullptr);
    } else if (e.ph == 't') {
      ASSERT_NE(e.detail, nullptr) << "flow step without a reason";
      if (std::string_view(e.detail) == "failover") ++failover_steps;
    } else if (e.ph == 'f') {
      ++ends;
      ASSERT_NE(e.detail, nullptr) << "flow end without an outcome";
      if (std::string_view(e.detail) == "ok") ++ok_ends;
    }
  }
  EXPECT_EQ(begins, 16);  // one flow per request
  EXPECT_EQ(ends, 16);    // every flow terminates with an outcome
  EXPECT_GE(failover_steps, 1) << "no re-admission hop was annotated";
  EXPECT_GE(ok_ends, 1);

  // The annotation survives the Chrome export as args:{"reason":...}.
  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const testjson::Value doc = testjson::Parse(os.str());
  int exported = 0;
  for (const auto& e : doc.AsArray()) {
    const std::string& ph = e.at("ph").AsString();
    if (ph != "t" && ph != "f") continue;
    if (e.contains("args") && e.at("args").contains("reason") &&
        e.at("args").at("reason").AsString() == "failover") {
      ++exported;
    }
  }
  EXPECT_GE(exported, 1) << "no exported hop carries the failover reason";
}

}  // namespace
}  // namespace olympian
