// Tests for the fault-injection subsystem (fault/) and the serving stack's
// graceful degradation: deadlines, retries, circuit breaking, and the
// determinism guarantee under injected faults.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "core/scheduler.h"
#include "fault/fault.h"
#include "gpusim/gpu.h"
#include "serving/degradation.h"
#include "serving/server.h"
#include "sim/environment.h"

namespace olympian {
namespace {

using sim::Duration;
using sim::Environment;
using sim::Task;
using sim::TimePoint;

TimePoint At(double ms) { return TimePoint() + Duration::Millis(ms); }

// ---------------------------------------------------------------------------
// FaultPlan

TEST(FaultPlanTest, FluentBuilderRecordsEvents) {
  fault::FaultPlan plan;
  plan.KernelFailure(At(1), /*stream=*/0)
      .DeviceHang(At(2), Duration::Millis(5))
      .DeviceReset(At(3))
      .AllocFault(At(4), Duration::Millis(2));
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan.events()[0].kind, fault::FaultKind::kKernelFailure);
  EXPECT_EQ(plan.events()[1].kind, fault::FaultKind::kDeviceHang);
  EXPECT_EQ(plan.events()[2].kind, fault::FaultKind::kDeviceReset);
  EXPECT_EQ(plan.events()[3].kind, fault::FaultKind::kAllocFault);
  EXPECT_EQ(plan.events()[1].duration, Duration::Millis(5));
}

TEST(FaultPlanTest, RandomIsDeterministicInSeed) {
  fault::FaultPlan::RandomOptions opts;
  opts.expected_kernel_failures = 4.0;
  opts.expected_hangs = 2.0;
  opts.expected_resets = 1.0;
  opts.expected_alloc_faults = 2.0;
  const auto a = fault::FaultPlan::Random(opts, 42);
  const auto b = fault::FaultPlan::Random(opts, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].gpu_index, b.events()[i].gpu_index);
    EXPECT_EQ(a.events()[i].stream, b.events()[i].stream);
    EXPECT_EQ(a.events()[i].duration, b.events()[i].duration);
  }
  const auto c = fault::FaultPlan::Random(opts, 43);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a.events()[i].at != c.events()[i].at;
  }
  EXPECT_TRUE(differs);
}

// Satellite regression: kinds draw from the shared stream in a fixed order
// (kernel failures, hangs, resets, alloc faults), so raising a *later*
// kind's expectation must not perturb any earlier kind's draws. This is
// what lets a study add reset outages to an existing plan without moving
// the kernel-failure schedule it was calibrated against.
TEST(FaultPlanTest, LaterKindExpectationsDoNotPerturbEarlierDraws) {
  fault::FaultPlan::RandomOptions base;
  base.expected_kernel_failures = 4.0;
  base.expected_hangs = 2.0;
  base.mean_hang = Duration::Millis(3);

  fault::FaultPlan::RandomOptions extended = base;
  extended.expected_resets = 2.0;
  extended.mean_reset_outage = Duration::Millis(50);
  extended.expected_alloc_faults = 1.0;

  const auto a = fault::FaultPlan::Random(base, 42);
  const auto b = fault::FaultPlan::Random(extended, 42);
  auto of_kind = [](const fault::FaultPlan& p, fault::FaultKind k) {
    std::vector<fault::FaultEvent> out;
    for (const auto& e : p.events()) {
      if (e.kind == k) out.push_back(e);
    }
    return out;
  };
  for (const auto kind :
       {fault::FaultKind::kKernelFailure, fault::FaultKind::kDeviceHang}) {
    const auto ea = of_kind(a, kind);
    const auto eb = of_kind(b, kind);
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
      EXPECT_EQ(ea[i].at, eb[i].at);
      EXPECT_EQ(ea[i].gpu_index, eb[i].gpu_index);
      EXPECT_EQ(ea[i].stream, eb[i].stream);
      EXPECT_EQ(ea[i].duration, eb[i].duration);
    }
  }
  // The new knob actually took effect: resets carry an outage duration.
  const auto resets = of_kind(b, fault::FaultKind::kDeviceReset);
  for (const auto& e : resets) EXPECT_GT(e.duration, Duration::Zero());
}

// mean_reset_outage defaults to zero and zero draws nothing extra from the
// rng: plans built before the knob existed reproduce bit-for-bit, with
// instantaneous (zero-outage) resets.
TEST(FaultPlanTest, ZeroMeanResetOutageDrawsInstantResets) {
  fault::FaultPlan::RandomOptions opts;
  opts.expected_resets = 3.0;
  opts.expected_alloc_faults = 2.0;
  const auto plan = fault::FaultPlan::Random(opts, 11);
  for (const auto& e : plan.events()) {
    if (e.kind == fault::FaultKind::kDeviceReset) {
      EXPECT_EQ(e.duration, Duration::Zero());
    }
  }
}

TEST(FaultPlanTest, RandomEventsAreTimeSorted) {
  fault::FaultPlan::RandomOptions opts;
  opts.expected_kernel_failures = 6.0;
  opts.expected_hangs = 6.0;
  const auto plan = fault::FaultPlan::Random(opts, 7);
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan.events()[i - 1].at, plan.events()[i].at);
  }
}

// ---------------------------------------------------------------------------
// Device-level fault semantics

gpusim::Gpu::Options TestGpu() {
  gpusim::Gpu::Options o;
  o.spec = gpusim::GpuSpec{.name = "test",
                           .num_sms = 8,
                           .max_blocks_per_sm = 1,
                           .clock_scale = 1.0,
                           .memory_mb = 1000};
  o.clock_noise_sigma = 0.0;
  o.arbitration_bias_sigma = 0.0;
  o.seed = 1;
  return o;
}

Task SubmitOne(gpusim::Gpu& gpu, Environment& env, gpusim::StreamId s,
               TimePoint& done, bool& failed) {
  try {
    co_await gpu.Submit(s, gpusim::KernelDesc{.job = 0, .node_id = 1,
                                              .thread_blocks = 4,
                                              .block_work = Duration::Micros(10)});
  } catch (const gpusim::KernelFailed&) {
    failed = true;
  }
  done = env.Now();
}

TEST(GpuFaultTest, InjectedKernelFailureThrowsAtAwait) {
  Environment env;
  gpusim::Gpu gpu(env, TestGpu());
  const auto s = gpu.CreateStream();
  gpu.InjectKernelFailure(s);
  TimePoint done;
  bool failed = false;
  env.Spawn(SubmitOne(gpu, env, s, done, failed));
  env.Run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(gpu.kernels_failed(), 1u);
  EXPECT_EQ(gpu.kernels_completed(), 0u);
}

TEST(GpuFaultTest, HangDelaysDispatchUntilRecovery) {
  Environment env;
  gpusim::Gpu gpu(env, TestGpu());
  const auto s = gpu.CreateStream();
  gpu.Hang(Duration::Millis(3));
  EXPECT_TRUE(gpu.hung());
  TimePoint done;
  bool failed = false;
  env.Spawn(SubmitOne(gpu, env, s, done, failed));
  env.Run();
  EXPECT_FALSE(failed);
  // The 10us kernel could not start before the hang lifted at t=3ms.
  EXPECT_EQ(done, At(3) + Duration::Micros(10));
  EXPECT_FALSE(gpu.hung());
}

TEST(GpuFaultTest, ResetFailsQueuedKernelsImmediately) {
  Environment env;
  gpusim::Gpu gpu(env, TestGpu());
  const auto s1 = gpu.CreateStream();
  const auto s2 = gpu.CreateStream();
  gpu.Hang(Duration::Seconds(100));  // keep both kernels queued
  TimePoint d1, d2;
  bool f1 = false, f2 = false;
  env.Spawn(SubmitOne(gpu, env, s1, d1, f1));
  env.Spawn(SubmitOne(gpu, env, s2, d2, f2));
  env.ScheduleCallbackAt(
      At(1), [](void* ctx, std::uint64_t) { static_cast<gpusim::Gpu*>(ctx)->Reset(); },
      &gpu, 0);
  env.Run();
  EXPECT_TRUE(f1);
  EXPECT_TRUE(f2);
  EXPECT_EQ(d1, At(1));  // failed at the reset instant, not after the hang
  EXPECT_EQ(d2, At(1));
  EXPECT_EQ(gpu.kernels_failed(), 2u);
  EXPECT_EQ(gpu.resets(), 1u);
  EXPECT_FALSE(gpu.hung());  // reset clears the hang
}

TEST(GpuFaultTest, AllocFaultWindowFailsAllocationsTransiently) {
  Environment env;
  gpusim::Gpu gpu(env, TestGpu());
  gpu.InjectAllocFault(Duration::Millis(2));
  EXPECT_TRUE(gpu.alloc_fault_active());
  EXPECT_THROW(gpu.AllocateMemory(0, 10), gpusim::TransientAllocFailure);
  auto after = [](Environment& env, gpusim::Gpu& gpu) -> Task {
    co_await env.Delay(Duration::Millis(3));
    gpu.AllocateMemory(0, 10);  // window over: succeeds
  };
  env.Spawn(after(env, gpu));
  env.Run();
  EXPECT_FALSE(gpu.alloc_fault_active());
}

// ---------------------------------------------------------------------------
// Degradation primitives

TEST(RetryPolicyTest, BackoffGrowsExponentially) {
  serving::RetryPolicy p;
  p.base_backoff = Duration::Millis(2);
  p.multiplier = 2.0;
  EXPECT_EQ(p.BackoffFor(1), Duration::Millis(2));
  EXPECT_EQ(p.BackoffFor(2), Duration::Millis(4));
  EXPECT_EQ(p.BackoffFor(3), Duration::Millis(8));
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailuresAndRecovers) {
  serving::CircuitBreakerOptions opts;
  opts.failure_threshold = 3;
  opts.cooldown = Duration::Millis(10);
  serving::CircuitBreaker b(opts);

  EXPECT_TRUE(b.AllowRequest(At(0)));
  EXPECT_FALSE(b.OnFailure(At(0)));
  EXPECT_FALSE(b.OnFailure(At(0)));
  EXPECT_TRUE(b.OnFailure(At(0)));  // third consecutive failure trips it
  EXPECT_EQ(b.state(), serving::CircuitBreaker::State::kOpen);
  EXPECT_EQ(b.opens(), 1u);
  EXPECT_FALSE(b.AllowRequest(At(5)));  // still cooling down

  EXPECT_TRUE(b.AllowRequest(At(11)));  // half-open: one trial admitted
  EXPECT_EQ(b.state(), serving::CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(b.AllowRequest(At(11)));  // second concurrent trial refused
  b.OnSuccess();
  EXPECT_EQ(b.state(), serving::CircuitBreaker::State::kClosed);
  EXPECT_TRUE(b.AllowRequest(At(12)));
}

TEST(CircuitBreakerTest, FailedTrialReopensImmediately) {
  serving::CircuitBreakerOptions opts;
  opts.failure_threshold = 1;
  opts.cooldown = Duration::Millis(10);
  serving::CircuitBreaker b(opts);
  b.OnFailure(At(0));
  ASSERT_EQ(b.state(), serving::CircuitBreaker::State::kOpen);
  ASSERT_TRUE(b.AllowRequest(At(11)));  // trial
  EXPECT_TRUE(b.OnFailure(At(11)));     // trial failed -> reopen counts
  EXPECT_EQ(b.state(), serving::CircuitBreaker::State::kOpen);
  EXPECT_FALSE(b.AllowRequest(At(12)));
  EXPECT_EQ(b.opens(), 2u);
}

// Satellite: half-open edge coverage. A failed trial restarts the cooldown
// from the failure instant, and after a full second cooldown a successful
// trial closes the breaker and clears the failure streak.
TEST(CircuitBreakerTest, HalfOpenCooldownRestartsAfterFailedTrial) {
  serving::CircuitBreakerOptions opts;
  opts.failure_threshold = 2;
  opts.cooldown = Duration::Millis(10);
  serving::CircuitBreaker b(opts);
  b.OnFailure(At(0));
  b.OnFailure(At(0));
  ASSERT_EQ(b.state(), serving::CircuitBreaker::State::kOpen);

  ASSERT_TRUE(b.AllowRequest(At(11)));  // first trial
  EXPECT_TRUE(b.OnFailure(At(11)));     // fails -> reopen
  // The new cooldown runs from t=11, not t=0: t=15 is still closed off.
  EXPECT_FALSE(b.AllowRequest(At(15)));
  ASSERT_TRUE(b.AllowRequest(At(22)));  // second trial after full cooldown
  EXPECT_EQ(b.state(), serving::CircuitBreaker::State::kHalfOpen);
  b.OnSuccess();
  EXPECT_EQ(b.state(), serving::CircuitBreaker::State::kClosed);
  // The streak reset with the successful trial: one new failure does not
  // re-trip a threshold-2 breaker.
  EXPECT_FALSE(b.OnFailure(At(23)));
  EXPECT_EQ(b.state(), serving::CircuitBreaker::State::kClosed);
  EXPECT_EQ(b.opens(), 2u);
}

TEST(CircuitBreakerTest, DisabledBreakerNeverTrips) {
  serving::CircuitBreaker b(serving::CircuitBreakerOptions{});  // threshold 0
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(b.OnFailure(At(i)));
  EXPECT_TRUE(b.AllowRequest(At(20)));
  EXPECT_EQ(b.opens(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end serving behaviour

serving::ClientSpec Client(int batch = 20, int batches = 2) {
  return serving::ClientSpec{
      .model = "resnet-152", .batch = batch, .num_batches = batches};
}

TEST(ServingFaultTest, KernelFailureIsRetriedToSuccess) {
  serving::ServerOptions opts;
  opts.faults.KernelFailure(At(1), /*stream=*/0);
  serving::Experiment exp(opts);
  auto results = exp.Run({Client(20, 2)});
  EXPECT_EQ(results[0].batches_completed, 2);
  EXPECT_EQ(results[0].CountStatus(serving::RequestStatus::kFailedRetried), 1);
  EXPECT_EQ(results[0].CountStatus(serving::RequestStatus::kOk), 1);
  const auto& c = exp.counters();
  EXPECT_EQ(c.kernel_failures_injected, 1u);
  EXPECT_EQ(c.kernel_failures_observed, 1u);
  EXPECT_EQ(c.retries, 1u);
  EXPECT_EQ(c.requests_retried_ok, 1u);
  EXPECT_EQ(c.requests_total(), 2u);
}

TEST(ServingFaultTest, RetryBudgetExhaustionFailsRequest) {
  serving::ServerOptions opts;
  opts.degradation.retry.max_retries = 0;  // fail fast
  opts.faults.KernelFailure(At(1), /*stream=*/0);
  serving::Experiment exp(opts);
  auto results = exp.Run({Client(20, 2)});
  EXPECT_EQ(results[0].batches_completed, 1);
  EXPECT_EQ(results[0].CountStatus(serving::RequestStatus::kFailed), 1);
  EXPECT_EQ(exp.counters().requests_failed, 1u);
  EXPECT_EQ(exp.counters().retries, 0u);
}

TEST(ServingFaultTest, AllocFaultWindowIsRiddenOutByBackoff) {
  serving::ServerOptions opts;
  // Window covers the first attempt and the first retry; the second retry's
  // cumulative backoff (>= 4.8ms at jitter 0.2) lands beyond it.
  opts.faults.AllocFault(At(0), Duration::Millis(3));
  serving::Experiment exp(opts);
  auto results = exp.Run({Client(20, 2)});
  EXPECT_EQ(results[0].batches_completed, 2);
  EXPECT_EQ(results[0].CountStatus(serving::RequestStatus::kFailedRetried), 1);
  EXPECT_GE(exp.counters().transient_alloc_failures, 1u);
  EXPECT_EQ(exp.counters().alloc_fault_windows, 1u);
}

TEST(ServingFaultTest, DeadlineCancelsOverrunningRequests) {
  serving::ServerOptions opts;
  serving::ClientSpec spec = Client(100, 2);
  spec.deadline = Duration::Millis(2);  // far below the request's runtime
  serving::Experiment exp(opts);
  auto results = exp.Run({spec});  // completes: no stall, no throw
  EXPECT_EQ(results[0].batches_completed, 0);
  EXPECT_EQ(results[0].CountStatus(serving::RequestStatus::kTimedOut), 2);
  const auto& c = exp.counters();
  EXPECT_EQ(c.requests_timed_out, 2u);
  EXPECT_GE(c.deadline_cancellations, 1u);
}

TEST(ServingFaultTest, GenerousDeadlineDoesNotPerturbResults) {
  serving::ServerOptions opts;
  serving::Experiment plain(opts);
  auto r_plain = plain.Run({Client()});

  serving::ClientSpec spec = Client();
  spec.deadline = Duration::Seconds(1000);
  serving::ServerOptions opts2;
  serving::Experiment with_deadline(opts2);
  auto r_dl = with_deadline.Run({spec});

  EXPECT_EQ(r_plain[0].finish_time, r_dl[0].finish_time);
  EXPECT_EQ(r_plain[0].gpu_duration, r_dl[0].gpu_duration);
  EXPECT_EQ(r_dl[0].CountStatus(serving::RequestStatus::kOk), 2);
}

// Satellite: the determinism regression. A run with a fault plan and a run
// without one, each executed twice with the same seed, must reproduce their
// ClientResults bit-for-bit; the faulty and fault-free runs must differ.
TEST(ServingFaultTest, SameSeedSameFaultPlanReproducesBitForBit) {
  const auto plan = [] {
    fault::FaultPlan::RandomOptions ro;
    ro.horizon = Duration::Millis(40);
    ro.expected_kernel_failures = 2.0;
    ro.expected_hangs = 1.0;
    ro.mean_hang = Duration::Millis(2);
    ro.expected_alloc_faults = 1.0;
    return fault::FaultPlan::Random(ro, 2024);
  }();

  auto run = [&](bool with_faults) {
    serving::ServerOptions opts;
    opts.seed = 77;
    if (with_faults) opts.faults = plan;
    serving::Experiment exp(opts);
    return exp.Run({Client(20, 3), Client(20, 3)});
  };

  for (const bool with_faults : {false, true}) {
    const auto a = run(with_faults);
    const auto b = run(with_faults);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].finish_time, b[i].finish_time);
      EXPECT_EQ(a[i].gpu_duration, b[i].gpu_duration);
      EXPECT_EQ(a[i].batches_completed, b[i].batches_completed);
      ASSERT_EQ(a[i].request_latency_ms, b[i].request_latency_ms);
      ASSERT_EQ(a[i].request_status, b[i].request_status);
    }
  }
  // And the plan actually changed the execution.
  if (!plan.empty()) {
    EXPECT_NE(run(false)[0].finish_time, run(true)[0].finish_time);
  }
}

// Acceptance scenario: a mid-run device hang under the Olympian scheduler
// with request deadlines. The workload must complete deterministically —
// no ServerStalled — with the hit requests timing out or retrying.
TEST(ServingFaultTest, HangWithDeadlinesDegradesGracefullyUnderOlympian) {
  auto run = [] {
    serving::ServerOptions opts;
    // Healthy requests take ~500ms each (two resnet-152@20 clients sharing
    // the device); a 2s hang starting mid-request blows their 1.2s deadline.
    opts.faults.DeviceHang(At(200), Duration::Millis(2000));
    serving::Experiment exp(opts);
    core::Profiler profiler;
    auto profile = profiler.ProfileModel("resnet-152", 20);
    core::Scheduler sched(exp.env(), exp.gpu(),
                          std::make_unique<core::FairPolicy>());
    sched.SetProfile(
        profile.key, &profile.cost,
        core::Profiler::ThresholdFor(profile, Duration::Micros(500)));
    exp.SetHooks(&sched);
    serving::ClientSpec spec = Client(20, 4);
    spec.deadline = Duration::Millis(1200);
    return exp.Run({spec, spec});  // must not throw ServerStalled
  };
  const auto a = run();
  int timed_out = 0, completed = 0;
  for (const auto& r : a) {
    timed_out += r.CountStatus(serving::RequestStatus::kTimedOut);
    completed += r.batches_completed;
  }
  EXPECT_GT(timed_out, 0);  // the 30ms hang blows the 15ms deadlines
  EXPECT_GT(completed, 0);  // service resumes once the device recovers
  const auto b = run();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].finish_time, b[i].finish_time);
    EXPECT_EQ(a[i].request_status, b[i].request_status);
  }
}

}  // namespace
}  // namespace olympian
