// Unit tests for metrics/ (statistics, busy metering, tables).

#include <gtest/gtest.h>

#include <sstream>

#include "metrics/busy_meter.h"
#include "metrics/stats.h"
#include "metrics/table.h"

namespace olympian::metrics {
namespace {

using sim::Duration;
using sim::TimePoint;

TEST(SeriesTest, BasicMoments) {
  Series s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.Stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
}

TEST(SeriesTest, EmptySeriesBehaviour) {
  Series s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Stddev(), 0.0);
  EXPECT_THROW(s.Min(), std::out_of_range);
  EXPECT_THROW(s.Percentile(50), std::out_of_range);
}

TEST(SeriesTest, Percentiles) {
  Series s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.Percentile(90), 90.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
}

TEST(SeriesTest, PercentileAfterLaterAdds) {
  Series s;
  s.Add(10);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 10.0);
  s.Add(20);
  s.Add(30);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 30.0);  // sorted cache refreshed
}

TEST(SeriesTest, CdfAtAndPoints) {
  Series s;
  for (double v : {1.0, 1.0, 2.0, 3.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.CdfAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.CdfAt(1.0), 0.5);
  EXPECT_DOUBLE_EQ(s.CdfAt(2.5), 0.75);
  EXPECT_DOUBLE_EQ(s.CdfAt(10.0), 1.0);
  auto pts = s.CdfPoints();
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].first, 1.0);
  EXPECT_DOUBLE_EQ(pts[0].second, 0.5);
  EXPECT_DOUBLE_EQ(pts[2].second, 1.0);
}

TEST(SeriesTest, CvIsRelativeSpread) {
  Series s;
  for (double v : {99.0, 100.0, 101.0}) s.Add(v);
  EXPECT_NEAR(s.Cv(), 0.01, 1e-3);
}

TEST(WelfordTest, MatchesSeries) {
  Series s;
  Welford w;
  double xs[] = {3.0, 1.5, 9.0, -4.0, 2.25, 7.5};
  for (double x : xs) {
    s.Add(x);
    w.Add(x);
  }
  EXPECT_NEAR(w.Mean(), s.Mean(), 1e-12);
  EXPECT_NEAR(w.Stddev(), s.Stddev(), 1e-12);
}

TEST(LinearFitTest, ExactLine) {
  auto fit = FitLine({1, 2, 3, 4}, {3, 5, 7, 9});  // y = 2x + 1
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.Eval(10), 21.0, 1e-12);
}

TEST(LinearFitTest, DegenerateXFallsBackToMean) {
  auto fit = FitLine({5, 5, 5}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 2.0);
}

TEST(LinearFitTest, RejectsBadInput) {
  EXPECT_THROW(FitLine({1}, {2}), std::invalid_argument);
  EXPECT_THROW(FitLine({1, 2}, {2}), std::invalid_argument);
}

TEST(BusyMeterTest, NonOverlappingIntervals) {
  BusyMeter m;
  TimePoint t;
  m.OnBegin(t + Duration::Millis(1));
  m.OnEnd(t + Duration::Millis(3));
  m.OnBegin(t + Duration::Millis(10));
  m.OnEnd(t + Duration::Millis(14));
  EXPECT_EQ(m.Total(t + Duration::Millis(20)), Duration::Millis(6));
  EXPECT_FALSE(m.busy());
}

TEST(BusyMeterTest, OverlappingIntervalsMerge) {
  // Paper Figure 5: GPU duration is the union of per-node busy intervals.
  BusyMeter m;
  TimePoint t;
  m.OnBegin(t + Duration::Millis(1));   // node 1
  m.OnBegin(t + Duration::Millis(2));   // node 2 overlaps
  m.OnEnd(t + Duration::Millis(4));     // node 1 ends
  m.OnEnd(t + Duration::Millis(5));     // node 2 ends
  m.OnBegin(t + Duration::Millis(9));   // node 3
  m.OnEnd(t + Duration::Millis(10));
  EXPECT_EQ(m.Total(t + Duration::Millis(10)), Duration::Millis(5));
}

TEST(BusyMeterTest, OpenIntervalCountsTowardTotal) {
  BusyMeter m;
  TimePoint t;
  m.OnBegin(t + Duration::Millis(2));
  EXPECT_TRUE(m.busy());
  EXPECT_EQ(m.Total(t + Duration::Millis(7)), Duration::Millis(5));
}

TEST(BusyMeterTest, UnbalancedEndThrows) {
  BusyMeter m;
  EXPECT_THROW(m.OnEnd(TimePoint()), std::logic_error);
}

TEST(TableTest, PrintAlignsColumns) {
  Table t({"model", "runtime"});
  t.AddRow({"Inception", "0.81"});
  t.AddRow({"VGG", "0.83"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("model"), std::string::npos);
  EXPECT_NE(out.find("Inception"), std::string::npos);
  EXPECT_NE(out.find("0.83"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::invalid_argument);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Pct(0.0213, 1), "2.1%");
}

}  // namespace
}  // namespace olympian::metrics
