// Unit tests for the model zoo: Table-2 fidelity, determinism, and the
// Figure-4 node-duration distribution.

#include <gtest/gtest.h>

#include "gpusim/gpu_spec.h"
#include "metrics/stats.h"
#include "models/model_zoo.h"

namespace olympian::models {
namespace {

TEST(ModelZooTest, HasAllSevenPaperModels) {
  EXPECT_EQ(AllModels().size(), 7u);
  for (const char* name :
       {"inception-v4", "googlenet", "alexnet", "vgg16", "resnet-50",
        "resnet-101", "resnet-152"}) {
    EXPECT_NO_THROW(GetModel(name)) << name;
  }
}

TEST(ModelZooTest, UnknownModelThrows) {
  EXPECT_THROW(GetModel("mobilenet"), std::out_of_range);
}

TEST(ModelZooTest, ModelKeyFormat) {
  EXPECT_EQ(ModelKey("vgg16", 120), "vgg16@120");
}

TEST(ModelZooTest, ClientMemoryScalesWithBatch) {
  const ModelSpec& m = GetModel("inception-v4");
  EXPECT_GT(m.ClientMemoryMb(100), 0);
  EXPECT_GT(m.ClientMemoryMb(200), m.ClientMemoryMb(100));
}

TEST(ModelZooTest, BuildIsDeterministic) {
  const ModelSpec& spec = GetModel("resnet-152");
  const graph::Graph a = BuildModel(spec);
  const graph::Graph b = BuildModel(spec);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& na = a.node(static_cast<graph::NodeId>(i));
    const auto& nb = b.node(static_cast<graph::NodeId>(i));
    EXPECT_EQ(na.device, nb.device);
    EXPECT_EQ(na.block_work, nb.block_work);
    EXPECT_EQ(na.cpu_time, nb.cpu_time);
    EXPECT_EQ(na.inputs, nb.inputs);
  }
}

// Parameterized over all seven models: the structural Table-2 numbers must
// hold exactly, and work/duration invariants must be sane.
class AllModelsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllModelsTest, MatchesTable2NodeCounts) {
  const ModelSpec& spec = GetModel(GetParam());
  const graph::Graph g = BuildModel(spec);
  EXPECT_EQ(g.size(), static_cast<std::size_t>(spec.total_nodes));
  EXPECT_EQ(g.gpu_node_count(), static_cast<std::size_t>(spec.gpu_nodes));
  g.Validate();  // single source, connected, acyclic
}

TEST_P(AllModelsTest, CalibratedGpuWorkMatchesRuntime) {
  // Total GPU work at the paper batch size should equal the Table-2 runtime
  // times the reference device parallelism (the builder's normalization).
  const ModelSpec& spec = GetModel(GetParam());
  const graph::Graph g = BuildModel(spec);
  const double slots = static_cast<double>(
      gpusim::GpuSpec::Gtx1080Ti().total_block_slots());
  const double work_s = g.TotalGpuWork(spec.paper_batch).seconds() / slots;
  EXPECT_NEAR(work_s, spec.paper_runtime_s * 0.88,
              0.02 * spec.paper_runtime_s);
}

TEST_P(AllModelsTest, NodeDurationDistributionMatchesFigure4) {
  // Figure 4 (Inception): most node durations are tiny, with a heavy tail —
  // the property that makes node-granularity switching cheap. We check the
  // solo (uncontended) duration of each GPU node's kernel on the reference
  // device.
  const ModelSpec& spec = GetModel(GetParam());
  const graph::Graph g = BuildModel(spec);
  const auto ref = gpusim::GpuSpec::Gtx1080Ti();
  metrics::Series durations_us;
  for (const auto& n : g.nodes()) {
    if (!n.is_gpu()) continue;
    const auto blocks = n.BlocksFor(spec.paper_batch);
    const auto waves = (blocks + ref.total_block_slots() - 1) /
                       ref.total_block_slots();
    durations_us.Add(n.block_work.micros() * static_cast<double>(waves));
  }
  // Majority small, almost all under a millisecond-scale bound, tail exists.
  EXPECT_GT(durations_us.CdfAt(30.0), 0.70);
  EXPECT_GT(durations_us.CdfAt(1000.0), 0.90);
  EXPECT_GT(durations_us.Max(), 500.0);
}

TEST_P(AllModelsTest, GpuWorkScalesRoughlyLinearlyWithBatch) {
  // The linear node-work model (paper Figure 20's premise).
  const ModelSpec& spec = GetModel(GetParam());
  const graph::Graph g = BuildModel(spec);
  const double w50 = g.TotalGpuWork(50).seconds();
  const double w100 = g.TotalGpuWork(100).seconds();
  const double w200 = g.TotalGpuWork(200).seconds();
  EXPECT_NEAR(w200 / w100, 2.0, 0.1);
  EXPECT_NEAR(w100 / w50, 2.0, 0.15);  // blocks_base makes it affine
}

INSTANTIATE_TEST_SUITE_P(
    PaperModels, AllModelsTest,
    ::testing::Values("inception-v4", "googlenet", "alexnet", "vgg16",
                      "resnet-50", "resnet-101", "resnet-152"));

}  // namespace
}  // namespace olympian::models
