#pragma once

// Minimal strict JSON parser for tests. The production exporters
// (Tracer::WriteChromeTrace, MetricRegistry::WriteJsonTimeline, bench::Json)
// hand-emit JSON; these tests parse the full output back with an
// independent implementation so a malformed escape, missing comma, or
// unquoted value fails loudly instead of "looking fine" in a substring
// check.
//
// Strictness follows RFC 8259: no trailing commas, no comments, no bare
// values outside the grammar, string escapes limited to the spec set, and
// Parse() rejects trailing garbage after the top-level value. Numbers are
// held as double (sufficient for trace timestamps and metric values).
//
// Header-only and test-only; not part of the production library.

#include <cctype>
#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace olympian::testjson {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

class Value {
 public:
  using Storage =
      std::variant<std::nullptr_t, bool, double, std::string, Array, Object>;

  Value() : v_(nullptr) {}
  explicit Value(Storage v) : v_(std::move(v)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool AsBool() const { return Get<bool>("bool"); }
  double AsNumber() const { return Get<double>("number"); }
  const std::string& AsString() const { return Get<std::string>("string"); }
  const Array& AsArray() const { return Get<Array>("array"); }
  const Object& AsObject() const { return Get<Object>("object"); }

  // Object member access; throws when absent or not an object.
  const Value& at(const std::string& key) const {
    const Object& o = AsObject();
    const auto it = o.find(key);
    if (it == o.end()) throw std::runtime_error("json: no member '" + key + "'");
    return it->second;
  }
  bool contains(const std::string& key) const {
    return is_object() && AsObject().count(key) > 0;
  }

 private:
  template <typename T>
  const T& Get(const char* what) const {
    if (const T* p = std::get_if<T>(&v_)) return *p;
    throw std::runtime_error(std::string("json: value is not a ") + what);
  }
  Storage v_;
};

namespace detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Value ParseDocument() {
    Value v = ParseValue();
    SkipWs();
    if (pos_ != s_.size()) Fail("trailing garbage after top-level value");
    return v;
  }

 private:
  [[noreturn]] void Fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at offset " +
                             std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= s_.size()) Fail("unexpected end of input");
    return s_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  Value ParseValue() {
    SkipWs();
    switch (Peek()) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"':
        return Value(Value::Storage(ParseString()));
      case 't':
        ParseLiteral("true");
        return Value(Value::Storage(true));
      case 'f':
        ParseLiteral("false");
        return Value(Value::Storage(false));
      case 'n':
        ParseLiteral("null");
        return Value(Value::Storage(nullptr));
      default:
        return Value(Value::Storage(ParseNumber()));
    }
  }

  void ParseLiteral(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) Fail("bad literal");
    pos_ += lit.size();
  }

  Value ParseObject() {
    Expect('{');
    Object o;
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return Value(Value::Storage(std::move(o)));
    }
    while (true) {
      SkipWs();
      std::string key = ParseString();
      SkipWs();
      Expect(':');
      o.emplace(std::move(key), ParseValue());
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return Value(Value::Storage(std::move(o)));
    }
  }

  Value ParseArray() {
    Expect('[');
    Array a;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return Value(Value::Storage(std::move(a)));
    }
    while (true) {
      a.push_back(ParseValue());
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return Value(Value::Storage(std::move(a)));
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) Fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) Fail("raw control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;  // consume backslash
      if (pos_ >= s_.size()) Fail("dangling escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) Fail("short \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else Fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode (tests only need the BMP; surrogates untested).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          Fail("invalid escape");
      }
    }
  }

  double ParseNumber() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      Fail("bad number");
    }
    if (s_[pos_] == '0') {
      ++pos_;  // leading zero: no further integer digits allowed
    } else {
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        Fail("bad fraction");
      }
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        Fail("bad exponent");
      }
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) ++pos_;
    }
    return std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(),
                       nullptr);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace detail

// Parses a complete JSON document; throws std::runtime_error on any
// grammar violation, including trailing content.
inline Value Parse(std::string_view text) {
  return detail::Parser(text).ParseDocument();
}

}  // namespace olympian::testjson
