// Gray-failure robustness tests: fractional-capacity faults, latency-aware
// health scoring, hysteresis (no flapping), detection latency, slowdown-
// triggered hedging, and brownout admission control.
//
// A gray fault is one the device never announces: a capacity throttle or a
// jitter window stretches latencies silently, so every detection here must
// come from *measured* probe RTTs, not push-style listener signals. These
// tests pin the whole loop: injection (Gpu::ThrottleCapacity, server-level
// capacity loss / jitter), detection (HealthScore + hysteresis at both the
// device monitor and the cluster router), and response (score-weighted
// routing, score-triggered hedging, brownout shedding by priority class).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "gpusim/gpu.h"
#include "serving/cluster.h"
#include "serving/health.h"
#include "serving/health_score.h"
#include "serving/server.h"
#include "sim/environment.h"

namespace olympian {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint At(double ms) { return TimePoint() + Duration::Millis(ms); }

// ---------------------------------------------------------------------------
// Injection: Gpu::ThrottleCapacity

sim::Task SubmitOne(gpusim::Gpu& gpu, sim::Environment& env,
                    gpusim::StreamId s, std::int64_t blocks, Duration work,
                    std::int64_t& done_ns) {
  co_await gpu.Submit(s, gpusim::KernelDesc{.job = 0,
                                            .thread_blocks = blocks,
                                            .block_work = work});
  done_ns = (env.Now() - TimePoint()).nanos();
}

gpusim::Gpu::Options PlainGpu() {
  gpusim::Gpu::Options o;
  o.spec = gpusim::GpuSpec{.name = "cap-test",
                           .num_sms = 8,
                           .max_blocks_per_sm = 1,
                           .clock_scale = 1.0,
                           .memory_mb = 1000};
  o.clock_noise_sigma = 0.0;
  o.seed = 3;
  return o;
}

TEST(GpuCapacityTest, ThrottleStretchesKernelDurations) {
  sim::Environment env;
  gpusim::Gpu gpu(env, PlainGpu());
  const auto s = gpu.CreateStream();
  gpu.ThrottleCapacity(0.25, Duration::Millis(10));
  std::int64_t done = -1;
  // 1 block of 100us at quarter speed: 400us.
  env.Spawn(SubmitOne(gpu, env, s, 1, Duration::Micros(100), done));
  env.Run();
  EXPECT_EQ(done, Duration::Micros(400).nanos());
}

TEST(GpuCapacityTest, DispatchTimeSemanticsHoldAcrossWindowClose) {
  // A wave keeps the duration computed at issue even if the window closes
  // mid-flight (the throttled clock plan was already committed): issued at
  // t=0 under capacity 0.5, a 100us kernel finishes at 200us although the
  // window ends at 50us.
  sim::Environment env;
  gpusim::Gpu gpu(env, PlainGpu());
  const auto s = gpu.CreateStream();
  gpu.ThrottleCapacity(0.5, Duration::Micros(50));
  std::int64_t done = -1;
  env.Spawn(SubmitOne(gpu, env, s, 1, Duration::Micros(100), done));
  env.Run();
  EXPECT_EQ(done, Duration::Micros(200).nanos());
}

TEST(GpuCapacityTest, WindowsMergeMinCapacityMaxDeadline) {
  sim::Environment env;
  gpusim::Gpu gpu(env, PlainGpu());
  gpu.ThrottleCapacity(0.5, Duration::Millis(1));
  gpu.ThrottleCapacity(0.8, Duration::Millis(2));  // overlaps: min wins
  EXPECT_DOUBLE_EQ(gpu.CapacityAt(TimePoint() + Duration::Micros(1500)), 0.5);
  EXPECT_DOUBLE_EQ(gpu.CapacityAt(TimePoint() + Duration::Millis(3)), 1.0);
  EXPECT_DOUBLE_EQ(gpu.Health().capacity, 0.5);
}

TEST(GpuCapacityTest, RejectsOutOfRangeCapacity) {
  sim::Environment env;
  gpusim::Gpu gpu(env, PlainGpu());
  EXPECT_THROW(gpu.ThrottleCapacity(0.0, Duration::Millis(1)),
               std::invalid_argument);
  EXPECT_THROW(gpu.ThrottleCapacity(-0.5, Duration::Millis(1)),
               std::invalid_argument);
  EXPECT_THROW(gpu.ThrottleCapacity(1.5, Duration::Millis(1)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// HealthScore unit behaviour

TEST(HealthScoreTest, ScoreTracksRttInflationAndRecovers) {
  serving::HealthScoreOptions o;
  o.enabled = true;
  serving::HealthScore score(o);
  // Learn a 1ms baseline.
  for (int i = 0; i < o.baseline_probes; ++i) {
    score.OnProbe(true, Duration::Millis(1));
  }
  ASSERT_TRUE(score.baseline_learned());
  EXPECT_DOUBLE_EQ(score.score(), 1.0);
  // A sustained 4x slowdown drives the RTT term toward 0.25.
  for (int i = 0; i < 30; ++i) score.OnProbe(true, Duration::Millis(4));
  EXPECT_LT(score.score(), o.degrade_below);
  EXPECT_GT(score.slowdown(), 3.5);
  // Recovery: RTTs return to baseline, the EWMA follows.
  for (int i = 0; i < 30; ++i) score.OnProbe(true, Duration::Millis(1));
  EXPECT_GT(score.score(), o.recover_above);
  // Reset forgets the baseline entirely.
  score.Reset();
  EXPECT_FALSE(score.baseline_learned());
}

TEST(HealthScoreTest, FailuresDriveErrorTermWithoutRtt) {
  serving::HealthScoreOptions o;
  o.enabled = true;
  serving::HealthScore score(o);
  for (int i = 0; i < 20; ++i) score.OnProbe(false, Duration::Zero());
  // err term ~0: score collapses to roughly rtt_weight (RTT treated nominal
  // while unlearned).
  EXPECT_LT(score.score(), o.rtt_weight + 0.01);
}

TEST(HealthScoreTest, ValidateRejectsBadKnobs) {
  serving::HealthScoreOptions o;
  o.enabled = true;
  o.degrade_below = 0.9;
  o.recover_above = 0.8;  // inverted hysteresis
  EXPECT_THROW(serving::Validate(o), std::invalid_argument);
  o = {};
  o.enabled = true;
  o.rtt_alpha = 0.0;
  EXPECT_THROW(serving::Validate(o), std::invalid_argument);
  o = {};  // disabled: anything goes
  o.degrade_below = 2.0;
  EXPECT_NO_THROW(serving::Validate(o));
}

// ---------------------------------------------------------------------------
// Detection at the device monitor: capacity faults have no listener signal,
// so only the scored probe RTT can notice them.

serving::ServerOptions ScoredServer(int gpus) {
  serving::ServerOptions opts;
  opts.num_gpus = static_cast<std::size_t>(gpus);
  opts.failover.enabled = true;
  opts.failover.health.score.enabled = true;
  return opts;
}

// A sparse open-loop client: the device is mostly idle, so probe RTTs are
// stable and the score moves only when the capacity window opens.
std::vector<serving::ClientSpec> SparseWorkload(int requests) {
  return {serving::ClientSpec{.model = "googlenet",
                              .batch = 4,
                              .num_batches = requests,
                              .mean_interarrival = Duration::Millis(25)}};
}

int CountEdges(const std::vector<serving::HealthTransition>& log,
               std::size_t gpu, serving::DeviceHealth from,
               serving::DeviceHealth to) {
  int n = 0;
  for (const auto& t : log) {
    if (t.gpu == gpu && t.from == from && t.to == to) ++n;
  }
  return n;
}

TEST(GrayFailureTest, MonitorScoresCapacityFaultDegradedThenRecovers) {
  serving::ServerOptions opts = ScoredServer(1);
  // Quarter speed for 150ms starting at 100ms: the 20us probe kernel takes
  // 80us, the score EWMA sinks below degrade_below, and after the window
  // closes it climbs back above recover_above.
  opts.faults.CapacityFault(At(100), Duration::Millis(150), 0.25);
  serving::Experiment exp(opts);
  const auto results = exp.Run(SparseWorkload(30));

  EXPECT_EQ(exp.counters().capacity_fault_windows, 1u);
  ASSERT_NE(exp.health(), nullptr);
  // Hysteresis means no flapping: exactly one degrade edge and one recover
  // edge for the whole episode, even though dozens of probes straddle the
  // score thresholds.
  EXPECT_EQ(CountEdges(exp.health()->transitions(), 0,
                       serving::DeviceHealth::kHealthy,
                       serving::DeviceHealth::kDegraded),
            1);
  EXPECT_EQ(CountEdges(exp.health()->transitions(), 0,
                       serving::DeviceHealth::kDegraded,
                       serving::DeviceHealth::kHealthy),
            1);
  EXPECT_EQ(exp.health()->health(0), serving::DeviceHealth::kHealthy);
  EXPECT_GT(exp.health()->score(0), 0.85);
  // The gray window never killed the device: no down events, no MTTR.
  EXPECT_EQ(exp.health()->stats(0).down_events, 0u);
  // Work still completed (slower, but nothing lost).
  EXPECT_EQ(results[0].batches_completed, 30);
}

TEST(GrayFailureTest, EscalationUnderSustainedFaultYieldsOneMttrIncident) {
  // A capacity fault degrades the device via the score; a device reset in
  // the middle of the window escalates degraded -> down. Recovery then
  // readmits exactly once, and the Reset() of the score at readmission
  // keeps the stale error/RTT EWMA from instantly re-degrading it.
  serving::ServerOptions opts = ScoredServer(2);
  opts.faults.CapacityFault(At(100), Duration::Millis(120), 0.25);
  opts.faults.DeviceReset(At(160), Duration::Millis(80), /*gpu_index=*/0);
  serving::Experiment exp(opts);
  const auto results = exp.Run(
      {serving::ClientSpec{.model = "googlenet",
                           .batch = 4,
                           .num_batches = 40,
                           .mean_interarrival = Duration::Millis(20)},
       serving::ClientSpec{.model = "googlenet",
                           .batch = 4,
                           .num_batches = 40,
                           .mean_interarrival = Duration::Millis(20)}});

  ASSERT_NE(exp.health(), nullptr);
  const auto& stats = exp.health()->stats(0);
  EXPECT_EQ(stats.down_events, 1u);
  EXPECT_EQ(stats.readmissions, 1u);
  EXPECT_EQ(stats.mttr_incidents.size(), 1u) << "one episode, one incident";
  // The degraded -> down edge exists in the log (score first, then reset).
  EXPECT_EQ(CountEdges(exp.health()->transitions(), 0,
                       serving::DeviceHealth::kDegraded,
                       serving::DeviceHealth::kDown),
            1);
  EXPECT_EQ(exp.health()->health(0), serving::DeviceHealth::kHealthy);
  for (const auto& r : results) EXPECT_EQ(r.batches_completed, 40) << r.name;
}

TEST(GrayFailureTest, ScoreTriggeredHedgingFiresBeforeDegradedBit) {
  // Thresholds parked low so the throttled device STAYS score-healthy: the
  // binary bit never trips, only the measured score sags — and the hedge
  // keys on the score, so it must still fire.
  serving::ServerOptions opts = ScoredServer(2);
  opts.failover.health.score.degrade_below = 0.10;
  opts.failover.health.score.recover_above = 0.20;
  opts.failover.hedge_when_degraded = false;
  opts.failover.hedge_below_score = 0.95;
  opts.failover.hedge_delay = Duration::Millis(1);
  opts.faults.CapacityFault(At(100), Duration::Millis(300), 0.25);
  serving::Experiment exp(opts);
  exp.Run({serving::ClientSpec{.model = "googlenet",
                               .batch = 4,
                               .num_batches = 30,
                               .mean_interarrival = Duration::Millis(15)},
           serving::ClientSpec{.model = "googlenet",
                               .batch = 4,
                               .num_batches = 30,
                               .mean_interarrival = Duration::Millis(15)}});

  ASSERT_NE(exp.health(), nullptr);
  EXPECT_EQ(CountEdges(exp.health()->transitions(), 0,
                       serving::DeviceHealth::kHealthy,
                       serving::DeviceHealth::kDegraded),
            0)
      << "thresholds were meant to keep the device score-healthy";
  EXPECT_GE(exp.counters().hedges_launched, 1u);
}

// ---------------------------------------------------------------------------
// Detection and response at the cluster router

int CountServerEdges(const std::vector<serving::ServerTransition>& log,
                     std::size_t server, serving::ServerHealth from,
                     serving::ServerHealth to) {
  int n = 0;
  for (const auto& t : log) {
    if (t.server == server && t.from == from && t.to == to) ++n;
  }
  return n;
}

serving::ClusterClientSpec PoissonClient(double rps, int requests,
                                         int priority = 0) {
  serving::ClusterClientSpec c;
  c.request.model = "googlenet";
  c.request.batch = 8;
  c.request.num_batches = requests;
  c.request.priority = priority;
  c.arrivals.kind = serving::ArrivalSpec::Kind::kPoisson;
  c.arrivals.rate_rps = rps;
  return c;
}

TEST(GrayFailureTest, RouterDetectsCapacityLossWithLatencyMetric) {
  serving::ClusterOptions opts;
  opts.num_servers = 2;
  opts.server.num_gpus = 1;
  opts.server.pool_threads = 100;
  opts.seed = 9;
  opts.router.score.enabled = true;
  opts.faults.CapacityLoss(At(100), Duration::Millis(250), /*server=*/0, 0.25);
  serving::Cluster cluster(opts);
  const auto results = cluster.Run(
      std::vector<serving::ClusterClientSpec>(4, PoissonClient(20.0, 12)));

  EXPECT_EQ(cluster.counters().capacity_losses, 1u);
  EXPECT_GE(cluster.counters().score_degrade_events, 1u);
  EXPECT_GE(cluster.counters().score_recover_events, 1u);
  // Hysteresis: the 250ms window produces exactly one degrade episode.
  EXPECT_EQ(CountServerEdges(cluster.router().transitions(), 0,
                             serving::ServerHealth::kHealthy,
                             serving::ServerHealth::kDegraded),
            1);
  EXPECT_EQ(CountServerEdges(cluster.router().transitions(), 0,
                             serving::ServerHealth::kDegraded,
                             serving::ServerHealth::kHealthy),
            1);
  // Detection latency: armed at fault onset, consumed at the degrade edge.
  ASSERT_EQ(cluster.router().detection_latencies().size(), 1u);
  EXPECT_GT(cluster.router().detection_latencies()[0], Duration::Zero());
  EXPECT_LT(cluster.router().detection_latencies()[0], Duration::Millis(250));
  // The server never went down — a gray fault, not an outage.
  EXPECT_EQ(cluster.counters().server_down_events, 0u);
  for (const auto& r : results) EXPECT_EQ(r.requests_completed, 12) << r.name;
}

TEST(GrayFailureTest, RouterDetectsJitterWindow) {
  serving::ClusterOptions opts;
  opts.num_servers = 2;
  opts.server.num_gpus = 1;
  opts.server.pool_threads = 100;
  opts.seed = 10;
  opts.router.score.enabled = true;
  // 6x hop stretch: probe RTT goes 1.4ms -> 3.4ms, score ~0.66 < 0.70.
  opts.faults.Jitter(At(100), Duration::Millis(250), /*server=*/0, 6.0);
  serving::Cluster cluster(opts);
  const auto results = cluster.Run(
      std::vector<serving::ClusterClientSpec>(4, PoissonClient(20.0, 12)));

  EXPECT_EQ(cluster.counters().jitter_windows, 1u);
  EXPECT_GE(cluster.counters().score_degrade_events, 1u);
  ASSERT_GE(cluster.router().detection_latencies().size(), 1u);
  EXPECT_GT(cluster.router().detection_latencies()[0], Duration::Zero());
  // Jitter delays but never drops: every request still completes.
  for (const auto& r : results) EXPECT_EQ(r.requests_completed, 12) << r.name;
}

TEST(GrayFailureTest, BrownoutShedsLowestClassFirstAndRestores) {
  serving::ClusterOptions opts;
  opts.num_servers = 2;
  opts.server.num_gpus = 1;
  opts.server.pool_threads = 100;
  opts.seed = 12;
  opts.router.score.enabled = true;
  opts.router.brownout.enabled = true;
  opts.router.brownout.enter_below = 0.80;
  opts.router.brownout.exit_above = 0.90;
  // Both servers throttled to quarter speed: aggregate capacity ~0.5 falls
  // below enter_below, brownout sheds priority class 0 (class 1, the top
  // class, may never be shed), and restores once the windows close and the
  // scores recover.
  opts.faults.CapacityLoss(At(100), Duration::Millis(300), /*server=*/0, 0.25);
  opts.faults.CapacityLoss(At(100), Duration::Millis(300), /*server=*/1, 0.25);
  serving::Cluster cluster(opts);
  const auto results = cluster.Run({PoissonClient(25.0, 20, /*priority=*/0),
                                    PoissonClient(25.0, 20, /*priority=*/0),
                                    PoissonClient(25.0, 20, /*priority=*/1),
                                    PoissonClient(25.0, 20, /*priority=*/1)});

  EXPECT_GE(cluster.counters().brownout_entries, 1u);
  EXPECT_GE(cluster.counters().brownout_exits, 1u);
  EXPECT_GT(cluster.counters().requests_shed_brownout, 0u);
  EXPECT_EQ(cluster.router().brownout_level(), 0) << "restored by run end";
  // Shedding is strictly class-ordered: every brownout rejection landed on
  // the priority-0 clients; the top class was never shed.
  int low_rejected = 0;
  int high_rejected = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const int rejected =
        results[i].CountStatus(serving::RequestStatus::kRejected);
    (i < 2 ? low_rejected : high_rejected) += rejected;
  }
  EXPECT_GT(low_rejected, 0);
  EXPECT_EQ(high_rejected, 0);
}

// ---------------------------------------------------------------------------
// Random plans: gray faults ride the same seed-stable draw

TEST(GrayFailureTest, RandomPlansWithGrayFaultsAreSeedStable) {
  fault::FaultPlan::RandomOptions dev;
  dev.num_gpus = 2;
  dev.expected_capacity_faults = 3.0;
  const fault::FaultPlan a = fault::FaultPlan::Random(dev, 77);
  const fault::FaultPlan b = fault::FaultPlan::Random(dev, 77);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GT(a.size(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].capacity, b.events()[i].capacity);
  }
  for (const auto& e : a.events()) {
    ASSERT_EQ(e.kind, fault::FaultKind::kCapacityFault);
    EXPECT_GT(e.capacity, 0.0);
    EXPECT_LE(e.capacity, 1.0);
  }

  fault::ServerFaultPlan::RandomOptions srv;
  srv.num_servers = 3;
  srv.expected_capacity_losses = 2.0;
  srv.expected_jitter = 2.0;
  const fault::ServerFaultPlan sa = fault::ServerFaultPlan::Random(srv, 78);
  const fault::ServerFaultPlan sb = fault::ServerFaultPlan::Random(srv, 78);
  ASSERT_EQ(sa.size(), sb.size());
  EXPECT_GT(sa.size(), 0u);
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa.events()[i].kind, sb.events()[i].kind);
    EXPECT_EQ(sa.events()[i].at, sb.events()[i].at);
    EXPECT_EQ(sa.events()[i].capacity, sb.events()[i].capacity);
    EXPECT_EQ(sa.events()[i].factor, sb.events()[i].factor);
  }
  for (const auto& e : sa.events()) {
    if (e.kind == fault::ServerFaultKind::kJitter) {
      EXPECT_GE(e.factor, 1.0);
    } else {
      ASSERT_EQ(e.kind, fault::ServerFaultKind::kCapacityLoss);
      EXPECT_GT(e.capacity, 0.0);
      EXPECT_LE(e.capacity, 1.0);
    }
  }
}

}  // namespace
}  // namespace olympian
