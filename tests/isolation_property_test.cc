// Property-based integration tests: the scheduler's isolation invariants
// must hold across policies, models, and seeds — not just in the headline
// configurations the benches use.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "core/profiler.h"
#include "core/scheduler.h"
#include "metrics/stats.h"
#include "serving/server.h"

namespace olympian {
namespace {

using serving::ClientSpec;
using serving::Experiment;
using serving::ServerOptions;
using sim::Duration;

struct RunArtifacts {
  std::vector<serving::ClientResult> results;
  std::vector<core::Scheduler::QuantumRecord> quanta;
  sim::Duration gpu_busy;
  std::uint64_t switches = 0;
};

RunArtifacts RunFairWorkload(const std::string& model, int batch, int clients,
                             std::uint64_t seed, const std::string& policy) {
  core::Profiler profiler;
  const auto profile = profiler.ProfileModel(model, batch);
  ServerOptions opts;
  opts.seed = seed;
  Experiment exp(opts);
  core::Scheduler sched(exp.env(), exp.gpu(), core::MakePolicy(policy));
  sched.SetProfile(profile.key, &profile.cost,
                   core::Profiler::ThresholdFor(profile, Duration::Micros(1200)));
  exp.SetHooks(&sched);
  RunArtifacts out;
  out.results = exp.Run(std::vector<ClientSpec>(
      static_cast<std::size_t>(clients),
      ClientSpec{.model = model, .batch = batch, .num_batches = 2}));
  out.quanta = sched.quantum_log();
  out.gpu_busy = exp.gpu().TotalBusy();
  out.switches = sched.switches();
  return out;
}

// (model, batch, seed)
using IsolationParam = std::tuple<std::string, int, std::uint64_t>;

class IsolationTest : public ::testing::TestWithParam<IsolationParam> {};

TEST_P(IsolationTest, FairShareEqualizesFinishAndGpuDuration) {
  const auto& [model, batch, seed] = GetParam();
  const auto run = RunFairWorkload(model, batch, 4, seed, "fair");
  metrics::Series finishes, gpu_durs;
  for (const auto& r : run.results) {
    EXPECT_EQ(r.batches_completed, 2);
    finishes.Add(r.finish_time.seconds());
    gpu_durs.Add(r.gpu_duration.seconds());
  }
  EXPECT_LT(finishes.Cv(), 0.02) << model;
  EXPECT_LT(gpu_durs.Cv(), 0.02) << model;
  EXPECT_GT(run.switches, 20u);
}

TEST_P(IsolationTest, WorkConservation) {
  // At paper-regime batch sizes kernels are device-exclusive, so the sum of
  // per-job GPU durations equals total busy time (within overlap slack from
  // sub-saturating kernels).
  const auto& [model, batch, seed] = GetParam();
  const auto run = RunFairWorkload(model, batch, 4, seed, "fair");
  sim::Duration sum;
  for (const auto& r : run.results) sum += r.gpu_duration;
  EXPECT_GE(sum.seconds(), run.gpu_busy.seconds() * 0.99);
  EXPECT_LE(sum.seconds(), run.gpu_busy.seconds() * 1.30);
}

TEST_P(IsolationTest, QuantumGpuDurationBoundedByTenure) {
  // A job cannot accumulate more GPU duration during a tenure than the
  // tenure's wall-clock length plus bounded overflow from ~2-3 in-flight
  // nodes (paper Figures 10/15).
  const auto& [model, batch, seed] = GetParam();
  const auto run = RunFairWorkload(model, batch, 4, seed, "fair");
  const auto slack = Duration::Millis(8);  // few heavy-kernel overflows
  std::size_t violations = 0;
  for (const auto& q : run.quanta) {
    if (q.gpu_duration > (q.end - q.start) + slack) ++violations;
  }
  EXPECT_EQ(violations, 0u) << model;
}

TEST_P(IsolationTest, PerJobQuantaSumToTotalGpuDuration) {
  // The per-quantum accounting must tile each job's total GPU duration.
  const auto& [model, batch, seed] = GetParam();
  const auto run = RunFairWorkload(model, batch, 3, seed, "fair");
  std::map<gpusim::JobId, double> per_job_quanta;
  for (const auto& q : run.quanta) {
    per_job_quanta[q.job] += q.gpu_duration.seconds();
  }
  for (const auto& r : run.results) {
    // Quanta can miss overflow that lands outside any tenure of the job,
    // so allow a tolerance band.
    EXPECT_NEAR(per_job_quanta[r.job], r.gpu_duration.seconds(),
                0.12 * r.gpu_duration.seconds())
        << model << " job " << r.job;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndSeeds, IsolationTest,
    ::testing::Values(IsolationParam{"inception-v4", 64, 1},
                      IsolationParam{"vgg16", 64, 2},
                      IsolationParam{"resnet-152", 64, 3},
                      IsolationParam{"googlenet", 64, 4},
                      IsolationParam{"alexnet", 64, 5},
                      IsolationParam{"resnet-50", 48, 6},
                      IsolationParam{"resnet-101", 48, 7}));

// --- policy-level end-to-end properties ------------------------------------

class PolicyPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicyPropertyTest, AllClientsComplete) {
  const auto run = RunFairWorkload("resnet-152", 32, 5, 11, GetParam());
  for (const auto& r : run.results) EXPECT_EQ(r.batches_completed, 2);
}

TEST_P(PolicyPropertyTest, DeterministicGivenSeed) {
  const auto a = RunFairWorkload("resnet-152", 32, 3, 17, GetParam());
  const auto b = RunFairWorkload("resnet-152", 32, 3, 17, GetParam());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].finish_time, b.results[i].finish_time);
  }
  EXPECT_EQ(a.switches, b.switches);
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicyPropertyTest,
                         ::testing::Values("fair", "weighted-fair", "priority",
                                           "lottery", "reservation"));

// Weighted shares: while both jobs are active, GPU duration ratio tracks
// the weight ratio.
TEST(WeightedShareProperty, GpuDurationTracksWeights) {
  core::Profiler profiler;
  const auto profile = profiler.ProfileModel("resnet-152", 48);
  ServerOptions opts;
  opts.seed = 23;
  Experiment exp(opts);
  core::Scheduler sched(exp.env(), exp.gpu(),
                        std::make_unique<core::WeightedFairPolicy>());
  sched.SetProfile(profile.key, &profile.cost,
                   core::Profiler::ThresholdFor(profile, Duration::Micros(1200)));
  exp.SetHooks(&sched);
  // Heavy job gets 3x weight; give the light job fewer batches so the heavy
  // one is active for the light job's entire lifetime.
  std::vector<ClientSpec> clients{
      {.model = "resnet-152", .batch = 48, .num_batches = 6, .weight = 3},
      {.model = "resnet-152", .batch = 48, .num_batches = 2, .weight = 1}};
  const auto results = exp.Run(clients);
  // While both run, heavy:light GPU share is ~3:1. Measure at the light
  // job's finish: its GPU duration vs the heavy job's at that point is not
  // directly observable post-hoc, so use finish-time structure instead:
  // the light job (2 batches at a quarter share) should finish close to
  // when a fair scheduler would give it 2/(2+6) of... simpler: heavy
  // finishes first despite 3x the work? No — check total durations ratio.
  EXPECT_EQ(results[0].batches_completed, 6);
  EXPECT_EQ(results[1].batches_completed, 2);
  // The heavy job has 3x the total work and 3x the share: both should
  // finish near the same time.
  EXPECT_NEAR(results[0].finish_time.seconds(), results[1].finish_time.seconds(),
              0.25 * results[0].finish_time.seconds());
}

}  // namespace
}  // namespace olympian
