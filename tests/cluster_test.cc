// Tests for the cluster serving layer: the front-end router's health state
// machine, sticky-then-least-loaded routing, cross-server failover under
// crashes and partitions, open-loop arrival generators, and determinism of
// the whole stack across repeats.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "metrics/registry.h"
#include "metrics/trace.h"
#include "serving/arrivals.h"
#include "serving/cluster.h"
#include "serving/router.h"
#include "serving/server.h"
#include "sim/environment.h"
#include "sim/random.h"

namespace olympian {
namespace {

using sim::Duration;
using sim::TimePoint;

TimePoint At(double ms) { return TimePoint() + Duration::Seconds(ms / 1e3); }

serving::ClusterClientSpec PoissonClient(const std::string& model,
                                         double rate_rps, int requests) {
  serving::ClusterClientSpec spec;
  spec.request.model = model;
  spec.request.batch = 10;
  spec.request.num_batches = requests;
  spec.arrivals.kind = serving::ArrivalSpec::Kind::kPoisson;
  spec.arrivals.rate_rps = rate_rps;
  return spec;
}

serving::ClusterOptions SmallCluster(std::size_t num_servers) {
  serving::ClusterOptions opts;
  opts.num_servers = num_servers;
  opts.server.num_gpus = 1;
  opts.server.pool_threads = 100;
  return opts;
}

int CountAll(const std::vector<serving::ClusterClientResult>& results,
             serving::RequestStatus s) {
  int n = 0;
  for (const auto& r : results) n += r.CountStatus(s);
  return n;
}

int ServedAll(const std::vector<serving::ClusterClientResult>& results) {
  int n = 0;
  for (const auto& r : results) n += r.requests_completed;
  return n;
}

int TotalAll(const std::vector<serving::ClusterClientResult>& results) {
  int n = 0;
  for (const auto& r : results) n += static_cast<int>(r.request_status.size());
  return n;
}

// ---------------------------------------------------------------------------
// Router unit tests (fake transport; no servers involved).

struct FakeTransport final : serving::RouterTransport {
  explicit FakeTransport(sim::Environment& e) : env(e) {}
  sim::Task Probe(std::size_t server, bool& ok) override {
    (void)server;
    co_await env.Delay(Duration::Micros(100));
    ok = probe_ok;
  }
  bool HasUsableDevice(std::size_t server) const override {
    (void)server;
    return usable;
  }
  sim::Environment& env;
  bool probe_ok = true;
  bool usable = true;
};

TEST(RouterTest, ConsecutiveProbeFailuresMarkServerDown) {
  sim::Environment env;
  FakeTransport transport(env);
  serving::RouterOptions ro;
  ro.probe_interval = Duration::Millis(1);
  ro.down_after_errors = 2;
  serving::Router router(env, transport, 2, ro, nullptr);
  router.Start();

  transport.probe_ok = false;
  env.RunUntil(At(2.5));  // two failed probes per server
  EXPECT_EQ(router.health(0), serving::ServerHealth::kDown);
  EXPECT_EQ(router.health(1), serving::ServerHealth::kDown);
  EXPECT_EQ(router.Route(0), serving::Router::kNoServer);
  router.Stop();
  env.Run();
}

// The satellite edge case: a probe landing while the server is recovering
// must NOT readmit it early. The server takes no traffic until the warm-up
// hand-shake (recovery_successes consecutive probe successes) completes,
// and the transition log records recovering -> healthy exactly once.
TEST(RouterTest, ProbeDuringRecoveringDoesNotReadmitEarly) {
  sim::Environment env;
  FakeTransport transport(env);
  serving::RouterOptions ro;
  ro.probe_interval = Duration::Millis(1);
  ro.down_after_errors = 2;
  ro.recovery_successes = 3;
  serving::Router router(env, transport, 2, ro, nullptr);
  router.Start();

  transport.probe_ok = false;
  env.RunUntil(At(2.5));
  ASSERT_EQ(router.health(0), serving::ServerHealth::kDown);

  transport.probe_ok = true;
  env.RunUntil(At(3.5));  // first success: down -> recovering
  ASSERT_EQ(router.health(0), serving::ServerHealth::kRecovering);
  EXPECT_FALSE(router.Routable(0));
  EXPECT_EQ(router.Route(0), serving::Router::kNoServer);

  env.RunUntil(At(4.5));  // second success lands during recovering
  EXPECT_EQ(router.health(0), serving::ServerHealth::kRecovering)
      << "a probe success during recovering must not readmit before the "
         "warm-up hand-shake completes";
  EXPECT_FALSE(router.Routable(0));

  env.RunUntil(At(6.0));  // third success completes the hand-shake
  EXPECT_EQ(router.health(0), serving::ServerHealth::kHealthy);
  EXPECT_TRUE(router.Routable(0));

  int recovering_to_healthy = 0;
  for (const auto& t : router.transitions()) {
    if (t.server == 0 && t.from == serving::ServerHealth::kRecovering &&
        t.to == serving::ServerHealth::kHealthy) {
      ++recovering_to_healthy;
    }
  }
  EXPECT_EQ(recovering_to_healthy, 1);
  // Router-side MTTR covers the whole incident: down-mark to readmission.
  ASSERT_GE(router.mttr_incidents().size(), 1u);
  EXPECT_GT(router.mttr_incidents()[0], Duration::Millis(2));
  router.Stop();
  env.Run();
}

TEST(RouterTest, RelapseDuringRecoveryKeepsOneIncident) {
  sim::Environment env;
  FakeTransport transport(env);
  serving::RouterOptions ro;
  ro.probe_interval = Duration::Millis(1);
  ro.down_after_errors = 1;
  ro.recovery_successes = 2;
  serving::Router router(env, transport, 1, ro, nullptr);
  router.Start();

  transport.probe_ok = false;
  env.RunUntil(At(1.5));
  ASSERT_EQ(router.health(0), serving::ServerHealth::kDown);
  transport.probe_ok = true;
  env.RunUntil(At(2.5));
  ASSERT_EQ(router.health(0), serving::ServerHealth::kRecovering);
  transport.probe_ok = false;  // relapse before the hand-shake completes
  env.RunUntil(At(3.5));
  ASSERT_EQ(router.health(0), serving::ServerHealth::kDown);
  transport.probe_ok = true;
  env.RunUntil(At(6.0));
  ASSERT_EQ(router.health(0), serving::ServerHealth::kHealthy);
  // One outage episode, one MTTR incident, spanning the relapse.
  EXPECT_EQ(router.mttr_incidents().size(), 1u);
  EXPECT_GT(router.mttr_incidents()[0], Duration::Millis(3));
  router.Stop();
  env.Run();
}

TEST(RouterTest, StickyThenLeastLoadedRouting) {
  sim::Environment env;
  FakeTransport transport(env);
  serving::RouterOptions ro;
  ro.probe_interval = Duration::Zero();  // no probes; drive by hand
  serving::Router router(env, transport, 3, ro, nullptr);
  router.Start();

  // Sticky: the home wins while routable, regardless of load.
  router.OnRequestStart(0);
  router.OnRequestStart(0);
  EXPECT_EQ(router.Route(0), 0u);
  // Home down: least-loaded routable server wins; ties break on index.
  for (int i = 0; i < 3; ++i) router.OnRequestError(0);
  ASSERT_EQ(router.health(0), serving::ServerHealth::kDown);
  router.OnRequestStart(1);
  EXPECT_EQ(router.Route(0), 2u);  // server 2 has 0 outstanding, 1 has 1
  router.OnRequestStart(2);
  router.OnRequestStart(2);
  EXPECT_EQ(router.Route(0), 1u);
  router.Stop();
  env.Run();
}

// ---------------------------------------------------------------------------
// Arrival generator tests.

TEST(ArrivalsTest, PoissonGapsAreReproducibleAndPositive) {
  serving::ArrivalSpec spec;
  spec.kind = serving::ArrivalSpec::Kind::kPoisson;
  spec.rate_rps = 200.0;
  serving::ArrivalProcess a(spec);
  serving::ArrivalProcess b(spec);
  sim::Rng ra(42), rb(42);
  TimePoint prev;
  for (int i = 0; i < 200; ++i) {
    const TimePoint ta = a.Next(ra);
    EXPECT_EQ(ta, b.Next(rb));
    EXPECT_GT(ta, prev);
    prev = ta;
  }
  // 200 draws at 200 rps land around t=1s (loose 3x bounds).
  EXPECT_GT(prev, TimePoint() + Duration::Seconds(0.33));
  EXPECT_LT(prev, TimePoint() + Duration::Seconds(3.0));
}

TEST(ArrivalsTest, TraceRateModulatesDensity) {
  // Rate 1000 rps in even seconds, 0 in odd seconds: every arrival must
  // land inside an even-second phase.
  serving::ArrivalSpec spec;
  spec.kind = serving::ArrivalSpec::Kind::kTrace;
  spec.rate_rps = 1000.0;
  spec.rate_trace = {1.0, 0.0};
  spec.phase = Duration::Seconds(1.0);
  serving::ArrivalProcess a(spec);
  sim::Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const TimePoint t = a.Next(rng);
    const std::int64_t sec = t.nanos() / 1000000000;
    EXPECT_EQ(sec % 2, 0) << "arrival in a zero-rate phase at " << t.nanos();
  }
}

TEST(ArrivalsTest, MmppAlternatesRates) {
  serving::ArrivalSpec spec;
  spec.kind = serving::ArrivalSpec::Kind::kMmpp;
  spec.mmpp_rate_low = 10.0;
  spec.mmpp_rate_high = 1000.0;
  spec.mmpp_dwell_low = Duration::Seconds(0.5);
  spec.mmpp_dwell_high = Duration::Seconds(0.5);
  serving::ArrivalProcess a(spec);
  sim::Rng rng(11);
  TimePoint prev;
  int n = 0;
  TimePoint last;
  for (; n < 2000 && last < TimePoint() + Duration::Seconds(10.0); ++n) {
    last = a.Next(rng);
    EXPECT_GE(last, prev);
    prev = last;
  }
  // Mean rate ~505 rps: 10 simulated seconds must produce far more than the
  // low rate alone and far fewer than the high rate alone would.
  EXPECT_GT(n, 100);
}

// ---------------------------------------------------------------------------
// Cluster end-to-end tests.

TEST(ClusterTest, FaultFreeClusterServesEveryRequest) {
  serving::ClusterOptions opts = SmallCluster(2);
  serving::Cluster cluster(opts);
  std::vector<serving::ClusterClientSpec> clients(
      4, PoissonClient("googlenet", 200.0, 6));
  const auto results = cluster.Run(clients);
  EXPECT_EQ(ServedAll(results), TotalAll(results));
  EXPECT_EQ(cluster.counters().requests_ok, 24u);
  EXPECT_EQ(cluster.counters().requests_failed_over, 0u);
  // No faults: the router's health view never leaves healthy.
  EXPECT_TRUE(cluster.router().transitions().empty());
  // Requests stayed home (sticky routing): no lazy tenant instantiation.
  EXPECT_EQ(cluster.counters().tenant_instantiations, 0u);
}

TEST(ClusterTest, CrashFailoverServesThroughOutage) {
  serving::ClusterOptions opts = SmallCluster(3);
  opts.faults.Crash(At(30), Duration::Millis(80), /*server=*/0);
  serving::Cluster cluster(opts);
  std::vector<serving::ClusterClientSpec> clients(
      6, PoissonClient("googlenet", 150.0, 25));
  const auto results = cluster.Run(clients);
  // Every request lands despite the crash: victims re-admit on survivors.
  EXPECT_EQ(ServedAll(results), TotalAll(results));
  EXPECT_EQ(CountAll(results, serving::RequestStatus::kFailed), 0);
  EXPECT_EQ(CountAll(results, serving::RequestStatus::kRejected), 0);
  EXPECT_EQ(cluster.counters().server_crashes, 1u);
  EXPECT_GT(cluster.counters().requests_failed_over, 0u);
  // Failover re-admissions are free: no budgeted retries were consumed by
  // the crash (the in-server device pipeline rejects promptly).
  EXPECT_EQ(cluster.counters().retries, 0u);
  // The crashed server's home clients had tenants instantiated elsewhere.
  EXPECT_GT(cluster.counters().tenant_instantiations, 0u);
  // The router saw the server go down.
  EXPECT_GE(cluster.counters().server_down_events, 1u);
}

TEST(ClusterTest, StaticRoutingBaselineDegradesUnderCrash) {
  serving::ClusterOptions opts = SmallCluster(3);
  opts.router.failover = false;  // static pin: no failover, budget retries only
  opts.faults.Crash(At(30), Duration::Millis(80), /*server=*/0);
  serving::Cluster cluster(opts);
  std::vector<serving::ClusterClientSpec> clients(
      6, PoissonClient("googlenet", 150.0, 25));
  const auto results = cluster.Run(clients);
  // Clients homed on server 0 lose requests issued during the outage.
  EXPECT_LT(ServedAll(results), TotalAll(results));
  EXPECT_GT(CountAll(results, serving::RequestStatus::kRejected) +
                CountAll(results, serving::RequestStatus::kFailed),
            0);
  EXPECT_EQ(cluster.counters().requests_failed_over, 0u);
  // Clients homed on the surviving servers are unaffected.
  for (const auto& r : results) {
    if (r.home_server != 0) {
      EXPECT_EQ(r.requests_completed,
                static_cast<int>(r.request_status.size()))
          << r.name;
    }
  }
}

TEST(ClusterTest, PartitionDropsTrafficThenFailsOver) {
  serving::ClusterOptions opts = SmallCluster(2);
  // A request is ~140ms at this sim's scale, so the window must span
  // several requests: sends into the partition are dropped until the
  // router marks the server down, and the heal leaves time to readmit.
  opts.faults.Partition(At(200), Duration::Millis(1200), /*server=*/0,
                        fault::PartitionDirection::kToServer);
  // Slow down-marking (6 errors at ~30ms probe cadence ≈ 180ms — more than
  // one request period) so at least one request is *sent* into the
  // partition while the server is still routable, exercising the lost-leg
  // path rather than only the probe path.
  opts.router.down_after_errors = 6;
  serving::Cluster cluster(opts);
  std::vector<serving::ClusterClientSpec> clients(
      4, PoissonClient("googlenet", 150.0, 20));
  const auto results = cluster.Run(clients);
  EXPECT_EQ(ServedAll(results), TotalAll(results));
  EXPECT_GT(cluster.counters().requests_lost_to_server, 0u);
  EXPECT_GT(cluster.counters().requests_failed_over, 0u);
  EXPECT_GT(cluster.counters().probe_failures, 0u);
  // The partition healed: the router readmitted the server.
  EXPECT_GE(cluster.counters().server_readmissions, 1u);
}

TEST(ClusterTest, DeterministicAcrossRepeats) {
  const auto run = [] {
    serving::ClusterOptions opts = SmallCluster(3);
    opts.seed = 17;
    opts.faults.Crash(At(25), Duration::Millis(60), /*server=*/1);
    opts.faults.Partition(At(60), Duration::Millis(30), /*server=*/2,
                          fault::PartitionDirection::kBoth);
    serving::Cluster cluster(opts);
    std::vector<serving::ClusterClientSpec> clients(
        5, PoissonClient("googlenet", 120.0, 12));
    return std::make_pair(cluster.Run(clients),
                          cluster.counters().requests_total());
  };
  const auto [a, total_a] = run();
  const auto [b, total_b] = run();
  EXPECT_EQ(total_a, total_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].finish_time, b[i].finish_time) << a[i].name;
    ASSERT_EQ(a[i].request_latency_ms, b[i].request_latency_ms) << a[i].name;
    ASSERT_EQ(a[i].request_status.size(), b[i].request_status.size());
    for (std::size_t r = 0; r < a[i].request_status.size(); ++r) {
      EXPECT_EQ(a[i].request_status[r], b[i].request_status[r]);
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded execution: the same cluster scenarios with the servers partitioned
// across engine shards. Golden bit-identity against the single-queue path is
// pinned in golden_determinism_test; these cover the cluster-level contracts
// on top of it.

TEST(ClusterTest, CrossShardFailoverSpendsNoRetryBudget) {
  // Two servers on two different shards. Server 0 crashes mid-traffic: its
  // victims must re-admit on server 1 — which lives on ANOTHER shard — via
  // the free-failover contract, crossing the shard boundary both ways.
  serving::ClusterOptions opts = SmallCluster(2);
  opts.shards = 2;
  opts.faults.Crash(At(30), Duration::Millis(80), /*server=*/0);
  serving::Cluster cluster(opts);
  ASSERT_EQ(cluster.shards(), 2u);
  std::vector<serving::ClusterClientSpec> clients(
      4, PoissonClient("googlenet", 150.0, 20));
  const auto results = cluster.Run(clients);
  // Every request lands despite the crash.
  EXPECT_EQ(ServedAll(results), TotalAll(results));
  EXPECT_EQ(CountAll(results, serving::RequestStatus::kFailed), 0);
  EXPECT_EQ(CountAll(results, serving::RequestStatus::kRejected), 0);
  // Victims crossed shards: failover fired, and it was free (no budgeted
  // retries), with lazy tenant instantiation on the survivor's shard.
  EXPECT_GT(cluster.counters().requests_failed_over, 0u);
  EXPECT_EQ(cluster.counters().retries, 0u);
  EXPECT_GT(cluster.counters().tenant_instantiations, 0u);
  // The engine actually ran parallel windows and crossed boundaries.
  EXPECT_GT(cluster.engine().sync_windows(), 0u);
  EXPECT_GT(cluster.engine().boundary_events(), 0u);
}

// Returns the invalid_argument message `make_cluster` throws ("" if none).
template <typename F>
std::string ConstructionError(F make_cluster) {
  try {
    make_cluster();
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return {};
}

TEST(ClusterTest, ShardedModeRejectsUnpartitionableState) {
  // Zero network delay: no lookahead, no conservative window. The error
  // names the offending option and the fix.
  serving::ClusterOptions no_delay = SmallCluster(2);
  no_delay.shards = 2;
  no_delay.router.net_delay = Duration::Zero();
  {
    const std::string msg =
        ConstructionError([&] { serving::Cluster cluster(no_delay); });
    EXPECT_NE(msg.find("RouterOptions::net_delay"), std::string::npos) << msg;
    EXPECT_NE(msg.find("shards = 1"), std::string::npos) << msg;
  }
  // Device-level capacity faults: the probe reads capacity hub-side. The
  // error names the fault kind and points at the hub-applied alternative.
  serving::ClusterOptions cap = SmallCluster(2);
  cap.shards = 2;
  cap.server.faults.CapacityFault(At(10), Duration::Millis(5), 0.5);
  {
    const std::string msg =
        ConstructionError([&] { serving::Cluster cluster(cap); });
    EXPECT_NE(msg.find("kCapacityFault"), std::string::npos) << msg;
    EXPECT_NE(msg.find("CapacityLoss"), std::string::npos) << msg;
  }
  // Adaptive assignment with a wrong-sized weight vector names the option.
  serving::ClusterOptions weights = SmallCluster(4);
  weights.shards = 2;
  weights.assignment = serving::ShardAssignment::kAdaptive;
  weights.server_weights = {1.0, 2.0};  // 2 weights, 4 servers
  {
    const std::string msg =
        ConstructionError([&] { serving::Cluster cluster(weights); });
    EXPECT_NE(msg.find("ClusterOptions::server_weights"), std::string::npos)
        << msg;
  }
  // Both rejected configurations are fine unsharded.
  no_delay.shards = 1;
  cap.shards = 1;
  EXPECT_NO_THROW(serving::Cluster{no_delay});
  EXPECT_NO_THROW(serving::Cluster{cap});
  // Previously-banned state now shards: alloc faults, a server-side tracer,
  // and a server-side observability registry all construct at shards=2.
  serving::ClusterOptions lifted = SmallCluster(2);
  lifted.shards = 2;
  lifted.server.faults.AllocFault(At(10), Duration::Millis(5));
  metrics::Tracer tracer(1000);
  lifted.server.executor.tracer = &tracer;
  metrics::MetricRegistry registry;
  lifted.server.observability.registry = &registry;
  EXPECT_NO_THROW(serving::Cluster{lifted});
}

TEST(ClusterTest, ShardedAllocFaultMatchesUnshardedTrajectory) {
  // Server 0 crashes while every server's device sits in an alloc-fault
  // window: the crash victims fail over to server 1, whose first-arrival
  // tenant instantiation hits TransientAllocFailure — the exact path that
  // used to be banned in sharded mode. The sharded run must replay the
  // unsharded trajectory bit-for-bit, including the budgeted retries the
  // alloc failures cost.
  const auto run = [](std::size_t shards) {
    serving::ClusterOptions opts = SmallCluster(2);
    opts.seed = 23;
    opts.shards = shards;
    opts.faults.Crash(At(30), Duration::Millis(80), /*server=*/0);
    opts.server.faults.AllocFault(At(25), Duration::Millis(120));
    serving::Cluster cluster(opts);
    std::vector<serving::ClusterClientSpec> clients(
        4, PoissonClient("googlenet", 150.0, 20));
    auto results = cluster.Run(clients);
    return std::make_pair(std::move(results), cluster.counters().retries);
  };
  const auto [unsharded, retries1] = run(1);
  const auto [sharded, retries2] = run(2);
  // The scenario only proves the lift if instantiation actually failed:
  // crashes alone fail over for free, so budgeted retries certify alloc
  // failures fired.
  EXPECT_GT(retries1, 0u);
  EXPECT_EQ(retries1, retries2);
  ASSERT_EQ(unsharded.size(), sharded.size());
  for (std::size_t i = 0; i < unsharded.size(); ++i) {
    EXPECT_EQ(unsharded[i].finish_time, sharded[i].finish_time);
    ASSERT_EQ(unsharded[i].request_latency_ms, sharded[i].request_latency_ms);
    ASSERT_EQ(unsharded[i].request_status.size(),
              sharded[i].request_status.size());
    for (std::size_t r = 0; r < unsharded[i].request_status.size(); ++r) {
      EXPECT_EQ(unsharded[i].request_status[r], sharded[i].request_status[r]);
    }
  }
}

// ---------------------------------------------------------------------------
// Aggregate arrival streams: one generator standing in for a population.

TEST(ArrivalsTest, AggregateStreamDrawsReproducibleClientIds) {
  serving::ArrivalSpec spec;
  spec.kind = serving::ArrivalSpec::Kind::kPoisson;
  spec.rate_rps = 500.0;
  serving::AggregateArrivalProcess a(spec, 1000000);
  serving::AggregateArrivalProcess b(spec, 1000000);
  sim::Rng ra(5), rb(5);
  TimePoint prev;
  for (int i = 0; i < 300; ++i) {
    const TimePoint t = a.Next(ra);
    const std::uint64_t id = a.NextClient(ra);
    EXPECT_EQ(t, b.Next(rb));
    EXPECT_EQ(id, b.NextClient(rb));
    EXPECT_GT(t, prev);
    EXPECT_LT(id, 1000000u);
    prev = t;
  }
}

TEST(ClusterTest, StreamRunServesAggregateTraffic) {
  serving::ClusterOptions opts = SmallCluster(2);
  serving::Cluster cluster(opts);
  serving::ClusterStreamSpec stream;
  stream.request.model = "googlenet";
  stream.request.batch = 10;
  stream.arrivals.kind = serving::ArrivalSpec::Kind::kPoisson;
  stream.arrivals.rate_rps = 200.0;
  stream.modeled_clients = 100000;  // population >> in-flight requests
  stream.num_requests = 40;
  const auto results = cluster.RunStreams({stream});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].requests_completed, 40);
  EXPECT_EQ(results[0].request_status.size(), 40u);
  for (const double ms : results[0].request_latency_ms) EXPECT_GT(ms, 0.0);
  // Ids spread across both servers' homes, so both served traffic.
  EXPECT_EQ(cluster.counters().requests_ok, 40u);
}

TEST(ClusterTest, StreamRunIsBitIdenticalAcrossShardCounts) {
  const auto run = [](std::size_t shards) {
    serving::ClusterOptions opts = SmallCluster(2);
    opts.seed = 23;
    opts.shards = shards;
    opts.faults.Crash(At(50), Duration::Millis(60), /*server=*/1);
    serving::Cluster cluster(opts);
    serving::ClusterStreamSpec stream;
    stream.request.model = "googlenet";
    stream.request.batch = 10;
    stream.arrivals.kind = serving::ArrivalSpec::Kind::kPoisson;
    stream.arrivals.rate_rps = 150.0;
    stream.modeled_clients = 50000;
    stream.num_requests = 30;
    return cluster.RunStreams({stream});
  };
  const auto seq = run(1);
  const auto par = run(2);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].finish_time, par[i].finish_time);
    EXPECT_EQ(seq[i].requests_completed, par[i].requests_completed);
    ASSERT_EQ(seq[i].request_latency_ms, par[i].request_latency_ms);
    for (std::size_t r = 0; r < seq[i].request_status.size(); ++r) {
      EXPECT_EQ(seq[i].request_status[r], par[i].request_status[r]);
    }
  }
}

TEST(ClusterTest, RandomServerFaultPlanIsSeedStable) {
  fault::ServerFaultPlan::RandomOptions ro;
  ro.num_servers = 4;
  ro.expected_crashes = 2.0;
  ro.expected_hangs = 1.0;
  ro.expected_partitions = 2.0;
  const auto a = fault::ServerFaultPlan::Random(ro, 99);
  const auto b = fault::ServerFaultPlan::Random(ro, 99);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].server, b.events()[i].server);
    EXPECT_EQ(a.events()[i].duration, b.events()[i].duration);
  }
  // Sorted by time, servers in range.
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a.events()[i - 1].at, a.events()[i].at);
  }
  for (const auto& e : a.events()) EXPECT_LT(e.server, 4u);
}

}  // namespace
}  // namespace olympian
