// Unit tests for the dataflow-graph engine: Graph structure, ThreadPool,
// and the Algorithm-1 Executor.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "graph/executor.h"
#include "graph/graph.h"
#include "graph/thread_pool.h"
#include "gpusim/gpu.h"
#include "sim/environment.h"

namespace olympian::graph {
namespace {

using gpusim::Gpu;
using gpusim::GpuSpec;
using sim::Duration;
using sim::Environment;
using sim::Task;
using sim::TimePoint;

Node CpuNode(std::string name, Duration t, std::vector<NodeId> inputs) {
  Node n;
  n.name = std::move(name);
  n.device = Device::kCpu;
  n.cpu_time = t;
  n.inputs = std::move(inputs);
  return n;
}

Node GpuNode(std::string name, double blocks_per_item, Duration block_work,
             std::vector<NodeId> inputs) {
  Node n;
  n.name = std::move(name);
  n.device = Device::kGpu;
  n.cpu_time = Duration::Micros(1);
  n.blocks_per_item = blocks_per_item;
  n.block_work = block_work;
  n.inputs = std::move(inputs);
  return n;
}

TEST(GraphTest, AddNodeWiresEdges) {
  Graph g("t");
  auto a = g.AddNode(CpuNode("a", Duration::Micros(1), {}));
  auto b = g.AddNode(CpuNode("b", Duration::Micros(1), {a}));
  auto c = g.AddNode(CpuNode("c", Duration::Micros(1), {a, b}));
  EXPECT_EQ(g.node(a).outputs, (std::vector<NodeId>{b, c}));
  EXPECT_EQ(g.node(c).inputs, (std::vector<NodeId>{a, b}));
  EXPECT_EQ(g.size(), 3u);
  g.Validate();
}

TEST(GraphTest, ForwardReferenceRejected) {
  Graph g("t");
  g.AddNode(CpuNode("a", Duration::Micros(1), {}));
  EXPECT_THROW(g.AddNode(CpuNode("bad", Duration::Micros(1), {5})),
               std::logic_error);
}

TEST(GraphTest, ValidateRejectsMultipleSources) {
  Graph g("t");
  g.AddNode(CpuNode("a", Duration::Micros(1), {}));
  g.AddNode(CpuNode("orphan", Duration::Micros(1), {}));
  EXPECT_THROW(g.Validate(), std::logic_error);
}

TEST(GraphTest, ValidateRejectsEmpty) {
  Graph g("t");
  EXPECT_THROW(g.Validate(), std::logic_error);
}

TEST(GraphTest, GpuNodeCountTracked) {
  Graph g("t");
  auto a = g.AddNode(CpuNode("a", Duration::Micros(1), {}));
  g.AddNode(GpuNode("g1", 1.0, Duration::Micros(5), {a}));
  g.AddNode(GpuNode("g2", 1.0, Duration::Micros(5), {a}));
  EXPECT_EQ(g.gpu_node_count(), 2u);
  EXPECT_EQ(g.cpu_node_count(), 1u);
}

TEST(GraphTest, BlocksForIsLinearInBatch) {
  Node n = GpuNode("g", 2.0, Duration::Micros(5), {});
  n.blocks_base = 10;
  EXPECT_EQ(n.BlocksFor(100), 210);
  EXPECT_EQ(n.BlocksFor(50), 110);
  // Floors at 1 block.
  Node tiny = GpuNode("t", 0.0, Duration::Micros(5), {});
  EXPECT_EQ(tiny.BlocksFor(1), 1);
}

TEST(GraphTest, TotalGpuWorkSumsBlocksTimesWork) {
  Graph g("t");
  auto a = g.AddNode(CpuNode("a", Duration::Micros(1), {}));
  g.AddNode(GpuNode("g1", 1.0, Duration::Micros(10), {a}));  // batch b: b blocks
  EXPECT_EQ(g.TotalGpuWork(7), Duration::Micros(70));
}

TEST(ThreadPoolTest, ExecutesAllItems) {
  Environment env;
  ThreadPool pool(env, 4);
  int done = 0;
  for (int i = 0; i < 20; ++i) {
    pool.Schedule([&env, &done]() -> Task {
      co_await env.Delay(Duration::Micros(10));
      ++done;
    });
  }
  pool.Shutdown();
  env.Run();
  EXPECT_EQ(done, 20);
  EXPECT_EQ(pool.items_executed(), 20u);
}

TEST(ThreadPoolTest, ConcurrencyBoundedByPoolSize) {
  Environment env;
  ThreadPool pool(env, 3);
  int inside = 0, peak = 0;
  for (int i = 0; i < 12; ++i) {
    pool.Schedule([&env, &inside, &peak]() -> Task {
      ++inside;
      peak = std::max(peak, inside);
      co_await env.Delay(Duration::Micros(10));
      --inside;
    });
  }
  pool.Shutdown();
  env.Run();
  EXPECT_EQ(peak, 3);
  EXPECT_EQ(pool.peak_busy_workers(), 3u);
}

TEST(ThreadPoolTest, ItemsHoldingWorkersStallOthers) {
  // A suspended item occupies its worker — the property behind Olympian's
  // §4.3 thread-pool scaling limit.
  Environment env;
  ThreadPool pool(env, 1);
  sim::CondVar cv(env);
  std::vector<int> order;
  pool.Schedule([&cv, &order]() -> Task {
    order.push_back(1);
    co_await cv.Wait();  // hold the only worker
    order.push_back(3);
  });
  pool.Schedule([&order]() -> Task {
    order.push_back(2);
    co_return;
  });
  env.Spawn([](Environment& e, sim::CondVar& c) -> Task {
    co_await e.Delay(Duration::Millis(1));
    c.NotifyAll();
  }(env, cv));
  pool.Shutdown();
  env.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

// --- Executor fixture ---------------------------------------------------

struct ExecFixture {
  explicit ExecFixture(std::size_t pool_size = 64, ExecutorOptions opts = {},
                       std::int64_t slots = 64)
      : gpu(env,
            Gpu::Options{.spec = GpuSpec{.name = "t",
                                         .num_sms = static_cast<int>(slots),
                                         .max_blocks_per_sm = 1,
                                         .clock_scale = 1.0,
                                         .memory_mb = 100000},
                         .arbitration_bias_sigma = 0.0,
                         .clock_noise_sigma = 0.0,
                         .seed = 3}),
        pool(env, pool_size),
        exec(env, gpu, pool, opts, /*seed=*/5, nullptr) {}

  JobContext MakeCtx(int batch, int n_streams = 2) {
    JobContext ctx;
    ctx.job = next_job++;
    ctx.batch = batch;
    ctx.model_key = "test@" + std::to_string(batch);
    for (int i = 0; i < n_streams; ++i) ctx.streams.push_back(gpu.CreateStream());
    return ctx;
  }

  Environment env;
  Gpu gpu;
  ThreadPool pool;
  Executor exec;
  gpusim::JobId next_job = 0;
};

Graph DiamondGraph() {
  // input -> {gpu1, gpu2} -> join(cpu)
  Graph g("diamond");
  auto in = g.AddNode(CpuNode("in", Duration::Micros(2), {}));
  auto g1 = g.AddNode(GpuNode("g1", 1.0, Duration::Micros(10), {in}));
  auto g2 = g.AddNode(GpuNode("g2", 1.0, Duration::Micros(20), {in}));
  g.AddNode(CpuNode("join", Duration::Micros(2), {g1, g2}));
  g.Validate();
  return g;
}

TEST(ExecutorTest, RunsEveryNodeOnce) {
  ExecFixture f;
  Graph g = DiamondGraph();
  auto ctx = f.MakeCtx(/*batch=*/8);
  f.env.Spawn([](ExecFixture& fx, JobContext& c, const Graph& gr) -> Task {
    co_await fx.exec.RunOnce(c, gr);
    fx.pool.Shutdown();
  }(f, ctx, g));
  f.env.Run();
  EXPECT_EQ(f.exec.nodes_executed(), g.size());
  EXPECT_EQ(f.exec.runs_completed(), 1u);
  EXPECT_EQ(f.gpu.kernels_completed(), 2u);
}

TEST(ExecutorTest, RespectsDependencies) {
  // A chain a->b->c of CPU nodes must execute sequentially: total time is
  // the sum of (jittered) node times; with jitter off it's exact.
  ExecutorOptions opts;
  opts.cpu_jitter = 0.0;
  opts.gpu_jitter = 0.0;
  ExecFixture f(64, opts);
  Graph g("chain");
  auto a = g.AddNode(CpuNode("a", Duration::Micros(10), {}));
  auto b = g.AddNode(CpuNode("b", Duration::Micros(20), {a}));
  g.AddNode(CpuNode("c", Duration::Micros(30), {b}));
  g.Validate();
  auto ctx = f.MakeCtx(1);
  f.env.Spawn([](ExecFixture& fx, JobContext& c, const Graph& gr) -> Task {
    co_await fx.exec.RunOnce(c, gr);
    fx.pool.Shutdown();
  }(f, ctx, g));
  f.env.Run();
  EXPECT_EQ(f.env.Now(), TimePoint() + Duration::Micros(60));
}

TEST(ExecutorTest, ParallelGpuBranchesOverlap) {
  // Two small GPU nodes on different streams overlap; the run finishes at
  // roughly max(branch times), not the sum.
  ExecutorOptions opts;
  opts.cpu_jitter = 0.0;
  opts.gpu_jitter = 0.0;
  ExecFixture f(64, opts);
  Graph g = DiamondGraph();
  auto ctx = f.MakeCtx(/*batch=*/8);  // 8 blocks each, 64 slots: no waves
  f.env.Spawn([](ExecFixture& fx, JobContext& c, const Graph& gr) -> Task {
    co_await fx.exec.RunOnce(c, gr);
    fx.pool.Shutdown();
  }(f, ctx, g));
  f.env.Run();
  // in(2us) + max(1+10, 1+20)us + join(2us) = 25us.
  EXPECT_EQ(f.env.Now(), TimePoint() + Duration::Micros(25));
}

TEST(ExecutorTest, RecordsCostProfile) {
  ExecutorOptions opts;
  opts.cpu_jitter = 0.0;
  opts.gpu_jitter = 0.0;
  ExecFixture f(64, opts);
  Graph g = DiamondGraph();
  auto ctx = f.MakeCtx(8);
  CostProfile profile;
  f.env.Spawn([](ExecFixture& fx, JobContext& c, const Graph& gr,
                 CostProfile& p) -> Task {
    co_await fx.exec.RunOnce(c, gr, &p);
    fx.pool.Shutdown();
  }(f, ctx, g, profile));
  f.env.Run();
  ASSERT_EQ(profile.size(), g.size());
  EXPECT_DOUBLE_EQ(profile.NodeCost(0), 2000.0);         // 2us CPU
  EXPECT_DOUBLE_EQ(profile.NodeCost(1), 1000.0 + 10000.0);  // launch + kernel
  EXPECT_GT(profile.TotalCost(), 0.0);
}

TEST(ExecutorTest, OnlineProfilerInflatesRuntime) {
  // Figure 6: the online cost profiler adds per-node CPU overhead.
  Graph g = DiamondGraph();
  auto run = [&](bool online) {
    ExecutorOptions opts;
    opts.cpu_jitter = 0.0;
    opts.gpu_jitter = 0.0;
  opts.gpu_jitter = 0.0;
    opts.online_cost_profiler = online;
    opts.profiler_overhead_per_node = Duration::Micros(12);
    ExecFixture f(64, opts);
    auto ctx = f.MakeCtx(8);
    f.env.Spawn([](ExecFixture& fx, JobContext& c, const Graph& gr) -> Task {
      co_await fx.exec.RunOnce(c, gr);
      fx.pool.Shutdown();
    }(f, ctx, g));
    f.env.Run();
    return f.env.Now() - TimePoint();
  };
  const Duration base = run(false);
  const Duration online = run(true);
  EXPECT_GT(online, base);
  // Critical path has 3 nodes -> at least 36us extra.
  EXPECT_GE(online - base, Duration::Micros(36));
}

TEST(ExecutorTest, PerItemCpuTimeScalesWithBatch) {
  ExecutorOptions opts;
  opts.cpu_jitter = 0.0;
  opts.gpu_jitter = 0.0;
  ExecFixture f(64, opts);
  Graph g("t");
  Node in = CpuNode("in", Duration::Micros(10), {});
  in.cpu_time_per_item = Duration::Micros(2);
  g.AddNode(std::move(in));
  g.Validate();
  auto ctx = f.MakeCtx(/*batch=*/50);
  f.env.Spawn([](ExecFixture& fx, JobContext& c, const Graph& gr) -> Task {
    co_await fx.exec.RunOnce(c, gr);
    fx.pool.Shutdown();
  }(f, ctx, g));
  f.env.Run();
  EXPECT_EQ(f.env.Now(), TimePoint() + Duration::Micros(10 + 100));
}

TEST(ExecutorTest, MissingStreamsRejected) {
  ExecFixture f;
  Graph g = DiamondGraph();
  JobContext ctx;  // no streams
  EXPECT_THROW(f.exec.RunOnce(ctx, g), std::invalid_argument);
}

TEST(ExecutorTest, SequentialRunsReuseContext) {
  ExecFixture f;
  Graph g = DiamondGraph();
  auto ctx = f.MakeCtx(8);
  f.env.Spawn([](ExecFixture& fx, JobContext& c, const Graph& gr) -> Task {
    for (int i = 0; i < 5; ++i) co_await fx.exec.RunOnce(c, gr);
    fx.pool.Shutdown();
  }(f, ctx, g));
  f.env.Run();
  EXPECT_EQ(f.exec.runs_completed(), 5u);
  EXPECT_EQ(f.gpu.kernels_completed(), 10u);
}

// Property: on random DAGs, every node executes exactly once and
// dependencies hold (checked via completion-order bookkeeping in a hook).
class RandomDagTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomDagTest, AllNodesExecutedDependenciesHeld) {
  sim::Rng rng(GetParam());
  Graph g("rand");
  g.AddNode(CpuNode("in", Duration::Micros(1), {}));
  const int n = 80;
  for (int i = 1; i < n; ++i) {
    // 1-3 inputs from earlier nodes.
    std::set<NodeId> ins;
    const int k = static_cast<int>(rng.UniformInt(1, 3));
    for (int j = 0; j < k; ++j) {
      ins.insert(static_cast<NodeId>(rng.UniformInt(0, i - 1)));
    }
    std::vector<NodeId> inputs(ins.begin(), ins.end());
    if (rng.NextDouble() < 0.5) {
      g.AddNode(GpuNode("g" + std::to_string(i),
                        rng.Uniform(0.5, 2.0),
                        Duration::Micros(rng.UniformInt(1, 30)),
                        std::move(inputs)));
    } else {
      g.AddNode(CpuNode("c" + std::to_string(i),
                        Duration::Micros(rng.UniformInt(1, 20)),
                        std::move(inputs)));
    }
  }
  g.Validate();

  ExecFixture f(16);
  auto ctx = f.MakeCtx(10);
  CostProfile profile;
  f.env.Spawn([](ExecFixture& fx, JobContext& c, const Graph& gr,
                 CostProfile& p) -> Task {
    co_await fx.exec.RunOnce(c, gr, &p);
    fx.pool.Shutdown();
  }(f, ctx, g, profile));
  f.env.Run();
  EXPECT_EQ(f.exec.nodes_executed(), g.size());
  // Every node got a recorded (positive) cost -> executed exactly once.
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_GT(profile.NodeCost(static_cast<NodeId>(i)), 0.0) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagTest,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 1234));

}  // namespace
}  // namespace olympian::graph
