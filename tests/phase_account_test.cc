// Tests for the latency-anatomy subsystem (metrics/phase_account.h,
// metrics/incident.h): the cursor-based phase account and its hard
// accounting identity (phase sum == end-to-end latency, bit-exact in
// virtual time), the tail-blame collector, the incident state machine, and
// the byte-identical-across-shard-counts contract for both exports under a
// crash + partition + capacity chaos sweep.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "metrics/incident.h"
#include "metrics/phase_account.h"
#include "serving/batcher.h"
#include "serving/cluster.h"
#include "serving/server.h"
#include "sim/environment.h"
#include "sim/time.h"

namespace olympian {
namespace {

using metrics::Phase;
using metrics::PhaseAccount;
using metrics::PhaseCollector;
using sim::Duration;
using sim::TimePoint;

TimePoint At(double ms) { return TimePoint() + Duration::Seconds(ms / 1e3); }

// ---------------------------------------------------------------------------
// PhaseAccount: the cursor mechanics.

TEST(PhaseAccountTest, ChargesTileTheLifetimeExactly) {
  PhaseAccount pa;
  pa.Start(At(10));
  pa.Charge(Phase::kRouterQueue, At(12));
  pa.Charge(Phase::kGpuCompute, At(15));
  pa.Charge(Phase::kResponseHop, At(15.5));
  EXPECT_EQ(pa.ns(Phase::kRouterQueue), Duration::Millis(2).nanos());
  EXPECT_EQ(pa.ns(Phase::kGpuCompute), Duration::Millis(3).nanos());
  EXPECT_EQ(pa.ns(Phase::kResponseHop), Duration::Micros(500).nanos());
  // The identity, bit-exact: phase sum == cursor - start.
  EXPECT_EQ(pa.TotalNs(), (pa.cursor() - pa.start()).nanos());
  EXPECT_EQ(pa.TotalNs(), (At(15.5) - At(10)).nanos());
}

TEST(PhaseAccountTest, ZeroWidthChargeIsANoOp) {
  PhaseAccount pa;
  pa.Start(At(5));
  pa.Charge(Phase::kAdmission, At(5));
  EXPECT_EQ(pa.TotalNs(), 0);
  EXPECT_EQ(pa.ns(Phase::kAdmission), 0);
}

TEST(PhaseAccountTest, StartResetsAPreviousLife) {
  PhaseAccount pa;
  pa.Start(At(0));
  pa.Charge(Phase::kBackoff, At(7));
  pa.Start(At(100));
  EXPECT_EQ(pa.TotalNs(), 0);
  EXPECT_EQ(pa.ns(Phase::kBackoff), 0);
  EXPECT_EQ(pa.start(), At(100));
}

TEST(PhaseAccountTest, SplitChargeDividesTheInterval) {
  PhaseAccount pa;
  pa.Start(At(0));
  pa.SplitCharge(Phase::kGpuCompute, Duration::Millis(3), Phase::kGpuQueue,
                 At(10));
  EXPECT_EQ(pa.ns(Phase::kGpuCompute), Duration::Millis(3).nanos());
  EXPECT_EQ(pa.ns(Phase::kGpuQueue), Duration::Millis(7).nanos());
  EXPECT_EQ(pa.TotalNs(), Duration::Millis(10).nanos());
}

TEST(PhaseAccountTest, SplitChargeClampsIntoTheInterval) {
  PhaseAccount pa;
  pa.Start(At(0));
  // More than the interval: everything lands on `a`, nothing on `rest`.
  pa.SplitCharge(Phase::kGpuCompute, Duration::Seconds(99), Phase::kGpuQueue,
                 At(2));
  EXPECT_EQ(pa.ns(Phase::kGpuCompute), Duration::Millis(2).nanos());
  EXPECT_EQ(pa.ns(Phase::kGpuQueue), 0);
  // Negative: everything lands on `rest`.
  pa.SplitCharge(Phase::kGpuCompute, Duration::Millis(-5), Phase::kGpuQueue,
                 At(3));
  EXPECT_EQ(pa.ns(Phase::kGpuQueue), Duration::Millis(1).nanos());
  EXPECT_EQ(pa.TotalNs(), Duration::Millis(3).nanos());
}

TEST(PhaseAccountTest, DominantTieBreaksTowardTheLowestIndex) {
  PhaseAccount pa;
  pa.Start(At(0));
  pa.Charge(Phase::kReload, At(4));       // 4ms
  pa.Charge(Phase::kGpuCompute, At(8));   // 4ms — tie
  EXPECT_EQ(pa.Dominant(), Phase::kReload);
  pa.Charge(Phase::kGpuCompute, At(9));   // now 5ms — wins outright
  EXPECT_EQ(pa.Dominant(), Phase::kGpuCompute);
}

// ---------------------------------------------------------------------------
// PhaseCollector: violation classification, identity verification, merge.

PhaseAccount OneChargeAccount(Phase p, double ms) {
  PhaseAccount pa;
  pa.Start(At(0));
  pa.Charge(p, At(ms));
  return pa;
}

TEST(PhaseCollectorTest, ClassifiesViolationsBySloAndOutcome) {
  PhaseCollector c(PhaseCollector::Options{.slo_ms = 100.0});
  c.Record(0, "m", OneChargeAccount(Phase::kGpuCompute, 50), /*ok=*/true,
           Duration::Millis(50));
  c.Record(0, "m", OneChargeAccount(Phase::kGpuQueue, 200), /*ok=*/true,
           Duration::Millis(200));
  c.Record(0, "m", OneChargeAccount(Phase::kBackoff, 30), /*ok=*/false,
           Duration::Millis(30));
  EXPECT_EQ(c.requests(), 3u);
  EXPECT_EQ(c.violations(), 2u);  // slow success + failure
  EXPECT_EQ(c.mismatches(), 0u);
  const auto& row = c.rows().at({0, "m"});
  EXPECT_EQ(row.dominant[static_cast<int>(Phase::kGpuQueue)], 1u);
  EXPECT_EQ(row.dominant[static_cast<int>(Phase::kBackoff)], 1u);
  // Violation-restricted sums exclude the fast success.
  EXPECT_EQ(row.violation_ns[static_cast<int>(Phase::kGpuCompute)], 0);
}

TEST(PhaseCollectorTest, CountsAccountingIdentityMismatches) {
  PhaseCollector c;
  // Phase sum says 10ms, measured latency says 11ms: a missed charge site.
  c.Record(1, "m", OneChargeAccount(Phase::kGpuCompute, 10), true,
           Duration::Millis(11));
  EXPECT_EQ(c.mismatches(), 1u);
  c.Record(1, "m", OneChargeAccount(Phase::kGpuCompute, 10), true,
           Duration::Millis(10));
  EXPECT_EQ(c.mismatches(), 1u);
}

TEST(PhaseCollectorTest, MergeFoldsRowsAndTotals) {
  PhaseCollector a(PhaseCollector::Options{.slo_ms = 100.0});
  PhaseCollector b(PhaseCollector::Options{.slo_ms = 100.0});
  a.Record(0, "m", OneChargeAccount(Phase::kGpuCompute, 50), true,
           Duration::Millis(50));
  b.Record(0, "m", OneChargeAccount(Phase::kGpuCompute, 200), true,
           Duration::Millis(200));
  b.Record(2, "n", OneChargeAccount(Phase::kReload, 10), false,
           Duration::Millis(10));
  a.MergeFrom(b);
  EXPECT_EQ(a.requests(), 3u);
  EXPECT_EQ(a.violations(), 2u);
  EXPECT_EQ(a.rows().size(), 2u);
  EXPECT_EQ(a.rows().at({0, "m"}).requests, 2u);
  EXPECT_EQ(a.rows().at({0, "m"})
                .total_ns[static_cast<int>(Phase::kGpuCompute)],
            Duration::Millis(250).nanos());
}

// ---------------------------------------------------------------------------
// The identity through the real single-server request path, faults and all.

TEST(PhaseAccountTest, IdentityHoldsThroughServerFaultsAndFailover) {
  PhaseCollector phases(PhaseCollector::Options{.slo_ms = 100.0});
  serving::ServerOptions opts;
  opts.seed = 23;
  opts.num_gpus = 2;
  opts.failover.enabled = true;
  opts.failover.hedge_when_degraded = true;
  opts.failover.hedge_delay = Duration::Millis(1);
  opts.degradation.retry.base_backoff = Duration::Millis(10);
  opts.observability.phases = &phases;
  // The observability_tour staged outage: kernel failure -> retry, hang ->
  // degraded routing + hedge, reset -> mid-kernel kill + adoption of the
  // hedge. Exercises reload, backoff, hedge, failover-readmit charges.
  opts.faults.KernelFailure(At(595), /*stream=*/1, /*gpu_index=*/0);
  opts.faults.DeviceHang(At(600), Duration::Millis(300), /*gpu_index=*/0);
  opts.faults.DeviceReset(At(650), Duration::Seconds(100), /*gpu_index=*/0);

  serving::Experiment exp(opts);
  const auto results = exp.Run(
      {serving::ClientSpec{
           .model = "resnet-152", .batch = 20, .num_batches = 10},
       serving::ClientSpec{
           .model = "googlenet", .batch = 20, .num_batches = 10}});

  int total = 0;
  for (const auto& r : results) {
    total += static_cast<int>(r.request_status.size());
  }
  EXPECT_EQ(phases.requests(), static_cast<std::uint64_t>(total));
  EXPECT_GT(phases.requests(), 0u);
  // THE gate: every request's phase charges tile its lifetime bit-exactly.
  EXPECT_EQ(phases.mismatches(), 0u);
}

// ---------------------------------------------------------------------------
// The identity through the batcher: coalesced waiters split the batch's GPU
// run into per-member compute + queue, and the cursor lands on resume.

TEST(PhaseAccountTest, IdentityHoldsThroughTheBatcher) {
  serving::Experiment exp(serving::ServerOptions{});
  serving::Batcher::Options bo;
  bo.allowed_batch_sizes = {4, 8};
  bo.batch_timeout = Duration::Millis(20);
  serving::Batcher batcher(exp, "resnet-152", bo);

  constexpr int kProducers = 2;  // partial batch: timeout path, real wait
  std::vector<PhaseAccount> accounts(kProducers);
  std::vector<Duration> latencies(kProducers);
  std::vector<sim::Process> procs;
  for (int i = 0; i < kProducers; ++i) {
    procs.push_back(exp.env().Spawn(
        [](sim::Environment& env, serving::Batcher& b, PhaseAccount& pa,
           Duration& lat) -> sim::Task {
          pa.Start(env.Now());
          co_await b.Infer(&lat, &pa);
        }(exp.env(), batcher, accounts[i], latencies[i]),
        "producer"));
  }
  exp.env().Spawn(
      [](serving::Batcher& b, std::vector<sim::Process> ps) -> sim::Task {
        for (auto& p : ps) co_await p.Join();
        b.Close();
      }(batcher, std::move(procs)),
      "supervisor");
  exp.FinishManualRun();

  for (int i = 0; i < kProducers; ++i) {
    EXPECT_EQ(accounts[i].TotalNs(), latencies[i].nanos()) << "producer " << i;
    EXPECT_GT(accounts[i].ns(Phase::kBatcherWait), 0) << "producer " << i;
    EXPECT_GT(accounts[i].ns(Phase::kGpuCompute), 0) << "producer " << i;
  }
}

// ---------------------------------------------------------------------------
// Cluster chaos sweep: identity under crash + partition + capacity faults,
// and byte-identical blame/incident exports at shards=1 vs shards=4.

struct ChaosResult {
  std::string blame_json;
  std::string incidents_json;
  std::uint64_t requests = 0;
  std::uint64_t violations = 0;
  std::uint64_t mismatches = 0;
  std::vector<metrics::IncidentLog::Incident> incidents;
};

ChaosResult RunChaosCluster(std::size_t shards) {
  PhaseCollector phases(PhaseCollector::Options{.slo_ms = 250.0});
  metrics::IncidentLog incidents;
  serving::ClusterOptions opts;
  opts.num_servers = 3;
  opts.server.num_gpus = 1;
  opts.server.pool_threads = 100;
  opts.seed = 29;
  opts.shards = shards;
  opts.phases = &phases;
  opts.incidents = &incidents;
  opts.faults.CapacityLoss(At(300), Duration::Millis(800), /*server=*/2,
                           /*capacity=*/0.4);
  opts.faults.Crash(At(400), Duration::Millis(600), /*server=*/0);
  opts.faults.Partition(At(1200), Duration::Millis(500), /*server=*/1,
                        fault::PartitionDirection::kToServer);
  serving::Cluster cluster(opts);

  serving::ClusterClientSpec spec;
  spec.request.model = "googlenet";
  spec.request.batch = 10;
  spec.request.num_batches = 12;
  spec.arrivals.kind = serving::ArrivalSpec::Kind::kPoisson;
  spec.arrivals.rate_rps = 100.0;
  cluster.Run(std::vector<serving::ClusterClientSpec>(6, spec));

  ChaosResult out;
  std::ostringstream blame, inc;
  phases.WriteBlameJson(blame);
  incidents.WriteJson(inc);
  out.blame_json = blame.str();
  out.incidents_json = inc.str();
  out.requests = phases.requests();
  out.violations = phases.violations();
  out.mismatches = phases.mismatches();
  out.incidents = incidents.incidents();
  return out;
}

TEST(PhaseAccountTest, ChaosSweepIdentityAndShardCountByteEquality) {
  const ChaosResult one = RunChaosCluster(1);
  EXPECT_GT(one.requests, 0u);
  EXPECT_GT(one.violations, 0u);
  EXPECT_EQ(one.mismatches, 0u);

  const ChaosResult four = RunChaosCluster(4);
  EXPECT_EQ(four.mismatches, 0u);
  // The exports are byte-identical at any shard count: the collector and
  // the incident log are fed hub-side in virtual-time order.
  EXPECT_EQ(one.blame_json, four.blame_json);
  EXPECT_EQ(one.incidents_json, four.incidents_json);
}

TEST(IncidentLogTest, CrashIncidentWalksTheFullStateMachine) {
  const ChaosResult run = RunChaosCluster(1);
  ASSERT_EQ(run.incidents.size(), 3u);
  const metrics::IncidentLog::Incident* crash = nullptr;
  for (const auto& inc : run.incidents) {
    if (inc.kind == "server-crash") crash = &inc;
  }
  ASSERT_NE(crash, nullptr);
  EXPECT_EQ(crash->server, 0);
  // injected -> detected -> mitigated -> recovered, in order.
  EXPECT_GE(crash->detected_ns, crash->injected_ns);
  EXPECT_GE(crash->mitigated_ns, crash->detected_ns);
  EXPECT_GE(crash->recovered_ns, crash->mitigated_ns);
  EXPECT_EQ(crash->mitigation, "failover");
}

TEST(IncidentLogTest, ToleratedGrayFaultNeverDetects) {
  const ChaosResult run = RunChaosCluster(1);
  const metrics::IncidentLog::Incident* gray = nullptr;
  for (const auto& inc : run.incidents) {
    if (inc.kind == "capacity-loss") gray = &inc;
  }
  ASSERT_NE(gray, nullptr);
  // 40% capacity slows requests but keeps probes answering: the router
  // never marks the server unroutable, so the incident stays undetected —
  // exactly what "tolerated gray fault" means in the export.
  EXPECT_EQ(gray->detected_ns, -1);
  EXPECT_EQ(gray->mitigated_ns, -1);
  // Requests through the open window are still attributed.
  EXPECT_GT(gray->requests_impacted, 0u);
}

// Unit-level incident state machine, no cluster involved.
TEST(IncidentLogTest, BrownoutMitigatesEveryOpenDetectedIncident) {
  metrics::IncidentLog log;
  log.Enable();
  log.Inject(0, "crash", At(100), Duration::Millis(500));
  log.Inject(1, "hang", At(120), Duration::Millis(500));
  log.HealthTransition(0, true, false, At(110));
  log.HealthTransition(1, true, false, At(130));
  log.Mitigation(-1, "brownout", At(140));  // global: attaches to both
  log.HealthTransition(0, false, true, At(700));
  log.Finalize();
  ASSERT_EQ(log.incidents().size(), 2u);
  EXPECT_EQ(log.incidents()[0].mitigation, "brownout");
  EXPECT_EQ(log.incidents()[1].mitigation, "brownout");
  EXPECT_EQ(log.incidents()[0].recovered_ns, (At(700) - TimePoint()).nanos());
  EXPECT_EQ(log.incidents()[1].recovered_ns, -1);  // never recovered
}

TEST(IncidentLogTest, DisabledLogIgnoresAllFeeds) {
  metrics::IncidentLog log;
  log.Inject(0, "crash", At(100), Duration::Millis(500));
  log.RequestOutcome(0, At(110), false);
  log.Finalize();
  EXPECT_TRUE(log.incidents().empty());
  EXPECT_EQ(log.total_requests(), 0u);
}

}  // namespace
}  // namespace olympian
