// Unit tests for the discrete-event simulation kernel (sim/).

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/environment.h"
#include "sim/random.h"
#include "sim/shard.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/time.h"

namespace olympian::sim {
namespace {

using ::testing::Test;

TEST(DurationTest, ArithmeticAndConversions) {
  EXPECT_EQ(Duration::Micros(3).nanos(), 3000);
  EXPECT_EQ(Duration::Millis(2).nanos(), 2000000);
  EXPECT_EQ(Duration::Seconds(1.5).nanos(), 1500000000);
  EXPECT_EQ((Duration::Micros(5) + Duration::Micros(7)).micros(), 12.0);
  EXPECT_EQ((Duration::Millis(5) - Duration::Millis(7)).millis(), -2.0);
  EXPECT_EQ((Duration::Micros(10) * 2.5).micros(), 25.0);
  EXPECT_DOUBLE_EQ(Duration::Millis(1).Ratio(Duration::Millis(4)), 0.25);
  EXPECT_LT(Duration::Micros(1), Duration::Millis(1));
}

TEST(DurationTest, TimePointArithmetic) {
  TimePoint t0;
  TimePoint t1 = t0 + Duration::Millis(5);
  EXPECT_EQ((t1 - t0).millis(), 5.0);
  EXPECT_EQ((t1 - Duration::Millis(5)), t0);
  EXPECT_GT(t1, t0);
}

TEST(DurationTest, ToStringPicksUnits) {
  EXPECT_EQ(ToString(Duration::Nanos(500)), "500ns");
  EXPECT_EQ(ToString(Duration::Micros(12)), "12us");
  EXPECT_EQ(ToString(Duration::Millis(3)), "3ms");
  EXPECT_EQ(ToString(Duration::Seconds(2.0)), "2s");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = r.UniformInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, NormalMoments) {
  Rng r(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = r.Normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RngTest, JitterBounded) {
  Rng r(3);
  for (int i = 0; i < 100; ++i) {
    Duration d = r.Jitter(Duration::Micros(100), 0.2);
    EXPECT_GE(d, Duration::Micros(80));
    EXPECT_LE(d, Duration::Micros(120));
  }
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(42);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

// --- Environment / Task basics ---

TEST(EnvironmentTest, DelayAdvancesVirtualTime) {
  Environment env;
  TimePoint seen;
  env.Spawn([](Environment& e, TimePoint& out) -> Task {
    co_await e.Delay(Duration::Millis(10));
    out = e.Now();
  }(env, seen));
  env.Run();
  EXPECT_EQ(seen, TimePoint() + Duration::Millis(10));
  EXPECT_EQ(env.live_process_count(), 0u);
}

TEST(EnvironmentTest, EventsAtSameTimeRunFifo) {
  Environment env;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    env.Spawn([](Environment& e, std::vector<int>& ord, int id) -> Task {
      co_await e.Delay(Duration::Millis(1));
      ord.push_back(id);
    }(env, order, i));
  }
  env.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EnvironmentTest, InterleavingFollowsTimestamps) {
  Environment env;
  std::vector<std::string> log;
  env.Spawn([](Environment& e, std::vector<std::string>& lg) -> Task {
    co_await e.Delay(Duration::Millis(2));
    lg.push_back("a2");
    co_await e.Delay(Duration::Millis(2));
    lg.push_back("a4");
  }(env, log));
  env.Spawn([](Environment& e, std::vector<std::string>& lg) -> Task {
    co_await e.Delay(Duration::Millis(1));
    lg.push_back("b1");
    co_await e.Delay(Duration::Millis(2));
    lg.push_back("b3");
  }(env, log));
  env.Run();
  EXPECT_EQ(log, (std::vector<std::string>{"b1", "a2", "b3", "a4"}));
}

TEST(EnvironmentTest, NestedTaskAwaitRunsInline) {
  Environment env;
  std::vector<int> log;
  auto child = [](Environment& e, std::vector<int>& lg) -> Task {
    lg.push_back(1);
    co_await e.Delay(Duration::Micros(5));
    lg.push_back(2);
  };
  env.Spawn([](Environment& e, std::vector<int>& lg, auto& mk) -> Task {
    lg.push_back(0);
    co_await mk(e, lg);
    lg.push_back(3);
  }(env, log, child));
  env.Run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(env.Now(), TimePoint() + Duration::Micros(5));
}

TEST(EnvironmentTest, JoinWaitsForProcess) {
  Environment env;
  TimePoint join_time;
  Process p = env.Spawn([](Environment& e) -> Task {
    co_await e.Delay(Duration::Millis(7));
  }(env));
  env.Spawn([](Environment& e, Process proc, TimePoint& out) -> Task {
    co_await proc.Join();
    out = e.Now();
  }(env, p, join_time));
  env.Run();
  EXPECT_TRUE(p.done());
  EXPECT_EQ(join_time, TimePoint() + Duration::Millis(7));
}

TEST(EnvironmentTest, JoinOnCompletedProcessReturnsImmediately) {
  Environment env;
  Process p = env.Spawn([](Environment& e) -> Task {
    co_await e.Delay(Duration::Millis(1));
  }(env));
  bool joined = false;
  env.Spawn([](Environment& e, Process proc, bool& out) -> Task {
    co_await e.Delay(Duration::Millis(5));
    co_await proc.Join();
    out = true;
  }(env, p, joined));
  env.Run();
  EXPECT_TRUE(joined);
}

TEST(EnvironmentTest, UncaughtProcessExceptionSurfacesFromRun) {
  Environment env;
  env.Spawn([](Environment& e) -> Task {
    co_await e.Delay(Duration::Millis(1));
    throw std::runtime_error("boom");
  }(env));
  EXPECT_THROW(env.Run(), std::runtime_error);
}

TEST(EnvironmentTest, JoinRethrowsProcessException) {
  Environment env;
  Process p = env.Spawn([](Environment& e) -> Task {
    co_await e.Delay(Duration::Millis(1));
    throw std::runtime_error("boom");
  }(env));
  bool caught = false;
  env.Spawn([](Process proc, bool& out) -> Task {
    try {
      co_await proc.Join();
    } catch (const std::runtime_error&) {
      out = true;
    }
  }(p, caught));
  env.Run();
  EXPECT_TRUE(caught);
}

TEST(EnvironmentTest, RunUntilStopsAtDeadline) {
  Environment env;
  int ticks = 0;
  env.Spawn([](Environment& e, int& t) -> Task {
    for (int i = 0; i < 10; ++i) {
      co_await e.Delay(Duration::Millis(1));
      ++t;
    }
  }(env, ticks));
  bool drained = env.RunUntil(TimePoint() + Duration::Millis(3));
  EXPECT_FALSE(drained);
  EXPECT_EQ(ticks, 3);
  EXPECT_EQ(env.Now(), TimePoint() + Duration::Millis(3));
  env.Run();
  EXPECT_EQ(ticks, 10);
}

TEST(EnvironmentTest, RunUntilAdvancesClockToDeadlineWhenDrained) {
  Environment env;
  env.Spawn([](Environment& e) -> Task {
    co_await e.Delay(Duration::Millis(2));
  }(env));
  // The queue drains at t=2ms, well before the deadline; the clock must
  // still land exactly on the deadline (same as the non-drained branch).
  bool drained = env.RunUntil(TimePoint() + Duration::Millis(10));
  EXPECT_TRUE(drained);
  EXPECT_EQ(env.Now(), TimePoint() + Duration::Millis(10));
  // A later window continues from there.
  drained = env.RunUntil(TimePoint() + Duration::Millis(20));
  EXPECT_TRUE(drained);
  EXPECT_EQ(env.Now(), TimePoint() + Duration::Millis(20));
}

TEST(EnvironmentTest, RunUntilDrainedClockNeverMovesBackward) {
  Environment env;
  env.Spawn([](Environment& e) -> Task {
    co_await e.Delay(Duration::Millis(5));
  }(env));
  env.Run();
  EXPECT_EQ(env.Now(), TimePoint() + Duration::Millis(5));
  // Draining an empty queue with an already-passed deadline is a no-op on
  // the clock.
  EXPECT_TRUE(env.RunUntil(TimePoint() + Duration::Millis(3)));
  EXPECT_EQ(env.Now(), TimePoint() + Duration::Millis(5));
}

// The exception-reporting contract documented on Process::Join: an error
// delivered to joiners registered at completion time is considered handled,
// even if every joiner swallows it — Run() must not rethrow it.
TEST(EnvironmentTest, JoinedProcessExceptionIsNotReportedFromRun) {
  Environment env;
  Process p = env.Spawn([](Environment& e) -> Task {
    co_await e.Delay(Duration::Millis(1));
    throw std::runtime_error("boom");
  }(env));
  bool caught = false;
  env.Spawn([](Process proc, bool& out) -> Task {
    try {
      co_await proc.Join();
    } catch (const std::runtime_error&) {
      out = true;  // swallow: the error still counts as handled
    }
  }(p, caught));
  EXPECT_NO_THROW(env.Run());
  EXPECT_TRUE(caught);
}

// ...whereas with no joiner registered at completion, the error surfaces
// from Run(), and a late Join() still rethrows the same exception.
TEST(EnvironmentTest, UnjoinedExceptionSurfacesFromRunAndLateJoin) {
  Environment env;
  Process p = env.Spawn([](Environment& e) -> Task {
    co_await e.Delay(Duration::Millis(1));
    throw std::runtime_error("boom");
  }(env));
  EXPECT_THROW(env.Run(), std::runtime_error);
  bool caught = false;
  env.Spawn([](Process proc, bool& out) -> Task {
    try {
      co_await proc.Join();  // already done: rethrows on the await_ready path
    } catch (const std::runtime_error&) {
      out = true;
    }
  }(p, caught));
  env.Run();
  EXPECT_TRUE(caught);
}

TEST(EnvironmentTest, TeardownWithLiveProcessesDoesNotLeak) {
  // A process suspended forever is destroyed cleanly with the environment
  // (checked for leaks/UB under ASan in CI; here we just exercise it).
  auto env = std::make_unique<Environment>();
  CondVar cv(*env);
  env->Spawn([](CondVar& c) -> Task { co_await c.Wait(); }(cv));
  env->RunUntil(TimePoint() + Duration::Millis(1));
  EXPECT_EQ(env->live_process_count(), 1u);
  env.reset();  // must not crash
}

TEST(EnvironmentTest, ZeroDelayYieldsThroughQueue) {
  Environment env;
  std::vector<int> log;
  env.Spawn([](Environment& e, std::vector<int>& lg) -> Task {
    lg.push_back(0);
    co_await e.Delay(Duration::Zero());
    lg.push_back(2);
  }(env, log));
  env.Spawn([](std::vector<int>& lg) -> Task {
    lg.push_back(1);
    co_return;
  }(log));
  env.Run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2}));
}

// --- Synchronization primitives ---

TEST(CondVarTest, NotifyOneWakesInFifoOrder) {
  Environment env;
  CondVar cv(env);
  std::vector<int> woke;
  for (int i = 0; i < 3; ++i) {
    env.Spawn([](CondVar& c, std::vector<int>& w, int id) -> Task {
      co_await c.Wait();
      w.push_back(id);
    }(cv, woke, i));
  }
  env.Spawn([](Environment& e, CondVar& c) -> Task {
    co_await e.Delay(Duration::Millis(1));
    c.NotifyOne();
    co_await e.Delay(Duration::Millis(1));
    c.NotifyOne();
    co_await e.Delay(Duration::Millis(1));
    c.NotifyOne();
  }(env, cv));
  env.Run();
  EXPECT_EQ(woke, (std::vector<int>{0, 1, 2}));
}

TEST(CondVarTest, NotifyAllWakesEveryone) {
  Environment env;
  CondVar cv(env);
  int woke = 0;
  for (int i = 0; i < 10; ++i) {
    env.Spawn([](CondVar& c, int& w) -> Task {
      co_await c.Wait();
      ++w;
    }(cv, woke));
  }
  env.Spawn([](Environment& e, CondVar& c) -> Task {
    co_await e.Delay(Duration::Millis(1));
    c.NotifyAll();
  }(env, cv));
  env.Run();
  EXPECT_EQ(woke, 10);
}

TEST(CondVarTest, NotifyWithNoWaitersIsNoop) {
  Environment env;
  CondVar cv(env);
  cv.NotifyOne();
  cv.NotifyAll();
  env.Run();
  EXPECT_EQ(cv.waiter_count(), 0u);
}

TEST(MutexTest, MutualExclusionAcrossSuspension) {
  Environment env;
  Mutex m(env);
  int inside = 0;
  int max_inside = 0;
  for (int i = 0; i < 5; ++i) {
    env.Spawn([](Environment& e, Mutex& mu, int& in, int& mx) -> Task {
      co_await mu.Lock();
      ++in;
      mx = std::max(mx, in);
      co_await e.Delay(Duration::Millis(1));  // hold across suspension
      --in;
      mu.Unlock();
    }(env, m, inside, max_inside));
  }
  env.Run();
  EXPECT_EQ(max_inside, 1);
  EXPECT_FALSE(m.locked());
}

TEST(SemaphoreTest, BoundsConcurrency) {
  Environment env;
  Semaphore sem(env, 3);
  int inside = 0, max_inside = 0;
  for (int i = 0; i < 10; ++i) {
    env.Spawn([](Environment& e, Semaphore& s, int& in, int& mx) -> Task {
      co_await s.Acquire();
      ++in;
      mx = std::max(mx, in);
      co_await e.Delay(Duration::Millis(1));
      --in;
      s.Release();
    }(env, sem, inside, max_inside));
  }
  env.Run();
  EXPECT_EQ(max_inside, 3);
  EXPECT_EQ(sem.count(), 3);
}

TEST(SemaphoreTest, TryAcquire) {
  Environment env;
  Semaphore sem(env, 1);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_TRUE(sem.TryAcquire());
}

TEST(ChannelTest, PushPopOrdering) {
  Environment env;
  Channel<int> ch(env);
  std::vector<int> got;
  env.Spawn([](Channel<int>& c, std::vector<int>& g) -> Task {
    for (;;) {
      std::optional<int> v;
      co_await c.Pop(v);
      if (!v) break;
      g.push_back(*v);
    }
  }(ch, got));
  env.Spawn([](Environment& e, Channel<int>& c) -> Task {
    for (int i = 0; i < 5; ++i) {
      c.Push(i);
      co_await e.Delay(Duration::Micros(1));
    }
    c.Close();
  }(env, ch));
  env.Run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ChannelTest, CloseDrainsBeforeNullopt) {
  Environment env;
  Channel<int> ch(env);
  ch.Push(1);
  ch.Push(2);
  ch.Close();
  std::vector<int> got;
  bool saw_end = false;
  env.Spawn([](Channel<int>& c, std::vector<int>& g, bool& end) -> Task {
    for (;;) {
      std::optional<int> v;
      co_await c.Pop(v);
      if (!v) {
        end = true;
        break;
      }
      g.push_back(*v);
    }
  }(ch, got, saw_end));
  env.Run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
  EXPECT_TRUE(saw_end);
}

TEST(ChannelTest, MultipleConsumersShareWork) {
  Environment env;
  Channel<int> ch(env);
  std::vector<int> counts(3, 0);
  for (int w = 0; w < 3; ++w) {
    env.Spawn([](Environment& e, Channel<int>& c, int& count) -> Task {
      for (;;) {
        std::optional<int> v;
        co_await c.Pop(v);
        if (!v) break;
        ++count;
        co_await e.Delay(Duration::Millis(1));  // simulate work
      }
    }(env, ch, counts[w]));
  }
  env.Spawn([](Environment& e, Channel<int>& c) -> Task {
    for (int i = 0; i < 9; ++i) c.Push(i);
    co_await e.Delay(Duration::Millis(10));
    c.Close();
  }(env, ch));
  env.Run();
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 9);
  for (int c : counts) EXPECT_GT(c, 0);  // work actually spread
}

// Property: with identical seeds, an entire stochastic simulation replays
// identically (determinism is the foundation for every experiment).
class DeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<std::int64_t> RunStochasticSim(std::uint64_t seed) {
  Environment env;
  Rng rng(seed);
  Channel<int> ch(env);
  std::vector<std::int64_t> trace;
  for (int w = 0; w < 4; ++w) {
    env.Spawn([](Environment& e, Channel<int>& c, Rng& r,
                 std::vector<std::int64_t>& tr) -> Task {
      for (;;) {
        std::optional<int> v;
        co_await c.Pop(v);
        if (!v) break;
        co_await e.Delay(Duration::Nanos(r.UniformInt(100, 5000)));
        tr.push_back(e.Now().nanos() * 1000 + *v);
      }
    }(env, ch, rng, trace));
  }
  env.Spawn([](Environment& e, Channel<int>& c, Rng& r) -> Task {
    for (int i = 0; i < 50; ++i) {
      c.Push(i);
      co_await e.Delay(Duration::Nanos(r.UniformInt(10, 2000)));
    }
    c.Close();
  }(env, ch, rng));
  env.Run();
  return trace;
}

TEST_P(DeterminismTest, SameSeedSameTrace) {
  auto a = RunStochasticSim(GetParam());
  auto b = RunStochasticSim(GetParam());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 50u);
}

TEST_P(DeterminismTest, DifferentSeedDifferentTrace) {
  auto a = RunStochasticSim(GetParam());
  auto b = RunStochasticSim(GetParam() + 1);
  EXPECT_NE(a, b);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest,
                         ::testing::Values(1, 7, 42, 1234, 99999));

// --- callback timers -------------------------------------------------------

struct CallbackRecorder {
  std::vector<std::pair<std::uint64_t, std::int64_t>> fired;  // (arg, t_ns)
  Environment* env = nullptr;
  static void Fire(void* ctx, std::uint64_t arg) {
    auto* self = static_cast<CallbackRecorder*>(ctx);
    self->fired.emplace_back(arg, self->env->Now().nanos());
  }
};

TEST(EnvironmentTest, CallbackTimersFireInOrder) {
  Environment env;
  CallbackRecorder rec;
  rec.env = &env;
  env.ScheduleCallbackAt(TimePoint() + Duration::Micros(30),
                         &CallbackRecorder::Fire, &rec, 3);
  env.ScheduleCallbackAt(TimePoint() + Duration::Micros(10),
                         &CallbackRecorder::Fire, &rec, 1);
  env.ScheduleCallbackAt(TimePoint() + Duration::Micros(20),
                         &CallbackRecorder::Fire, &rec, 2);
  env.Run();
  ASSERT_EQ(rec.fired.size(), 3u);
  EXPECT_EQ(rec.fired[0], (std::pair<std::uint64_t, std::int64_t>{1, 10000}));
  EXPECT_EQ(rec.fired[1], (std::pair<std::uint64_t, std::int64_t>{2, 20000}));
  EXPECT_EQ(rec.fired[2], (std::pair<std::uint64_t, std::int64_t>{3, 30000}));
}

TEST(EnvironmentTest, CallbacksInterleaveWithCoroutines) {
  Environment env;
  CallbackRecorder rec;
  rec.env = &env;
  env.ScheduleCallbackAt(TimePoint() + Duration::Micros(15),
                         &CallbackRecorder::Fire, &rec, 7);
  bool saw_callback_before_resume = false;
  env.Spawn([](Environment& e, CallbackRecorder& r, bool& out) -> Task {
    co_await e.Delay(Duration::Micros(20));
    out = r.fired.size() == 1;
  }(env, rec, saw_callback_before_resume));
  env.Run();
  EXPECT_TRUE(saw_callback_before_resume);
}

TEST(EnvironmentTest, EventsExecutedCounts) {
  Environment env;
  env.Spawn([](Environment& e) -> Task {
    for (int i = 0; i < 5; ++i) co_await e.Delay(Duration::Micros(1));
  }(env));
  env.Run();
  // 1 spawn resume + 5 delay resumes.
  EXPECT_EQ(env.events_executed(), 6u);
}

TEST(EnvironmentTest, ProcessNamesPreserved) {
  Environment env;
  auto p = env.Spawn([](Environment& e) -> Task {
    co_await e.Delay(Duration::Micros(1));
  }(env), "my-process");
  EXPECT_EQ(p.name(), "my-process");
  env.Run();
  EXPECT_TRUE(p.done());
}

TEST(EnvironmentTest, RunAfterRunUntilContinuesCleanly) {
  Environment env;
  CondVar cv(env);
  int stage = 0;
  env.Spawn([](Environment& e, CondVar& c, int& s) -> Task {
    s = 1;
    co_await c.Wait();
    s = 2;
    co_await e.Delay(Duration::Millis(1));
    s = 3;
  }(env, cv, stage));
  env.RunUntil(TimePoint() + Duration::Micros(10));
  EXPECT_EQ(stage, 1);
  cv.NotifyAll();
  env.Run();
  EXPECT_EQ(stage, 3);
}

TEST(EnvironmentTest, NextEventTimeTracksQueueHead) {
  Environment env;
  EXPECT_EQ(env.NextEventTime(), Environment::Never());
  env.Spawn([](Environment& e) -> Task {
    co_await e.Delay(Duration::Millis(5));
  }(env));
  // The spawn resume is queued at the current instant.
  EXPECT_EQ(env.NextEventTime(), TimePoint());
  env.RunUntil(TimePoint() + Duration::Millis(1));
  EXPECT_EQ(env.NextEventTime(), TimePoint() + Duration::Millis(5));
  env.Run();
  EXPECT_EQ(env.NextEventTime(), Environment::Never());
}

TEST(EnvironmentTest, AdvanceToMovesClockButRefusesToSkipEvents) {
  Environment env;
  env.AdvanceTo(TimePoint() + Duration::Millis(2));
  EXPECT_EQ(env.Now(), TimePoint() + Duration::Millis(2));
  // Backward is illegal.
  EXPECT_THROW(env.AdvanceTo(TimePoint() + Duration::Millis(1)),
               std::logic_error);
  // Skipping over a pending event is illegal.
  env.Spawn([](Environment& e) -> Task {
    co_await e.Delay(Duration::Millis(5));
  }(env));
  EXPECT_THROW(env.AdvanceTo(TimePoint() + Duration::Millis(3)),
               std::logic_error);
}

TEST(EnvironmentTest, NestedRunUntilFromEventHandlerThrows) {
  // The RunUntil contract: only non-coroutine code drives the loop, one
  // window at a time — shard loops own their deadline windows. Re-entering
  // the dispatch loop from inside an event handler must throw.
  Environment env;
  bool threw = false;
  env.Spawn([](Environment& e, bool& t) -> Task {
    co_await e.Delay(Duration::Micros(1));
    try {
      e.RunUntil(TimePoint() + Duration::Millis(1));
    } catch (const std::logic_error&) {
      t = true;
    }
    co_return;
  }(env, threw));
  env.Run();
  EXPECT_TRUE(threw);
}

// ---------------------------------------------------------------------------
// ShardedEngine unit tests. The cluster-level bit-identity goldens live in
// golden_determinism_test; these pin the engine mechanics in isolation.

TEST(ShardedEngineTest, SingleShardIsThePlainEnvironment) {
  ShardedEngine engine(1);
  EXPECT_FALSE(engine.sharded());
  EXPECT_EQ(&engine.hub(), &engine.shard_env(0));
  int done = 0;
  engine.hub().Spawn([](Environment& e, int& d) -> Task {
    co_await e.Delay(Duration::Millis(1));
    ++d;
  }(engine.hub(), done));
  engine.Run();
  EXPECT_EQ(done, 1);
  EXPECT_EQ(engine.sync_windows(), 0u);
  EXPECT_EQ(engine.boundary_events(), 0u);
}

TEST(ShardedEngineTest, ShardedRequiresPositiveLookahead) {
  EXPECT_THROW(ShardedEngine(2, Duration::Zero()), std::logic_error);
}

TEST(ShardedEngineTest, HopsRoundTripWithExactLatency) {
  ShardedEngine engine(2, Duration::Micros(100));
  std::vector<std::int64_t> stamps;
  engine.hub().Spawn(
      [](ShardedEngine& eng, std::vector<std::int64_t>& out) -> Task {
        out.push_back(eng.hub().Now().nanos());
        co_await eng.HopToShard(1, Duration::Micros(100));
        out.push_back(eng.shard_env(1).Now().nanos());
        co_await eng.shard_env(1).Delay(Duration::Millis(2));
        co_await eng.HopToHub(1, Duration::Micros(150));
        out.push_back(eng.hub().Now().nanos());
      }(engine, stamps));
  engine.Run();
  ASSERT_EQ(stamps.size(), 3u);
  EXPECT_EQ(stamps[0], 0);
  EXPECT_EQ(stamps[1], 100000);            // arrival after the forward hop
  EXPECT_EQ(stamps[2], 100000 + 2000000 + 150000);
  EXPECT_GT(engine.boundary_events(), 0u);
}

TEST(ShardedEngineTest, HopLatencyBelowLookaheadThrows) {
  ShardedEngine engine(2, Duration::Micros(100));
  engine.hub().Spawn([](ShardedEngine& eng) -> Task {
    co_await eng.HopToShard(0, Duration::Micros(50));  // < lookahead
  }(engine));
  EXPECT_THROW(engine.Run(), std::logic_error);
}

TEST(ShardedEngineTest, BoundaryMergeOrderIsTimeThenShardThenSeq) {
  // Two shards send same-instant messages to the hub; the hub must observe
  // them in (time, shard, seq) order no matter the thread interleaving.
  ShardedEngine engine(2, Duration::Micros(10));
  std::vector<int> order;
  for (int shard = 1; shard >= 0; --shard) {  // spawn in REVERSE shard order
    for (int i = 0; i < 2; ++i) {
      engine.shard_env(static_cast<std::size_t>(shard))
          .Spawn([](ShardedEngine& eng, int sh, int idx,
                    std::vector<int>& out) -> Task {
            co_await eng.shard_env(static_cast<std::size_t>(sh))
                .Delay(Duration::Millis(1));
            co_await eng.HopToHub(static_cast<std::size_t>(sh),
                                  Duration::Micros(10));
            out.push_back(sh * 10 + idx);
          }(engine, shard, i, order));
    }
  }
  engine.Run();
  // All four arrive at the same hub instant: shard 0 before shard 1, and
  // within a shard, send (seq) order.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 11}));
}

}  // namespace
}  // namespace olympian::sim
