// Tests for the serving layer (Experiment harness) and the Olympian
// profiler, including cross-module integration.

#include <gtest/gtest.h>

#include <memory>

#include "core/profiler.h"
#include "core/scheduler.h"
#include "metrics/stats.h"
#include "serving/server.h"

namespace olympian::serving {
namespace {

using sim::Duration;

// Small/fast workloads: low batch, few batches.
ClientSpec SmallClient(const std::string& model = "resnet-152",
                       int batch = 20, int batches = 2) {
  return ClientSpec{.model = model, .batch = batch, .num_batches = batches};
}

TEST(ExperimentTest, SingleClientCompletes) {
  Experiment exp(ServerOptions{});
  auto results = exp.Run({SmallClient()});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].batches_completed, 2);
  EXPECT_GT(results[0].finish_time, Duration::Zero());
  EXPECT_GT(results[0].gpu_duration, Duration::Zero());
  EXPECT_EQ(exp.makespan(), results[0].finish_time);
  EXPECT_GT(exp.utilization(), 0.2);
}

TEST(ExperimentTest, JobMetersRetiredAfterRun) {
  // The serving layer retires every client job's meter when the client
  // drains, so long-lived servers don't accumulate one meter per job ever
  // served. (The probe/no-job meter is tracked separately and the retired
  // durations stay queryable — gpu_duration above proves that.)
  Experiment exp(ServerOptions{});
  std::vector<ClientSpec> clients(8, SmallClient());
  auto results = exp.Run(clients);
  for (const auto& r : results) {
    EXPECT_EQ(r.batches_completed, 2);
    EXPECT_GT(r.gpu_duration, Duration::Zero());
  }
  EXPECT_EQ(exp.gpu().live_job_meters(), 0u);
}

TEST(ExperimentTest, RunTwiceRejected) {
  Experiment exp(ServerOptions{});
  exp.Run({SmallClient()});
  EXPECT_THROW(exp.Run({SmallClient()}), std::logic_error);
}

TEST(ExperimentTest, ConcurrentClientsAllComplete) {
  Experiment exp(ServerOptions{});
  std::vector<ClientSpec> clients(4, SmallClient());
  auto results = exp.Run(clients);
  for (const auto& r : results) {
    EXPECT_EQ(r.batches_completed, 2);
    EXPECT_GT(r.finish_time, Duration::Zero());
  }
}

TEST(ExperimentTest, LargeBatchJobsGetNoSpatialMultiplexing) {
  // Paper §2.3: at production batch sizes kernels saturate the device, so
  // N concurrent identical jobs take ~N times as long as one.
  const auto client = SmallClient("resnet-152", 100, 1);
  Experiment exp(ServerOptions{});
  auto results = exp.Run(std::vector<ClientSpec>(4, client));
  Experiment solo(ServerOptions{});
  auto solo_results = solo.Run({client});
  EXPECT_GT(exp.makespan(), solo_results[0].finish_time * 3.2);
  EXPECT_LT(exp.makespan(), solo_results[0].finish_time * 4.8);
}

TEST(ExperimentTest, SameSeedReproduces) {
  ServerOptions opts;
  opts.seed = 1234;
  Experiment a(opts), b(opts);
  auto ra = a.Run({SmallClient(), SmallClient()});
  auto rb = b.Run({SmallClient(), SmallClient()});
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].finish_time, rb[i].finish_time);
    EXPECT_EQ(ra[i].gpu_duration, rb[i].gpu_duration);
  }
}

TEST(ExperimentTest, DifferentSeedDiffers) {
  ServerOptions a_opts, b_opts;
  a_opts.seed = 1;
  b_opts.seed = 2;
  Experiment a(a_opts), b(b_opts);
  auto ra = a.Run({SmallClient(), SmallClient()});
  auto rb = b.Run({SmallClient(), SmallClient()});
  EXPECT_NE(ra[0].finish_time, rb[0].finish_time);
}

TEST(ExperimentTest, OutOfMemoryWhenTooManyClients) {
  ServerOptions opts;
  opts.gpu.spec.memory_mb = 600;  // tiny device
  Experiment exp(opts);
  // resnet-152 params are 230 MB; activations 2.1/item * 100 = 210 MB each.
  std::vector<ClientSpec> clients(3, SmallClient("resnet-152", 100, 1));
  EXPECT_THROW(exp.Run(clients), gpusim::OutOfDeviceMemory);
}

TEST(ExperimentTest, TinyPoolStallsUnderOlympian) {
  // With hooks suspending gangs, a too-small pool deadlocks -> the server
  // reports ServerStalled (the §4.3 scaling limit). Stock TF-Serving with
  // the same pool completes.
  ServerOptions opts;
  opts.pool_threads = 2;

  Experiment base(opts);
  auto r = base.Run({SmallClient(), SmallClient()});
  EXPECT_EQ(r[0].batches_completed, 2);

  core::Profiler profiler;
  auto profile = profiler.ProfileModel("resnet-152", 20);
  Experiment oly(opts);
  core::Scheduler sched(oly.env(), oly.gpu(),
                        std::make_unique<core::FairPolicy>());
  sched.SetProfile(profile.key, &profile.cost,
                   core::Profiler::ThresholdFor(profile, Duration::Micros(500)));
  oly.SetHooks(&sched);
  EXPECT_THROW(oly.Run({SmallClient(), SmallClient()}), ServerStalled);
}

TEST(ExperimentTest, AdmissionControlShedsInsteadOfStalling) {
  // The workload shape that stalls above (two Olympian gangs, two pool
  // threads). With a load-shedding watermark plus a deadline on the surplus
  // client the server completes: its requests are shed while the pool is
  // occupied (or cancelled if one wedges), and the other client finishes.
  ServerOptions opts;
  opts.pool_threads = 2;
  opts.degradation.admission_watermark = 0.5;

  core::Profiler profiler;
  auto profile = profiler.ProfileModel("resnet-152", 20);
  Experiment oly(opts);
  core::Scheduler sched(oly.env(), oly.gpu(),
                        std::make_unique<core::FairPolicy>());
  sched.SetProfile(profile.key, &profile.cost,
                   core::Profiler::ThresholdFor(profile, Duration::Micros(500)));
  oly.SetHooks(&sched);

  ClientSpec surplus = SmallClient("resnet-152", 20, 6);
  surplus.deadline = Duration::Millis(1);
  auto results = oly.Run({SmallClient(), surplus});  // no throw

  int ok = 0, rejected = 0;
  for (const auto& r : results) {
    ASSERT_EQ(r.request_status.size(), r.request_latency_ms.size());
    ok += r.CountStatus(RequestStatus::kOk);
    rejected += r.CountStatus(RequestStatus::kRejected);
  }
  EXPECT_EQ(results[0].batches_completed, 2);  // the steady client finishes
  EXPECT_GT(ok, 0);
  EXPECT_GT(rejected, 0);  // the surplus load is shed, not deadlocked
  // Every rejection came from admission control and is accounted for.
  const auto& c = oly.counters();
  EXPECT_EQ(c.requests_shed + c.breaker_rejections, c.requests_rejected);
  EXPECT_EQ(static_cast<std::uint64_t>(rejected), c.requests_rejected);
  EXPECT_EQ(static_cast<std::uint64_t>(ok), c.requests_ok);
}

TEST(ExperimentTest, UnknownModelRejected) {
  Experiment exp(ServerOptions{});
  EXPECT_THROW(exp.Run({SmallClient("not-a-model")}), std::out_of_range);
}

TEST(ExperimentTest, OpenLoopArrivalsRecordLatencies) {
  ServerOptions opts;
  Experiment exp(opts);
  auto spec = SmallClient("resnet-152", 20, 5);
  spec.mean_interarrival = sim::Duration::Millis(500);
  auto results = exp.Run({spec});
  ASSERT_EQ(results[0].request_latency_ms.size(), 5u);
  for (double l : results[0].request_latency_ms) EXPECT_GT(l, 0.0);
  // Light load: finish time is dominated by arrivals, so the makespan
  // exceeds the sum of pure service times.
  EXPECT_GT(results[0].finish_time, sim::Duration::Millis(800));
}

TEST(ExperimentTest, ClosedLoopAlsoRecordsLatencies) {
  Experiment exp(ServerOptions{});
  auto results = exp.Run({SmallClient("resnet-152", 20, 3)});
  ASSERT_EQ(results[0].request_latency_ms.size(), 3u);
}

// --- multi-GPU extension ---------------------------------------------------

TEST(MultiGpuTest, RoundRobinPlacement) {
  ServerOptions opts;
  opts.num_gpus = 2;
  Experiment exp(opts);
  auto results = exp.Run(std::vector<ClientSpec>(4, SmallClient()));
  EXPECT_EQ(results[0].gpu_index, 0u);
  EXPECT_EQ(results[1].gpu_index, 1u);
  EXPECT_EQ(results[2].gpu_index, 0u);
  EXPECT_EQ(results[3].gpu_index, 1u);
  for (const auto& r : results) EXPECT_EQ(r.batches_completed, 2);
}

TEST(MultiGpuTest, TwoGpusRoughlyHalveMakespan) {
  const auto client = SmallClient("resnet-152", 100, 1);
  ServerOptions one;
  one.seed = 5;
  Experiment e1(one);
  e1.Run(std::vector<ClientSpec>(4, client));

  ServerOptions two = one;
  two.num_gpus = 2;
  Experiment e2(two);
  e2.Run(std::vector<ClientSpec>(4, client));

  EXPECT_LT(e2.makespan(), e1.makespan() * 0.65);
  EXPECT_GT(e2.makespan(), e1.makespan() * 0.35);
}

TEST(MultiGpuTest, ParamsChargedPerDevice) {
  ServerOptions opts;
  opts.num_gpus = 2;
  Experiment exp(opts);
  exp.LoadModel("resnet-152", 0);
  exp.LoadModel("resnet-152", 0);  // idempotent per device
  exp.LoadModel("resnet-152", 1);
  const auto params = models::GetModel("resnet-152").params_mb;
  EXPECT_EQ(exp.gpu(0).memory_used_mb(), params);
  EXPECT_EQ(exp.gpu(1).memory_used_mb(), params);
}

TEST(MultiGpuTest, PerDeviceSchedulersIsolateIndependently) {
  core::Profiler profiler;
  auto profile = profiler.ProfileModel("resnet-152", 30);
  ServerOptions opts;
  opts.num_gpus = 2;
  Experiment exp(opts);
  core::Scheduler s0(exp.env(), exp.gpu(0),
                     std::make_unique<core::FairPolicy>());
  core::Scheduler s1(exp.env(), exp.gpu(1),
                     std::make_unique<core::FairPolicy>());
  const double t =
      core::Profiler::ThresholdFor(profile, sim::Duration::Micros(1200));
  s0.SetProfile(profile.key, &profile.cost, t);
  s1.SetProfile(profile.key, &profile.cost, t);
  exp.SetGpuHooks(0, &s0);
  exp.SetGpuHooks(1, &s1);
  auto results = exp.Run(
      std::vector<ClientSpec>(4, SmallClient("resnet-152", 30, 3)));
  // Both schedulers rotated tokens; clients on the same device finish
  // together.
  EXPECT_GT(s0.switches(), 10u);
  EXPECT_GT(s1.switches(), 10u);
  EXPECT_NEAR(results[0].finish_time.seconds(), results[2].finish_time.seconds(),
              0.05 * results[0].finish_time.seconds());
  EXPECT_NEAR(results[1].finish_time.seconds(), results[3].finish_time.seconds(),
              0.05 * results[1].finish_time.seconds());
}

TEST(MultiGpuTest, HooksAfterExecutorConstructionRejected) {
  ServerOptions opts;
  opts.num_gpus = 2;
  Experiment exp(opts);
  exp.executor(1);  // force construction
  core::Profiler profiler;
  EXPECT_THROW(exp.SetGpuHooks(1, nullptr), std::logic_error);
}

TEST(MultiGpuTest, InvalidGpuCountRejected) {
  ServerOptions opts;
  opts.num_gpus = 0;
  EXPECT_THROW(Experiment exp(opts), std::invalid_argument);
}

// --- Profiler -------------------------------------------------------------

TEST(ProfilerTest, ProfileHasPositiveCostAndDuration) {
  core::Profiler profiler;
  auto p = profiler.ProfileModel("resnet-152", 20);
  EXPECT_EQ(p.key, "resnet-152@20");
  EXPECT_GT(p.TotalCost(), 0.0);
  EXPECT_GT(p.GpuDuration(), Duration::Zero());
  EXPECT_GT(p.cost.solo_runtime, p.GpuDuration() * 0.5);
  EXPECT_GT(p.CostAccumulationRate(), 0.9);
}

TEST(ProfilerTest, ProfileIsDeterministic) {
  core::Profiler profiler;
  auto a = profiler.ProfileModel("resnet-152", 20);
  auto b = profiler.ProfileModel("resnet-152", 20);
  EXPECT_EQ(a.TotalCost(), b.TotalCost());
  EXPECT_EQ(a.GpuDuration(), b.GpuDuration());
}

TEST(ProfilerTest, CostAndDurationStableAcrossRuns) {
  // Paper §4.4: total cost and GPU duration are stable across executions
  // (their stddevs are ~2.5% and ~1.7% of the mean).
  core::ProfilerOptions opts;
  opts.profile_runs = 1;
  metrics::Series costs, durations;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    opts.seed = seed;
    core::Profiler profiler(opts);
    auto p = profiler.ProfileModel("resnet-152", 20);
    costs.Add(p.TotalCost());
    durations.AddDuration(p.GpuDuration());
  }
  EXPECT_LT(costs.Cv(), 0.05);
  EXPECT_LT(durations.Cv(), 0.05);
}

TEST(ProfilerTest, ThresholdMatchesFormula) {
  // T_j = Q * C_j / D_j (paper §3.2).
  core::Profiler profiler;
  auto p = profiler.ProfileModel("resnet-152", 20);
  const auto q = Duration::Micros(1000);
  const double t = core::Profiler::ThresholdFor(p, q);
  EXPECT_NEAR(t, 1e6 * p.TotalCost() /
                     static_cast<double>(p.GpuDuration().nanos()),
              1e-6 * t);
}

TEST(ProfilerTest, SelectQPicksToleranceCrossing) {
  core::ModelProfile p;
  p.key = "x@1";
  p.overhead_q = {{Duration::Micros(200), 0.10},
                  {Duration::Micros(400), 0.05},
                  {Duration::Micros(800), 0.01}};
  // Tolerance 0.05 hits the second point exactly.
  EXPECT_EQ(core::Profiler::SelectQ({&p}, 0.05), Duration::Micros(400));
  // Tolerance 0.03 interpolates between 400 and 800.
  const auto q = core::Profiler::SelectQ({&p}, 0.03);
  EXPECT_GT(q, Duration::Micros(400));
  EXPECT_LT(q, Duration::Micros(800));
  // Unattainable tolerance falls back to the largest swept Q.
  EXPECT_EQ(core::Profiler::SelectQ({&p}, 0.001), Duration::Micros(800));
}

TEST(ProfilerTest, SelectQTakesMaxAcrossModels) {
  core::ModelProfile a, b;
  a.key = "a@1";
  a.overhead_q = {{Duration::Micros(200), 0.01}};
  b.key = "b@1";
  b.overhead_q = {{Duration::Micros(200), 0.10},
                  {Duration::Micros(900), 0.01}};
  // b's curve crosses the 2.5% tolerance at 200 + 700*(7.5/9) = 783.3us;
  // the selection takes the max over models.
  const auto q = core::Profiler::SelectQ({&a, &b}, 0.025);
  EXPECT_GT(q, Duration::Micros(780));
  EXPECT_LT(q, Duration::Micros(790));
}

TEST(ProfilerTest, SelectQRequiresCurves) {
  core::ModelProfile p;
  p.key = "x@1";
  EXPECT_THROW(core::Profiler::SelectQ({&p}, 0.025), std::logic_error);
  EXPECT_THROW(core::Profiler::SelectQ({}, 0.025), std::invalid_argument);
}

TEST(ProfilerTest, InterpolateProducesInBetweenProfile) {
  core::Profiler profiler;
  auto p20 = profiler.ProfileModel("resnet-152", 20);
  auto p60 = profiler.ProfileModel("resnet-152", 60);
  auto p40 = core::Profiler::Interpolate(p20, p60, 40);
  EXPECT_EQ(p40.key, "resnet-152@40");
  EXPECT_GT(p40.TotalCost(), p20.TotalCost());
  EXPECT_LT(p40.TotalCost(), p60.TotalCost());
  EXPECT_GT(p40.GpuDuration(), p20.GpuDuration());
  EXPECT_LT(p40.GpuDuration(), p60.GpuDuration());
  // And it extrapolates.
  auto p80 = core::Profiler::Interpolate(p20, p60, 80);
  EXPECT_GT(p80.TotalCost(), p60.TotalCost());
}

TEST(ProfilerTest, InterpolateRejectsBadInput) {
  core::ModelProfile a, b;
  a.model = "x";
  b.model = "y";
  EXPECT_THROW(core::Profiler::Interpolate(a, b, 10), std::invalid_argument);
  b.model = "x";
  a.batch = b.batch = 50;
  EXPECT_THROW(core::Profiler::Interpolate(a, b, 10), std::invalid_argument);
}

// --- End-to-end isolation (integration) -----------------------------------

TEST(IntegrationTest, OlympianEqualizesFinishTimes) {
  // 4 identical clients under fair sharing finish within a hair of each
  // other; stock TF-Serving spreads (paper Figures 3 and 11).
  core::Profiler profiler;
  auto profile = profiler.ProfileModel("resnet-152", 30);

  ServerOptions opts;
  opts.seed = 42;
  Experiment base(opts);
  auto base_r = base.Run(std::vector<ClientSpec>(4, SmallClient("resnet-152", 30, 3)));

  Experiment oly(opts);
  core::Scheduler sched(oly.env(), oly.gpu(),
                        std::make_unique<core::FairPolicy>());
  sched.SetProfile(profile.key, &profile.cost,
                   core::Profiler::ThresholdFor(profile, Duration::Micros(1200)));
  oly.SetHooks(&sched);
  auto oly_r = oly.Run(std::vector<ClientSpec>(4, SmallClient("resnet-152", 30, 3)));

  metrics::Series base_f, oly_f;
  for (auto& r : base_r) base_f.Add(r.finish_time.seconds());
  for (auto& r : oly_r) oly_f.Add(r.finish_time.seconds());
  EXPECT_LT(oly_f.Cv(), 0.01);          // near-identical
  EXPECT_GT(base_f.Cv(), oly_f.Cv());   // baseline is more spread
  EXPECT_GT(sched.switches(), 100u);    // fine-grained interleaving happened
}

TEST(IntegrationTest, PrioritySerializesJobs) {
  core::Profiler profiler;
  auto profile = profiler.ProfileModel("resnet-152", 30);

  ServerOptions opts;
  Experiment exp(opts);
  core::Scheduler sched(exp.env(), exp.gpu(),
                        std::make_unique<core::PriorityPolicy>());
  sched.SetProfile(profile.key, &profile.cost,
                   core::Profiler::ThresholdFor(profile, Duration::Micros(1200)));
  exp.SetHooks(&sched);
  auto high = SmallClient("resnet-152", 30, 3);
  high.priority = 10;
  auto low = SmallClient("resnet-152", 30, 3);
  low.priority = 1;
  auto results = exp.Run({low, high});
  // The high-priority job finishes well before the low-priority one, and
  // close to a solo run's time.
  EXPECT_LT(results[1].finish_time, results[0].finish_time * 0.7);
}

}  // namespace
}  // namespace olympian::serving
