// Tests for the declarative workload-spec parser (serving/workload_spec.h).

#include <gtest/gtest.h>

#include "serving/workload_spec.h"

namespace olympian::serving {
namespace {

WorkloadSpec WorkloadSpecParse(const std::string& text) {
  return WorkloadSpec::ParseString(text);
}

TEST(WorkloadSpecTest, ParsesFullSpec) {
  const auto spec = WorkloadSpec::ParseString(R"(
# a comment
seed 42
gpus 2
pool-threads 500
policy priority
quantum-us 1200
client inception-v4 batch=100 n=10 weight=2 priority=5
client resnet-152 batch=50 n=3 min-share=0.25 interarrival-ms=200
)");
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_EQ(spec.num_gpus, 2);
  EXPECT_EQ(spec.pool_threads, 500u);
  EXPECT_EQ(spec.policy, "priority");
  EXPECT_EQ(spec.quantum, sim::Duration::Micros(1200));
  ASSERT_EQ(spec.clients.size(), 2u);
  EXPECT_EQ(spec.clients[0].model, "inception-v4");
  EXPECT_EQ(spec.clients[0].batch, 100);
  EXPECT_EQ(spec.clients[0].num_batches, 10);
  EXPECT_EQ(spec.clients[0].weight, 2);
  EXPECT_EQ(spec.clients[0].priority, 5);
  EXPECT_DOUBLE_EQ(spec.clients[1].min_share, 0.25);
  EXPECT_EQ(spec.clients[1].mean_interarrival, sim::Duration::Millis(200));
}

TEST(WorkloadSpecTest, DefaultsApply) {
  const auto spec = WorkloadSpecParse("client vgg16 batch=10 n=1");
  EXPECT_EQ(spec.policy, "none");
  EXPECT_EQ(spec.num_gpus, 1);
  EXPECT_EQ(spec.clients[0].weight, 1);
}

TEST(WorkloadSpecTest, TrailingCommentsIgnored) {
  const auto spec =
      WorkloadSpecParse("client vgg16 batch=10 n=1  # inline comment");
  EXPECT_EQ(spec.clients[0].batch, 10);
}

TEST(WorkloadSpecTest, UnknownDirectiveRejected) {
  EXPECT_THROW(WorkloadSpecParse("quantums-us 5\nclient vgg16 n=1"),
               std::invalid_argument);
}

TEST(WorkloadSpecTest, UnknownClientAttrRejected) {
  EXPECT_THROW(WorkloadSpecParse("client vgg16 batches=10"),
               std::invalid_argument);
}

TEST(WorkloadSpecTest, MalformedAttrRejected) {
  EXPECT_THROW(WorkloadSpecParse("client vgg16 batch"),
               std::invalid_argument);
  EXPECT_THROW(WorkloadSpecParse("client vgg16 batch=abc"),
               std::invalid_argument);
}

TEST(WorkloadSpecTest, EmptySpecRejected) {
  EXPECT_THROW(WorkloadSpecParse("# nothing here"), std::invalid_argument);
  EXPECT_THROW(WorkloadSpecParse("seed 5"), std::invalid_argument);
}

TEST(WorkloadSpecTest, BadNumbersReportLine) {
  try {
    WorkloadSpecParse("seed 1\ngpus zero\nclient vgg16 n=1");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(WorkloadSpecTest, ToServerOptionsCopiesFields) {
  const auto spec = WorkloadSpecParse("seed 9\ngpus 2\nclient vgg16 n=1");
  const auto opts = spec.ToServerOptions();
  EXPECT_EQ(opts.seed, 9u);
  EXPECT_EQ(opts.num_gpus, 2);
}

TEST(WorkloadSpecTest, SpecRunsEndToEnd) {
  const auto spec = WorkloadSpec::ParseString(
      "seed 3\nclient resnet-152 batch=20 n=2\nclient resnet-152 batch=20 n=2");
  Experiment exp(spec.ToServerOptions());
  const auto results = exp.Run(spec.clients);
  EXPECT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].batches_completed, 2);
}

TEST(WorkloadSpecTest, MissingFileThrows) {
  EXPECT_THROW(WorkloadSpec::LoadFile("/does/not/exist.spec"),
               std::runtime_error);
}

}  // namespace
}  // namespace olympian::serving
