// Scaling of the sharded simulation engine inside ONE cluster experiment:
// the same chaos workload partitioned across 1/2/4/8 engine shards, at 4 and
// 16 servers. This is the perf sweep behind the sharded-engine work — the
// other benches parallelize across independent runs; this one parallelizes
// within a single run.
//
// Per (servers, shards) case: events, wall-clock run time, events/s, the
// per-shard event split (imbalance = max/mean, via RecordEngine), and a
// trajectory fingerprint (FNV-1a over every request's finish time, latency
// and status). All shard counts of one server count must fingerprint
// identically — the conservative engine is bit-exact, so parallelism is
// free of replay drift; main() checks this (adaptive cases included) and
// the speedup table prints shards=1 as the denominator.
//
// Each server count also runs a shards=4 ADAPTIVE case: a static profile
// pass measures per-server traffic, then greedy bin-packing places servers
// on shards by that weight. Same fingerprint, tighter imbalance.
//
// A final case exercises the aggregate arrival path at population scale:
// one open-loop stream standing in for 1,000,000 modeled clients (memory is
// O(1) in the population — one generator, not one process per client).
//
// Cases run serially by default (OLYMPIAN_BENCH_THREADS=1 unless the caller
// overrides): the engine's own worker threads must not compete with sweep
// workers, or the within-run speedup measurement is noise.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "harness.h"
#include "metrics/table.h"
#include "serving/cluster.h"

using namespace olympian;

namespace {

sim::TimePoint At(double ms) {
  return sim::TimePoint() + sim::Duration::Millis(ms);
}

constexpr std::size_t kShardCounts[] = {1, 2, 4, 8};
constexpr std::size_t kServerCounts[] = {4, 16};

struct ScaleRun {
  double secs = 0.0;
  std::uint64_t events = 0;
  std::uint64_t sync_windows = 0;
  std::uint64_t boundary_events = 0;
  std::uint32_t fingerprint = 0;
  std::size_t shards = 0;
  // Per-server boundary-event counts — the measured per-lane traffic a
  // profile pass feeds back as ClusterOptions::server_weights for adaptive
  // assignment.
  std::vector<double> lane_weights;
};

std::uint32_t Fnv1a(std::uint32_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint32_t>(v & 0xffu);
    h *= 16777619u;
    v >>= 8;
  }
  return h;
}

// The chaos workload: crashes and a partition spread over distinct servers
// (and, at shards > 1, distinct shards), two open-loop clients homed per
// server. Identical virtual trajectory for every shard count.
ScaleRun RunScaleCase(
    std::size_t servers, std::size_t shards, bench::SweepCase* record,
    serving::ShardAssignment assignment = serving::ShardAssignment::kStatic,
    std::vector<double> weights = {}) {
  serving::ClusterOptions opts;
  opts.num_servers = servers;
  opts.server.num_gpus = 1;
  opts.server.pool_threads = 100;
  opts.seed = 41;
  opts.shards = shards;
  opts.assignment = assignment;
  opts.server_weights = std::move(weights);
  opts.faults.Crash(At(150), sim::Duration::Millis(400), /*server=*/0);
  opts.faults.Partition(At(450), sim::Duration::Millis(350),
                        /*server=*/servers - 1,
                        fault::PartitionDirection::kToServer);
  if (servers > 4) {
    opts.faults.Crash(At(900), sim::Duration::Millis(300), /*server=*/7);
  }

  serving::ClusterClientSpec c;
  c.request.model = "googlenet";
  c.request.batch = 10;
  c.request.num_batches = 6;
  c.arrivals.kind = serving::ArrivalSpec::Kind::kPoisson;
  c.arrivals.rate_rps = 120.0;

  const auto t0 = std::chrono::steady_clock::now();
  serving::Cluster cluster(opts);
  const auto results = cluster.Run(
      std::vector<serving::ClusterClientSpec>(2 * servers, c));
  ScaleRun out;
  out.secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
  out.events = cluster.engine().events_executed();
  out.sync_windows = cluster.engine().sync_windows();
  out.boundary_events = cluster.engine().boundary_events();
  out.shards = cluster.shards();
  for (const std::uint64_t b : cluster.engine().lane_boundary_events()) {
    out.lane_weights.push_back(static_cast<double>(b));
  }
  std::uint32_t h = 2166136261u;
  for (const auto& r : results) {
    h = Fnv1a(h, static_cast<std::uint64_t>(r.finish_time.nanos()));
    for (std::size_t i = 0; i < r.request_status.size(); ++i) {
      h = Fnv1a(h, static_cast<std::uint64_t>(r.request_status[i]));
      double ms = i < r.request_latency_ms.size() ? r.request_latency_ms[i]
                                                  : 0.0;
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(ms));
      __builtin_memcpy(&bits, &ms, sizeof(bits));
      h = Fnv1a(h, bits);
    }
  }
  out.fingerprint = h;

  if (record != nullptr) {
    record->RecordEngine(cluster.engine());
    record->Set("servers", static_cast<double>(servers));
    record->Set("events", static_cast<double>(out.events));
    record->Set("run_seconds", out.secs);
    record->Set("events_per_s",
                out.secs > 0 ? static_cast<double>(out.events) / out.secs
                             : 0.0);
    record->Set("fingerprint", static_cast<double>(out.fingerprint));
  }
  return out;
}

// Aggregate arrivals at population scale: one stream modeling 1M clients.
void RunMillionClientCase(bench::SweepCase& out) {
  serving::ClusterOptions opts;
  opts.num_servers = 4;
  opts.server.num_gpus = 1;
  opts.server.pool_threads = 100;
  opts.seed = 53;
  opts.shards = 4;

  serving::ClusterStreamSpec s;
  s.request.model = "googlenet";
  s.request.batch = 10;
  s.arrivals.kind = serving::ArrivalSpec::Kind::kPoisson;
  s.arrivals.rate_rps = 400.0;
  s.modeled_clients = 1'000'000;
  s.num_requests = 2000;

  const auto t0 = std::chrono::steady_clock::now();
  serving::Cluster cluster(opts);
  const auto results = cluster.RunStreams({s});
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  out.RecordEngine(cluster.engine());
  int ok = 0;
  for (const auto st : results.at(0).request_status) {
    ok += st == serving::RequestStatus::kOk ||
          st == serving::RequestStatus::kFailedRetried;
  }
  out.Set("modeled_clients", static_cast<double>(s.modeled_clients));
  out.Set("requests", static_cast<double>(results.at(0).request_status.size()));
  out.Set("req_ok", ok);
  out.Set("run_seconds", secs);
  out.Set("events", static_cast<double>(cluster.engine().events_executed()));
  out.Set("events_per_s",
          secs > 0
              ? static_cast<double>(cluster.engine().events_executed()) / secs
              : 0.0);
}

double Metric(const bench::SweepCase& r, const std::string& key) {
  for (const auto& [k, v] : r.metrics) {
    if (k == key) return v;
  }
  return 0.0;
}

}  // namespace

int main() {
  // Engine worker threads do the parallelism here; sweep-level concurrency
  // would corrupt the speedup columns. Respect an explicit override.
  setenv("OLYMPIAN_BENCH_THREADS", "1", /*overwrite=*/0);

  bench::PrintHeader(
      "Sharded engine scaling: one cluster run across engine shards",
      "perf extension");

  bench::SweepRunner sweep("cluster_scale");
  for (const std::size_t servers : kServerCounts) {
    for (const std::size_t shards : kShardCounts) {
      const std::string name = "servers" + std::to_string(servers) +
                               "-shards" + std::to_string(shards);
      sweep.Add(name, [servers, shards](bench::SweepCase& out) {
        RunScaleCase(servers, shards, &out);
      });
    }
    // Adaptive assignment at shards=4: a static profile pass measures
    // per-server traffic (lane boundary events), which the recorded run
    // feeds back as server weights. The trajectory fingerprint must still
    // match shards=1 — assignment only changes the thread-to-work packing.
    sweep.Add("servers" + std::to_string(servers) + "-shards4-adaptive",
              [servers](bench::SweepCase& out) {
                const ScaleRun profile =
                    RunScaleCase(servers, /*shards=*/4, /*record=*/nullptr);
                RunScaleCase(servers, /*shards=*/4, &out,
                             serving::ShardAssignment::kAdaptive,
                             profile.lane_weights);
              });
  }
  sweep.Add("stream-1M-clients", RunMillionClientCase);

  const auto& results = sweep.RunAll();

  // Speedup table, shards=1 of each server count as the denominator, plus
  // the bit-identity check (fingerprints must match across shard counts).
  std::map<double, double> base_secs;
  std::map<double, double> base_fp;
  bool identical = true;
  for (const auto& r : results) {
    if (Metric(r, "shards") == 1.0) {
      base_secs[Metric(r, "servers")] = Metric(r, "run_seconds");
      base_fp[Metric(r, "servers")] = Metric(r, "fingerprint");
    }
  }
  metrics::Table t({"Case", "Shards", "Events", "Events/s", "Wall (s)",
                    "Speedup", "Imbalance", "Identical"});
  for (const auto& r : results) {
    if (r.name == "stream-1M-clients") continue;
    const double servers = Metric(r, "servers");
    const double secs = Metric(r, "run_seconds");
    const bool same = Metric(r, "fingerprint") == base_fp[servers];
    identical = identical && same;
    t.AddRow({r.name, metrics::Table::Num(Metric(r, "shards"), 0),
              metrics::Table::Num(Metric(r, "events"), 0),
              metrics::Table::Num(Metric(r, "events_per_s"), 0),
              metrics::Table::Num(secs, 2),
              metrics::Table::Num(secs > 0 ? base_secs[servers] / secs : 0.0,
                                  2),
              metrics::Table::Num(Metric(r, "imbalance"), 3),
              same ? "yes" : "NO"});
  }
  t.Print(std::cout);
  const auto& m = results.back();
  std::cout << "\nAggregate stream: " << Metric(m, "requests")
            << " requests drawn from " << Metric(m, "modeled_clients")
            << " modeled clients (" << Metric(m, "req_ok") << " ok, "
            << Metric(m, "events_per_s") << " events/s, shards="
            << Metric(m, "shards") << ").\n";
  if (!identical) {
    std::cout << "ERROR: sharded trajectories diverged from shards=1 — the "
                 "conservative engine must be bit-exact.\n";
    return 1;
  }
  std::cout << "All shard counts replay the shards=1 trajectory "
               "bit-identically.\nSpeedup is bounded by physical cores; on a "
               "single hardware thread it degrades to ~1x.\n";
  return 0;
}
