// Reproduces Figure 3: finish times of ten concurrent identical clients on
// stock TF-Serving, for two different runs — the unpredictability that
// motivates Olympian.

#include <iostream>

#include "harness.h"

using namespace olympian;

int main() {
  bench::PrintHeader("TF-Serving finish-time variability", "Figure 3");

  const auto clients = bench::HomogeneousClients("inception-v4", 100, 10, 10);

  serving::ServerOptions run1;
  run1.seed = 1;
  serving::ServerOptions run2;
  run2.seed = 2;
  const auto r1 = bench::RunBaseline(run1, clients);
  const auto r2 = bench::RunBaseline(run2, clients);

  metrics::Table t({"Client id", "Run-1 finish (s)", "Run-2 finish (s)"});
  metrics::Series f1, f2;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    t.AddRow({std::to_string(i), bench::FmtSeconds(r1.clients[i].finish_time),
              bench::FmtSeconds(r2.clients[i].finish_time)});
    f1.Add(r1.clients[i].finish_time.seconds());
    f2.Add(r2.clients[i].finish_time.seconds());
  }
  t.Print(std::cout);
  std::cout << "\nRun-1 spread (max/min): " << metrics::Table::Num(f1.Max() / f1.Min(), 2)
            << "x   Run-2 spread: " << metrics::Table::Num(f2.Max() / f2.Min(), 2)
            << "x\n";
  std::cout << "Expected shape: identical jobs finish at widely different\n"
               "times (paper observes up to 1.7x), and the pattern changes\n"
               "between runs.\n";
  return 0;
}
