// Reproduces Figure 16 (and exercises Table 2's full diversity): fourteen
// clients running seven different DNNs at different batch sizes, under
// Olympian fair sharing. All clients receive comparable GPU durations per
// quantum, close to the profiler-selected Q, at ~2% overhead.

#include <iostream>

#include "harness.h"
#include "models/model_zoo.h"

using namespace olympian;

int main() {
  bench::PrintHeader(
      "Average GPU duration per quantum: 14 clients, 7 different DNNs",
      "Figure 16");

  bench::ProfileCache profiles;
  std::vector<const core::ModelProfile*> all;
  std::vector<serving::ClientSpec> clients;
  for (const models::ModelSpec& spec : models::AllModels()) {
    all.push_back(&profiles.GetWithCurve(spec.name, spec.paper_batch));
    for (int k = 0; k < 2; ++k) {
      clients.push_back({.model = spec.name,
                         .batch = spec.paper_batch,
                         .num_batches = 10});
    }
  }

  const auto q = core::Profiler::SelectQ(all, 0.020);
  std::cout << "Profiler-selected Q at 2% tolerance: "
            << metrics::Table::Num(q.micros(), 0) << " us (paper: 1620 us)\n";

  serving::ServerOptions opts;
  opts.seed = 13;
  const auto base = bench::RunBaseline(opts, clients);
  const auto oly = bench::RunOlympian(opts, clients, "fair", q, profiles);
  const auto stats = bench::PerJobQuantumStats(oly, clients.size());

  metrics::Table t({"Client id", "Model", "Batch",
                    "Mean GPU dur/quantum (us)", "Stddev", "Quanta"});
  metrics::Series means;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    const auto it = stats.find(static_cast<gpusim::JobId>(i));
    if (it == stats.end()) continue;
    means.Add(it->second.mean_us);
    t.AddRow({std::to_string(i), clients[i].model,
              std::to_string(clients[i].batch),
              metrics::Table::Num(it->second.mean_us, 0),
              metrics::Table::Pct(it->second.stddev_us /
                                  std::max(1.0, it->second.mean_us)),
              std::to_string(it->second.count)});
  }
  t.Print(std::cout);

  std::cout << "\nPer-client means: " << metrics::Table::Num(means.Min(), 0)
            << " - " << metrics::Table::Num(means.Max(), 0)
            << " us vs predicted Q " << metrics::Table::Num(q.micros(), 0)
            << " us\n"
            << "Observed overhead vs TF-Serving: "
            << metrics::Table::Pct((oly.makespan - base.makespan).Ratio(base.makespan))
            << " (paper: 1.8% observed against a 2% prediction)\n"
            << "Expected shape: paper measures 1438-1662 us against 1620 us,\n"
               "stddev 4.1%-12.0%.\n";
  return 0;
}
