// Extension: the TF-Serving request batcher (paper §2.1) under item-level
// Poisson arrivals. Sweeps the batching timeout to expose the classic
// throughput/latency tradeoff, then runs two models' batchers concurrently
// under Olympian fair sharing with Figure-20-interpolated profiles.
//
// The timeout sweep's runs are independent and fan out across OS threads
// via SweepRunner; per-timeout stats land in BENCH_ext_batching.json.

#include <iostream>
#include <cmath>
#include <memory>

#include "core/profiler.h"
#include "core/scheduler.h"
#include "harness.h"
#include "serving/batcher.h"

using namespace olympian;

namespace {

struct BatchRunStats {
  double mean_latency_ms = 0;
  double p95_latency_ms = 0;
  double occupancy = 0;
  std::uint64_t batches = 0;
};

// `n_items` single-image requests arriving Poisson with `mean_gap`.
BatchRunStats DriveBatcher(serving::Experiment& exp, serving::Batcher& batcher,
                           int n_items, sim::Duration mean_gap,
                           std::uint64_t seed) {
  auto latencies = std::make_shared<metrics::Series>();
  auto arrivals = exp.env().Spawn(
      [](serving::Experiment& e, serving::Batcher& b, int n,
         sim::Duration gap, std::uint64_t sd,
         std::shared_ptr<metrics::Series> lat) -> sim::Task {
        sim::Rng rng(sd);
        std::vector<sim::Process> reqs;
        for (int i = 0; i < n; ++i) {
          co_await e.env().Delay(gap * (-std::log(1.0 - rng.NextDouble())));
          reqs.push_back(e.env().Spawn(
              [](serving::Batcher& bat,
                 std::shared_ptr<metrics::Series> out) -> sim::Task {
                sim::Duration l;
                co_await bat.Infer(&l);
                out->Add(l.millis());
              }(b, lat),
              "request"));
        }
        for (auto& r : reqs) co_await r.Join();
        b.Close();
      }(exp, batcher, n_items, mean_gap, seed, latencies),
      "arrival-process");
  exp.FinishManualRun();
  return BatchRunStats{latencies->Mean(), latencies->Percentile(95),
                       batcher.MeanBatchOccupancy(),
                       batcher.batches_executed()};
}

}  // namespace

int main() {
  bench::PrintHeader("Request batching under Poisson item arrivals",
                     "extension of paper §2.1's batching layer");

  // --- timeout sweep ------------------------------------------------------
  bench::SweepRunner sweep("ext_batching");
  for (int timeout_ms : {2, 50, 500}) {
    sweep.Add("timeout-" + std::to_string(timeout_ms) + "ms",
              [timeout_ms](bench::SweepCase& out) {
                serving::Experiment exp(serving::ServerOptions{.seed = 83});
                serving::Batcher::Options o;
                o.allowed_batch_sizes = {4, 8, 16, 32};
                o.batch_timeout = sim::Duration::Millis(timeout_ms);
                serving::Batcher batcher(exp, "resnet-50", o);
                const auto s = DriveBatcher(exp, batcher, 150,
                                            sim::Duration::Millis(30), 83);
                out.Set("batches", static_cast<double>(s.batches));
                out.Set("occupancy", s.occupancy);
                out.Set("mean_latency_ms", s.mean_latency_ms);
                out.Set("p95_latency_ms", s.p95_latency_ms);
              });
  }
  metrics::Table t({"Batch timeout (ms)", "Batches", "Mean occupancy",
                    "Mean latency (ms)", "p95 latency (ms)"});
  {
    const auto& results = sweep.RunAll();
    std::size_t idx = 0;
    for (int timeout_ms : {2, 50, 500}) {
      const auto& m = results[idx++].metrics;
      t.AddRow({std::to_string(timeout_ms),
                std::to_string(static_cast<std::uint64_t>(m[0].second)),
                metrics::Table::Pct(m[1].second),
                metrics::Table::Num(m[2].second, 1),
                metrics::Table::Num(m[3].second, 1)});
    }
  }
  t.Print(std::cout);
  std::cout << "Longer timeouts fill batches (higher occupancy, fewer GPU\n"
               "launches) at the cost of queueing latency.\n\n";

  // --- two batchers under Olympian fair sharing ---------------------------
  {
    core::Profiler profiler;
    const auto a20 = profiler.ProfileModel("resnet-50", 20);
    const auto a60 = profiler.ProfileModel("resnet-50", 60);
    const auto b20 = profiler.ProfileModel("googlenet", 20);
    const auto b60 = profiler.ProfileModel("googlenet", 60);

    serving::Experiment exp(serving::ServerOptions{.seed = 89});
    core::Scheduler sched(exp.env(), exp.gpu(),
                          std::make_unique<core::FairPolicy>());
    const auto q = sim::Duration::Micros(1600);
    // SetProfile requires stable storage; keep the interpolated profiles
    // alive for the run.
    std::vector<core::ModelProfile> owned;
    for (int size : {8, 16, 32}) {
      owned.push_back(core::Profiler::Interpolate(a20, a60, size));
      owned.push_back(core::Profiler::Interpolate(b20, b60, size));
    }
    for (const auto& p : owned) {
      sched.SetProfile(p.key, &p.cost, core::Profiler::ThresholdFor(p, q));
    }
    exp.SetHooks(&sched);

    serving::Batcher::Options o;
    o.allowed_batch_sizes = {8, 16, 32};
    o.batch_timeout = sim::Duration::Millis(10);
    serving::Batcher ba(exp, "resnet-50", o);
    serving::Batcher bb(exp, "googlenet", o);

    // Drive both with a shared arrival process.
    auto drive = [&](serving::Batcher& b, std::uint64_t seed) {
      return exp.env().Spawn(
          [](serving::Experiment& e, serving::Batcher& bat, std::uint64_t sd)
              -> sim::Task {
            sim::Rng rng(sd);
            std::vector<sim::Process> reqs;
            for (int i = 0; i < 200; ++i) {
              co_await e.env().Delay(sim::Duration::Millis(3) *
                                     (-std::log(1.0 - rng.NextDouble())));
              reqs.push_back(e.env().Spawn(
                  [](serving::Batcher& bt) -> sim::Task {
                    co_await bt.Infer();
                  }(bat),
                  "request"));
            }
            for (auto& r : reqs) co_await r.Join();
            bat.Close();
          }(exp, b, seed),
          "arrivals");
    };
    drive(ba, 101);
    drive(bb, 202);
    exp.FinishManualRun();

    std::cout << "--- two batched models under Olympian fair sharing ---\n"
              << "  resnet-50: " << ba.items_served() << " items in "
              << ba.batches_executed() << " batches, GPU duration "
              << metrics::Table::Num(
                     exp.gpu().JobGpuDuration(0).seconds(), 2)
              << " s\n"
              << "  googlenet: " << bb.items_served() << " items in "
              << bb.batches_executed() << " batches, GPU duration "
              << metrics::Table::Num(
                     exp.gpu().JobGpuDuration(1).seconds(), 2)
              << " s\n"
              << "  scheduler switches: " << sched.switches() << "\n"
              << "Profiles for every allowed batch size came from the\n"
                 "Figure-20 linear regression of two measured sizes.\n";
  }
  return 0;
}
