#pragma once

// Minimal JSON value builder for the BENCH_*.json artifacts the sweep
// binaries emit. Insertion-ordered (results must be stable across runs and
// thread counts), no dependencies, writes compact one-value-per-line output.

#include <string>
#include <utility>
#include <vector>

namespace olympian::bench {

class Json {
 public:
  static Json Object() { return Json(Kind::kObject); }
  static Json Array() { return Json(Kind::kArray); }
  static Json Str(std::string s);
  static Json Num(double v);

  // Object member (insertion order preserved). Returns *this for chaining.
  Json& Set(std::string key, Json value);
  // Array element.
  Json& Push(Json value);

  std::string Dump() const;  // pretty-printed, trailing newline

 private:
  enum class Kind { kObject, kArray, kString, kNumber };
  explicit Json(Kind k) : kind_(k) {}

  void DumpTo(std::string& out, int depth) const;

  Kind kind_;
  std::string scalar_;                           // kString / kNumber
  std::vector<std::pair<std::string, Json>> members_;  // kObject
  std::vector<Json> elements_;                   // kArray
};

// Writes `root` to `path` (truncating). Returns false on I/O failure.
bool WriteJsonFile(const std::string& path, const Json& root);

}  // namespace olympian::bench
