// Reproduces Figure 20: node-cost profiles for unprofiled batch sizes are
// synthesized by linear regression from two profiled batch sizes (50 and
// 100), and fair sharing remains as good as with directly-measured profiles.

#include <iostream>

#include "harness.h"

using namespace olympian;

namespace {

metrics::Series RunWithProfile(const core::ModelProfile& profile, int batch,
                               sim::Duration q) {
  serving::Experiment exp([]{
    serving::ServerOptions o;
    o.seed = 37;
    return o;
  }());
  core::Scheduler sched(exp.env(), exp.gpu(),
                        std::make_unique<core::FairPolicy>());
  sched.SetProfile(profile.key, &profile.cost,
                   core::Profiler::ThresholdFor(profile, q));
  exp.SetHooks(&sched);
  auto results =
      exp.Run(bench::HomogeneousClients("inception-v4", batch, 10, 10));
  metrics::Series finishes;
  for (const auto& r : results) finishes.Add(r.finish_time.seconds());
  return finishes;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Linear cost model across batch sizes (profiles from 50 & 100)",
      "Figure 20");

  bench::ProfileCache profiles;
  const auto& p50 = profiles.Get("inception-v4", 50);
  const auto& p100 = profiles.GetWithCurve("inception-v4", 100);
  const auto q = core::Profiler::SelectQ({&p100}, 0.025);

  metrics::Table t({"Batch", "Min finish (s)", "Max finish (s)", "CV",
                    "Predicted C (s)", "Measured C (s)"});
  for (int batch : {25, 75, 150}) {
    const auto interp = core::Profiler::Interpolate(p50, p100, batch);
    const auto finishes = RunWithProfile(interp, batch, q);
    // Compare the regressed total cost against a direct measurement.
    const auto& direct = profiles.Get("inception-v4", batch);
    t.AddRow({std::to_string(batch),
              metrics::Table::Num(finishes.Min(), 2),
              metrics::Table::Num(finishes.Max(), 2),
              metrics::Table::Pct(finishes.Cv()),
              metrics::Table::Num(interp.TotalCost() / 1e9, 2),
              metrics::Table::Num(direct.TotalCost() / 1e9, 2)});
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape: fairness (tight min-max spread, low CV) is\n"
               "comparable to Figure 11's directly-profiled runs, so a few\n"
               "profiled batch sizes suffice per model.\n";
  return 0;
}
