// Reproduces Figure 13: finish times for two heterogeneous workloads —
// 5 Inception + 5 ResNet-152 clients under Olympian fair sharing, first at
// batch 100/100, then with Inception at batch 150 (chosen to roughly
// equalize total runtimes). Finish times within a model type equalize;
// across types they differ because Olympian fair-shares the GPU, not the CPU.

#include <iostream>

#include "harness.h"

using namespace olympian;

namespace {

std::vector<serving::ClientSpec> Mixed(int inception_batch) {
  std::vector<serving::ClientSpec> clients;
  for (int i = 0; i < 5; ++i) {
    clients.push_back({.model = "inception-v4",
                       .batch = inception_batch,
                       .num_batches = 10});
  }
  for (int i = 0; i < 5; ++i) {
    clients.push_back(
        {.model = "resnet-152", .batch = 100, .num_batches = 10});
  }
  return clients;
}

}  // namespace

int main() {
  bench::PrintHeader("Fair sharing: heterogeneous workload finish times",
                     "Figure 13");

  bench::ProfileCache profiles;
  const auto& pi100 = profiles.GetWithCurve("inception-v4", 100);
  const auto& pi150 = profiles.GetWithCurve("inception-v4", 150);
  const auto& pr = profiles.GetWithCurve("resnet-152", 100);

  const auto q1 = core::Profiler::SelectQ({&pi100, &pr}, 0.025);
  const auto q2 = core::Profiler::SelectQ({&pi150, &pr}, 0.025);
  std::cout << "Selected Q: " << metrics::Table::Num(q1.micros(), 0)
            << " us (batch 100/100), " << metrics::Table::Num(q2.micros(), 0)
            << " us (batch 150/100); paper used 1190 us.\n";

  serving::ServerOptions opts;
  opts.seed = 9;
  const auto r1 = bench::RunOlympian(opts, Mixed(100), "fair", q1, profiles);
  const auto r2 = bench::RunOlympian(opts, Mixed(150), "fair", q2, profiles);

  metrics::Table t({"Client id", "Model", "Incep-100/Res-100 (s)",
                    "Incep-150/Res-100 (s)"});
  for (std::size_t i = 0; i < 10; ++i) {
    t.AddRow({std::to_string(i), i < 5 ? "inception-v4" : "resnet-152",
              bench::FmtSeconds(r1.clients[i].finish_time),
              bench::FmtSeconds(r2.clients[i].finish_time)});
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape: within each model the finish times are\n"
               "nearly identical; across models they differ, and equalizing\n"
               "total work (Inception batch 150) narrows but does not close\n"
               "the gap, because Olympian fair-shares the GPU only.\n";
  return 0;
}
