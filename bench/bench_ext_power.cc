// Extension (paper future work, §7): power and energy. The paper notes it
// never measured Olympian's power cost; this bench reports mean board power
// and energy-per-inference for the standard 10-client workload under each
// scheduler, using the GpuSpec power model.

#include <iostream>

#include "harness.h"

using namespace olympian;

namespace {

struct PowerRow {
  std::string name;
  double makespan_s;
  double mean_watts;
  double joules_per_inference;
};

PowerRow Measure(const std::string& name, serving::Experiment& exp,
                 const std::vector<serving::ClientSpec>& clients) {
  const auto results = exp.Run(clients);
  int inferences = 0;
  for (const auto& r : results) inferences += r.batches_completed;
  return PowerRow{name, exp.makespan().seconds(), exp.gpu().MeanPowerWatts(),
                  exp.gpu().EnergyJoules() / inferences};
}

}  // namespace

int main() {
  bench::PrintHeader("Power and energy per inference (extension)",
                     "paper §7 future work");

  bench::ProfileCache profiles;
  const auto& prof = profiles.Get("inception-v4", 100);
  const auto q = sim::Duration::Micros(1600);
  const auto clients = bench::HomogeneousClients("inception-v4", 100, 10, 5);

  std::vector<PowerRow> rows;
  {
    serving::Experiment exp(serving::ServerOptions{.seed = 61});
    rows.push_back(Measure("TF-Serving", exp, clients));
  }
  for (const char* policy : {"fair", "priority"}) {
    serving::Experiment exp(serving::ServerOptions{.seed = 61});
    core::Scheduler sched(exp.env(), exp.gpu(), core::MakePolicy(policy));
    sched.SetProfile(prof.key, &prof.cost,
                     core::Profiler::ThresholdFor(prof, q));
    exp.SetHooks(&sched);
    auto cs = clients;
    if (policy == std::string("priority")) {
      for (std::size_t i = 0; i < cs.size(); ++i) {
        cs[i].priority = static_cast<int>(cs.size() - i);
      }
    }
    rows.push_back(Measure(std::string("Olympian ") + policy, exp, cs));
  }

  metrics::Table t({"Scheduler", "Makespan (s)", "Mean power (W)",
                    "Energy/inference (J)"});
  for (const auto& r : rows) {
    t.AddRow({r.name, metrics::Table::Num(r.makespan_s, 2),
              metrics::Table::Num(r.mean_watts, 1),
              metrics::Table::Num(r.joules_per_inference, 1)});
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape: Olympian's slightly longer makespan at\n"
               "slightly lower mean power yields a small energy-per-\n"
               "inference premium — the cost of isolation is a few percent\n"
               "in joules as well as in seconds.\n";
  return 0;
}
