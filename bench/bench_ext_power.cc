// Extension (paper future work, §7): power and energy. The paper notes it
// never measured Olympian's power cost; this bench reports mean board power
// and energy-per-inference for the standard 10-client workload under each
// scheduler, using the GpuSpec power model.
//
// The three scheduler configurations are independent runs, fanned across OS
// threads via SweepRunner; scalars land in BENCH_ext_power.json.

#include <iostream>

#include "harness.h"

using namespace olympian;

namespace {

void Measure(bench::SweepCase& out, serving::Experiment& exp,
             const std::vector<serving::ClientSpec>& clients) {
  const auto results = exp.Run(clients);
  int inferences = 0;
  for (const auto& r : results) inferences += r.batches_completed;
  out.Set("makespan_s", exp.makespan().seconds());
  out.Set("mean_watts", exp.gpu().MeanPowerWatts());
  out.Set("joules_per_inference", exp.gpu().EnergyJoules() / inferences);
  out.RecordStatuses(results);
}

}  // namespace

int main() {
  bench::PrintHeader("Power and energy per inference (extension)",
                     "paper §7 future work");

  const auto clients = bench::HomogeneousClients("inception-v4", 100, 10, 5);
  bench::SweepRunner sweep("ext_power");

  sweep.Add("TF-Serving", [&clients](bench::SweepCase& out) {
    serving::Experiment exp(serving::ServerOptions{.seed = 61});
    Measure(out, exp, clients);
  });
  for (const char* policy : {"fair", "priority"}) {
    sweep.Add(std::string("Olympian ") + policy,
              [&clients, policy](bench::SweepCase& out) {
                bench::ProfileCache profiles;
                const auto& prof = profiles.Get("inception-v4", 100);
                const auto q = sim::Duration::Micros(1600);
                serving::Experiment exp(serving::ServerOptions{.seed = 61});
                core::Scheduler sched(exp.env(), exp.gpu(),
                                      core::MakePolicy(policy));
                sched.SetProfile(prof.key, &prof.cost,
                                 core::Profiler::ThresholdFor(prof, q));
                exp.SetHooks(&sched);
                auto cs = clients;
                if (policy == std::string("priority")) {
                  for (std::size_t i = 0; i < cs.size(); ++i) {
                    cs[i].priority = static_cast<int>(cs.size() - i);
                  }
                }
                Measure(out, exp, cs);
              });
  }

  metrics::Table t({"Scheduler", "Makespan (s)", "Mean power (W)",
                    "Energy/inference (J)"});
  for (const auto& r : sweep.RunAll()) {
    t.AddRow({r.name, metrics::Table::Num(r.metrics[0].second, 2),
              metrics::Table::Num(r.metrics[1].second, 1),
              metrics::Table::Num(r.metrics[2].second, 1)});
  }
  t.Print(std::cout);
  std::cout << "\nExpected shape: Olympian's slightly longer makespan at\n"
               "slightly lower mean power yields a small energy-per-\n"
               "inference premium — the cost of isolation is a few percent\n"
               "in joules as well as in seconds.\n";
  return 0;
}
