#include "harness.h"

#include <cstdio>
#include <set>

#include "models/model_zoo.h"

namespace olympian::bench {

const core::ModelProfile& ProfileCache::Get(const std::string& model,
                                            int batch) {
  const std::string key = models::ModelKey(model, batch);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    auto p = std::make_unique<core::ModelProfile>(
        profiler_.ProfileModel(model, batch));
    it = cache_.emplace(key, std::move(p)).first;
  }
  return *it->second;
}

const core::ModelProfile& ProfileCache::GetWithCurve(const std::string& model,
                                                     int batch) {
  const core::ModelProfile& p = Get(model, batch);
  if (p.overhead_q.empty()) {
    profiler_.ComputeOverheadQCurve(
        *cache_.at(models::ModelKey(model, batch)));
  }
  return p;
}

RunOutcome RunBaseline(const serving::ServerOptions& server,
                       const std::vector<serving::ClientSpec>& clients) {
  serving::Experiment exp(server);
  RunOutcome out;
  out.clients = exp.Run(clients);
  out.makespan = exp.makespan();
  out.utilization = exp.utilization();
  return out;
}

namespace {

RunOutcome RunWithScheduler(const serving::ServerOptions& server,
                            const std::vector<serving::ClientSpec>& clients,
                            const std::string& policy, sim::Duration q,
                            ProfileCache* profiles, bool wall_clock) {
  serving::Experiment exp(server);
  core::Scheduler::Options sopts;
  sopts.use_wall_clock = wall_clock;
  sopts.wall_quantum = q;
  core::Scheduler sched(exp.env(), exp.gpu(), core::MakePolicy(policy), sopts);

  if (!wall_clock) {
    std::set<std::pair<std::string, int>> seen;
    for (const auto& c : clients) seen.insert({c.model, c.batch});
    for (const auto& [model, batch] : seen) {
      const core::ModelProfile& p = profiles->Get(model, batch);
      sched.SetProfile(p.key, &p.cost, core::Profiler::ThresholdFor(p, q));
    }
  }

  exp.SetHooks(&sched);
  RunOutcome out;
  out.clients = exp.Run(clients);
  out.makespan = exp.makespan();
  out.utilization = exp.utilization();
  out.switches = sched.switches();
  out.quanta = sched.quanta_completed();
  out.quantum_log = sched.quantum_log();
  return out;
}

}  // namespace

RunOutcome RunOlympian(const serving::ServerOptions& server,
                       const std::vector<serving::ClientSpec>& clients,
                       const std::string& policy, sim::Duration q,
                       ProfileCache& profiles) {
  return RunWithScheduler(server, clients, policy, q, &profiles, false);
}

RunOutcome RunCpuTimerAblation(const serving::ServerOptions& server,
                               const std::vector<serving::ClientSpec>& clients,
                               const std::string& policy, sim::Duration q) {
  return RunWithScheduler(server, clients, policy, q, nullptr, true);
}

std::map<gpusim::JobId, QuantumStats> PerJobQuantumStats(
    const RunOutcome& run, std::size_t expected_jobs) {
  std::map<gpusim::JobId, metrics::Series> per_job;
  for (const auto& rec : run.quantum_log) {
    if (rec.active_jobs != expected_jobs) continue;  // only full occupancy
    per_job[rec.job].Add(rec.gpu_duration.micros());
  }
  std::map<gpusim::JobId, QuantumStats> out;
  for (auto& [job, series] : per_job) {
    out[job] = QuantumStats{series.Mean(), series.Stddev(), series.count()};
  }
  return out;
}

std::vector<serving::ClientSpec> HomogeneousClients(const std::string& model,
                                                    int batch, int count,
                                                    int num_batches) {
  return std::vector<serving::ClientSpec>(
      static_cast<std::size_t>(count),
      serving::ClientSpec{
          .model = model, .batch = batch, .num_batches = num_batches});
}

void PrintHeader(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("(reproduces %s of \"Olympian\", Middleware 2018)\n\n",
              paper_ref.c_str());
}

std::string FmtSeconds(sim::Duration d) {
  return metrics::Table::Num(d.seconds(), 2);
}

}  // namespace olympian::bench
